type kcall =
  | K_fork of { parent : Endpoint.t }
  | K_exec of { proc : Endpoint.t; path : string; arg : int }
  | K_kill of { proc : Endpoint.t; status : int }
  | K_crash_context of Endpoint.t
  | K_mk_clone of Endpoint.t
  | K_rollback of Endpoint.t
  | K_clear_state of Endpoint.t
  | K_go of Endpoint.t
  | K_reply_error of { proc : Endpoint.t; err : Errno.t }
  | K_shutdown of string
  | K_alarm of { ticks : int }
  | K_mmu of { proc : Endpoint.t }
  | K_replay of Endpoint.t
  | K_kill_requester of { proc : Endpoint.t }
  | K_live_update of { proc : Endpoint.t; loop : unit t }

and kresult =
  | Kr_ok
  | Kr_err of Errno.t
  | Kr_ep of Endpoint.t
  | Kr_context of {
      window_open : bool;
      requester : Endpoint.t option;
      reason : string;
      rlocal : bool;
          (* a requester-local SEEP was crossed inside the window *)
    }

and 'a t =
  | Done of 'a
  | Fail of string
  | Compute of int * (unit -> 'a t)
  | Load of int * (int -> 'a t)
  | Store of int * int * (unit -> 'a t)
  | Load_str of { off : int; len : int; k : string -> 'a t }
  | Store_str of { off : int; len : int; v : string; k : unit -> 'a t }
  | Send of Endpoint.t * Message.t * (unit -> 'a t)
  | Call of Endpoint.t * Message.t * (Message.t -> 'a t)
  | Receive of (Endpoint.t * Message.t -> 'a t)
  | Reply of Endpoint.t * Message.t * (unit -> 'a t)
  | Yield of (unit -> 'a t)
  | Spawn of unit t * (unit -> 'a t)
  | Kcall of kcall * (kresult -> 'a t)
  | Rand of int * (int -> 'a t)
  | Now of (int -> 'a t)

let return x = Done x

let rec bind p f =
  match p with
  | Done x -> f x
  | Fail msg -> Fail msg
  | Compute (c, k) -> Compute (c, fun () -> bind (k ()) f)
  | Load (off, k) -> Load (off, fun v -> bind (k v) f)
  | Store (off, v, k) -> Store (off, v, fun () -> bind (k ()) f)
  | Load_str { off; len; k } -> Load_str { off; len; k = (fun s -> bind (k s) f) }
  | Store_str { off; len; v; k } ->
    Store_str { off; len; v; k = (fun () -> bind (k ()) f) }
  | Send (dst, m, k) -> Send (dst, m, fun () -> bind (k ()) f)
  | Call (dst, m, k) -> Call (dst, m, fun r -> bind (k r) f)
  | Receive k -> Receive (fun src_msg -> bind (k src_msg) f)
  | Reply (dst, m, k) -> Reply (dst, m, fun () -> bind (k ()) f)
  | Yield k -> Yield (fun () -> bind (k ()) f)
  | Spawn (prog, k) -> Spawn (prog, fun () -> bind (k ()) f)
  | Kcall (c, k) -> Kcall (c, fun r -> bind (k r) f)
  | Rand (bound, k) -> Rand (bound, fun v -> bind (k v) f)
  | Now k -> Now (fun v -> bind (k v) f)

let map f p = bind p (fun x -> Done (f x))

module Syntax = struct
  let ( let* ) = bind
  let ( let+ ) p f = map f p
  let ( >>= ) = bind
  let ( >> ) a b = bind a (fun () -> b)
end

let compute c = Compute (c, fun () -> Done ())
let load off = Load (off, fun v -> Done v)
let store off v = Store (off, v, fun () -> Done ())
let load_str ~off ~len = Load_str { off; len; k = (fun s -> Done s) }
let store_str ~off ~len v = Store_str { off; len; v; k = (fun () -> Done ()) }
let send dst m = Send (dst, m, fun () -> Done ())
let call dst m = Call (dst, m, fun r -> Done r)
let receive = Receive (fun src_msg -> Done src_msg)
let reply dst m = Reply (dst, m, fun () -> Done ())
let yield = Yield (fun () -> Done ())
let spawn prog = Spawn (prog, fun () -> Done ())
let kcall c = Kcall (c, fun r -> Done r)
let rand bound = Rand (bound, fun v -> Done v)
let now = Now (fun v -> Done v)
let fail msg = Fail msg

let when_ cond p = if cond then p else Done ()

let rec iter_list f = function
  | [] -> Done ()
  | x :: rest -> bind (f x) (fun () -> iter_list f rest)

let iter_range ~lo ~hi f =
  let rec go i = if i >= hi then Done () else bind (f i) (fun () -> go (i + 1)) in
  go lo

let repeat n p =
  let rec go i = if i >= n then Done () else bind p (fun () -> go (i + 1)) in
  go 0

let guard cond what = if cond then Done () else Fail ("assertion failed: " ^ what)

module Mem = struct
  let get_int tbl ~row f = load (Layout.Table.addr_int tbl ~row f)
  let set_int tbl ~row f v = store (Layout.Table.addr_int tbl ~row f) v

  let get_str tbl ~row f =
    load_str ~off:(Layout.Table.addr_str tbl ~row f) ~len:(Layout.Table.str_len f)

  let set_str tbl ~row f v =
    store_str ~off:(Layout.Table.addr_str tbl ~row f) ~len:(Layout.Table.str_len f) v

  let get_cell c = load (Layout.Cell.addr c)
  let set_cell c v = store (Layout.Cell.addr c) v
end
