(** The program DSL: server handlers and user processes as interpretable
    operation trees.

    In the original OSIRIS, servers are C programs whose stores and IPC
    call sites are instrumented by LLVM passes. Here, programs are free-
    monad values: each node is one observable operation — a memory
    access, an IPC interaction, simulated computation, or a privileged
    kernel call. The kernel interprets programs one operation at a time,
    which yields exactly the hooks the paper's instrumentation provides:

    - every [Store] passes through the component's write hook (undo
      logging while the recovery window is open);
    - every [Send]/[Call]/[Reply] consults the SEEP classification and
      the active recovery policy to decide whether the window closes;
    - every executed operation is a coverage unit (Table I) and a
      potential fault site (Tables II/III);
    - every operation carries a simulated cycle cost (Tables IV/V).

    Programs must be deterministic: randomness comes from [Rand] (the
    kernel's seeded stream) and time from [Now] (the virtual clock). *)

(** Privileged kernel calls, available to PM (process lifecycle) and RS
    (the recovery protocol). See the kernel for semantics. *)
type kcall =
  | K_fork of { parent : Endpoint.t }
  | K_exec of { proc : Endpoint.t; path : string; arg : int }
  | K_kill of { proc : Endpoint.t; status : int }
  | K_crash_context of Endpoint.t
  | K_mk_clone of Endpoint.t
  | K_rollback of Endpoint.t
  | K_clear_state of Endpoint.t
  | K_go of Endpoint.t
  | K_reply_error of { proc : Endpoint.t; err : Errno.t }
  | K_shutdown of string
  | K_alarm of { ticks : int }
  | K_mmu of { proc : Endpoint.t }
      (** MMU/page-table update on behalf of a process — VM's
          state-modifying interaction with the kernel (sys_vmctl in
          MINIX terms). Semantically a costed no-op in the simulation,
          but it closes VM's recovery window like any state-modifying
          SEEP. *)
  | K_replay of Endpoint.t
      (** Replay reconciliation (extension): re-deliver the request the
          component crashed on to its recovered clone. *)
  | K_kill_requester of { proc : Endpoint.t }
      (** Kill-requester reconciliation (extension): terminate the
          requester through the normal exit path, cleaning up its
          requester-local state everywhere. *)
  | K_live_update of { proc : Endpoint.t; loop : unit t }
      (** Live component update (extension, Section VII generality):
          atomically replace a quiescent server's request loop with new
          code over its preserved state, using the clone/state-transfer
          machinery. Fails with [EAGAIN] when the target is
          mid-request. *)

and kresult =
  | Kr_ok
  | Kr_err of Errno.t
  | Kr_ep of Endpoint.t
  | Kr_context of {
      window_open : bool;
      requester : Endpoint.t option;
      reason : string;
      rlocal : bool;
          (* a requester-local SEEP was crossed inside the window *)
    }

and 'a t =
  | Done of 'a
  | Fail of string
      (** Fail-stop crash of the executing component (the NULL-deref /
          failed-assertion analogue). *)
  | Compute of int * (unit -> 'a t)  (** Burn n simulated cycles. *)
  | Load of int * (int -> 'a t)      (** Word load, absolute byte offset. *)
  | Store of int * int * (unit -> 'a t)
  | Load_str of { off : int; len : int; k : string -> 'a t }
  | Store_str of { off : int; len : int; v : string; k : unit -> 'a t }
  | Send of Endpoint.t * Message.t * (unit -> 'a t)
      (** Asynchronous notification; never blocks. *)
  | Call of Endpoint.t * Message.t * (Message.t -> 'a t)
      (** MINIX sendrec: blocks until the receiver replies (possibly
          with [R_err E_CRASH] courtesy of the Recovery Server). *)
  | Receive of (Endpoint.t * Message.t -> 'a t)
      (** Top-of-loop blocking receive (servers only). *)
  | Reply of Endpoint.t * Message.t * (unit -> 'a t)
      (** Answer a pending [Call] from the given endpoint. *)
  | Yield of (unit -> 'a t)
      (** Cooperative thread yield (multithreaded servers). *)
  | Spawn of unit t * (unit -> 'a t)
      (** Start a cothread in the same component. *)
  | Kcall of kcall * (kresult -> 'a t)
  | Rand of int * (int -> 'a t)      (** Uniform int below the bound. *)
  | Now of (int -> 'a t)             (** Virtual time, cycles. *)

val return : 'a -> 'a t

val bind : 'a t -> ('a -> 'b t) -> 'b t

val map : ('a -> 'b) -> 'a t -> 'b t

module Syntax : sig
  val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
  val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
  val ( >>= ) : 'a t -> ('a -> 'b t) -> 'b t
  val ( >> ) : unit t -> 'b t -> 'b t
end

(** {2 Operation shorthands} *)

val compute : int -> unit t
val load : int -> int t
val store : int -> int -> unit t
val load_str : off:int -> len:int -> string t
val store_str : off:int -> len:int -> string -> unit t
val send : Endpoint.t -> Message.t -> unit t
val call : Endpoint.t -> Message.t -> Message.t t
val receive : (Endpoint.t * Message.t) t
val reply : Endpoint.t -> Message.t -> unit t
val yield : unit t
val spawn : unit t -> unit t
val kcall : kcall -> kresult t
val rand : int -> int t
val now : int t
val fail : string -> 'a t

(** {2 Control helpers} *)

val when_ : bool -> unit t -> unit t
val iter_list : ('a -> unit t) -> 'a list -> unit t
val iter_range : lo:int -> hi:int -> (int -> unit t) -> unit t
(** [iter_range ~lo ~hi f] runs [f lo .. f (hi-1)] in order. *)

val repeat : int -> unit t -> unit t
(** Run the given program n times. The program value is reused, which is
    sound because programs are immutable trees. *)

val guard : bool -> string -> unit t
(** [guard cond what] is the defensive-programming assertion of the
    paper's fault model: if [cond] is false the component fail-stops
    with a message naming [what]. *)

(** {2 Typed memory access over layouts}

    Program-level counterparts of [Layout.Table] direct access: these
    build [Load]/[Store] nodes so that server state access is costed,
    instrumented and fault-injectable. *)

module Mem : sig
  val get_int : Layout.Table.t -> row:int -> Layout.int_field -> int t
  val set_int : Layout.Table.t -> row:int -> Layout.int_field -> int -> unit t
  val get_str : Layout.Table.t -> row:int -> Layout.str_field -> string t
  val set_str : Layout.Table.t -> row:int -> Layout.str_field -> string -> unit t
  val get_cell : Layout.Cell.t -> int t
  val set_cell : Layout.Cell.t -> int -> unit t
end
