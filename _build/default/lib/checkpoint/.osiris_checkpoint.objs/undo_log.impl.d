lib/checkpoint/undo_log.ml: Bytes List Memimage
