lib/checkpoint/undo_log.mli: Memimage
