lib/checkpoint/window.ml: Hashtbl Memimage Undo_log
