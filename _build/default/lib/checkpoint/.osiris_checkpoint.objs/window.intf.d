lib/checkpoint/window.mli: Memimage Undo_log
