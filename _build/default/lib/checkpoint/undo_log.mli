(** Per-component undo log — the paper's incremental in-memory
    checkpoint (Vogt et al., DSN 2015, as used by OSIRIS Section IV-C).

    Each entry records the absolute offset and previous contents of an
    overwritten range. Rolling back replays entries newest-first,
    restoring the image to its state at the last {!clear} (the
    checkpoint taken at the top of the request-processing loop).

    This module is part of the Reliable Computing Base: it is trusted,
    never fault-injected, and its writes bypass instrumentation. *)

type t

val create : unit -> t

val record : t -> offset:int -> old:bytes -> unit
(** Append an entry. Called from the image write hook while the
    recovery window is open (or unconditionally in the unoptimized
    instrumentation mode). *)

val entries : t -> int
(** Entries currently in the log. *)

val bytes_used : t -> int
(** Live log size: sum of entry payloads plus per-entry header, the
    metric reported in Table VI. *)

val peak_bytes : t -> int
(** High-water mark of {!bytes_used} since creation. *)

val total_records : t -> int
(** Lifetime number of {!record} calls (monotonic; survives {!clear}).
    Used to measure instrumentation overhead. *)

val rollback : t -> Memimage.t -> unit
(** Undo all logged writes, newest first, then clear the log. The
    image's write hook is suspended during rollback so the undo itself
    is not re-logged. *)

val clear : t -> unit
(** Drop all entries — taken a new checkpoint or the window closed and
    the log is discarded. *)
