type instrumentation = Always | When_open | Never | Snapshot

type t = {
  mode : instrumentation;
  dedup : bool;
  img : Memimage.t;
  undo : Undo_log.t;
  logged_offsets : (int, unit) Hashtbl.t;  (* per-window, when dedup *)
  mutable snap : bytes option;
  mutable window_open : bool;
  mutable opens : int;
  mutable policy_closes : int;
  mutable skipped : int;
  mutable deduped : int;
}

let log_store t ~offset ~old =
  (* First-write-wins: rollback only needs the oldest value at each
     location, so later stores to a logged offset can be elided. The
     check is per exact offset, which covers the word-stores that
     dominate hot paths. *)
  if t.dedup && Hashtbl.mem t.logged_offsets offset then
    t.deduped <- t.deduped + 1
  else begin
    if t.dedup then Hashtbl.replace t.logged_offsets offset ();
    Undo_log.record t.undo ~offset ~old
  end

let hook t ~offset ~old =
  match t.mode with
  | Never | Snapshot -> t.skipped <- t.skipped + 1
  | Always -> log_store t ~offset ~old
  | When_open ->
    if t.window_open then log_store t ~offset ~old
    else t.skipped <- t.skipped + 1

let reinstall_hook t = Memimage.set_write_hook t.img (Some (hook t))

let create ?(dedup = false) mode img =
  let t =
    { mode;
      dedup;
      img;
      undo = Undo_log.create ();
      logged_offsets = Hashtbl.create 64;
      snap = None;
      window_open = false;
      opens = 0;
      policy_closes = 0;
      skipped = 0;
      deduped = 0 }
  in
  reinstall_hook t;
  t

let image t = t.img
let log t = t.undo

let is_open t = t.window_open

let would_log t =
  match t.mode with
  | Never | Snapshot -> false
  | Always -> true
  | When_open -> t.window_open

let instrumentation t = t.mode

let open_window t =
  Undo_log.clear t.undo;
  if t.dedup then Hashtbl.reset t.logged_offsets;
  if t.mode = Snapshot then t.snap <- Some (Memimage.snapshot t.img);
  t.window_open <- true;
  t.opens <- t.opens + 1

let close_window t =
  if t.window_open then begin
    t.window_open <- false;
    t.snap <- None;
    if t.dedup then Hashtbl.reset t.logged_offsets;
    Undo_log.clear t.undo
  end

let rollback t =
  if not t.window_open then
    invalid_arg "Window.rollback: window closed — unsafe recovery refused";
  (match t.mode, t.snap with
   | Snapshot, Some snap -> Memimage.restore t.img snap
   | Snapshot, None -> invalid_arg "Window.rollback: snapshot missing"
   | _ ->
     Undo_log.rollback t.undo t.img;
     (* Undo_log.rollback suspends the hook; restore it. *)
     reinstall_hook t);
  t.snap <- None;
  t.window_open <- false

let opens t = t.opens

let closes_by_policy t = t.policy_closes

let note_policy_close t = t.policy_closes <- t.policy_closes + 1

let logged_stores t = Undo_log.total_records t.undo

let skipped_stores t = t.skipped

let deduped_stores t = t.deduped
