type entry = { e_offset : int; e_old : bytes }

(* Per-entry header accounted at 16 bytes: offset word + length word,
   approximating the C implementation's entry layout. *)
let entry_header_bytes = 16

type t = {
  mutable log : entry list;
  mutable count : int;
  mutable bytes : int;
  mutable peak : int;
  mutable lifetime : int;
}

let create () = { log = []; count = 0; bytes = 0; peak = 0; lifetime = 0 }

let record t ~offset ~old =
  t.log <- { e_offset = offset; e_old = old } :: t.log;
  t.count <- t.count + 1;
  t.lifetime <- t.lifetime + 1;
  t.bytes <- t.bytes + entry_header_bytes + Bytes.length old;
  if t.bytes > t.peak then t.peak <- t.bytes

let entries t = t.count

let bytes_used t = t.bytes

let peak_bytes t = t.peak

let total_records t = t.lifetime

let clear t =
  t.log <- [];
  t.count <- 0;
  t.bytes <- 0

let rollback t image =
  (* Newest-first order is the list's natural order. Suspend the hook:
     undoing must not generate fresh undo entries. *)
  Memimage.set_write_hook image None;
  List.iter
    (fun { e_offset; e_old } -> Memimage.set_bytes image ~off:e_offset e_old)
    t.log;
  clear t
