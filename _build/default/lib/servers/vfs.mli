(** VFS — the Virtual File System server.

    Translates user file and pipe operations into MFS calls and local
    state updates. VFS is the prototype's multithreaded server (paper
    Section V): each request is served by a cooperative thread so a
    request blocked on the (slow) disk path does not stall the rest of
    the system. Pipes are implemented entirely inside VFS state, with
    blocking readers/writers realized as yield-retry loops — each yield
    forcefully closes the recovery window, exactly the multithreading
    rule of Section IV-E.

    Limits: {!max_fds} descriptors per process, pipe capacity
    {!pipe_capacity} bytes. *)

type t

val create : unit -> t

val server : t -> Kernel.server

val summary : Summary.t

val dump_state : t -> string list
(** White-box snapshot of pipes and open-file rows (direct reads, for
    tests and debugging). *)

val max_fds : int
val max_files : int
val max_pipes : int
val pipe_capacity : int
