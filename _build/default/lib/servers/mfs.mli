(** MFS — the file system server proper, sitting below VFS.

    Owns the inode table, directory hierarchy and block allocation; file
    contents live on the block device. VFS talks to MFS over SEEPs, and
    the read-only ones ([Mfs_lookup], [Mfs_read], [Mfs_stat]) are what
    keeps VFS recovery windows open on read paths under the enhanced
    policy.

    Limits: files span 8 direct blocks plus one single-indirect block
    ({!max_blocks_per_file} blocks, i.e. {!max_file_size} bytes); path
    components are limited to {!name_len} bytes; no ".."/"." resolution
    (the workloads use absolute canonical paths). *)

type t

val create : unit -> t

val server : t -> Kernel.server

val summary : Summary.t

val max_inodes : int
val max_blocks_per_file : int
val name_len : int

val max_file_size : int
(** [max_blocks_per_file * Bdev.block_size]. *)

(** Pre-boot filesystem population ("mkfs"), performed directly on the
    tables before the kernel installs instrumentation. Used by the boot
    protocol to create /bin, /etc and /tmp without paying millions of
    simulated operations per experiment run. Must only be called before
    the server is registered with a kernel. *)

val add_dir : t -> string -> unit
(** Create a directory (parents must exist). No-op if it exists. *)

val add_file : t -> bdev:Bdev.t -> path:string -> content:string -> unit
(** Create a file with the given content (parents must exist; content
    limited to the direct range — boot files are small).
    @raise Failure on ENOSPC/precondition violations. *)

val corrupt_for_test : t -> unit
(** Deliberately break block accounting (point the free-list head at an
    allocated block) so tests can verify {!check_invariants} detects
    corruption. *)

val check_invariants : t -> bdev:Bdev.t -> (unit, string) result
(** fsck: verify block conservation directly against the tables —
    every block is either on the free list or referenced by exactly one
    file (as data or as an indirect-pointer block), all pointers are in
    range, directories form a rooted tree. Intended for tests: reads
    the image directly, bypassing simulated costs. *)
