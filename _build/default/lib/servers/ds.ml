open Prog.Syntax

let capacity = 48
let max_subs = 16
let key_len = 32

(* Image sized to match the paper's DS base memory footprint
   (Table VI: 248 kB). *)
let image_kb = 248

type t = {
  image : Memimage.t;
  kv : Layout.Table.t;
  f_used : Layout.int_field;
  f_key : Layout.str_field;
  f_value : Layout.int_field;
  subs : Layout.Table.t;
  s_used : Layout.int_field;
  s_ep : Layout.int_field;
  s_prefix : Layout.str_field;
  c_publishes : Layout.Cell.t;
  c_retrieves : Layout.Cell.t;
}

let create () =
  let image = Memimage.create ~name:"ds" ~size:(image_kb * 1024) in
  let spec = Layout.spec () in
  let f_used = Layout.int spec "used" in
  let f_key = Layout.str spec "key" ~len:key_len in
  let f_value = Layout.int spec "value" in
  Layout.seal spec;
  let kv = Layout.Table.alloc image ~spec ~rows:capacity in
  let sspec = Layout.spec () in
  let s_used = Layout.int sspec "used" in
  let s_ep = Layout.int sspec "ep" in
  let s_prefix = Layout.str sspec "prefix" ~len:16 in
  Layout.seal sspec;
  let subs = Layout.Table.alloc image ~spec:sspec ~rows:max_subs in
  let c_publishes = Layout.Cell.alloc_int image "publishes" in
  let c_retrieves = Layout.Cell.alloc_int image "retrieves" in
  { image; kv; f_used; f_key; f_value; subs; s_used; s_ep; s_prefix;
    c_publishes; c_retrieves }

let find_key t key =
  Srvlib.scan ~rows:capacity (fun row ->
      let* used = Prog.Mem.get_int t.kv ~row t.f_used in
      if used = 0 then Prog.return false
      else
        let* k = Prog.Mem.get_str t.kv ~row t.f_key in
        Prog.return (String.equal k key))

let find_free t =
  Srvlib.scan ~rows:capacity (fun row ->
      let* used = Prog.Mem.get_int t.kv ~row t.f_used in
      Prog.return (used = 0))

let is_prefix ~prefix s =
  String.length prefix <= String.length s
  && String.equal prefix (String.sub s 0 (String.length prefix))

(* Notify every subscriber whose prefix matches the published key.
   These notifications modify subscriber state, so they are
   state-modifying SEEPs and close the recovery window. *)
let notify_subscribers t key =
  Prog.iter_range ~lo:0 ~hi:max_subs (fun row ->
      let* used = Prog.Mem.get_int t.subs ~row t.s_used in
      if used = 0 then Prog.return ()
      else
        let* prefix = Prog.Mem.get_str t.subs ~row t.s_prefix in
        if is_prefix ~prefix key then
          let* ep = Prog.Mem.get_int t.subs ~row t.s_ep in
          Prog.send ep (Message.Ds_notify { key })
        else Prog.return ())

(* A publish is subject to a grant check: the subscriber table doubles
   as the ACL (a prefix entry grants visibility). The check is pure
   reading and happens before the early diagnostic SEEP. *)
let check_grants t _key =
  Srvlib.scan ~rows:max_subs (fun row ->
      let* used = Prog.Mem.get_int t.subs ~row t.s_used in
      if used = 0 then Prog.return false
      else
        let* _ = Prog.Mem.get_str t.subs ~row t.s_prefix in
        Prog.return false)

(* Diagnostics placement mirrors the original DS: mutation handlers log
   the request after a pure validation pass (an early read-only SEEP,
   which is what makes DS the lowest-coverage server under the
   pessimistic policy), while query handlers log after resolving the
   key. The enhanced policy ignores both, keeping DS almost always
   recoverable (Table I). *)
let handle t src msg =
  match msg with
  | Message.Ds_publish { key; value } ->
    let* _ = check_grants t key in
    let* () = Srvlib.diag "ds: publish" in
    if String.length key = 0 || String.length key >= key_len then
      Srvlib.reply_err src Errno.EINVAL
    else
      let* existing = find_key t key in
      let* row_opt =
        match existing with Some _ -> Prog.return existing | None -> find_free t
      in
      (match row_opt with
       | None -> Srvlib.reply_err src Errno.ENOSPC
       | Some row ->
         let* () = Prog.Mem.set_int t.kv ~row t.f_used 1 in
         let* () = Prog.Mem.set_str t.kv ~row t.f_key key in
         let* () = Prog.Mem.set_int t.kv ~row t.f_value value in
         let* n = Prog.Mem.get_cell t.c_publishes in
         let* () = Prog.Mem.set_cell t.c_publishes (n + 1) in
         let* () = notify_subscribers t key in
         Srvlib.reply_ok src 0)
  | Message.Ds_retrieve { key } ->
    let* row_opt = find_key t key in
    let* () = Srvlib.diag "ds: retrieve" in
    (match row_opt with
     | None -> Srvlib.reply_err src Errno.ENOENT
     | Some row ->
       let* value = Prog.Mem.get_int t.kv ~row t.f_value in
       let* n = Prog.Mem.get_cell t.c_retrieves in
       let* () = Prog.Mem.set_cell t.c_retrieves (n + 1) in
       Prog.reply src (Message.R_ds_value { value }))
  | Message.Ds_delete { key } ->
    let* row_opt = find_key t key in
    let* () = Srvlib.diag "ds: delete" in
    (match row_opt with
     | None -> Srvlib.reply_err src Errno.ENOENT
     | Some row ->
       let* () = Prog.Mem.set_int t.kv ~row t.f_used 0 in
       Srvlib.reply_ok src 0)
  | Message.Ds_subscribe { prefix } ->
    let* () = Srvlib.diag "ds: subscribe" in
    let* row_opt =
      Srvlib.scan ~rows:max_subs (fun row ->
          let* used = Prog.Mem.get_int t.subs ~row t.s_used in
          Prog.return (used = 0))
    in
    (match row_opt with
     | None -> Srvlib.reply_err src Errno.ENOSPC
     | Some row ->
       let* () = Prog.Mem.set_int t.subs ~row t.s_used 1 in
       let* () = Prog.Mem.set_int t.subs ~row t.s_ep src in
       let* () = Prog.Mem.set_str t.subs ~row t.s_prefix prefix in
       Srvlib.reply_ok src 0)
  | Message.Ping -> Prog.reply src Message.R_pong
  | _ -> Srvlib.reply_err src Errno.ENOSYS

let init t =
  let* () = Prog.Mem.set_cell t.c_publishes 0 in
  Prog.Mem.set_cell t.c_retrieves 0

let server t =
  { Kernel.srv_ep = Endpoint.ds;
    srv_name = "ds";
    srv_image = t.image;
    srv_clone_extra_kb = 240;
    srv_init = init t;
    srv_loop = Srvlib.simple_loop (handle t);
    srv_multithreaded = false }

let summary =
  let diag_out = (Endpoint.kernel, Message.Tag.T_diag) in
  Summary.make Endpoint.ds
    [ Summary.handler Message.Tag.T_ds_publish
        [ Summary.seg ~out:diag_out 2;
          Summary.seg ~out:(Endpoint.first_user, Message.Tag.T_ds_notify)
            ~maybe:true 40;
          Summary.seg 2 ];
      Summary.handler Message.Tag.T_ds_retrieve
        [ Summary.seg ~out:diag_out 30; Summary.seg 5 ];
      Summary.handler Message.Tag.T_ds_delete
        [ Summary.seg ~out:diag_out 25; Summary.seg 3 ];
      Summary.handler Message.Tag.T_ds_subscribe
        [ Summary.seg ~out:diag_out 2; Summary.seg 10 ];
      Summary.handler Message.Tag.T_ping [ Summary.seg 1 ] ]
