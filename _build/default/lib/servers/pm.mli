(** PM — the Process Manager.

    Owns the process table and implements fork/exec/exit/waitpid/kill
    plus the read-mostly identity calls. PM is the paper's running
    example: a fork() crash *before* PM has told VM/VFS about the child
    is recoverable (window still open); a crash *after* those
    state-modifying SEEPs is not, and under the OSIRIS policies leads to
    a controlled shutdown rather than inconsistent recovery.

    The boot-time init program registers the primordial user process
    (endpoint {!Endpoint.first_user}) with VM and VFS, which is how the
    workload root enters the process table. *)

type t

val create : unit -> t

val server : t -> Kernel.server

val summary : Summary.t

val max_procs : int
