open Prog.Syntax

let reply_ok dst v = Prog.reply dst (Message.R_ok v)

let reply_err dst err = Prog.reply dst (Message.R_err err)

let err_of_reply = function
  | Message.R_err e -> Some e
  | _ -> None

let call_retry dst msg =
  let rec go n =
    let* r = Prog.call dst msg in
    match r with
    | Message.R_err Errno.E_CRASH when n > 0 -> go (n - 1)
    | other -> Prog.return other
  in
  go 3

let scan ~rows pred =
  let rec go i =
    if i >= rows then Prog.return None
    else
      let* hit = pred i in
      if hit then Prog.return (Some i) else go (i + 1)
  in
  go 0

let diag line = Prog.send Endpoint.kernel (Message.Diag { line })

let simple_loop handle =
  let rec go () =
    let* src, msg = Prog.receive in
    let* () = handle src msg in
    go ()
  in
  go ()

let threaded_loop handle =
  let rec go () =
    let* src, msg = Prog.receive in
    let* () = Prog.spawn (handle src msg) in
    go ()
  in
  go ()
