open Prog.Syntax

let block_size = 1024
let block_count = 4096

type t = {
  image : Memimage.t;   (* tiny: driver bookkeeping only *)
  blocks : (int, string) Hashtbl.t;
  c_reads : Layout.Cell.t;
  c_writes : Layout.Cell.t;
}

let create () =
  let image = Memimage.create ~name:"bdev" ~size:4096 in
  let c_reads = Layout.Cell.alloc_int image "reads" in
  let c_writes = Layout.Cell.alloc_int image "writes" in
  { image; blocks = Hashtbl.create 256; c_reads; c_writes }

let peek_block t b = Option.value ~default:"" (Hashtbl.find_opt t.blocks b)

let poke_block t b data = Hashtbl.replace t.blocks b data

let handle t src msg =
  match msg with
  | Message.Bdev_read { block } ->
    if block < 0 || block >= block_count then Srvlib.reply_err src Errno.EINVAL
    else
      (* Device access latency. *)
      let* () = Prog.compute Costs.microkernel.Costs.c_disk_block in
      let* n = Prog.Mem.get_cell t.c_reads in
      let* () = Prog.Mem.set_cell t.c_reads (n + 1) in
      Prog.reply src (Message.R_read { data = peek_block t block })
  | Message.Bdev_write { block; data } ->
    if block < 0 || block >= block_count || String.length data > block_size then
      Srvlib.reply_err src Errno.EINVAL
    else
      let* () = Prog.compute Costs.microkernel.Costs.c_disk_block in
      let* n = Prog.Mem.get_cell t.c_writes in
      let* () = Prog.Mem.set_cell t.c_writes (n + 1) in
      Hashtbl.replace t.blocks block data;
      Srvlib.reply_ok src (String.length data)
  | Message.Ping -> Prog.reply src Message.R_pong
  | _ -> Srvlib.reply_err src Errno.ENOSYS

let server t =
  { Kernel.srv_ep = Endpoint.bdev;
    srv_name = "bdev";
    srv_image = t.image;
    srv_clone_extra_kb = 0;
    srv_init = Prog.return ();
    srv_loop = Srvlib.simple_loop (handle t);
    srv_multithreaded = false }
