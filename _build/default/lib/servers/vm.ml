open Prog.Syntax

let page_size = 4096
let total_pages = 16384      (* 64 MB of manageable memory *)
let max_procs = 64
let max_regions = 128
let default_pages = 16       (* fresh process image size, pages *)

(* Table VI: VM base usage 4,532 kB; its clone pre-allocates ~13.5 MB
   beyond the image copy. *)
let image_kb = 4532
let clone_extra_kb = 13500

type t = {
  image : Memimage.t;
  procs : Layout.Table.t;
  p_used : Layout.int_field;
  p_ep : Layout.int_field;
  p_pages : Layout.int_field;
  p_break : Layout.int_field;
  p_nregions : Layout.int_field;
  regions : Layout.Table.t;
  r_used : Layout.int_field;
  r_owner : Layout.int_field;
  r_pages : Layout.int_field;
  c_pages_used : Layout.Cell.t;
  c_next_region : Layout.Cell.t;
}

let create () =
  let image = Memimage.create ~name:"vm" ~size:(image_kb * 1024) in
  let spec = Layout.spec () in
  let p_used = Layout.int spec "used" in
  let p_ep = Layout.int spec "ep" in
  let p_pages = Layout.int spec "pages" in
  let p_break = Layout.int spec "break" in
  let p_nregions = Layout.int spec "nregions" in
  Layout.seal spec;
  let procs = Layout.Table.alloc image ~spec ~rows:max_procs in
  let rspec = Layout.spec () in
  let r_used = Layout.int rspec "used" in
  let r_owner = Layout.int rspec "owner" in
  let r_pages = Layout.int rspec "pages" in
  Layout.seal rspec;
  let regions = Layout.Table.alloc image ~spec:rspec ~rows:max_regions in
  let c_pages_used = Layout.Cell.alloc_int image "pages_used" in
  let c_next_region = Layout.Cell.alloc_int image "next_region" in
  { image; procs; p_used; p_ep; p_pages; p_break; p_nregions; regions;
    r_used; r_owner; r_pages; c_pages_used; c_next_region }

let find_proc t ep =
  Srvlib.scan ~rows:max_procs (fun row ->
      let* used = Prog.Mem.get_int t.procs ~row t.p_used in
      if used = 0 then Prog.return false
      else
        let* e = Prog.Mem.get_int t.procs ~row t.p_ep in
        Prog.return (e = ep))

let find_free_proc t =
  Srvlib.scan ~rows:max_procs (fun row ->
      let* used = Prog.Mem.get_int t.procs ~row t.p_used in
      Prog.return (used = 0))

let add_pages t n =
  let* used = Prog.Mem.get_cell t.c_pages_used in
  if used + n > total_pages then Prog.return false
  else
    let* () = Prog.Mem.set_cell t.c_pages_used (used + n) in
    Prog.return true

let write_proc_row t ~row ~ep ~pages =
  let* () = Prog.Mem.set_int t.procs ~row t.p_used 1 in
  let* () = Prog.Mem.set_int t.procs ~row t.p_ep ep in
  let* () = Prog.Mem.set_int t.procs ~row t.p_pages pages in
  let* () = Prog.Mem.set_int t.procs ~row t.p_break (pages * page_size) in
  Prog.Mem.set_int t.procs ~row t.p_nregions 0

let free_regions_of t ep =
  Prog.iter_range ~lo:0 ~hi:max_regions (fun row ->
      let* used = Prog.Mem.get_int t.regions ~row t.r_used in
      if used = 0 then Prog.return ()
      else
        let* owner = Prog.Mem.get_int t.regions ~row t.r_owner in
        if owner <> ep then Prog.return ()
        else
          let* pages = Prog.Mem.get_int t.regions ~row t.r_pages in
          let* total = Prog.Mem.get_cell t.c_pages_used in
          let* () = Prog.Mem.set_cell t.c_pages_used (total - pages) in
          Prog.Mem.set_int t.regions ~row t.r_used 0)

let pages_of_bytes len = (len + page_size - 1) / page_size

let handle t src msg =
  match msg with
  | Message.Vm_fork { parent; child } when src = Endpoint.pm ->
    let* parent_pages, parent_break =
      if parent = 0 then Prog.return (default_pages, default_pages * page_size)
      else
        let* prow = find_proc t parent in
        match prow with
        | None -> Prog.return (default_pages, default_pages * page_size)
        | Some row ->
          let* pages = Prog.Mem.get_int t.procs ~row t.p_pages in
          let* break = Prog.Mem.get_int t.procs ~row t.p_break in
          Prog.return (pages, break)
    in
    (* Validate and reserve, build the child's page tables (the kernel
       interaction that closes the window), then record bookkeeping. *)
    let* slot = find_free_proc t in
    (match slot with
     | None -> Srvlib.reply_err src Errno.ENOMEM
     | Some row ->
       let* ok = add_pages t parent_pages in
       if not ok then Srvlib.reply_err src Errno.ENOMEM
       else
         let* _ = Prog.kcall (Prog.K_mmu { proc = child }) in
         let* () = write_proc_row t ~row ~ep:child ~pages:parent_pages in
         let* () = Prog.Mem.set_int t.procs ~row t.p_break parent_break in
         Srvlib.reply_ok src 0)
  | Message.Vm_exec { proc; size } when src = Endpoint.pm ->
    let* row_opt = find_proc t proc in
    (match row_opt with
     | None -> Srvlib.reply_err src Errno.ESRCH
     | Some row ->
       let new_pages = max 1 (pages_of_bytes size) in
       let* old_pages = Prog.Mem.get_int t.procs ~row t.p_pages in
       let* total = Prog.Mem.get_cell t.c_pages_used in
       if total - old_pages + new_pages > total_pages then
         Srvlib.reply_err src Errno.ENOMEM
       else
         let* _ = Prog.kcall (Prog.K_mmu { proc }) in
         let* () = Prog.Mem.set_cell t.c_pages_used (total - old_pages + new_pages) in
         let* () = Prog.Mem.set_int t.procs ~row t.p_pages new_pages in
         let* () =
           Prog.Mem.set_int t.procs ~row t.p_break (new_pages * page_size)
         in
         Srvlib.reply_ok src 0)
  | Message.Vm_exit { proc } when src = Endpoint.pm ->
    let* row_opt = find_proc t proc in
    (match row_opt with
     | None -> Srvlib.reply_err src Errno.ESRCH
     | Some row ->
       let* pages = Prog.Mem.get_int t.procs ~row t.p_pages in
       let* total = Prog.Mem.get_cell t.c_pages_used in
       let* () = Prog.Mem.set_cell t.c_pages_used (total - pages) in
       let* nregions = Prog.Mem.get_int t.procs ~row t.p_nregions in
       let* _ = Prog.kcall (Prog.K_mmu { proc }) in
       let* () = Prog.Mem.set_int t.procs ~row t.p_used 0 in
       let* () = Prog.when_ (nregions > 0) (free_regions_of t proc) in
       Srvlib.reply_ok src 0)
  | Message.Vm_fork _ | Message.Vm_exec _ | Message.Vm_exit _ ->
    (* Lifecycle calls are PM's privilege. *)
    Srvlib.reply_err src Errno.EPERM
  | Message.Brk { delta } ->
    let* row_opt = find_proc t src in
    (match row_opt with
     | None -> Srvlib.reply_err src Errno.ESRCH
     | Some row ->
       let* break = Prog.Mem.get_int t.procs ~row t.p_break in
       let nbreak = break + delta in
       if nbreak < 0 then Srvlib.reply_err src Errno.EINVAL
       else
         let* pages = Prog.Mem.get_int t.procs ~row t.p_pages in
         let need = pages_of_bytes nbreak in
         let* ok =
           if need > pages then add_pages t (need - pages) else Prog.return true
         in
         if not ok then Srvlib.reply_err src Errno.ENOMEM
         else
           let* () =
             Prog.when_ (need <> pages)
               (Prog.bind (Prog.kcall (Prog.K_mmu { proc = src }))
                  (fun _ -> Prog.return ()))
           in
           let* () =
             Prog.when_ (need > pages)
               (Prog.Mem.set_int t.procs ~row t.p_pages need)
           in
           let* () = Prog.Mem.set_int t.procs ~row t.p_break nbreak in
           Prog.reply src (Message.R_brk { break = nbreak }))
  | Message.Brk_query ->
    let* row_opt = find_proc t src in
    (match row_opt with
     | None -> Srvlib.reply_err src Errno.ESRCH
     | Some row ->
       let* break = Prog.Mem.get_int t.procs ~row t.p_break in
       Prog.reply src (Message.R_brk { break }))
  | Message.Mmap { len } ->
    if len <= 0 then Srvlib.reply_err src Errno.EINVAL
    else
      let* slot =
        Srvlib.scan ~rows:max_regions (fun row ->
            let* used = Prog.Mem.get_int t.regions ~row t.r_used in
            Prog.return (used = 0))
      in
      (match slot with
       | None -> Srvlib.reply_err src Errno.ENOMEM
       | Some row ->
         let pages = pages_of_bytes len in
         let* ok = add_pages t pages in
         if not ok then Srvlib.reply_err src Errno.ENOMEM
         else
           let* _ = Prog.kcall (Prog.K_mmu { proc = src }) in
           let* () = Prog.Mem.set_int t.regions ~row t.r_used 1 in
           let* () = Prog.Mem.set_int t.regions ~row t.r_owner src in
           let* () = Prog.Mem.set_int t.regions ~row t.r_pages pages in
           let* n = Prog.Mem.get_cell t.c_next_region in
           let* () = Prog.Mem.set_cell t.c_next_region (n + 1) in
           let* prow = find_proc t src in
           let* () =
             match prow with
             | None -> Prog.return ()
             | Some prow ->
               let* k = Prog.Mem.get_int t.procs ~row:prow t.p_nregions in
               Prog.Mem.set_int t.procs ~row:prow t.p_nregions (k + 1)
           in
           Prog.reply src (Message.R_mmap { id = row }))
  | Message.Munmap { id } ->
    if id < 0 || id >= max_regions then Srvlib.reply_err src Errno.EINVAL
    else
      let* used = Prog.Mem.get_int t.regions ~row:id t.r_used in
      let* owner = Prog.Mem.get_int t.regions ~row:id t.r_owner in
      if used = 0 || owner <> src then Srvlib.reply_err src Errno.EINVAL
      else
        let* _ = Prog.kcall (Prog.K_mmu { proc = src }) in
        let* pages = Prog.Mem.get_int t.regions ~row:id t.r_pages in
        let* total = Prog.Mem.get_cell t.c_pages_used in
        let* () = Prog.Mem.set_cell t.c_pages_used (total - pages) in
        let* () = Prog.Mem.set_int t.regions ~row:id t.r_used 0 in
        let* prow = find_proc t src in
        let* () =
          match prow with
          | None -> Prog.return ()
          | Some prow ->
            let* k = Prog.Mem.get_int t.procs ~row:prow t.p_nregions in
            Prog.Mem.set_int t.procs ~row:prow t.p_nregions (max 0 (k - 1))
        in
        Srvlib.reply_ok src 0
  | Message.Vm_info ->
    let* used = Prog.Mem.get_cell t.c_pages_used in
    Prog.reply src
      (Message.R_vm_info { pages_used = used; pages_free = total_pages - used })
  | Message.Ping -> Prog.reply src Message.R_pong
  | _ -> Srvlib.reply_err src Errno.ENOSYS

let init t =
  let* () = Prog.Mem.set_cell t.c_pages_used 0 in
  Prog.Mem.set_cell t.c_next_region 0

let server t =
  { Kernel.srv_ep = Endpoint.vm;
    srv_name = "vm";
    srv_image = t.image;
    srv_clone_extra_kb = clone_extra_kb;
    srv_init = init t;
    srv_loop = Srvlib.simple_loop (handle t);
    srv_multithreaded = false }

let summary =
  Summary.make Endpoint.vm
    [ Summary.handler Message.Tag.T_vm_fork
        [ Summary.seg ~out:(Endpoint.kernel, Message.Tag.T_kcall) 12; Summary.seg 28 ];
      Summary.handler Message.Tag.T_vm_exec
        [ Summary.seg ~out:(Endpoint.kernel, Message.Tag.T_kcall) 12; Summary.seg 12 ];
      Summary.handler Message.Tag.T_vm_exit
        [ Summary.seg ~out:(Endpoint.kernel, Message.Tag.T_kcall) 10; Summary.seg 14 ];
      Summary.handler Message.Tag.T_brk
        [ Summary.seg ~out:(Endpoint.kernel, Message.Tag.T_kcall) ~maybe:true 18; Summary.seg 5 ];
      Summary.handler Message.Tag.T_brk_query [ Summary.seg 14 ];
      Summary.handler Message.Tag.T_mmap
        [ Summary.seg ~out:(Endpoint.kernel, Message.Tag.T_kcall) 140; Summary.seg 30 ];
      Summary.handler Message.Tag.T_munmap
        [ Summary.seg ~out:(Endpoint.kernel, Message.Tag.T_kcall) 6; Summary.seg 25 ];
      Summary.handler Message.Tag.T_vm_info [ Summary.seg 3 ];
      Summary.handler Message.Tag.T_ping [ Summary.seg 1 ] ]
