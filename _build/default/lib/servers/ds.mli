(** DS — the Data Store server: a persistent key-value service used by
    other components and by applications (MINIX 3's ds).

    DS is the paper's example of a server whose coverage differs most
    between policies (Table I: 47.1 % pessimistic vs 92.8 % enhanced):
    each handler emits an early diagnostic through a non-state-modifying
    SEEP, which closes the window immediately under the pessimistic
    policy but is ignored by the enhanced one, and the bulk of its
    handlers (retrievals) never interact with other components at all. *)

type t

val create : unit -> t

val server : t -> Kernel.server

val summary : Summary.t
(** Static interaction summary for the recovery-window analysis. *)

val capacity : int
(** Maximum number of key-value pairs. *)
