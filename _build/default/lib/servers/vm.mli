(** VM — the Virtual Memory Manager.

    Tracks per-process address spaces (page counts and program break)
    and anonymous mappings, and serves PM's fork/exec/exit lifecycle
    calls. VM is the component whose recovery clone dominates Table VI:
    a recovered VM cannot ask the defunct VM for memory, so its clone
    pre-allocates a large pool ([clone_extra_kb]). *)

type t

val create : unit -> t

val server : t -> Kernel.server

val summary : Summary.t

val page_size : int
val total_pages : int
