open Prog.Syntax

let max_inodes = 256
let direct_blocks = 8
(* One single-indirect block of pointers extends a file to
   direct + block_size/8 blocks (8 KiB + 128 KiB with 1 KiB blocks). *)
let indirect_slots = Bdev.block_size / 8
let max_blocks_per_file = direct_blocks + indirect_slots
let name_len = 32
let max_file_size = max_blocks_per_file * Bdev.block_size

let kind_free = 0
let kind_file = 1
let kind_dir = 2

let image_kb = 512

type t = {
  image : Memimage.t;
  inodes : Layout.Table.t;
  i_kind : Layout.int_field;
  i_size : Layout.int_field;
  i_parent : Layout.int_field;
  i_name : Layout.str_field;
  i_blocks : Layout.int_field array;  (* direct: block+1; 0 = unallocated *)
  i_indirect : Layout.int_field;      (* indirect block+1; 0 = none *)
  freelist : Layout.Table.t;          (* per-block next pointer *)
  b_next : Layout.int_field;
  c_free_head : Layout.Cell.t;        (* block+1; 0 = exhausted *)
  c_n_files : Layout.Cell.t;
  (* Buffer cache: file data is staged through the server image on its
     way to/from the device (MINIX keeps the cache in MFS's data
     segment). The staging stores are what the checkpointing
     instrumentation logs on the data path. *)
  cache : Layout.Table.t;
  cb_tag : Layout.int_field;
  cb_data : Layout.str_field;
  c_cache_next : Layout.Cell.t;
}

let cache_slots = 8

let create_raw () =
  let image = Memimage.create ~name:"mfs" ~size:(image_kb * 1024) in
  let spec = Layout.spec () in
  let i_kind = Layout.int spec "kind" in
  let i_size = Layout.int spec "size" in
  let i_parent = Layout.int spec "parent" in
  let i_name = Layout.str spec "name" ~len:name_len in
  let i_blocks =
    Array.init direct_blocks (fun i -> Layout.int spec (Printf.sprintf "b%d" i))
  in
  let i_indirect = Layout.int spec "indirect" in
  Layout.seal spec;
  let inodes = Layout.Table.alloc image ~spec ~rows:max_inodes in
  let bspec = Layout.spec () in
  let b_next = Layout.int bspec "next" in
  Layout.seal bspec;
  let freelist = Layout.Table.alloc image ~spec:bspec ~rows:Bdev.block_count in
  let c_free_head = Layout.Cell.alloc_int image "free_head" in
  let c_n_files = Layout.Cell.alloc_int image "n_files" in
  let cspec = Layout.spec () in
  let cb_tag = Layout.int cspec "tag" in
  let cb_data = Layout.str cspec "data" ~len:Bdev.block_size in
  Layout.seal cspec;
  let cache = Layout.Table.alloc image ~spec:cspec ~rows:8 in
  let c_cache_next = Layout.Cell.alloc_int image "cache_next" in
  { image; inodes; i_kind; i_size; i_parent; i_name; i_blocks; i_indirect;
    freelist; b_next; c_free_head; c_n_files; cache; cb_tag; cb_data;
    c_cache_next }

(* ---------------- path handling (pure helpers) -------------------- *)

let split_path path =
  List.filter (fun c -> c <> "") (String.split_on_char '/' path)

(* ---------------- inode helpers ----------------------------------- *)

let find_child t ~parent ~name =
  Srvlib.scan ~rows:max_inodes (fun row ->
      let* kind = Prog.Mem.get_int t.inodes ~row t.i_kind in
      if kind = kind_free || row = 0 then Prog.return false
      else
        let* p = Prog.Mem.get_int t.inodes ~row t.i_parent in
        if p <> parent then Prog.return false
        else
          let* n = Prog.Mem.get_str t.inodes ~row t.i_name in
          Prog.return (String.equal n name))

let resolve t path =
  let components = split_path path in
  let rec walk cur = function
    | [] -> Prog.return (Ok cur)
    | comp :: rest ->
      if String.length comp >= name_len then
        Prog.return (Error Errno.ENAMETOOLONG)
      else
        let* kind = Prog.Mem.get_int t.inodes ~row:cur t.i_kind in
        if kind <> kind_dir then Prog.return (Error Errno.ENOTDIR)
        else
          let* child = find_child t ~parent:cur ~name:comp in
          (match child with
           | None -> Prog.return (Error Errno.ENOENT)
           | Some ino -> walk ino rest)
  in
  walk 0 components

(* Split "/a/b/leaf" into the inode of "/a/b" and "leaf". *)
let resolve_parent t path =
  match List.rev (split_path path) with
  | [] -> Prog.return (Error Errno.EINVAL)
  | leaf :: rev_dir ->
    if String.length leaf >= name_len then Prog.return (Error Errno.ENAMETOOLONG)
    else
      let dir_path = String.concat "/" (List.rev rev_dir) in
      let* r = resolve t ("/" ^ dir_path) in
      (match r with
       | Error e -> Prog.return (Error e)
       | Ok dir_ino -> Prog.return (Ok (dir_ino, leaf)))

let find_free_inode t =
  Srvlib.scan ~rows:max_inodes (fun row ->
      if row = 0 then Prog.return false
      else
        let* kind = Prog.Mem.get_int t.inodes ~row t.i_kind in
        Prog.return (kind = kind_free))

(* ---------------- block allocation -------------------------------- *)

let alloc_block t =
  let* head = Prog.Mem.get_cell t.c_free_head in
  if head = 0 then Prog.return None
  else
    let block = head - 1 in
    let* next = Prog.Mem.get_int t.freelist ~row:block t.b_next in
    let* () = Prog.Mem.set_cell t.c_free_head next in
    Prog.return (Some block)

let free_block t block =
  let* head = Prog.Mem.get_cell t.c_free_head in
  let* () = Prog.Mem.set_int t.freelist ~row:block t.b_next head in
  Prog.Mem.set_cell t.c_free_head (block + 1)

(* ---------------- data path --------------------------------------- *)

(* The indirect block stores 8-byte little-endian pointers (block+1). *)
let ind_slot data slot =
  if String.length data >= (slot + 1) * 8 then
    Int64.to_int (Bytes.get_int64_le (Bytes.of_string data) (slot * 8))
  else 0

let ind_set data slot v =
  let b = Bytes.make Bdev.block_size '\000' in
  Bytes.blit_string data 0 b 0 (min (String.length data) Bdev.block_size);
  Bytes.set_int64_le b (slot * 8) (Int64.of_int v);
  Bytes.to_string b

let fetch_block block =
  let* r = Prog.call Endpoint.bdev (Message.Bdev_read { block }) in
  match r with
  | Message.R_read { data } -> Prog.return data
  | _ -> Prog.return ""

(* Pointer to the idx-th block of a file (block+1; 0 = hole). Indexes
   past the direct range go through the single-indirect block, costing
   a device read. *)
let block_of t ~ino ~idx =
  if idx < direct_blocks then Prog.Mem.get_int t.inodes ~row:ino t.i_blocks.(idx)
  else
    let* ind = Prog.Mem.get_int t.inodes ~row:ino t.i_indirect in
    if ind = 0 then Prog.return 0
    else
      let* data = fetch_block (ind - 1) in
      Prog.return (ind_slot data (idx - direct_blocks))

(* Record a freshly allocated block pointer, creating the indirect
   block on demand. Returns false if the indirect block cannot be
   allocated. *)
let set_block t ~ino ~idx v =
  if idx < direct_blocks then
    let* () = Prog.Mem.set_int t.inodes ~row:ino t.i_blocks.(idx) v in
    Prog.return true
  else
    let* ind = Prog.Mem.get_int t.inodes ~row:ino t.i_indirect in
    let* ind_block =
      if ind <> 0 then Prog.return (Some (ind - 1, false))
      else
        let* nb = alloc_block t in
        match nb with
        | None -> Prog.return None
        | Some b ->
          let* () = Prog.Mem.set_int t.inodes ~row:ino t.i_indirect (b + 1) in
          Prog.return (Some (b, true))
    in
    match ind_block with
    | None -> Prog.return false
    | Some (ib, fresh) ->
      (* A recycled block still holds its previous contents on the
         device; a brand-new pointer block must start zeroed. *)
      let* data = if fresh then Prog.return "" else fetch_block ib in
      let ndata = ind_set data (idx - direct_blocks) v in
      let* _ = Prog.call Endpoint.bdev (Message.Bdev_write { block = ib; data = ndata }) in
      Prog.return true

(* Stage a block's contents in the next cache slot (round-robin). *)
let stage_block t ~block data =
  let open Prog.Syntax in
  let* slot = Prog.Mem.get_cell t.c_cache_next in
  let row = slot mod cache_slots in
  let* () = Prog.Mem.set_cell t.c_cache_next (slot + 1) in
  let* () = Prog.Mem.set_int t.cache ~row t.cb_tag (block + 1) in
  Prog.Mem.set_str t.cache ~row t.cb_data data

(* Read [len] bytes at [off]; holes read as NULs, reads past the size
   are clamped. *)
let read_data t ~ino ~off ~len =
  let* size = Prog.Mem.get_int t.inodes ~row:ino t.i_size in
  let len = max 0 (min len (size - off)) in
  if len <= 0 then Prog.return ""
  else begin
    let buf = Buffer.create len in
    let rec go pos =
      if pos >= off + len then Prog.return (Buffer.contents buf)
      else begin
        let idx = pos / Bdev.block_size in
        let boff = pos mod Bdev.block_size in
        let chunk = min (Bdev.block_size - boff) (off + len - pos) in
        let* bptr = block_of t ~ino ~idx in
        let* data =
          if bptr = 0 then Prog.return (String.make chunk '\000')
          else
            let* r = Prog.call Endpoint.bdev (Message.Bdev_read { block = bptr - 1 }) in
            match r with
            | Message.R_read { data } ->
              let* () = stage_block t ~block:(bptr - 1) data in
              let data =
                if String.length data < Bdev.block_size then
                  data ^ String.make (Bdev.block_size - String.length data) '\000'
                else data
              in
              Prog.return (String.sub data boff chunk)
            | _ -> Prog.return (String.make chunk '\000')
        in
        Buffer.add_string buf data;
        go (pos + chunk)
      end
    in
    go off
  end

(* Write [data] at [off], allocating blocks on demand and growing the
   size. Partial-block updates read-modify-write through the device. *)
let write_data t ~ino ~off ~data =
  let len = String.length data in
  if off < 0 || off + len > max_file_size then Prog.return (Error Errno.ENOSPC)
  else begin
    let rec go pos =
      if pos >= len then
        let* size = Prog.Mem.get_int t.inodes ~row:ino t.i_size in
        let* () =
          Prog.when_ (off + len > size)
            (Prog.Mem.set_int t.inodes ~row:ino t.i_size (off + len))
        in
        Prog.return (Ok len)
      else begin
        let fpos = off + pos in
        let idx = fpos / Bdev.block_size in
        let boff = fpos mod Bdev.block_size in
        let chunk = min (Bdev.block_size - boff) (len - pos) in
        let* bptr = block_of t ~ino ~idx in
        let* balloc =
          if bptr <> 0 then Prog.return (Some (bptr - 1))
          else
            let* nb = alloc_block t in
            match nb with
            | None -> Prog.return None
            | Some b ->
              let* recorded = set_block t ~ino ~idx (b + 1) in
              if recorded then Prog.return (Some b)
              else
                let* () = free_block t b in
                Prog.return None
        in
        match balloc with
        | None -> Prog.return (Error Errno.ENOSPC)
        | Some block ->
          let* merged =
            if boff = 0 && chunk = Bdev.block_size then
              Prog.return (String.sub data pos chunk)
            else
              let* r = Prog.call Endpoint.bdev (Message.Bdev_read { block }) in
              let old =
                match r with
                | Message.R_read { data = d } ->
                  if String.length d < Bdev.block_size then
                    d ^ String.make (Bdev.block_size - String.length d) '\000'
                  else d
                | _ -> String.make Bdev.block_size '\000'
              in
              let b = Bytes.of_string old in
              Bytes.blit_string data pos b boff chunk;
              Prog.return (Bytes.to_string b)
          in
          let* r = Prog.call Endpoint.bdev (Message.Bdev_write { block; data = merged }) in
          (* Refresh the cache copy once the device has the block. *)
          let* () = stage_block t ~block merged in
          (match Srvlib.err_of_reply r with
           | Some e -> Prog.return (Error e)
           | None -> go (pos + chunk))
      end
    in
    go 0
  end

let free_inode_blocks t ~ino ~from_idx =
  let* () =
    Prog.iter_range ~lo:from_idx ~hi:direct_blocks (fun idx ->
        if idx < from_idx then Prog.return ()
        else
          let* bptr = Prog.Mem.get_int t.inodes ~row:ino t.i_blocks.(idx) in
          if bptr = 0 then Prog.return ()
          else
            let* () = free_block t (bptr - 1) in
            Prog.Mem.set_int t.inodes ~row:ino t.i_blocks.(idx) 0)
  in
  let* ind = Prog.Mem.get_int t.inodes ~row:ino t.i_indirect in
  if ind = 0 then Prog.return ()
  else
    let keep_from = max 0 (from_idx - direct_blocks) in
    let* data = fetch_block (ind - 1) in
    let* () =
      Prog.iter_range ~lo:keep_from ~hi:indirect_slots (fun slot ->
          let bptr = ind_slot data slot in
          if bptr = 0 then Prog.return () else free_block t (bptr - 1))
    in
    if keep_from = 0 then begin
      (* The whole indirect range is gone: release the pointer block. *)
      let* () = free_block t (ind - 1) in
      Prog.Mem.set_int t.inodes ~row:ino t.i_indirect 0
    end
    else
      (* Zero the freed tail of the pointer block. *)
      let rec zero data slot =
        if slot >= indirect_slots then data else zero (ind_set data slot 0) (slot + 1)
      in
      let ndata = zero data keep_from in
      let* _ =
        Prog.call Endpoint.bdev (Message.Bdev_write { block = ind - 1; data = ndata })
      in
      Prog.return ()

let dir_is_empty t ~ino =
  let* child =
    Srvlib.scan ~rows:max_inodes (fun row ->
        if row = 0 then Prog.return false
        else
          let* kind = Prog.Mem.get_int t.inodes ~row t.i_kind in
          if kind = kind_free then Prog.return false
          else
            let* p = Prog.Mem.get_int t.inodes ~row t.i_parent in
            Prog.return (p = ino))
  in
  Prog.return (child = None)

let lookup_reply t src ino =
  let* kind = Prog.Mem.get_int t.inodes ~row:ino t.i_kind in
  let* size = Prog.Mem.get_int t.inodes ~row:ino t.i_size in
  Prog.reply src (Message.R_lookup { ino; size; is_dir = kind = kind_dir })

let create_node t src path ~kind =
  let* pr = resolve_parent t path in
  match pr with
  | Error e -> Srvlib.reply_err src e
  | Ok (parent, leaf) ->
    let* existing = find_child t ~parent ~name:leaf in
    (match existing with
     | Some _ -> Srvlib.reply_err src Errno.EEXIST
     | None ->
       let* slot = find_free_inode t in
       (match slot with
        | None -> Srvlib.reply_err src Errno.ENFILE
        | Some ino ->
          let* () = Prog.Mem.set_int t.inodes ~row:ino t.i_kind kind in
          let* () = Prog.Mem.set_int t.inodes ~row:ino t.i_size 0 in
          let* () = Prog.Mem.set_int t.inodes ~row:ino t.i_parent parent in
          let* () = Prog.Mem.set_str t.inodes ~row:ino t.i_name leaf in
          let* n = Prog.Mem.get_cell t.c_n_files in
          let* () = Prog.Mem.set_cell t.c_n_files (n + 1) in
          lookup_reply t src ino))

let handle t src msg =
  match msg with
  | Message.Mfs_lookup { path } ->
    let* r = resolve t path in
    (match r with
     | Error e -> Srvlib.reply_err src e
     | Ok ino -> lookup_reply t src ino)
  | Message.Mfs_create { path } -> create_node t src path ~kind:kind_file
  | Message.Mfs_mkdir { path } -> create_node t src path ~kind:kind_dir
  | Message.Mfs_read { ino; off; len } ->
    if ino < 0 || ino >= max_inodes || off < 0 || len < 0 then
      Srvlib.reply_err src Errno.EINVAL
    else
      let* kind = Prog.Mem.get_int t.inodes ~row:ino t.i_kind in
      if kind <> kind_file then Srvlib.reply_err src Errno.EISDIR
      else
        let* data = read_data t ~ino ~off ~len in
        Prog.reply src (Message.R_read { data })
  | Message.Mfs_write { ino; off; data } ->
    if ino < 0 || ino >= max_inodes || off < 0 then
      Srvlib.reply_err src Errno.EINVAL
    else
      let* kind = Prog.Mem.get_int t.inodes ~row:ino t.i_kind in
      if kind <> kind_file then Srvlib.reply_err src Errno.EISDIR
      else
        let* r = write_data t ~ino ~off ~data in
        (match r with
         | Error e -> Srvlib.reply_err src e
         | Ok n -> Srvlib.reply_ok src n)
  | Message.Mfs_trunc { ino; len } ->
    if ino < 0 || ino >= max_inodes || len < 0 || len > max_file_size then
      Srvlib.reply_err src Errno.EINVAL
    else
      let* kind = Prog.Mem.get_int t.inodes ~row:ino t.i_kind in
      if kind <> kind_file then Srvlib.reply_err src Errno.EISDIR
      else
        let keep = (len + Bdev.block_size - 1) / Bdev.block_size in
        let* () = free_inode_blocks t ~ino ~from_idx:keep in
        let* () = Prog.Mem.set_int t.inodes ~row:ino t.i_size len in
        Srvlib.reply_ok src 0
  | Message.Mfs_unlink { path } ->
    let* r = resolve t path in
    (match r with
     | Error e -> Srvlib.reply_err src e
     | Ok 0 -> Srvlib.reply_err src Errno.EPERM
     | Ok ino ->
       let* kind = Prog.Mem.get_int t.inodes ~row:ino t.i_kind in
       if kind = kind_dir then Srvlib.reply_err src Errno.EISDIR
       else
         let* () = free_inode_blocks t ~ino ~from_idx:0 in
         let* () = Prog.Mem.set_int t.inodes ~row:ino t.i_kind kind_free in
         let* n = Prog.Mem.get_cell t.c_n_files in
         let* () = Prog.Mem.set_cell t.c_n_files (n - 1) in
         Srvlib.reply_ok src 0)
  | Message.Mfs_rmdir { path } ->
    let* r = resolve t path in
    (match r with
     | Error e -> Srvlib.reply_err src e
     | Ok 0 -> Srvlib.reply_err src Errno.EPERM
     | Ok ino ->
       let* kind = Prog.Mem.get_int t.inodes ~row:ino t.i_kind in
       if kind <> kind_dir then Srvlib.reply_err src Errno.ENOTDIR
       else
         let* empty = dir_is_empty t ~ino in
         if not empty then Srvlib.reply_err src Errno.ENOTEMPTY
         else
           let* () = Prog.Mem.set_int t.inodes ~row:ino t.i_kind kind_free in
           Srvlib.reply_ok src 0)
  | Message.Mfs_stat { ino } ->
    if ino < 0 || ino >= max_inodes then Srvlib.reply_err src Errno.EINVAL
    else
      let* kind = Prog.Mem.get_int t.inodes ~row:ino t.i_kind in
      if kind = kind_free then Srvlib.reply_err src Errno.ENOENT
      else
        let* size = Prog.Mem.get_int t.inodes ~row:ino t.i_size in
        Prog.reply src
          (Message.R_stat { st_ino = ino; st_size = size; st_is_dir = kind = kind_dir })
  | Message.Mfs_rename { src = from_path; dst = to_path } ->
    let* r = resolve t from_path in
    (match r with
     | Error e -> Srvlib.reply_err src e
     | Ok 0 -> Srvlib.reply_err src Errno.EPERM
     | Ok ino ->
       let* pr = resolve_parent t to_path in
       (match pr with
        | Error e -> Srvlib.reply_err src e
        | Ok (nparent, nleaf) ->
          let* existing = find_child t ~parent:nparent ~name:nleaf in
          let* clear =
            match existing with
            | None -> Prog.return (Ok ())
            | Some old when old <> ino ->
              let* okind = Prog.Mem.get_int t.inodes ~row:old t.i_kind in
              if okind = kind_dir then Prog.return (Error Errno.EISDIR)
              else
                let* () = free_inode_blocks t ~ino:old ~from_idx:0 in
                let* () = Prog.Mem.set_int t.inodes ~row:old t.i_kind kind_free in
                Prog.return (Ok ())
            | Some _ -> Prog.return (Ok ())
          in
          (match clear with
           | Error e -> Srvlib.reply_err src e
           | Ok () ->
             let* () = Prog.Mem.set_int t.inodes ~row:ino t.i_parent nparent in
             let* () = Prog.Mem.set_str t.inodes ~row:ino t.i_name nleaf in
             Srvlib.reply_ok src 0)))
  | Message.Mfs_readdir { ino } ->
    if ino < 0 || ino >= max_inodes then Srvlib.reply_err src Errno.EINVAL
    else
      let* kind = Prog.Mem.get_int t.inodes ~row:ino t.i_kind in
      if kind <> kind_dir then Srvlib.reply_err src Errno.ENOTDIR
      else
        let rec collect row acc =
          if row >= max_inodes then Prog.return (List.rev acc)
          else
            let* k = Prog.Mem.get_int t.inodes ~row t.i_kind in
            if k = kind_free || row = 0 then collect (row + 1) acc
            else
              let* parent = Prog.Mem.get_int t.inodes ~row t.i_parent in
              if parent <> ino then collect (row + 1) acc
              else
                let* name = Prog.Mem.get_str t.inodes ~row t.i_name in
                collect (row + 1) (name :: acc)
        in
        let* names = collect 1 [] in
        Prog.reply src (Message.R_names { names })
  | Message.Mfs_sync ->
    (* The RAM disk is always consistent; sync is a costed no-op. *)
    let* () = Prog.compute 50 in
    Srvlib.reply_ok src 0
  | Message.Ping -> Prog.reply src Message.R_pong
  | _ -> Srvlib.reply_err src Errno.ENOSYS

(* mkfs: root directory at inode 0 and a free list chaining all blocks.
   Done directly (pre-boot, uninstrumented), like building a disk image
   offline. *)
let mkfs t =
  Layout.Table.set_int t.inodes ~row:0 t.i_kind kind_dir;
  Layout.Table.set_int t.inodes ~row:0 t.i_parent 0;
  Layout.Table.set_str t.inodes ~row:0 t.i_name "";
  for b = 0 to Bdev.block_count - 1 do
    Layout.Table.set_int t.freelist ~row:b t.b_next
      (if b + 1 < Bdev.block_count then b + 2 else 0)
  done;
  Layout.Cell.set t.c_free_head 1;
  Layout.Cell.set t.c_n_files 0

(* ---------------- direct pre-boot population ---------------------- *)

let direct_split_resolve t path =
  let rec walk cur = function
    | [] -> Some cur
    | comp :: rest ->
      let rec find row =
        if row >= max_inodes then None
        else if
          row <> 0
          && Layout.Table.get_int t.inodes ~row t.i_kind <> kind_free
          && Layout.Table.get_int t.inodes ~row t.i_parent = cur
          && String.equal (Layout.Table.get_str t.inodes ~row t.i_name) comp
        then Some row
        else find (row + 1)
      in
      (match find 1 with None -> None | Some ino -> walk ino rest)
  in
  walk 0 (split_path path)

let direct_free_inode t =
  let rec find row =
    if row >= max_inodes then failwith "mfs preload: inode table full"
    else if Layout.Table.get_int t.inodes ~row t.i_kind = kind_free then row
    else find (row + 1)
  in
  find 1

let direct_new_node t path kind =
  match List.rev (split_path path) with
  | [] -> failwith "mfs preload: empty path"
  | leaf :: rev_dir ->
    let dir = "/" ^ String.concat "/" (List.rev rev_dir) in
    (match direct_split_resolve t dir with
     | None -> failwith ("mfs preload: missing parent for " ^ path)
     | Some parent ->
       let ino = direct_free_inode t in
       Layout.Table.set_int t.inodes ~row:ino t.i_kind kind;
       Layout.Table.set_int t.inodes ~row:ino t.i_size 0;
       Layout.Table.set_int t.inodes ~row:ino t.i_parent parent;
       Layout.Table.set_str t.inodes ~row:ino t.i_name leaf;
       Layout.Cell.set t.c_n_files (Layout.Cell.get t.c_n_files + 1);
       ino)

let add_dir t path =
  match direct_split_resolve t path with
  | Some _ -> ()
  | None -> ignore (direct_new_node t path kind_dir)

let add_file t ~bdev ~path ~content =
  if String.length content > direct_blocks * Bdev.block_size then
    failwith ("mfs preload: file exceeds the direct range: " ^ path);
  let ino = direct_new_node t path kind_file in
  let len = String.length content in
  let nblocks = (len + Bdev.block_size - 1) / Bdev.block_size in
  for idx = 0 to nblocks - 1 do
    let head = Layout.Cell.get t.c_free_head in
    if head = 0 then failwith "mfs preload: out of blocks";
    let block = head - 1 in
    Layout.Cell.set t.c_free_head
      (Layout.Table.get_int t.freelist ~row:block t.b_next);
    Layout.Table.set_int t.inodes ~row:ino t.i_blocks.(idx) (block + 1);
    let off = idx * Bdev.block_size in
    let chunk = min Bdev.block_size (len - off) in
    Bdev.poke_block bdev block (String.sub content off chunk)
  done;
  Layout.Table.set_int t.inodes ~row:ino t.i_size len

let init _t = Prog.return ()

let corrupt_for_test t =
  (* Point the free-list head at the root of an allocated chain: the
     first allocated block found in the inode table. *)
  let rec find ino =
    if ino >= max_inodes then 1
    else
      let b = Layout.Table.get_int t.inodes ~row:ino t.i_blocks.(0) in
      if b <> 0 then b else find (ino + 1)
  in
  Layout.Cell.set t.c_free_head (find 0)

(* fsck (tests only): direct-table block conservation check. *)
let check_invariants t ~bdev =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let seen = Array.make Bdev.block_count 0 in
  let claim what block =
    if block < 0 || block >= Bdev.block_count then
      err "%s: block %d out of range" what block
    else begin
      seen.(block) <- seen.(block) + 1;
      if seen.(block) > 1 then err "%s: block %d multiply referenced" what block
      else Ok ()
    end
  in
  let ( let$ ) r k = match r with Error _ as e -> e | Ok () -> k () in
  (* 1. Free list: no cycles, claims each block once. *)
  let rec walk_free head steps =
    if head = 0 then Ok ()
    else if steps > Bdev.block_count then Error "free list cycle"
    else
      let$ () = claim "free list" (head - 1) in
      walk_free (Layout.Table.get_int t.freelist ~row:(head - 1) t.b_next)
        (steps + 1)
  in
  let$ () = walk_free (Layout.Cell.get t.c_free_head) 0 in
  (* 2. Inodes: directs, indirect pointer block, indirect slots. *)
  let rec walk_inodes ino =
    if ino >= max_inodes then Ok ()
    else begin
      let kind = Layout.Table.get_int t.inodes ~row:ino t.i_kind in
      if kind = kind_free then walk_inodes (ino + 1)
      else begin
        let parent = Layout.Table.get_int t.inodes ~row:ino t.i_parent in
        if ino <> 0
           && Layout.Table.get_int t.inodes ~row:parent t.i_kind <> kind_dir
        then err "inode %d: parent %d is not a directory" ino parent
        else begin
          let rec directs idx =
            if idx >= direct_blocks then Ok ()
            else
              let bptr = Layout.Table.get_int t.inodes ~row:ino t.i_blocks.(idx) in
              if bptr = 0 then directs (idx + 1)
              else
                let$ () = claim (Printf.sprintf "inode %d direct" ino) (bptr - 1) in
                directs (idx + 1)
          in
          let$ () = directs 0 in
          let ind = Layout.Table.get_int t.inodes ~row:ino t.i_indirect in
          let$ () =
            if ind = 0 then Ok ()
            else
              let$ () = claim (Printf.sprintf "inode %d indirect ptr" ino) (ind - 1) in
              let data = Bdev.peek_block bdev (ind - 1) in
              let rec slots slot =
                if slot >= indirect_slots then Ok ()
                else
                  let bptr = ind_slot data slot in
                  if bptr = 0 then slots (slot + 1)
                  else
                    let$ () =
                      claim (Printf.sprintf "inode %d indirect slot" ino) (bptr - 1)
                    in
                    slots (slot + 1)
              in
              slots 0
          in
          walk_inodes (ino + 1)
        end
      end
    end
  in
  let$ () = walk_inodes 0 in
  (* 3. Conservation: every block accounted for exactly once. *)
  let missing = ref [] in
  Array.iteri (fun b n -> if n = 0 then missing := b :: !missing) seen;
  match !missing with
  | [] -> Ok ()
  | b :: _ ->
    err "%d blocks leaked (neither free nor referenced), e.g. %d"
      (List.length !missing) b

let create () =
  let t = create_raw () in
  mkfs t;
  t

let server t =
  { Kernel.srv_ep = Endpoint.mfs;
    srv_name = "mfs";
    srv_image = t.image;
    srv_clone_extra_kb = 512;
    srv_init = init t;
    srv_loop = Srvlib.simple_loop (handle t);
    srv_multithreaded = false }

let summary =
  let bdev_r = (Endpoint.bdev, Message.Tag.T_bdev_read) in
  let bdev_w = (Endpoint.bdev, Message.Tag.T_bdev_write) in
  Summary.make Endpoint.mfs
    [ Summary.handler Message.Tag.T_mfs_lookup [ Summary.seg 500 ];
      Summary.handler Message.Tag.T_mfs_create [ Summary.seg 800 ];
      Summary.handler Message.Tag.T_mfs_read
        [ Summary.seg ~out:bdev_r 20; Summary.seg ~out:bdev_r ~maybe:true 10;
          Summary.seg 10 ];
      Summary.handler Message.Tag.T_mfs_write
        [ Summary.seg ~out:bdev_r ~maybe:true 20; Summary.seg ~out:bdev_w 10;
          Summary.seg 10 ];
      Summary.handler Message.Tag.T_mfs_trunc [ Summary.seg 40 ];
      Summary.handler Message.Tag.T_mfs_unlink [ Summary.seg 600 ];
      Summary.handler Message.Tag.T_mfs_mkdir [ Summary.seg 800 ];
      Summary.handler Message.Tag.T_mfs_rmdir [ Summary.seg 800 ];
      Summary.handler Message.Tag.T_mfs_stat [ Summary.seg 5 ];
      Summary.handler Message.Tag.T_mfs_readdir [ Summary.seg 600 ];
      Summary.handler Message.Tag.T_mfs_rename [ Summary.seg 1200 ];
      Summary.handler Message.Tag.T_mfs_sync [ Summary.seg 2 ];
      Summary.handler Message.Tag.T_ping [ Summary.seg 1 ] ]
