lib/servers/vm.ml: Endpoint Errno Kernel Layout Memimage Message Prog Srvlib Summary
