lib/servers/ds.mli: Kernel Summary
