lib/servers/mfs.ml: Array Bdev Buffer Bytes Endpoint Errno Int64 Kernel Layout List Memimage Message Printf Prog Srvlib String Summary
