lib/servers/vfs.ml: Array Bytes Endpoint Errno Kernel Layout List Memimage Message Printf Prog Srvlib String Summary
