lib/servers/pm.mli: Kernel Summary
