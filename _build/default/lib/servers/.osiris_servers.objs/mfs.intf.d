lib/servers/mfs.mli: Bdev Kernel Summary
