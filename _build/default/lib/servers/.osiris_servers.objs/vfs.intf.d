lib/servers/vfs.mli: Kernel Summary
