lib/servers/ds.ml: Endpoint Errno Kernel Layout Memimage Message Prog Srvlib String Summary
