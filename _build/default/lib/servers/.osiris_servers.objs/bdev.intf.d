lib/servers/bdev.mli: Kernel
