lib/servers/bdev.ml: Costs Endpoint Errno Hashtbl Kernel Layout Memimage Message Option Prog Srvlib String
