lib/servers/srvlib.mli: Endpoint Errno Message Prog
