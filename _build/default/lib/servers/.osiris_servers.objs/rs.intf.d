lib/servers/rs.mli: Kernel Policy Summary
