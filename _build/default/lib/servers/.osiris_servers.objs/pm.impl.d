lib/servers/pm.ml: Endpoint Errno Filename Kernel Layout Memimage Message Prog Srvlib String Summary
