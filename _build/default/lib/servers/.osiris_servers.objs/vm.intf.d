lib/servers/vm.mli: Kernel Summary
