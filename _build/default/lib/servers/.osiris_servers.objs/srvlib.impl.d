lib/servers/srvlib.ml: Endpoint Errno Message Prog
