lib/servers/rs.ml: Endpoint Errno Kernel Layout List Memimage Message Policy Printf Prog Srvlib String Summary
