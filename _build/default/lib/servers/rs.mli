(** RS — the Recovery Server (paper Sections III-C, IV-C).

    RS is notified by the kernel whenever a component crashes (or a hang
    is detected) and drives the three recovery phases:

    + {b restart} — a fresh clone takes over the dead component's
      endpoint with its state transferred ([K_mk_clone]);
    + {b rollback} — the clone's initialization applies the undo log,
      restoring the checkpoint taken at the top of the request loop
      ([K_rollback]) — only if the recovery window was open;
    + {b reconciliation} — per the active policy: error virtualization
      (an [E_CRASH] reply to the requester, [K_reply_error]) when the
      window was open, or a controlled shutdown ([K_shutdown]) when
      consistent recovery cannot be guaranteed.

    The baseline policies reuse the same phases: stateless restart
    resets the clone to its boot image and skips reconciliation; naive
    restart keeps the crashed state and always virtualizes the error.

    RS is itself recoverable; if RS crashes, the kernel applies the same
    protocol using a clone prepared ahead of time. *)

type t

val create : Policy.t -> t

val server : t -> Kernel.server

val summary : Summary.t
