(** Shared building blocks for the OS servers. *)

val reply_ok : Endpoint.t -> int -> unit Prog.t
val reply_err : Endpoint.t -> Errno.t -> unit Prog.t

val err_of_reply : Message.t -> Errno.t option
(** [Some e] if the message is an error reply (including [E_CRASH]),
    [None] for any successful reply. *)

val call_retry : Endpoint.t -> Message.t -> Message.t Prog.t
(** [Prog.call] with a bounded retry on [E_CRASH] replies: when the
    callee crashed inside its recovery window and was rolled back,
    nothing happened, so re-sending is safe — the server-side analogue
    of the libc retry. Used on teardown paths that must not leak
    resources when a peer crashes mid-call. *)

val scan : rows:int -> (int -> bool Prog.t) -> int option Prog.t
(** [scan ~rows pred] evaluates [pred] on rows [0..rows-1] in order and
    returns the first row for which it holds. The scan itself costs one
    interpreted operation per predicate load, like the table walks in
    the original C servers. *)

val diag : string -> unit Prog.t
(** Send a diagnostic line to the kernel log sink — a non-state-
    modifying SEEP (the kind that separates pessimistic from enhanced
    coverage). *)

val simple_loop : (Endpoint.t -> Message.t -> unit Prog.t) -> unit Prog.t
(** Single-threaded event loop: receive, dispatch, repeat. *)

val threaded_loop : (Endpoint.t -> Message.t -> unit Prog.t) -> unit Prog.t
(** Multithreaded event loop: each request is handled in a freshly
    spawned cooperative thread (the VFS model, paper Section IV-E). *)
