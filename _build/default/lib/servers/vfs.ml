open Prog.Syntax

let max_procs = 64
let max_fds = 16
let max_files = 128
let max_pipes = 16
let pipe_capacity = 512
let cwd_len = 64

let k_free = 0
let k_file = 1
let k_pipe_r = 2
let k_pipe_w = 3

(* Table VI: VFS base usage 1,252 kB. *)
let image_kb = 1252

type t = {
  image : Memimage.t;
  procs : Layout.Table.t;
  p_used : Layout.int_field;
  p_ep : Layout.int_field;
  p_cwd : Layout.str_field;
  p_fds : Layout.int_field array;   (* file row + 1; 0 = closed *)
  files : Layout.Table.t;
  fi_kind : Layout.int_field;
  fi_ino : Layout.int_field;
  fi_pos : Layout.int_field;
  fi_refs : Layout.int_field;
  fi_pipe : Layout.int_field;
  pipes : Layout.Table.t;
  pi_used : Layout.int_field;
  pi_count : Layout.int_field;
  pi_rstart : Layout.int_field;
  pi_readers : Layout.int_field;
  pi_writers : Layout.int_field;
  pi_buf : Layout.str_field;
  c_opens : Layout.Cell.t;
}

let create () =
  let image = Memimage.create ~name:"vfs" ~size:(image_kb * 1024) in
  let spec = Layout.spec () in
  let p_used = Layout.int spec "used" in
  let p_ep = Layout.int spec "ep" in
  let p_cwd = Layout.str spec "cwd" ~len:cwd_len in
  let p_fds = Array.init max_fds (fun i -> Layout.int spec (Printf.sprintf "fd%d" i)) in
  Layout.seal spec;
  let procs = Layout.Table.alloc image ~spec ~rows:max_procs in
  let fspec = Layout.spec () in
  let fi_kind = Layout.int fspec "kind" in
  let fi_ino = Layout.int fspec "ino" in
  let fi_pos = Layout.int fspec "pos" in
  let fi_refs = Layout.int fspec "refs" in
  let fi_pipe = Layout.int fspec "pipe" in
  Layout.seal fspec;
  let files = Layout.Table.alloc image ~spec:fspec ~rows:max_files in
  let pspec = Layout.spec () in
  let pi_used = Layout.int pspec "used" in
  let pi_count = Layout.int pspec "count" in
  let pi_rstart = Layout.int pspec "rstart" in
  let pi_readers = Layout.int pspec "readers" in
  let pi_writers = Layout.int pspec "writers" in
  let pi_buf = Layout.str pspec "buf" ~len:pipe_capacity in
  Layout.seal pspec;
  let pipes = Layout.Table.alloc image ~spec:pspec ~rows:max_pipes in
  let c_opens = Layout.Cell.alloc_int image "opens" in
  { image; procs; p_used; p_ep; p_cwd; p_fds; files; fi_kind; fi_ino; fi_pos;
    fi_refs; fi_pipe; pipes; pi_used; pi_count; pi_rstart; pi_readers;
    pi_writers; pi_buf; c_opens }

(* ---------------- row helpers -------------------------------------- *)

let find_proc t ep =
  Srvlib.scan ~rows:max_procs (fun row ->
      let* used = Prog.Mem.get_int t.procs ~row t.p_used in
      if used = 0 then Prog.return false
      else
        let* e = Prog.Mem.get_int t.procs ~row t.p_ep in
        Prog.return (e = ep))

let with_proc t src k =
  let* row = find_proc t src in
  match row with
  | None -> Srvlib.reply_err src Errno.ESRCH
  | Some row -> k row

let find_free_file t =
  Srvlib.scan ~rows:max_files (fun row ->
      let* kind = Prog.Mem.get_int t.files ~row t.fi_kind in
      Prog.return (kind = k_free))

let find_free_fd t ~prow =
  let rec go fd =
    if fd >= max_fds then Prog.return None
    else
      let* v = Prog.Mem.get_int t.procs ~row:prow t.p_fds.(fd) in
      if v = 0 then Prog.return (Some fd) else go (fd + 1)
  in
  go 0

(* File row index for an fd, or None. *)
let file_of_fd t ~prow ~fd =
  if fd < 0 || fd >= max_fds then Prog.return None
  else
    let* v = Prog.Mem.get_int t.procs ~row:prow t.p_fds.(fd) in
    if v = 0 then Prog.return None else Prog.return (Some (v - 1))

let abs_path t ~prow path =
  if String.length path > 0 && path.[0] = '/' then Prog.return path
  else
    let* cwd = Prog.Mem.get_str t.procs ~row:prow t.p_cwd in
    Prog.return (if cwd = "/" then "/" ^ path else cwd ^ "/" ^ path)

(* Drop one reference to a file row, releasing it (and updating pipe
   endpoint counts) when the last reference goes. *)
let deref_file t ~frow =
  let* refs = Prog.Mem.get_int t.files ~row:frow t.fi_refs in
  if refs > 1 then Prog.Mem.set_int t.files ~row:frow t.fi_refs (refs - 1)
  else
    let* kind = Prog.Mem.get_int t.files ~row:frow t.fi_kind in
    let* () =
      if kind = k_pipe_r || kind = k_pipe_w then
        let* pipe = Prog.Mem.get_int t.files ~row:frow t.fi_pipe in
        let field = if kind = k_pipe_r then t.pi_readers else t.pi_writers in
        let* n = Prog.Mem.get_int t.pipes ~row:pipe field in
        let* () = Prog.Mem.set_int t.pipes ~row:pipe field (n - 1) in
        (* Free the pipe when both sides are gone. *)
        let* r = Prog.Mem.get_int t.pipes ~row:pipe t.pi_readers in
        let* w = Prog.Mem.get_int t.pipes ~row:pipe t.pi_writers in
        Prog.when_ (r = 0 && w = 0)
          (Prog.Mem.set_int t.pipes ~row:pipe t.pi_used 0)
      else Prog.return ()
    in
    Prog.Mem.set_int t.files ~row:frow t.fi_kind k_free

let close_fd t ~prow ~fd =
  let* frow = file_of_fd t ~prow ~fd in
  match frow with
  | None -> Prog.return (Error Errno.EBADF)
  | Some frow ->
    let* () = Prog.Mem.set_int t.procs ~row:prow t.p_fds.(fd) 0 in
    let* () = deref_file t ~frow in
    Prog.return (Ok ())

(* ---------------- circular pipe buffer (pure helpers) -------------- *)

let circ_read buf ~rstart ~n =
  let cap = String.length buf in
  if rstart + n <= cap then String.sub buf rstart n
  else String.sub buf rstart (cap - rstart) ^ String.sub buf 0 (n - (cap - rstart))

let circ_write buf ~wstart data =
  let cap = String.length buf in
  let b = Bytes.of_string buf in
  let n = String.length data in
  let first = min n (cap - wstart) in
  Bytes.blit_string data 0 b wstart first;
  if n > first then Bytes.blit_string data first b 0 (n - first);
  Bytes.to_string b

let pad_buf s =
  if String.length s >= pipe_capacity then s
  else s ^ String.make (pipe_capacity - String.length s) '\000'

(* ---------------- pipe I/O ----------------------------------------- *)

let pipe_read t src ~pipe ~len =
  let rec attempt () =
    let* used = Prog.Mem.get_int t.pipes ~row:pipe t.pi_used in
    if used = 0 then Srvlib.reply_err src Errno.EBADF
    else
      let* count = Prog.Mem.get_int t.pipes ~row:pipe t.pi_count in
      if count > 0 then begin
        let n = min len count in
        let* buf = Prog.Mem.get_str t.pipes ~row:pipe t.pi_buf in
        let* rstart = Prog.Mem.get_int t.pipes ~row:pipe t.pi_rstart in
        let data = circ_read (pad_buf buf) ~rstart ~n in
        let* () =
          Prog.Mem.set_int t.pipes ~row:pipe t.pi_rstart
            ((rstart + n) mod pipe_capacity)
        in
        let* () = Prog.Mem.set_int t.pipes ~row:pipe t.pi_count (count - n) in
        Prog.reply src (Message.R_read { data })
      end
      else
        let* writers = Prog.Mem.get_int t.pipes ~row:pipe t.pi_writers in
        if writers = 0 then Prog.reply src (Message.R_read { data = "" })
        else
          (* Block: yield lets the writer's thread (or another process)
             run; the yield closes the recovery window. *)
          let* () = Prog.yield in
          attempt ()
  in
  attempt ()

let pipe_write t src ~pipe ~data =
  let total = String.length data in
  let rec push written =
    if written >= total then Srvlib.reply_ok src total
    else
      let* used = Prog.Mem.get_int t.pipes ~row:pipe t.pi_used in
      if used = 0 then Srvlib.reply_err src Errno.EBADF
      else
        let* readers = Prog.Mem.get_int t.pipes ~row:pipe t.pi_readers in
        if readers = 0 then Srvlib.reply_err src Errno.EPIPE
        else
          let* count = Prog.Mem.get_int t.pipes ~row:pipe t.pi_count in
          let space = pipe_capacity - count in
          if space = 0 then
            let* () = Prog.yield in
            push written
          else begin
            let n = min space (total - written) in
            let chunk = String.sub data written n in
            let* buf = Prog.Mem.get_str t.pipes ~row:pipe t.pi_buf in
            let* rstart = Prog.Mem.get_int t.pipes ~row:pipe t.pi_rstart in
            let wstart = (rstart + count) mod pipe_capacity in
            let nbuf = circ_write (pad_buf buf) ~wstart chunk in
            let* () =
              Prog.store_str
                ~off:(Layout.Table.addr_str t.pipes ~row:pipe t.pi_buf)
                ~len:pipe_capacity nbuf
            in
            let* () = Prog.Mem.set_int t.pipes ~row:pipe t.pi_count (count + n) in
            push (written + n)
          end
  in
  push 0

(* ---------------- handlers ----------------------------------------- *)

let mfs_lookup t ~prow path =
  let* path = abs_path t ~prow path in
  let* r = Prog.call Endpoint.mfs (Message.Mfs_lookup { path }) in
  match r with
  | Message.R_lookup { ino; size; is_dir } -> Prog.return (Ok (ino, size, is_dir))
  | Message.R_err e -> Prog.return (Error e)
  | _ -> Prog.return (Error Errno.EIO)

let do_open t src ~prow ~path ~flags =
  let open Message in
  let* looked = mfs_lookup t ~prow path in
  let* created =
    match looked with
    | Error Errno.ENOENT when flags.o_create ->
      let* path = abs_path t ~prow path in
      let* r = Prog.call Endpoint.mfs (Mfs_create { path }) in
      (match r with
       | R_lookup { ino; size; is_dir } -> Prog.return (Ok (ino, size, is_dir))
       | R_err e -> Prog.return (Error e)
       | _ -> Prog.return (Error Errno.EIO))
    | other -> Prog.return other
  in
  match created with
  | Error e -> Srvlib.reply_err src e
  | Ok (_, _, true) -> Srvlib.reply_err src Errno.EISDIR
  | Ok (ino, size, false) ->
    let* () =
      Prog.when_ (flags.o_trunc && size > 0)
        (let* _ = Prog.call Endpoint.mfs (Mfs_trunc { ino; len = 0 }) in
         Prog.return ())
    in
    let* frow = find_free_file t in
    (match frow with
     | None -> Srvlib.reply_err src Errno.ENFILE
     | Some frow ->
       let* fd = find_free_fd t ~prow in
       (match fd with
        | None -> Srvlib.reply_err src Errno.EMFILE
        | Some fd ->
          let pos = if flags.o_append then size else 0 in
          let* () = Prog.Mem.set_int t.files ~row:frow t.fi_kind k_file in
          let* () = Prog.Mem.set_int t.files ~row:frow t.fi_ino ino in
          let* () =
            Prog.Mem.set_int t.files ~row:frow t.fi_pos
              (if flags.o_trunc then 0 else pos)
          in
          let* () = Prog.Mem.set_int t.files ~row:frow t.fi_refs 1 in
          let* () = Prog.Mem.set_int t.files ~row:frow t.fi_pipe 0 in
          let* () = Prog.Mem.set_int t.procs ~row:prow t.p_fds.(fd) (frow + 1) in
          let* n = Prog.Mem.get_cell t.c_opens in
          let* () = Prog.Mem.set_cell t.c_opens (n + 1) in
          Srvlib.reply_ok src fd))

let forward_to_mfs t src ~prow msg_of_path path =
  let* path = abs_path t ~prow path in
  let* r = Prog.call Endpoint.mfs (msg_of_path path) in
  match Srvlib.err_of_reply r with
  | Some e -> Srvlib.reply_err src e
  | None -> Srvlib.reply_ok src 0

let handle t src msg =
  match msg with
  | Message.Open { path; flags } ->
    with_proc t src (fun prow -> do_open t src ~prow ~path ~flags)
  | Message.Close { fd } ->
    with_proc t src (fun prow ->
        let* r = close_fd t ~prow ~fd in
        match r with
        | Error e -> Srvlib.reply_err src e
        | Ok () -> Srvlib.reply_ok src 0)
  | Message.Read { fd; len } ->
    with_proc t src (fun prow ->
        let* frow = file_of_fd t ~prow ~fd in
        match frow with
        | None -> Srvlib.reply_err src Errno.EBADF
        | Some frow ->
          let* kind = Prog.Mem.get_int t.files ~row:frow t.fi_kind in
          if kind = k_file then
            let* ino = Prog.Mem.get_int t.files ~row:frow t.fi_ino in
            let* pos = Prog.Mem.get_int t.files ~row:frow t.fi_pos in
            let* r = Prog.call Endpoint.mfs (Message.Mfs_read { ino; off = pos; len }) in
            match r with
            | Message.R_read { data } ->
              let* () =
                Prog.Mem.set_int t.files ~row:frow t.fi_pos
                  (pos + String.length data)
              in
              Prog.reply src (Message.R_read { data })
            | Message.R_err e -> Srvlib.reply_err src e
            | _ -> Srvlib.reply_err src Errno.EIO
          else if kind = k_pipe_r then
            let* pipe = Prog.Mem.get_int t.files ~row:frow t.fi_pipe in
            pipe_read t src ~pipe ~len
          else Srvlib.reply_err src Errno.EBADF)
  | Message.Write { fd; data } ->
    with_proc t src (fun prow ->
        let* frow = file_of_fd t ~prow ~fd in
        match frow with
        | None -> Srvlib.reply_err src Errno.EBADF
        | Some frow ->
          let* kind = Prog.Mem.get_int t.files ~row:frow t.fi_kind in
          if kind = k_file then
            let* ino = Prog.Mem.get_int t.files ~row:frow t.fi_ino in
            let* pos = Prog.Mem.get_int t.files ~row:frow t.fi_pos in
            let* r =
              Prog.call Endpoint.mfs (Message.Mfs_write { ino; off = pos; data })
            in
            match r with
            | Message.R_ok n ->
              let* () = Prog.Mem.set_int t.files ~row:frow t.fi_pos (pos + n) in
              Srvlib.reply_ok src n
            | Message.R_err e -> Srvlib.reply_err src e
            | _ -> Srvlib.reply_err src Errno.EIO
          else if kind = k_pipe_w then
            let* pipe = Prog.Mem.get_int t.files ~row:frow t.fi_pipe in
            pipe_write t src ~pipe ~data
          else Srvlib.reply_err src Errno.EBADF)
  | Message.Lseek { fd; off; whence } ->
    with_proc t src (fun prow ->
        let* frow = file_of_fd t ~prow ~fd in
        match frow with
        | None -> Srvlib.reply_err src Errno.EBADF
        | Some frow ->
          let* kind = Prog.Mem.get_int t.files ~row:frow t.fi_kind in
          if kind <> k_file then Srvlib.reply_err src Errno.EINVAL
          else
            let* pos = Prog.Mem.get_int t.files ~row:frow t.fi_pos in
            let* base =
              match whence with
              | Message.Seek_set -> Prog.return 0
              | Message.Seek_cur -> Prog.return pos
              | Message.Seek_end ->
                let* ino = Prog.Mem.get_int t.files ~row:frow t.fi_ino in
                let* r = Prog.call Endpoint.mfs (Message.Mfs_stat { ino }) in
                (match r with
                 | Message.R_stat { st_size; _ } -> Prog.return st_size
                 | _ -> Prog.return 0)
            in
            let npos = base + off in
            if npos < 0 then Srvlib.reply_err src Errno.EINVAL
            else
              let* () = Prog.Mem.set_int t.files ~row:frow t.fi_pos npos in
              Srvlib.reply_ok src npos)
  | Message.Pipe ->
    with_proc t src (fun prow ->
        let* pipe =
          Srvlib.scan ~rows:max_pipes (fun row ->
              let* used = Prog.Mem.get_int t.pipes ~row t.pi_used in
              Prog.return (used = 0))
        in
        match pipe with
        | None -> Srvlib.reply_err src Errno.ENFILE
        | Some pipe ->
          let* fr = find_free_file t in
          (match fr with
           | None -> Srvlib.reply_err src Errno.ENFILE
           | Some fr ->
             (* Reserve the read end before searching for the write
                end's slot. *)
             let* () = Prog.Mem.set_int t.files ~row:fr t.fi_kind k_pipe_r in
             let* fw = find_free_file t in
             (match fw with
              | None ->
                let* () = Prog.Mem.set_int t.files ~row:fr t.fi_kind k_free in
                Srvlib.reply_err src Errno.ENFILE
              | Some fw ->
                let* rfd = find_free_fd t ~prow in
                (match rfd with
                 | None ->
                   let* () = Prog.Mem.set_int t.files ~row:fr t.fi_kind k_free in
                   Srvlib.reply_err src Errno.EMFILE
                 | Some rfd ->
                   let* () = Prog.Mem.set_int t.procs ~row:prow t.p_fds.(rfd) (fr + 1) in
                   let* wfd = find_free_fd t ~prow in
                   (match wfd with
                    | None ->
                      let* () = Prog.Mem.set_int t.procs ~row:prow t.p_fds.(rfd) 0 in
                      let* () = Prog.Mem.set_int t.files ~row:fr t.fi_kind k_free in
                      Srvlib.reply_err src Errno.EMFILE
                    | Some wfd ->
                      let* () = Prog.Mem.set_int t.pipes ~row:pipe t.pi_used 1 in
                      let* () = Prog.Mem.set_int t.pipes ~row:pipe t.pi_count 0 in
                      let* () = Prog.Mem.set_int t.pipes ~row:pipe t.pi_rstart 0 in
                      let* () = Prog.Mem.set_int t.pipes ~row:pipe t.pi_readers 1 in
                      let* () = Prog.Mem.set_int t.pipes ~row:pipe t.pi_writers 1 in
                      let* () = Prog.Mem.set_int t.files ~row:fr t.fi_refs 1 in
                      let* () = Prog.Mem.set_int t.files ~row:fr t.fi_pipe pipe in
                      let* () = Prog.Mem.set_int t.files ~row:fw t.fi_kind k_pipe_w in
                      let* () = Prog.Mem.set_int t.files ~row:fw t.fi_refs 1 in
                      let* () = Prog.Mem.set_int t.files ~row:fw t.fi_pipe pipe in
                      let* () = Prog.Mem.set_int t.procs ~row:prow t.p_fds.(wfd) (fw + 1) in
                      Prog.reply src (Message.R_pipe { rfd; wfd }))))))
  | Message.Dup { fd } ->
    with_proc t src (fun prow ->
        let* frow = file_of_fd t ~prow ~fd in
        match frow with
        | None -> Srvlib.reply_err src Errno.EBADF
        | Some frow ->
          let* nfd = find_free_fd t ~prow in
          (match nfd with
           | None -> Srvlib.reply_err src Errno.EMFILE
           | Some nfd ->
             let* refs = Prog.Mem.get_int t.files ~row:frow t.fi_refs in
             let* () = Prog.Mem.set_int t.files ~row:frow t.fi_refs (refs + 1) in
             let* () = Prog.Mem.set_int t.procs ~row:prow t.p_fds.(nfd) (frow + 1) in
             Srvlib.reply_ok src nfd))
  | Message.Unlink { path } ->
    with_proc t src (fun prow ->
        forward_to_mfs t src ~prow (fun path -> Message.Mfs_unlink { path }) path)
  | Message.Mkdir { path } ->
    with_proc t src (fun prow ->
        let* path = abs_path t ~prow path in
        let* r = Prog.call Endpoint.mfs (Message.Mfs_mkdir { path }) in
        match Srvlib.err_of_reply r with
        | Some e -> Srvlib.reply_err src e
        | None -> Srvlib.reply_ok src 0)
  | Message.Rmdir { path } ->
    with_proc t src (fun prow ->
        forward_to_mfs t src ~prow (fun path -> Message.Mfs_rmdir { path }) path)
  | Message.Rename { src = s; dst = d } ->
    with_proc t src (fun prow ->
        let* s = abs_path t ~prow s in
        let* d = abs_path t ~prow d in
        let* r = Prog.call Endpoint.mfs (Message.Mfs_rename { src = s; dst = d }) in
        match Srvlib.err_of_reply r with
        | Some e -> Srvlib.reply_err src e
        | None -> Srvlib.reply_ok src 0)
  | Message.Stat { path } ->
    with_proc t src (fun prow ->
        let* looked = mfs_lookup t ~prow path in
        match looked with
        | Error e -> Srvlib.reply_err src e
        | Ok (ino, size, is_dir) ->
          Prog.reply src
            (Message.R_stat { st_ino = ino; st_size = size; st_is_dir = is_dir }))
  | Message.Fstat { fd } ->
    with_proc t src (fun prow ->
        let* frow = file_of_fd t ~prow ~fd in
        match frow with
        | None -> Srvlib.reply_err src Errno.EBADF
        | Some frow ->
          let* kind = Prog.Mem.get_int t.files ~row:frow t.fi_kind in
          if kind = k_file then
            let* ino = Prog.Mem.get_int t.files ~row:frow t.fi_ino in
            let* r = Prog.call Endpoint.mfs (Message.Mfs_stat { ino }) in
            match r with
            | Message.R_stat _ as st -> Prog.reply src st
            | Message.R_err e -> Srvlib.reply_err src e
            | _ -> Srvlib.reply_err src Errno.EIO
          else
            let* pipe = Prog.Mem.get_int t.files ~row:frow t.fi_pipe in
            let* count = Prog.Mem.get_int t.pipes ~row:pipe t.pi_count in
            Prog.reply src
              (Message.R_stat { st_ino = -1; st_size = count; st_is_dir = false }))
  | Message.Readdir { path } ->
    with_proc t src (fun prow ->
        let* looked = mfs_lookup t ~prow path in
        match looked with
        | Error e -> Srvlib.reply_err src e
        | Ok (_, _, false) -> Srvlib.reply_err src Errno.ENOTDIR
        | Ok (ino, _, true) ->
          let* r = Prog.call Endpoint.mfs (Message.Mfs_readdir { ino }) in
          (match r with
           | Message.R_names _ as names -> Prog.reply src names
           | Message.R_err e -> Srvlib.reply_err src e
           | _ -> Srvlib.reply_err src Errno.EIO))
  | Message.Dup2 { fd; tofd } ->
    with_proc t src (fun prow ->
        let* frow = file_of_fd t ~prow ~fd in
        match frow with
        | None -> Srvlib.reply_err src Errno.EBADF
        | Some frow ->
          if tofd < 0 || tofd >= max_fds then Srvlib.reply_err src Errno.EBADF
          else if tofd = fd then Srvlib.reply_ok src tofd
          else
            (* Close the target slot first, POSIX-style. *)
            let* old = file_of_fd t ~prow ~fd:tofd in
            let* () =
              match old with
              | None -> Prog.return ()
              | Some _ ->
                let* _ = close_fd t ~prow ~fd:tofd in
                Prog.return ()
            in
            let* refs = Prog.Mem.get_int t.files ~row:frow t.fi_refs in
            let* () = Prog.Mem.set_int t.files ~row:frow t.fi_refs (refs + 1) in
            let* () = Prog.Mem.set_int t.procs ~row:prow t.p_fds.(tofd) (frow + 1) in
            Srvlib.reply_ok src tofd)
  | Message.Chdir { path } ->
    with_proc t src (fun prow ->
        let* apath = abs_path t ~prow path in
        if String.length apath >= cwd_len then
          Srvlib.reply_err src Errno.ENAMETOOLONG
        else
          let* looked = mfs_lookup t ~prow apath in
          match looked with
          | Error e -> Srvlib.reply_err src e
          | Ok (_, _, false) -> Srvlib.reply_err src Errno.ENOTDIR
          | Ok (_, _, true) ->
            let* () = Prog.Mem.set_str t.procs ~row:prow t.p_cwd apath in
            Srvlib.reply_ok src 0)
  | Message.Sync ->
    let* r = Prog.call Endpoint.mfs Message.Mfs_sync in
    (match Srvlib.err_of_reply r with
     | Some e -> Srvlib.reply_err src e
     | None -> Srvlib.reply_ok src 0)
  | Message.Vfs_fork { parent; child } when src = Endpoint.pm ->
    let* slot =
      Srvlib.scan ~rows:max_procs (fun row ->
          let* used = Prog.Mem.get_int t.procs ~row t.p_used in
          Prog.return (used = 0))
    in
    (match slot with
     | None -> Srvlib.reply_err src Errno.EAGAIN
     | Some row ->
       let* () = Prog.Mem.set_int t.procs ~row t.p_used 1 in
       let* () = Prog.Mem.set_int t.procs ~row t.p_ep child in
       let* prow_opt =
         if parent = 0 then Prog.return None else find_proc t parent
       in
       (match prow_opt with
        | None ->
          let* () = Prog.Mem.set_str t.procs ~row t.p_cwd "/" in
          let* () =
            Prog.iter_range ~lo:0 ~hi:max_fds (fun fd ->
                Prog.Mem.set_int t.procs ~row t.p_fds.(fd) 0)
          in
          Srvlib.reply_ok src 0
        | Some prow ->
          let* cwd = Prog.Mem.get_str t.procs ~row:prow t.p_cwd in
          let* () = Prog.Mem.set_str t.procs ~row t.p_cwd cwd in
          let* () =
            Prog.iter_range ~lo:0 ~hi:max_fds (fun fd ->
                let* v = Prog.Mem.get_int t.procs ~row:prow t.p_fds.(fd) in
                let* () = Prog.Mem.set_int t.procs ~row t.p_fds.(fd) v in
                if v = 0 then Prog.return ()
                else begin
                  (* Parent and child share the open-file description:
                     bump its refcount. Pipe endpoint counts track
                     descriptions, not descriptors, so they are NOT
                     bumped here (EOF semantics). *)
                  let frow = v - 1 in
                  let* refs = Prog.Mem.get_int t.files ~row:frow t.fi_refs in
                  Prog.Mem.set_int t.files ~row:frow t.fi_refs (refs + 1)
                end)
          in
          Srvlib.reply_ok src 0))
  | Message.Vfs_exec { proc; path } when src = Endpoint.pm ->
    let* prow_opt = find_proc t proc in
    (match prow_opt with
     | None -> Srvlib.reply_err src Errno.ESRCH
     | Some prow ->
       let* looked = mfs_lookup t ~prow path in
       (match looked with
        | Error e -> Srvlib.reply_err src e
        | Ok (_, _, true) -> Srvlib.reply_err src Errno.EISDIR
        | Ok _ -> Srvlib.reply_ok src 0))
  | Message.Vfs_exit { proc } when src = Endpoint.pm ->
    let* prow_opt = find_proc t proc in
    (match prow_opt with
     | None -> Srvlib.reply_err src Errno.ESRCH
     | Some prow ->
       let* () =
         Prog.iter_range ~lo:0 ~hi:max_fds (fun fd ->
             let* v = Prog.Mem.get_int t.procs ~row:prow t.p_fds.(fd) in
             if v = 0 then Prog.return ()
             else
               let* _ = close_fd t ~prow ~fd in
               Prog.return ())
       in
       let* () = Prog.Mem.set_int t.procs ~row:prow t.p_used 0 in
       Srvlib.reply_ok src 0)
  | Message.Vfs_fork _ | Message.Vfs_exec _ | Message.Vfs_exit _ ->
    Srvlib.reply_err src Errno.EPERM
  | Message.Ping -> Prog.reply src Message.R_pong
  | _ -> Srvlib.reply_err src Errno.ENOSYS

let dump_state t =
  let out = ref [] in
  for row = 0 to max_pipes - 1 do
    if Layout.Table.get_int t.pipes ~row t.pi_used = 1 then
      out :=
        Printf.sprintf "pipe %d: count=%d readers=%d writers=%d" row
          (Layout.Table.get_int t.pipes ~row t.pi_count)
          (Layout.Table.get_int t.pipes ~row t.pi_readers)
          (Layout.Table.get_int t.pipes ~row t.pi_writers)
        :: !out
  done;
  for row = 0 to max_files - 1 do
    let kind = Layout.Table.get_int t.files ~row t.fi_kind in
    if kind <> k_free then
      out :=
        Printf.sprintf "file %d: kind=%d refs=%d pipe=%d ino=%d" row kind
          (Layout.Table.get_int t.files ~row t.fi_refs)
          (Layout.Table.get_int t.files ~row t.fi_pipe)
          (Layout.Table.get_int t.files ~row t.fi_ino)
        :: !out
  done;
  List.rev !out

let init t = Prog.Mem.set_cell t.c_opens 0

let server t =
  { Kernel.srv_ep = Endpoint.vfs;
    srv_name = "vfs";
    srv_image = t.image;
    srv_clone_extra_kb = 348;
    srv_init = init t;
    srv_loop = Srvlib.threaded_loop (handle t);
    srv_multithreaded = true }

let summary =
  let mfs t = (Endpoint.mfs, t) in
  Summary.make Endpoint.vfs
    [ Summary.handler Message.Tag.T_open
        [ Summary.seg ~out:(mfs Message.Tag.T_mfs_lookup) 75;
          Summary.seg ~out:(mfs Message.Tag.T_mfs_create) ~maybe:true 5;
          Summary.seg 150 ];
      Summary.handler Message.Tag.T_close [ Summary.seg 80 ];
      Summary.handler Message.Tag.T_read
        [ Summary.seg ~out:(mfs Message.Tag.T_mfs_read) 80; Summary.seg 10 ];
      Summary.handler Message.Tag.T_write
        [ Summary.seg 80; Summary.seg ~out:(mfs Message.Tag.T_mfs_write) 5;
          Summary.seg 10 ];
      Summary.handler Message.Tag.T_lseek
        [ Summary.seg ~out:(mfs Message.Tag.T_mfs_stat) ~maybe:true 80;
          Summary.seg 10 ];
      Summary.handler Message.Tag.T_pipe [ Summary.seg 300 ];
      Summary.handler Message.Tag.T_dup [ Summary.seg 90 ];
      Summary.handler Message.Tag.T_unlink
        [ Summary.seg ~out:(mfs Message.Tag.T_mfs_unlink) 70; Summary.seg 5 ];
      Summary.handler Message.Tag.T_mkdir
        [ Summary.seg ~out:(mfs Message.Tag.T_mfs_mkdir) 70; Summary.seg 5 ];
      Summary.handler Message.Tag.T_rmdir
        [ Summary.seg ~out:(mfs Message.Tag.T_mfs_rmdir) 70; Summary.seg 5 ];
      Summary.handler Message.Tag.T_stat
        [ Summary.seg ~out:(mfs Message.Tag.T_mfs_lookup) 70; Summary.seg 10 ];
      Summary.handler Message.Tag.T_fstat
        [ Summary.seg ~out:(mfs Message.Tag.T_mfs_stat) 80; Summary.seg 5 ];
      Summary.handler Message.Tag.T_rename
        [ Summary.seg ~out:(mfs Message.Tag.T_mfs_rename) 70; Summary.seg 5 ];
      Summary.handler Message.Tag.T_chdir
        [ Summary.seg ~out:(mfs Message.Tag.T_mfs_lookup) 75; Summary.seg 10 ];
      Summary.handler Message.Tag.T_readdir
        [ Summary.seg ~out:(mfs Message.Tag.T_mfs_lookup) 75;
          Summary.seg ~out:(mfs Message.Tag.T_mfs_readdir) 3; Summary.seg 5 ];
      Summary.handler Message.Tag.T_dup2 [ Summary.seg 120 ];
      Summary.handler Message.Tag.T_sync
        [ Summary.seg ~out:(mfs Message.Tag.T_mfs_sync) 2; Summary.seg 2 ];
      Summary.handler Message.Tag.T_vfs_fork [ Summary.seg 250 ];
      Summary.handler Message.Tag.T_vfs_exec
        [ Summary.seg ~out:(mfs Message.Tag.T_mfs_lookup) 75; Summary.seg 5 ];
      Summary.handler Message.Tag.T_vfs_exit [ Summary.seg 200 ];
      Summary.handler Message.Tag.T_ping [ Summary.seg 1 ] ]
