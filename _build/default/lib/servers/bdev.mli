(** The RAM-disk block device driver.

    Serves fixed-size block reads and writes with a simulated access
    latency. Block contents live outside any component image: like a
    real disk, they are not rolled back when a server recovers — only
    in-memory component state is within OSIRIS' recovery scope. *)

type t

val create : unit -> t

val server : t -> Kernel.server

val block_size : int
val block_count : int

val peek_block : t -> int -> string
(** Test hook: current contents of a block ("" if never written). *)

val poke_block : t -> int -> string -> unit
(** Direct pre-boot write, used by the mkfs preload path. *)
