(** POSIX-style error codes plus OSIRIS' [E_CRASH].

    [E_CRASH] is the error-virtualization code: the Recovery Server
    replies with it on behalf of a component that crashed inside an open
    recovery window, letting requesters handle the failure like any
    other error return (paper Section III-C). *)

type t =
  | E_OK
  | EPERM
  | ENOENT
  | ESRCH
  | EINTR
  | EIO
  | EBADF
  | ECHILD
  | EAGAIN
  | ENOMEM
  | EACCES
  | EEXIST
  | ENOTDIR
  | EISDIR
  | EINVAL
  | ENFILE
  | EMFILE
  | ENOSPC
  | EPIPE
  | ENOSYS
  | ENOTEMPTY
  | ENAMETOOLONG
  | E_CRASH
[@@deriving show, eq]

val to_string : t -> string

val to_code : t -> int
(** Stable numeric code (negative, MINIX-style, except [E_OK] = 0). *)
