(** Static per-handler interaction summaries.

    Each server publishes, per request type it handles, the sequence of
    outbound SEEP interactions its handler performs, with approximate
    weights for the local work between them. This is the input to the
    static recovery-window analysis (the paper's compile-time pass that
    decides where windows close), which predicts recovery coverage
    without running the system — checked against dynamic measurement in
    the test suite. *)

type outbound = {
  out_dst : Endpoint.t;
  out_tag : Message.Tag.t;
  out_maybe : bool;
      (** Conditionally executed (e.g. only on the create path). The
          conservative analysis assumes it happens. *)
}

type segment = {
  seg_weight : int;
      (** Approximate units of local work before the next interaction
          (or before the reply, for the last segment). *)
  seg_then : outbound option;
      (** The interaction ending this segment; [None] for the final
          segment, which ends at the reply. *)
}

type handler = {
  h_tag : Message.Tag.t;
  h_replies : bool;  (** Whether the handler normally sends a reply. *)
  h_segments : segment list;
}

type t = { sum_ep : Endpoint.t; sum_handlers : handler list }

val seg : ?out:Endpoint.t * Message.Tag.t -> ?maybe:bool -> int -> segment
(** [seg ~out:(dst, tag) w] is a segment of weight [w] ending in an
    outbound interaction; omit [out] for the final segment. *)

val handler : ?replies:bool -> Message.Tag.t -> segment list -> handler

val make : Endpoint.t -> handler list -> t
