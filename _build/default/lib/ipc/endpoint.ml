type t = int [@@deriving show, eq]

let kernel = 0
let pm = 1
let vfs = 2
let vm = 3
let ds = 4
let rs = 5
let mfs = 6
let bdev = 7

let first_user = 100

let is_server ep = ep >= pm && ep <= bdev

let server_name = function
  | 0 -> "kernel"
  | 1 -> "pm"
  | 2 -> "vfs"
  | 3 -> "vm"
  | 4 -> "ds"
  | 5 -> "rs"
  | 6 -> "mfs"
  | 7 -> "bdev"
  | ep -> Printf.sprintf "user%d" ep
