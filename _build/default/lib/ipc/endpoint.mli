(** Stable communication endpoints.

    An endpoint names a logical component, not a particular incarnation:
    when the Recovery Server replaces a crashed server with a recovered
    clone, the clone inherits the endpoint, so other components'
    references stay valid (the paper's "replace" step of the restart
    phase). The kernel maintains the endpoint -> live process mapping. *)

type t = int [@@deriving show, eq]

(** Well-known endpoints of the core system servers. *)

val kernel : t
(** Pseudo-endpoint for kernel-provided sinks (diagnostics). *)

val pm : t
val vfs : t
val vm : t
val ds : t
val rs : t
val mfs : t
val bdev : t

val first_user : t
(** User-process endpoints are allocated from here upward. *)

val is_server : t -> bool
(** True for the core system server endpoints (including MFS and the
    block device driver). *)

val server_name : t -> string
(** Human name for well-known endpoints; ["user<N>"] otherwise. *)
