(** Side Effect Engraved Passages (paper Sections III-A, IV-B).

    Every outbound message from an instrumented server travels through a
    SEEP, whose static classification says whether the interaction can
    create a state dependency at the receiver:

    - [Read_only]: the receiver answers from its current state without
      updating it (lookups, reads, stats, diagnostics). Under the
      enhanced policy these do not close the recovery window.
    - [State_modifying]: the receiver's state changes; any rollback of
      the sender past this point would orphan that change, so the
      window must close.
    - [Reply]: the response to the request being handled. Sending it
      publishes the handler's results, so it also closes the window.

    The classification is conservative and static — the simulation
    analogue of the paper's compile-time SEEP annotation pass. *)

type cls = Read_only | State_modifying | Reply [@@deriving show, eq]

val classify : dst:Endpoint.t -> Message.Tag.t -> cls
(** Class of the channel carrying messages with the given tag to [dst].
    The destination matters only for documentation today (the tag fully
    determines the class) but keeps the signature faithful to per-channel
    engraving. *)

val classify_msg : dst:Endpoint.t -> Message.t -> cls

val read_only_tags : Message.Tag.t list
(** The complete list of tags engraved as [Read_only], exposed for the
    static recovery-window analysis and for tests. Note that
    [T_bdev_read] is deliberately {e not} read-only: device reads
    mutate driver and controller state (request queues, statistics), so
    the conservative engraving treats them as state-modifying. *)
