type cls = Read_only | State_modifying | Reply [@@deriving show, eq]

let read_only_tags =
  Message.Tag.
    [ T_getpid; T_getppid;
      T_stat; T_fstat; T_readdir; T_brk_query; T_vm_info;
      T_mfs_lookup; T_mfs_read; T_mfs_stat; T_mfs_readdir;
      T_ds_retrieve;
      T_rs_status; T_rs_lookup; T_ping;
      T_diag ]

let classify ~dst:_ tag =
  let open Message.Tag in
  if tag = T_reply then Reply
  else if List.mem tag read_only_tags then Read_only
  else State_modifying

let classify_msg ~dst m = classify ~dst (Message.Tag.of_msg m)
