type outbound = {
  out_dst : Endpoint.t;
  out_tag : Message.Tag.t;
  out_maybe : bool;
}

type segment = {
  seg_weight : int;
  seg_then : outbound option;
}

type handler = {
  h_tag : Message.Tag.t;
  h_replies : bool;
  h_segments : segment list;
}

type t = { sum_ep : Endpoint.t; sum_handlers : handler list }

let seg ?out ?(maybe = false) weight =
  { seg_weight = weight;
    seg_then =
      Option.map (fun (dst, tag) -> { out_dst = dst; out_tag = tag; out_maybe = maybe }) out }

let handler ?(replies = true) tag segments =
  { h_tag = tag; h_replies = replies; h_segments = segments }

let make ep handlers = { sum_ep = ep; sum_handlers = handlers }
