type t =
  | E_OK
  | EPERM
  | ENOENT
  | ESRCH
  | EINTR
  | EIO
  | EBADF
  | ECHILD
  | EAGAIN
  | ENOMEM
  | EACCES
  | EEXIST
  | ENOTDIR
  | EISDIR
  | EINVAL
  | ENFILE
  | EMFILE
  | ENOSPC
  | EPIPE
  | ENOSYS
  | ENOTEMPTY
  | ENAMETOOLONG
  | E_CRASH
[@@deriving show, eq]

let to_string = function
  | E_OK -> "OK"
  | EPERM -> "EPERM"
  | ENOENT -> "ENOENT"
  | ESRCH -> "ESRCH"
  | EINTR -> "EINTR"
  | EIO -> "EIO"
  | EBADF -> "EBADF"
  | ECHILD -> "ECHILD"
  | EAGAIN -> "EAGAIN"
  | ENOMEM -> "ENOMEM"
  | EACCES -> "EACCES"
  | EEXIST -> "EEXIST"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | EINVAL -> "EINVAL"
  | ENFILE -> "ENFILE"
  | EMFILE -> "EMFILE"
  | ENOSPC -> "ENOSPC"
  | EPIPE -> "EPIPE"
  | ENOSYS -> "ENOSYS"
  | ENOTEMPTY -> "ENOTEMPTY"
  | ENAMETOOLONG -> "ENAMETOOLONG"
  | E_CRASH -> "E_CRASH"

let to_code = function
  | E_OK -> 0
  | EPERM -> -1
  | ENOENT -> -2
  | ESRCH -> -3
  | EINTR -> -4
  | EIO -> -5
  | EBADF -> -9
  | ECHILD -> -10
  | EAGAIN -> -11
  | ENOMEM -> -12
  | EACCES -> -13
  | EEXIST -> -17
  | ENOTDIR -> -20
  | EISDIR -> -21
  | EINVAL -> -22
  | ENFILE -> -23
  | EMFILE -> -24
  | ENOSPC -> -28
  | EPIPE -> -32
  | ENOSYS -> -38
  | ENOTEMPTY -> -39
  | ENAMETOOLONG -> -36
  | E_CRASH -> -999
