lib/ipc/seep.pp.ml: List Message Ppx_deriving_runtime
