lib/ipc/message.pp.ml: Bytes Char Errno List Osiris_util Ppx_deriving_runtime String
