lib/ipc/endpoint.pp.ml: Ppx_deriving_runtime Printf
