lib/ipc/errno.pp.ml: Ppx_deriving_runtime
