lib/ipc/summary.pp.ml: Endpoint Message Option
