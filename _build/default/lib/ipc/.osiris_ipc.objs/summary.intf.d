lib/ipc/summary.pp.mli: Endpoint Message
