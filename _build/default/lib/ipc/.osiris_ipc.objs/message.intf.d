lib/ipc/message.pp.mli: Errno Osiris_util Ppx_deriving_runtime
