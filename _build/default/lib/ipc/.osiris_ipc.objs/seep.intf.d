lib/ipc/seep.pp.mli: Endpoint Message Ppx_deriving_runtime
