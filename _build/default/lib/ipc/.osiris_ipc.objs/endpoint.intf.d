lib/ipc/endpoint.pp.mli: Ppx_deriving_runtime
