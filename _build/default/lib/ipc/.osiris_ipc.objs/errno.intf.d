lib/ipc/errno.pp.mli: Ppx_deriving_runtime
