lib/memimage/memimage.mli:
