lib/memimage/memimage.ml: Bytes Int64 Printf String
