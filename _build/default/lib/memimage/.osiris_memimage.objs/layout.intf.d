lib/memimage/layout.mli: Memimage
