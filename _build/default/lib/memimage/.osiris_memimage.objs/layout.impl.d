lib/memimage/layout.ml: Memimage Printf
