(** Typed layout of structured data inside a {!Memimage.t}.

    Servers declare their state as C-like structs: a {!spec} lists the
    fields of a record; a {!Table.t} places an array of such records in
    an image. Field accessors compute absolute byte offsets so the same
    layout serves both the RCB's direct access and the instrumented
    program DSL.

    Example declaring a process-table slot:
    {[
      let spec = Layout.spec ()
      let f_pid = Layout.int spec "pid"
      let f_name = Layout.str spec "name" ~len:16
      let () = Layout.seal spec
      let table img = Layout.Table.alloc img ~spec ~rows:64
    ]} *)

type spec

type int_field
type str_field

val spec : unit -> spec

val int : spec -> string -> int_field
(** Add an 8-byte integer field. @raise Failure if the spec is sealed. *)

val str : spec -> string -> len:int -> str_field
(** Add a fixed-length string field (NUL-padded). *)

val seal : spec -> unit
(** Freeze the spec; required before use in a table. *)

val sizeof : spec -> int
(** Record size in bytes (8-byte aligned). *)

val int_field_name : int_field -> string
val str_field_name : str_field -> string

module Table : sig
  type t

  val alloc : Memimage.t -> spec:spec -> rows:int -> t
  (** Place [rows] records in the image's layout space. *)

  val rows : t -> int
  val row_size : t -> int
  val base : t -> int

  (** Absolute byte offsets, for the instrumented access layer. *)

  val addr_int : t -> row:int -> int_field -> int
  val addr_str : t -> row:int -> str_field -> int
  val str_len : str_field -> int

  (** Direct access (RCB / test use — bypasses simulated cost, still
      passes through the image write hook). *)

  val get_int : t -> row:int -> int_field -> int
  val set_int : t -> row:int -> int_field -> int -> unit
  val get_str : t -> row:int -> str_field -> string
  val set_str : t -> row:int -> str_field -> string -> unit
end

module Cell : sig
  (** A single global value: a one-row table specialized for brevity. *)

  type t

  val alloc_int : Memimage.t -> string -> t
  val addr : t -> int
  val get : t -> int
  val set : t -> int -> unit
end
