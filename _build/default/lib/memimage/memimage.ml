type write_hook = offset:int -> old:bytes -> unit

type t = {
  img_name : string;
  data : Bytes.t;
  mutable cursor : int;
  mutable hook : write_hook option;
  mutable writes : int;
  mutable bytes_written : int;
}

let create ~name ~size =
  { img_name = name;
    data = Bytes.make size '\000';
    cursor = 0;
    hook = None;
    writes = 0;
    bytes_written = 0 }

let name t = t.img_name

let size t = Bytes.length t.data

let alloc t ?(align = 8) n =
  let base = (t.cursor + align - 1) / align * align in
  if base + n > Bytes.length t.data then
    failwith (Printf.sprintf "Memimage.alloc: %s exhausted (%d + %d > %d)"
                t.img_name base n (Bytes.length t.data));
  t.cursor <- base + n;
  base

let allocated t = t.cursor

let set_write_hook t hook = t.hook <- hook

let pre_write t ~off ~len =
  t.writes <- t.writes + 1;
  t.bytes_written <- t.bytes_written + len;
  match t.hook with
  | None -> ()
  | Some hook -> hook ~offset:off ~old:(Bytes.sub t.data off len)

let get_word t off = Int64.to_int (Bytes.get_int64_le t.data off)

let set_word t off v =
  pre_write t ~off ~len:8;
  Bytes.set_int64_le t.data off (Int64.of_int v)

let get_bytes t ~off ~len = Bytes.sub t.data off len

let set_bytes t ~off b =
  pre_write t ~off ~len:(Bytes.length b);
  Bytes.blit b 0 t.data off (Bytes.length b)

let get_string t ~off ~len =
  let raw = Bytes.sub_string t.data off len in
  match String.index_opt raw '\000' with
  | None -> raw
  | Some i -> String.sub raw 0 i

let set_string t ~off ~len s =
  if String.length s > len then
    invalid_arg
      (Printf.sprintf "Memimage.set_string: %S exceeds field of %d bytes" s len);
  pre_write t ~off ~len;
  Bytes.fill t.data off len '\000';
  Bytes.blit_string s 0 t.data off (String.length s)

let snapshot t = Bytes.copy t.data

let restore t snap =
  if Bytes.length snap <> Bytes.length t.data then
    invalid_arg "Memimage.restore: size mismatch";
  Bytes.blit snap 0 t.data 0 (Bytes.length snap)

let clone t ~name =
  { img_name = name;
    data = Bytes.copy t.data;
    cursor = t.cursor;
    hook = None;
    writes = 0;
    bytes_written = 0 }

let clear t = Bytes.fill t.data 0 (Bytes.length t.data) '\000'

let writes t = t.writes

let bytes_written t = t.bytes_written
