type field_kind = F_int | F_str of int

type field = { f_name : string; f_kind : field_kind; f_offset : int }

type spec = {
  mutable fields : field list;
  mutable next : int;
  mutable sealed : bool;
}

type int_field = field
type str_field = field

let spec () = { fields = []; next = 0; sealed = false }

let align8 n = (n + 7) / 8 * 8

let add spec name kind size =
  if spec.sealed then failwith ("Layout: spec sealed, cannot add " ^ name);
  let f = { f_name = name; f_kind = kind; f_offset = spec.next } in
  spec.fields <- f :: spec.fields;
  spec.next <- spec.next + align8 size;
  f

let int spec name = add spec name F_int 8

let str spec name ~len = add spec name (F_str len) len

let seal spec = spec.sealed <- true

let sizeof spec =
  if not spec.sealed then failwith "Layout.sizeof: spec not sealed";
  align8 spec.next

let int_field_name f = f.f_name
let str_field_name f = f.f_name

module Table = struct
  type t = {
    image : Memimage.t;
    tbl_base : int;
    tbl_rows : int;
    tbl_row_size : int;
  }

  let alloc image ~spec ~rows =
    let row_size = sizeof spec in
    let base = Memimage.alloc image (rows * row_size) in
    { image; tbl_base = base; tbl_rows = rows; tbl_row_size = row_size }

  let rows t = t.tbl_rows
  let row_size t = t.tbl_row_size
  let base t = t.tbl_base

  let addr t ~row f =
    if row < 0 || row >= t.tbl_rows then
      invalid_arg
        (Printf.sprintf "Layout.Table: row %d out of [0,%d) for field %s" row
           t.tbl_rows f.f_name);
    t.tbl_base + (row * t.tbl_row_size) + f.f_offset

  let addr_int t ~row f =
    (match f.f_kind with F_int -> () | F_str _ -> invalid_arg "addr_int on str field");
    addr t ~row f

  let addr_str t ~row f =
    (match f.f_kind with F_str _ -> () | F_int -> invalid_arg "addr_str on int field");
    addr t ~row f

  let str_len f =
    match f.f_kind with F_str n -> n | F_int -> invalid_arg "str_len on int field"

  let get_int t ~row f = Memimage.get_word t.image (addr_int t ~row f)
  let set_int t ~row f v = Memimage.set_word t.image (addr_int t ~row f) v

  let get_str t ~row f =
    Memimage.get_string t.image ~off:(addr_str t ~row f) ~len:(str_len f)

  let set_str t ~row f s =
    Memimage.set_string t.image ~off:(addr_str t ~row f) ~len:(str_len f) s
end

module Cell = struct
  type t = { image : Memimage.t; off : int }

  let alloc_int image _name = { image; off = Memimage.alloc image 8 }

  let addr t = t.off
  let get t = Memimage.get_word t.image t.off
  let set t v = Memimage.set_word t.image t.off v
end
