(** Component memory image.

    Every OSIRIS server keeps its recoverable state in a [Memimage.t] — a
    flat, bytes-backed memory area standing in for the data sections of
    the original MINIX C servers. All mutations go through accessors that
    invoke a write hook *before* overwriting, which is where the
    checkpointing library's undo log attaches (the simulation analogue of
    the paper's LLVM store instrumentation).

    Direct accessors here are reserved for the Reliable Computing Base
    (kernel, recovery server, checkpoint library); instrumented server
    code reaches memory through the program DSL, which adds simulated
    cost and fault-injection points on top of these primitives. *)

type t

type write_hook = offset:int -> old:bytes -> unit
(** Called before a write with the overwritten range's previous
    contents. [old] is a fresh copy; the hook may retain it. *)

val create : name:string -> size:int -> t
(** Zero-filled image of [size] bytes. *)

val name : t -> string

val size : t -> int

val alloc : t -> ?align:int -> int -> int
(** Bump-allocate [n] bytes of layout space; returns the base offset.
    Used once at server-definition time to place tables and cells.
    @raise Failure if the image is exhausted. *)

val allocated : t -> int
(** Bytes handed out by {!alloc} so far. *)

val set_write_hook : t -> write_hook option -> unit

(** {2 Word access} — words are 8 bytes, little-endian. *)

val get_word : t -> int -> int
val set_word : t -> int -> int -> unit

(** {2 Raw byte-range access} *)

val get_bytes : t -> off:int -> len:int -> bytes
val set_bytes : t -> off:int -> bytes -> unit

(** {2 Fixed-size string fields} — NUL-padded, like C char arrays. *)

val get_string : t -> off:int -> len:int -> string
val set_string : t -> off:int -> len:int -> string -> unit
(** @raise Invalid_argument if the string exceeds the field length. *)

(** {2 Whole-image operations (RCB only)} *)

val snapshot : t -> bytes
(** Copy of the full contents (used to seed clones). *)

val restore : t -> bytes -> unit
(** Overwrite contents from a snapshot of equal size, bypassing the
    write hook. *)

val clone : t -> name:string -> t
(** Fresh image with identical contents and layout cursor, no hook. *)

val clear : t -> unit
(** Zero the contents, bypassing the hook. *)

(** {2 Accounting} *)

val writes : t -> int
(** Number of hook-visible write operations since creation. *)

val bytes_written : t -> int
(** Total bytes covered by hook-visible writes. *)
