type handler_report = {
  hr_tag : Message.Tag.t;
  hr_coverage : float;
  hr_closes_at : Message.Tag.t option;
}

type server_report = {
  sr_ep : Endpoint.t;
  sr_handlers : handler_report list;
  sr_coverage : float;
}

let handler_coverage ?(multithreaded = false) (policy : Policy.t)
    (h : Summary.handler) =
  let in_window = ref 0 and total = ref 0 in
  let window_open = ref policy.Policy.window_on_receive in
  let closes_at = ref None in
  List.iter
    (fun (seg : Summary.segment) ->
       total := !total + seg.Summary.seg_weight;
       if !window_open then in_window := !in_window + seg.Summary.seg_weight;
       match seg.Summary.seg_then with
       | None -> ()
       | Some out ->
         let cls = Seep.classify ~dst:out.Summary.out_dst out.Summary.out_tag in
         (* In a multithreaded server a synchronous interaction parks
            the thread; the ensuing thread switch closes the window no
            matter how the SEEP is classified. *)
         let closes =
           policy.Policy.closes_window cls
           || (multithreaded && out.Summary.out_dst <> Endpoint.kernel)
         in
         if !window_open && closes then begin
           window_open := false;
           if !closes_at = None then closes_at := Some out.Summary.out_tag
         end)
    h.Summary.h_segments;
  { hr_tag = h.Summary.h_tag;
    hr_coverage =
      (if !total = 0 then 0.
       else float_of_int !in_window /. float_of_int !total);
    hr_closes_at = !closes_at }

let server_coverage ?(frequency = fun _ -> 1.) ?(multithreaded = false) policy
    (s : Summary.t) =
  let handlers =
    List.map (handler_coverage ~multithreaded policy) s.Summary.sum_handlers
  in
  let weighted =
    List.map2
      (fun hr (h : Summary.handler) ->
         let weight =
           frequency h.Summary.h_tag
           *. float_of_int
                (List.fold_left
                   (fun acc (seg : Summary.segment) -> acc + seg.Summary.seg_weight)
                   0 h.Summary.h_segments)
         in
         (hr.hr_coverage, weight))
      handlers s.Summary.sum_handlers
  in
  { sr_ep = s.Summary.sum_ep;
    sr_handlers = handlers;
    sr_coverage = Osiris_util.Stats.weighted_mean weighted }

let report ?frequency ?(multithreaded = fun ep -> ep = Endpoint.vfs) policy
    summaries =
  List.map
    (fun (s : Summary.t) ->
       server_coverage ?frequency ~multithreaded:(multithreaded s.Summary.sum_ep)
         policy s)
    summaries

let mean_coverage reports =
  Osiris_util.Stats.mean (List.map (fun r -> r.sr_coverage) reports)
