(** Static recovery-window analysis.

    The compile-time half of OSIRIS: given a server's per-handler
    interaction summary ({!Summary.t}) and a recovery policy, compute —
    without running anything — where each handler's recovery window
    closes and what fraction of its work is recoverable. This is the
    decision procedure behind the SEEP engraving: the same conservative
    rules the kernel applies dynamically, evaluated over the static
    interaction skeleton.

    The analysis is conservative in two ways, matching the paper:
    - a conditional interaction ([out_maybe]) is assumed to happen;
    - any interaction the policy forbids closes the window permanently
      for the rest of the handler (no re-opening).

    Predictions are checked against dynamically measured coverage in
    the test suite; agreement is structural (same ordering, same
    policy sensitivities), not exact, since static weights approximate
    dynamic op counts. *)

type handler_report = {
  hr_tag : Message.Tag.t;
  hr_coverage : float;
      (** Fraction of the handler's weight inside the window. *)
  hr_closes_at : Message.Tag.t option;
      (** The interaction that closes the window, if any before the
          reply. [None] means the window survives until the reply. *)
}

type server_report = {
  sr_ep : Endpoint.t;
  sr_handlers : handler_report list;
  sr_coverage : float;
      (** Weight-averaged coverage over handlers (uniform handler
          frequency unless weighted). *)
}

val handler_coverage :
  ?multithreaded:bool -> Policy.t -> Summary.handler -> handler_report
(** [multithreaded] (default false): in a multithreaded server every
    synchronous outbound interaction parks the thread, which forcefully
    closes the window regardless of SEEP class (Section IV-E). *)

val server_coverage :
  ?frequency:(Message.Tag.t -> float) -> ?multithreaded:bool -> Policy.t ->
  Summary.t -> server_report
(** [frequency] weights handlers by how often the workload invokes
    them (default: uniform). *)

val report :
  ?frequency:(Message.Tag.t -> float) ->
  ?multithreaded:(Endpoint.t -> bool) -> Policy.t -> Summary.t list ->
  server_report list
(** [multithreaded] defaults to flagging VFS, the prototype's threaded
    server. *)

val mean_coverage : server_report list -> float
