(** Ring-buffer event tracer for the simulated kernel.

    Attach a tracer to a kernel (before or during a run) and it records
    the last [capacity] IPC/crash/recovery events; render them as an
    aligned timeline for debugging deadlocks and recovery sequences.

    {[
      let tracer = Tracer.create ~capacity:256 () in
      Tracer.attach tracer (System.kernel sys);
      ...
      List.iter print_endline (Tracer.timeline tracer)
    ]} *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 512 events. *)

val attach : t -> Kernel.t -> unit
(** Install as the kernel's event hook (replaces any previous hook). *)

val events : t -> Kernel.event list
(** Recorded events, oldest first (at most [capacity]). *)

val recorded : t -> int
(** Total events seen, including ones evicted from the ring. *)

val clear : t -> unit

val timeline : ?only:Endpoint.t -> t -> string list
(** Render, one line per event, optionally filtered to events touching
    the given endpoint. *)

val pp_event : Kernel.event -> string
