type t = {
  capacity : int;
  ring : Kernel.event option array;
  mutable next : int;
  mutable total : int;
}

let create ?(capacity = 512) () =
  { capacity = max 1 capacity;
    ring = Array.make (max 1 capacity) None;
    next = 0;
    total = 0 }

let record t ev =
  t.ring.(t.next) <- Some ev;
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1

let attach t kernel = Kernel.set_event_hook kernel (Some (record t))

let events t =
  let out = ref [] in
  for i = t.capacity - 1 downto 0 do
    match t.ring.((t.next + i) mod t.capacity) with
    | Some ev -> out := ev :: !out
    | None -> ()
  done;
  !out  (* oldest first: built by consing from the newest index down *)

let recorded t = t.total

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.total <- 0

let pp_event = function
  | Kernel.E_msg { time; src; dst; tag; call } ->
    Printf.sprintf "%10d  %-6s -> %-6s %s%s" time (Endpoint.server_name src)
      (Endpoint.server_name dst) (Message.Tag.to_string tag)
      (if call then " (call)" else "")
  | Kernel.E_reply { time; src; dst; tag = _ } ->
    Printf.sprintf "%10d  %-6s => %-6s reply" time (Endpoint.server_name src)
      (Endpoint.server_name dst)
  | Kernel.E_crash { time; ep; reason; window_open } ->
    Printf.sprintf "%10d  CRASH %s (%s) window=%s" time
      (Endpoint.server_name ep) reason (if window_open then "open" else "closed")
  | Kernel.E_restart { time; ep } ->
    Printf.sprintf "%10d  RESTART %s" time (Endpoint.server_name ep)
  | Kernel.E_halt { time; halt } ->
    Printf.sprintf "%10d  HALT %s" time (Kernel.halt_to_string halt)

let touches ep = function
  | Kernel.E_msg { src; dst; _ } | Kernel.E_reply { src; dst; _ } ->
    src = ep || dst = ep
  | Kernel.E_crash { ep = e; _ } | Kernel.E_restart { ep = e; _ } -> e = ep
  | Kernel.E_halt _ -> true

let timeline ?only t =
  let evs = events t in
  let evs =
    match only with None -> evs | Some ep -> List.filter (touches ep) evs
  in
  List.map pp_event evs
