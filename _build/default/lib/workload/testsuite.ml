open Prog.Syntax

(* Test-programs are written defensively: every syscall result is
   checked and the first unexpected value terminates the test with a
   distinct nonzero status. Under fault injection a recovered server
   answers E_CRASH (-999), which surfaces here as a failed — but
   cleanly terminated — test, the "fail" bucket of Tables II/III. *)

let ok = Syscall.exit 0

let fail n = Syscall.exit n

(* Run [next] if [cond] holds, else exit with [code]. *)
let require cond code next = if cond then next else fail code

let require_ok v code next = require (v >= 0) code next

(* ------------------------------------------------------------------ *)
(* Process management                                                  *)
(* ------------------------------------------------------------------ *)

let t_fork_basic =
  let* pid = Syscall.fork in
  if pid = 0 then ok
  else
    require_ok pid 1
      (let* p, status = Syscall.waitpid pid in
       require (p = pid) 2 (require (status = 0) 3 ok))

let t_fork_status =
  let* pid = Syscall.fork in
  if pid = 0 then fail 42
  else
    let* _, status = Syscall.waitpid pid in
    require (status = 42) 1 ok

let t_fork_many =
  (* Several live children at once, reaped in order. *)
  let rec spawn n acc =
    if n = 0 then Prog.return (List.rev acc)
    else
      let* pid = Syscall.fork in
      if pid = 0 then Syscall.exit (10 + n)
      else if pid < 0 then Prog.return (List.rev acc)
      else spawn (n - 1) (pid :: acc)
  in
  let* pids = spawn 4 [] in
  require (List.length pids = 4) 1
    (let rec reap expected = function
       | [] -> ok
       | pid :: rest ->
         let* p, status = Syscall.waitpid pid in
         require (p = pid) 2
           (require (status = 10 + expected) 3 (reap (expected - 1) rest))
     in
     reap 4 pids)

let t_wait_any =
  let* pid = Syscall.fork in
  if pid = 0 then ok
  else
    let* p, _ = Syscall.wait in
    require (p = pid) 1 ok

let t_wait_blocks =
  (* Parent waits before the child exits: the deferred-reply path. *)
  let* pid = Syscall.fork in
  if pid = 0 then
    (* Burn time so the parent reaches waitpid first. *)
    let* () = Prog.compute 50_000 in
    Syscall.exit 7
  else
    let* p, status = Syscall.waitpid pid in
    require (p = pid) 1 (require (status = 7) 2 ok)

let t_wait_no_child =
  let* p, _ = Syscall.wait in
  require (p = Errno.to_code Errno.ECHILD) 1 ok

let t_wait_wrong_pid =
  let* p, _ = Syscall.waitpid 99999 in
  require (p = Errno.to_code Errno.ECHILD) 1 ok

let t_zombie_reap =
  let* pid = Syscall.fork in
  if pid = 0 then Syscall.exit 3
  else
    (* Let the child become a zombie before waiting. *)
    let* () = Prog.compute 100_000 in
    let* p, status = Syscall.waitpid pid in
    require (p = pid) 1 (require (status = 3) 2 ok)

let t_getpid =
  let* pid = Syscall.getpid in
  require_ok pid 1
    (let* pid2 = Syscall.getpid in
     require (pid = pid2) 2 ok)

let t_getppid =
  let* pid = Syscall.fork in
  if pid = 0 then
    let* ppid = Syscall.getppid in
    let* () = Prog.guard (ppid > 0) "ppid positive" in
    Syscall.exit (if ppid > 0 then 0 else 1)
  else
    let* _, status = Syscall.waitpid pid in
    require (status = 0) 1 ok

let t_fork_pid_differs =
  let* mypid = Syscall.getpid in
  let* pid = Syscall.fork in
  if pid = 0 then
    let* cpid = Syscall.getpid in
    Syscall.exit (if cpid <> mypid then 0 else 1)
  else
    let* _, status = Syscall.waitpid pid in
    require (pid <> mypid) 1 (require (status = 0) 2 ok)

let t_kill_child =
  let* pid = Syscall.fork in
  if pid = 0 then
    (* Child spins until killed. *)
    let rec spin () = Prog.bind (Prog.compute 1000) spin in
    spin ()
  else
    let* r = Syscall.kill ~pid ~signal:9 in
    require_ok r 1
      (let* p, status = Syscall.waitpid pid in
       require (p = pid) 2 (require (status = 128 + 9) 3 ok))

let t_kill_no_target =
  let* r = Syscall.kill ~pid:99999 ~signal:9 in
  require (r = Errno.to_code Errno.ESRCH) 1 ok

let t_exec_child =
  (* /bin/true exits 0; /bin/false exits 1. *)
  let* pid = Syscall.fork in
  if pid = 0 then
    let* _ = Syscall.exec "/bin/true" 0 in
    fail 9
  else
    let* _, status = Syscall.waitpid pid in
    require (status = 0) 1 ok

let t_exec_status =
  let* pid = Syscall.fork in
  if pid = 0 then
    let* _ = Syscall.exec "/bin/false" 0 in
    fail 9
  else
    let* _, status = Syscall.waitpid pid in
    require (status = 1) 1 ok

let t_exec_arg =
  (* /bin/exitarg exits with its argument. *)
  let* pid = Syscall.fork in
  if pid = 0 then
    let* _ = Syscall.exec "/bin/exitarg" 23 in
    fail 9
  else
    let* _, status = Syscall.waitpid pid in
    require (status = 23) 1 ok

let t_exec_enoent =
  let* r = Syscall.exec "/bin/no_such_program" 0 in
  require (r = Errno.to_code Errno.ENOENT) 1 ok

let t_exec_chain =
  (* /bin/chain execs itself recursively, decrementing its argument. *)
  let* pid = Syscall.fork in
  if pid = 0 then
    let* _ = Syscall.exec "/bin/chain" 3 in
    fail 9
  else
    let* _, status = Syscall.waitpid pid in
    require (status = 0) 1 ok

let t_orphan =
  (* Child outlives parent; the orphan is reparented and reaped by PM. *)
  let* pid = Syscall.fork in
  if pid = 0 then
    let* gpid = Syscall.fork in
    if gpid = 0 then
      let* () = Prog.compute 200_000 in
      ok
    else ok (* exits immediately, orphaning the grandchild *)
  else
    let* _, status = Syscall.waitpid pid in
    require (status = 0) 1 ok

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let with_new_file path body =
  let* fd = Syscall.open_ path Message.creat in
  require_ok fd 81 (body fd)

let t_creat_write_read =
  with_new_file "/tmp/f_cwr" (fun fd ->
      let* n = Syscall.write ~fd "hello world" in
      require (n = 11) 1
        (let* p = Syscall.lseek ~fd ~off:0 Message.Seek_set in
         require (p = 0) 2
           (let* r = Syscall.read ~fd ~len:32 in
            match r with
            | Ok "hello world" ->
              let* _ = Syscall.close fd in
              let* _ = Syscall.unlink "/tmp/f_cwr" in
              ok
            | Ok _ -> fail 3
            | Error _ -> fail 4)))

let t_open_enoent =
  let* fd = Syscall.open_ "/tmp/does_not_exist" Message.rdonly in
  require (fd = Errno.to_code Errno.ENOENT) 1 ok

let t_read_eof =
  with_new_file "/tmp/f_eof" (fun fd ->
      let* _ = Syscall.write ~fd "abc" in
      let* _ = Syscall.lseek ~fd ~off:0 Message.Seek_set in
      let* r1 = Syscall.read ~fd ~len:3 in
      let* r2 = Syscall.read ~fd ~len:3 in
      match r1, r2 with
      | Ok "abc", Ok "" ->
        let* _ = Syscall.close fd in
        let* _ = Syscall.unlink "/tmp/f_eof" in
        ok
      | _ -> fail 1)

let t_lseek_modes =
  with_new_file "/tmp/f_seek" (fun fd ->
      let* _ = Syscall.write ~fd "0123456789" in
      let* p1 = Syscall.lseek ~fd ~off:4 Message.Seek_set in
      let* p2 = Syscall.lseek ~fd ~off:2 Message.Seek_cur in
      let* p3 = Syscall.lseek ~fd ~off:(-3) Message.Seek_end in
      let* bad = Syscall.lseek ~fd ~off:(-99) Message.Seek_set in
      let* _ = Syscall.close fd in
      let* _ = Syscall.unlink "/tmp/f_seek" in
      require (p1 = 4) 1
        (require (p2 = 6) 2
           (require (p3 = 7) 3
              (require (bad = Errno.to_code Errno.EINVAL) 4 ok))))

let t_sparse_read =
  (* Write past a hole; the hole reads back as NULs. *)
  with_new_file "/tmp/f_hole" (fun fd ->
      let* _ = Syscall.lseek ~fd ~off:100 Message.Seek_set in
      let* _ = Syscall.write ~fd "x" in
      let* _ = Syscall.lseek ~fd ~off:98 Message.Seek_set in
      let* r = Syscall.read ~fd ~len:3 in
      let* _ = Syscall.close fd in
      let* _ = Syscall.unlink "/tmp/f_hole" in
      match r with
      | Ok s when String.length s = 3 && s.[0] = '\000' && s.[2] = 'x' -> ok
      | _ -> fail 1)

let t_trunc_on_open =
  with_new_file "/tmp/f_trunc" (fun fd ->
      let* _ = Syscall.write ~fd "old contents" in
      let* _ = Syscall.close fd in
      let* fd2 = Syscall.open_ "/tmp/f_trunc" Message.creat in
      require_ok fd2 1
        (let* r = Syscall.stat "/tmp/f_trunc" in
         let* _ = Syscall.close fd2 in
         let* _ = Syscall.unlink "/tmp/f_trunc" in
         match r with
         | Ok { Message.st_size = 0; _ } -> ok
         | _ -> fail 2))

let t_append =
  with_new_file "/tmp/f_app" (fun fd ->
      let* _ = Syscall.write ~fd "abc" in
      let* _ = Syscall.close fd in
      let flags =
        { Message.o_create = false; o_trunc = false; o_append = true }
      in
      let* fd2 = Syscall.open_ "/tmp/f_app" flags in
      require_ok fd2 1
        (let* _ = Syscall.write ~fd:fd2 "def" in
         let* _ = Syscall.lseek ~fd:fd2 ~off:0 Message.Seek_set in
         let* r = Syscall.read ~fd:fd2 ~len:10 in
         let* _ = Syscall.close fd2 in
         let* _ = Syscall.unlink "/tmp/f_app" in
         match r with Ok "abcdef" -> ok | _ -> fail 2))

let t_unlink_then_open =
  with_new_file "/tmp/f_gone" (fun fd ->
      let* _ = Syscall.close fd in
      let* r = Syscall.unlink "/tmp/f_gone" in
      require_ok r 1
        (let* fd2 = Syscall.open_ "/tmp/f_gone" Message.rdonly in
         require (fd2 = Errno.to_code Errno.ENOENT) 2 ok))

let t_unlink_enoent =
  let* r = Syscall.unlink "/tmp/never_created" in
  require (r = Errno.to_code Errno.ENOENT) 1 ok

let t_stat_file =
  with_new_file "/tmp/f_stat" (fun fd ->
      let* _ = Syscall.write ~fd (String.make 100 'a') in
      let* r = Syscall.stat "/tmp/f_stat" in
      let* _ = Syscall.close fd in
      let* _ = Syscall.unlink "/tmp/f_stat" in
      match r with
      | Ok { Message.st_size = 100; st_is_dir = false; _ } -> ok
      | _ -> fail 1)

let t_fstat =
  with_new_file "/tmp/f_fstat" (fun fd ->
      let* _ = Syscall.write ~fd "12345" in
      let* r = Syscall.fstat fd in
      let* _ = Syscall.close fd in
      let* _ = Syscall.unlink "/tmp/f_fstat" in
      match r with Ok { Message.st_size = 5; _ } -> ok | _ -> fail 1)

let t_close_ebadf =
  let* r = Syscall.close 13 in
  require (r = Errno.to_code Errno.EBADF) 1
    (let* r2 = Syscall.read ~fd:13 ~len:1 in
     match r2 with Error Errno.EBADF -> ok | _ -> fail 2)

let t_dup_shares_offset =
  with_new_file "/tmp/f_dup" (fun fd ->
      let* _ = Syscall.write ~fd "abcdef" in
      let* fd2 = Syscall.dup fd in
      require_ok fd2 1
        (let* _ = Syscall.lseek ~fd ~off:1 Message.Seek_set in
         let* r = Syscall.read ~fd:fd2 ~len:2 in
         let* _ = Syscall.close fd in
         let* _ = Syscall.close fd2 in
         let* _ = Syscall.unlink "/tmp/f_dup" in
         match r with Ok "bc" -> ok | _ -> fail 2))

let t_fd_exhaustion =
  (* Open until EMFILE, then close everything. *)
  let rec open_all acc n =
    if n > Vfs.max_fds + 2 then Prog.return (acc, Errno.to_code Errno.EMFILE)
    else
      let* fd = Syscall.open_ "/etc/data" Message.rdonly in
      if fd >= 0 then open_all (fd :: acc) (n + 1)
      else Prog.return (acc, fd)
  in
  let* fds, last = open_all [] 0 in
  let* () =
    Prog.iter_list
      (fun fd -> Prog.bind (Syscall.close fd) (fun _ -> Prog.return ()))
      fds
  in
  require (last = Errno.to_code Errno.EMFILE) 1
    (require (List.length fds > 0) 2 ok)

let t_rename =
  with_new_file "/tmp/f_ren_a" (fun fd ->
      let* _ = Syscall.write ~fd "payload" in
      let* _ = Syscall.close fd in
      let* r = Syscall.rename ~src:"/tmp/f_ren_a" ~dst:"/tmp/f_ren_b" in
      require_ok r 1
        (let* gone = Syscall.open_ "/tmp/f_ren_a" Message.rdonly in
         require (gone = Errno.to_code Errno.ENOENT) 2
           (let* fd2 = Syscall.open_ "/tmp/f_ren_b" Message.rdonly in
            require_ok fd2 3
              (let* r = Syscall.read ~fd:fd2 ~len:10 in
               let* _ = Syscall.close fd2 in
               let* _ = Syscall.unlink "/tmp/f_ren_b" in
               match r with Ok "payload" -> ok | _ -> fail 4))))

let t_rename_overwrites =
  with_new_file "/tmp/f_ro_a" (fun fd ->
      let* _ = Syscall.write ~fd "new" in
      let* _ = Syscall.close fd in
      with_new_file "/tmp/f_ro_b" (fun fd2 ->
          let* _ = Syscall.write ~fd:fd2 "old" in
          let* _ = Syscall.close fd2 in
          let* r = Syscall.rename ~src:"/tmp/f_ro_a" ~dst:"/tmp/f_ro_b" in
          require_ok r 1
            (let* fd3 = Syscall.open_ "/tmp/f_ro_b" Message.rdonly in
             let* c = Syscall.read ~fd:fd3 ~len:8 in
             let* _ = Syscall.close fd3 in
             let* _ = Syscall.unlink "/tmp/f_ro_b" in
             match c with Ok "new" -> ok | _ -> fail 2)))

let t_big_file =
  (* Fill a file to the 8-block maximum and verify both ends. *)
  with_new_file "/tmp/f_big" (fun fd ->
      let chunk = String.make 1024 'z' in
      let rec fill n =
        if n = 0 then Prog.return true
        else
          let* w = Syscall.write ~fd chunk in
          if w = 1024 then fill (n - 1) else Prog.return false
      in
      let* full = fill (Mfs.max_file_size / 1024) in
      require full 1
        (let* over = Syscall.write ~fd "x" in
         require (over = Errno.to_code Errno.ENOSPC) 2
           (let* _ = Syscall.lseek ~fd ~off:(-1) Message.Seek_end in
            let* r = Syscall.read ~fd ~len:1 in
            let* _ = Syscall.close fd in
            let* _ = Syscall.unlink "/tmp/f_big" in
            match r with Ok "z" -> ok | _ -> fail 3)))

let t_write_cross_block =
  (* A write spanning a block boundary must read-modify-write. *)
  with_new_file "/tmp/f_cross" (fun fd ->
      let* _ = Syscall.write ~fd (String.make 1020 '.') in
      let* _ = Syscall.write ~fd "ABCDEFGH" in
      let* _ = Syscall.lseek ~fd ~off:1018 Message.Seek_set in
      let* r = Syscall.read ~fd ~len:6 in
      let* _ = Syscall.close fd in
      let* _ = Syscall.unlink "/tmp/f_cross" in
      match r with Ok "..ABCD" -> ok | _ -> fail 1)

let t_sync =
  let* r = Syscall.sync in
  require_ok r 1 ok

(* ------------------------------------------------------------------ *)
(* Directories                                                         *)
(* ------------------------------------------------------------------ *)

let t_mkdir_rmdir =
  let* r = Syscall.mkdir "/tmp/d_mk" in
  require_ok r 1
    (let* s = Syscall.stat "/tmp/d_mk" in
     match s with
     | Ok { Message.st_is_dir = true; _ } ->
       let* r2 = Syscall.rmdir "/tmp/d_mk" in
       require_ok r2 2
         (let* s2 = Syscall.stat "/tmp/d_mk" in
          match s2 with Error Errno.ENOENT -> ok | _ -> fail 3)
     | _ -> fail 4)

let t_mkdir_eexist =
  let* _ = Syscall.mkdir "/tmp/d_dup" in
  let* r = Syscall.mkdir "/tmp/d_dup" in
  let* _ = Syscall.rmdir "/tmp/d_dup" in
  require (r = Errno.to_code Errno.EEXIST) 1 ok

let t_rmdir_notempty =
  let* _ = Syscall.mkdir "/tmp/d_full" in
  let* fd = Syscall.open_ "/tmp/d_full/child" Message.creat in
  require_ok fd 1
    (let* _ = Syscall.close fd in
     let* r = Syscall.rmdir "/tmp/d_full" in
     require (r = Errno.to_code Errno.ENOTEMPTY) 2
       (let* _ = Syscall.unlink "/tmp/d_full/child" in
        let* r2 = Syscall.rmdir "/tmp/d_full" in
        require_ok r2 3 ok))

let t_nested_dirs =
  let* _ = Syscall.mkdir "/tmp/d_n1" in
  let* _ = Syscall.mkdir "/tmp/d_n1/d_n2" in
  let* fd = Syscall.open_ "/tmp/d_n1/d_n2/leaf" Message.creat in
  require_ok fd 1
    (let* _ = Syscall.write ~fd "deep" in
     let* _ = Syscall.close fd in
     let* r = Syscall.stat "/tmp/d_n1/d_n2/leaf" in
     let* _ = Syscall.unlink "/tmp/d_n1/d_n2/leaf" in
     let* _ = Syscall.rmdir "/tmp/d_n1/d_n2" in
     let* _ = Syscall.rmdir "/tmp/d_n1" in
     match r with Ok { Message.st_size = 4; _ } -> ok | _ -> fail 2)

let t_chdir_relative =
  let* _ = Syscall.mkdir "/tmp/d_cwd" in
  let* r = Syscall.chdir "/tmp/d_cwd" in
  require_ok r 1
    (let* fd = Syscall.open_ "relfile" Message.creat in
     require_ok fd 2
       (let* _ = Syscall.write ~fd "rel" in
        let* _ = Syscall.close fd in
        let* s = Syscall.stat "/tmp/d_cwd/relfile" in
        let* _ = Syscall.chdir "/" in
        let* _ = Syscall.unlink "/tmp/d_cwd/relfile" in
        let* _ = Syscall.rmdir "/tmp/d_cwd" in
        match s with Ok { Message.st_size = 3; _ } -> ok | _ -> fail 3))

let t_chdir_enotdir =
  with_new_file "/tmp/f_nd" (fun fd ->
      let* _ = Syscall.close fd in
      let* r = Syscall.chdir "/tmp/f_nd" in
      let* _ = Syscall.unlink "/tmp/f_nd" in
      require (r = Errno.to_code Errno.ENOTDIR) 1 ok)

let t_open_dir_fails =
  let* _ = Syscall.mkdir "/tmp/d_open" in
  let* fd = Syscall.open_ "/tmp/d_open" Message.rdonly in
  let* _ = Syscall.rmdir "/tmp/d_open" in
  require (fd = Errno.to_code Errno.EISDIR) 1 ok

let t_cwd_inherited =
  let* _ = Syscall.mkdir "/tmp/d_inh" in
  let* _ = Syscall.chdir "/tmp/d_inh" in
  let* pid = Syscall.fork in
  if pid = 0 then begin
    let* fd = Syscall.open_ "childfile" Message.creat in
    let* _ = Syscall.close fd in
    Syscall.exit (if fd >= 0 then 0 else 1)
  end
  else
    let* _, status = Syscall.waitpid pid in
    let* s = Syscall.stat "/tmp/d_inh/childfile" in
    let* _ = Syscall.chdir "/" in
    let* _ = Syscall.unlink "/tmp/d_inh/childfile" in
    let* _ = Syscall.rmdir "/tmp/d_inh" in
    require (status = 0) 1 (match s with Ok _ -> ok | Error _ -> fail 2)

(* ------------------------------------------------------------------ *)
(* Pipes                                                               *)
(* ------------------------------------------------------------------ *)

let t_pipe_basic =
  let* p = Syscall.pipe in
  match p with
  | Error _ -> fail 1
  | Ok (rfd, wfd) ->
    let* n = Syscall.write ~fd:wfd "ping" in
    require (n = 4) 2
      (let* r = Syscall.read ~fd:rfd ~len:8 in
       let* _ = Syscall.close rfd in
       let* _ = Syscall.close wfd in
       match r with Ok "ping" -> ok | _ -> fail 3)

let t_pipe_eof =
  let* p = Syscall.pipe in
  match p with
  | Error _ -> fail 1
  | Ok (rfd, wfd) ->
    let* _ = Syscall.write ~fd:wfd "zz" in
    let* _ = Syscall.close wfd in
    let* r1 = Syscall.read ~fd:rfd ~len:8 in
    let* r2 = Syscall.read ~fd:rfd ~len:8 in
    let* _ = Syscall.close rfd in
    (match r1, r2 with Ok "zz", Ok "" -> ok | _ -> fail 2)

let t_pipe_epipe =
  let* p = Syscall.pipe in
  match p with
  | Error _ -> fail 1
  | Ok (rfd, wfd) ->
    let* _ = Syscall.close rfd in
    let* n = Syscall.write ~fd:wfd "doomed" in
    let* _ = Syscall.close wfd in
    require (n = Errno.to_code Errno.EPIPE) 2 ok

let t_pipe_blocking_read =
  (* Child reads before the parent writes: exercises the yield-retry
     path in VFS (and the forced window close on yield). *)
  let* p = Syscall.pipe in
  match p with
  | Error _ -> fail 1
  | Ok (rfd, wfd) ->
    let* pid = Syscall.fork in
    if pid = 0 then
      let* r = Syscall.read ~fd:rfd ~len:4 in
      Syscall.exit (match r with Ok "data" -> 0 | _ -> 1)
    else
      let* () = Prog.compute 100_000 in
      let* _ = Syscall.write ~fd:wfd "data" in
      let* _, status = Syscall.waitpid pid in
      let* _ = Syscall.close rfd in
      let* _ = Syscall.close wfd in
      require (status = 0) 2 ok

let t_pipe_fill_drain =
  (* Writer fills beyond capacity and blocks until the reader drains. *)
  let* p = Syscall.pipe in
  match p with
  | Error _ -> fail 1
  | Ok (rfd, wfd) ->
    let payload = String.make (Vfs.pipe_capacity + 100) 'q' in
    let* pid = Syscall.fork in
    if pid = 0 then
      let rec drain got =
        if got >= String.length payload then Syscall.exit 0
        else
          let* r = Syscall.read ~fd:rfd ~len:200 in
          match r with
          | Ok "" -> Syscall.exit 1
          | Ok s -> drain (got + String.length s)
          | Error _ -> Syscall.exit 2
      in
      drain 0
    else
      let* n = Syscall.write ~fd:wfd payload in
      let* _, status = Syscall.waitpid pid in
      let* _ = Syscall.close rfd in
      let* _ = Syscall.close wfd in
      require (n = String.length payload) 2 (require (status = 0) 3 ok)

let t_pipe_inherited =
  (* Classic parent-to-child pipe across fork. *)
  let* p = Syscall.pipe in
  match p with
  | Error _ -> fail 1
  | Ok (rfd, wfd) ->
    let* pid = Syscall.fork in
    if pid = 0 then begin
      let* _ = Syscall.close wfd in
      let* r = Syscall.read ~fd:rfd ~len:16 in
      Syscall.exit (match r with Ok "from parent" -> 0 | _ -> 1)
    end
    else
      let* _ = Syscall.close rfd in
      let* _ = Syscall.write ~fd:wfd "from parent" in
      let* _ = Syscall.close wfd in
      let* _, status = Syscall.waitpid pid in
      require (status = 0) 2 ok

let t_pipe_fstat =
  let* p = Syscall.pipe in
  match p with
  | Error _ -> fail 1
  | Ok (rfd, wfd) ->
    let* _ = Syscall.write ~fd:wfd "1234567" in
    let* r = Syscall.fstat rfd in
    let* _ = Syscall.close rfd in
    let* _ = Syscall.close wfd in
    (match r with Ok { Message.st_size = 7; _ } -> ok | _ -> fail 2)

(* ------------------------------------------------------------------ *)
(* Memory (VM)                                                         *)
(* ------------------------------------------------------------------ *)

let t_sbrk_grow =
  let* b0 = Syscall.brk_current in
  require_ok b0 1
    (let* b1 = Syscall.sbrk 10_000 in
     require (b1 = b0 + 10_000) 2
       (let* b2 = Syscall.brk_current in
        require (b2 = b1) 3 ok))

let t_sbrk_shrink =
  let* b0 = Syscall.brk_current in
  let* _ = Syscall.sbrk 8192 in
  let* b1 = Syscall.sbrk (-8192) in
  require (b1 = b0) 1 ok

let t_sbrk_negative_break =
  let* b0 = Syscall.brk_current in
  let* r = Syscall.sbrk (-(b0 + 4096)) in
  require (r = Errno.to_code Errno.EINVAL) 1 ok

let t_mmap_munmap =
  let* id = Syscall.mmap ~len:65536 in
  require_ok id 1
    (let* used0, _ = Syscall.vm_info in
     let* r = Syscall.munmap ~id in
     require_ok r 2
       (let* used1, _ = Syscall.vm_info in
        require (used1 = used0 - (65536 / Vm.page_size)) 3 ok))

let t_munmap_einval =
  let* r = Syscall.munmap ~id:77 in
  require (r = Errno.to_code Errno.EINVAL) 1 ok

let t_mmap_zero =
  let* r = Syscall.mmap ~len:0 in
  require (r = Errno.to_code Errno.EINVAL) 1 ok

let t_vm_fork_accounting =
  (* Fork doubles the address-space pages; exit releases them. *)
  let* used0, _ = Syscall.vm_info in
  let* pid = Syscall.fork in
  if pid = 0 then ok
  else
    let* _, _ = Syscall.waitpid pid in
    let* used1, _ = Syscall.vm_info in
    require (used1 = used0) 1 ok

let t_brk_inherited =
  let* _ = Syscall.sbrk 20_000 in
  let* b = Syscall.brk_current in
  let* pid = Syscall.fork in
  if pid = 0 then
    let* cb = Syscall.brk_current in
    Syscall.exit (if cb = b then 0 else 1)
  else
    let* _, status = Syscall.waitpid pid in
    require (status = 0) 1 ok

(* ------------------------------------------------------------------ *)
(* Data store                                                          *)
(* ------------------------------------------------------------------ *)

let t_ds_roundtrip =
  let* r = Syscall.ds_publish ~key:"t.round" ~value:12345 in
  require_ok r 1
    (let* v = Syscall.ds_retrieve ~key:"t.round" in
     let* _ = Syscall.ds_delete ~key:"t.round" in
     match v with Ok 12345 -> ok | _ -> fail 2)

let t_ds_overwrite =
  let* _ = Syscall.ds_publish ~key:"t.ow" ~value:1 in
  let* _ = Syscall.ds_publish ~key:"t.ow" ~value:2 in
  let* v = Syscall.ds_retrieve ~key:"t.ow" in
  let* _ = Syscall.ds_delete ~key:"t.ow" in
  (match v with Ok 2 -> ok | _ -> fail 1)

let t_ds_missing =
  let* v = Syscall.ds_retrieve ~key:"t.absent" in
  match v with Error Errno.ENOENT -> ok | _ -> fail 1

let t_ds_delete_missing =
  let* r = Syscall.ds_delete ~key:"t.absent2" in
  require (r = Errno.to_code Errno.ENOENT) 1 ok

let t_ds_bad_key =
  let* r = Syscall.ds_publish ~key:"" ~value:1 in
  require (r = Errno.to_code Errno.EINVAL) 1 ok

let t_ds_many_keys =
  let rec publish n =
    if n = 0 then Prog.return true
    else
      let* r = Syscall.ds_publish ~key:(Printf.sprintf "t.many%d" n) ~value:n in
      if r >= 0 then publish (n - 1) else Prog.return false
  in
  let* all = publish 20 in
  require all 1
    (let rec verify n =
       if n = 0 then ok
       else
         let* v = Syscall.ds_retrieve ~key:(Printf.sprintf "t.many%d" n) in
         match v with
         | Ok x when x = n ->
           let* _ = Syscall.ds_delete ~key:(Printf.sprintf "t.many%d" n) in
           verify (n - 1)
         | _ -> fail 2
     in
     verify 20)

let t_ds_subscribe_notify =
  (* Subscription generates a DS notification on matching publishes;
     the notification is fire-and-forget, so here we only verify the
     subscribe+publish path stays healthy. *)
  let* r = Syscall.ds_subscribe ~prefix:"t.sub" in
  require_ok r 1
    (let* r2 = Syscall.ds_publish ~key:"t.sub.x" ~value:5 in
     require_ok r2 2
       (let* v = Syscall.ds_retrieve ~key:"t.sub.x" in
        let* _ = Syscall.ds_delete ~key:"t.sub.x" in
        match v with Ok 5 -> ok | _ -> fail 3))

(* ------------------------------------------------------------------ *)
(* RS                                                                  *)
(* ------------------------------------------------------------------ *)

let t_rs_status =
  let* r = Syscall.rs_status in
  match r with
  | Ok (restarts, shutdowns, _) ->
    require (restarts >= 0 && shutdowns >= 0) 1 ok
  | Error _ -> fail 2

(* ------------------------------------------------------------------ *)
(* Cross-cutting scenarios                                             *)
(* ------------------------------------------------------------------ *)

let t_fork_fd_isolation =
  (* Closing an fd in the child must not close it in the parent. *)
  with_new_file "/tmp/f_iso" (fun fd ->
      let* _ = Syscall.write ~fd "keep" in
      let* pid = Syscall.fork in
      if pid = 0 then
        let* _ = Syscall.close fd in
        ok
      else
        let* _, _ = Syscall.waitpid pid in
        let* p = Syscall.lseek ~fd ~off:0 Message.Seek_set in
        require (p = 0) 1
          (let* r = Syscall.read ~fd ~len:8 in
           let* _ = Syscall.close fd in
           let* _ = Syscall.unlink "/tmp/f_iso" in
           match r with Ok "keep" -> ok | _ -> fail 2))

let t_exec_keeps_fds =
  (* /bin/readfd reads from fd given as arg and exits 0 on "mark". *)
  with_new_file "/tmp/f_execfd" (fun fd ->
      let* _ = Syscall.write ~fd "mark" in
      let* _ = Syscall.lseek ~fd ~off:0 Message.Seek_set in
      let* pid = Syscall.fork in
      if pid = 0 then
        let* _ = Syscall.exec "/bin/readfd" fd in
        fail 9
      else
        let* _, status = Syscall.waitpid pid in
        let* _ = Syscall.close fd in
        let* _ = Syscall.unlink "/tmp/f_execfd" in
        require (status = 0) 1 ok)

let t_double_fork =
  let* pid = Syscall.fork in
  if pid = 0 then begin
    let* pid2 = Syscall.fork in
    if pid2 = 0 then Syscall.exit 5
    else
      let* _, status = Syscall.waitpid pid2 in
      Syscall.exit (if status = 5 then 0 else 1)
  end
  else
    let* _, status = Syscall.waitpid pid in
    require (status = 0) 1 ok

let t_fork_file_positions =
  (* Parent and child share the open-file offset (POSIX). *)
  with_new_file "/tmp/f_share" (fun fd ->
      let* _ = Syscall.write ~fd "0123456789" in
      let* _ = Syscall.lseek ~fd ~off:0 Message.Seek_set in
      let* pid = Syscall.fork in
      if pid = 0 then
        let* r = Syscall.read ~fd ~len:3 in
        Syscall.exit (match r with Ok "012" -> 0 | _ -> 1)
      else
        let* _, status = Syscall.waitpid pid in
        let* r = Syscall.read ~fd ~len:3 in
        let* _ = Syscall.close fd in
        let* _ = Syscall.unlink "/tmp/f_share" in
        require (status = 0) 1
          (match r with Ok "345" -> ok | _ -> fail 2))

let t_many_procs =
  (* Grandchildren under several children: PM table churn. *)
  let rec spawn_tree depth =
    if depth = 0 then ok
    else
      let* pid = Syscall.fork in
      if pid = 0 then spawn_tree (depth - 1)
      else
        let* _, status = Syscall.waitpid pid in
        Syscall.exit status
  in
  let* pid = Syscall.fork in
  if pid = 0 then spawn_tree 5
  else
    let* _, status = Syscall.waitpid pid in
    require (status = 0) 1 ok

let t_file_via_ds_name =
  (* A file whose name is coordinated through DS. *)
  let* _ = Syscall.ds_publish ~key:"t.fname" ~value:4242 in
  let* v = Syscall.ds_retrieve ~key:"t.fname" in
  match v with
  | Ok tag ->
    let path = Printf.sprintf "/tmp/f_viads_%d" tag in
    with_new_file path (fun fd ->
        let* _ = Syscall.write ~fd "indirect" in
        let* _ = Syscall.close fd in
        let* r = Syscall.stat path in
        let* _ = Syscall.unlink path in
        let* _ = Syscall.ds_delete ~key:"t.fname" in
        match r with Ok { Message.st_size = 8; _ } -> ok | _ -> fail 1)
  | Error _ -> fail 2

let t_exec_missing_after_unlink =
  (* Unlinking a binary makes exec fail path validation in VFS. *)
  let* fd = Syscall.open_ "/bin/ephemeral" Message.creat in
  require_ok fd 1
    (let* _ = Syscall.close fd in
     let* _ = Syscall.unlink "/bin/ephemeral" in
     let* pid = Syscall.fork in
     if pid = 0 then
       let* r = Syscall.exec "/bin/ephemeral" 0 in
       Syscall.exit (if r = Errno.to_code Errno.ENOENT then 0 else 1)
     else
       let* _, status = Syscall.waitpid pid in
       require (status = 0) 2 ok)

let t_pipeline_two_stage =
  (* producer | consumer through a pipe, like a tiny shell pipeline. *)
  let* p = Syscall.pipe in
  match p with
  | Error _ -> fail 1
  | Ok (rfd, wfd) ->
    let* producer = Syscall.fork in
    if producer = 0 then begin
      let* _ = Syscall.close rfd in
      let rec produce n =
        if n = 0 then
          let* _ = Syscall.close wfd in
          ok
        else
          let* _ = Syscall.write ~fd:wfd "x" in
          produce (n - 1)
      in
      produce 50
    end
    else
      let* consumer = Syscall.fork in
      if consumer = 0 then begin
        let* _ = Syscall.close wfd in
        let rec consume got =
          let* r = Syscall.read ~fd:rfd ~len:16 in
          match r with
          | Ok "" -> Syscall.exit (if got = 50 then 0 else 1)
          | Ok s -> consume (got + String.length s)
          | Error _ -> Syscall.exit 2
        in
        consume 0
      end
      else
        let* _ = Syscall.close rfd in
        let* _ = Syscall.close wfd in
        let* _, s1 = Syscall.waitpid producer in
        let* _, s2 = Syscall.waitpid consumer in
        require (s1 = 0) 2 (require (s2 = 0) 3 ok)


(* ------------------------------------------------------------------ *)
(* Additional coverage programs                                        *)
(* ------------------------------------------------------------------ *)

let t_dup_after_close =
  (* A dup'd descriptor keeps the file alive after the original close. *)
  with_new_file "/tmp/f_dac" (fun fd ->
      let* _ = Syscall.write ~fd "live" in
      let* fd2 = Syscall.dup fd in
      let* _ = Syscall.close fd in
      let* p = Syscall.lseek ~fd:fd2 ~off:0 Message.Seek_set in
      require (p = 0) 1
        (let* r = Syscall.read ~fd:fd2 ~len:8 in
         let* _ = Syscall.close fd2 in
         let* _ = Syscall.unlink "/tmp/f_dac" in
         match r with Ok "live" -> ok | _ -> fail 2))

let t_rename_into_dir =
  let* _ = Syscall.mkdir "/tmp/d_rid" in
  with_new_file "/tmp/f_rid" (fun fd ->
      let* _ = Syscall.write ~fd "mv" in
      let* _ = Syscall.close fd in
      let* r = Syscall.rename ~src:"/tmp/f_rid" ~dst:"/tmp/d_rid/f_rid" in
      require_ok r 1
        (let* st = Syscall.stat "/tmp/d_rid/f_rid" in
         let* _ = Syscall.unlink "/tmp/d_rid/f_rid" in
         let* _ = Syscall.rmdir "/tmp/d_rid" in
         match st with Ok { Message.st_size = 2; _ } -> ok | _ -> fail 2))

let t_lseek_past_eof_write =
  (* Seeking past EOF and writing creates a sparse extension. *)
  with_new_file "/tmp/f_peof" (fun fd ->
      let* _ = Syscall.write ~fd "ab" in
      let* p = Syscall.lseek ~fd ~off:10 Message.Seek_end in
      require (p = 12) 1
        (let* _ = Syscall.write ~fd "z" in
         let* st = Syscall.fstat fd in
         let* _ = Syscall.close fd in
         let* _ = Syscall.unlink "/tmp/f_peof" in
         match st with Ok { Message.st_size = 13; _ } -> ok | _ -> fail 2))

let t_stat_dir =
  let* st = Syscall.stat "/bin" in
  match st with
  | Ok { Message.st_is_dir = true; _ } -> ok
  | _ -> fail 1

let t_stat_root =
  let* st = Syscall.stat "/" in
  match st with
  | Ok { Message.st_ino = 0; st_is_dir = true; _ } -> ok
  | _ -> fail 1

let t_chdir_then_unlink_relative =
  let* _ = Syscall.mkdir "/tmp/d_rel" in
  let* _ = Syscall.chdir "/tmp/d_rel" in
  let* fd = Syscall.open_ "victim" Message.creat in
  require_ok fd 1
    (let* _ = Syscall.close fd in
     let* r = Syscall.unlink "victim" in
     let* _ = Syscall.chdir "/" in
     let* _ = Syscall.rmdir "/tmp/d_rel" in
     require_ok r 2 ok)

let t_pipe_write_after_reader_exits =
  (* EPIPE must also fire when the reading *process* exits, not only on
     an explicit close. *)
  let* p = Syscall.pipe in
  match p with
  | Error _ -> fail 1
  | Ok (rfd, wfd) ->
    let* pid = Syscall.fork in
    if pid = 0 then
      let* _ = Syscall.close rfd in
      let* _ = Syscall.close wfd in
      ok
    else
      let* _, _ = Syscall.waitpid pid in
      let* _ = Syscall.close rfd in
      let* n = Syscall.write ~fd:wfd "dead" in
      let* _ = Syscall.close wfd in
      require (n = Errno.to_code Errno.EPIPE) 2 ok

let t_exec_preserves_pid =
  (* exec replaces the image but not the process identity: the parent
     waits on the same pid. *)
  let* pid = Syscall.fork in
  if pid = 0 then
    let* _ = Syscall.exec "/bin/exitarg" 17 in
    fail 9
  else
    let* reaped, status = Syscall.waitpid pid in
    require (reaped = pid) 1 (require (status = 17) 2 ok)

let t_kill_self =
  let* pid = Syscall.fork in
  if pid = 0 then
    let* me = Syscall.getpid in
    let* _ = Syscall.kill ~pid:me ~signal:15 in
    fail 9 (* unreachable: kill of self terminates *)
  else
    let* _, status = Syscall.waitpid pid in
    require (status = 128 + 15) 1 ok

let t_brk_reset_on_exec =
  (* /bin/exitarg runs with a fresh image; our break must not leak into
     it. Verified indirectly: grow the break, exec, and the child's
     clean exit implies a sane address space. *)
  let* pid = Syscall.fork in
  if pid = 0 then
    let* _ = Syscall.sbrk 100_000 in
    let* _ = Syscall.exec "/bin/exitarg" 0 in
    fail 9
  else
    let* _, status = Syscall.waitpid pid in
    require (status = 0) 1
      (let* used, _ = Syscall.vm_info in
       require (used < Vm.total_pages) 2 ok)

let t_mmap_two_regions =
  let* id1 = Syscall.mmap ~len:8192 in
  let* id2 = Syscall.mmap ~len:8192 in
  require_ok id1 1
    (require_ok id2 2
       (require (id1 <> id2) 3
          (let* r1 = Syscall.munmap ~id:id1 in
           let* r2 = Syscall.munmap ~id:id2 in
           require_ok r1 4 (require_ok r2 5 ok))))

let t_munmap_foreign_region =
  (* A region mapped by the child must not be unmappable by the parent. *)
  let* id = Syscall.mmap ~len:4096 in
  require_ok id 1
    (let* pid = Syscall.fork in
     if pid = 0 then
       let* r = Syscall.munmap ~id in
       Syscall.exit (if r = Errno.to_code Errno.EINVAL then 0 else 1)
     else
       let* _, status = Syscall.waitpid pid in
       let* _ = Syscall.munmap ~id in
       require (status = 0) 2 ok)

let t_ds_capacity_pressure =
  (* Fill a good chunk of DS and drain it again; capacity accounting
     must hold. *)
  let n = 24 in
  let rec fill i =
    if i = 0 then Prog.return true
    else
      let* r = Syscall.ds_publish ~key:(Printf.sprintf "t.cap%d" i) ~value:i in
      if r >= 0 then fill (i - 1) else Prog.return false
  in
  let rec drain i =
    if i = 0 then ok
    else
      let* r = Syscall.ds_delete ~key:(Printf.sprintf "t.cap%d" i) in
      require_ok r 2 (drain (i - 1))
  in
  let* full = fill n in
  require full 1 (drain n)


let t_signal_ignore =
  (* An ignored SIGTERM does not kill; SIGKILL always does. *)
  let* pid = Syscall.fork in
  if pid = 0 then
    let* r = Syscall.signal_ignore ~signal:15 true in
    if r < 0 then Syscall.exit 9
    else
      let rec spin () = Prog.bind (Prog.compute 1000) spin in
      spin ()
  else
    let* () = Prog.compute 100_000 in
    let* r1 = Syscall.kill ~pid ~signal:15 in
    require_ok r1 1
      (let* () = Prog.compute 50_000 in
       (* still alive: SIGKILL it *)
       let* r2 = Syscall.kill ~pid ~signal:9 in
       require_ok r2 2
         (let* _, status = Syscall.waitpid pid in
          require (status = 128 + 9) 3 ok))

let t_signal_prev_disposition =
  let* p0 = Syscall.signal_ignore ~signal:10 true in
  require (p0 = 0) 1
    (let* p1 = Syscall.signal_ignore ~signal:10 false in
     require (p1 = 1) 2
       (let* p2 = Syscall.signal_ignore ~signal:10 false in
        require (p2 = 0) 3 ok))

let t_sigkill_not_ignorable =
  let* r = Syscall.signal_ignore ~signal:9 true in
  require (r = Errno.to_code Errno.EINVAL) 1 ok

let t_signal_mask_inherited =
  let* _ = Syscall.signal_ignore ~signal:15 true in
  let* pid = Syscall.fork in
  if pid = 0 then
    (* The child inherited the disposition: clearing it reports 1. *)
    let* prev = Syscall.signal_ignore ~signal:15 false in
    Syscall.exit (if prev = 1 then 0 else 1)
  else
    let* _, status = Syscall.waitpid pid in
    let* _ = Syscall.signal_ignore ~signal:15 false in
    require (status = 0) 1 ok

let t_readdir_lists_children =
  let* _ = Syscall.mkdir "/tmp/d_ls" in
  let* fd = Syscall.open_ "/tmp/d_ls/alpha" Message.creat in
  let* _ = Syscall.close fd in
  let* fd2 = Syscall.open_ "/tmp/d_ls/beta" Message.creat in
  let* _ = Syscall.close fd2 in
  let* names = Syscall.readdir "/tmp/d_ls" in
  let* _ = Syscall.unlink "/tmp/d_ls/alpha" in
  let* _ = Syscall.unlink "/tmp/d_ls/beta" in
  let* _ = Syscall.rmdir "/tmp/d_ls" in
  (match names with
   | Ok names ->
     require (List.mem "alpha" names && List.mem "beta" names
              && List.length names = 2) 1 ok
   | Error _ -> fail 2)

let t_readdir_of_file_fails =
  let* names = Syscall.readdir "/etc/data" in
  match names with Error Errno.ENOTDIR -> ok | _ -> fail 1

let t_readdir_bin_nonempty =
  let* names = Syscall.readdir "/bin" in
  match names with
  | Ok names -> require (List.length names > 50) 1 ok
  | Error _ -> fail 2

let t_dup2_basic =
  with_new_file "/tmp/f_d2" (fun fd ->
      let* _ = Syscall.write ~fd "second" in
      let* r = Syscall.dup2 ~fd ~tofd:9 in
      require (r = 9) 1
        (let* _ = Syscall.lseek ~fd:9 ~off:0 Message.Seek_set in
         let* c = Syscall.read ~fd:9 ~len:8 in
         let* _ = Syscall.close fd in
         let* _ = Syscall.close 9 in
         let* _ = Syscall.unlink "/tmp/f_d2" in
         match c with Ok "second" -> ok | _ -> fail 2))

let t_dup2_closes_target =
  with_new_file "/tmp/f_d2a" (fun fd_a ->
      let* fd_b = Syscall.open_ "/tmp/f_d2b" Message.creat in
      require_ok fd_b 1
        (let* _ = Syscall.write ~fd:fd_b "bee" in
         let* r = Syscall.dup2 ~fd:fd_a ~tofd:fd_b in
         require (r = fd_b) 2
           (* fd_b now refers to file A; writing through it must land in A *)
           (let* _ = Syscall.write ~fd:fd_b "aaa" in
            let* st = Syscall.stat "/tmp/f_d2b" in
            let* _ = Syscall.close fd_a in
            let* _ = Syscall.close fd_b in
            let* _ = Syscall.unlink "/tmp/f_d2a" in
            let* _ = Syscall.unlink "/tmp/f_d2b" in
            match st with
            | Ok { Message.st_size = 3; _ } -> ok  (* B unchanged after close *)
            | _ -> fail 3)))

let t_dup2_same_fd =
  with_new_file "/tmp/f_d2s" (fun fd ->
      let* r = Syscall.dup2 ~fd ~tofd:fd in
      let* _ = Syscall.close fd in
      let* _ = Syscall.unlink "/tmp/f_d2s" in
      require (r = fd) 1 ok)

let t_indirect_blocks_file =
  (* Cross the direct-block boundary (8 KiB with 1 KiB blocks) and read
     back both sides of it. *)
  with_new_file "/tmp/f_big2" (fun fd ->
      let chunk = String.make 1024 'i' in
      let rec fill n =
        if n = 0 then Prog.return true
        else
          let* w = Syscall.write ~fd chunk in
          if w = 1024 then fill (n - 1) else Prog.return false
      in
      let* okw = fill 20 in  (* 20 KiB: 8 direct + 12 indirect blocks *)
      require okw 1
        (let* st = Syscall.fstat fd in
         match st with
         | Ok { Message.st_size = 20480; _ } ->
           let* _ = Syscall.lseek ~fd ~off:10_000 Message.Seek_set in
           let* r = Syscall.read ~fd ~len:4 in
           let* _ = Syscall.close fd in
           let* _ = Syscall.unlink "/tmp/f_big2" in
           (match r with Ok "iiii" -> ok | _ -> fail 2)
         | _ -> fail 3))

let t_indirect_blocks_freed =
  (* Blocks of a large file must return to the free pool on unlink:
     write/delete twice and confirm the second pass still succeeds. *)
  let pass () =
    let* fd = Syscall.open_ "/tmp/f_bigfree" Message.creat in
    if fd < 0 then Prog.return false
    else
      let chunk = String.make 1024 'f' in
      let rec fill n =
        if n = 0 then Prog.return true
        else
          let* w = Syscall.write ~fd chunk in
          if w = 1024 then fill (n - 1) else Prog.return false
      in
      let* okw = fill 30 in
      let* _ = Syscall.close fd in
      let* _ = Syscall.unlink "/tmp/f_bigfree" in
      Prog.return okw
  in
  let* ok1 = pass () in
  require ok1 1
    (let* ok2 = pass () in
     require ok2 2 ok)

(* ------------------------------------------------------------------ *)
(* Registry of all tests                                               *)
(* ------------------------------------------------------------------ *)

(* Auxiliary programs used by exec-based tests. *)
let aux_programs =
  [ ("/bin/true", fun _ -> Syscall.exit 0);
    ("/bin/false", fun _ -> Syscall.exit 1);
    ("/bin/exitarg", fun arg -> Syscall.exit arg);
    ("/bin/chain",
     fun arg ->
       if arg = 0 then Syscall.exit 0
       else
         let* r = Syscall.exec "/bin/chain" (arg - 1) in
         Syscall.exit (if r < 0 then 9 else 8));
    ("/bin/readfd",
     fun fd ->
       let* r = Syscall.read ~fd ~len:4 in
       Syscall.exit (match r with Ok "mark" -> 0 | _ -> 1)) ]

let tests =
  [ ("fork_basic", t_fork_basic);
    ("fork_status", t_fork_status);
    ("fork_many", t_fork_many);
    ("wait_any", t_wait_any);
    ("wait_blocks", t_wait_blocks);
    ("wait_no_child", t_wait_no_child);
    ("wait_wrong_pid", t_wait_wrong_pid);
    ("zombie_reap", t_zombie_reap);
    ("getpid", t_getpid);
    ("getppid", t_getppid);
    ("fork_pid_differs", t_fork_pid_differs);
    ("kill_child", t_kill_child);
    ("kill_no_target", t_kill_no_target);
    ("exec_child", t_exec_child);
    ("exec_status", t_exec_status);
    ("exec_arg", t_exec_arg);
    ("exec_enoent", t_exec_enoent);
    ("exec_chain", t_exec_chain);
    ("orphan", t_orphan);
    ("creat_write_read", t_creat_write_read);
    ("open_enoent", t_open_enoent);
    ("read_eof", t_read_eof);
    ("lseek_modes", t_lseek_modes);
    ("sparse_read", t_sparse_read);
    ("trunc_on_open", t_trunc_on_open);
    ("append", t_append);
    ("unlink_then_open", t_unlink_then_open);
    ("unlink_enoent", t_unlink_enoent);
    ("stat_file", t_stat_file);
    ("fstat", t_fstat);
    ("close_ebadf", t_close_ebadf);
    ("dup_shares_offset", t_dup_shares_offset);
    ("fd_exhaustion", t_fd_exhaustion);
    ("rename", t_rename);
    ("rename_overwrites", t_rename_overwrites);
    ("big_file", t_big_file);
    ("write_cross_block", t_write_cross_block);
    ("sync", t_sync);
    ("mkdir_rmdir", t_mkdir_rmdir);
    ("mkdir_eexist", t_mkdir_eexist);
    ("rmdir_notempty", t_rmdir_notempty);
    ("nested_dirs", t_nested_dirs);
    ("chdir_relative", t_chdir_relative);
    ("chdir_enotdir", t_chdir_enotdir);
    ("open_dir_fails", t_open_dir_fails);
    ("cwd_inherited", t_cwd_inherited);
    ("pipe_basic", t_pipe_basic);
    ("pipe_eof", t_pipe_eof);
    ("pipe_epipe", t_pipe_epipe);
    ("pipe_blocking_read", t_pipe_blocking_read);
    ("pipe_fill_drain", t_pipe_fill_drain);
    ("pipe_inherited", t_pipe_inherited);
    ("pipe_fstat", t_pipe_fstat);
    ("sbrk_grow", t_sbrk_grow);
    ("sbrk_shrink", t_sbrk_shrink);
    ("sbrk_negative_break", t_sbrk_negative_break);
    ("mmap_munmap", t_mmap_munmap);
    ("munmap_einval", t_munmap_einval);
    ("mmap_zero", t_mmap_zero);
    ("vm_fork_accounting", t_vm_fork_accounting);
    ("brk_inherited", t_brk_inherited);
    ("ds_roundtrip", t_ds_roundtrip);
    ("ds_overwrite", t_ds_overwrite);
    ("ds_missing", t_ds_missing);
    ("ds_delete_missing", t_ds_delete_missing);
    ("ds_bad_key", t_ds_bad_key);
    ("ds_many_keys", t_ds_many_keys);
    ("ds_subscribe_notify", t_ds_subscribe_notify);
    ("rs_status", t_rs_status);
    ("fork_fd_isolation", t_fork_fd_isolation);
    ("exec_keeps_fds", t_exec_keeps_fds);
    ("double_fork", t_double_fork);
    ("fork_file_positions", t_fork_file_positions);
    ("many_procs", t_many_procs);
    ("file_via_ds_name", t_file_via_ds_name);
    ("exec_missing_after_unlink", t_exec_missing_after_unlink);
    ("pipeline_two_stage", t_pipeline_two_stage);
    ("dup_after_close", t_dup_after_close);
    ("rename_into_dir", t_rename_into_dir);
    ("lseek_past_eof_write", t_lseek_past_eof_write);
    ("stat_dir", t_stat_dir);
    ("stat_root", t_stat_root);
    ("chdir_then_unlink_relative", t_chdir_then_unlink_relative);
    ("pipe_write_after_reader_exits", t_pipe_write_after_reader_exits);
    ("exec_preserves_pid", t_exec_preserves_pid);
    ("kill_self", t_kill_self);
    ("brk_reset_on_exec", t_brk_reset_on_exec);
    ("mmap_two_regions", t_mmap_two_regions);
    ("munmap_foreign_region", t_munmap_foreign_region);
    ("ds_capacity_pressure", t_ds_capacity_pressure);
    ("signal_ignore", t_signal_ignore);
    ("signal_prev_disposition", t_signal_prev_disposition);
    ("sigkill_not_ignorable", t_sigkill_not_ignorable);
    ("signal_mask_inherited", t_signal_mask_inherited);
    ("readdir_lists_children", t_readdir_lists_children);
    ("readdir_of_file_fails", t_readdir_of_file_fails);
    ("readdir_bin_nonempty", t_readdir_bin_nonempty);
    ("dup2_basic", t_dup2_basic);
    ("dup2_closes_target", t_dup2_closes_target);
    ("dup2_same_fd", t_dup2_same_fd);
    ("indirect_blocks_file", t_indirect_blocks_file);
    ("indirect_blocks_freed", t_indirect_blocks_freed) ]

let names = List.map fst tests

let register reg =
  List.iter (fun (path, f) -> Registry.register reg path f) aux_programs;
  List.iter
    (fun (name, prog) -> Registry.register reg ("/bin/t_" ^ name) (fun _ -> prog))
    tests

let driver =
  let rec run = function
    | [] ->
      let* () = Syscall.print "SUITE_DONE" in
      Syscall.exit 0
    | (name, _) :: rest ->
      let* pid = Syscall.fork in
      if pid = 0 then
        let* r = Syscall.exec ("/bin/t_" ^ name) 0 in
        Syscall.exit (if r < 0 then 120 else 121)
      else if pid < 0 then
        let* () = Syscall.print (Printf.sprintf "RESULT %s %d" name 125) in
        run rest
      else
        let* _, status = Syscall.waitpid pid in
        let* () = Syscall.print (Printf.sprintf "RESULT %s %d" name status) in
        run rest
  in
  run tests

type results = {
  passed : int;
  failed : int;
  complete : bool;
  failures : (string * int) list;
}

let parse_results lines =
  let passed = ref 0 and failed = ref 0 and complete = ref false in
  let failures = ref [] in
  List.iter
    (fun line ->
       if line = "SUITE_DONE" then complete := true
       else
         match String.split_on_char ' ' line with
         | [ "RESULT"; name; status ] ->
           (match int_of_string_opt status with
            | Some 0 -> incr passed
            | Some s ->
              incr failed;
              failures := (name, s) :: !failures
            | None -> ())
         | _ -> ())
    lines;
  { passed = !passed; failed = !failed; complete = !complete;
    failures = List.rev !failures }
