lib/workload/registry.mli: Prog
