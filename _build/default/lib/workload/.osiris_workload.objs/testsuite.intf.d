lib/workload/testsuite.mli: Prog Registry
