lib/workload/syscall.ml: Endpoint Errno Message Prog
