lib/workload/unixbench.mli: Prog Registry
