lib/workload/workgen.ml: Char Errno List Message Osiris_util Printf Prog String Syscall
