lib/workload/workgen.mli: Prog
