lib/workload/testsuite.ml: Errno List Message Mfs Printf Prog Registry String Syscall Vfs Vm
