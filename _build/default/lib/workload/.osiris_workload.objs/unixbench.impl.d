lib/workload/unixbench.ml: Errno List Message Printf Prog Registry String Syscall
