lib/workload/registry.ml: Hashtbl List Prog
