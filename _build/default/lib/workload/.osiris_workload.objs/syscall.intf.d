lib/workload/syscall.mli: Errno Message Prog
