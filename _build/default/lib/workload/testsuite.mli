(** The prototype test suite (paper Section VI): a set of user programs
    written to maximize handler coverage in the five core servers. It
    doubles as the workload for the recovery-coverage measurement
    (Table I) and the fault-injection campaigns (Tables II/III).

    Each test runs as a fork+exec'd child of the suite driver and
    reports through its exit status (0 = pass). The driver prints
    ["RESULT <name> <status>"] lines and finally ["SUITE_DONE"] on the
    kernel log sink; {!parse_results} decodes them. *)

val tests : (string * unit Prog.t) list
(** All tests, in execution order. Each program terminates via exit. *)

val names : string list

val register : Registry.t -> unit
(** Register each test under ["/bin/t_<name>"]. *)

val driver : unit Prog.t
(** The suite driver, to be run as the workload root: forks and execs
    every test, waits for it, reports, and exits 0. *)

type results = {
  passed : int;
  failed : int;
  complete : bool;  (** SUITE_DONE seen. *)
  failures : (string * int) list;
}

val parse_results : string list -> results
(** Decode the log lines produced by {!driver}. *)
