type t = (string, int -> unit Prog.t) Hashtbl.t

let create () = Hashtbl.create 64

let register t path f = Hashtbl.replace t path f

let lookup t path = Hashtbl.find_opt t path

let paths t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])
