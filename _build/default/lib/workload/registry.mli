(** Executable registry: the simulation's "/bin".

    exec() resolves program paths against this registry (the kernel's
    [lookup_program]); the boot protocol also creates a file in MFS for
    every registered path so VFS path validation during exec behaves
    like the real thing. *)

type t

val create : unit -> t

val register : t -> string -> (int -> unit Prog.t) -> unit
(** Bind an absolute path to a program factory (the int is the argv
    analogue). Re-registering a path replaces the binding. *)

val lookup : t -> string -> (int -> unit Prog.t) option

val paths : t -> string list
(** All registered paths, sorted (deterministic boot order). *)
