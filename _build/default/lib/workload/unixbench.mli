(** Re-implementation of the twelve Unixbench workloads used in the
    paper's evaluation (Tables IV and V, Figure 3), as programs for the
    simulated OS.

    Each benchmark provides a driver program to be run as the workload
    root; the experiment harness measures the virtual time the driver
    consumes and reports iterations per simulated second. Iteration
    counts are scaled to keep simulation times practical; scores are
    only meaningful as ratios between configurations, which is how the
    paper's tables use them. *)

type bench = {
  b_name : string;
  b_iters : int;
  b_driver : unit Prog.t;
  b_uses_pm : bool;
      (** Heavy PM dependence — the property Figure 3 keys on. *)
}

val all : bench list
(** In the paper's row order: dhry2reg, whetstone-double, execl, fstime,
    fsbuffer, fsdisk, pipe, context1, spawn, syscall, shell1, shell8. *)

val find : string -> bench option

val register : Registry.t -> unit
(** Register helper binaries (the execl self-chain, the mini shell and
    its utilities). *)
