open Prog.Syntax

type bench = {
  b_name : string;
  b_iters : int;
  b_driver : unit Prog.t;
  b_uses_pm : bool;
}

(* E_CRASH resilience: an [E_CRASH] result means the serving component
   crashed inside an open recovery window and was rolled back — by
   construction no state changed, so retrying is safe (this is the
   at-most-once property the windows buy). The drivers retry so the
   service-disruption experiment (Figure 3) can run benchmarks to
   completion under a sustained fault load. *)
let e_crash = Errno.to_code Errno.E_CRASH

let retry_crash prog =
  let rec go n =
    let* r = prog in
    if r = e_crash && n > 0 then go (n - 1) else Prog.return r
  in
  go 64

let fork_r = retry_crash Syscall.fork

let waitpid_r pid =
  let rec go n =
    let* p, status = Syscall.waitpid pid in
    if p = e_crash && n > 0 then go (n - 1) else Prog.return (p, status)
  in
  go 64

let exec_r path arg =
  let rec go n =
    let* r = Syscall.exec path arg in
    if r = e_crash && n > 0 then go (n - 1) else Prog.return r
  in
  go 64

(* ------------------------------------------------------------------ *)
(* Helper binaries                                                     *)
(* ------------------------------------------------------------------ *)

(* The execl benchmark program: exec itself until the counter runs out
   (this is exactly how Unixbench's execl test works). *)
let execl_loop arg =
  if arg <= 0 then Syscall.exit 0
  else
    let* r = exec_r "/bin/execl_loop" (arg - 1) in
    Syscall.exit (if r < 0 then 9 else 8)

(* Shell utilities: small read-compute-write programs standing in for
   the sort/grep/wc invocations of the Unixbench shell scripts. *)
let util_sortish _ =
  let* fd = Syscall.open_ "/etc/data" Message.rdonly in
  if fd < 0 then Syscall.exit 1
  else
    let* r = Syscall.read ~fd ~len:1024 in
    let* _ = Syscall.close fd in
    match r with
    | Error _ -> Syscall.exit 2
    | Ok data ->
      let* () = Prog.compute (String.length data * 8) in
      let* pid = Syscall.getpid in
      let path = Printf.sprintf "/tmp/sort.%d" pid in
      let* ofd = Syscall.open_ path Message.creat in
      if ofd < 0 then Syscall.exit 3
      else
        let* _ = Syscall.write ~fd:ofd data in
        let* _ = Syscall.close ofd in
        let* _ = Syscall.unlink path in
        Syscall.exit 0

let util_grepish _ =
  let* fd = Syscall.open_ "/etc/data" Message.rdonly in
  if fd < 0 then Syscall.exit 1
  else
    let* r = Syscall.read ~fd ~len:1024 in
    let* _ = Syscall.close fd in
    match r with
    | Error _ -> Syscall.exit 2
    | Ok data ->
      let* () = Prog.compute (String.length data * 4) in
      Syscall.exit 0

let util_wcish _ =
  let* fd = Syscall.open_ "/etc/data" Message.rdonly in
  if fd < 0 then Syscall.exit 1
  else
    let* r = Syscall.read ~fd ~len:1024 in
    let* _ = Syscall.close fd in
    match r with
    | Error _ -> Syscall.exit 2
    | Ok data ->
      let* () = Prog.compute (String.length data * 2) in
      Syscall.exit 0

(* The mini shell: runs the three utilities sequentially. *)
let shell _ =
  let run_util path =
    let* pid = fork_r in
    if pid = 0 then
      let* _ = exec_r path 0 in
      Syscall.exit 9
    else if pid < 0 then Prog.return (-1)
    else
      let* _, status = waitpid_r pid in
      Prog.return status
  in
  let* s1 = run_util "/bin/sortish" in
  let* s2 = run_util "/bin/grepish" in
  let* s3 = run_util "/bin/wcish" in
  Syscall.exit (if s1 = 0 && s2 = 0 && s3 = 0 then 0 else 1)

let register_helpers reg =
  Registry.register reg "/bin/execl_loop" execl_loop;
  Registry.register reg "/bin/sortish" util_sortish;
  Registry.register reg "/bin/grepish" util_grepish;
  Registry.register reg "/bin/wcish" util_wcish;
  Registry.register reg "/bin/sh" shell

(* ------------------------------------------------------------------ *)
(* Drivers                                                             *)
(* ------------------------------------------------------------------ *)

let dhry_iters = 3000

let dhry2reg =
  (* Pure integer compute, no syscalls: register-pressure dhrystone. *)
  let* () = Prog.repeat dhry_iters (Prog.compute 1000) in
  Syscall.exit 0

let whet_iters = 800

let whetstone =
  let* () = Prog.repeat whet_iters (Prog.compute 5000) in
  Syscall.exit 0

let execl_iters = 50

let execl_driver =
  let* pid = fork_r in
  if pid = 0 then
    let* _ = exec_r "/bin/execl_loop" execl_iters in
    Syscall.exit 9
  else
    let* _, status = waitpid_r pid in
    Syscall.exit status

(* File workload shared shape: write a file in [chunk]-sized pieces,
   read it back, unlink. *)
let file_pass ~path ~chunk ~total =
  let data = String.make chunk 'u' in
  let* fd = Syscall.open_ path Message.creat in
  if fd < 0 then Prog.return false
  else
    let rec wr n =
      if n <= 0 then Prog.return true
      else
        let* w = Syscall.write ~fd data in
        if w = chunk then wr (n - chunk) else Prog.return false
    in
    let* okw = wr total in
    if not okw then Prog.return false
    else
      let* _ = Syscall.lseek ~fd ~off:0 Message.Seek_set in
      let rec rd n =
        if n <= 0 then Prog.return true
        else
          let* r = Syscall.read ~fd ~len:chunk in
          match r with
          | Ok s when String.length s = chunk -> rd (n - chunk)
          | _ -> Prog.return false
      in
      let* okr = rd total in
      let* _ = Syscall.close fd in
      let* _ = Syscall.unlink path in
      Prog.return (okw && okr)

let fstime_iters = 15

let fstime =
  let rec go n =
    if n = 0 then Syscall.exit 0
    else
      let* ok = file_pass ~path:"/tmp/ub_fstime" ~chunk:1024 ~total:8192 in
      if ok then go (n - 1) else Syscall.exit 1
  in
  go fstime_iters

let fsbuffer_iters = 15

let fsbuffer =
  (* Small buffers: many more VFS/MFS crossings per byte. *)
  let rec go n =
    if n = 0 then Syscall.exit 0
    else
      let* ok = file_pass ~path:"/tmp/ub_fsbuf" ~chunk:256 ~total:4096 in
      if ok then go (n - 1) else Syscall.exit 1
  in
  go fsbuffer_iters

let fsdisk_iters = 8

let fsdisk =
  let rec files k =
    if k = 0 then Prog.return true
    else
      let* ok =
        file_pass ~path:(Printf.sprintf "/tmp/ub_fsd%d" k) ~chunk:1024
          ~total:4096
      in
      if ok then files (k - 1) else Prog.return false
  in
  let rec go n =
    if n = 0 then Syscall.exit 0
    else
      let* ok = files 4 in
      if ok then go (n - 1) else Syscall.exit 1
  in
  go fsdisk_iters

let pipe_iters = 400

let pipe_driver =
  let* p = Syscall.pipe in
  match p with
  | Error _ -> Syscall.exit 1
  | Ok (rfd, wfd) ->
    let payload = String.make 512 'p' in
    let rec go n =
      if n = 0 then Syscall.exit 0
      else
        let* w = Syscall.write ~fd:wfd payload in
        if w <> 512 then Syscall.exit 2
        else
          let* r = Syscall.read ~fd:rfd ~len:512 in
          match r with
          | Ok s when String.length s = 512 -> go (n - 1)
          | _ -> Syscall.exit 3
    in
    go pipe_iters

let context1_iters = 150

let context1 =
  (* Two processes bouncing a token through two pipes. *)
  let* p1 = Syscall.pipe in
  let* p2 = Syscall.pipe in
  match p1, p2 with
  | Ok (r1, w1), Ok (r2, w2) ->
    let* pid = Syscall.fork in
    if pid = 0 then
      let rec child n =
        if n = 0 then Syscall.exit 0
        else
          let* r = Syscall.read ~fd:r1 ~len:8 in
          match r with
          | Ok "token---" ->
            let* _ = Syscall.write ~fd:w2 "token---" in
            child (n - 1)
          | _ -> Syscall.exit 1
      in
      child context1_iters
    else
      let rec parent n =
        if n = 0 then
          let* _, status = Syscall.waitpid pid in
          Syscall.exit status
        else
          let* _ = Syscall.write ~fd:w1 "token---" in
          let* r = Syscall.read ~fd:r2 ~len:8 in
          match r with
          | Ok "token---" -> parent (n - 1)
          | _ -> Syscall.exit 2
      in
      parent context1_iters
  | _ -> Syscall.exit 3

let spawn_iters = 80

let spawn_driver =
  let rec go n =
    if n = 0 then Syscall.exit 0
    else
      let* pid = fork_r in
      if pid = 0 then Syscall.exit 0
      else if pid < 0 then Syscall.exit 1
      else
        let* _, status = waitpid_r pid in
        if status = 0 then go (n - 1) else Syscall.exit 2
  in
  go spawn_iters

let syscall_iters = 800

let syscall_driver =
  let rec go n =
    if n = 0 then Syscall.exit 0
    else
      let* pid = retry_crash Syscall.getpid in
      if pid >= 0 then go (n - 1) else Syscall.exit 1
  in
  go syscall_iters

let run_shells ~concurrent =
  let rec spawn k acc =
    if k = 0 then Prog.return acc
    else
      let* pid = fork_r in
      if pid = 0 then
        let* _ = exec_r "/bin/sh" 0 in
        Syscall.exit 9
      else if pid < 0 then Prog.return acc
      else spawn (k - 1) (pid :: acc)
  in
  let* pids = spawn concurrent [] in
  let rec reap ok = function
    | [] -> Prog.return ok
    | pid :: rest ->
      let* _, status = waitpid_r pid in
      reap (ok && status = 0) rest
  in
  reap (List.length pids = concurrent) pids

let shell1_iters = 8

let shell1 =
  let rec go n =
    if n = 0 then Syscall.exit 0
    else
      let* ok = run_shells ~concurrent:1 in
      if ok then go (n - 1) else Syscall.exit 1
  in
  go shell1_iters

let shell8_iters = 3

let shell8 =
  let rec go n =
    if n = 0 then Syscall.exit 0
    else
      let* ok = run_shells ~concurrent:8 in
      if ok then go (n - 1) else Syscall.exit 1
  in
  go shell8_iters

let all =
  [ { b_name = "dhry2reg"; b_iters = dhry_iters; b_driver = dhry2reg;
      b_uses_pm = false };
    { b_name = "whetstone-double"; b_iters = whet_iters; b_driver = whetstone;
      b_uses_pm = false };
    { b_name = "execl"; b_iters = execl_iters; b_driver = execl_driver;
      b_uses_pm = true };
    { b_name = "fstime"; b_iters = fstime_iters; b_driver = fstime;
      b_uses_pm = false };
    { b_name = "fsbuffer"; b_iters = fsbuffer_iters; b_driver = fsbuffer;
      b_uses_pm = false };
    { b_name = "fsdisk"; b_iters = fsdisk_iters; b_driver = fsdisk;
      b_uses_pm = false };
    { b_name = "pipe"; b_iters = pipe_iters; b_driver = pipe_driver;
      b_uses_pm = false };
    { b_name = "context1"; b_iters = context1_iters; b_driver = context1;
      b_uses_pm = false };
    { b_name = "spawn"; b_iters = spawn_iters; b_driver = spawn_driver;
      b_uses_pm = true };
    { b_name = "syscall"; b_iters = syscall_iters; b_driver = syscall_driver;
      b_uses_pm = true };
    { b_name = "shell1"; b_iters = shell1_iters; b_driver = shell1;
      b_uses_pm = true };
    { b_name = "shell8"; b_iters = shell8_iters; b_driver = shell8;
      b_uses_pm = true } ]

let find name = List.find_opt (fun b -> b.b_name = name) all

let register reg =
  register_helpers reg;
  (* Each driver is also an executable, so composite workloads (e.g.
     the Table VI memory run) can fork+exec whole benchmarks. *)
  List.iter
    (fun b -> Registry.register reg ("/bin/ub_" ^ b.b_name) (fun _ -> b.b_driver))
    all
