(** Small statistics helpers used by the benchmark harness and the
    evaluation drivers. *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0. on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0. on lists shorter than 2. *)

val median : float list -> float
(** Median (average of middle two for even length); 0. on empty. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0, 100\]], nearest-rank method. *)

val weighted_mean : (float * float) list -> float
(** [weighted_mean \[(v, w); ...\]] = sum(v*w) / sum(w); 0. if the total
    weight is 0. *)

val ratio : float -> float -> float
(** [ratio a b] = a /. b, 0. when [b = 0.]. *)
