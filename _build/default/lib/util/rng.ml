type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 finalizer: Stafford's mix13 variant. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = seed }

let int t n =
  assert (n > 0);
  (* Keep 62 bits so the value is non-negative as an OCaml int. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (* 53 significant bits, scaled to [0, 1). *)
  v /. 9007199254740992.0 *. x

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
