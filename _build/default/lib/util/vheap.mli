(** Binary min-heap keyed by [(int, int)] pairs, used as the kernel's
    run queue ordered by (virtual time, sequence number).

    The secondary key breaks ties deterministically: two processes ready
    at the same virtual instant run in insertion order. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> key:int -> seq:int -> 'a -> unit

val pop : 'a t -> (int * int * 'a) option
(** Remove and return the minimum element as [(key, seq, value)]. *)

val peek_key : 'a t -> int option
(** Key of the minimum element without removing it. *)

val clear : 'a t -> unit
