(** Plain-text table rendering for the benchmark harness, so tables print
    in a layout close to the paper's. *)

type align = Left | Right

val render : ?title:string -> header:string list -> align:align list ->
  string list list -> string
(** [render ~title ~header ~align rows] lays out [rows] under [header]
    with per-column alignment, column widths fitted to content. The
    [align] list is padded with [Left] if shorter than the header. *)

val fixed : int -> float -> string
(** [fixed d x] formats [x] with [d] decimals. *)

val pct : float -> string
(** Format a fraction in [\[0,1\]] as a percentage with one decimal. *)
