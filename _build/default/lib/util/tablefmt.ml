type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ?title ~header ~align rows =
  let cols = List.length header in
  let aligns =
    let rec extend l n = if n <= 0 then [] else
      match l with
      | [] -> Left :: extend [] (n - 1)
      | x :: rest -> x :: extend rest (n - 1)
    in
    Array.of_list (extend align cols)
  in
  let widths = Array.make cols 0 in
  let measure row =
    List.iteri (fun i cell ->
        if i < cols then widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  measure header;
  List.iter measure rows;
  let buf = Buffer.create 256 in
  (match title with
   | Some t ->
     Buffer.add_string buf t;
     Buffer.add_char buf '\n'
   | None -> ());
  let emit_row row =
    List.iteri (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        if i < cols then Buffer.add_string buf (pad aligns.(i) widths.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  let total_width =
    Array.fold_left ( + ) 0 widths + (2 * (cols - 1))
  in
  Buffer.add_string buf (String.make total_width '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let fixed d x = Printf.sprintf "%.*f" d x

let pct x = Printf.sprintf "%.1f%%" (100. *. x)
