(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in the simulator flows through a seeded
    [Rng.t] so that experiments are exactly reproducible. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy continuing from the same state. *)

val split : t -> t
(** Derive a statistically independent child generator, advancing the
    parent. Used to give each subsystem its own stream. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. [n] must be positive. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
