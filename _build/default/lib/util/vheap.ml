type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }

let is_empty t = t.size = 0

let length t = t.size

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow t entry =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let ncap = if capacity = 0 then 16 else capacity * 2 in
    let ndata = Array.make ncap entry in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

let push t ~key ~seq value =
  let entry = { key; seq; value } in
  grow t entry;
  let data = t.data in
  data.(t.size) <- entry;
  t.size <- t.size + 1;
  (* Sift up. *)
  let i = ref (t.size - 1) in
  while !i > 0 && less data.(!i) data.((!i - 1) / 2) do
    let parent = (!i - 1) / 2 in
    let tmp = data.(!i) in
    data.(!i) <- data.(parent);
    data.(parent) <- tmp;
    i := parent
  done

let pop t =
  if t.size = 0 then None
  else begin
    let data = t.data in
    let top = data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      data.(0) <- data.(t.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && less data.(l) data.(!smallest) then smallest := l;
        if r < t.size && less data.(r) data.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = data.(!i) in
          data.(!i) <- data.(!smallest);
          data.(!smallest) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.key, top.seq, top.value)
  end

let peek_key t = if t.size = 0 then None else Some t.data.(0).key

let clear t = t.size <- 0
