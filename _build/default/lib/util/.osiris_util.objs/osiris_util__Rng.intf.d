lib/util/rng.mli:
