lib/util/vheap.mli:
