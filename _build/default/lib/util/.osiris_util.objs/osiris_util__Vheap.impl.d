lib/util/vheap.ml: Array
