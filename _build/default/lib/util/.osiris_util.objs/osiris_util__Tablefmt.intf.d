lib/util/tablefmt.mli:
