lib/util/stats.mli:
