lib/kernel/kernel.mli: Costs Endpoint Memimage Message Policy Prog
