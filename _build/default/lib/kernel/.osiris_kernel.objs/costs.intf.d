lib/kernel/costs.mli:
