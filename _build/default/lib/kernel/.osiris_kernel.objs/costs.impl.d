lib/kernel/costs.ml:
