lib/kernel/kernel.ml: Array Costs Endpoint Errno Filename Hashtbl List Logs Memimage Message Option Osiris_util Policy Printf Prog Queue Seep Undo_log Window
