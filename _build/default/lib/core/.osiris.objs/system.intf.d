lib/core/system.mli: Bdev Endpoint Kernel Mfs Policy Prog Registry Summary Vfs
