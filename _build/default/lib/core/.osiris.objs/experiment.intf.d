lib/core/experiment.mli: Endpoint Kernel Message Policy Unixbench
