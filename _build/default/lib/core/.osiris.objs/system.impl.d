lib/core/system.ml: Bdev Buffer Ds Endpoint Kernel List Mfs Pm Policy Printf Registry Rs Testsuite Unixbench Vfs Vm
