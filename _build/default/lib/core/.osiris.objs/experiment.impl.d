lib/core/experiment.ml: Costs Kernel List Osiris_util Policy Prog Syscall System Testsuite Unixbench
