(** EDFI-style fault models (paper Section VI-B).

    EDFI instruments static program locations with realistic software
    faults. The simulation analogue: a fault site is an executed server
    operation identified by (component, handler, op kind, occurrence);
    a profiling run enumerates the sites the workload triggers, and a
    campaign arms one site per run.

    Two models, as in the paper:
    - {!Fail_stop}: the NULL-dereference analogue — the component
      crashes at the site.
    - {!Full_edfi}: the full realistic mix, including fail-silent
      corruption that violates the fail-stop assumption (expect more
      uncontrolled crashes, as in Table III). *)

type model = Fail_stop | Full_edfi

val model_name : model -> string

val action_for : model -> Kernel.site -> Kernel.fault_action
(** Deterministic fault choice for a site: hashing the site selects
    among the fault types applicable to its operation kind (stores can
    be corrupted or dropped; messages corrupted; any op can crash, hang
    or abort the handler). *)
