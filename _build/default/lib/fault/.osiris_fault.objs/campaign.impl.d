lib/fault/campaign.ml: Array Edfi Hashtbl Kernel List Option Osiris_util Policy System Testsuite
