lib/fault/edfi.mli: Kernel
