lib/fault/disruption.ml: Costs Endpoint Kernel List Policy System Unixbench
