lib/fault/disruption.mli: Unixbench
