lib/fault/edfi.ml: Hashtbl Kernel List
