lib/fault/campaign.mli: Edfi Kernel Policy
