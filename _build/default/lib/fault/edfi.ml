type model = Fail_stop | Full_edfi

let model_name = function
  | Fail_stop -> "fail-stop"
  | Full_edfi -> "full-edfi"

let site_hash (s : Kernel.site) =
  let h = Hashtbl.hash (Kernel.site_to_string s) in
  h land 0x3FFFFFFF

(* The full-EDFI mix, weighted towards the common C fault patterns:
   crashes (bad pointer / assertion), corrupted or missing stores
   (wrong value / missing assignment), corrupted call parameters, and
   control-flow faults (early return, infinite loop). *)
let action_for model site =
  match model with
  | Fail_stop -> Kernel.F_crash "injected null dereference"
  | Full_edfi ->
    let h = site_hash site in
    let applicable =
      (* Roughly a third of triggered realistic faults do not manifest
         (wrong values that are dead or masked); the rest split between
         fail-stop-like crashes and fail-silent corruption. *)
      match site.Kernel.site_kind with
      | Kernel.Op_store ->
        [ Kernel.F_crash "injected fault"; Kernel.F_corrupt_store;
          Kernel.F_drop_store; Kernel.F_corrupt_store; Kernel.F_skip_handler;
          Kernel.F_benign; Kernel.F_benign; Kernel.F_benign ]
      | Kernel.Op_send | Kernel.Op_call | Kernel.Op_reply ->
        [ Kernel.F_crash "injected fault"; Kernel.F_corrupt_msg;
          Kernel.F_corrupt_msg; Kernel.F_skip_handler; Kernel.F_hang;
          Kernel.F_benign; Kernel.F_benign ]
      | _ ->
        [ Kernel.F_crash "injected fault"; Kernel.F_skip_handler;
          Kernel.F_crash "injected fault"; Kernel.F_hang;
          Kernel.F_benign; Kernel.F_benign ]
    in
    List.nth applicable (h mod List.length applicable)
