(* Tests for the static recovery-window analysis, including agreement
   checks between static predictions and dynamically measured coverage. *)

let fc = Alcotest.(check (float 1e-9))

let mk_handler segs = Summary.handler Message.Tag.T_fork segs

(* ---------------- crafted handlers -------------------------------- *)

let test_no_interaction_full_coverage () =
  let h = mk_handler [ Summary.seg 10 ] in
  let r = Static_window.handler_coverage Policy.enhanced h in
  fc "full" 1.0 r.Static_window.hr_coverage;
  Alcotest.(check bool) "window survives to reply" true
    (r.Static_window.hr_closes_at = None)

let test_sm_interaction_closes () =
  let h =
    mk_handler
      [ Summary.seg ~out:(Endpoint.vm, Message.Tag.T_vm_fork) 6;
        Summary.seg 4 ]
  in
  let r = Static_window.handler_coverage Policy.enhanced h in
  fc "60% in window" 0.6 r.Static_window.hr_coverage;
  Alcotest.(check bool) "closes at vm_fork" true
    (r.Static_window.hr_closes_at = Some Message.Tag.T_vm_fork)

let test_ro_interaction_policy_split () =
  let h =
    mk_handler
      [ Summary.seg ~out:(Endpoint.kernel, Message.Tag.T_diag) 3;
        Summary.seg 7 ]
  in
  let enh = Static_window.handler_coverage Policy.enhanced h in
  let pess = Static_window.handler_coverage Policy.pessimistic h in
  fc "enhanced keeps window" 1.0 enh.Static_window.hr_coverage;
  fc "pessimistic closes at diag" 0.3 pess.Static_window.hr_coverage

let test_conservative_on_maybe () =
  (* A conditional state-modifying interaction must still close the
     window in the analysis. *)
  let h =
    mk_handler
      [ Summary.seg ~out:(Endpoint.vm, Message.Tag.T_vm_fork) ~maybe:true 5;
        Summary.seg 5 ]
  in
  let r = Static_window.handler_coverage Policy.enhanced h in
  fc "conservatively closed" 0.5 r.Static_window.hr_coverage

let test_stateless_policy_no_window () =
  let h = mk_handler [ Summary.seg 10 ] in
  let r = Static_window.handler_coverage Policy.stateless h in
  fc "no window at all" 0.0 r.Static_window.hr_coverage

let test_multithreaded_closes_on_any_call () =
  let h =
    mk_handler
      [ Summary.seg ~out:(Endpoint.mfs, Message.Tag.T_mfs_lookup) 4;
        Summary.seg 6 ]
  in
  let single = Static_window.handler_coverage Policy.enhanced h in
  let multi =
    Static_window.handler_coverage ~multithreaded:true Policy.enhanced h
  in
  fc "single-threaded keeps RO call open" 1.0 single.Static_window.hr_coverage;
  fc "thread switch closes it" 0.4 multi.Static_window.hr_coverage

let test_kernel_sink_not_a_thread_switch () =
  (* Diagnostics to the kernel sink are asynchronous and do not park the
     thread even in a multithreaded server. *)
  let h =
    mk_handler [ Summary.seg ~out:(Endpoint.kernel, Message.Tag.T_diag) 5;
                 Summary.seg 5 ]
  in
  let multi =
    Static_window.handler_coverage ~multithreaded:true Policy.enhanced h
  in
  fc "diag keeps window" 1.0 multi.Static_window.hr_coverage

(* ---------------- server-level ------------------------------------ *)

let test_server_coverage_weighted () =
  let s =
    Summary.make Endpoint.ds
      [ Summary.handler Message.Tag.T_ds_retrieve [ Summary.seg 30 ];
        Summary.handler Message.Tag.T_ds_publish
          [ Summary.seg ~out:(Endpoint.kernel, Message.Tag.T_diag) 1;
            Summary.seg 9 ] ]
  in
  let r = Static_window.server_coverage Policy.pessimistic s in
  (* retrieve: 30 weight at 100%; publish: 10 weight at 10%. *)
  fc "weighted" ((30. +. 1.) /. 40.) r.Static_window.sr_coverage

let test_frequency_weighting () =
  let s =
    Summary.make Endpoint.ds
      [ Summary.handler Message.Tag.T_ds_retrieve [ Summary.seg 10 ];
        Summary.handler Message.Tag.T_ds_publish
          [ Summary.seg ~out:(Endpoint.first_user, Message.Tag.T_ds_notify) 1;
            Summary.seg 9 ] ]
  in
  let hot_retrieve =
    Static_window.server_coverage
      ~frequency:(fun tag -> if tag = Message.Tag.T_ds_retrieve then 9. else 1.)
      Policy.enhanced s
  in
  let hot_publish =
    Static_window.server_coverage
      ~frequency:(fun tag -> if tag = Message.Tag.T_ds_publish then 9. else 1.)
      Policy.enhanced s
  in
  Alcotest.(check bool) "frequency shifts coverage" true
    (hot_retrieve.Static_window.sr_coverage
     > hot_publish.Static_window.sr_coverage)

(* ---------------- properties --------------------------------------- *)

let arb_summary =
  let seg_gen =
    QCheck.Gen.(
      let* w = int_range 1 20 in
      let* kind = int_range 0 3 in
      return
        (match kind with
         | 0 -> Summary.seg w
         | 1 -> Summary.seg ~out:(Endpoint.kernel, Message.Tag.T_diag) w
         | 2 -> Summary.seg ~out:(Endpoint.vm, Message.Tag.T_vm_fork) w
         | _ -> Summary.seg ~out:(Endpoint.mfs, Message.Tag.T_mfs_lookup) w))
  in
  let handler_gen =
    QCheck.Gen.(
      let* segs = list_size (int_range 1 6) seg_gen in
      return (Summary.handler Message.Tag.T_open segs))
  in
  QCheck.make
    ~print:(fun h -> Printf.sprintf "<handler with %d segments>"
               (List.length h.Summary.h_segments))
    handler_gen

let prop_enhanced_geq_pessimistic =
  QCheck.Test.make
    ~name:"enhanced coverage >= pessimistic coverage (any handler)"
    ~count:300 arb_summary
    (fun h ->
       let e = Static_window.handler_coverage Policy.enhanced h in
       let p = Static_window.handler_coverage Policy.pessimistic h in
       e.Static_window.hr_coverage >= p.Static_window.hr_coverage -. 1e-9)

let prop_coverage_bounded =
  QCheck.Test.make ~name:"coverage within [0,1]" ~count:300 arb_summary
    (fun h ->
       let r = Static_window.handler_coverage Policy.enhanced h in
       r.Static_window.hr_coverage >= 0. && r.Static_window.hr_coverage <= 1.)

let prop_multithreaded_leq_single =
  QCheck.Test.make
    ~name:"multithreaded coverage <= single-threaded coverage" ~count:300
    arb_summary
    (fun h ->
       let s = Static_window.handler_coverage Policy.enhanced h in
       let m =
         Static_window.handler_coverage ~multithreaded:true Policy.enhanced h
       in
       m.Static_window.hr_coverage <= s.Static_window.hr_coverage +. 1e-9)

(* ---------------- static vs dynamic agreement --------------------- *)

let test_static_matches_dynamic_ordering () =
  (* The static analysis on the real summaries must reproduce the
     policy-sensitivity facts measured dynamically: DS gains most from
     the enhanced policy, VFS and VM are policy-invariant. *)
  let s_pess = Static_window.report Policy.pessimistic System.summaries in
  let s_enh = Static_window.report Policy.enhanced System.summaries in
  let get reports ep =
    (List.find (fun r -> r.Static_window.sr_ep = ep) reports)
      .Static_window.sr_coverage
  in
  let gain ep = get s_enh ep -. get s_pess ep in
  Alcotest.(check bool) "DS gains most" true
    (List.for_all (fun ep -> gain Endpoint.ds >= gain ep) System.core_servers);
  fc "VFS policy-invariant" 0. (gain Endpoint.vfs);
  fc "VM policy-invariant" 0. (gain Endpoint.vm)

let test_static_tracks_dynamic_ds_split () =
  let pess_dyn, _ = Experiment.coverage_run Policy.pessimistic in
  let enh_dyn, _ = Experiment.coverage_run Policy.enhanced in
  let dyn rows name =
    (List.find (fun r -> r.Experiment.cov_server = name) rows)
      .Experiment.cov_fraction
  in
  (* Dynamic DS coverage must split across policies in the direction the
     static analysis predicts. *)
  Alcotest.(check bool) "ds: enhanced >> pessimistic (dynamic)" true
    (dyn enh_dyn "ds" -. dyn pess_dyn "ds" > 0.3);
  Alcotest.(check bool) "vfs: policy-invariant (dynamic)" true
    (abs_float (dyn enh_dyn "vfs" -. dyn pess_dyn "vfs") < 0.02)

let () =
  Alcotest.run "osiris_analysis"
    [ ( "handlers",
        [ Alcotest.test_case "no interaction" `Quick test_no_interaction_full_coverage;
          Alcotest.test_case "sm closes" `Quick test_sm_interaction_closes;
          Alcotest.test_case "ro policy split" `Quick test_ro_interaction_policy_split;
          Alcotest.test_case "conservative maybe" `Quick test_conservative_on_maybe;
          Alcotest.test_case "stateless no window" `Quick
            test_stateless_policy_no_window;
          Alcotest.test_case "multithreaded closes" `Quick
            test_multithreaded_closes_on_any_call;
          Alcotest.test_case "kernel sink async" `Quick
            test_kernel_sink_not_a_thread_switch ] );
      ( "servers",
        [ Alcotest.test_case "weighted" `Quick test_server_coverage_weighted;
          Alcotest.test_case "frequency" `Quick test_frequency_weighting ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_enhanced_geq_pessimistic;
          QCheck_alcotest.to_alcotest prop_coverage_bounded;
          QCheck_alcotest.to_alcotest prop_multithreaded_leq_single ] );
      ( "agreement",
        [ Alcotest.test_case "static ordering" `Quick
            test_static_matches_dynamic_ordering;
          Alcotest.test_case "dynamic ds split" `Quick
            test_static_tracks_dynamic_ds_split ] ) ]
