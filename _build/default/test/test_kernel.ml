(* Direct kernel tests with miniature hand-built servers: IPC semantics,
   window bookkeeping, crash/recovery primitives, alarms and hang
   detection — independent of the full OS personality. *)

open Prog.Syntax

(* A stub PM: just enough for process destruction, so user programs can
   exit. Lives at the real PM endpoint because the kernel routes
   implicit exits there. *)
let pm_stub () : Kernel.server =
  let image = Memimage.create ~name:"pm-stub" ~size:4096 in
  let handle src msg =
    match msg with
    | Message.Exit { status } ->
      let* _ = Prog.kcall (Prog.K_kill { proc = src; status }) in
      Prog.return ()
    | Message.Getpid -> Prog.reply src (Message.R_ok src)
    | _ -> Srvlib.reply_err src Errno.ENOSYS
  in
  { Kernel.srv_ep = Endpoint.pm;
    srv_name = "pm-stub";
    srv_image = image;
    srv_clone_extra_kb = 0;
    srv_init = Prog.return ();
    srv_loop = Srvlib.simple_loop handle;
    srv_multithreaded = false }

(* An echo/crash-on-demand server at the DS endpoint. *)
let echo_server () : Kernel.server =
  let image = Memimage.create ~name:"echo" ~size:4096 in
  let cell = Layout.Cell.alloc_int image "stored" in
  let handle src msg =
    match msg with
    | Message.Ds_retrieve { key } ->
      Prog.reply src (Message.R_ds_value { value = String.length key })
    | Message.Ds_publish { key = "crash"; _ } ->
      (* In-window fail-stop: no outbound message has been sent. *)
      let* () = Prog.Mem.set_cell cell 666 in
      Prog.fail "requested crash"
    | Message.Ds_publish { key = "smash"; _ } ->
      (* Close the window with a state-modifying send, then crash:
         recovery is provably unsafe. *)
      let* () = Prog.send Endpoint.pm (Message.Ds_notify { key = "x" }) in
      Prog.fail "requested out-of-window crash"
    | Message.Ds_publish { key = "diag-then-reply"; _ } ->
      let* () = Srvlib.diag "echo: read-only seep" in
      Srvlib.reply_ok src 0
    | Message.Ds_publish { value; _ } ->
      let* () = Prog.Mem.set_cell cell value in
      Srvlib.reply_ok src 0
    | Message.Ds_delete _ ->
      let* v = Prog.Mem.get_cell cell in
      Prog.reply src (Message.R_ds_value { value = v })
    | Message.Alarm -> Srvlib.diag "echo: alarm fired"
    | Message.Ping -> Prog.reply src Message.R_pong
    | _ -> Srvlib.reply_err src Errno.ENOSYS
  in
  { Kernel.srv_ep = Endpoint.ds;
    srv_name = "echo";
    srv_image = image;
    srv_clone_extra_kb = 0;
    srv_init = Prog.Mem.set_cell cell 0;
    srv_loop = Srvlib.simple_loop handle;
    srv_multithreaded = false }

(* Build, boot, run a user program; RS is the real Recovery Server. *)
let mini ?(policy = Policy.enhanced) ?fault_hook user_prog =
  let log = ref [] in
  let base =
    Kernel.default_config policy ~lookup_program:(fun _ -> None) ()
  in
  let cfg =
    { base with Kernel.log_sink = Some (fun l -> log := l :: !log) }
  in
  let kernel = Kernel.create cfg in
  Kernel.add_server kernel (pm_stub ());
  Kernel.add_server kernel (echo_server ());
  Kernel.add_server kernel (Rs.server (Rs.create policy));
  Kernel.boot kernel;
  (match fault_hook with
   | Some h -> Kernel.set_fault_hook kernel (Some h)
   | None -> ());
  let ep = Kernel.spawn_user kernel ~name:"u" ~prog:user_prog ~parent:0 in
  Kernel.set_halt_on_exit kernel ep;
  let halt = Kernel.run kernel in
  (kernel, halt, List.rev !log)

let halt_t = Alcotest.testable (Fmt.of_to_string Kernel.halt_to_string) ( = )

(* ---------------- IPC --------------------------------------------- *)

let test_echo_roundtrip () =
  let prog =
    let* r = Prog.call Endpoint.ds (Message.Ds_retrieve { key = "four" }) in
    match r with
    | Message.R_ds_value { value } -> Syscall.exit value
    | _ -> Syscall.exit 99
  in
  let _, halt, _ = mini prog in
  Alcotest.check halt_t "exit with echoed length" (Kernel.H_completed 4) halt

let test_multiple_requests_fifo () =
  let prog =
    let* _ = Prog.call Endpoint.ds (Message.Ds_publish { key = "k"; value = 41 }) in
    let* r = Prog.call Endpoint.ds (Message.Ds_delete { key = "k" }) in
    match r with
    | Message.R_ds_value { value } -> Syscall.exit value
    | _ -> Syscall.exit 99
  in
  let _, halt, _ = mini prog in
  Alcotest.check halt_t "stored then read" (Kernel.H_completed 41) halt

let test_unknown_request_enosys () =
  let prog =
    let* r = Prog.call Endpoint.ds Message.Rs_status in
    match r with
    | Message.R_err Errno.ENOSYS -> Syscall.exit 0
    | _ -> Syscall.exit 1
  in
  let _, halt, _ = mini prog in
  Alcotest.check halt_t "ENOSYS" (Kernel.H_completed 0) halt

let test_implicit_exit () =
  (* A user program that just returns gets an implicit exit(0). *)
  let _, halt, _ = mini (Prog.return ()) in
  Alcotest.check halt_t "implicit exit" (Kernel.H_completed 0) halt

let test_user_fail_becomes_255 () =
  let _, halt, _ = mini (Prog.fail "user bug") in
  Alcotest.check halt_t "abnormal exit" (Kernel.H_completed 255) halt

let test_diag_reaches_sink () =
  let prog =
    let* _ = Prog.call Endpoint.ds (Message.Ds_publish { key = "diag-then-reply"; value = 0 }) in
    Syscall.exit 0
  in
  let _, _, log = mini prog in
  Alcotest.(check bool) "diag line present" true
    (List.mem "echo: read-only seep" log)

(* ---------------- windows and coverage ---------------------------- *)

let test_coverage_counted () =
  let prog =
    let* _ = Prog.call Endpoint.ds (Message.Ds_retrieve { key = "abc" }) in
    Syscall.exit 0
  in
  let kernel, _, _ = mini prog in
  let s = Kernel.server_stats kernel Endpoint.ds in
  Alcotest.(check bool) "ops counted" true (s.Kernel.ss_ops_total > 0);
  Alcotest.(check bool) "some in window" true (s.Kernel.ss_ops_in_window > 0);
  Alcotest.(check bool) "bounded" true
    (s.Kernel.ss_ops_in_window <= s.Kernel.ss_ops_total)

let test_read_only_seep_keeps_window_enhanced () =
  let prog =
    let* _ = Prog.call Endpoint.ds (Message.Ds_publish { key = "diag-then-reply"; value = 0 }) in
    Syscall.exit 0
  in
  let kernel, _, _ = mini ~policy:Policy.enhanced prog in
  let s = Kernel.server_stats kernel Endpoint.ds in
  (* The only close is the reply, which is not counted as policy-induced
     early close... the reply does close via the policy hook. *)
  Alcotest.(check bool) "diag did not add an extra close" true
    (s.Kernel.ss_policy_closes <= 1)

let test_read_only_seep_closes_window_pessimistic () =
  let prog =
    let* _ = Prog.call Endpoint.ds (Message.Ds_publish { key = "diag-then-reply"; value = 0 }) in
    Syscall.exit 0
  in
  let kernel_p, _, _ = mini ~policy:Policy.pessimistic prog in
  let kernel_e, _, _ = mini ~policy:Policy.enhanced prog in
  let sp = Kernel.server_stats kernel_p Endpoint.ds in
  let se = Kernel.server_stats kernel_e Endpoint.ds in
  Alcotest.(check bool) "pessimistic window smaller" true
    (sp.Kernel.ss_ops_in_window < se.Kernel.ss_ops_in_window)

(* ---------------- crash and recovery ------------------------------ *)

let test_in_window_crash_recovers () =
  let prog =
    let* r = Prog.call Endpoint.ds (Message.Ds_publish { key = "crash"; value = 0 }) in
    match r with
    | Message.R_err Errno.E_CRASH ->
      (* Error virtualization reached us; the server must be healthy
         again, and its pre-crash store must have been rolled back. *)
      let* r2 = Prog.call Endpoint.ds (Message.Ds_delete { key = "x" }) in
      (match r2 with
       | Message.R_ds_value { value = 0 } -> Syscall.exit 0
       | Message.R_ds_value { value } -> Syscall.exit value
       | _ -> Syscall.exit 98)
    | _ -> Syscall.exit 99
  in
  let kernel, halt, _ = mini ~policy:Policy.enhanced prog in
  Alcotest.check halt_t "recovered, rollback verified" (Kernel.H_completed 0) halt;
  Alcotest.(check int) "one restart" 1 (Kernel.restarts kernel);
  Alcotest.(check bool) "server alive" true (Kernel.proc_alive kernel Endpoint.ds)

let test_out_of_window_crash_shuts_down () =
  let prog =
    let* _ = Prog.call Endpoint.ds (Message.Ds_publish { key = "smash"; value = 0 }) in
    Syscall.exit 0
  in
  let _, halt, _ = mini ~policy:Policy.enhanced prog in
  match halt with
  | Kernel.H_shutdown _ -> ()
  | other ->
    Alcotest.fail ("expected controlled shutdown, got " ^ Kernel.halt_to_string other)

let test_stateless_restart_loses_state () =
  let prog =
    (* Store 42, crash the server, then observe the loss. Stateless
       recovery sends no error reply, so the crashing request must be
       fired asynchronously. *)
    let* _ = Prog.call Endpoint.ds (Message.Ds_publish { key = "keep"; value = 42 }) in
    let* () = Prog.send Endpoint.ds (Message.Ds_publish { key = "crash"; value = 0 }) in
    let* () = Prog.compute 1_000_000 in
    let* r = Prog.call Endpoint.ds (Message.Ds_delete { key = "x" }) in
    match r with
    | Message.R_ds_value { value } -> Syscall.exit value
    | _ -> Syscall.exit 99
  in
  let kernel, halt, _ = mini ~policy:Policy.stateless prog in
  Alcotest.check halt_t "state reset to boot value" (Kernel.H_completed 0) halt;
  Alcotest.(check int) "one restart" 1 (Kernel.restarts kernel)

let test_naive_restart_keeps_state () =
  let prog =
    let* _ = Prog.call Endpoint.ds (Message.Ds_publish { key = "keep"; value = 42 }) in
    let* () = Prog.send Endpoint.ds (Message.Ds_publish { key = "crash"; value = 0 }) in
    let* () = Prog.compute 1_000_000 in
    let* r = Prog.call Endpoint.ds (Message.Ds_delete { key = "x" }) in
    match r with
    | Message.R_ds_value { value } -> Syscall.exit value
    | _ -> Syscall.exit 99
  in
  let kernel, halt, _ = mini ~policy:Policy.naive prog in
  (* The crashing handler stored 666 before failing; naive recovery
     keeps that partial state (no rollback). *)
  Alcotest.check halt_t "partial state survives" (Kernel.H_completed 666) halt;
  Alcotest.(check int) "one restart" 1 (Kernel.restarts kernel)

let test_baseline_crash_panics () =
  let prog =
    let* () = Prog.send Endpoint.ds (Message.Ds_publish { key = "crash"; value = 0 }) in
    let* () = Prog.compute 1_000_000 in
    Syscall.exit 0
  in
  let _, halt, _ = mini ~policy:Policy.none prog in
  match halt with
  | Kernel.H_panic _ -> ()
  | other -> Alcotest.fail ("expected panic, got " ^ Kernel.halt_to_string other)

let test_fault_hook_crash_and_recovery () =
  let fired = ref false in
  let hook (site : Kernel.site) =
    if (not !fired) && site.Kernel.site_ep = Endpoint.ds
       && site.Kernel.site_handler = Some Message.Tag.T_ds_retrieve
    then begin
      fired := true;
      Some (Kernel.F_crash "injected")
    end
    else None
  in
  let prog =
    let* r = Prog.call Endpoint.ds (Message.Ds_retrieve { key = "ab" }) in
    match r with
    | Message.R_err Errno.E_CRASH ->
      (* retry after recovery *)
      let* r2 = Prog.call Endpoint.ds (Message.Ds_retrieve { key = "ab" }) in
      (match r2 with
       | Message.R_ds_value { value = 2 } -> Syscall.exit 0
       | _ -> Syscall.exit 98)
    | _ -> Syscall.exit 99
  in
  let kernel, halt, _ = mini ~fault_hook:hook prog in
  Alcotest.check halt_t "recovered and retried" (Kernel.H_completed 0) halt;
  Alcotest.(check int) "crash recorded" 1 (Kernel.crashes kernel)

let test_hang_detection () =
  let fired = ref false in
  let hook (site : Kernel.site) =
    if (not !fired) && site.Kernel.site_ep = Endpoint.ds
       && site.Kernel.site_handler = Some Message.Tag.T_ds_retrieve
    then begin
      fired := true;
      Some Kernel.F_hang
    end
    else None
  in
  let prog =
    let* r = Prog.call Endpoint.ds (Message.Ds_retrieve { key = "abc" }) in
    match r with
    | Message.R_err Errno.E_CRASH -> Syscall.exit 0
    | _ -> Syscall.exit 99
  in
  let kernel, halt, _ = mini ~fault_hook:hook prog in
  Alcotest.check halt_t "hang detected and recovered" (Kernel.H_completed 0) halt;
  Alcotest.(check int) "treated as crash" 1 (Kernel.crashes kernel)

(* ---------------- alarms ------------------------------------------ *)

let test_alarm_delivery () =
  let prog =
    (* Ask the echo server to arm an alarm indirectly: easier to use the
       kcall from the user program itself (the kernel does not restrict
       it) and verify the echo server's alarm handler runs. *)
    let* _ = Prog.call Endpoint.ds (Message.Ds_publish { key = "k"; value = 1 }) in
    let* () = Prog.compute 100 in
    Syscall.exit 0
  in
  (* Arm an alarm for DS before running: done via a tiny init trick —
     instead, verify that the RS heartbeat alarm (armed in Rs.init)
     fires and is logged. *)
  let _, _, log = mini prog in
  ignore log;
  (* RS heartbeats fire at 1M-cycle intervals; this short run may not
     reach one — only assert the mechanism doesn't break the run. *)
  Alcotest.(check pass) "alarm machinery" () ()

(* ---------------- determinism ------------------------------------- *)

let test_deterministic_runs () =
  let prog () =
    let* _ = Prog.call Endpoint.ds (Message.Ds_publish { key = "d"; value = 3 }) in
    let* r = Prog.call Endpoint.ds (Message.Ds_delete { key = "d" }) in
    match r with
    | Message.R_ds_value { value } -> Syscall.exit value
    | _ -> Syscall.exit 99
  in
  let k1, h1, l1 = mini (prog ()) in
  let k2, h2, l2 = mini (prog ()) in
  Alcotest.check halt_t "same halt" h1 h2;
  Alcotest.(check (list string)) "same log" l1 l2;
  Alcotest.(check int) "same clock" (Kernel.now k1) (Kernel.now k2)

let () =
  Alcotest.run "osiris_kernel"
    [ ( "ipc",
        [ Alcotest.test_case "echo roundtrip" `Quick test_echo_roundtrip;
          Alcotest.test_case "fifo requests" `Quick test_multiple_requests_fifo;
          Alcotest.test_case "enosys" `Quick test_unknown_request_enosys;
          Alcotest.test_case "implicit exit" `Quick test_implicit_exit;
          Alcotest.test_case "user fail = 255" `Quick test_user_fail_becomes_255;
          Alcotest.test_case "diag sink" `Quick test_diag_reaches_sink ] );
      ( "windows",
        [ Alcotest.test_case "coverage counted" `Quick test_coverage_counted;
          Alcotest.test_case "enhanced keeps RO seep" `Quick
            test_read_only_seep_keeps_window_enhanced;
          Alcotest.test_case "pessimistic closes on RO seep" `Quick
            test_read_only_seep_closes_window_pessimistic ] );
      ( "recovery",
        [ Alcotest.test_case "in-window crash recovers" `Quick
            test_in_window_crash_recovers;
          Alcotest.test_case "out-of-window shuts down" `Quick
            test_out_of_window_crash_shuts_down;
          Alcotest.test_case "stateless loses state" `Quick
            test_stateless_restart_loses_state;
          Alcotest.test_case "naive keeps state" `Quick
            test_naive_restart_keeps_state;
          Alcotest.test_case "baseline panics" `Quick test_baseline_crash_panics;
          Alcotest.test_case "fault hook crash" `Quick
            test_fault_hook_crash_and_recovery;
          Alcotest.test_case "hang detection" `Quick test_hang_detection ] );
      ( "misc",
        [ Alcotest.test_case "alarm machinery" `Quick test_alarm_delivery;
          Alcotest.test_case "determinism" `Quick test_deterministic_runs ] ) ]
