test/test_model.ml: Alcotest Char Errno Hashtbl Kernel List Message Osiris_util Policy Printf Prog QCheck QCheck_alcotest String Syscall System
