test/test_memimage.mli:
