test/test_memimage.ml: Alcotest Bytes Hashtbl Int64 Layout List Memimage QCheck QCheck_alcotest
