test/test_servers_unit.mli:
