test/test_fault.ml: Alcotest Array Campaign Disruption Edfi Endpoint Fmt Kernel List Message Option Policy QCheck QCheck_alcotest System Unixbench
