test/test_extensions.ml: Alcotest Endpoint Errno Experiment Fmt Kernel List Memimage Message Option Policy Prog Srvlib Syscall System Testsuite Undo_log Unixbench Window
