test/test_analysis.ml: Alcotest Endpoint Experiment List Message Policy Printf QCheck QCheck_alcotest Static_window Summary System
