test/test_properties.ml: Alcotest Array Campaign Edfi Errno Kernel Lazy List Message Mfs Policy Printf Prog QCheck QCheck_alcotest String Syscall System Testsuite
