test/test_program.ml: Alcotest Layout Memimage Printf Prog QCheck QCheck_alcotest String
