test/test_servers_unit.ml: Alcotest Ds Endpoint Errno Fmt Kernel Message Mfs Pm Policy Printf Prog String Syscall System Vfs Vm
