test/test_ipc.ml: Alcotest Endpoint Errno List Message Osiris_util QCheck QCheck_alcotest Seep Summary
