test/test_ipc.mli:
