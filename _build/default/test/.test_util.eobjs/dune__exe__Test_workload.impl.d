test/test_workload.ml: Alcotest Errno Fmt Kernel List Message Option Policy Printf Prog Registry Syscall System Testsuite Unixbench Workgen
