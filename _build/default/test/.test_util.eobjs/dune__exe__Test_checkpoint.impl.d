test/test_checkpoint.ml: Alcotest Bytes Gen List Memimage QCheck QCheck_alcotest String Undo_log Window
