test/test_servers.ml: Alcotest Experiment Fmt Kernel List Message Option Policy Prog Syscall System Testsuite Unixbench
