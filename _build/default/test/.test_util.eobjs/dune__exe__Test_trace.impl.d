test/test_trace.ml: Alcotest Endpoint Kernel List Message Policy Prog String Syscall System Testsuite Tracer
