test/test_recovery.ml: Alcotest Endpoint Errno Fmt Kernel List Message Policy Prog String Syscall System Testsuite Vfs
