test/test_util.ml: Alcotest Array List Osiris_util QCheck QCheck_alcotest String
