test/test_kernel.ml: Alcotest Endpoint Errno Fmt Kernel Layout List Memimage Message Policy Prog Rs Srvlib String Syscall
