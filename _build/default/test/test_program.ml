(* Tests for the program DSL: monadic structure, control helpers, and
   the typed memory access layer. A miniature interpreter executes the
   pure subset (Compute / Load / Store / Rand / Now / Done / Fail)
   against a raw image so DSL semantics can be checked without a
   kernel. *)

open Prog.Syntax

type 'a outcome = Value of 'a | Crashed of string

(* Interpret the non-communicating subset of the DSL. *)
let interp img prog =
  let steps = ref 0 in
  let rec go : type a. a Prog.t -> a outcome = function
    | Prog.Done x -> Value x
    | Prog.Fail m -> Crashed m
    | Prog.Compute (_, k) ->
      incr steps;
      go (k ())
    | Prog.Load (off, k) ->
      incr steps;
      go (k (Memimage.get_word img off))
    | Prog.Store (off, v, k) ->
      incr steps;
      Memimage.set_word img off v;
      go (k ())
    | Prog.Load_str { off; len; k } ->
      incr steps;
      go (k (Memimage.get_string img ~off ~len))
    | Prog.Store_str { off; len; v; k } ->
      incr steps;
      Memimage.set_string img ~off ~len v;
      go (k ())
    | Prog.Rand (bound, k) -> go (k (bound / 2))
    | Prog.Now k -> go (k 0)
    | _ -> failwith "interp: communicating operation in pure test"
  in
  let r = go prog in
  (r, !steps)

let mk () = Memimage.create ~name:"prog-test" ~size:4096

let run img p = fst (interp img p)

let check_value msg expected outcome =
  match outcome with
  | Value v -> Alcotest.(check int) msg expected v
  | Crashed m -> Alcotest.fail ("unexpected crash: " ^ m)

(* ---------------- monad ------------------------------------------- *)

let test_return_bind () =
  let img = mk () in
  check_value "return" 5 (run img (Prog.return 5));
  check_value "bind" 6 (run img (Prog.bind (Prog.return 5) (fun x -> Prog.return (x + 1))))

let test_bind_sequences_effects () =
  let img = mk () in
  let p =
    let* () = Prog.store 0 1 in
    let* () = Prog.store 8 2 in
    let* a = Prog.load 0 in
    let* b = Prog.load 8 in
    Prog.return (a * 10 + b)
  in
  check_value "sequenced" 12 (run img p)

let test_fail_short_circuits () =
  let img = mk () in
  let p =
    let* () = Prog.store 0 1 in
    let* () = Prog.fail "boom" in
    Prog.store 0 99
  in
  (match run img p with
   | Crashed "boom" -> ()
   | Crashed m -> Alcotest.fail ("wrong message: " ^ m)
   | Value () -> Alcotest.fail "expected crash");
  Alcotest.(check int) "first store happened" 1 (Memimage.get_word img 0)

let test_map () =
  let img = mk () in
  check_value "map" 10 (run img (Prog.map (fun x -> x * 2) (Prog.return 5)))

let prop_bind_associative =
  (* (m >>= f) >>= g  behaves like  m >>= (fun x -> f x >>= g)
     observed through the interpreter on store/load programs. *)
  QCheck.Test.make ~name:"bind is associative (observationally)" ~count:100
    QCheck.(triple small_int small_int small_int)
    (fun (a, b, c) ->
       let m = Prog.store 0 a in
       let f () = Prog.store 8 b in
       let g () =
         let* x = Prog.load 0 in
         let* y = Prog.load 8 in
         Prog.return (x + y + c)
       in
       let img1 = mk () and img2 = mk () in
       let left = run img1 (Prog.bind (Prog.bind m f) g) in
       let right = run img2 (Prog.bind m (fun () -> Prog.bind (f ()) g)) in
       left = right && Memimage.snapshot img1 = Memimage.snapshot img2)

(* ---------------- helpers ----------------------------------------- *)

let test_iter_range_order () =
  let img = mk () in
  let p =
    let* () =
      Prog.iter_range ~lo:0 ~hi:8 (fun i ->
          let* prev = Prog.load 0 in
          Prog.store 0 ((prev * 10) + i))
    in
    Prog.load 0
  in
  check_value "in order" 1234567 (run img p)

let test_iter_range_empty () =
  let img = mk () in
  let p = Prog.bind (Prog.iter_range ~lo:5 ~hi:5 (fun _ -> Prog.store 0 9))
      (fun () -> Prog.load 0) in
  check_value "empty range" 0 (run img p)

let test_repeat () =
  let img = mk () in
  let p =
    let incr_cell =
      let* v = Prog.load 0 in
      Prog.store 0 (v + 1)
    in
    Prog.bind (Prog.repeat 7 incr_cell) (fun () -> Prog.load 0)
  in
  check_value "repeat 7" 7 (run img p)

let test_iter_list () =
  let img = mk () in
  let p =
    let* () =
      Prog.iter_list (fun v ->
          let* prev = Prog.load 0 in
          Prog.store 0 (prev + v))
        [ 1; 2; 3; 4 ]
    in
    Prog.load 0
  in
  check_value "sum" 10 (run img p)

let test_when () =
  let img = mk () in
  ignore (run img (Prog.when_ false (Prog.store 0 1)));
  Alcotest.(check int) "skipped" 0 (Memimage.get_word img 0);
  ignore (run img (Prog.when_ true (Prog.store 0 1)));
  Alcotest.(check int) "executed" 1 (Memimage.get_word img 0)

let test_guard () =
  let img = mk () in
  (match run img (Prog.guard true "fine") with
   | Value () -> ()
   | Crashed _ -> Alcotest.fail "guard true crashed");
  match run img (Prog.guard false "invariant") with
  | Crashed m ->
    Alcotest.(check bool) "names the invariant" true
      (String.length m > 0 && String.sub m 0 9 = "assertion")
  | Value () -> Alcotest.fail "guard false passed"

(* ---------------- Mem accessors ----------------------------------- *)

let test_mem_table_access () =
  let img = mk () in
  let spec = Layout.spec () in
  let f_v = Layout.int spec "v" in
  let f_s = Layout.str spec "s" ~len:8 in
  Layout.seal spec;
  let tbl = Layout.Table.alloc img ~spec ~rows:4 in
  let p =
    let* () = Prog.Mem.set_int tbl ~row:2 f_v 55 in
    let* () = Prog.Mem.set_str tbl ~row:2 f_s "deux" in
    let* v = Prog.Mem.get_int tbl ~row:2 f_v in
    let* s = Prog.Mem.get_str tbl ~row:2 f_s in
    Prog.return (v, s)
  in
  (match run img p with
   | Value (55, "deux") -> ()
   | Value (v, s) -> Alcotest.fail (Printf.sprintf "got (%d, %s)" v s)
   | Crashed m -> Alcotest.fail m);
  (* DSL access and direct access agree on addressing. *)
  Alcotest.(check int) "direct agrees" 55 (Layout.Table.get_int tbl ~row:2 f_v)

let test_mem_cell_access () =
  let img = mk () in
  let c = Layout.Cell.alloc_int img "cell" in
  let p =
    let* () = Prog.Mem.set_cell c 7 in
    Prog.Mem.get_cell c
  in
  check_value "cell via DSL" 7 (run img p);
  Alcotest.(check int) "direct agrees" 7 (Layout.Cell.get c)

let prop_repeat_count =
  QCheck.Test.make ~name:"repeat n runs exactly n times" ~count:100
    QCheck.(int_range 0 50)
    (fun n ->
       let img = mk () in
       let incr_cell =
         let* v = Prog.load 0 in
         Prog.store 0 (v + 1)
       in
       ignore (run img (Prog.repeat n incr_cell));
       Memimage.get_word img 0 = n)

let () =
  Alcotest.run "osiris_program"
    [ ( "monad",
        [ Alcotest.test_case "return/bind" `Quick test_return_bind;
          Alcotest.test_case "effect order" `Quick test_bind_sequences_effects;
          Alcotest.test_case "fail short-circuits" `Quick test_fail_short_circuits;
          Alcotest.test_case "map" `Quick test_map;
          QCheck_alcotest.to_alcotest prop_bind_associative ] );
      ( "helpers",
        [ Alcotest.test_case "iter_range order" `Quick test_iter_range_order;
          Alcotest.test_case "iter_range empty" `Quick test_iter_range_empty;
          Alcotest.test_case "repeat" `Quick test_repeat;
          Alcotest.test_case "iter_list" `Quick test_iter_list;
          Alcotest.test_case "when_" `Quick test_when;
          Alcotest.test_case "guard" `Quick test_guard;
          QCheck_alcotest.to_alcotest prop_repeat_count ] );
      ( "mem",
        [ Alcotest.test_case "table access" `Quick test_mem_table_access;
          Alcotest.test_case "cell access" `Quick test_mem_cell_access ] ) ]
