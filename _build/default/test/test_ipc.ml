(* Tests for the IPC vocabulary: errno codes, message tagging, SEEP
   classification, and the corruption operator used by the full-EDFI
   fault model. *)

module Rng = Osiris_util.Rng

(* A generator covering a representative slice of the message space. *)
let msg_gen =
  QCheck.Gen.(
    oneof
      [ return Message.Fork;
        map (fun status -> Message.Exit { status }) small_int;
        map (fun pid -> Message.Waitpid { pid }) small_int;
        map2 (fun path arg -> Message.Exec { path; arg }) (string_size (return 6)) small_int;
        return Message.Getpid;
        map2 (fun pid signal -> Message.Kill { pid; signal }) small_int small_int;
        map2 (fun parent child -> Message.Vm_fork { parent; child }) small_int small_int;
        map (fun path -> Message.Open { path; flags = Message.rdonly }) (string_size (return 8));
        map (fun fd -> Message.Close { fd }) small_int;
        map2 (fun fd len -> Message.Read { fd; len }) small_int small_int;
        map2 (fun fd data -> Message.Write { fd; data }) small_int (string_size (return 5));
        return Message.Pipe;
        map (fun path -> Message.Mfs_lookup { path }) (string_size (return 10));
        map2 (fun ino off -> Message.Mfs_read { ino; off; len = 16 }) small_int small_int;
        map (fun block -> Message.Bdev_read { block }) small_int;
        map (fun delta -> Message.Brk { delta }) small_int;
        map2 (fun key value -> Message.Ds_publish { key; value }) (string_size (return 4)) small_int;
        map (fun key -> Message.Ds_retrieve { key }) (string_size (return 4));
        return Message.Rs_status;
        return Message.Ping;
        map (fun line -> Message.Diag { line }) (string_size (return 6));
        map (fun v -> Message.R_ok v) small_int;
        return (Message.R_err Errno.ENOENT);
        map (fun child -> Message.R_fork { child }) small_int;
        map (fun data -> Message.R_read { data }) (string_size (return 7)) ])

let arb_msg = QCheck.make ~print:Message.show msg_gen

(* ---------------- errno ------------------------------------------- *)

let test_errno_codes_distinct () =
  let all =
    Errno.[ E_OK; EPERM; ENOENT; ESRCH; EINTR; EIO; EBADF; ECHILD; EAGAIN;
            ENOMEM; EACCES; EEXIST; ENOTDIR; EISDIR; EINVAL; ENFILE; EMFILE;
            ENOSPC; EPIPE; ENOSYS; ENOTEMPTY; ENAMETOOLONG; E_CRASH ]
  in
  let codes = List.map Errno.to_code all in
  let distinct = List.sort_uniq compare codes in
  Alcotest.(check int) "codes distinct" (List.length all) (List.length distinct)

let test_errno_sign_convention () =
  Alcotest.(check int) "ok is zero" 0 (Errno.to_code Errno.E_OK);
  List.iter
    (fun e ->
       Alcotest.(check bool)
         (Errno.to_string e ^ " negative") true (Errno.to_code e < 0))
    Errno.[ EPERM; ENOENT; E_CRASH ]

let test_e_crash_code () =
  Alcotest.(check int) "E_CRASH = -999" (-999) (Errno.to_code Errno.E_CRASH)

(* ---------------- tags -------------------------------------------- *)

let test_tag_of_requests () =
  Alcotest.(check bool) "fork" true (Message.Tag.of_msg Message.Fork = Message.Tag.T_fork);
  Alcotest.(check bool) "pipe" true (Message.Tag.of_msg Message.Pipe = Message.Tag.T_pipe);
  Alcotest.(check bool) "diag" true
    (Message.Tag.of_msg (Message.Diag { line = "x" }) = Message.Tag.T_diag)

let test_tag_of_replies () =
  List.iter
    (fun m ->
       Alcotest.(check bool) "is reply tag" true
         (Message.Tag.of_msg m = Message.Tag.T_reply);
       Alcotest.(check bool) "is_reply" true (Message.is_reply m))
    [ Message.R_ok 0; Message.R_err Errno.EIO; Message.R_fork { child = 1 };
      Message.R_read { data = "" }; Message.R_pong ]

let test_tag_to_string () =
  Alcotest.(check string) "fork" "fork" (Message.Tag.to_string Message.Tag.T_fork);
  Alcotest.(check string) "mfs_read" "mfs_read"
    (Message.Tag.to_string Message.Tag.T_mfs_read)

let prop_corrupt_preserves_tag =
  QCheck.Test.make ~name:"corruption preserves the message tag" ~count:500
    (QCheck.pair QCheck.small_int arb_msg)
    (fun (seed, m) ->
       let rng = Rng.create seed in
       Message.Tag.of_msg (Message.corrupt rng m) = Message.Tag.of_msg m)

let prop_corrupt_deterministic =
  QCheck.Test.make ~name:"corruption is deterministic per seed" ~count:200
    (QCheck.pair QCheck.small_int arb_msg)
    (fun (seed, m) ->
       Message.equal
         (Message.corrupt (Rng.create seed) m)
         (Message.corrupt (Rng.create seed) m))

(* ---------------- seep -------------------------------------------- *)

let test_seep_replies () =
  Alcotest.(check bool) "reply class" true
    (Seep.classify ~dst:Endpoint.pm Message.Tag.T_reply = Seep.Reply)

let test_seep_read_only () =
  List.iter
    (fun tag ->
       Alcotest.(check bool)
         (Message.Tag.to_string tag ^ " read-only") true
         (Seep.classify ~dst:Endpoint.pm tag = Seep.Read_only))
    Message.Tag.[ T_getpid; T_mfs_lookup; T_mfs_read; T_ds_retrieve; T_diag ]

let test_seep_state_modifying () =
  List.iter
    (fun tag ->
       Alcotest.(check bool)
         (Message.Tag.to_string tag ^ " state-modifying") true
         (Seep.classify ~dst:Endpoint.pm tag = Seep.State_modifying))
    Message.Tag.[ T_fork; T_mfs_write; T_ds_publish; T_ds_notify; T_kcall;
                  T_bdev_read (* device reads mutate driver state *) ]

let test_seep_list_consistent () =
  List.iter
    (fun tag ->
       Alcotest.(check bool) "listed tags classify read-only" true
         (Seep.classify ~dst:Endpoint.kernel tag = Seep.Read_only))
    Seep.read_only_tags

(* ---------------- endpoints --------------------------------------- *)

let test_endpoints_distinct () =
  let eps = Endpoint.[ kernel; pm; vfs; vm; ds; rs; mfs; bdev ] in
  Alcotest.(check int) "distinct" (List.length eps)
    (List.length (List.sort_uniq compare eps))

let test_endpoint_names () =
  Alcotest.(check string) "pm" "pm" (Endpoint.server_name Endpoint.pm);
  Alcotest.(check string) "user" "user123" (Endpoint.server_name 123)

let test_is_server () =
  Alcotest.(check bool) "pm is server" true (Endpoint.is_server Endpoint.pm);
  Alcotest.(check bool) "kernel is not" false (Endpoint.is_server Endpoint.kernel);
  Alcotest.(check bool) "user is not" false (Endpoint.is_server Endpoint.first_user)

(* ---------------- summaries --------------------------------------- *)

let test_summary_builders () =
  let h =
    Summary.handler Message.Tag.T_fork
      [ Summary.seg ~out:(Endpoint.vm, Message.Tag.T_vm_fork) 10;
        Summary.seg 5 ]
  in
  Alcotest.(check bool) "replies default" true h.Summary.h_replies;
  Alcotest.(check int) "segments" 2 (List.length h.Summary.h_segments);
  match (List.hd h.Summary.h_segments).Summary.seg_then with
  | Some out ->
    Alcotest.(check bool) "outbound dst" true (out.Summary.out_dst = Endpoint.vm);
    Alcotest.(check bool) "not maybe" false out.Summary.out_maybe
  | None -> Alcotest.fail "expected outbound"

let () =
  Alcotest.run "osiris_ipc"
    [ ( "errno",
        [ Alcotest.test_case "codes distinct" `Quick test_errno_codes_distinct;
          Alcotest.test_case "sign convention" `Quick test_errno_sign_convention;
          Alcotest.test_case "E_CRASH" `Quick test_e_crash_code ] );
      ( "tags",
        [ Alcotest.test_case "requests" `Quick test_tag_of_requests;
          Alcotest.test_case "replies" `Quick test_tag_of_replies;
          Alcotest.test_case "to_string" `Quick test_tag_to_string;
          QCheck_alcotest.to_alcotest prop_corrupt_preserves_tag;
          QCheck_alcotest.to_alcotest prop_corrupt_deterministic ] );
      ( "seep",
        [ Alcotest.test_case "replies" `Quick test_seep_replies;
          Alcotest.test_case "read-only" `Quick test_seep_read_only;
          Alcotest.test_case "state-modifying" `Quick test_seep_state_modifying;
          Alcotest.test_case "list consistent" `Quick test_seep_list_consistent ] );
      ( "endpoints",
        [ Alcotest.test_case "distinct" `Quick test_endpoints_distinct;
          Alcotest.test_case "names" `Quick test_endpoint_names;
          Alcotest.test_case "is_server" `Quick test_is_server ] );
      ( "summary",
        [ Alcotest.test_case "builders" `Quick test_summary_builders ] ) ]
