(* Figure 3 in miniature: run one Unixbench workload under an
   increasingly aggressive fault load (fail-stop crashes injected into
   PM inside its recovery windows) and watch the score degrade while the
   benchmark keeps completing.

     dune exec examples/service_disruption.exe [bench]     (default: spawn) *)

let () =
  let bench_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "spawn" in
  match Unixbench.find bench_name with
  | None ->
    Printf.eprintf "unknown benchmark %S; try one of: %s\n" bench_name
      (String.concat ", " (List.map (fun b -> b.Unixbench.b_name) Unixbench.all));
    exit 2
  | Some bench ->
    Printf.printf
      "benchmark: %s (PM-dependent: %b)\n\
       injecting fail-stop faults into PM, only inside recovery windows,\n\
       at shrinking intervals; every crash is recovered by RS.\n\n"
      bench.Unixbench.b_name bench.Unixbench.b_uses_pm;
    Printf.printf "%14s %14s %10s %10s %6s\n" "interval(cyc)" "score(it/s)"
      "rel." "recoveries" "ok?";
    let reference = ref None in
    List.iter
      (fun interval ->
         let r = Disruption.run ~bench ~interval () in
         let ref_score =
           match !reference with
           | None ->
             reference := Some r.Disruption.dis_score;
             r.Disruption.dis_score
           | Some s -> s
         in
         Printf.printf "%14s %14.0f %9.1f%% %10d %6s\n"
           (if interval = 0 then "none" else string_of_int interval)
           r.Disruption.dis_score
           (100. *. r.Disruption.dis_score /. ref_score)
           r.Disruption.dis_restarts
           (if r.Disruption.dis_completed then "yes" else "DEGRADED"))
      [ 0; 12_800_000; 3_200_000; 800_000; 200_000; 100_000; 50_000 ];
    print_endline
      "\n(the paper's Figure 3: PM-heavy tests sink as the fault influx\n\
       doubles; tests that never touch PM are flat. '!'-free completion\n\
       under every interval is the survivability guarantee.)"
