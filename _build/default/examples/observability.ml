(* Observability tour: generate a random-but-deterministic workload,
   watch it through the event tracer, inject a mid-run fault, and audit
   the filesystem afterwards.

     dune exec examples/observability.exe [seed]        (default 2026) *)

let () =
  let seed =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2026
  in
  Printf.printf "workload plan (seed %d):\n" seed;
  List.iteri (fun i a -> Printf.printf "  %2d. %s\n" (i + 1) a)
    (Workgen.describe ~seed ());
  let sys = System.build ~seed Policy.enhanced in
  let tracer = Tracer.create ~capacity:24 () in
  Tracer.attach tracer (System.kernel sys);
  (* Crash VFS once, mid-workload, inside a window. *)
  let fired = ref false in
  Kernel.set_fault_hook (System.kernel sys)
    (Some
       (fun site ->
          if (not !fired)
             && site.Kernel.site_ep = Endpoint.vfs
             && site.Kernel.site_handler = Some Message.Tag.T_open
          then begin
            fired := true;
            Some (Kernel.F_crash "demo fault in open()")
          end
          else None));
  let halt = System.run sys ~root:(Workgen.generate ~seed ()) in
  Printf.printf "\nrun: %s (%d crashes, %d recoveries)\n"
    (Kernel.halt_to_string halt)
    (Kernel.crashes (System.kernel sys))
    (Kernel.restarts (System.kernel sys));
  print_endline "last events:";
  List.iter (fun l -> print_endline ("  " ^ l)) (Tracer.timeline tracer);
  (match Mfs.check_invariants (System.mfs sys) ~bdev:(System.bdev sys) with
   | Ok () -> print_endline "\nfsck: clean — block conservation holds"
   | Error m -> Printf.printf "\nfsck: CORRUPT: %s\n" m);
  print_endline "per-server recovery-window stats:";
  List.iter
    (fun ep ->
       let s = Kernel.server_stats (System.kernel sys) ep in
       Printf.printf
         "  %-4s ops %6d  in-window %5.1f%%  checkpoints %5d  logged %6d \
          stores  restarts %d\n"
         s.Kernel.ss_name s.Kernel.ss_ops_total
         (100.
          *. float_of_int s.Kernel.ss_ops_in_window
          /. float_of_int (max 1 s.Kernel.ss_ops_total))
         s.Kernel.ss_window_opens s.Kernel.ss_logged_stores
         s.Kernel.ss_restarts)
    System.core_servers
