examples/resilient_app.mli:
