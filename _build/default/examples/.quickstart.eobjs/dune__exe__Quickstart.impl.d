examples/quickstart.ml: Costs Errno Kernel List Message Policy Printf Prog Syscall System
