examples/static_analysis.ml: Endpoint Experiment Kernel List Message Policy Printf Static_window Summary System Testsuite
