examples/service_disruption.mli:
