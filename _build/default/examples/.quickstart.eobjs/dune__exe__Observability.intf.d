examples/observability.mli:
