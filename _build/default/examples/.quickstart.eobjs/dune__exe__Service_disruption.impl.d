examples/service_disruption.ml: Array Disruption List Printf String Sys Unixbench
