examples/policy_comparison.ml: Endpoint Errno Kernel List Message Policy Printf Prog String Syscall System
