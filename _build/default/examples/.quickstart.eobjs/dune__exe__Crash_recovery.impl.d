examples/crash_recovery.ml: Endpoint Errno Kernel List Message Policy Printf Prog Syscall System Tracer
