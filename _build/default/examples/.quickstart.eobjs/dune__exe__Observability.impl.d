examples/observability.ml: Array Endpoint Kernel List Message Mfs Policy Printf Sys System Tracer Workgen
