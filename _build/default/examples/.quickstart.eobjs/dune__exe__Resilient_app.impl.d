examples/resilient_app.ml: Endpoint Errno Kernel List Policy Printf Prog String Syscall System
