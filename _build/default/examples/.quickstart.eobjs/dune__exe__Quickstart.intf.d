examples/quickstart.mli:
