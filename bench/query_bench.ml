(* Trace query engine benchmark: does the sidecar index actually buy
   selective decode, does it stay honest, and what does building it
   cost at record time?

   Run with [dune exec bench/main.exe query]. Emits a JSON report
   (path from OSIRIS_QUERY_BENCH_JSON, default BENCH_query.json) and
   exits non-zero when a gate fails:

     OSIRIS_BENCH_MS            per-variant wall budget in ms (default 200)
     OSIRIS_QUERY_BENCH_JSON    output path (default BENCH_query.json)
     OSIRIS_QUERY_MAX_INDEX_OVERHEAD_PCT
                                maximum tolerated record-time slowdown
                                from sidecar indexing, in percent
                                (default 5 — the ISSUE bound)

   Gates:
     selective_decode   a narrow vtime-window query over a >=100k-event
                        journal decodes < 15% of its records through
                        the index, and actually skips blocks
     byte_identity      indexed and full-scan evaluation of the same
                        queries produce byte-identical JSON and CSV
                        artifacts (pushdown may over-decode, never
                        change answers)
     index_overhead     sidecar indexing adds < 5% to [osiris record]
                        wall time (Flight.record ~index:true vs false) *)

let budget_ns () =
  let ms =
    match Sys.getenv_opt "OSIRIS_BENCH_MS" with
    | Some s -> (try float_of_string s with _ -> 200.)
    | None -> 200.
  in
  ms *. 1e6

let max_overhead_pct () =
  match Sys.getenv_opt "OSIRIS_QUERY_MAX_INDEX_OVERHEAD_PCT" with
  | Some s -> (try float_of_string s with _ -> 5.)
  | None -> 5.

let json_path () =
  match Sys.getenv_opt "OSIRIS_QUERY_BENCH_JSON" with
  | Some p when p <> "" -> p
  | _ -> "BENCH_query.json"

let now_ns () = Int64.to_float (Monotonic_clock.now ())

let workload_seed = 42

(* ------------------------------------------------------------------ *)
(* Synthetic journal: a deterministic mixed stream, big enough that    *)
(* block skipping is measurable (>=100k events, ~200 blocks at the     *)
(* default 512 records/block).                                         *)
(* ------------------------------------------------------------------ *)

let synth_header () =
  match Flight.make_header ~seed:workload_seed ~workload:"workgen" () with
  | Ok h -> h
  | Error m -> failwith ("query bench: " ^ m)

let synth_journal n =
  let tags =
    [| Message.Tag.T_open; Message.Tag.T_read; Message.Tag.T_write;
       Message.Tag.T_close |]
  in
  let evs = ref [] in
  let push ev = evs := ev :: !evs in
  let time = ref 0 in
  let rid = ref 0 in
  let emitted = ref 0 in
  let i = ref 0 in
  while !emitted < n do
    let k = !i in
    incr i;
    time := !time + 7 + (k mod 13);
    incr rid;
    let server = Endpoint.pm + (k mod (Endpoint.bdev - Endpoint.pm + 1)) in
    let user = Endpoint.first_user + (k mod 5) in
    let tag = tags.(k mod Array.length tags) in
    let parent = if !rid > 4 && k mod 3 = 0 then !rid - 4 else 0 in
    push
      (Kernel.E_msg
         { time = !time; src = user; dst = server; tag; call = true;
           rid = !rid; parent; cls = Seep.State_modifying });
    push
      (Kernel.E_store_logged
         { time = !time + 1; ep = server; rid = !rid;
           bytes = 8 + (k mod 64) });
    if k mod 5 = 0 then
      push
        (Kernel.E_checkpoint
           { time = !time + 2; ep = server; rid = !rid;
             cycles = 100 + (k mod 300) });
    push
      (Kernel.E_reply
         { time = !time + 3 + (k mod 7); src = server; dst = user; tag;
           rid = !rid });
    emitted := !emitted + 3 + (if k mod 5 = 0 then 1 else 0)
  done;
  push (Kernel.E_halt { time = !time + 10; halt = Kernel.H_completed 0 });
  (Journal.of_events (synth_header ()) (List.rev !evs), !time + 10)

(* ------------------------------------------------------------------ *)

let json_bool b = if b then "true" else "false"

let run () =
  Printf.printf
    "\n================================================================\n\
     Trace query engine: selective decode, artifact identity, index cost\n\
     ================================================================\n";
  (* ---- record-time indexing overhead ----
     Measured first, while the heap is small: the selective-decode
     phase below keeps a ~1 MB journal plus its index live, which
     taxes the two variants' GC behavior unevenly. *)
  let header =
    match
      Flight.make_header ~seed:workload_seed ~workload:"workgen"
        ~crash:"vfs" ()
    with
    | Ok h -> h
    | Error m -> failwith ("query bench: " ^ m)
  in
  (* Fixture on tmpfs when available: the gate targets the cost of
     indexing (scan + sidecar emit), and container scratch mounts (9p,
     overlay) add hundreds of µs of per-file latency that would gate
     the host's file system instead. The journal and sidecar writes
     still happen — just against memory-backed storage. *)
  let path =
    let shm = "/dev/shm" in
    if Sys.file_exists shm && Sys.is_directory shm then
      Filename.temp_file ~temp_dir:shm "osiris_query_bench" ".journal"
    else Filename.temp_file "osiris_query_bench" ".journal"
  in
  let record ~index () =
    let t0 = now_ns () in
    (match Flight.record ~path ~index header with
     | Ok _ -> ()
     | Error m -> failwith ("query bench: record: " ^ m));
    now_ns () -. t0
  in
  (* Interleaved pairs, alternating order within the pair: each round
     times both variants under the same machine state. The gated
     figure is the *median of per-round differences* over the median
     plain wall — subtracting two independently-drawn minima would
     make the gate hostage to which variant catches the luckier tail
     sample, while paired differences cancel shared drift and the
     median discards the sidecar write's file-system latency tail. *)
  ignore (record ~index:false ());
  ignore (record ~index:true ());
  let best_plain = ref infinity and best_indexed = ref infinity in
  let diffs = ref [] and plains = ref [] in
  let rounds = ref 0 in
  let median l =
    let a = Array.of_list l in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let measure budget =
    let t0 = now_ns () in
    let r0 = !rounds in
    while now_ns () -. t0 < budget || !rounds - r0 < 8 do
      let a = record ~index:(!rounds mod 2 = 0) () in
      let b = record ~index:(!rounds mod 2 = 1) () in
      let plain, indexed_ns =
        if !rounds mod 2 = 0 then (b, a) else (a, b)
      in
      if plain < !best_plain then best_plain := plain;
      if indexed_ns < !best_indexed then best_indexed := indexed_ns;
      diffs := (indexed_ns -. plain) :: !diffs;
      plains := plain :: !plains;
      incr rounds
    done;
    100. *. median !diffs /. median !plains
  in
  let threshold = max_overhead_pct () in
  let overhead_pct =
    let first = measure (2. *. budget_ns ()) in
    (* A near-miss earns one confirmation pass over a larger sample
       (the medians only firm up, so this can't manufacture a pass the
       hardware doesn't support). *)
    if first < threshold then first else measure (4. *. budget_ns ())
  in
  Sys.remove path;
  (try Sys.remove (path ^ Journal.index_suffix) with Sys_error _ -> ());
  Printf.printf
    "record wall (%d interleaved rounds):\n\
    \  best without index %.2f ms, with index %.2f ms;\n\
    \  paired median overhead %+.2f%% (gate < %.1f%%)\n"
    !rounds (!best_plain /. 1e6) (!best_indexed /. 1e6) overhead_pct
    threshold;
  let overhead_ok = overhead_pct < threshold in
  (* ---- selective decode over a big synthetic journal ---- *)
  let journal, t_max = synth_journal 100_000 in
  let ix =
    match Journal.build_index journal with
    | Ok ix -> ix
    | Error m -> failwith ("query bench: build_index: " ^ m)
  in
  let total = ix.Journal.ix_records in
  let n_blocks = Array.length ix.Journal.ix_blocks in
  (* A 1%-of-the-run vtime window in the middle of the journal. *)
  let w0 = t_max * 45 / 100 and w1 = t_max * 46 / 100 in
  let filter =
    Query.All [ Query.Time_ge w0; Query.Time_lt w1 ]
  in
  let stats = Journal.scan_stats () in
  let indexed =
    match Query.run ~index:ix ~stats ~filter ~agg:Query.Count journal with
    | Ok o -> o
    | Error m -> failwith ("query bench: indexed query: " ^ m)
  in
  let decoded_pct =
    100. *. float_of_int stats.Journal.sc_records_decoded
    /. float_of_int (max 1 total)
  in
  Printf.printf
    "selective decode: %d records in %d blocks; window [%d,%d) matched %d\n\
    \  decoded %d records (%.2f%%), scanned %d blocks, skipped %d\n"
    total n_blocks w0 w1 indexed.Query.q_matched
    stats.Journal.sc_records_decoded decoded_pct
    stats.Journal.sc_blocks_scanned stats.Journal.sc_blocks_skipped;
  let selective_ok =
    total >= 100_000 && decoded_pct < 15.
    && stats.Journal.sc_blocks_skipped > 0
  in
  (* ---- indexed vs full-scan byte identity across query shapes ---- *)
  let queries =
    [ ("window_count", filter, Query.Count);
      ("server_groups", Query.Server [ Endpoint.vfs; Endpoint.ds ],
       Query.Group_by Query.D_kind);
      ("tag_rate", Query.Tag [ Message.Tag.T_write ], Query.Rate 4096);
      ("latency", Query.All [ Query.Server [ Endpoint.vm ] ],
       Query.Percentiles Query.F_latency);
      ("chain", Query.Chain 50_000, Query.Count);
      ("bytes",
       Query.All
         [ Query.Kind [ 5 ]; Query.Time_ge (t_max / 2) ],
       Query.Percentiles Query.F_bytes) ]
  in
  let identity_failures =
    List.filter_map
      (fun (name, filter, agg) ->
         let run_path index =
           match Query.run ?index ~filter ~agg journal with
           | Ok o -> (Query.to_json o, Query.to_csv o)
           | Error m -> failwith ("query bench: " ^ name ^ ": " ^ m)
         in
         let ji, ci = run_path (Some ix) in
         let jf, cf = run_path None in
         if ji = jf && ci = cf then None else Some name)
      queries
  in
  let identity_ok = identity_failures = [] in
  Printf.printf "byte identity over %d query shapes: %s\n"
    (List.length queries)
    (if identity_ok then "indexed == full scan"
     else "MISMATCH in " ^ String.concat ", " identity_failures);
  (* ---- gates + JSON report ---- *)
  let gates =
    [ ("selective_decode", selective_ok);
      ("byte_identity", identity_ok);
      ("index_overhead", overhead_ok) ]
  in
  let buf = Buffer.create 1024 in
  let f = Printf.bprintf in
  f buf "{\n";
  f buf "  \"bench\": \"query\",\n";
  f buf "  \"budget_ms\": %.0f,\n" (budget_ns () /. 1e6);
  f buf "  \"workload_seed\": %d,\n" workload_seed;
  f buf
    "  \"selectivity\": {\"records\": %d, \"blocks\": %d,\n\
    \    \"records_decoded\": %d, \"records_decoded_pct\": %.3f,\n\
    \    \"blocks_scanned\": %d, \"blocks_skipped\": %d, \"matched\": %d},\n"
    total n_blocks stats.Journal.sc_records_decoded decoded_pct
    stats.Journal.sc_blocks_scanned stats.Journal.sc_blocks_skipped
    indexed.Query.q_matched;
  f buf "  \"identity_queries\": %d,\n" (List.length queries);
  f buf
    "  \"wall\": {\"record_ns\": %.0f, \"record_indexed_ns\": %.0f,\n\
    \    \"index_overhead_pct\": %.3f, \"max_index_overhead_pct\": %.1f},\n"
    !best_plain !best_indexed overhead_pct threshold;
  (* Wall numbers move with the host; the overhead ratio is the gated
     figure and is a noise-centered paired median, so its relative
     drift is meaningless (the gate itself is what's enforced).
     Selectivity and identity are deterministic — no tolerance
     needed. *)
  f buf
    "  \"tolerances\": {\"wall.record_ns\": 50.0,\n\
    \    \"wall.record_indexed_ns\": 50.0,\n\
    \    \"wall.index_overhead_pct\": 10000.0},\n";
  f buf "  \"gates\": {%s}\n"
    (String.concat ", "
       (List.map (fun (n, ok) -> Printf.sprintf "\"%s\": %s" n (json_bool ok))
          gates));
  f buf "}\n";
  let p = json_path () in
  let oc = open_out p in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" p;
  let failed = List.filter (fun (_, ok) -> not ok) gates in
  if failed <> [] then begin
    List.iter
      (fun (n, _) -> Printf.eprintf "query bench: gate FAILED: %s\n" n)
      failed;
    exit 1
  end
  else Printf.printf "all %d gates passed\n" (List.length gates)
