(* Policy-matrix benchmark: what the compartment layer costs.

   Per-compartment policy resolution happens once, at boot — after
   that every kernel fast-path decision reads the policy pinned in the
   process record, exactly as the old global-policy code read the
   single configuration field. This benchmark holds the layer to that
   claim on the quickstart workload, comparing a uniform spec against
   an explicit-compartment spec that resolves every server
   individually (same policy, plus restart budgets that never fire).

   Run with [dune exec bench/main.exe matrix]. Emits a JSON report
   (path from OSIRIS_MATRIX_BENCH_JSON, default BENCH_matrix.json) and
   exits non-zero when a gate fails:

     OSIRIS_BENCH_MS              per-variant wall budget in ms (default 200)
     OSIRIS_MATRIX_BENCH_JSON     output path (default BENCH_matrix.json)
     OSIRIS_MATRIX_MAX_OVERHEAD_PCT
                                  maximum tolerated wall-time overhead of
                                  the explicit-compartment run over the
                                  uniform run, in percent (default 2)

   Gates:
     matrix_same_trajectory   uniform and explicit-compartment runs of
                              the same policy are indistinguishable in
                              simulation: same halt, same virtual
                              cycles, same diagnostic stream
     matrix_deterministic     a genuinely mixed spec replays bit-
                              identically under a fixed seed
     matrix_overhead          explicit-compartment wall time stays
                              within the gate of the uniform path *)

let budget_ns () =
  let ms =
    match Sys.getenv_opt "OSIRIS_BENCH_MS" with
    | Some s -> (try float_of_string s with _ -> 200.)
    | None -> 200.
  in
  ms *. 1e6

let max_overhead_pct () =
  match Sys.getenv_opt "OSIRIS_MATRIX_MAX_OVERHEAD_PCT" with
  | Some s -> (try float_of_string s with _ -> 2.)
  | None -> 2.

let json_path () =
  match Sys.getenv_opt "OSIRIS_MATRIX_BENCH_JSON" with
  | Some p when p <> "" -> p
  | _ -> "BENCH_matrix.json"

let now_ns () = Int64.to_float (Monotonic_clock.now ())

let workload_seed = 42

(* The two specs under comparison: the same policy everywhere, spelled
   two ways. [explicit] routes every server through its own
   compartment (with an untriggered restart budget), so boot performs
   seven real resolutions and RS holds per-endpoint closures. *)
let uniform_spec = Sysconf.uniform Policy.enhanced

let explicit_spec =
  Sysconf.make ~default:Policy.enhanced
    (List.map
       (fun ep -> Compartment.make ~budget:8 ep Policy.enhanced)
       Sysconf.server_eps)

let run_quickstart conf =
  let sys = System.build ~seed:workload_seed conf in
  let halt = System.run sys ~root:Workgen.quickstart in
  (halt, Kernel.now (System.kernel sys), System.log_lines sys)

(* Best-of timing, interleaved (see obs_bench for the rationale): each
   round times every variant back to back so load drift cannot
   masquerade as overhead, and each variant keeps its best round. The
   gate is tight (2%) and a quickstart run lasts only ~10 ms, so a
   single GC pause inside a sample is worth several percent; many
   single-run samples give the best-of a clean, pause-free run of each
   variant, where batched samples would smear pauses across every
   sample. *)
let best_ns_interleaved variants =
  List.iter (fun (_, f) -> f ()) variants;
  (* warm *)
  let k = List.length variants in
  let best = Array.make k infinity in
  let budget = float_of_int k *. budget_ns () in
  let t0 = now_ns () in
  let rounds = ref 0 in
  while now_ns () -. t0 < budget || !rounds < 40 do
    List.iteri
      (fun i (_, f) ->
         let s = now_ns () in
         f ();
         let d = now_ns () -. s in
         if d < best.(i) then best.(i) <- d)
      variants;
    incr rounds
  done;
  (best, !rounds)

let json_bool b = if b then "true" else "false"

let run () =
  Printf.printf
    "\n================================================================\n\
     Compartment layer: per-compartment resolution vs the uniform path\n\
     ================================================================\n";
  (* ---- simulated trajectory ---- *)
  let u_halt, u_now, u_log = run_quickstart uniform_spec in
  let e_halt, e_now, e_log = run_quickstart explicit_spec in
  let same_trajectory = u_halt = e_halt && u_now = e_now && u_log = e_log in
  Printf.printf
    "trajectory: uniform %s @ %d cycles, explicit-compartments %s @ %d cycles\n\
    \  diagnostic streams %s (%d lines)\n"
    (Kernel.halt_to_string u_halt)
    u_now
    (Kernel.halt_to_string e_halt)
    e_now
    (if u_log = e_log then "identical" else "DIVERGED")
    (List.length u_log);
  (* ---- mixed-spec determinism ---- *)
  let mixed =
    Sysconf.with_budget
      (Sysconf.assign
         (Sysconf.assign uniform_spec Endpoint.ds Policy.stateless)
         Endpoint.vm Policy.pessimistic)
      Endpoint.ds 4
  in
  let m1_halt, m1_now, m1_log = run_quickstart mixed in
  let m2_halt, m2_now, m2_log = run_quickstart mixed in
  let deterministic = m1_halt = m2_halt && m1_now = m2_now && m1_log = m2_log in
  Printf.printf "mixed spec %s: %s @ %d cycles, replay %s\n"
    (Sysconf.name mixed)
    (Kernel.halt_to_string m1_halt)
    m1_now
    (if deterministic then "identical" else "DIVERGED");
  (* ---- wall time ---- *)
  let best, rounds =
    best_ns_interleaved
      [ ("uniform", fun () -> ignore (run_quickstart uniform_spec));
        ("explicit", fun () -> ignore (run_quickstart explicit_spec)) ]
  in
  let uniform_ns = best.(0) and explicit_ns = best.(1) in
  let overhead_pct = 100. *. (explicit_ns -. uniform_ns) /. uniform_ns in
  Printf.printf
    "quickstart wall time (best of %d interleaved rounds):\n\
    \  uniform spec            %.2f ms\n\
    \  explicit compartments   %.2f ms (%+.2f%%)\n"
    rounds (uniform_ns /. 1e6) (explicit_ns /. 1e6) overhead_pct;
  (* ---- gates ---- *)
  let threshold = max_overhead_pct () in
  let overhead_ok = overhead_pct < threshold in
  let gates =
    [ ("matrix_same_trajectory", same_trajectory);
      ("matrix_deterministic", deterministic);
      ("matrix_overhead", overhead_ok) ]
  in
  (* ---- JSON report ---- *)
  let buf = Buffer.create 1024 in
  let f = Printf.bprintf in
  f buf "{\n";
  f buf "  \"bench\": \"matrix\",\n";
  f buf "  \"budget_ms\": %.0f,\n" (budget_ns () /. 1e6);
  f buf "  \"workload_seed\": %d,\n" workload_seed;
  f buf "  \"rounds\": %d,\n" rounds;
  f buf
    "  \"trajectory\": {\"uniform_cycles\": %d, \"explicit_cycles\": %d,\n\
    \    \"log_lines\": %d, \"identical\": %s},\n"
    u_now e_now (List.length u_log)
    (json_bool same_trajectory);
  f buf "  \"mixed_spec\": {\"name\": \"%s\", \"deterministic\": %s},\n"
    (Sysconf.name mixed) (json_bool deterministic);
  f buf
    "  \"wall\": {\"uniform_ns\": %.0f, \"explicit_ns\": %.0f,\n\
    \    \"overhead_pct\": %.3f, \"max_overhead_pct\": %.1f},\n"
    uniform_ns explicit_ns overhead_pct threshold;
  f buf "  \"gates\": {%s}\n"
    (String.concat ", "
       (List.map (fun (n, ok) -> Printf.sprintf "\"%s\": %s" n (json_bool ok))
          gates));
  f buf "}\n";
  let path = json_path () in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path;
  let failed = List.filter (fun (_, ok) -> not ok) gates in
  if failed <> [] then begin
    List.iter
      (fun (n, _) -> Printf.eprintf "matrix bench: gate FAILED: %s\n" n)
      failed;
    exit 1
  end
  else Printf.printf "all %d gates passed\n" (List.length gates)
