(* Telemetry-engine benchmark: what vtime-sampled series cost on the
   kernel's clock-advance path, and whether campaign rollups stay
   deterministic under the domain pool.

   Run with [dune exec bench/main.exe timeseries]. Emits a JSON report
   (path from OSIRIS_TIMESERIES_BENCH_JSON, default
   BENCH_timeseries.json) and exits non-zero when a gate fails, so a
   small-budget run doubles as a CI smoke test:

     OSIRIS_BENCH_MS            per-variant wall budget in ms (default 200)
     OSIRIS_TIMESERIES_BENCH_JSON
                                output path (default BENCH_timeseries.json)
     OSIRIS_TIMESERIES_MAX_OVERHEAD_PCT
                                maximum tolerated telemetered-run
                                slowdown over the bare run, in percent
                                (default 3)

   Gates:
     sampling_zero_alloc     one Timeseries.sample tick over the full
                             standard kernel source set allocates
                             nothing (minor-word delta over 100k ticks)
     telemetry_overhead      the sampling engine's cost on a workgen
                             run — the run's worth of per-tick source
                             reads plus series setup, as a fraction of
                             the cycle-counted run — stays under the
                             gate. The reference is the cycle-counted
                             run because attaching telemetry turns
                             cycle counts on, and their cost (~2%
                             here) is the profiler's separately gated
                             feature (bench/profiler_bench.ml); this
                             gate isolates what the sampling engine
                             itself adds on top. The cost is computed
                             from a tight-loop measurement of
                             Timeseries.sample over the real frozen
                             source set (deterministic to a few ns)
                             rather than from the difference of two
                             whole-run timings: on a contended host
                             the run-to-run noise floor exceeds the
                             gate itself (compare calibration.ideal
                             in BENCH_parfan.json), so the end-to-end
                             deltas are reported as informational
                             context instead
     rollup_identity         the campaign rollup artifact
                             (Campaign.rollup_to_json, pool section
                             omitted) is byte-identical at jobs:1 and
                             jobs:4 *)

let budget_ns () =
  let ms =
    match Sys.getenv_opt "OSIRIS_BENCH_MS" with
    | Some s -> (try float_of_string s with _ -> 200.)
    | None -> 200.
  in
  ms *. 1e6

let max_overhead_pct () =
  match Sys.getenv_opt "OSIRIS_TIMESERIES_MAX_OVERHEAD_PCT" with
  | Some s -> (try float_of_string s with _ -> 3.)
  | None -> 3.

let json_path () =
  match Sys.getenv_opt "OSIRIS_TIMESERIES_BENCH_JSON" with
  | Some p when p <> "" -> p
  | _ -> "BENCH_timeseries.json"

let now_ns () = Int64.to_float (Monotonic_clock.now ())

let workload_seed = 42
let sample_interval = 4096

(* Ring capacity for the timed runs: the workgen run takes ~171
   samples at this interval, so 256 retains every one of them. (The
   4096 default is sized for long campaigns; on a 2.5 ms run its
   ~900 KB of ring preallocation would dominate the overhead
   measurement without buying anything.) *)
let ring_capacity = 256

(* The measured workload: the same generated mixed workload the obs
   bench uses — every server sees traffic. Systems are single-use, so
   each sample rebuilds one; the build cost is identical across
   variants (the telemetered variant additionally pays Timeseries
   ring preallocation, which is part of what "attaching telemetry"
   costs and is what the gate is about). *)

let run_plain () =
  let sys = System.build ~seed:workload_seed (Sysconf.uniform Policy.enhanced) in
  match System.run sys ~root:(Workgen.generate ~seed:workload_seed ()) with
  | Kernel.H_completed _ -> ()
  | halt ->
    failwith ("timeseries bench workload halted: " ^ Kernel.halt_to_string halt)

(* The overhead baseline: same run, cycle counts on, no sampler. *)
let run_cycle_counted () =
  let sys = System.build ~seed:workload_seed (Sysconf.uniform Policy.enhanced) in
  Kernel.enable_cycle_counts (System.kernel sys);
  match System.run sys ~root:(Workgen.generate ~seed:workload_seed ()) with
  | Kernel.H_completed _ -> ()
  | halt ->
    failwith ("timeseries bench workload halted: " ^ Kernel.halt_to_string halt)

let run_telemetered () =
  let ts = Timeseries.create ~interval:sample_interval ~capacity:ring_capacity () in
  let sys =
    System.build ~seed:workload_seed ~telemetry:ts
      (Sysconf.uniform Policy.enhanced)
  in
  match System.run sys ~root:(Workgen.generate ~seed:workload_seed ()) with
  | Kernel.H_completed _ -> ts
  | halt ->
    failwith ("timeseries bench workload halted: " ^ Kernel.halt_to_string halt)

(* Best-of timing, interleaved (see obs_bench.ml): every round times
   both variants back to back so load drift cannot masquerade as
   overhead; each variant keeps its best round. *)
let best_ns_interleaved variants =
  List.iter (fun (_, f) -> f ()) variants;
  (* warm *)
  let k = List.length variants in
  let best = Array.make k infinity in
  let budget = float_of_int k *. budget_ns () in
  let t0 = now_ns () in
  let rounds = ref 0 in
  while now_ns () -. t0 < budget || !rounds < 8 do
    List.iteri
      (fun i (_, f) ->
         let s = now_ns () in
         f ();
         let d = now_ns () -. s in
         if d < best.(i) then best.(i) <- d)
      variants;
    incr rounds
  done;
  (best, !rounds)

(* Exact minor-heap words allocated by [f] (deterministic simulation,
   so a single sample is exact). *)
let minor_words_of f =
  let w0 = Gc.minor_words () in
  f ();
  Gc.minor_words () -. w0

(* ------------------------------------------------------------------ *)

(* Allocation probe: run the workload once with telemetry attached so
   the source set is the real frozen kernel set (counters, run queue,
   per-server inbox/alive, per-phase cycles), then drive the sampling
   hot path directly — 100k manual ticks past the end of the run.
   Ring wraparound is exercised (100k >> capacity), delta sources keep
   updating their last-value slots, and none of it may allocate. *)
let sampling_alloc_probe () =
  let ts = run_telemetered () in
  let n_sources = Timeseries.n_sources ts in
  let run_samples = Timeseries.samples_taken ts in
  let base =
    Timeseries.time_at ts (Timeseries.retained ts - 1) + sample_interval
  in
  let ops = 100_000 in
  let storm () =
    for i = 0 to ops - 1 do
      Timeseries.sample ts (base + (i * sample_interval))
    done
  in
  (ops, n_sources, run_samples, minor_words_of storm, ts, base)

(* Per-tick cost of the sampling hot path on the same frozen source
   set, best of a fixed number of tight-loop repetitions. The loop is
   deterministic work over preallocated arrays, so its best-of is
   stable to a few ns where whole-run deltas on this class of host
   are not. *)
let per_sample_probe ts base =
  let ops = 100_000 in
  let loop () =
    for i = 0 to ops - 1 do
      Timeseries.sample ts (base + (i * sample_interval))
    done
  in
  loop ();
  (* warm *)
  let best = ref infinity in
  for _ = 1 to 12 do
    let s = now_ns () in
    loop ();
    let d = now_ns () -. s in
    if d < !best then best := d
  done;
  !best /. float_of_int ops

(* One-time series setup cost a telemetered run pays before its first
   tick: create, register [n] sources, freeze the flat arrays and
   preallocate the rings (first sample). *)
let setup_probe n =
  let mk () =
    let ts =
      Timeseries.create ~interval:sample_interval ~capacity:ring_capacity ()
    in
    for i = 0 to n - 1 do
      Timeseries.add_source ts
        ~name:("setup.src" ^ string_of_int i)
        ~kind:(if i land 1 = 0 then Timeseries.Gauge else Timeseries.Delta)
        (fun () -> i)
    done;
    Timeseries.sample ts sample_interval
  in
  mk ();
  (* warm *)
  let best = ref infinity in
  for _ = 1 to 16 do
    let s = now_ns () in
    mk ();
    let d = now_ns () -. s in
    if d < !best then best := d
  done;
  !best

(* Rollup determinism probe: a small sampled fail-stop campaign under
   two specs, fanned out at jobs:1 (the sequential oracle) and jobs:4
   (more workers than this container has cores — maximal reordering
   pressure). The artifact must match byte for byte; only the optional
   pool section, omitted here, may vary. *)
let rollup_probe () =
  let confs =
    [ Sysconf.uniform Policy.enhanced; Sysconf.uniform Policy.pessimistic ]
  in
  let artifact jobs =
    let _rows, ro =
      Campaign.survivability_matrix_rollup ~sample:4 ~jobs Edfi.Fail_stop confs
    in
    Campaign.rollup_to_json ro
  in
  let a1 = artifact 1 in
  let a4 = artifact 4 in
  (a1, a4)

let json_bool b = if b then "true" else "false"

let run () =
  Printf.printf
    "\n================================================================\n\
     Telemetry engine: sampling allocation, attach overhead, rollups\n\
     ================================================================\n";
  (* ---- allocation ---- *)
  let ops, n_sources, run_samples, words, ts, probe_base =
    sampling_alloc_probe ()
  in
  Printf.printf
    "sampling storm: %d ticks x %d sources -> %.0f minor words allocated\n"
    ops n_sources words;
  (* ---- sampling cost (the gated quantity) ---- *)
  let ps_ns = per_sample_probe ts probe_base in
  let setup_ns = setup_probe n_sources in
  (* ---- wall time ---- *)
  let best, rounds =
    best_ns_interleaved
      [ ("bare", fun () -> run_plain ());
        ("cycle-counted", fun () -> run_cycle_counted ());
        ("telemetered", fun () -> ignore (run_telemetered () : Timeseries.t)) ]
  in
  let bare_ns = best.(0) and base_ns = best.(1) and tele_ns = best.(2) in
  let model_ns = setup_ns +. (float_of_int run_samples *. ps_ns) in
  let overhead_pct = 100. *. model_ns /. base_ns in
  let e2e_pct = 100. *. (tele_ns -. base_ns) /. base_ns in
  Printf.printf
    "sampling cost: %.1f ns/tick x %d ticks + %.3f ms setup = %.3f ms\n\
    \  = %.2f%% of the cycle-counted run (interval %d, %d sources)\n"
    ps_ns run_samples (setup_ns /. 1e6) (model_ns /. 1e6) overhead_pct
    sample_interval n_sources;
  Printf.printf
    "whole-run wall time (informational; best of %d interleaved rounds):\n\
    \  bare               %.2f ms\n\
    \  cycle counts only  %.2f ms (%+.2f%% vs bare; profiler_bench's gate)\n\
    \  telemetry attached %.2f ms (%+.2f%% vs cycle-counted; noise floor\n\
    \                     on a contended host exceeds the gate, hence the\n\
    \                     tight-loop gate above)\n"
    rounds (bare_ns /. 1e6) (base_ns /. 1e6)
    (100. *. (base_ns -. bare_ns) /. bare_ns)
    (tele_ns /. 1e6) e2e_pct;
  (* ---- rollup identity ---- *)
  let a1, a4 = rollup_probe () in
  let identical = String.equal a1 a4 in
  Printf.printf
    "campaign rollup artifact: %d bytes at jobs:1, %d bytes at jobs:4 — %s\n"
    (String.length a1) (String.length a4)
    (if identical then "byte-identical" else "DIFFER");
  (* ---- gates ---- *)
  let threshold = max_overhead_pct () in
  (* 64-word slack: Gc.minor_words itself and the probe closure may
     box a float or two; the 100k ticks themselves must add nothing. *)
  let alloc_ok = words < 64. in
  let overhead_ok = overhead_pct < threshold in
  let gates =
    [ ("sampling_zero_alloc", alloc_ok);
      ("telemetry_overhead", overhead_ok);
      ("rollup_identity", identical) ]
  in
  (* ---- JSON report ---- *)
  let buf = Buffer.create 1024 in
  let f = Printf.bprintf in
  f buf "{\n";
  f buf "  \"bench\": \"timeseries\",\n";
  f buf "  \"budget_ms\": %.0f,\n" (budget_ns () /. 1e6);
  f buf "  \"workload_seed\": %d,\n" workload_seed;
  f buf
    "  \"sampling\": {\"ticks\": %d, \"sources\": %d, \"interval\": %d,\n\
    \    \"minor_words\": %.0f},\n"
    ops n_sources sample_interval words;
  f buf
    "  \"cost\": {\"per_sample_ns\": %.1f, \"setup_ns\": %.0f,\n\
    \    \"samples_per_run\": %d, \"overhead_pct\": %.3f,\n\
    \    \"max_overhead_pct\": %.1f},\n"
    ps_ns setup_ns run_samples overhead_pct threshold;
  f buf
    "  \"wall\": {\"bare_ns\": %.0f, \"cycle_counted_ns\": %.0f,\n\
    \    \"telemetered_ns\": %.0f, \"end_to_end_pct\": %.3f},\n"
    bare_ns base_ns tele_ns e2e_pct;
  f buf
    "  \"rollup\": {\"sample\": 4, \"jobs_a\": 1, \"jobs_b\": 4,\n\
    \    \"bytes\": %d, \"identical\": %s},\n"
    (String.length a1) (json_bool identical);
  f buf "  \"gates\": {%s}\n"
    (String.concat ", "
       (List.map (fun (n, ok) -> Printf.sprintf "\"%s\": %s" n (json_bool ok))
          gates));
  f buf "}\n";
  let path = json_path () in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path;
  let failed = List.filter (fun (_, ok) -> not ok) gates in
  if failed <> [] then begin
    List.iter
      (fun (n, _) ->
         Printf.eprintf "timeseries bench: gate FAILED: %s\n" n)
      failed;
    exit 1
  end
  else Printf.printf "all %d gates passed\n" (List.length gates)
