(* Critical-path engine benchmark: what per-request cycle charging
   costs on the kernel's clock-advance path, and whether the
   attribution pipeline keeps its exactness promises.

   Run with [dune exec bench/main.exe critpath]. Emits a JSON report
   (path from OSIRIS_CRITPATH_BENCH_JSON, default BENCH_critpath.json)
   and exits non-zero when a gate fails:

     OSIRIS_BENCH_MS            per-variant wall budget in ms (default 200)
     OSIRIS_CRITPATH_BENCH_JSON output path (default BENCH_critpath.json)
     OSIRIS_CRITPATH_MAX_OVERHEAD_PCT
                                maximum tolerated request-charging
                                slowdown over cycle counts alone, in
                                percent (default 3)

   Gates:
     charging_overhead       enabling per-request charging on top of
                             the per-slot cycle counters (the PR-4
                             profiler substrate) costs <3% wall time
                             on a workgen run — the charging path is
                             two array reads and one write per clock
                             advance, no hashing, no allocation
     conservation            every analyzed request's buckets sum to
                             exactly its end-to-end latency, and the
                             kernel's per-root phase rows sum to the
                             global phase totals — zero tolerance on
                             both
     journal_parity          attributing the decoded journal of a run
                             yields a byte-identical rendering to
                             attributing the live event stream
     blame_identity          the per-spec p99-blame rollup is
                             byte-identical across re-runs and across
                             domain-pool worker counts (jobs:1 vs
                             jobs:4, submission-order merge) *)

let budget_ns () =
  let ms =
    match Sys.getenv_opt "OSIRIS_BENCH_MS" with
    | Some s -> (try float_of_string s with _ -> 200.)
    | None -> 200.
  in
  ms *. 1e6

let max_overhead_pct () =
  match Sys.getenv_opt "OSIRIS_CRITPATH_MAX_OVERHEAD_PCT" with
  | Some s -> (try float_of_string s with _ -> 3.)
  | None -> 3.

let json_path () =
  match Sys.getenv_opt "OSIRIS_CRITPATH_BENCH_JSON" with
  | Some p when p <> "" -> p
  | _ -> "BENCH_critpath.json"

let now_ns () = Int64.to_float (Monotonic_clock.now ())

let workload_seed = 42

(* ---- overhead probe ---------------------------------------------- *)

let run_counted ~requests () =
  let sys =
    System.build ~seed:workload_seed (Sysconf.uniform Policy.enhanced)
  in
  let k = System.kernel sys in
  Kernel.enable_cycle_counts k;
  if requests then Kernel.enable_request_counts k;
  match System.run sys ~root:(Workgen.generate ~seed:workload_seed ()) with
  | Kernel.H_completed _ -> ()
  | halt ->
    failwith ("critpath bench workload halted: " ^ Kernel.halt_to_string halt)

(* Interleaved best-of (see obs_bench.ml): both variants run back to
   back each round so host load drift cannot masquerade as overhead. *)
let best_ns_interleaved variants =
  List.iter (fun (_, f) -> f ()) variants;
  (* warm *)
  let k = List.length variants in
  let best = Array.make k infinity in
  let budget = float_of_int k *. budget_ns () in
  let t0 = now_ns () in
  let rounds = ref 0 in
  while now_ns () -. t0 < budget || !rounds < 8 do
    List.iteri
      (fun i (_, f) ->
         let s = now_ns () in
         f ();
         let d = now_ns () -. s in
         if d < best.(i) then best.(i) <- d)
      variants;
    incr rounds
  done;
  (best, !rounds)

(* ---- attribution probes ------------------------------------------ *)

let collect_events ~spec ~crash =
  let header =
    match
      Flight.make_header ~seed:workload_seed ~spec ~workload:"quickstart"
        ~crash ()
    with
    | Ok h -> h
    | Error m -> failwith m
  in
  let c = Obs_collector.create () in
  let kr = ref None in
  ignore
    (Flight.exec
       ~prepare:(fun sys ->
           let k = System.kernel sys in
           Kernel.enable_cycle_counts k;
           Kernel.enable_request_counts k;
           kr := Some k)
       header
       ~hook:(Obs_collector.record c));
  (header, Obs_collector.events c, Option.get !kr)

(* Canonical rendering used by the parity and identity gates — every
   field of every breakdown, in analysis order. *)
let render_result (r : Critpath.result) =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "incomplete=%d\n" r.Critpath.cr_incomplete;
  List.iter
    (fun (b : Critpath.breakdown) ->
       Printf.bprintf buf
         "ep=%d rid=%d inj=%b a=%d x=%d own=%d q=%d svc=[%s] ck=%d rb=%d \
          rs=%d col=%d path=[%s]\n"
         b.Critpath.cp_ep b.Critpath.cp_rid b.Critpath.cp_injected
         b.Critpath.cp_arrival b.Critpath.cp_exit b.Critpath.cp_own
         b.Critpath.cp_queue
         (String.concat ";"
            (List.map
               (fun (ep, c) -> Printf.sprintf "%d:%d" ep c)
               b.Critpath.cp_service))
         b.Critpath.cp_checkpoint b.Critpath.cp_rollback
         b.Critpath.cp_restart b.Critpath.cp_collateral
         (String.concat ";" (List.map string_of_int b.Critpath.cp_path)))
    r.Critpath.cr_requests;
  Buffer.contents buf

let render_profile = function
  | None -> "no-profile\n"
  | Some tp ->
    let buf = Buffer.create 256 in
    Printf.bprintf buf "n=%d p50=%d p99=%d\n" tp.Tailprof.tp_n
      tp.Tailprof.tp_p50 tp.Tailprof.tp_p99;
    List.iter
      (fun (bk, delta) ->
         let bi = Tailprof.bucket_index bk in
         Printf.bprintf buf "%s lo=%d hi=%d d=%d\n"
           (Tailprof.bucket_name bk)
           tp.Tailprof.tp_low.Tailprof.co_mean10.(bi)
           tp.Tailprof.tp_high.Tailprof.co_mean10.(bi)
           delta)
      tp.Tailprof.tp_blame;
    Buffer.contents buf

let blame_specs = [ "enhanced"; "pessimistic"; "enhanced,ds=stateless" ]

let blame_rollup ~jobs =
  String.concat "--\n"
    (Parfan.map ~jobs
       (fun spec ->
          let _, events, _ = collect_events ~spec ~crash:"ds" in
          let r = Critpath.analyze events in
          render_profile (Tailprof.profile r.Critpath.cr_requests))
       blame_specs)

let json_bool b = if b then "true" else "false"

let run () =
  Printf.printf
    "\n================================================================\n\
     Critical-path engine: charging overhead, conservation, parity\n\
     ================================================================\n";
  (* ---- charging overhead ---- *)
  let best, rounds =
    best_ns_interleaved
      [ ("cycle counts", run_counted ~requests:false);
        ("+ request charging", run_counted ~requests:true) ]
  in
  let base_ns = best.(0) and req_ns = best.(1) in
  let overhead_pct = 100. *. (req_ns -. base_ns) /. base_ns in
  Printf.printf
    "workgen run (best of %d interleaved rounds):\n\
    \  cycle counts alone     %.2f ms\n\
    \  + request charging     %.2f ms (%+.2f%%)\n"
    rounds (base_ns /. 1e6) (req_ns /. 1e6) overhead_pct;
  (* ---- conservation ---- *)
  let _, events, kernel = collect_events ~spec:"enhanced" ~crash:"ds" in
  let result = Critpath.analyze events in
  let n_requests = List.length result.Critpath.cr_requests in
  let event_conserved =
    List.for_all
      (fun b -> Critpath.breakdown_sum b = Critpath.total b)
      result.Critpath.cr_requests
  in
  let rows = Kernel.request_rows kernel in
  let sys_row = Kernel.system_request_row kernel in
  let kernel_conserved =
    List.for_all
      (fun ph ->
         let pi = Kernel.phase_index ph in
         List.fold_left (fun acc (_, _, row) -> acc + row.(pi)) sys_row.(pi)
           rows
         = Kernel.total_phase_cycles kernel ph)
      Kernel.all_phases
  in
  Printf.printf
    "conservation: %d requests, buckets %s, kernel charging (%d roots) %s\n"
    n_requests
    (if event_conserved then "exact" else "VIOLATED")
    (Kernel.request_count kernel)
    (if kernel_conserved then "exact" else "VIOLATED");
  (* ---- journal parity ---- *)
  let header, events2, _ = collect_events ~spec:"enhanced" ~crash:"ds" in
  let live_render = render_result (Critpath.analyze events2) in
  let parity =
    match Journal.read_string (Journal.of_events header events2) with
    | Error m -> failwith ("critpath bench: journal decode: " ^ m)
    | Ok (_, decoded) ->
      String.equal live_render
        (render_result (Critpath.analyze (Array.to_list decoded)))
  in
  Printf.printf "journal parity: attribution of decoded journal %s\n"
    (if parity then "byte-identical to live" else "DIFFERS");
  (* ---- blame identity ---- *)
  let b1 = blame_rollup ~jobs:1 in
  let b1' = blame_rollup ~jobs:1 in
  let b4 = blame_rollup ~jobs:4 in
  let blame_identical = String.equal b1 b1' && String.equal b1 b4 in
  Printf.printf
    "blame rollup (%d specs): re-run %s, jobs:1 vs jobs:4 %s\n"
    (List.length blame_specs)
    (if String.equal b1 b1' then "identical" else "DIFFERS")
    (if String.equal b1 b4 then "identical" else "DIFFERS");
  (* ---- gates ---- *)
  let threshold = max_overhead_pct () in
  let overhead_ok = overhead_pct < threshold in
  let gates =
    [ ("charging_overhead", overhead_ok);
      ("conservation", event_conserved && kernel_conserved && n_requests > 0);
      ("journal_parity", parity);
      ("blame_identity", blame_identical) ]
  in
  (* ---- JSON report ---- *)
  let buf = Buffer.create 1024 in
  let f = Printf.bprintf in
  f buf "{\n";
  f buf "  \"bench\": \"critpath\",\n";
  f buf "  \"budget_ms\": %.0f,\n" (budget_ns () /. 1e6);
  f buf "  \"workload_seed\": %d,\n" workload_seed;
  f buf
    "  \"charging\": {\"cycle_counts_ns\": %.0f, \"request_counts_ns\": \
     %.0f,\n\
    \    \"overhead_pct\": %.3f, \"max_overhead_pct\": %.1f},\n"
    base_ns req_ns overhead_pct threshold;
  f buf
    "  \"conservation\": {\"requests\": %d, \"event_exact\": %s, \
     \"kernel_exact\": %s},\n"
    n_requests (json_bool event_conserved) (json_bool kernel_conserved);
  f buf "  \"journal_parity\": %s,\n" (json_bool parity);
  f buf
    "  \"blame\": {\"specs\": %d, \"bytes\": %d, \"identical\": %s},\n"
    (List.length blame_specs) (String.length b1) (json_bool blame_identical);
  f buf "  \"gates\": {%s}\n"
    (String.concat ", "
       (List.map (fun (n, ok) -> Printf.sprintf "\"%s\": %s" n (json_bool ok))
          gates));
  f buf "}\n";
  let path = json_path () in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path;
  let failed = List.filter (fun (_, ok) -> not ok) gates in
  if failed <> [] then begin
    List.iter
      (fun (n, _) -> Printf.eprintf "critpath bench: gate FAILED: %s\n" n)
      failed;
    exit 1
  end
  else Printf.printf "all %d gates passed\n" (List.length gates)
