(* Flight-recorder benchmark: what journaling the full event stream
   costs, and whether the codec holds its promises.

   Run with [dune exec bench/main.exe journal]. Emits a JSON report
   (path from OSIRIS_JOURNAL_BENCH_JSON, default BENCH_journal.json)
   and exits non-zero when a gate fails:

     OSIRIS_BENCH_MS              per-variant wall budget in ms (default 200)
     OSIRIS_JOURNAL_BENCH_JSON    output path (default BENCH_journal.json)
     OSIRIS_JOURNAL_MAX_OVERHEAD_PCT
                                  maximum tolerated attached-recorder
                                  slowdown over the unhooked run, in
                                  percent (default 5 — the ISSUE bound)

   Gates:
     encode_zero_alloc   steady-state event capture+encode to a file
                         sink allocates nothing (minor-word delta over
                         130k writes)
     recording_overhead  in-run wall-time overhead of an attached
                         recorder (vs the same run unhooked) stays
                         under the gate; the close-time encode+flush
                         sweep is reported separately as finalize
     round_trip          decode(encode(stream)) is structurally equal
                         to the hooked stream, header included
     bytes_per_event     on-disk framing stays compact (< 24 bytes per
                         event averaged over a crashy mixed workload) *)

let budget_ns () =
  let ms =
    match Sys.getenv_opt "OSIRIS_BENCH_MS" with
    | Some s -> (try float_of_string s with _ -> 200.)
    | None -> 200.
  in
  ms *. 1e6

let max_overhead_pct () =
  match Sys.getenv_opt "OSIRIS_JOURNAL_MAX_OVERHEAD_PCT" with
  | Some s -> (try float_of_string s with _ -> 5.)
  | None -> 5.

let json_path () =
  match Sys.getenv_opt "OSIRIS_JOURNAL_BENCH_JSON" with
  | Some p when p <> "" -> p
  | _ -> "BENCH_journal.json"

let now_ns () = Int64.to_float (Monotonic_clock.now ())

let workload_seed = 42

let header ~workload ~crash =
  match Flight.make_header ~seed:workload_seed ~workload ~crash () with
  | Ok h -> h
  | Error m -> failwith ("journal bench: " ^ m)

(* Wall-time rungs run two workloads. The gate holds on the generated
   mixed workload (workgen) — the same standard the tracer's 5% gate
   in obs_bench is held to. The regression-suite driver is reported
   alongside as a stress figure: at ~28k events over ~20ms it is the
   densest event stream the simulator can produce (~1.4 events/us —
   every operation is an interpreted IPC), several times denser than
   any evaluation workload, so it prices the recorder's per-event cost
   rather than its overhead on a representative run. *)
let run_once ?event_hook ?journal ~root () =
  let sys =
    System.build ?event_hook ?journal ~seed:workload_seed
      (Sysconf.uniform Policy.enhanced)
  in
  match System.run sys ~root with
  | Kernel.H_completed _ -> ()
  | halt ->
    failwith ("journal bench workload halted: " ^ Kernel.halt_to_string halt)

(* Interleaved best-of, same rationale as obs_bench: round-robin the
   variants so load drift cannot masquerade as recording overhead.
   Each variant times itself (returns elapsed ns) so a rung can keep
   setup and teardown — writer creation, the close-time encode sweep —
   out of its measured window and account for them separately. The
   within a round the visiting order is a stride permutation that
   changes every round, so no variant has a fixed predecessor: a
   recorder rung allocates (and drops) multi-MB capture buffers, and
   under a fixed cyclic order that GC debt would be billed to
   whichever variant always ran next. *)
let best_ns_interleaved variants =
  let variants = Array.of_list variants in
  Array.iter (fun (_, f) -> ignore (f ())) variants;
  let k = Array.length variants in
  let best = Array.make k infinity in
  let budget = float_of_int k *. budget_ns () in
  let t0 = now_ns () in
  let rounds = ref 0 in
  while now_ns () -. t0 < budget || !rounds < 8 do
    (* any stride in 1..k-1 is coprime with k when k is prime (it is:
       5 rungs); offset by the round so the starting slot moves too *)
    let stride = 1 + (!rounds mod (k - 1)) in
    for j = 0 to k - 1 do
      let i = ((j * stride) + !rounds) mod k in
      let _, f = variants.(i) in
      let d = f () in
      if d < best.(i) then best.(i) <- d
    done;
    incr rounds
  done;
  (best, !rounds)

let minor_words_of f =
  let w0 = Gc.minor_words () in
  f ();
  Gc.minor_words () -. w0

(* ------------------------------------------------------------------ *)

(* One synthetic event per constructor — every encoder path is in the
   storm, including the string-carrying ones. *)
let sample_events =
  [ Kernel.E_msg
      { time = 1_000_000; src = Endpoint.pm; dst = Endpoint.vfs;
        tag = Message.Tag.T_open; call = true; rid = 7; parent = 3;
        cls = Seep.State_modifying };
    Kernel.E_reply
      { time = 1_000_010; src = Endpoint.vfs; dst = Endpoint.pm;
        tag = Message.Tag.T_open; rid = 7 };
    Kernel.E_window_open { time = 2; ep = Endpoint.ds; rid = 9 };
    Kernel.E_window_close { time = 3; ep = Endpoint.ds; rid = 9; policy = false };
    Kernel.E_checkpoint { time = 4; ep = Endpoint.vm; rid = 11; cycles = 900 };
    Kernel.E_store_logged { time = 5; ep = Endpoint.vm; rid = 11; bytes = 64 };
    Kernel.E_kcall { time = 6; ep = Endpoint.rs; rid = 12; kc = "mk_clone" };
    Kernel.E_crash
      { time = 7; ep = Endpoint.ds; reason = "injected"; window_open = true;
        rid = 13; policy = "enhanced" };
    Kernel.E_hang_detected { time = 8; ep = Endpoint.vm };
    Kernel.E_rollback_begin { time = 9; ep = Endpoint.ds; rid = 13 };
    Kernel.E_rollback_end { time = 10; ep = Endpoint.ds; rid = 13; bytes = 56 };
    Kernel.E_restart { time = 11; ep = Endpoint.ds; rid = 13; policy = "enhanced" };
    Kernel.E_halt { time = 12; halt = Kernel.H_completed 0 } ]

let encode_alloc_probe () =
  let path = Filename.temp_file "osiris_journal" ".bin" in
  let w = Journal.to_file ~path (header ~workload:"suite" ~crash:"none") in
  let reps = 10_000 in
  (* Pre-bound so the loop body itself allocates nothing (a per-rep
     [List.iter (Journal.write w)] would box a closure every rep). *)
  let write_ev ev = Journal.write w ev in
  let storm () =
    for _ = 1 to reps do
      List.iter write_ev sample_events
    done
  in
  storm ();
  (* warm: scratch grown to its steady size *)
  let words = minor_words_of storm in
  let best = ref infinity in
  for _ = 1 to 5 do
    let t0 = now_ns () in
    storm ();
    let d = now_ns () -. t0 in
    if d < !best then best := d
  done;
  Journal.close w;
  Sys.remove path;
  let n = reps * List.length sample_events in
  (n, words, !best /. float_of_int n)

let round_trip_probe () =
  let h = header ~workload:"workgen" ~crash:"ds" in
  let w = Journal.to_memory h in
  let seen = ref [] in
  let sys =
    System.build ~seed:workload_seed ~journal:w
      ~event_hook:(fun ev -> seen := ev :: !seen)
      (Sysconf.uniform Policy.enhanced)
  in
  Flight.arm_crash (System.kernel sys) (Flight.server_of_name "ds");
  (match System.run sys ~root:(Workgen.generate ~seed:workload_seed ()) with
   | Kernel.H_completed _ -> ()
   | halt -> failwith ("round trip halted: " ^ Kernel.halt_to_string halt));
  Journal.close w;
  let recorded = Array.of_list (List.rev !seen) in
  let bytes = Journal.bytes_written w in
  let records = Journal.records_written w in
  match Journal.read_string (Journal.contents w) with
  | Error m -> failwith ("round trip decode failed: " ^ m)
  | Ok (h', decoded) -> (h = h' && decoded = recorded, records, bytes)

let json_bool b = if b then "true" else "false"

let run () =
  Printf.printf
    "\n================================================================\n\
     Flight recorder: journal encode cost, overhead, and fidelity\n\
     ================================================================\n";
  (* ---- allocation ---- *)
  let encode_ops, encode_words, encode_ns = encode_alloc_probe () in
  Printf.printf
    "encode storm: %d events -> %.0f minor words allocated, %.0f ns/event\n"
    encode_ops encode_words encode_ns;
  (* ---- fidelity / compactness ---- *)
  let fidelity_ok, rt_records, rt_bytes = round_trip_probe () in
  let bytes_per_event = float_of_int rt_bytes /. float_of_int (max 1 rt_records) in
  Printf.printf
    "round trip: %d records, %d bytes (%.1f bytes/event) — decode %s\n"
    rt_records rt_bytes bytes_per_event
    (if fidelity_ok then "identical" else "MISMATCH");
  (* ---- wall time ---- *)
  let path = Filename.temp_file "osiris_journal" ".bin" in
  (* Headers built once outside the timed region: resolving one runs
     the workload generator, which is not part of recording overhead. *)
  let h_wg = header ~workload:"workgen" ~crash:"none" in
  let h_suite = header ~workload:"suite" ~crash:"none" in
  (* Rungs, all interleaved in one round-robin: unhooked (no events
     observed at all), a no-op event hook (events constructed and
     dispatched, written nowhere — the observability substrate's cost,
     reported for context and gated by obs_bench), and the recorder.
     A recorder rung times the run with the journal attached — the
     writer captures raw scalars per event and defers varint encoding,
     CRCs and the file flush to [Journal.close], measured separately
     as "finalize". The gate holds the in-run slowdown (recording vs
     unhooked, workgen workload) under the bound: that is what
     recording costs while the system is live. Finalize is a one-time
     post-run cost (like writing out a core dump), reported but not
     gated; the suite-driver pair prices the worst case and is
     likewise reported, not gated. *)
  let fin_wg = ref infinity and fin_suite = ref infinity in
  let timed f =
    let t0 = now_ns () in
    f ();
    now_ns () -. t0
  in
  (* Generated once, shared by every rung and round: programs are pure
     values, and generation time is not recording overhead. Scaled to
     5x the default action count so the rung runs long enough (~13 ms)
     that per-run jitter cannot swamp a sub-5% effect. *)
  let wg_prog =
    Workgen.generate
      ~spec:{ Workgen.g_actions = 60; g_fork_depth = 2 }
      ~seed:workload_seed ()
  in
  let recording_rung h root fin () =
    let w = Journal.to_file ~path h in
    let d = timed (fun () -> run_once ~journal:w ~root ()) in
    let f = timed (fun () -> Journal.close w) in
    if f < !fin then fin := f;
    d
  in
  let best, rounds =
    best_ns_interleaved
      [ ("wg unhooked", fun () -> timed (fun () -> run_once ~root:wg_prog ()));
        ("wg noop hook",
         fun () -> timed (fun () -> run_once ~event_hook:ignore ~root:wg_prog ()));
        ("wg recording", fun () -> recording_rung h_wg wg_prog fin_wg ());
        ("suite unhooked",
         fun () -> timed (fun () -> run_once ~root:Testsuite.driver ()));
        ("suite recording",
         fun () -> recording_rung h_suite Testsuite.driver fin_suite ()) ]
  in
  Sys.remove path;
  let base_ns = best.(0) and hook_ns = best.(1) and journal_ns = best.(2) in
  let sbase_ns = best.(3) and sjournal_ns = best.(4) in
  let raw_pct = 100. *. (journal_ns -. base_ns) /. base_ns in
  let marginal_pct = 100. *. (journal_ns -. hook_ns) /. hook_ns in
  let stress_pct = 100. *. (sjournal_ns -. sbase_ns) /. sbase_ns in
  (* ~28k events in the suite run: per-event in-run capture cost. *)
  let stress_ns_per_event = (sjournal_ns -. sbase_ns) /. 28_000. in
  Printf.printf
    "whole-run wall time (best of %d interleaved rounds):\n\
    \  workgen unhooked           %.2f ms\n\
    \  workgen no-op hook         %.2f ms (%+.2f%% construction+dispatch)\n\
    \  workgen recording attached %.2f ms (%+.2f%% vs unhooked) <- gate\n\
    \  workgen finalize (close)   %.2f ms encode+flush sweep after the run\n\
     stress (IPC-dense suite driver, ~1.4 events/us — reported, not gated):\n\
    \  unhooked %.2f ms, recording %.2f ms (%+.2f%%, ~%.0f ns/event\n\
    \  in-run capture), finalize %.2f ms\n"
    rounds (base_ns /. 1e6) (hook_ns /. 1e6)
    (100. *. (hook_ns -. base_ns) /. base_ns)
    (journal_ns /. 1e6) raw_pct (!fin_wg /. 1e6)
    (sbase_ns /. 1e6) (sjournal_ns /. 1e6) stress_pct stress_ns_per_event
    (!fin_suite /. 1e6);
  (* ---- gates ---- *)
  let threshold = max_overhead_pct () in
  let overhead_pct = raw_pct in
  (* 64-word slack: Gc.minor_words itself may box a float; the 130k
     event writes themselves must add nothing. *)
  let encode_ok = encode_words < 64. in
  let overhead_ok = overhead_pct < threshold in
  let bytes_ok = bytes_per_event < 24. in
  let gates =
    [ ("encode_zero_alloc", encode_ok);
      ("recording_overhead", overhead_ok);
      ("round_trip", fidelity_ok);
      ("bytes_per_event", bytes_ok) ]
  in
  (* ---- JSON report ---- *)
  let buf = Buffer.create 1024 in
  let f = Printf.bprintf in
  f buf "{\n";
  f buf "  \"bench\": \"journal\",\n";
  f buf "  \"budget_ms\": %.0f,\n" (budget_ns () /. 1e6);
  f buf "  \"workload_seed\": %d,\n" workload_seed;
  f buf "  \"encode_storm\": {\"events\": %d, \"minor_words\": %.0f},\n"
    encode_ops encode_words;
  f buf
    "  \"journal\": {\"records\": %d, \"bytes\": %d, \"bytes_per_event\": %.2f,\n\
    \    \"bytes_per_1M_events\": %.0f},\n"
    rt_records rt_bytes bytes_per_event (bytes_per_event *. 1e6);
  f buf
    "  \"wall\": {\"unhooked_ns\": %.0f, \"hook_ns\": %.0f, \"journal_ns\": %.0f,\n\
    \    \"finalize_ns\": %.0f, \"overhead_pct\": %.3f,\n\
    \    \"overhead_vs_hook_pct\": %.3f, \"max_overhead_pct\": %.1f},\n"
    base_ns hook_ns journal_ns !fin_wg overhead_pct marginal_pct threshold;
  f buf
    "  \"stress\": {\"unhooked_ns\": %.0f, \"journal_ns\": %.0f,\n\
    \    \"finalize_ns\": %.0f, \"overhead_pct\": %.3f,\n\
    \    \"ns_per_event\": %.1f},\n"
    sbase_ns sjournal_ns !fin_suite stress_pct stress_ns_per_event;
  (* The stress overhead (~11% on the reference host) is an un-gated
     trend figure from a wall-clock ratio on the densest event stream
     we can produce — inherently noisy run to run. Declare a wide
     per-path tolerance so bench_diff surfaces only real regressions
     instead of flapping on every CI host wobble. *)
  f buf "  \"tolerances\": {\"stress.overhead_pct\": 50.0},\n";
  f buf "  \"gates\": {%s}\n"
    (String.concat ", "
       (List.map (fun (n, ok) -> Printf.sprintf "\"%s\": %s" n (json_bool ok))
          gates));
  f buf "}\n";
  let p = json_path () in
  let oc = open_out p in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" p;
  let failed = List.filter (fun (_, ok) -> not ok) gates in
  if failed <> [] then begin
    List.iter
      (fun (n, _) -> Printf.eprintf "journal bench: gate FAILED: %s\n" n)
      failed;
    exit 1
  end
  else Printf.printf "all %d gates passed\n" (List.length gates)
