(* Parallel campaign engine benchmark: what the Parfan domain pool
   buys, and proof it changes nothing but wall time.

   The full survivability campaign (Tables II/III shape: every policy
   x every profiled fault site, one isolated kernel per run) is
   executed twice — sequentially (jobs:1, the oracle) and on the pool
   — and the result rows must be structurally byte-identical. Wall
   times give the speedup. Because hosts differ wildly in how well
   OCaml 5 domains scale on allocation-heavy work (stop-the-world
   minor collections; container CPU quotas; hyperthread siblings), the
   speedup gate is calibrated: a raw Domain.spawn static partition of
   a synthetic allocation-heavy probe — no queue, no pool — measures
   what this host can do at best, and the pool is held to a fraction
   of that, capped at the absolute target. On a real 4-core machine
   the calibration saturates and the gate is the paper-style >= 3x at
   4 domains; on a throttled box the gate still catches a serialized
   pool without failing on physics.

   Run with [dune exec bench/main.exe parfan]. Emits a JSON report
   (path from OSIRIS_PARFAN_BENCH_JSON, default BENCH_parfan.json) and
   exits non-zero when a gate fails:

     OSIRIS_SAMPLE                fault sites per policy (default 0 = all,
                                  the full-sweep default)
     OSIRIS_PARFAN_JOBS           pool width under test (default 4)
     OSIRIS_PARFAN_MIN_SPEEDUP    absolute speedup target (default 3)
     OSIRIS_PARFAN_EFFICIENCY     fraction of the calibrated ideal the
                                  pool must reach (default 0.7)
     OSIRIS_PARFAN_BENCH_JSON     output path (default BENCH_parfan.json)

   Gates:
     parfan_identical   jobs:1 and jobs:N produce structurally
                        byte-identical campaign rows (Marshal equality)
     parfan_isolation   per-run kernel counters are identical whether a
                        run executes alone or beside concurrent domains
     parfan_speedup     campaign speedup >= min(MIN_SPEEDUP,
                        EFFICIENCY x calibrated ideal scaling) *)

let sample_size () =
  match Sys.getenv_opt "OSIRIS_SAMPLE" with
  | Some s -> (try int_of_string s with _ -> 0)
  | None -> 0

let pool_jobs () =
  match Sys.getenv_opt "OSIRIS_PARFAN_JOBS" with
  | Some s -> (try max 2 (int_of_string s) with _ -> 4)
  | None -> 4

let min_speedup () =
  match Sys.getenv_opt "OSIRIS_PARFAN_MIN_SPEEDUP" with
  | Some s -> (try float_of_string s with _ -> 3.)
  | None -> 3.

let efficiency () =
  match Sys.getenv_opt "OSIRIS_PARFAN_EFFICIENCY" with
  | Some s -> (try float_of_string s with _ -> 0.7)
  | None -> 0.7

let json_path () =
  match Sys.getenv_opt "OSIRIS_PARFAN_BENCH_JSON" with
  | Some p when p <> "" -> p
  | _ -> "BENCH_parfan.json"

let now_ns () = Int64.to_float (Monotonic_clock.now ())

let time f =
  let t0 = now_ns () in
  let r = f () in
  (r, now_ns () -. t0)

let json_bool b = if b then "true" else "false"

(* ---- calibration: the host's ideal domain scaling ----------------- *)

(* Allocation profile comparable to a simulation run: short-lived cons
   cells and tuples, nothing surviving. One chunk is ~10 ms. *)
let probe_chunk () =
  let acc = ref [] in
  for i = 1 to 300_000 do
    acc := (i, i + 1) :: !acc;
    if i land 4095 = 0 then acc := []
  done;
  ignore (Sys.opaque_identity !acc)

let bump_nursery () =
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 }

(* An ideal pool: static partition over raw domains, no queue, same
   per-domain nursery as Parfan workers. Deliberately does NOT go
   through Parfan — it is the oracle the pool is measured against, so
   a regression that serializes the pool cannot also slow the oracle. *)
let calibrate jobs =
  let per_dom = 4 in
  let (), seq_ns =
    time (fun () ->
        for _ = 1 to jobs * per_dom do
          probe_chunk ()
        done)
  in
  let (), par_ns =
    time (fun () ->
        let doms =
          List.init jobs (fun _ ->
              Domain.spawn (fun () ->
                  bump_nursery ();
                  for _ = 1 to per_dom do
                    probe_chunk ()
                  done))
        in
        List.iter Domain.join doms)
  in
  (seq_ns, par_ns, seq_ns /. par_ns)

(* ---- isolation: per-run counters beside concurrent domains -------- *)

let counter_probe () =
  let sys = System.build ~seed:42 (Sysconf.uniform Policy.enhanced) in
  let halt = System.run sys ~root:Testsuite.driver in
  let k = System.kernel sys in
  ( halt,
    List.map
      (fun ep ->
         let s = Kernel.server_stats k ep in
         ( s.Kernel.ss_name, s.Kernel.ss_ops_total, s.Kernel.ss_busy_cycles,
           s.Kernel.ss_window_opens, s.Kernel.ss_restarts ))
      System.core_servers )

let run () =
  Printf.printf
    "\n================================================================\n\
     Parfan: parallel survivability campaign vs the sequential oracle\n\
     ================================================================\n";
  let sample = sample_size () in
  let jobs = pool_jobs () in
  let seed = 42 in
  (* ---- isolation ---- *)
  let alone = counter_probe () in
  let d1 = Domain.spawn counter_probe and d2 = Domain.spawn counter_probe in
  let beside1 = Domain.join d1 and beside2 = Domain.join d2 in
  let isolation = alone = beside1 && alone = beside2 in
  Printf.printf "per-run counters beside concurrent domains: %s\n"
    (if isolation then "identical" else "DIVERGED");
  (* ---- the campaign, sequential then pooled ---- *)
  let campaign j stats =
    Campaign.survivability ~seed ~sample ~jobs:j ?stats Edfi.Fail_stop
      Policy.all_evaluated
  in
  let seq_rows, seq_ns = time (fun () -> campaign 1 None) in
  let pool_stats = ref None in
  let par_rows, par_ns =
    time (fun () -> campaign jobs (Some (fun s -> pool_stats := Some s)))
  in
  let n_runs =
    List.fold_left (fun acc (r : Campaign.row) -> acc + r.Campaign.runs) 0
      seq_rows
  in
  let identical =
    Marshal.to_string seq_rows [] = Marshal.to_string par_rows []
  in
  let speedup = seq_ns /. par_ns in
  Printf.printf
    "campaign: %d policies x %s sites = %d runs\n\
    \  sequential (jobs 1)   %8.2f s\n\
    \  pool       (jobs %d)   %8.2f s  -> speedup %.2fx\n"
    (List.length seq_rows)
    (if sample = 0 then "all" else string_of_int sample)
    n_runs (seq_ns /. 1e9) jobs (par_ns /. 1e9) speedup;
  (match !pool_stats with
   | Some s -> Printf.printf "  %s\n" (Parfan.speedup_line s)
   | None -> ());
  Printf.printf "  rows %s\n"
    (if identical then "byte-identical to the oracle" else "DIVERGED");
  (* ---- calibrated speedup gate ---- *)
  let cal_seq_ns, cal_par_ns, calib = calibrate jobs in
  let threshold = Float.min (min_speedup ()) (efficiency () *. calib) in
  let speedup_ok = speedup >= threshold in
  Printf.printf
    "calibration (raw domains, %d-way static partition): %.2fx ideal\n\
    \  gate: speedup %.2fx >= min(%.1f, %.2f x %.2f) = %.2fx -> %s\n"
    jobs calib speedup (min_speedup ()) (efficiency ()) calib threshold
    (if speedup_ok then "ok" else "FAILED");
  (* ---- gates + JSON ---- *)
  let gates =
    [ ("parfan_identical", identical);
      ("parfan_isolation", isolation);
      ("parfan_speedup", speedup_ok) ]
  in
  let buf = Buffer.create 2048 in
  let f = Printf.bprintf in
  f buf "{\n";
  f buf "  \"bench\": \"parfan\",\n";
  f buf "  \"seed\": %d,\n" seed;
  f buf "  \"sample\": %d,\n" sample;
  f buf "  \"jobs\": %d,\n" jobs;
  f buf "  \"runs\": %d,\n" n_runs;
  f buf
    "  \"wall\": {\"seq_ns\": %.0f, \"par_ns\": %.0f, \"speedup\": %.3f},\n"
    seq_ns par_ns speedup;
  f buf
    "  \"calibration\": {\"seq_ns\": %.0f, \"par_ns\": %.0f, \
     \"ideal\": %.3f,\n    \"efficiency\": %.2f, \"min_speedup\": %.1f, \
     \"threshold\": %.3f},\n"
    cal_seq_ns cal_par_ns calib (efficiency ()) (min_speedup ()) threshold;
  (match !pool_stats with
   | Some s ->
     f buf
       "  \"pool\": {\"tasks\": %d, \"runs_per_sec\": %.1f, \
        \"imbalance_pct\": %.1f,\n    \"workers\": [%s]},\n"
       s.Parfan.pf_tasks (Parfan.runs_per_sec s) (Parfan.imbalance_pct s)
       (String.concat ", "
          (Array.to_list
             (Array.map
                (fun w ->
                   Printf.sprintf "{\"tasks\": %d, \"busy_ms\": %.1f}"
                     w.Parfan.w_tasks (w.Parfan.w_busy_ns /. 1e6))
                s.Parfan.pf_workers)))
   | None -> ());
  (* Wall times, throughput and host scaling swing with the machine;
     bench_diff reads these per-path tolerances from the baseline so
     only real structural drift is flagged. *)
  f buf
    "  \"tolerances\": {\"wall.seq_ns\": 300, \"wall.par_ns\": 300,\n\
    \    \"wall.speedup\": 700, \"calibration.seq_ns\": 300,\n\
    \    \"calibration.par_ns\": 300, \"calibration.ideal\": 700,\n\
    \    \"calibration.threshold\": 700, \"pool.runs_per_sec\": 700,\n\
    \    \"pool.imbalance_pct\": 200},\n";
  f buf "  \"gates\": {%s}\n"
    (String.concat ", "
       (List.map (fun (n, ok) -> Printf.sprintf "\"%s\": %s" n (json_bool ok))
          gates));
  f buf "}\n";
  let path = json_path () in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path;
  let failed = List.filter (fun (_, ok) -> not ok) gates in
  if failed <> [] then begin
    List.iter
      (fun (n, _) -> Printf.eprintf "parfan bench: gate FAILED: %s\n" n)
      failed;
    exit 1
  end
  else Printf.printf "all %d gates passed\n" (List.length gates)
