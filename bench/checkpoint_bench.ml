(* Checkpoint hot-path benchmark: arena-backed undo log vs the seed's
   list-based log, write coalescing, and dirty-region restarts.

   Run with [dune exec bench/main.exe checkpoint]. Emits a JSON report
   (path from OSIRIS_BENCH_JSON, default BENCH_checkpoint.json) and
   exits non-zero when a regression gate fails, so a small-budget run
   doubles as a CI smoke test:

     OSIRIS_BENCH_MS      per-measurement wall budget in ms (default 200)
     OSIRIS_BENCH_JSON    output path (default BENCH_checkpoint.json)
     OSIRIS_BENCH_MIN_SPEEDUP
                          minimum arena-vs-legacy record/rollback
                          speedup before the gate trips (default 1.2 —
                          deliberately far below the ~3x we measure, to
                          keep CI stable on loaded machines) *)

let budget_ns () =
  let ms =
    match Sys.getenv_opt "OSIRIS_BENCH_MS" with
    | Some s -> (try float_of_string s with _ -> 200.)
    | None -> 200.
  in
  ms *. 1e6

let min_speedup () =
  match Sys.getenv_opt "OSIRIS_BENCH_MIN_SPEEDUP" with
  | Some s -> (try float_of_string s with _ -> 1.2)
  | None -> 1.2

let json_path () =
  match Sys.getenv_opt "OSIRIS_BENCH_JSON" with
  | Some p when p <> "" -> p
  | _ -> "BENCH_checkpoint.json"

let now_ns () = Int64.to_float (Monotonic_clock.now ())

(* ns per operation of [batch] (which performs [ops] operations),
   repeated until the wall budget is spent. *)
let time_per_op ~ops batch =
  batch ();
  (* warm caches, grow arenas *)
  let budget = budget_ns () in
  let t0 = now_ns () in
  let batches = ref 0 in
  while now_ns () -. t0 < budget do
    batch ();
    incr batches
  done;
  let elapsed = now_ns () -. t0 in
  elapsed /. float_of_int (max 1 !batches * ops)

(* ------------------------------------------------------------------ *)
(* The seed's undo log, reproduced: a cons-list of (offset, old bytes)
   entries, each recorded by materializing the old value with an
   allocation — the baseline the arena representation replaces.        *)
(* ------------------------------------------------------------------ *)

module Legacy_log = struct
  type entry = { offset : int; old : Bytes.t }

  type t = {
    mutable log : entry list;
    mutable n : int;
    mutable bytes : int;
    mutable peak : int;
    mutable lifetime : int;
  }

  let entry_header_bytes = 16

  let create () = { log = []; n = 0; bytes = 0; peak = 0; lifetime = 0 }

  let record t image ~offset ~len =
    (* the seed hook materialized the old value with [Bytes.sub] ... *)
    let old = Memimage.get_bytes image ~off:offset ~len in
    (* ... and the seed log cons'd an entry and accounted eagerly *)
    t.log <- { offset; old } :: t.log;
    t.n <- t.n + 1;
    t.lifetime <- t.lifetime + 1;
    t.bytes <- t.bytes + entry_header_bytes + Bytes.length old;
    if t.bytes > t.peak then t.peak <- t.bytes

  let clear t =
    t.log <- [];
    t.n <- 0;
    t.bytes <- 0

  let rollback t image =
    List.iter
      (fun e ->
         Memimage.write_raw image ~off:e.offset e.old ~src_off:0
           ~len:(Bytes.length e.old))
      t.log;
    clear t
end

(* ------------------------------------------------------------------ *)

type record_result = {
  arena_ns : float;
  legacy_ns : float;
  speedup : float;
}

let storm_offsets = 4096 (* distinct 8-byte words in the storm *)

let record_storm () =
  let image = Memimage.create ~name:"bench" ~size:(1 lsl 20) in
  let arena = Undo_log.create () in
  let arena_ns =
    time_per_op ~ops:storm_offsets (fun () ->
        for i = 0 to storm_offsets - 1 do
          ignore (Undo_log.record arena ~image ~offset:(8 * i) ~len:8)
        done;
        Undo_log.clear arena)
  in
  let legacy = Legacy_log.create () in
  let legacy_ns =
    time_per_op ~ops:storm_offsets (fun () ->
        for i = 0 to storm_offsets - 1 do
          Legacy_log.record legacy image ~offset:(8 * i) ~len:8
        done;
        Legacy_log.clear legacy)
  in
  { arena_ns; legacy_ns; speedup = legacy_ns /. arena_ns }

let record_rollback_storm () =
  let image = Memimage.create ~name:"bench" ~size:(1 lsl 20) in
  let arena = Undo_log.create () in
  let arena_ns =
    time_per_op ~ops:storm_offsets (fun () ->
        for i = 0 to storm_offsets - 1 do
          ignore (Undo_log.record arena ~image ~offset:(8 * i) ~len:8)
        done;
        Undo_log.rollback arena image)
  in
  let legacy = Legacy_log.create () in
  let legacy_ns =
    time_per_op ~ops:storm_offsets (fun () ->
        for i = 0 to storm_offsets - 1 do
          Legacy_log.record legacy image ~offset:(8 * i) ~len:8
        done;
        Legacy_log.rollback legacy image)
  in
  { arena_ns; legacy_ns; speedup = legacy_ns /. arena_ns }

let coalesced_storm () =
  (* the write-hot case coalescing targets: every word hit 8 times *)
  let image = Memimage.create ~name:"bench" ~size:(1 lsl 20) in
  let hot_words = storm_offsets / 8 in
  let fill log =
    for i = 0 to storm_offsets - 1 do
      ignore (Undo_log.record log ~image ~offset:(8 * (i mod hot_words)) ~len:8)
    done
  in
  let entries log =
    fill log;
    let n = Undo_log.entries log in
    Undo_log.clear log;
    n
  in
  let run log =
    time_per_op ~ops:storm_offsets (fun () ->
        fill log;
        Undo_log.rollback log image)
  in
  let plain = Undo_log.create () in
  let coal = Undo_log.create ~coalesce:true () in
  let plain_entries = entries plain in
  let coalesce_entries = entries coal in
  let plain_ns = run plain in
  let coalesce_ns = run coal in
  (plain_ns, coalesce_ns, plain_ns /. coalesce_ns, plain_entries,
   coalesce_entries)

(* Steady-state allocation: minor words allocated by 10k records once
   the arena has reached the working-set size. *)
let alloc_per_10k () =
  let image = Memimage.create ~name:"bench" ~size:(1 lsl 20) in
  let log = Undo_log.create () in
  let storm () =
    for i = 0 to 9_999 do
      ignore (Undo_log.record log ~image ~offset:(8 * (i mod 8192)) ~len:8)
    done;
    Undo_log.clear log
  in
  storm ();
  (* grow arena + table to steady state *)
  let w0 = Gc.minor_words () in
  storm ();
  let w1 = Gc.minor_words () in
  int_of_float (w1 -. w0)

type restore_result = {
  image_bytes : int;
  dirty_granules : int;
  restored_bytes : int;
  bytes_saved : int;
  full_ns : float;
  dirty_ns : float;
  restore_speedup : float;
}

let restore_bench () =
  let size = 1 lsl 20 in
  let image = Memimage.create ~name:"bench" ~size in
  Memimage.set_baseline image;
  let touch () =
    (* a sparse write pattern: 64 words scattered across the image *)
    for i = 0 to 63 do
      Memimage.set_word image (i * 16_384) (i + 1)
    done
  in
  touch ();
  let dirty_granules = Memimage.dirty_granules image in
  let restored_bytes = Memimage.restore_baseline image in
  let saved0 = Memimage.restore_bytes_saved image in
  let bytes_saved = saved0 in
  let dirty_ns =
    time_per_op ~ops:1 (fun () ->
        touch ();
        ignore (Memimage.restore_baseline image))
  in
  (* the pre-dirty-tracking restart path: blit the whole image back *)
  let pristine = Memimage.snapshot image in
  let full_ns =
    time_per_op ~ops:1 (fun () ->
        touch ();
        Memimage.restore image pristine)
  in
  Memimage.restore_baseline image |> ignore;
  { image_bytes = size; dirty_granules; restored_bytes; bytes_saved;
    full_ns; dirty_ns; restore_speedup = full_ns /. dirty_ns }

(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let run () =
  Printf.printf
    "\n================================================================\n\
     Checkpoint substrate: arena undo log, coalescing, dirty restarts\n\
     ================================================================\n";
  let rec_res = record_storm () in
  Printf.printf
    "record storm (%d x 8B stores): arena %6.1f ns/op | legacy list %6.1f ns/op | %.2fx\n"
    storm_offsets rec_res.arena_ns rec_res.legacy_ns rec_res.speedup;
  let rb_res = record_rollback_storm () in
  Printf.printf
    "record+rollback storm:         arena %6.1f ns/op | legacy list %6.1f ns/op | %.2fx\n"
    rb_res.arena_ns rb_res.legacy_ns rb_res.speedup;
  let plain_ns, coalesce_ns, co_speedup, plain_entries, coalesce_entries =
    coalesced_storm ()
  in
  Printf.printf
    "write-hot storm (8x per word): plain %6.1f ns/op | coalescing  %6.1f ns/op | %.2fx, log %d -> %d entries\n"
    plain_ns coalesce_ns co_speedup plain_entries coalesce_entries;
  let minor_words = alloc_per_10k () in
  Printf.printf "steady-state allocation: %d minor words per 10k records\n"
    minor_words;
  let restore = restore_bench () in
  Printf.printf
    "dirty-region restart (1 MiB image, %d dirty granules): restored %d B,\n\
    \  saved %d B; full restore %.0f ns vs dirty restore %.0f ns (%.1fx)\n"
    restore.dirty_granules restore.restored_bytes restore.bytes_saved
    restore.full_ns restore.dirty_ns restore.restore_speedup;
  (* full-system evidence: bytes recovery actually moves per server.
     Enhanced exercises the rollback path (in-window crashes undo via
     the log); stateless exercises dirty-region restarts, where
     restore_bytes_saved shows the granule map paying off. *)
  let probe name policy =
    let rows, halt = Experiment.recovery_bytes policy in
    Printf.printf "full-system crash probe (%s policy, halt %s):\n" name
      (Kernel.halt_to_string halt);
    List.iter
      (fun r ->
         Printf.printf
           "  %-4s image %8d B | rollback %7d B | restart bytes saved %9d B | %d restarts\n"
           r.Experiment.rb_server r.Experiment.rb_image_bytes
           r.Experiment.rb_rollback_bytes r.Experiment.rb_restore_bytes_saved
           r.Experiment.rb_restarts)
      rows;
    rows
  in
  let rows = probe "enhanced" Policy.enhanced in
  let rows_stateless = probe "stateless" Policy.stateless in
  (* ---- gates ---- *)
  let threshold = min_speedup () in
  let alloc_ok = minor_words < 1024 in
  let record_ok = rec_res.speedup >= threshold in
  let rollback_ok = rb_res.speedup >= threshold in
  let restore_ok =
    (* restored bytes must track dirty granules, not image size *)
    restore.restored_bytes <= restore.dirty_granules * Memimage.granule
    && restore.restored_bytes * 4 < restore.image_bytes
  in
  let coalesce_ok = coalesce_entries * 4 <= plain_entries in
  let gates =
    [ ("alloc_free_record", alloc_ok);
      ("record_speedup", record_ok);
      ("rollback_speedup", rollback_ok);
      ("coalescing_shrinks_log", coalesce_ok);
      ("restore_scales_with_dirty", restore_ok) ]
  in
  (* ---- JSON report ---- *)
  let buf = Buffer.create 2048 in
  let f = Printf.bprintf in
  f buf "{\n";
  f buf "  \"bench\": \"checkpoint\",\n";
  f buf "  \"budget_ms\": %.0f,\n" (budget_ns () /. 1e6);
  f buf "  \"storm_stores\": %d,\n" storm_offsets;
  f buf
    "  \"record\": {\"arena_ns_per_op\": %.2f, \"legacy_ns_per_op\": %.2f, \"speedup\": %.3f},\n"
    rec_res.arena_ns rec_res.legacy_ns rec_res.speedup;
  f buf
    "  \"record_rollback\": {\"arena_ns_per_op\": %.2f, \"legacy_ns_per_op\": %.2f, \"speedup\": %.3f},\n"
    rb_res.arena_ns rb_res.legacy_ns rb_res.speedup;
  f buf
    "  \"coalescing\": {\"plain_ns_per_op\": %.2f, \"coalesce_ns_per_op\": %.2f, \"speedup\": %.3f, \"plain_entries\": %d, \"coalesce_entries\": %d},\n"
    plain_ns coalesce_ns co_speedup plain_entries coalesce_entries;
  f buf "  \"minor_words_per_10k_records\": %d,\n" minor_words;
  f buf
    "  \"restore\": {\"image_bytes\": %d, \"dirty_granules\": %d, \"granule_bytes\": %d,\n\
    \    \"restored_bytes\": %d, \"bytes_saved\": %d, \"full_ns\": %.0f, \"dirty_ns\": %.0f,\n\
    \    \"speedup\": %.3f},\n"
    restore.image_bytes restore.dirty_granules Memimage.granule
    restore.restored_bytes restore.bytes_saved restore.full_ns
    restore.dirty_ns restore.restore_speedup;
  let emit_rows key rows =
    f buf "  \"%s\": [\n" key;
    List.iteri
      (fun i r ->
         f buf
           "    {\"server\": \"%s\", \"image_bytes\": %d, \"rollback_bytes\": %d, \"restore_bytes_saved\": %d, \"restarts\": %d}%s\n"
           (json_escape r.Experiment.rb_server)
           r.Experiment.rb_image_bytes r.Experiment.rb_rollback_bytes
           r.Experiment.rb_restore_bytes_saved r.Experiment.rb_restarts
           (if i = List.length rows - 1 then "" else ","))
      rows;
    f buf "  ],\n"
  in
  emit_rows "system_enhanced" rows;
  emit_rows "system_stateless" rows_stateless;
  f buf "  \"gates\": {%s}\n"
    (String.concat ", "
       (List.map
          (fun (n, ok) -> Printf.sprintf "\"%s\": %b" n ok)
          gates));
  f buf "}\n";
  let path = json_path () in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path;
  let failed = List.filter (fun (_, ok) -> not ok) gates in
  if failed <> [] then begin
    List.iter
      (fun (n, _) -> Printf.eprintf "checkpoint bench: gate FAILED: %s\n" n)
      failed;
    exit 1
  end
  else Printf.printf "all %d gates passed\n" (List.length gates)
