(* Scheduler benchmark: what the timer-wheel rebuild of the kernel run
   queue buys over the binary heap it replaced, and proof it changes
   nothing but wall time.

   The micro rungs replay a kernel-shaped key trace — recorded from a
   live wheel under the empirical push/pop mix: near-future keys with
   frequent ties, past-dated wakeups below the cursor, occasional
   far-horizon alarms, queue depth oscillating like a real run —
   through the wheel and through the embedded old-heap oracle
   ([Sched.use_oracle]), interleaved best-of so load drift cannot
   masquerade as speedup. The reference line is the 78.6 ns/event
   in-run capture cost measured by bench/journal_bench.ml on the
   pre-refactor scheduler: the wheel's full push+pop event cost must
   sit below it. Because hosts differ, the gate is calibrated like
   parfan_bench's: the oracle — the exact pre-refactor implementation,
   timed on the same trace on the same host — is the calibration
   probe, and the threshold is max(baseline, efficiency x oracle), so
   a slow box loosens the absolute bar but never excuses losing to the
   old heap.

   Run with [dune exec bench/main.exe sched]. Emits a JSON report
   (path from OSIRIS_SCHED_BENCH_JSON, default BENCH_sched.json) and
   exits non-zero when a gate fails:

     OSIRIS_BENCH_MS              per-variant wall budget in ms (default 200)
     OSIRIS_SCHED_BENCH_JSON      output path (default BENCH_sched.json)
     OSIRIS_SCHED_BASELINE_NS     pre-refactor per-event reference
                                  (default 78.6)
     OSIRIS_SCHED_EFFICIENCY      fraction of the oracle's measured
                                  ns/event the wheel must beat when
                                  the host is too slow for the
                                  absolute bar (default 0.9)

   Gates:
     sched_ns_per_event   wheel push+pop ns/event on the kernel trace
                          < max(BASELINE_NS, EFFICIENCY x oracle)
     sched_vs_oracle      wheel ns/event < oracle ns/event
     sched_zero_alloc     a full warm trace pass (131k push/pop)
                          allocates no minor words
     sched_trajectory     full-system seed-42 runs (regression driver,
                          and quickstart with a mid-run VFS crash and
                          an attached journal) are byte-identical
                          between wheel and oracle: halt, every ss_*
                          server counter row, log lines, journal bytes *)

let budget_ns () =
  let ms =
    match Sys.getenv_opt "OSIRIS_BENCH_MS" with
    | Some s -> (try float_of_string s with _ -> 200.)
    | None -> 200.
  in
  ms *. 1e6

let baseline_ns () =
  match Sys.getenv_opt "OSIRIS_SCHED_BASELINE_NS" with
  | Some s -> (try float_of_string s with _ -> 78.6)
  | None -> 78.6

let efficiency () =
  match Sys.getenv_opt "OSIRIS_SCHED_EFFICIENCY" with
  | Some s -> (try float_of_string s with _ -> 0.9)
  | None -> 0.9

let json_path () =
  match Sys.getenv_opt "OSIRIS_SCHED_BENCH_JSON" with
  | Some p when p <> "" -> p
  | _ -> "BENCH_sched.json"

let now_ns () = Int64.to_float (Monotonic_clock.now ())
let json_bool b = if b then "true" else "false"

let minor_words_of f =
  let w0 = Gc.minor_words () in
  f ();
  Gc.minor_words () -. w0

(* ---- the kernel-shaped trace -------------------------------------- *)

(* Recorded against a live wheel so past-dated keys are relative to
   the real popped frontier.  Mix calibrated to what Kernel.step
   generates: mostly short forward hops with heavy ties (message
   hand-offs between processes whose clocks nearly agree), a steady
   trickle of past-dated wakeups (blocked receivers with lagging
   vtimes), rare far-future alarms; depth breathes between ~4 and
   ~48 entries like a booted system under load. *)
let trace_len = 1 lsl 17

type trace = {
  t_kind : Bytes.t;     (* 0 = push, 1 = pop *)
  t_key : int array;    (* push key (unused for pops) *)
  t_events : int;       (* number of pushes = pops *)
}

let record_trace () =
  let rng = Osiris_util.Rng.create 42 in
  let s = Sched.create () in
  let kind = Bytes.create trace_len in
  let key = Array.make trace_len 0 in
  let cursor = ref 0 in
  let pushes = ref 0 in
  let n = ref 0 in
  let push k =
    Bytes.unsafe_set kind !n '\000';
    key.(!n) <- k;
    Sched.push s ~key:k 0;
    incr pushes;
    incr n
  in
  let pop () =
    Bytes.unsafe_set kind !n '\001';
    let v = Sched.pop s in
    if v >= 0 then cursor := Sched.popped_key s;
    incr n
  in
  while !n < trace_len do
    let depth = Sched.length s in
    let do_push =
      if depth < 4 then true
      else if depth > 48 then false
      else Osiris_util.Rng.int rng 2 = 0
    in
    if do_push then begin
      let roll = Osiris_util.Rng.int rng 100 in
      let k =
        if roll < 30 then !cursor (* tie at the frontier *)
        else if roll < 82 then !cursor + Osiris_util.Rng.int rng 4096
        else if roll < 94 then !cursor + Osiris_util.Rng.int rng 2_000_000
        else if roll < 99 then
          max 0 (!cursor - 1 - Osiris_util.Rng.int rng 100_000)
          (* past-dated wakeup *)
        else !cursor + 50_000_000 + Osiris_util.Rng.int rng Sched.horizon
        (* far alarm *)
      in
      push k
    end
    else pop ()
  done;
  (* The replay must leave the structure empty so passes can repeat on
     a warm instance: trim trailing pushes and append draining pops by
     rewriting the tail budget.  Simpler: drain whatever is left into
     the trace accounting by replay-side draining (see replay). *)
  { t_kind = kind; t_key = key; t_events = !pushes }

(* One full pass: replay the trace, then drain the residue so the
   instance is empty for the next pass.  Returns elapsed ns. *)
let replay tr s =
  let t0 = now_ns () in
  for i = 0 to trace_len - 1 do
    if Bytes.unsafe_get tr.t_kind i = '\000' then
      Sched.push s ~key:(Array.unsafe_get tr.t_key i) i
    else ignore (Sched.pop s)
  done;
  while Sched.pop s >= 0 do
    ()
  done;
  now_ns () -. t0

(* Interleaved best-of (same rationale as journal_bench): round-robin
   wheel and oracle passes so GC debt and load drift are shared. *)
let best_ns_interleaved variants =
  let variants = Array.of_list variants in
  Array.iter (fun (_, f) -> ignore (f ())) variants;
  let k = Array.length variants in
  let best = Array.make k infinity in
  let budget = float_of_int k *. budget_ns () in
  let t0 = now_ns () in
  let rounds = ref 0 in
  while now_ns () -. t0 < budget || !rounds < 8 do
    for j = 0 to k - 1 do
      let i = (j + !rounds) mod k in
      let _, f = variants.(i) in
      let d = f () in
      if d < best.(i) then best.(i) <- d
    done;
    incr rounds
  done;
  (best, !rounds)

(* ---- trajectory identity ------------------------------------------ *)

let header ~workload ~crash =
  match Flight.make_header ~seed:42 ~workload ~crash () with
  | Ok h -> h
  | Error m -> failwith ("sched bench: " ^ m)

(* One full system run, fingerprinted down to the bytes: halt, the
   complete ss_* counter row of every core server, the diagnostic log,
   and the framed journal. *)
let run_fingerprint ~oracle ~root ~workload ~crash () =
  Sched.use_oracle := oracle;
  Fun.protect
    ~finally:(fun () -> Sched.use_oracle := false)
    (fun () ->
       let w = Journal.to_memory (header ~workload ~crash) in
       let sys =
         System.build ~seed:42 ~journal:w (Sysconf.uniform Policy.enhanced)
       in
       let k = System.kernel sys in
       (match Flight.server_of_name crash with
        | Some _ as target -> Flight.arm_crash k target
        | None -> ());
       let halt = System.run sys ~root in
       Journal.close w;
       let stats = List.map (Kernel.server_stats k) System.core_servers in
       Marshal.to_string
         (halt, stats, System.log_lines sys, Journal.contents w)
         [])

let trajectory_pair ~root ~workload ~crash =
  let wheel = run_fingerprint ~oracle:false ~root ~workload ~crash () in
  let oracle = run_fingerprint ~oracle:true ~root ~workload ~crash () in
  wheel = oracle

(* ------------------------------------------------------------------ *)

let run () =
  Printf.printf
    "\n================================================================\n\
     Sched: timer-wheel run queue vs the binary-heap oracle\n\
     ================================================================\n";
  let tr = record_trace () in
  Printf.printf "trace: %d ops, %d events (push+pop pairs)\n" trace_len
    tr.t_events;
  (* ---- micro: ns/event, wheel vs oracle ---- *)
  let wheel = Sched.create () in
  Sched.use_oracle := true;
  let heap = Sched.create () in
  Sched.use_oracle := false;
  assert (Sched.is_oracle heap && not (Sched.is_oracle wheel));
  let best, rounds =
    best_ns_interleaved
      [ ("wheel", fun () -> replay tr wheel);
        ("oracle", fun () -> replay tr heap) ]
  in
  let per_event ns = ns /. float_of_int tr.t_events in
  let wheel_ns = per_event best.(0) and oracle_ns = per_event best.(1) in
  let threshold = Float.max (baseline_ns ()) (efficiency () *. oracle_ns) in
  Printf.printf
    "per event (best of %d rounds):\n\
    \  wheel   %8.2f ns\n\
    \  oracle  %8.2f ns (old binary heap)\n\
    \  gate: wheel < max(%.1f baseline, %.2f x oracle) = %.2f ns -> %s\n"
    rounds wheel_ns oracle_ns (baseline_ns ()) (efficiency ()) threshold
    (if wheel_ns < threshold then "ok" else "FAILED");
  let ns_ok = wheel_ns < threshold in
  let vs_oracle_ok = wheel_ns < oracle_ns in
  (* ---- zero allocation on a warm pass ---- *)
  let words = minor_words_of (fun () -> ignore (replay tr wheel)) in
  let alloc_ok = words < 64. in
  Printf.printf "warm pass allocation: %.0f minor words over %d ops -> %s\n"
    words trace_len
    (if alloc_ok then "ok" else "FAILED");
  (* ---- trajectory identity ---- *)
  let driver_ok =
    trajectory_pair ~root:Testsuite.driver ~workload:"suite" ~crash:"none"
  in
  let crash_ok =
    trajectory_pair ~root:Workgen.quickstart ~workload:"quickstart"
      ~crash:"vfs"
  in
  Printf.printf
    "trajectory identity (halt + ss_* + log + journal bytes):\n\
    \  regression driver        %s\n\
    \  quickstart + vfs crash   %s\n"
    (if driver_ok then "identical" else "DIVERGED")
    (if crash_ok then "identical" else "DIVERGED");
  (* ---- gates + JSON ---- *)
  let gates =
    [ ("sched_ns_per_event", ns_ok);
      ("sched_vs_oracle", vs_oracle_ok);
      ("sched_zero_alloc", alloc_ok);
      ("sched_trajectory", driver_ok && crash_ok) ]
  in
  let buf = Buffer.create 1024 in
  let f = Printf.bprintf in
  f buf "{\n";
  f buf "  \"bench\": \"sched\",\n";
  f buf "  \"seed\": 42,\n";
  f buf "  \"trace\": {\"ops\": %d, \"events\": %d},\n" trace_len
    tr.t_events;
  f buf
    "  \"per_event\": {\"wheel_ns\": %.2f, \"oracle_ns\": %.2f,\n\
    \    \"baseline_ns\": %.1f, \"efficiency\": %.2f, \"threshold_ns\": \
     %.2f},\n"
    wheel_ns oracle_ns (baseline_ns ()) (efficiency ()) threshold;
  f buf "  \"alloc\": {\"minor_words_per_pass\": %.0f},\n" words;
  (* Wall-clock figures swing with the host; bench_diff reads these
     per-path tolerances from the baseline so only structural drift is
     flagged. *)
  f buf
    "  \"tolerances\": {\"per_event.wheel_ns\": 300,\n\
    \    \"per_event.oracle_ns\": 300, \"per_event.threshold_ns\": 300},\n";
  f buf "  \"gates\": {%s}\n"
    (String.concat ", "
       (List.map (fun (n, ok) -> Printf.sprintf "\"%s\": %s" n (json_bool ok))
          gates));
  f buf "}\n";
  let path = json_path () in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path;
  let failed = List.filter (fun (_, ok) -> not ok) gates in
  if failed <> [] then begin
    List.iter
      (fun (n, _) -> Printf.eprintf "sched bench: gate FAILED: %s\n" n)
      failed;
    exit 1
  end
  else Printf.printf "all %d gates passed\n" (List.length gates)
