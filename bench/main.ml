(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section VI).

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe table1     -- one experiment
     (table1 table2 table3 table4 table5 table6 fig3 rcb ablation micro)

   Sample sizes for the fault-injection campaigns come from the
   OSIRIS_SAMPLE environment variable (default 0 = every triggered
   site, as in the paper; set a positive count for a quick subsample).
   Campaigns fan out over the Parfan domain pool — OSIRIS_JOBS picks
   the worker count. *)

let sample_size () =
  match Sys.getenv_opt "OSIRIS_SAMPLE" with
  | Some s -> (try int_of_string s with _ -> 0)
  | None -> 0

let heading title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n"

let pct x = Printf.sprintf "%.1f" (100. *. x)

(* ------------------------------------------------------------------ *)
(* Table I - recovery coverage                                         *)
(* ------------------------------------------------------------------ *)

let paper_table1 =
  [ ("pm", (54.9, 61.7)); ("vfs", (72.3, 72.3)); ("vm", (64.6, 64.6));
    ("ds", (47.1, 92.8)); ("rs", (49.4, 50.5)) ]

let table1 () =
  heading "Table I: recovery coverage per server (% of execution inside recovery windows)";
  let pess, _ = Experiment.coverage_run Policy.pessimistic in
  let enh, _ = Experiment.coverage_run Policy.enhanced in
  (* Static predictions weighted by measured handler frequencies. *)
  let freq_sys = System.build (Sysconf.uniform Policy.enhanced) in
  let (_ : Kernel.halt) = System.run freq_sys ~root:Testsuite.driver in
  let freq_kernel = System.kernel freq_sys in
  let static_report policy =
    List.map
      (fun (summary : Summary.t) ->
         let ep = summary.Summary.sum_ep in
         Static_window.server_coverage
           ~frequency:(Experiment.measured_frequencies freq_kernel ep)
           ~multithreaded:(ep = Endpoint.vfs) policy summary)
      System.summaries
  in
  let static_pess = static_report Policy.pessimistic in
  let static_enh = static_report Policy.enhanced in
  let static_for reports name =
    match
      List.find_opt
        (fun r -> Endpoint.server_name r.Static_window.sr_ep = name)
        reports
    with
    | Some r -> 100. *. r.Static_window.sr_coverage
    | None -> 0.
  in
  let rows =
    List.map2
      (fun p e ->
         let name = p.Experiment.cov_server in
         let paper_p, paper_e =
           match List.assoc_opt name paper_table1 with
           | Some q -> q
           | None -> (0., 0.)
         in
         [ name;
           pct p.Experiment.cov_fraction;
           pct e.Experiment.cov_fraction;
           Printf.sprintf "%.1f" (static_for static_pess name);
           Printf.sprintf "%.1f" (static_for static_enh name);
           Printf.sprintf "%.1f" paper_p;
           Printf.sprintf "%.1f" paper_e ])
      pess enh
  in
  let mean_row =
    [ "weighted avg";
      pct (Experiment.weighted_mean_coverage pess);
      pct (Experiment.weighted_mean_coverage enh);
      "-"; "-"; "57.7"; "68.4" ]
  in
  print_string
    (Osiris_util.Tablefmt.render
       ~header:[ "server"; "pessimistic"; "enhanced"; "static(p)"; "static(e)";
                 "paper(p)"; "paper(e)" ]
       ~align:[ Osiris_util.Tablefmt.Left ] (rows @ [ mean_row ]))

(* ------------------------------------------------------------------ *)
(* Tables II and III - survivability                                   *)
(* ------------------------------------------------------------------ *)

let paper_table2 =
  [ ("stateless", (19.6, 0.0, 0.0, 80.4)); ("naive", (20.6, 2.4, 0.0, 77.0));
    ("pessimistic", (18.5, 0.0, 81.3, 0.2)); ("enhanced", (25.6, 6.5, 66.1, 1.9)) ]

let paper_table3 =
  [ ("stateless", (47.8, 10.5, 0.0, 41.7)); ("naive", (48.5, 11.9, 0.0, 39.6));
    ("pessimistic", (47.3, 10.5, 38.2, 4.0)); ("enhanced", (50.4, 12.0, 32.9, 4.8)) ]

let survivability_table title model paper =
  heading title;
  let sample = sample_size () in
  (if sample = 0 then
     Printf.printf
       "(all triggered fault sites per policy; set OSIRIS_SAMPLE to subsample)\n"
   else
     Printf.printf
       "(%d fault sites per policy; OSIRIS_SAMPLE=0 for all sites)\n" sample);
  let rows = Campaign.survivability ~sample model Policy.all_evaluated in
  let render_row r =
    let name = r.Campaign.row_policy in
    let pp, pf, ps, pc =
      match List.assoc_opt name paper with Some q -> q | None -> (0., 0., 0., 0.)
    in
    [ name;
      pct (Campaign.fraction r Campaign.Pass);
      pct (Campaign.fraction r Campaign.Fail);
      pct (Campaign.fraction r Campaign.Shutdown);
      pct (Campaign.fraction r Campaign.Crash);
      Printf.sprintf "%.1f/%.1f/%.1f/%.1f" pp pf ps pc ]
  in
  print_string
    (Osiris_util.Tablefmt.render
       ~header:[ "policy"; "pass%"; "fail%"; "shutdown%"; "crash%";
                 "paper (p/f/s/c)" ]
       ~align:[ Osiris_util.Tablefmt.Left ]
       (List.map render_row rows))

let table2 () =
  survivability_table
    "Table II: survivability under fail-stop fault injection" Edfi.Fail_stop
    paper_table2

let table3 () =
  survivability_table
    "Table III: survivability under full-EDFI fault injection"
    Edfi.Full_edfi paper_table3

(* ------------------------------------------------------------------ *)
(* Table IV - baseline vs "Linux" (monolithic cost model)              *)
(* ------------------------------------------------------------------ *)

let paper_table4 =
  [ ("dhry2reg", 4.77); ("whetstone-double", 2.32); ("execl", 0.86);
    ("fstime", 2.69); ("fsbuffer", 0.25); ("fsdisk", 13.09); ("pipe", 17.54);
    ("context1", 6.11); ("spawn", 33.00); ("syscall", 2.65); ("shell1", 1.12);
    ("shell8", 35.01) ]

let table4 () =
  heading "Table IV: baseline performance vs monolithic system (iterations/simulated second)";
  let mono = Experiment.bench_suite ~arch:Kernel.Monolithic Policy.none in
  let micro_rows = Experiment.bench_suite ~arch:Kernel.Microkernel Policy.none in
  let rows =
    List.map2
      (fun m u ->
         let ratio =
           Osiris_util.Stats.ratio m.Experiment.br_score u.Experiment.br_score
         in
         [ m.Experiment.br_name;
           Printf.sprintf "%.0f" m.Experiment.br_score;
           Printf.sprintf "%.0f" u.Experiment.br_score;
           Printf.sprintf "%.2f" ratio;
           Printf.sprintf "%.2f"
             (Option.value ~default:0.
                (List.assoc_opt m.Experiment.br_name paper_table4)) ])
      mono micro_rows
  in
  let ratios =
    List.map2
      (fun m u ->
         Osiris_util.Stats.ratio m.Experiment.br_score u.Experiment.br_score)
      mono micro_rows
  in
  let geo = Osiris_util.Stats.geomean ratios in
  print_string
    (Osiris_util.Tablefmt.render
       ~header:[ "benchmark"; "monolithic"; "microkernel"; "ratio"; "paper" ]
       ~align:[ Osiris_util.Tablefmt.Left ]
       (rows @ [ [ "geomean"; "-"; "-"; Printf.sprintf "%.2f" geo; "4.20" ] ]))

(* ------------------------------------------------------------------ *)
(* Table V - instrumentation slowdown                                  *)
(* ------------------------------------------------------------------ *)

let paper_table5 =
  [ ("dhry2reg", (1.001, 0.996, 0.991)); ("whetstone-double", (1.002, 1.001, 1.003));
    ("execl", (1.326, 0.750, 0.762)); ("fstime", (1.321, 0.749, 0.762));
    ("fsbuffer", (2.317, 1.175, 1.194)); ("fsdisk", (1.165, 1.168, 1.179));
    ("pipe", (1.158, 1.158, 1.169)); ("context1", (1.137, 1.146, 1.156));
    ("spawn", (1.228, 1.213, 1.253)); ("syscall", (1.173, 1.164, 1.164));
    ("shell1", (1.110, 0.942, 0.928)); ("shell8", (1.256, 1.261, 1.266)) ]

let table5 () =
  heading "Table V: slowdown of recovery instrumentation vs baseline (lower is better)";
  let base = Experiment.bench_suite Policy.none in
  let noopt = Experiment.bench_suite Policy.enhanced_unoptimized in
  let pess = Experiment.bench_suite Policy.pessimistic in
  let enh = Experiment.bench_suite Policy.enhanced in
  let slow a b =
    Osiris_util.Stats.ratio a.Experiment.br_score b.Experiment.br_score
  in
  let rows =
    List.map2
      (fun (b, n) (p, e) ->
         let pn, pp, pe =
           match List.assoc_opt b.Experiment.br_name paper_table5 with
           | Some q -> q
           | None -> (0., 0., 0.)
         in
         [ b.Experiment.br_name;
           Printf.sprintf "%.3f" (slow b n);
           Printf.sprintf "%.3f" (slow b p);
           Printf.sprintf "%.3f" (slow b e);
           Printf.sprintf "%.3f/%.3f/%.3f" pn pp pe ])
      (List.combine base noopt) (List.combine pess enh)
  in
  let geo sel =
    Osiris_util.Stats.geomean (List.map2 (fun b x -> slow b x) base sel)
  in
  print_string
    (Osiris_util.Tablefmt.render
       ~header:[ "benchmark"; "no-opt"; "pessimistic"; "enhanced";
                 "paper (n/p/e)" ]
       ~align:[ Osiris_util.Tablefmt.Left ]
       (rows
        @ [ [ "geomean";
              Printf.sprintf "%.3f" (geo noopt);
              Printf.sprintf "%.3f" (geo pess);
              Printf.sprintf "%.3f" (geo enh);
              "1.235/1.046/1.054" ] ]));
  Printf.printf
    "note: the paper's optimized geomeans are pulled below 1.1 by\n\
     scheduling-artifact speedups in execl/fstime/shell1 (ratios < 1)\n\
     that a deterministic simulation does not reproduce.\n"

(* ------------------------------------------------------------------ *)
(* Table VI - memory overhead                                          *)
(* ------------------------------------------------------------------ *)

let paper_table6 =
  [ ("pm", (628, 944, 1)); ("vfs", (1252, 1600, 13)); ("vm", (4532, 18032, 24576));
    ("ds", (248, 488, 1)); ("rs", (1696, 5004, 1)) ]

let table6 () =
  heading "Table VI: per-component memory overhead (kB)";
  let rows = Experiment.memory_overhead () in
  let render r =
    let name = r.Experiment.mem_server in
    let pb, pc, pu =
      match List.assoc_opt name paper_table6 with Some q -> q | None -> (0, 0, 0)
    in
    [ name;
      string_of_int r.Experiment.mem_base_kb;
      string_of_int r.Experiment.mem_clone_kb;
      string_of_int r.Experiment.mem_undo_kb;
      string_of_int r.Experiment.mem_total_overhead_kb;
      Printf.sprintf "%d/%d/%d" pb pc pu ]
  in
  let b, c, u, t =
    List.fold_left
      (fun (b, c, u, t) r ->
         ( b + r.Experiment.mem_base_kb,
           c + r.Experiment.mem_clone_kb,
           u + r.Experiment.mem_undo_kb,
           t + r.Experiment.mem_total_overhead_kb ))
      (0, 0, 0, 0) rows
  in
  print_string
    (Osiris_util.Tablefmt.render
       ~header:[ "server"; "base"; "+clone"; "+undo log"; "total overhead";
                 "paper (b/c/u)" ]
       ~align:[ Osiris_util.Tablefmt.Left ]
       (List.map render rows
        @ [ [ "total"; string_of_int b; string_of_int c; string_of_int u;
              string_of_int t; "8356/26068/24592" ] ]))

(* ------------------------------------------------------------------ *)
(* Figure 3 - service disruption                                       *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  heading "Figure 3: Unixbench score vs service-disruption interval (100 = undisturbed)";
  let intervals =
    [ 0; 6_400_000; 1_600_000; 400_000; 200_000; 100_000; 50_000 ]
  in
  let header =
    "benchmark"
    :: List.map
         (fun i -> if i = 0 then "none" else Printf.sprintf "%dk" (i / 1000))
         intervals
  in
  let rows =
    List.map
      (fun bench ->
         let results =
           List.map (fun interval -> Disruption.run ~bench ~interval ()) intervals
         in
         let reference =
           match results with r :: _ -> r.Disruption.dis_score | [] -> 1.
         in
         bench.Unixbench.b_name
         :: List.map
              (fun r ->
                 let idx = 100. *. r.Disruption.dis_score /. reference in
                 if r.Disruption.dis_completed then Printf.sprintf "%.0f" idx
                 else Printf.sprintf "%.0f!" idx)
              results)
      Unixbench.all
  in
  print_string
    (Osiris_util.Tablefmt.render ~header ~align:[ Osiris_util.Tablefmt.Left ]
       rows);
  Printf.printf
    "(columns: fault interval in kcycles, decreasing = higher fault influx;\n\
     '!' = run degraded. shape: PM-dependent tests (execl, spawn, syscall,\n\
     shell1, shell8) sink as the influx doubles; compute/fs tests stay\n\
     flat. The 50k column sits past the recovery-latency boundary (a PM\n\
     clone's state transfer costs ~80k cycles), where the system\n\
     thrashes: survivable fault intervals must exceed recovery latency.)\n"

(* ------------------------------------------------------------------ *)
(* RCB accounting                                                      *)
(* ------------------------------------------------------------------ *)

let find_repo_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let count_loc file =
  let ic = open_in file in
  let n = ref 0 in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" then incr n
     done
   with End_of_file -> ());
  close_in ic;
  !n

let rec ml_files dir =
  Array.fold_left
    (fun acc entry ->
       let path = Filename.concat dir entry in
       if Sys.is_directory path then acc @ ml_files path
       else if Filename.check_suffix entry ".ml" then path :: acc
       else acc)
    [] (Sys.readdir dir)

let rcb () =
  heading "Reliable Computing Base (paper Section V: RCB = 12.5% of code base)";
  match find_repo_root () with
  | None -> Printf.printf "repo root not found; skipping RCB accounting\n"
  | Some root ->
    let lib = Filename.concat root "lib" in
    let all = ml_files lib in
    let rcb_prefixes =
      List.map (Filename.concat lib)
        [ "checkpoint"; "policy"; "kernel"; "memimage" ]
    in
    let rcb_files =
      List.map (Filename.concat lib) [ "servers/rs.ml"; "ipc/seep.ml" ]
    in
    let is_rcb f =
      List.exists
        (fun p ->
           String.length f >= String.length p
           && String.sub f 0 (String.length p) = p)
        rcb_prefixes
      || List.mem f rcb_files
    in
    let total = List.fold_left (fun acc f -> acc + count_loc f) 0 all in
    let rcb_total =
      List.fold_left
        (fun acc f -> if is_rcb f then acc + count_loc f else acc)
        0 all
    in
    Printf.printf
      "RCB (checkpointing, window management, restart path, message-passing\n\
       substrate, memory substrate): %d LoC of %d library LoC = %.1f%%\n\
       (paper: 29,732 of 237,270 LoC = 12.5%%)\n"
      rcb_total total
      (100. *. float_of_int rcb_total /. float_of_int (max 1 total))

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation () =
  heading "Ablations (design choices from DESIGN.md)";
  let base = Experiment.bench_suite Policy.none in
  let noopt = Experiment.bench_suite Policy.enhanced_unoptimized in
  let enh = Experiment.bench_suite Policy.enhanced in
  let geo sel =
    Osiris_util.Stats.geomean
      (List.map2
         (fun b x ->
            Osiris_util.Stats.ratio b.Experiment.br_score x.Experiment.br_score)
         base sel)
  in
  Printf.printf
    "(a) undo-log write filtering: always-log %.3fx -> window-gated %.3fx\n"
    (geo noopt) (geo enh);
  let pess_cov, _ = Experiment.coverage_run Policy.pessimistic in
  let enh_cov, _ = Experiment.coverage_run Policy.enhanced in
  let pess_perf = Experiment.bench_suite Policy.pessimistic in
  Printf.printf
    "(b) SEEP classification: pessimistic %.1f%% coverage at %.3fx vs enhanced %.1f%% coverage at %.3fx\n"
    (100. *. Experiment.weighted_mean_coverage pess_cov)
    (geo pess_perf)
    (100. *. Experiment.weighted_mean_coverage enh_cov)
    (geo enh);
  let sys = System.build (Sysconf.uniform Policy.enhanced) in
  let (_ : Kernel.halt) = System.run sys ~root:Testsuite.driver in
  let k = System.kernel sys in
  List.iter
    (fun ep ->
       let s = Kernel.server_stats k ep in
       Printf.printf
         "(c) %-4s: %6d windows, peak undo %7d B vs full-copy %9d B/checkpoint (%.4f%% of image)\n"
         s.Kernel.ss_name s.Kernel.ss_window_opens s.Kernel.ss_undo_peak_bytes
         s.Kernel.ss_image_bytes
         (100. *. float_of_int s.Kernel.ss_undo_peak_bytes
          /. float_of_int (max 1 s.Kernel.ss_image_bytes)))
    System.core_servers;
  (* (b') the graduated-policy dial between the two. *)
  let dial policy =
    let rows, _ = Experiment.coverage_run policy in
    100. *. Experiment.weighted_mean_coverage rows
  in
  Printf.printf
    "(b') graduated dial (weighted coverage): pess %.1f%% | grad1 %.1f%% |      grad2 %.1f%% | grad4 %.1f%% | enhanced %.1f%%\n"
    (dial Policy.pessimistic)
    (dial (Policy.enhanced_graduated 1))
    (dial (Policy.enhanced_graduated 2))
    (dial (Policy.enhanced_graduated 4))
    (dial Policy.enhanced);
  (* (d) checkpoint representation, measured: undo log vs full-copy
     snapshots on a request-heavy benchmark. *)
  let bench = Option.get (Unixbench.find "syscall") in
  let undo = Experiment.run_bench Policy.enhanced bench in
  let snap = Experiment.run_bench Policy.enhanced_snapshot bench in
  Printf.printf
    "(d) checkpoint representation on 'syscall': undo log %.0f it/s vs      full-copy snapshots %.0f it/s (%.1fx slower)\n"
    undo.Experiment.br_score snap.Experiment.br_score
    (Osiris_util.Stats.ratio undo.Experiment.br_score snap.Experiment.br_score);
  (* (e) reconciliation strategy under a persistent fault: replay
     crash-loops; error virtualization degrades gracefully. *)
  let run_persistent policy =
    let sys = System.build (Sysconf.uniform policy) in
    Kernel.set_fault_hook (System.kernel sys)
      (Some
         (fun site ->
            if site.Kernel.site_ep = Endpoint.ds
               && site.Kernel.site_handler = Some Message.Tag.T_ds_retrieve
               && site.Kernel.site_kind = Kernel.Op_load
               && site.Kernel.site_occ = 0
            then Some (Kernel.F_crash "persistent bug")
            else None));
    let halt = System.run sys ~root:Testsuite.driver in
    let results = Testsuite.parse_results (System.log_lines sys) in
    (halt, results, Kernel.restarts (System.kernel sys))
  in
  (* (f) recovery latency: crash-to-restart, per component size. *)
  let lat_sys = System.build ~max_crashes:10_000 (Sysconf.uniform Policy.enhanced) in
  let lat_kernel = System.kernel lat_sys in
  let every = ref 0 in
  Kernel.set_fault_hook lat_kernel
    (Some
       (fun site ->
          if site.Kernel.site_ep = Endpoint.pm
             && Kernel.window_is_open lat_kernel Endpoint.pm
          then begin
            incr every;
            if !every mod 500 = 0 then Some (Kernel.F_crash "latency probe")
            else None
          end
          else None));
  let (_ : Kernel.halt) = System.run lat_sys ~root:Testsuite.driver in
  (* [recovery_latencies] returns newest first; [summarize] sorts a
     copy internally, so no caller-side reversal is needed. *)
  let lats = List.map float_of_int (Kernel.recovery_latencies lat_kernel) in
  if lats <> [] then begin
    let s = Osiris_util.Stats.summarize lats in
    Printf.printf
      "(f) PM recovery latency over %d recoveries: median %.0f cycles        (%.1f us simulated), p95 %.0f\n"
      s.Osiris_util.Stats.n s.Osiris_util.Stats.p50
      (1e6 *. Costs.cycles_to_seconds (int_of_float s.Osiris_util.Stats.p50))
      s.Osiris_util.Stats.p95
  end;
  (* (g) beyond the single-fault assumption: several faults per run. *)
  List.iter
    (fun k ->
       let rows =
         if k = 1 then
           Campaign.survivability ~sample:40 Edfi.Fail_stop [ Policy.enhanced ]
         else
           Campaign.survivability_multi ~sample:40 ~k Edfi.Fail_stop
             [ Policy.enhanced ]
       in
       List.iter
         (fun r ->
            Printf.printf
              "(g) %d fault(s)/run (enhanced, fail-stop): pass %.1f%% fail %.1f%% shutdown %.1f%% crash %.1f%%\n"
              k
              (100. *. Campaign.fraction r Campaign.Pass)
              (100. *. Campaign.fraction r Campaign.Fail)
              (100. *. Campaign.fraction r Campaign.Shutdown)
              (100. *. Campaign.fraction r Campaign.Crash))
         rows)
    [ 1; 2; 3 ];
  (* (h) sampling stability of the survivability tables. *)
  let spreads =
    List.map
      (fun seed ->
         match
           Campaign.survivability ~seed ~sample:40 Edfi.Fail_stop
             [ Policy.enhanced ]
         with
         | [ r ] -> 100. *. Campaign.fraction r Campaign.Shutdown
         | _ -> 0.)
      [ 42; 1042; 2042 ]
  in
  Printf.printf
    "(h) sampling stability: enhanced fail-stop shutdown%% across 3 sampling seeds = %s (spread %.1f points)\n"
    (String.concat " / " (List.map (Printf.sprintf "%.1f") spreads))
    (List.fold_left max 0. spreads -. List.fold_left min 100. spreads);
  let eh, er, erest = run_persistent Policy.enhanced in
  let rh, rr, rrest = run_persistent Policy.enhanced_replay in
  Printf.printf
    "(e) persistent DS fault: error-virtualization -> %s (%d pass/%d fail,      %d recoveries) vs replay -> %s (%d pass/%d fail, %d recoveries)\n"
    (Kernel.halt_to_string eh) er.Testsuite.passed er.Testsuite.failed erest
    (Kernel.halt_to_string rh) rr.Testsuite.passed rr.Testsuite.failed rrest

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the core primitives                     *)
(* ------------------------------------------------------------------ *)

let micro () =
  heading "Microbenchmarks (Bechamel; core recovery primitives)";
  let open Bechamel in
  let image = Memimage.create ~name:"bench" ~size:(1 lsl 20) in
  let undo = Undo_log.create () in
  let t_append =
    let i = ref 0 in
    Test.make ~name:"undo_log.record"
      (Staged.stage (fun () ->
           incr i;
           ignore
             (Undo_log.record undo ~image ~offset:(8 * (!i land 0xFFF)) ~len:8);
           if Undo_log.entries undo > 4096 then Undo_log.clear undo))
  in
  let window = Window.create Window.When_open image in
  let t_window =
    Test.make ~name:"window.open+close"
      (Staged.stage (fun () ->
           Window.open_window window;
           Window.close_window window))
  in
  let t_store =
    let w = Window.create Window.Always image in
    Window.open_window w;
    let i = ref 0 in
    Test.make ~name:"memimage.set_word(logged)"
      (Staged.stage (fun () ->
           incr i;
           Memimage.set_word image (8 * (!i land 0xFF)) !i;
           if !i land 0xFFF = 0 then Undo_log.clear (Window.log w)))
  in
  let t_rollback =
    Test.make ~name:"undo_log.rollback(64 entries)"
      (Staged.stage (fun () ->
           let w = Window.create Window.When_open image in
           Window.open_window w;
           for i = 0 to 63 do
             Memimage.set_word image (8 * i) i
           done;
           Window.rollback w))
  in
  let t_boot =
    Test.make ~name:"system.build+boot"
      (Staged.stage (fun () -> ignore (System.build (Sysconf.uniform Policy.enhanced))))
  in
  let t_suite =
    Test.make ~name:"full test-suite run"
      (Staged.stage (fun () ->
           let sys = System.build (Sysconf.uniform Policy.enhanced) in
           ignore (System.run sys ~root:Testsuite.driver)))
  in
  let t_ipc =
    Test.make ~name:"ipc roundtrip x100 (wall time)"
      (Staged.stage
         (let open Prog.Syntax in
          fun () ->
            let sys = System.build (Sysconf.uniform Policy.enhanced) in
            let root =
              let rec go n =
                if n = 0 then Syscall.exit 0
                else
                  let* _ = Syscall.getpid in
                  go (n - 1)
              in
              go 100
            in
            ignore (System.run sys ~root)))
  in
  let t_recover =
    Test.make ~name:"crash+recovery cycle (wall time)"
      (Staged.stage
         (let open Prog.Syntax in
          fun () ->
            let sys = System.build (Sysconf.uniform Policy.enhanced) in
            let fired = ref false in
            Kernel.set_fault_hook (System.kernel sys)
              (Some
                 (fun site ->
                    if (not !fired) && site.Kernel.site_ep = Endpoint.ds then begin
                      fired := true;
                      Some (Kernel.F_crash "bench")
                    end
                    else None));
            let root =
              let* _ = Syscall.ds_retrieve ~key:"micro" in
              Syscall.exit 0
            in
            ignore (System.run sys ~root)))
  in
  let tests =
    [ t_append; t_window; t_store; t_rollback; t_boot; t_suite; t_ipc;
      t_recover ]
  in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  List.iter
    (fun test ->
       let raw = Benchmark.all cfg [ instance ] test in
       let results =
         Analyze.all
           (Analyze.ols ~bootstrap:0 ~r_square:false
              ~predictors:[| Measure.run |])
           instance raw
       in
       Hashtbl.iter
         (fun name ols ->
            match Analyze.OLS.estimates ols with
            | Some [ est ] -> Printf.printf "%-34s %14.1f ns/run\n" name est
            | _ -> Printf.printf "%-34s (no estimate)\n" name)
         results)
    tests

(* ------------------------------------------------------------------ *)

let all_experiments =
  [ ("table1", table1); ("table2", table2); ("table3", table3);
    ("table4", table4); ("table5", table5); ("table6", table6);
    ("fig3", fig3); ("rcb", rcb); ("ablation", ablation); ("micro", micro);
    ("checkpoint", Checkpoint_bench.run); ("obs", Obs_bench.run);
    ("matrix", Matrix_bench.run); ("profiler", Profiler_bench.run);
    ("journal", Journal_bench.run); ("parfan", Parfan_bench.run);
    ("timeseries", Timeseries_bench.run); ("sched", Sched_bench.run);
    ("critpath", Critpath_bench.run); ("query", Query_bench.run) ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ -> List.map fst all_experiments
  in
  List.iter
    (fun name ->
       match List.assoc_opt name all_experiments with
       | Some f -> f ()
       | None ->
         Printf.eprintf "unknown experiment %S (available: %s)\n" name
           (String.concat ", " (List.map fst all_experiments));
         exit 2)
    requested
