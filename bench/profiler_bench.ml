(* Cycle-profiler overhead benchmark: what the kernel's cycle-
   attribution hook and the [Profiler] behind it cost on an IPC-heavy
   workload, plus a conservation check of the attributed totals.

   Run with [dune exec bench/main.exe profiler]. Emits a JSON report
   (path from OSIRIS_PROFILER_BENCH_JSON, default BENCH_profiler.json)
   and exits non-zero when a gate fails, so a small-budget run doubles
   as a CI smoke test:

     OSIRIS_BENCH_MS              per-variant wall budget in ms (default 200)
     OSIRIS_PROFILER_BENCH_JSON   output path (default BENCH_profiler.json)
     OSIRIS_PROFILER_MAX_OVERHEAD_PCT
                                  maximum tolerated attached-profiler
                                  slowdown over the unattached run, in
                                  percent (default 3)

   Gates:
     hook_zero_alloc         a run with a trivial cycle hook attached
                             allocates no more minor words than an
                             unhooked run: emission sites pass only
                             immediates and slot ids, so no per-event
                             record is ever built — and the unattached
                             path does strictly less
     counter_alloc           a profiled run allocates at most the
                             per-process counter rows (one flat int
                             array per process) over an unhooked run:
                             every event is an in-place bump, nothing
                             per event
     profiler_overhead       attached-profiler wall-time overhead on
                             the full workload stays under the gate
     conservation            the attributed per-process totals equal
                             the kernel's own process clocks exactly *)

let budget_ns () =
  let ms =
    match Sys.getenv_opt "OSIRIS_BENCH_MS" with
    | Some s -> (try float_of_string s with _ -> 200.)
    | None -> 200.
  in
  ms *. 1e6

let max_overhead_pct () =
  match Sys.getenv_opt "OSIRIS_PROFILER_MAX_OVERHEAD_PCT" with
  | Some s -> (try float_of_string s with _ -> 3.)
  | None -> 3.

let json_path () =
  match Sys.getenv_opt "OSIRIS_PROFILER_BENCH_JSON" with
  | Some p when p <> "" -> p
  | _ -> "BENCH_profiler.json"

let now_ns () = Int64.to_float (Monotonic_clock.now ())

(* Same workload as the obs bench: a generated mix of file, ds, pipe,
   fork and exec traffic, so every server burns cycles in several
   phases. Systems are single-use; each sample rebuilds one. *)

let workload_seed = 42

let run_sys ?profiler () =
  let sys =
    System.build ?profiler ~seed:workload_seed
      (Sysconf.uniform Policy.enhanced)
  in
  (match System.run sys ~root:(Workgen.generate ~seed:workload_seed ()) with
   | Kernel.H_completed _ -> ()
   | halt ->
     failwith ("profiler bench workload halted: " ^ Kernel.halt_to_string halt));
  sys

let run_once ?profiler () = ignore (run_sys ?profiler ())

(* A run with the cheapest possible hook attached: isolates what the
   emission machinery itself costs, independent of the profiler. The
   hook is installed after build (the unhooked baseline pays no hook
   at boot either, so the difference is the hooked run proper). *)
let run_trivial_hook ~events ~cycles () =
  let sys =
    System.build ~seed:workload_seed (Sysconf.uniform Policy.enhanced)
  in
  Kernel.set_cycle_hook (System.kernel sys)
    (Some
       (fun _ _ c ->
          incr events;
          cycles := !cycles + c));
  match System.run sys ~root:(Workgen.generate ~seed:workload_seed ()) with
  | Kernel.H_completed _ -> ()
  | halt ->
    failwith ("profiler bench workload halted: " ^ Kernel.halt_to_string halt)

(* Best-of timing, interleaved (see obs_bench.ml): every round times
   all variants back to back so machine-load drift cannot masquerade
   as overhead; each variant keeps its best round. *)
let best_ns_interleaved variants =
  List.iter (fun (_, f) -> f ()) variants;
  (* warm *)
  let k = List.length variants in
  let best = Array.make k infinity in
  let budget = float_of_int k *. budget_ns () in
  let t0 = now_ns () in
  let rounds = ref 0 in
  while now_ns () -. t0 < budget || !rounds < 8 do
    List.iteri
      (fun i (_, f) ->
         let s = now_ns () in
         f ();
         let d = now_ns () -. s in
         if d < best.(i) then best.(i) <- d)
      variants;
    incr rounds
  done;
  (best, !rounds)

(* Exact minor-heap words allocated by [f]: the simulation is
   deterministic, so its allocation is too, and a single sample is
   exact rather than an estimate. *)
let minor_words_of f =
  let w0 = Gc.minor_words () in
  f ();
  Gc.minor_words () -. w0

let json_bool b = if b then "true" else "false"

let run () =
  Printf.printf
    "\n================================================================\n\
     Cycle profiler: attribution-hook cost and conservation\n\
     ================================================================\n";
  (* ---- allocation ---- *)
  let unhooked_words = minor_words_of (fun () -> run_once ()) in
  let events = ref 0 and hook_cycles = ref 0 in
  let trivial_words =
    minor_words_of (fun () -> run_trivial_hook ~events ~cycles:hook_cycles ())
  in
  let events = !events in
  let hook_delta = trivial_words -. unhooked_words in
  Printf.printf
    "event emission: %d cycle events/run; trivial-hooked run allocates %.0f\n\
    \  more minor words than unhooked (%.4f words/event)\n"
    events hook_delta (hook_delta /. float_of_int (max 1 events));
  (* A profiled run's only extra allocation is the per-process counter
     rows (one int array of 2 * n_slots per process, allocated when
     counting is enabled and at each spawn); every event afterwards is
     an in-place bump. This run doubles as the conservation check. *)
  let cons_prof = Profiler.create () in
  let cons_sys_r = ref None in
  let counted_words =
    minor_words_of (fun () -> cons_sys_r := Some (run_sys ~profiler:cons_prof ()))
  in
  let cons_sys = Option.get !cons_sys_r in
  let counter_delta = counted_words -. unhooked_words in
  let n_procs = Kernel.profiled_procs (System.kernel cons_sys) in
  (* One array header word plus 2 * n_slots payload words per row. *)
  let row_words = n_procs * ((2 * Kernel.n_slots) + 1) in
  Printf.printf
    "counter rows: profiled run allocates %.0f minor words over unhooked\n\
    \  (%d processes x %d-slot rows = %d words; %.4f words/event)\n"
    counter_delta n_procs Kernel.n_slots row_words
    (counter_delta /. float_of_int (max 1 events));
  (* ---- conservation ---- *)
  let conservation = Profiler.check_conservation cons_prof (System.kernel cons_sys) in
  (match conservation with
   | Ok () ->
     Printf.printf
       "conservation: ok (%d cycles attributed over %d records)\n"
       (Profiler.total_cycles cons_prof) (Profiler.n_records cons_prof)
   | Error msg -> Printf.printf "conservation: VIOLATED: %s\n" msg);
  (* ---- wall time ---- *)
  let wall_prof = Profiler.create () in
  run_once ~profiler:wall_prof ();
  (* warm the tables before timing *)
  let wall_events = ref 0 and wall_cycles = ref 0 in
  let best, rounds =
    best_ns_interleaved
      [ ("unattached", fun () -> run_once ());
        ("trivial",
         fun () -> run_trivial_hook ~events:wall_events ~cycles:wall_cycles ());
        ("attached", fun () -> run_once ~profiler:wall_prof ()) ]
  in
  let base_ns = best.(0) and trivial_ns = best.(1) and prof_ns = best.(2) in
  let pct over = 100. *. (over -. base_ns) /. base_ns in
  let trivial_pct = pct trivial_ns and overhead_pct = pct prof_ns in
  Printf.printf
    "whole-run wall time (best of %d interleaved rounds):\n\
    \  unattached        %.2f ms\n\
    \  trivial hook      %.2f ms (%+.2f%%)\n\
    \  profiler attached %.2f ms (%+.2f%%)\n"
    rounds (base_ns /. 1e6) (trivial_ns /. 1e6) trivial_pct (prof_ns /. 1e6)
    overhead_pct;
  (* ---- gates ---- *)
  let threshold = max_overhead_pct () in
  (* 64-word slack: Gc.minor_words itself and the measuring closures
     may box a float or two; the events themselves must add nothing. *)
  let hook_ok = events > 10_000 && hook_delta < 64. in
  let counter_ok = counter_delta <= float_of_int row_words +. 256. in
  let overhead_ok = overhead_pct < threshold in
  let conservation_ok = conservation = Ok () in
  let gates =
    [ ("hook_zero_alloc", hook_ok);
      ("counter_alloc", counter_ok);
      ("profiler_overhead", overhead_ok);
      ("conservation", conservation_ok) ]
  in
  (* ---- JSON report ---- *)
  let buf = Buffer.create 1024 in
  let f = Printf.bprintf in
  f buf "{\n";
  f buf "  \"bench\": \"profiler\",\n";
  f buf "  \"budget_ms\": %.0f,\n" (budget_ns () /. 1e6);
  f buf "  \"workload_seed\": %d,\n" workload_seed;
  f buf
    "  \"emission\": {\"events_per_run\": %d, \"unhooked_minor_words\": %.0f,\n\
    \    \"trivial_hook_minor_words\": %.0f, \"hook_words_per_event\": %.4f},\n"
    events unhooked_words trivial_words
    (hook_delta /. float_of_int (max 1 events));
  f buf
    "  \"counters\": {\"profiled_minor_words_over_unhooked\": %.0f,\n\
    \    \"profiled_procs\": %d, \"row_words\": %d, \"words_per_event\": %.4f},\n"
    counter_delta n_procs row_words
    (counter_delta /. float_of_int (max 1 events));
  f buf
    "  \"conservation\": {\"ok\": %s, \"attributed_cycles\": %d, \"records\": %d},\n"
    (json_bool conservation_ok)
    (Profiler.total_cycles cons_prof)
    (Profiler.n_records cons_prof);
  f buf
    "  \"wall\": {\"unattached_ns\": %.0f, \"trivial_hook_ns\": %.0f,\n\
    \    \"attached_ns\": %.0f, \"trivial_overhead_pct\": %.3f,\n\
    \    \"overhead_pct\": %.3f, \"max_overhead_pct\": %.1f},\n"
    base_ns trivial_ns prof_ns trivial_pct overhead_pct threshold;
  f buf "  \"gates\": {%s}\n"
    (String.concat ", "
       (List.map (fun (n, ok) -> Printf.sprintf "\"%s\": %s" n (json_bool ok))
          gates));
  f buf "}\n";
  let path = json_path () in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path;
  let failed = List.filter (fun (_, ok) -> not ok) gates in
  if failed <> [] then begin
    List.iter
      (fun (n, _) -> Printf.eprintf "profiler bench: gate FAILED: %s\n" n)
      failed;
    exit 1
  end
  else Printf.printf "all %d gates passed\n" (List.length gates)
