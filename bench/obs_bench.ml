(* Observability overhead benchmark: what the event hook, tracer, and
   metrics registry cost on an IPC-heavy workload.

   Run with [dune exec bench/main.exe obs]. Emits a JSON report (path
   from OSIRIS_OBS_BENCH_JSON, default BENCH_obs.json — a separate
   variable so a combined run does not clobber the checkpoint report)
   and exits non-zero when a gate fails, so a small-budget run doubles
   as a CI smoke test:

     OSIRIS_BENCH_MS            per-variant wall budget in ms (default 200)
     OSIRIS_OBS_BENCH_JSON      output path (default BENCH_obs.json)
     OSIRIS_OBS_MAX_OVERHEAD_PCT
                                maximum tolerated attached-tracer
                                slowdown over the unhooked run, in
                                percent (default 5)

   Gates:
     metrics_zero_alloc      counter/gauge/histogram updates allocate
                             nothing (minor-word delta over 100k ops)
     lazy_event_construction an unhooked run allocates no event
                             records — the hooked/unhooked minor-word
                             difference accounts for every event, so
                             emission really is guarded, not built-
                             then-dropped
     tracer_overhead         attached-tracer wall-time overhead on the
                             full workload stays under the gate *)

let budget_ns () =
  let ms =
    match Sys.getenv_opt "OSIRIS_BENCH_MS" with
    | Some s -> (try float_of_string s with _ -> 200.)
    | None -> 200.
  in
  ms *. 1e6

let max_overhead_pct () =
  match Sys.getenv_opt "OSIRIS_OBS_MAX_OVERHEAD_PCT" with
  | Some s -> (try float_of_string s with _ -> 5.)
  | None -> 5.

let json_path () =
  match Sys.getenv_opt "OSIRIS_OBS_BENCH_JSON" with
  | Some p when p <> "" -> p
  | _ -> "BENCH_obs.json"

let now_ns () = Int64.to_float (Monotonic_clock.now ())

(* ------------------------------------------------------------------ *)
(* The measured workload: a generated mixed workload (files, ds,
   pipes, forks, execs) — every server sees traffic, thousands of
   events per run. Systems are single-use, so each sample rebuilds and
   reboots one; the build cost is identical across variants and the
   hook is installed before boot, so boot traffic is part of what the
   observers pay for.                                                  *)
(* ------------------------------------------------------------------ *)

let workload_seed = 42

let run_once ?event_hook () =
  let sys = System.build ?event_hook ~seed:workload_seed (Sysconf.uniform Policy.enhanced) in
  match System.run sys ~root:(Workgen.generate ~seed:workload_seed ()) with
  | Kernel.H_completed _ -> ()
  | halt -> failwith ("obs bench workload halted: " ^ Kernel.halt_to_string halt)

(* Best-of timing, interleaved: fresh-system runs are noisy (GC, page
   cache, and `dune runtest` runs this concurrently with other test
   binaries), so timing each variant in its own phase would let load
   drift between phases masquerade as overhead. Instead every round
   times all variants back to back — same load for all of them — and
   each variant keeps its best round.                                  *)
let best_ns_interleaved variants =
  List.iter (fun (_, f) -> f ()) variants;
  (* warm *)
  let k = List.length variants in
  let best = Array.make k infinity in
  let budget = float_of_int k *. budget_ns () in
  let t0 = now_ns () in
  let rounds = ref 0 in
  while now_ns () -. t0 < budget || !rounds < 8 do
    List.iteri
      (fun i (_, f) ->
         let s = now_ns () in
         f ();
         let d = now_ns () -. s in
         if d < best.(i) then best.(i) <- d)
      variants;
    incr rounds
  done;
  (best, !rounds)

(* Exact minor-heap words allocated by [f] (allocation in OCaml is
   deterministic for a deterministic simulation, so a single sample is
   exact, not an estimate).                                            *)
let minor_words_of f =
  let w0 = Gc.minor_words () in
  f ();
  Gc.minor_words () -. w0

(* ------------------------------------------------------------------ *)

let metrics_alloc_probe () =
  let m = Metrics.create () in
  let c = Metrics.counter m "probe.counter" in
  let g = Metrics.gauge m "probe.gauge" in
  let h = Metrics.histogram m "probe.hist" in
  let ops = 100_000 in
  let storm () =
    for i = 1 to ops do
      Metrics.incr c;
      Metrics.add c i;
      Metrics.set g i;
      Histogram.observe h i
    done
  in
  storm ();
  (* warm: registration done, no growth left *)
  (ops * 4, minor_words_of storm)

let lazy_emission_probe () =
  let unhooked_words = minor_words_of (fun () -> run_once ()) in
  let events = ref 0 in
  let hooked_words =
    minor_words_of (fun () -> run_once ~event_hook:(fun _ -> incr events) ())
  in
  (unhooked_words, hooked_words, !events)

let json_bool b = if b then "true" else "false"

let run () =
  Printf.printf
    "\n================================================================\n\
     Observability substrate: hook, tracer, and metrics overhead\n\
     ================================================================\n";
  (* ---- allocation ---- *)
  let metric_ops, metric_words = metrics_alloc_probe () in
  Printf.printf "metrics storm: %d updates -> %.0f minor words allocated\n"
    metric_ops metric_words;
  let unhooked_words, hooked_words, events = lazy_emission_probe () in
  let words_per_event =
    (hooked_words -. unhooked_words) /. float_of_int (max 1 events)
  in
  Printf.printf
    "event emission: %d events/run; hooked run allocates %.0f more minor\n\
    \  words than unhooked (%.1f words/event) — unhooked pays for none of them\n"
    events (hooked_words -. unhooked_words) words_per_event;
  (* ---- wall time ---- *)
  let tracer = Tracer.create ~capacity:4096 () in
  let metrics = Metrics.create () in
  let collector = Obs_collector.create ~metrics () in
  let best, rounds =
    best_ns_interleaved
      [ ("unhooked", fun () -> run_once ());
        ("tracer",
         fun () -> run_once ~event_hook:(Tracer.record tracer) ());
        ("collector",
         fun () ->
           Obs_collector.clear collector;
           run_once ~event_hook:(Obs_collector.record collector) ()) ]
  in
  let base_ns = best.(0) and tracer_ns = best.(1) and full_ns = best.(2) in
  let pct over base = 100. *. (over -. base) /. base in
  let tracer_pct = pct tracer_ns base_ns in
  let full_pct = pct full_ns base_ns in
  Printf.printf
    "whole-run wall time (best of %d interleaved rounds):\n\
    \  unhooked          %.2f ms\n\
    \  tracer attached   %.2f ms (%+.2f%%)\n\
    \  collector+metrics %.2f ms (%+.2f%%)\n"
    rounds (base_ns /. 1e6) (tracer_ns /. 1e6) tracer_pct (full_ns /. 1e6)
    full_pct;
  (* ---- gates ---- *)
  let threshold = max_overhead_pct () in
  (* 64-word slack: Gc.minor_words itself and the loop closure may box
     a float or two; the 400k updates themselves must add nothing. *)
  let metrics_ok = metric_words < 64. in
  (* A 13-variant event record averages well over 3 words; if emission
     were unconditional the hooked/unhooked difference would be ~0. *)
  let lazy_ok =
    events > 0 && hooked_words -. unhooked_words >= 3. *. float_of_int events
  in
  let overhead_ok = tracer_pct < threshold in
  let gates =
    [ ("metrics_zero_alloc", metrics_ok);
      ("lazy_event_construction", lazy_ok);
      ("tracer_overhead", overhead_ok) ]
  in
  (* ---- JSON report ---- *)
  let buf = Buffer.create 1024 in
  let f = Printf.bprintf in
  f buf "{\n";
  f buf "  \"bench\": \"obs\",\n";
  f buf "  \"budget_ms\": %.0f,\n" (budget_ns () /. 1e6);
  f buf "  \"workload_seed\": %d,\n" workload_seed;
  f buf "  \"metrics_storm\": {\"ops\": %d, \"minor_words\": %.0f},\n"
    metric_ops metric_words;
  f buf
    "  \"emission\": {\"events_per_run\": %d, \"unhooked_minor_words\": %.0f,\n\
    \    \"hooked_minor_words\": %.0f, \"words_per_event\": %.2f},\n"
    events unhooked_words hooked_words words_per_event;
  f buf
    "  \"wall\": {\"unhooked_ns\": %.0f, \"tracer_ns\": %.0f, \"collector_ns\": %.0f,\n\
    \    \"tracer_overhead_pct\": %.3f, \"collector_overhead_pct\": %.3f,\n\
    \    \"max_overhead_pct\": %.1f},\n"
    base_ns tracer_ns full_ns tracer_pct full_pct threshold;
  f buf "  \"gates\": {%s}\n"
    (String.concat ", "
       (List.map (fun (n, ok) -> Printf.sprintf "\"%s\": %s" n (json_bool ok))
          gates));
  f buf "}\n";
  let path = json_path () in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path;
  let failed = List.filter (fun (_, ok) -> not ok) gates in
  if failed <> [] then begin
    List.iter
      (fun (n, _) -> Printf.eprintf "obs bench: gate FAILED: %s\n" n)
      failed;
    exit 1
  end
  else Printf.printf "all %d gates passed\n" (List.length gates)
