(** Service-disruption experiment (Figure 3).

    Injects fail-stop faults into PM at regular virtual-time intervals,
    but only while PM's recovery window is open, so every crash is
    consistently recoverable under the enhanced policy. The Unixbench
    drivers retry [E_CRASH] results (safe: the rollback guarantees no
    side effects), so the benchmark runs to completion and the cost of
    periodic crash recovery shows up as a lower score.

    Sweeping the interval downward (each step doubling the fault influx)
    reproduces the figure's curves: PM-heavy workloads (shell1, shell8,
    execl, spawn) degrade; PM-independent ones (dhry2reg,
    whetstone-double, fsdisk, fsbuffer) are unaffected. *)

type result = {
  dis_bench : string;
  dis_interval : int;       (** Cycles between injected faults. *)
  dis_score : float;        (** Iterations per simulated second. *)
  dis_restarts : int;       (** Recoveries performed during the run. *)
  dis_completed : bool;     (** Benchmark finished with status 0. *)
}

val run : ?seed:int -> bench:Unixbench.bench -> interval:int -> unit -> result
(** One run under the enhanced policy with the given injection
    interval. [interval <= 0] disables injection (the reference
    score). *)

val sweep :
  ?seed:int -> ?intervals:int list -> ?jobs:int ->
  ?stats:(Parfan.stats -> unit) -> Unixbench.bench -> result list
(** The figure's x-axis sweep, default intervals from effectively-none
    down to one fault every 100k cycles, halving each step. Intervals
    run in parallel on the {!Parfan} pool ([jobs:1] for sequential);
    results are merged in interval order, so the sweep is identical
    whatever the worker count. *)
