(** Fault-injection campaigns (Tables II and III).

    Methodology, following the paper:
    + a profiling run (no faults) enumerates the fault sites the
      prototype test suite actually triggers after boot — boot-time-only
      and never-triggered sites are excluded by construction;
    + sites are selected once and the same faults are applied under
      every recovery policy;
    + each run boots a fresh system, arms exactly one fault, executes
      the test suite and classifies the outcome:
      - [Pass]: suite completed, all tests passed;
      - [Fail]: suite completed, some test failed — the system survived
        with degraded service (often an [E_CRASH] surfacing);
      - [Shutdown]: the recovery protocol performed a controlled
        shutdown;
      - [Crash]: uncontrolled crash, panic or hang. *)

type outcome = Pass | Fail | Shutdown | Crash

val outcome_name : outcome -> string

val profile_sites : ?seed:int -> Policy.t -> Kernel.site list
(** Distinct post-boot sites in the five core servers, in first-
    execution order (uniform spec of the policy). *)

val profile_sites_conf : ?seed:int -> Sysconf.t -> Kernel.site list
(** Same, under an arbitrary (possibly mixed-policy) spec. *)

val select_sites : ?seed:int -> sample:int -> Kernel.site list -> Kernel.site list
(** Deterministic sample of [sample] sites; pass [sample <= 0] for all
    sites. The selection is derived from site {e identity} (a seeded
    hash of each site's name), not list position, so it is stable
    under site-list growth: profiling more sites only marginally
    displaces an existing selection instead of reshuffling it.
    Selected sites are returned in rank order. *)

val run_one : ?seed:int -> Policy.t -> Kernel.site -> Kernel.fault_action -> outcome
(** One injection run under a uniform spec of the policy. *)

val run_one_conf :
  ?seed:int -> Sysconf.t -> Kernel.site -> Kernel.fault_action -> outcome
(** One injection run under an arbitrary spec. *)

type row = {
  row_policy : string;
  runs : int;
  pass : int;
  fail : int;
  shutdown : int;
  crash : int;
}

val fraction : row -> outcome -> float

val survivability :
  ?seed:int -> ?sample:int -> ?jobs:int -> ?stats:(Parfan.stats -> unit) ->
  ?progress:(completed:int -> total:int -> unit) ->
  Edfi.model -> Policy.t list -> row list
(** The full experiment: profile once (under the enhanced policy, whose
    site stream is a superset of each evaluation policy's — asserted by
    the profile-superset test in [test/test_compartment.ml]), select
    the fault set for the model, and run it under each policy.
    [sample] defaults to 0 — {e every} triggered site, as in the
    paper's campaigns (757 fail-stop, 992 full-EDFI faults) — which is
    affordable because the runs fan out across a {!Parfan} domain pool
    ([jobs] defaults to {!Parfan.default_jobs}; [jobs:1] is the
    sequential oracle and produces byte-identical rows). Pass a
    positive [sample] for a quick sampled estimate. Equivalent to
    {!survivability_matrix} over uniform specs — Tables II/III are the
    matrix's uniform diagonal. *)

val survivability_matrix :
  ?seed:int -> ?sample:int -> ?jobs:int -> ?stats:(Parfan.stats -> unit) ->
  ?progress:(completed:int -> total:int -> unit) ->
  Edfi.model -> Sysconf.t list -> row list
(** The mixed-policy generalization (FlexOS-style configuration sweep):
    each spec may assign a different policy or restart budget per
    compartment ("enhanced everywhere except a stateless DS"). The same
    profiled fault set is applied under every spec; rows are labeled
    with {!Sysconf.name}. Runs fan out over the domain pool exactly as
    in {!survivability}; row counts are independent of [jobs]. *)

(** {1 Telemetry summaries and campaign rollup}

    Each injection run can carry a compact telemetry summary — read
    from kernel introspection counters {e after} the run, so the
    simulation itself pays no observability overhead (no event hook,
    no per-event allocation). Summaries merge in submission order into
    a campaign-level rollup whose artifact is byte-identical at any
    [--jobs] (gated in [bench/timeseries_bench.ml]); only the optional
    "pool" section of {!rollup_to_json}, which reports wall-clock
    worker utilization, is allowed to vary. *)

type run_summary = {
  sm_outcome : outcome;
  sm_spec : string;                         (** [Sysconf.name]. *)
  sm_site : string;                         (** Injected site name. *)
  sm_final_vtime : int;
  sm_crashes : int;
  sm_restarts : int;
  sm_crash_times : int list;                (** Oldest first. *)
  sm_episodes : (string * int * int) list;
      (** [(server, crashed_at, recovered_at)], oldest first. *)
  sm_mttr : Histogram.t;                    (** This run's recovery
                                                latencies. *)
}

val run_one_summary :
  ?seed:int -> Sysconf.t -> Kernel.site -> Kernel.fault_action -> run_summary
(** {!run_one_conf} returning the run's telemetry summary (the outcome
    rides in [sm_outcome]). *)

type rollup = {
  ro_runs : int;
  ro_pass : int;
  ro_fail : int;
  ro_shutdown : int;
  ro_crash : int;
  ro_crashes_total : int;
  ro_restarts_total : int;
  ro_mttr : Histogram.t;
      (** Per-run histograms merged via [Histogram.merge_into] —
          percentiles match observing the union stream. *)
  ro_mttr_by_server : (string * Histogram.t) list;
      (** Recovery latency by crashed compartment, sorted by name. *)
  ro_crash_storm : int array;
      (** Crash counts over virtual time, 64 fixed bins spanning
          [0, ro_max_vtime]. *)
  ro_bin_width : int;
  ro_max_vtime : int;
}

val rollup_of_summaries : run_summary list -> rollup
(** Fold summaries (in submission order) into the campaign rollup. *)

val survivability_matrix_rollup :
  ?seed:int -> ?sample:int -> ?jobs:int -> ?stats:(Parfan.stats -> unit) ->
  ?progress:(completed:int -> total:int -> unit) ->
  Edfi.model -> Sysconf.t list -> row list * rollup
(** {!survivability_matrix} with the telemetry rollup: the same runs,
    each additionally summarized; the rows are byte-identical to what
    {!survivability_matrix} returns for the same arguments. *)

val rollup_to_json : ?pool:Parfan.stats -> rollup -> string
(** Deterministic JSON artifact (fixed field order, sorted servers).
    [pool] appends the wall-clock worker-utilization section — the
    only part that may vary with [--jobs]. *)

val run_multi :
  ?seed:int -> Policy.t -> (Kernel.site * Kernel.fault_action) list -> outcome
(** Arm several faults in one run (each fires once, at its site's first
    execution). Probes the boundary of the paper's single-fault
    assumption (Section II-E). *)

val survivability_multi :
  ?seed:int -> ?sample:int -> ?jobs:int -> ?stats:(Parfan.stats -> unit) ->
  ?progress:(completed:int -> total:int -> unit) ->
  k:int -> Edfi.model -> Policy.t list -> row list
(** Like {!survivability} but arming [k] distinct faults per run.
    [sample] here is the number of fault {e groups} per policy
    (default 60), not a site count. *)
