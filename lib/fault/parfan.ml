type worker_stat = {
  w_tasks : int;
  w_busy_ns : float;
}

type stats = {
  pf_jobs : int;
  pf_tasks : int;
  pf_wall_ns : float;
  pf_workers : worker_stat array;
}

let now_ns () = Unix.gettimeofday () *. 1e9

let default_jobs () =
  match Sys.getenv_opt "OSIRIS_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n > 0 -> n
     | _ -> max 1 (Domain.recommended_domain_count () - 1))
  | None -> max 1 (Domain.recommended_domain_count () - 1)

let resolve_jobs ?jobs n_tasks =
  let requested =
    match jobs with Some j when j > 0 -> j | Some _ | None -> default_jobs ()
  in
  max 1 (min requested (max 1 n_tasks))

(* Minor-heap size (in words) each worker domain adopts at startup.
   Spawned domains start with the runtime's *initial* minor heap
   (256k words unless OCAMLRUNPARAM says otherwise), and OCaml 5's
   stop-the-world minor collections serialize allocation-heavy
   domains badly at that size: every domain hitting its 2 MB nursery
   every few ms forces a global pause.  A simulation run allocates
   heavily, so workers bump their nursery to 8M words (64 MB on
   64-bit) — measured to recover near-linear scaling where the
   default collapses below sequential throughput.  Overridable via
   OSIRIS_MINOR_HEAP (words); the calling domain is never touched. *)
let worker_minor_heap_words () =
  match Sys.getenv_opt "OSIRIS_MINOR_HEAP" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n > 0 -> n
     | _ -> 8 * 1024 * 1024)
  | None -> 8 * 1024 * 1024

(* One task's landing slot. Exceptions are values too: the merger
   re-raises the first failure in submission order, after the pool has
   drained, so a crash in task 7 cannot leave domains running. *)
type 'b cell =
  | Pending
  | Done of 'b
  | Raised of exn * Printexc.raw_backtrace

type queue = {
  m : Mutex.t;
  cv : Condition.t;
  pending : int Queue.t;      (* task indices, submission order *)
  mutable closed : bool;      (* no further submissions *)
  mutable poisoned : bool;    (* a task raised; drain without running *)
  mutable completed : int;
}

let with_lock q f =
  Mutex.lock q.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock q.m) f

let worker q tasks results progress total busy count () =
  let wsz = worker_minor_heap_words () in
  let g = Gc.get () in
  if g.Gc.minor_heap_size < wsz then
    Gc.set { g with Gc.minor_heap_size = wsz };
  let next () =
    with_lock q (fun () ->
        let rec wait () =
          if Queue.is_empty q.pending then
            if q.closed then None
            else begin
              Condition.wait q.cv q.m;
              wait ()
            end
          else Some (Queue.pop q.pending)
        in
        wait ())
  in
  let rec loop () =
    match next () with
    | None -> ()
    | Some i ->
      (if with_lock q (fun () -> q.poisoned) then ()
       else begin
         let t0 = now_ns () in
         (match tasks.(i) () with
          | r -> results.(i) <- Done r
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            results.(i) <- Raised (e, bt);
            with_lock q (fun () -> q.poisoned <- true)
         );
         busy := !busy +. (now_ns () -. t0);
         incr count;
         with_lock q (fun () ->
             q.completed <- q.completed + 1;
             match progress with
             | Some p -> p ~completed:q.completed ~total
             | None -> ())
       end);
      loop ()
  in
  loop ()

let sequential ?stats ?progress f xs =
  let t0 = now_ns () in
  let total = List.length xs in
  let completed = ref 0 in
  let ys =
    List.map
      (fun x ->
         let y = f x in
         incr completed;
         (match progress with
          | Some p -> p ~completed:!completed ~total
          | None -> ());
         y)
      xs
  in
  let wall = now_ns () -. t0 in
  (match stats with
   | Some k ->
     k { pf_jobs = 1;
         pf_tasks = total;
         pf_wall_ns = wall;
         pf_workers = [| { w_tasks = total; w_busy_ns = wall } |] }
   | None -> ());
  ys

let map ?jobs ?stats ?progress f xs =
  let n = List.length xs in
  let jobs = resolve_jobs ?jobs n in
  if jobs <= 1 then sequential ?stats ?progress f xs
  else begin
    let t0 = now_ns () in
    let tasks = Array.of_list (List.map (fun x () -> f x) xs) in
    let results = Array.make n Pending in
    let q =
      { m = Mutex.create ();
        cv = Condition.create ();
        pending = Queue.create ();
        closed = false;
        poisoned = false;
        completed = 0 }
    in
    let busy = Array.init jobs (fun _ -> ref 0.) in
    let count = Array.init jobs (fun _ -> ref 0) in
    let domains =
      Array.init jobs (fun w ->
          Domain.spawn
            (worker q tasks results progress n busy.(w) count.(w)))
    in
    with_lock q (fun () ->
        Array.iteri (fun i _ -> Queue.push i q.pending) tasks;
        q.closed <- true;
        Condition.broadcast q.cv);
    Array.iter Domain.join domains;
    let wall = now_ns () -. t0 in
    (match stats with
     | Some k ->
       k { pf_jobs = jobs;
           pf_tasks = n;
           pf_wall_ns = wall;
           pf_workers =
             Array.init jobs (fun w ->
                 { w_tasks = !(count.(w)); w_busy_ns = !(busy.(w)) }) }
     | None -> ());
    (* Merge in submission order; surface the first failure. *)
    let first_error = ref None in
    let ys =
      Array.to_list
        (Array.map
           (function
             | Done r -> Some r
             | Raised (e, bt) ->
               if !first_error = None then first_error := Some (e, bt);
               None
             | Pending ->
               (* Only reachable when an earlier task poisoned the
                  pool and this one was abandoned. *)
               None)
           results)
    in
    match !first_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> List.map Option.get ys
  end

(* ---- derived metrics ---- *)

let runs_per_sec s =
  if s.pf_wall_ns <= 0. then 0.
  else float_of_int s.pf_tasks /. (s.pf_wall_ns /. 1e9)

let est_speedup s =
  if s.pf_wall_ns <= 0. then 1.
  else
    let busy =
      Array.fold_left (fun acc w -> acc +. w.w_busy_ns) 0. s.pf_workers
    in
    busy /. s.pf_wall_ns

let imbalance_pct s =
  let k = Array.length s.pf_workers in
  if k <= 1 || s.pf_tasks = 0 then 0.
  else begin
    let mn = ref max_int and mx = ref 0 in
    Array.iter
      (fun w ->
         if w.w_tasks < !mn then mn := w.w_tasks;
         if w.w_tasks > !mx then mx := w.w_tasks)
      s.pf_workers;
    let mean = float_of_int s.pf_tasks /. float_of_int k in
    if mean <= 0. then 0. else 100. *. float_of_int (!mx - !mn) /. mean
  end

let speedup_line s =
  Printf.sprintf
    "parallel: %d worker%s, %d runs in %.2f s (%.0f runs/s, est speedup \
     %.2fx, imbalance %.0f%%)"
    s.pf_jobs
    (if s.pf_jobs = 1 then "" else "s")
    s.pf_tasks (s.pf_wall_ns /. 1e9) (runs_per_sec s) (est_speedup s)
    (imbalance_pct s)

let publish metrics s =
  let set name v = Metrics.set (Metrics.gauge metrics name) v in
  set "parfan.jobs" s.pf_jobs;
  set "parfan.tasks" s.pf_tasks;
  set "parfan.wall_ms" (int_of_float (s.pf_wall_ns /. 1e6));
  set "parfan.runs_per_sec" (int_of_float (runs_per_sec s));
  set "parfan.est_speedup_x100" (int_of_float (100. *. est_speedup s));
  set "parfan.imbalance_pct" (int_of_float (imbalance_pct s));
  Array.iteri
    (fun i w ->
       set (Printf.sprintf "parfan.worker%d.tasks" i) w.w_tasks;
       set (Printf.sprintf "parfan.worker%d.busy_ms" i)
         (int_of_float (w.w_busy_ns /. 1e6)))
    s.pf_workers
