type result = {
  dis_bench : string;
  dis_interval : int;
  dis_score : float;
  dis_restarts : int;
  dis_completed : bool;
}

let run ?(seed = 42) ~bench ~interval () =
  (* Periodic injection expects *many* recovered crashes per run; the
     crash-storm cutoff is a runaway guard, not a budget. *)
  let sys = System.build ~seed ~max_crashes:1_000_000 (Sysconf.uniform Policy.enhanced) in
  let kernel = System.kernel sys in
  if interval > 0 then begin
    let last = ref 0 in
    Kernel.set_fault_hook kernel
      (Some
         (fun site ->
            if site.Kernel.site_ep = Endpoint.pm
               && Kernel.window_is_open kernel Endpoint.pm
               && Kernel.proc_vtime kernel Endpoint.pm - !last >= interval
            then begin
              last := Kernel.proc_vtime kernel Endpoint.pm;
              Some (Kernel.F_crash "periodic injected fault")
            end
            else None))
  end;
  let t0 = Kernel.now kernel in
  let halt = System.run sys ~root:bench.Unixbench.b_driver in
  let t1 = Kernel.now kernel in
  let seconds = Costs.cycles_to_seconds (max 1 (t1 - t0)) in
  { dis_bench = bench.Unixbench.b_name;
    dis_interval = interval;
    dis_score = float_of_int bench.Unixbench.b_iters /. seconds;
    dis_restarts = Kernel.restarts kernel;
    dis_completed = (halt = Kernel.H_completed 0) }

let default_intervals =
  [ 0; 102_400_000; 51_200_000; 25_600_000; 12_800_000; 6_400_000;
    3_200_000; 1_600_000; 800_000; 400_000; 200_000; 100_000 ]

(* Each interval is an independent simulation; fan the sweep out over
   the domain pool. Results merge in interval order, so the figure's
   columns are byte-identical to the sequential path. *)
let sweep ?(seed = 42) ?(intervals = default_intervals) ?jobs ?stats bench =
  Parfan.map ?jobs ?stats
    (fun interval -> run ~seed ~bench ~interval ())
    intervals
