type outcome = Pass | Fail | Shutdown | Crash

let outcome_name = function
  | Pass -> "pass"
  | Fail -> "fail"
  | Shutdown -> "shutdown"
  | Crash -> "crash"

let core_server_site (s : Kernel.site) =
  List.mem s.Kernel.site_ep System.core_servers

let profile_sites_conf ?(seed = 42) conf =
  let sys = System.build ~seed conf in
  let seen = Hashtbl.create 4096 in
  let order = ref [] in
  Kernel.set_site_recorder (System.kernel sys)
    (Some
       (fun site ->
          if core_server_site site && not (Hashtbl.mem seen site) then begin
            Hashtbl.replace seen site ();
            order := site :: !order
          end));
  let (_ : Kernel.halt) = System.run sys ~root:Testsuite.driver in
  List.rev !order

let profile_sites ?seed policy = profile_sites_conf ?seed (Sysconf.uniform policy)

let select_sites ?(seed = 7) ~sample sites =
  if sample <= 0 || sample >= List.length sites then sites
  else begin
    let arr = Array.of_list sites in
    Osiris_util.Rng.shuffle (Osiris_util.Rng.create seed) arr;
    Array.to_list (Array.sub arr 0 sample)
  end

let classify halt (results : Testsuite.results) =
  match halt with
  | Kernel.H_shutdown _ -> Shutdown
  | Kernel.H_panic _ | Kernel.H_hang -> Crash
  | Kernel.H_completed status ->
    if not results.Testsuite.complete then Crash
    else if results.Testsuite.failed > 0 || status <> 0 then Fail
    else Pass

let run_one_conf ?(seed = 42) conf site action =
  let sys = System.build ~seed conf in
  let fired = ref false in
  Kernel.set_fault_hook (System.kernel sys)
    (Some
       (fun s ->
          if (not !fired) && Kernel.compare_site s site = 0 then begin
            fired := true;
            Some action
          end
          else None));
  let halt = System.run sys ~root:Testsuite.driver in
  let results = Testsuite.parse_results (System.log_lines sys) in
  classify halt results

let run_one ?seed policy site action =
  run_one_conf ?seed (Sysconf.uniform policy) site action

type row = {
  row_policy : string;
  runs : int;
  pass : int;
  fail : int;
  shutdown : int;
  crash : int;
}

let run_multi ?(seed = 42) policy faults =
  let sys = System.build ~seed (Sysconf.uniform policy) in
  let armed =
    List.map (fun (site, action) -> (site, action, ref false)) faults
  in
  Kernel.set_fault_hook (System.kernel sys)
    (Some
       (fun s ->
          let rec find = function
            | [] -> None
            | (site, action, fired) :: rest ->
              if (not !fired) && Kernel.compare_site s site = 0 then begin
                fired := true;
                Some action
              end
              else find rest
          in
          find armed));
  let halt = System.run sys ~root:Testsuite.driver in
  classify halt (Testsuite.parse_results (System.log_lines sys))

let survivability_multi ?(seed = 42) ?(sample = 60) ~k model policies =
  let sites = Array.of_list (profile_sites ~seed Policy.enhanced) in
  let rng = Osiris_util.Rng.create (seed + 2) in
  let groups =
    List.init (max 1 sample) (fun _ ->
        (* k distinct sites per run *)
        let chosen = Hashtbl.create k in
        let rec pick acc n =
          if n = 0 then acc
          else
            let i = Osiris_util.Rng.int rng (Array.length sites) in
            if Hashtbl.mem chosen i then pick acc n
            else begin
              Hashtbl.replace chosen i ();
              let site = sites.(i) in
              pick ((site, Edfi.action_for model site) :: acc) (n - 1)
            end
        in
        pick [] (min k (Array.length sites)))
  in
  List.map
    (fun policy ->
       let counts = Hashtbl.create 4 in
       let bump o =
         Hashtbl.replace counts o
           (1 + Option.value ~default:0 (Hashtbl.find_opt counts o))
       in
       List.iter (fun faults -> bump (run_multi ~seed policy faults)) groups;
       let get o = Option.value ~default:0 (Hashtbl.find_opt counts o) in
       { row_policy = policy.Policy.name;
         runs = List.length groups;
         pass = get Pass;
         fail = get Fail;
         shutdown = get Shutdown;
         crash = get Crash })
    policies


let fraction row outcome =
  let n = match outcome with
    | Pass -> row.pass
    | Fail -> row.fail
    | Shutdown -> row.shutdown
    | Crash -> row.crash
  in
  if row.runs = 0 then 0. else float_of_int n /. float_of_int row.runs

(* Profiling runs under uniform enhanced: the site stream is produced
   by a fault-free suite run, and the enhanced stream is a superset of
   every evaluation policy's (asserted by test_compartment's profile-
   superset test, replacing the old "in practice" hand-wave). *)
let survivability_matrix ?(seed = 42) ?(sample = 120) model confs =
  let sites = profile_sites ~seed Policy.enhanced in
  let sites = select_sites ~seed:(seed + 1) ~sample sites in
  let faults = List.map (fun s -> (s, Edfi.action_for model s)) sites in
  List.map
    (fun conf ->
       let counts = Hashtbl.create 4 in
       let bump o =
         Hashtbl.replace counts o (1 + Option.value ~default:0 (Hashtbl.find_opt counts o))
       in
       List.iter
         (fun (site, action) -> bump (run_one_conf ~seed conf site action))
         faults;
       let get o = Option.value ~default:0 (Hashtbl.find_opt counts o) in
       { row_policy = Sysconf.name conf;
         runs = List.length faults;
         pass = get Pass;
         fail = get Fail;
         shutdown = get Shutdown;
         crash = get Crash })
    confs

(* Tables II/III are the uniform diagonal of the matrix: a uniform spec
   of each evaluation policy (row labels coincide — [Sysconf.uniform p]
   is named [p.name]). *)
let survivability ?seed ?sample model policies =
  survivability_matrix ?seed ?sample model (List.map Sysconf.uniform policies)
