type outcome = Pass | Fail | Shutdown | Crash

let outcome_name = function
  | Pass -> "pass"
  | Fail -> "fail"
  | Shutdown -> "shutdown"
  | Crash -> "crash"

let core_server_site (s : Kernel.site) =
  List.mem s.Kernel.site_ep System.core_servers

let profile_sites_conf ?(seed = 42) conf =
  let sys = System.build ~seed conf in
  let seen = Hashtbl.create 4096 in
  let order = ref [] in
  Kernel.set_site_recorder (System.kernel sys)
    (Some
       (fun site ->
          if core_server_site site && not (Hashtbl.mem seen site) then begin
            Hashtbl.replace seen site ();
            order := site :: !order
          end));
  let (_ : Kernel.halt) = System.run sys ~root:Testsuite.driver in
  List.rev !order

let profile_sites ?seed policy = profile_sites_conf ?seed (Sysconf.uniform policy)

(* Identity-derived sampling: a site's rank is a hash of its *name*
   (mixed with the selection seed), not its position in the profiled
   list. A position-based shuffle reshuffles the whole selection the
   moment the site list grows (a new handler, a deeper suite run
   renumbering everything after it); ranking by identity keeps the
   selection stable up to the marginal displacement the new sites
   themselves cause. Selection = the [sample] smallest ranks, ties
   broken by name; the chosen sites are returned in rank order
   (deterministic, independent of input order). *)
let site_rank seed name =
  (* FNV-1a over the site name, seed folded into the offset basis;
     self-contained so the fixture test pins bytes, not stdlib
     internals. Masked to 62 bits to stay a nonnegative OCaml int. *)
  let mask = (1 lsl 62) - 1 in
  let h = ref ((0x811c9dc5 lxor (seed * 0x01000193)) land mask) in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land mask)
    name;
  !h

let select_sites ?(seed = 7) ~sample sites =
  if sample <= 0 || sample >= List.length sites then sites
  else
    List.map snd
      (List.filteri
         (fun i _ -> i < sample)
         (List.sort
            (fun (a, _) (b, _) -> compare a b)
            (List.map
               (fun s ->
                  let name = Kernel.site_to_string s in
                  ((site_rank seed name, name), s))
               sites)))

let classify halt (results : Testsuite.results) =
  match halt with
  | Kernel.H_shutdown _ -> Shutdown
  | Kernel.H_panic _ | Kernel.H_hang -> Crash
  | Kernel.H_completed status ->
    if not results.Testsuite.complete then Crash
    else if results.Testsuite.failed > 0 || status <> 0 then Fail
    else Pass

let run_one_conf ?(seed = 42) conf site action =
  let sys = System.build ~seed conf in
  let fired = ref false in
  Kernel.set_fault_hook (System.kernel sys)
    (Some
       (fun s ->
          if (not !fired) && Kernel.compare_site s site = 0 then begin
            fired := true;
            Some action
          end
          else None));
  let halt = System.run sys ~root:Testsuite.driver in
  let results = Testsuite.parse_results (System.log_lines sys) in
  classify halt results

let run_one ?seed policy site action =
  run_one_conf ?seed (Sysconf.uniform policy) site action

(* ---- per-run telemetry summaries ----

   A campaign-grade run must not pay observability overhead: attaching
   an event hook flips the kernel's [observing] flag and every event
   record gets constructed. The summary therefore reads only kernel
   introspection counters after the run — crash instants, recovery
   episodes, lifetime counters — which cost nothing while the
   simulation executes. *)

type run_summary = {
  sm_outcome : outcome;
  sm_spec : string;
  sm_site : string;
  sm_final_vtime : int;
  sm_crashes : int;
  sm_restarts : int;
  sm_crash_times : int list;                (* oldest first *)
  sm_episodes : (string * int * int) list;  (* (server, crashed_at,
                                               recovered_at), oldest first *)
  sm_mttr : Histogram.t;                    (* per-run recovery latencies *)
}

let summarize ~spec ~site sys outcome =
  let k = System.kernel sys in
  let episodes =
    List.rev_map
      (fun (ep, c, r) -> (Endpoint.server_name ep, c, r))
      (Kernel.recovery_episodes k)
  in
  let h = Histogram.create () in
  List.iter (fun (_, c, r) -> Histogram.observe h (r - c)) episodes;
  { sm_outcome = outcome;
    sm_spec = spec;
    sm_site = site;
    sm_final_vtime = Kernel.now k;
    sm_crashes = Kernel.crashes k;
    sm_restarts = Kernel.restarts k;
    sm_crash_times = List.rev (Kernel.crash_times k);
    sm_episodes = episodes;
    sm_mttr = h }

let run_one_summary ?(seed = 42) conf site action =
  let sys = System.build ~seed conf in
  let fired = ref false in
  Kernel.set_fault_hook (System.kernel sys)
    (Some
       (fun s ->
          if (not !fired) && Kernel.compare_site s site = 0 then begin
            fired := true;
            Some action
          end
          else None));
  let halt = System.run sys ~root:Testsuite.driver in
  let results = Testsuite.parse_results (System.log_lines sys) in
  summarize ~spec:(Sysconf.name conf) ~site:(Kernel.site_to_string site) sys
    (classify halt results)

type row = {
  row_policy : string;
  runs : int;
  pass : int;
  fail : int;
  shutdown : int;
  crash : int;
}

let run_multi ?(seed = 42) policy faults =
  let sys = System.build ~seed (Sysconf.uniform policy) in
  let armed =
    List.map (fun (site, action) -> (site, action, ref false)) faults
  in
  Kernel.set_fault_hook (System.kernel sys)
    (Some
       (fun s ->
          let rec find = function
            | [] -> None
            | (site, action, fired) :: rest ->
              if (not !fired) && Kernel.compare_site s site = 0 then begin
                fired := true;
                Some action
              end
              else find rest
          in
          find armed));
  let halt = System.run sys ~root:Testsuite.driver in
  classify halt (Testsuite.parse_results (System.log_lines sys))

(* ---- parallel fan-out ----

   Every injection run is an independent deterministic simulation
   (fresh [System.build], no shared mutable state — the kernel's slot
   tables are frozen at module init), so campaigns fan the runs out
   across a {!Parfan} domain pool. The task list is built in row-major
   (spec-major) order and [Parfan.map] merges results in submission
   order, so the counted rows — and every artifact derived from them —
   are byte-identical to the sequential path ([jobs = 1], the oracle
   in test/test_parfan.ml and bench/parfan_bench.ml). *)

let count_rows ~label ~runs_per_row rows outcomes =
  let arr = Array.of_list outcomes in
  List.mapi
    (fun ri row ->
       let counts = Hashtbl.create 4 in
       let bump o =
         Hashtbl.replace counts o
           (1 + Option.value ~default:0 (Hashtbl.find_opt counts o))
       in
       for i = 0 to runs_per_row - 1 do
         bump arr.((ri * runs_per_row) + i)
       done;
       let get o = Option.value ~default:0 (Hashtbl.find_opt counts o) in
       { row_policy = label row;
         runs = runs_per_row;
         pass = get Pass;
         fail = get Fail;
         shutdown = get Shutdown;
         crash = get Crash })
    rows

let survivability_multi ?(seed = 42) ?(sample = 60) ?jobs ?stats ?progress ~k
    model policies =
  let sites = Array.of_list (profile_sites ~seed Policy.enhanced) in
  let rng = Osiris_util.Rng.create (seed + 2) in
  let groups =
    List.init (max 1 sample) (fun _ ->
        (* k distinct sites per run *)
        let chosen = Hashtbl.create k in
        let rec pick acc n =
          if n = 0 then acc
          else
            let i = Osiris_util.Rng.int rng (Array.length sites) in
            if Hashtbl.mem chosen i then pick acc n
            else begin
              Hashtbl.replace chosen i ();
              let site = sites.(i) in
              pick ((site, Edfi.action_for model site) :: acc) (n - 1)
            end
        in
        pick [] (min k (Array.length sites)))
  in
  let tasks =
    List.concat_map
      (fun policy -> List.map (fun faults -> (policy, faults)) groups)
      policies
  in
  let outcomes =
    Parfan.map ?jobs ?stats ?progress
      (fun (policy, faults) -> run_multi ~seed policy faults)
      tasks
  in
  count_rows ~label:(fun (p : Policy.t) -> p.Policy.name)
    ~runs_per_row:(List.length groups) policies outcomes


let fraction row outcome =
  let n = match outcome with
    | Pass -> row.pass
    | Fail -> row.fail
    | Shutdown -> row.shutdown
    | Crash -> row.crash
  in
  if row.runs = 0 then 0. else float_of_int n /. float_of_int row.runs

(* Profiling runs under uniform enhanced: the site stream is produced
   by a fault-free suite run, and the enhanced stream is a superset of
   every evaluation policy's (asserted by test_compartment's profile-
   superset test, replacing the old "in practice" hand-wave).

   [sample] defaults to 0 — the full profiled site set, as in the
   paper's 757-site campaigns. The domain pool makes that the normal
   path; pass a positive [sample] for a quick sampled estimate. *)
let survivability_matrix ?(seed = 42) ?(sample = 0) ?jobs ?stats ?progress
    model confs =
  let sites = profile_sites ~seed Policy.enhanced in
  let sites = select_sites ~seed:(seed + 1) ~sample sites in
  let faults = List.map (fun s -> (s, Edfi.action_for model s)) sites in
  let tasks =
    List.concat_map
      (fun conf ->
         List.map (fun (site, action) -> (conf, site, action)) faults)
      confs
  in
  let outcomes =
    Parfan.map ?jobs ?stats ?progress
      (fun (conf, site, action) -> run_one_conf ~seed conf site action)
      tasks
  in
  count_rows ~label:Sysconf.name ~runs_per_row:(List.length faults) confs
    outcomes

(* Tables II/III are the uniform diagonal of the matrix: a uniform spec
   of each evaluation policy (row labels coincide — [Sysconf.uniform p]
   is named [p.name]). *)
let survivability ?seed ?sample ?jobs ?stats ?progress model policies =
  survivability_matrix ?seed ?sample ?jobs ?stats ?progress model
    (List.map Sysconf.uniform policies)

(* ---- campaign rollup ----

   Per-run summaries merged in submission order into one campaign-level
   telemetry artifact. Every section below is a pure fold over the
   ordered summary list (and the histogram merge is commutative
   anyway), so the rollup is byte-identical at any [--jobs] — the same
   contract as the counted rows, extended to telemetry, and gated by
   bench/timeseries_bench.ml. Pool statistics are the one quantity
   that physically varies with the worker count; they ride in the
   artifact's optional "pool" section, which the identity contract
   explicitly excludes. *)

let crash_bins = 64

type rollup = {
  ro_runs : int;
  ro_pass : int;
  ro_fail : int;
  ro_shutdown : int;
  ro_crash : int;
  ro_crashes_total : int;
  ro_restarts_total : int;
  ro_mttr : Histogram.t;
  ro_mttr_by_server : (string * Histogram.t) list;  (* sorted by name *)
  ro_crash_storm : int array;   (* [crash_bins] counts over vtime *)
  ro_bin_width : int;
  ro_max_vtime : int;
}

let rollup_of_summaries summaries =
  let runs = List.length summaries in
  let count o =
    List.length (List.filter (fun s -> s.sm_outcome = o) summaries)
  in
  let mttr = Histogram.create () in
  (* The campaign histogram is the per-run histograms merged — the
     production use of [Histogram.merge_into]; QCheck asserts merged
     percentiles equal observing the union stream. *)
  List.iter (fun s -> Histogram.merge_into ~into:mttr s.sm_mttr) summaries;
  let by_server = Hashtbl.create 8 in
  List.iter
    (fun s ->
       List.iter
         (fun (srv, c, r) ->
            let h =
              match Hashtbl.find_opt by_server srv with
              | Some h -> h
              | None ->
                let h = Histogram.create () in
                Hashtbl.replace by_server srv h;
                h
            in
            Histogram.observe h (r - c))
         s.sm_episodes)
    summaries;
  let mttr_by_server =
    List.sort
      (fun (a, _) (b, _) -> compare a b)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_server [])
  in
  let max_vtime =
    List.fold_left (fun acc s -> max acc s.sm_final_vtime) 0 summaries
  in
  let bin_width = max 1 ((max_vtime + crash_bins - 1) / crash_bins) in
  let storm = Array.make crash_bins 0 in
  List.iter
    (fun s ->
       List.iter
         (fun at ->
            let b = min (crash_bins - 1) (max 0 (at / bin_width)) in
            storm.(b) <- storm.(b) + 1)
         s.sm_crash_times)
    summaries;
  { ro_runs = runs;
    ro_pass = count Pass;
    ro_fail = count Fail;
    ro_shutdown = count Shutdown;
    ro_crash = count Crash;
    ro_crashes_total =
      List.fold_left (fun acc s -> acc + s.sm_crashes) 0 summaries;
    ro_restarts_total =
      List.fold_left (fun acc s -> acc + s.sm_restarts) 0 summaries;
    ro_mttr = mttr;
    ro_mttr_by_server = mttr_by_server;
    ro_crash_storm = storm;
    ro_bin_width = bin_width;
    ro_max_vtime = max_vtime }

let survivability_matrix_rollup ?(seed = 42) ?(sample = 0) ?jobs ?stats
    ?progress model confs =
  let sites = profile_sites ~seed Policy.enhanced in
  let sites = select_sites ~seed:(seed + 1) ~sample sites in
  let faults = List.map (fun s -> (s, Edfi.action_for model s)) sites in
  let tasks =
    List.concat_map
      (fun conf ->
         List.map (fun (site, action) -> (conf, site, action)) faults)
      confs
  in
  let summaries =
    Parfan.map ?jobs ?stats ?progress
      (fun (conf, site, action) -> run_one_summary ~seed conf site action)
      tasks
  in
  let rows =
    count_rows ~label:Sysconf.name ~runs_per_row:(List.length faults) confs
      (List.map (fun s -> s.sm_outcome) summaries)
  in
  (rows, rollup_of_summaries summaries)

let add_int_array b vals =
  Buffer.add_char b '[';
  Array.iteri
    (fun i v ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b (string_of_int v))
    vals;
  Buffer.add_char b ']'

let add_hist b h =
  Buffer.add_string b
    (Printf.sprintf
       "{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"p50\":%d,\"p95\":%d,\"p99\":%d,\"buckets\":["
       (Histogram.count h) (Histogram.sum h) (Histogram.min_value h)
       (Histogram.max_value h)
       (int_of_float (Histogram.p50 h))
       (int_of_float (Histogram.p95 h))
       (int_of_float (Histogram.p99 h)));
  List.iteri
    (fun i (ub, c) ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b (Printf.sprintf "[%d,%d]" ub c))
    (Histogram.buckets h);
  Buffer.add_string b "]}"

let rollup_to_json ?pool ro =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"runs\":%d,\"pass\":%d,\"fail\":%d,\"shutdown\":%d,\"crash\":%d,\"crashes_total\":%d,\"restarts_total\":%d,\"mttr\":"
       ro.ro_runs ro.ro_pass ro.ro_fail ro.ro_shutdown ro.ro_crash
       ro.ro_crashes_total ro.ro_restarts_total);
  add_hist b ro.ro_mttr;
  Buffer.add_string b ",\"mttr_by_server\":[";
  List.iteri
    (fun i (srv, h) ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b "{\"server\":";
       Buffer.add_string b (Chrome_trace.escaped srv);
       Buffer.add_string b ",\"mttr\":";
       add_hist b h;
       Buffer.add_char b '}')
    ro.ro_mttr_by_server;
  Buffer.add_string b
    (Printf.sprintf "],\"crash_storm\":{\"bin_width\":%d,\"max_vtime\":%d,\"bins\":"
       ro.ro_bin_width ro.ro_max_vtime);
  add_int_array b ro.ro_crash_storm;
  Buffer.add_string b "}";
  (match pool with
   | None -> ()
   | Some (st : Parfan.stats) ->
     (* Wall-clock worker utilization: real time, so this section is
        excluded from the byte-identity contract (it is the only part
        of the artifact allowed to vary with --jobs or across runs). *)
     Buffer.add_string b
       (Printf.sprintf ",\"pool\":{\"jobs\":%d,\"tasks\":%d,\"wall_ms\":%.1f,\"workers\":["
          st.Parfan.pf_jobs st.Parfan.pf_tasks
          (st.Parfan.pf_wall_ns /. 1e6));
     Array.iteri
       (fun i (w : Parfan.worker_stat) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "{\"worker\":%d,\"tasks\":%d,\"busy_ms\":%.1f}" i
               w.Parfan.w_tasks (w.Parfan.w_busy_ns /. 1e6)))
       st.Parfan.pf_workers;
     Buffer.add_string b "]}");
  Buffer.add_char b '}';
  Buffer.contents b
