type outcome = Pass | Fail | Shutdown | Crash

let outcome_name = function
  | Pass -> "pass"
  | Fail -> "fail"
  | Shutdown -> "shutdown"
  | Crash -> "crash"

let core_server_site (s : Kernel.site) =
  List.mem s.Kernel.site_ep System.core_servers

let profile_sites_conf ?(seed = 42) conf =
  let sys = System.build ~seed conf in
  let seen = Hashtbl.create 4096 in
  let order = ref [] in
  Kernel.set_site_recorder (System.kernel sys)
    (Some
       (fun site ->
          if core_server_site site && not (Hashtbl.mem seen site) then begin
            Hashtbl.replace seen site ();
            order := site :: !order
          end));
  let (_ : Kernel.halt) = System.run sys ~root:Testsuite.driver in
  List.rev !order

let profile_sites ?seed policy = profile_sites_conf ?seed (Sysconf.uniform policy)

(* Identity-derived sampling: a site's rank is a hash of its *name*
   (mixed with the selection seed), not its position in the profiled
   list. A position-based shuffle reshuffles the whole selection the
   moment the site list grows (a new handler, a deeper suite run
   renumbering everything after it); ranking by identity keeps the
   selection stable up to the marginal displacement the new sites
   themselves cause. Selection = the [sample] smallest ranks, ties
   broken by name; the chosen sites are returned in rank order
   (deterministic, independent of input order). *)
let site_rank seed name =
  (* FNV-1a over the site name, seed folded into the offset basis;
     self-contained so the fixture test pins bytes, not stdlib
     internals. Masked to 62 bits to stay a nonnegative OCaml int. *)
  let mask = (1 lsl 62) - 1 in
  let h = ref ((0x811c9dc5 lxor (seed * 0x01000193)) land mask) in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land mask)
    name;
  !h

let select_sites ?(seed = 7) ~sample sites =
  if sample <= 0 || sample >= List.length sites then sites
  else
    List.map snd
      (List.filteri
         (fun i _ -> i < sample)
         (List.sort
            (fun (a, _) (b, _) -> compare a b)
            (List.map
               (fun s ->
                  let name = Kernel.site_to_string s in
                  ((site_rank seed name, name), s))
               sites)))

let classify halt (results : Testsuite.results) =
  match halt with
  | Kernel.H_shutdown _ -> Shutdown
  | Kernel.H_panic _ | Kernel.H_hang -> Crash
  | Kernel.H_completed status ->
    if not results.Testsuite.complete then Crash
    else if results.Testsuite.failed > 0 || status <> 0 then Fail
    else Pass

let run_one_conf ?(seed = 42) conf site action =
  let sys = System.build ~seed conf in
  let fired = ref false in
  Kernel.set_fault_hook (System.kernel sys)
    (Some
       (fun s ->
          if (not !fired) && Kernel.compare_site s site = 0 then begin
            fired := true;
            Some action
          end
          else None));
  let halt = System.run sys ~root:Testsuite.driver in
  let results = Testsuite.parse_results (System.log_lines sys) in
  classify halt results

let run_one ?seed policy site action =
  run_one_conf ?seed (Sysconf.uniform policy) site action

type row = {
  row_policy : string;
  runs : int;
  pass : int;
  fail : int;
  shutdown : int;
  crash : int;
}

let run_multi ?(seed = 42) policy faults =
  let sys = System.build ~seed (Sysconf.uniform policy) in
  let armed =
    List.map (fun (site, action) -> (site, action, ref false)) faults
  in
  Kernel.set_fault_hook (System.kernel sys)
    (Some
       (fun s ->
          let rec find = function
            | [] -> None
            | (site, action, fired) :: rest ->
              if (not !fired) && Kernel.compare_site s site = 0 then begin
                fired := true;
                Some action
              end
              else find rest
          in
          find armed));
  let halt = System.run sys ~root:Testsuite.driver in
  classify halt (Testsuite.parse_results (System.log_lines sys))

(* ---- parallel fan-out ----

   Every injection run is an independent deterministic simulation
   (fresh [System.build], no shared mutable state — the kernel's slot
   tables are frozen at module init), so campaigns fan the runs out
   across a {!Parfan} domain pool. The task list is built in row-major
   (spec-major) order and [Parfan.map] merges results in submission
   order, so the counted rows — and every artifact derived from them —
   are byte-identical to the sequential path ([jobs = 1], the oracle
   in test/test_parfan.ml and bench/parfan_bench.ml). *)

let count_rows ~label ~runs_per_row rows outcomes =
  let arr = Array.of_list outcomes in
  List.mapi
    (fun ri row ->
       let counts = Hashtbl.create 4 in
       let bump o =
         Hashtbl.replace counts o
           (1 + Option.value ~default:0 (Hashtbl.find_opt counts o))
       in
       for i = 0 to runs_per_row - 1 do
         bump arr.((ri * runs_per_row) + i)
       done;
       let get o = Option.value ~default:0 (Hashtbl.find_opt counts o) in
       { row_policy = label row;
         runs = runs_per_row;
         pass = get Pass;
         fail = get Fail;
         shutdown = get Shutdown;
         crash = get Crash })
    rows

let survivability_multi ?(seed = 42) ?(sample = 60) ?jobs ?stats ?progress ~k
    model policies =
  let sites = Array.of_list (profile_sites ~seed Policy.enhanced) in
  let rng = Osiris_util.Rng.create (seed + 2) in
  let groups =
    List.init (max 1 sample) (fun _ ->
        (* k distinct sites per run *)
        let chosen = Hashtbl.create k in
        let rec pick acc n =
          if n = 0 then acc
          else
            let i = Osiris_util.Rng.int rng (Array.length sites) in
            if Hashtbl.mem chosen i then pick acc n
            else begin
              Hashtbl.replace chosen i ();
              let site = sites.(i) in
              pick ((site, Edfi.action_for model site) :: acc) (n - 1)
            end
        in
        pick [] (min k (Array.length sites)))
  in
  let tasks =
    List.concat_map
      (fun policy -> List.map (fun faults -> (policy, faults)) groups)
      policies
  in
  let outcomes =
    Parfan.map ?jobs ?stats ?progress
      (fun (policy, faults) -> run_multi ~seed policy faults)
      tasks
  in
  count_rows ~label:(fun (p : Policy.t) -> p.Policy.name)
    ~runs_per_row:(List.length groups) policies outcomes


let fraction row outcome =
  let n = match outcome with
    | Pass -> row.pass
    | Fail -> row.fail
    | Shutdown -> row.shutdown
    | Crash -> row.crash
  in
  if row.runs = 0 then 0. else float_of_int n /. float_of_int row.runs

(* Profiling runs under uniform enhanced: the site stream is produced
   by a fault-free suite run, and the enhanced stream is a superset of
   every evaluation policy's (asserted by test_compartment's profile-
   superset test, replacing the old "in practice" hand-wave).

   [sample] defaults to 0 — the full profiled site set, as in the
   paper's 757-site campaigns. The domain pool makes that the normal
   path; pass a positive [sample] for a quick sampled estimate. *)
let survivability_matrix ?(seed = 42) ?(sample = 0) ?jobs ?stats ?progress
    model confs =
  let sites = profile_sites ~seed Policy.enhanced in
  let sites = select_sites ~seed:(seed + 1) ~sample sites in
  let faults = List.map (fun s -> (s, Edfi.action_for model s)) sites in
  let tasks =
    List.concat_map
      (fun conf ->
         List.map (fun (site, action) -> (conf, site, action)) faults)
      confs
  in
  let outcomes =
    Parfan.map ?jobs ?stats ?progress
      (fun (conf, site, action) -> run_one_conf ~seed conf site action)
      tasks
  in
  count_rows ~label:Sysconf.name ~runs_per_row:(List.length faults) confs
    outcomes

(* Tables II/III are the uniform diagonal of the matrix: a uniform spec
   of each evaluation policy (row labels coincide — [Sysconf.uniform p]
   is named [p.name]). *)
let survivability ?seed ?sample ?jobs ?stats ?progress model policies =
  survivability_matrix ?seed ?sample ?jobs ?stats ?progress model
    (List.map Sysconf.uniform policies)
