(** Domain-pool fan-out for embarrassingly parallel campaigns.

    A fault-injection campaign is thousands of independent
    deterministic simulations: every run boots its own kernel
    ([System.build] holds no hot-path globals — asserted by the
    slot-table freeze in [lib/kernel] and the concurrent-kernel tests
    in [test/test_parfan.ml]), so the sweep parallelizes across OCaml 5
    domains without changing a single simulated cycle. The engine is a
    classic [Mutex]/[Condition] work queue: the caller submits tasks in
    order, [jobs] worker domains drain the queue, and results are
    merged back {e in submission order} — so every JSON artifact,
    table row and [ss_*] counter downstream is byte-identical to the
    sequential path. [jobs = 1] {e is} the sequential path (a plain
    in-domain [List.map], no pool), and serves as the oracle in tests
    and benches.

    Determinism-by-merge-order: each task is a pure function of its
    inputs (the simulation is deterministic per seed), tasks share no
    state, and the output order is fixed by the caller, so scheduling
    nondeterminism inside the pool is unobservable. This is the
    Determinator contract — parallel execution, results deterministic
    by construction — applied at campaign granularity.

    Worker domains enlarge their minor heap to 8M words at startup
    (override with [OSIRIS_MINOR_HEAP], in words): at the runtime's
    default nursery size, OCaml 5's stop-the-world minor collections
    serialize allocation-heavy domains badly enough that a pool can be
    slower than sequential. The calling domain's GC settings are never
    touched. *)

type worker_stat = {
  w_tasks : int;       (** Tasks this worker completed. *)
  w_busy_ns : float;   (** Wall time spent inside tasks. *)
}

type stats = {
  pf_jobs : int;                  (** Worker count actually used. *)
  pf_tasks : int;                 (** Tasks executed. *)
  pf_wall_ns : float;             (** Wall time of the whole map. *)
  pf_workers : worker_stat array; (** Length [pf_jobs], worker id order. *)
}

val default_jobs : unit -> int
(** [max 1 (recommended_domain_count - 1)] — one domain is left for
    the submitting/merging domain — overridable with [OSIRIS_JOBS]
    (a positive integer; anything else is ignored). *)

val resolve_jobs : ?jobs:int -> int -> int
(** [resolve_jobs ?jobs n_tasks] is the worker count a map over
    [n_tasks] tasks will use: [jobs] when given and positive
    ([jobs <= 0] means "auto", i.e. {!default_jobs}), clamped to
    [n_tasks] (no idle workers) and to at least 1. *)

val map :
  ?jobs:int ->
  ?stats:(stats -> unit) ->
  ?progress:(completed:int -> total:int -> unit) ->
  ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] with results in submission order. With a resolved
    worker count of 1 this is exactly [List.map f xs] run in the
    calling domain. [progress] fires after each task completes (from a
    worker domain, under the pool lock — keep it cheap); [stats]
    receives the final pool statistics. A task raising an exception
    poisons the map: remaining queued tasks are abandoned and the
    first exception in submission order is re-raised after the pool
    drains. *)

(** {1 Derived metrics} *)

val runs_per_sec : stats -> float

val est_speedup : stats -> float
(** Aggregate busy time over wall time — what the fan-out bought
    versus running the same tasks back to back on one domain. *)

val imbalance_pct : stats -> float
(** [(max - min) / mean] of per-worker task counts, in percent; 0 for
    a perfectly balanced (or single-worker) pool. *)

val speedup_line : stats -> string
(** One human line: workers, tasks, wall, runs/sec, estimated speedup,
    imbalance — what [osiris survivability --jobs N] prints. *)

val publish : Metrics.t -> stats -> unit
(** Publish the pool statistics as gauges: [parfan.jobs],
    [parfan.tasks], [parfan.wall_ms], [parfan.runs_per_sec],
    [parfan.est_speedup_x100], [parfan.imbalance_pct], and per-worker
    [parfan.worker<i>.tasks] / [parfan.worker<i>.busy_ms]. *)
