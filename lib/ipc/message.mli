(** The complete message vocabulary of the simulated OS.

    Messages mirror the MINIX 3 call map that OSIRIS instrumented:
    user processes call PM (process management), VFS (files), VM
    (memory), DS (key-value store) and RS (service status); VFS calls
    MFS (the actual file system), which calls the block driver; the
    kernel notifies RS about crashes.

    Every constructor has a {!Tag.t} used for three purposes: handler
    dispatch inside servers, SEEP side-effect classification
    ({!Seep.classify}), and fault-site identity in the injection
    campaigns. *)

type whence = Seek_set | Seek_cur | Seek_end [@@deriving show, eq]

type open_flags = { o_create : bool; o_trunc : bool; o_append : bool }
[@@deriving show, eq]

val rdonly : open_flags
(** Plain open for reading/writing an existing file. *)

val creat : open_flags
(** Create-or-truncate, the common write-path flags. *)

type stat_info = { st_ino : int; st_size : int; st_is_dir : bool }
[@@deriving show, eq]

type t =
  (* --- user -> PM ------------------------------------------------ *)
  | Fork
  | Exec of { path : string; arg : int }
  | Exit of { status : int }
  | Waitpid of { pid : int }
  | Getpid
  | Getppid
  | Kill of { pid : int; signal : int }
  | Signal_set of { signal : int; ignore : bool }
  | Adopt
      (** Register the (kernel-spawned) caller in PM's process table as
          a primordial orphan, with VM/VFS introductions — the
          session-connect step of the open-loop load engine. *)
      (** Set the caller's disposition for a signal: ignore or default.
          SIGKILL (9) cannot be ignored. *)
  (* --- PM -> VM --------------------------------------------------- *)
  | Vm_fork of { parent : int; child : int }
  | Vm_exec of { proc : int; size : int }
  | Vm_exit of { proc : int }
  (* --- PM -> VFS -------------------------------------------------- *)
  | Vfs_fork of { parent : int; child : int }
  | Vfs_exec of { proc : int; path : string }
  | Vfs_exit of { proc : int }
  (* --- user -> VFS ------------------------------------------------ *)
  | Open of { path : string; flags : open_flags }
  | Close of { fd : int }
  | Read of { fd : int; len : int }
  | Write of { fd : int; data : string }
  | Lseek of { fd : int; off : int; whence : whence }
  | Pipe
  | Dup of { fd : int }
  | Unlink of { path : string }
  | Mkdir of { path : string }
  | Rmdir of { path : string }
  | Stat of { path : string }
  | Fstat of { fd : int }
  | Rename of { src : string; dst : string }
  | Chdir of { path : string }
  | Readdir of { path : string }
  | Dup2 of { fd : int; tofd : int }
  | Sync
  (* --- VFS -> MFS ------------------------------------------------- *)
  | Mfs_lookup of { path : string }
  | Mfs_create of { path : string }
  | Mfs_read of { ino : int; off : int; len : int }
  | Mfs_write of { ino : int; off : int; data : string }
  | Mfs_trunc of { ino : int; len : int }
  | Mfs_unlink of { path : string }
  | Mfs_mkdir of { path : string }
  | Mfs_rmdir of { path : string }
  | Mfs_stat of { ino : int }
  | Mfs_readdir of { ino : int }
  | Mfs_rename of { src : string; dst : string }
  | Mfs_sync
  (* --- MFS -> block driver ---------------------------------------- *)
  | Bdev_read of { block : int }
  | Bdev_write of { block : int; data : string }
  (* --- user -> VM ------------------------------------------------- *)
  | Brk of { delta : int }
  | Brk_query
  | Mmap of { len : int }
  | Munmap of { id : int }
  | Vm_info
  (* --- user/servers -> DS ----------------------------------------- *)
  | Ds_publish of { key : string; value : int }
  | Ds_retrieve of { key : string }
  | Ds_delete of { key : string }
  | Ds_subscribe of { prefix : string }
  | Ds_notify of { key : string }            (* DS -> subscriber, notification *)
  (* --- user -> RS, RS -> servers ---------------------------------- *)
  | Rs_status
  | Rs_lookup of { label : string }
  | Ping
  (* --- kernel-adjacent -------------------------------------------- *)
  | Crash_notify of { ep : int; reason : string }  (* kernel -> RS *)
  | Alarm                                          (* kernel -> subscriber *)
  | Diag of { line : string }                      (* any -> kernel log sink *)
  (* --- replies ----------------------------------------------------- *)
  | R_ok of int
  | R_err of Errno.t
  | R_fork of { child : int }
  | R_wait of { pid : int; status : int }
  | R_read of { data : string }
  | R_pipe of { rfd : int; wfd : int }
  | R_stat of stat_info
  | R_lookup of { ino : int; size : int; is_dir : bool }
  | R_ds_value of { value : int }
  | R_brk of { break : int }
  | R_mmap of { id : int }
  | R_vm_info of { pages_used : int; pages_free : int }
  | R_rs_status of { restarts : int; shutdowns : int; services : int }
  | R_names of { names : string list }
  | R_pong
[@@deriving show, eq]

module Tag : sig
  type msg = t

  type t =
    | T_fork | T_exec | T_exit | T_waitpid | T_getpid | T_getppid | T_kill
    | T_signal_set | T_adopt
    | T_vm_fork | T_vm_exec | T_vm_exit
    | T_vfs_fork | T_vfs_exec | T_vfs_exit
    | T_open | T_close | T_read | T_write | T_lseek | T_pipe | T_dup
    | T_unlink | T_mkdir | T_rmdir | T_stat | T_fstat | T_rename | T_chdir
    | T_readdir | T_dup2
    | T_sync
    | T_mfs_lookup | T_mfs_create | T_mfs_read | T_mfs_write | T_mfs_trunc
    | T_mfs_unlink | T_mfs_mkdir | T_mfs_rmdir | T_mfs_stat | T_mfs_readdir
    | T_mfs_rename
    | T_mfs_sync
    | T_bdev_read | T_bdev_write
    | T_brk | T_brk_query | T_mmap | T_munmap | T_vm_info
    | T_ds_publish | T_ds_retrieve | T_ds_delete | T_ds_subscribe | T_ds_notify
    | T_rs_status | T_rs_lookup | T_ping
    | T_crash_notify | T_alarm | T_diag
    | T_kcall  (* pseudo-tag: privileged kernel call (no message form) *)
    | T_reply
  [@@deriving show, eq]

  val of_msg : msg -> t

  val to_string : t -> string
  (** Short lowercase name, e.g. ["fork"], ["mfs_read"]. *)

  val all : t list
  (** Every tag, declaration order. *)

  val n_tags : int

  val to_index : t -> int
  (** Dense id in \[0, {!n_tags}), stable for a given build — the wire
      id used by the journal codec. Allocation-free (tags are nullary
      constructors). *)

  val of_index : int -> t option
  (** Inverse of {!to_index}; [None] outside \[0, {!n_tags}). *)
end

val is_reply : t -> bool
(** True for the [R_*] constructors. *)

val corrupt : Osiris_util.Rng.t -> t -> t
(** Mutate one field of the message (integer skew, truncated or
    altered string) — the "corrupted outbound message" fault of the
    full-EDFI model. Structure-preserving: the tag never changes. *)
