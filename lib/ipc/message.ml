type whence = Seek_set | Seek_cur | Seek_end [@@deriving show, eq]

type open_flags = { o_create : bool; o_trunc : bool; o_append : bool }
[@@deriving show, eq]

let rdonly = { o_create = false; o_trunc = false; o_append = false }
let creat = { o_create = true; o_trunc = true; o_append = false }

type stat_info = { st_ino : int; st_size : int; st_is_dir : bool }
[@@deriving show, eq]

type t =
  | Fork
  | Exec of { path : string; arg : int }
  | Exit of { status : int }
  | Waitpid of { pid : int }
  | Getpid
  | Getppid
  | Kill of { pid : int; signal : int }
  | Signal_set of { signal : int; ignore : bool }
  | Adopt
  | Vm_fork of { parent : int; child : int }
  | Vm_exec of { proc : int; size : int }
  | Vm_exit of { proc : int }
  | Vfs_fork of { parent : int; child : int }
  | Vfs_exec of { proc : int; path : string }
  | Vfs_exit of { proc : int }
  | Open of { path : string; flags : open_flags }
  | Close of { fd : int }
  | Read of { fd : int; len : int }
  | Write of { fd : int; data : string }
  | Lseek of { fd : int; off : int; whence : whence }
  | Pipe
  | Dup of { fd : int }
  | Unlink of { path : string }
  | Mkdir of { path : string }
  | Rmdir of { path : string }
  | Stat of { path : string }
  | Fstat of { fd : int }
  | Rename of { src : string; dst : string }
  | Chdir of { path : string }
  | Readdir of { path : string }
  | Dup2 of { fd : int; tofd : int }
  | Sync
  | Mfs_lookup of { path : string }
  | Mfs_create of { path : string }
  | Mfs_read of { ino : int; off : int; len : int }
  | Mfs_write of { ino : int; off : int; data : string }
  | Mfs_trunc of { ino : int; len : int }
  | Mfs_unlink of { path : string }
  | Mfs_mkdir of { path : string }
  | Mfs_rmdir of { path : string }
  | Mfs_stat of { ino : int }
  | Mfs_readdir of { ino : int }
  | Mfs_rename of { src : string; dst : string }
  | Mfs_sync
  | Bdev_read of { block : int }
  | Bdev_write of { block : int; data : string }
  | Brk of { delta : int }
  | Brk_query
  | Mmap of { len : int }
  | Munmap of { id : int }
  | Vm_info
  | Ds_publish of { key : string; value : int }
  | Ds_retrieve of { key : string }
  | Ds_delete of { key : string }
  | Ds_subscribe of { prefix : string }
  | Ds_notify of { key : string }
  | Rs_status
  | Rs_lookup of { label : string }
  | Ping
  | Crash_notify of { ep : int; reason : string }
  | Alarm
  | Diag of { line : string }
  | R_ok of int
  | R_err of Errno.t
  | R_fork of { child : int }
  | R_wait of { pid : int; status : int }
  | R_read of { data : string }
  | R_pipe of { rfd : int; wfd : int }
  | R_stat of stat_info
  | R_lookup of { ino : int; size : int; is_dir : bool }
  | R_ds_value of { value : int }
  | R_brk of { break : int }
  | R_mmap of { id : int }
  | R_vm_info of { pages_used : int; pages_free : int }
  | R_rs_status of { restarts : int; shutdowns : int; services : int }
  | R_names of { names : string list }
  | R_pong
[@@deriving show, eq]

module Tag = struct
  type msg = t

  type t =
    | T_fork | T_exec | T_exit | T_waitpid | T_getpid | T_getppid | T_kill
    | T_signal_set | T_adopt
    | T_vm_fork | T_vm_exec | T_vm_exit
    | T_vfs_fork | T_vfs_exec | T_vfs_exit
    | T_open | T_close | T_read | T_write | T_lseek | T_pipe | T_dup
    | T_unlink | T_mkdir | T_rmdir | T_stat | T_fstat | T_rename | T_chdir
    | T_readdir | T_dup2
    | T_sync
    | T_mfs_lookup | T_mfs_create | T_mfs_read | T_mfs_write | T_mfs_trunc
    | T_mfs_unlink | T_mfs_mkdir | T_mfs_rmdir | T_mfs_stat | T_mfs_readdir
    | T_mfs_rename
    | T_mfs_sync
    | T_bdev_read | T_bdev_write
    | T_brk | T_brk_query | T_mmap | T_munmap | T_vm_info
    | T_ds_publish | T_ds_retrieve | T_ds_delete | T_ds_subscribe | T_ds_notify
    | T_rs_status | T_rs_lookup | T_ping
    | T_crash_notify | T_alarm | T_diag
    | T_kcall  (* pseudo-tag: privileged kernel call (no message form) *)
    | T_reply
  [@@deriving show, eq]

  let of_msg = function
    | Fork -> T_fork
    | Exec _ -> T_exec
    | Exit _ -> T_exit
    | Waitpid _ -> T_waitpid
    | Getpid -> T_getpid
    | Getppid -> T_getppid
    | Kill _ -> T_kill
    | Signal_set _ -> T_signal_set
    | Adopt -> T_adopt
    | Vm_fork _ -> T_vm_fork
    | Vm_exec _ -> T_vm_exec
    | Vm_exit _ -> T_vm_exit
    | Vfs_fork _ -> T_vfs_fork
    | Vfs_exec _ -> T_vfs_exec
    | Vfs_exit _ -> T_vfs_exit
    | Open _ -> T_open
    | Close _ -> T_close
    | Read _ -> T_read
    | Write _ -> T_write
    | Lseek _ -> T_lseek
    | Pipe -> T_pipe
    | Dup _ -> T_dup
    | Unlink _ -> T_unlink
    | Mkdir _ -> T_mkdir
    | Rmdir _ -> T_rmdir
    | Stat _ -> T_stat
    | Fstat _ -> T_fstat
    | Rename _ -> T_rename
    | Chdir _ -> T_chdir
    | Readdir _ -> T_readdir
    | Dup2 _ -> T_dup2
    | Sync -> T_sync
    | Mfs_lookup _ -> T_mfs_lookup
    | Mfs_create _ -> T_mfs_create
    | Mfs_read _ -> T_mfs_read
    | Mfs_write _ -> T_mfs_write
    | Mfs_trunc _ -> T_mfs_trunc
    | Mfs_unlink _ -> T_mfs_unlink
    | Mfs_mkdir _ -> T_mfs_mkdir
    | Mfs_rmdir _ -> T_mfs_rmdir
    | Mfs_stat _ -> T_mfs_stat
    | Mfs_readdir _ -> T_mfs_readdir
    | Mfs_rename _ -> T_mfs_rename
    | Mfs_sync -> T_mfs_sync
    | Bdev_read _ -> T_bdev_read
    | Bdev_write _ -> T_bdev_write
    | Brk _ -> T_brk
    | Brk_query -> T_brk_query
    | Mmap _ -> T_mmap
    | Munmap _ -> T_munmap
    | Vm_info -> T_vm_info
    | Ds_publish _ -> T_ds_publish
    | Ds_retrieve _ -> T_ds_retrieve
    | Ds_delete _ -> T_ds_delete
    | Ds_subscribe _ -> T_ds_subscribe
    | Ds_notify _ -> T_ds_notify
    | Rs_status -> T_rs_status
    | Rs_lookup _ -> T_rs_lookup
    | Ping -> T_ping
    | Crash_notify _ -> T_crash_notify
    | Alarm -> T_alarm
    | Diag _ -> T_diag
    | R_ok _ | R_err _ | R_fork _ | R_wait _ | R_read _ | R_pipe _ | R_stat _
    | R_lookup _ | R_ds_value _ | R_brk _ | R_mmap _ | R_vm_info _
    | R_rs_status _ | R_names _ | R_pong -> T_reply

  let to_string t =
    (* show produces "Message.Tag.T_fork"; strip to "fork". *)
    let s = show t in
    let s =
      match String.rindex_opt s '.' with
      | Some i -> String.sub s (i + 1) (String.length s - i - 1)
      | None -> s
    in
    if String.length s > 2 && String.sub s 0 2 = "T_" then
      String.sub s 2 (String.length s - 2)
    else s

  let all =
    [ T_fork; T_exec; T_exit; T_waitpid; T_getpid; T_getppid; T_kill;
      T_signal_set; T_adopt;
      T_vm_fork; T_vm_exec; T_vm_exit;
      T_vfs_fork; T_vfs_exec; T_vfs_exit;
      T_open; T_close; T_read; T_write; T_lseek; T_pipe; T_dup;
      T_unlink; T_mkdir; T_rmdir; T_stat; T_fstat; T_rename; T_chdir;
      T_readdir; T_dup2;
      T_sync;
      T_mfs_lookup; T_mfs_create; T_mfs_read; T_mfs_write; T_mfs_trunc;
      T_mfs_unlink; T_mfs_mkdir; T_mfs_rmdir; T_mfs_stat; T_mfs_readdir;
      T_mfs_rename;
      T_mfs_sync;
      T_bdev_read; T_bdev_write;
      T_brk; T_brk_query; T_mmap; T_munmap; T_vm_info;
      T_ds_publish; T_ds_retrieve; T_ds_delete; T_ds_subscribe; T_ds_notify;
      T_rs_status; T_rs_lookup; T_ping;
      T_crash_notify; T_alarm; T_diag;
      T_kcall;
      T_reply ]

  (* Dense codec ids, declaration order. Tags are nullary constructors,
     so the runtime already represents them as exactly these ids; the
     cast makes [to_index] free on the journal's encode hot path, and
     the init-time check below fails loudly if a constructor is ever
     added out of order or given an argument. *)
  let by_index : t array = Array.of_list all

  let n_tags = Array.length by_index

  let to_index (tag : t) : int = Obj.magic tag

  let () =
    Array.iteri
      (fun i tag ->
         if to_index tag <> i then
           failwith "Message.Tag: constructor representation skew")
      by_index

  let of_index i =
    if i >= 0 && i < n_tags then Some by_index.(i) else None
end

let is_reply m = Tag.of_msg m = Tag.T_reply

(* Deterministic, structure-preserving corruption for the full-EDFI
   fault model. Integers are skewed (off-by-one or sign flip), strings
   are truncated or get a character flipped. *)
let corrupt rng m =
  let ci v =
    match Osiris_util.Rng.int rng 3 with
    | 0 -> v + 1
    | 1 -> v - 1
    | _ -> -v
  in
  let cs s =
    if String.length s = 0 then "x"
    else
      match Osiris_util.Rng.int rng 2 with
      | 0 -> String.sub s 0 (String.length s - 1)
      | _ ->
        let b = Bytes.of_string s in
        let i = Osiris_util.Rng.int rng (Bytes.length b) in
        Bytes.set b i (Char.chr ((Char.code (Bytes.get b i) + 1) land 0x7f));
        Bytes.to_string b
  in
  match m with
  | Fork -> Fork
  | Exec { path; arg } ->
    if Osiris_util.Rng.bool rng then Exec { path = cs path; arg }
    else Exec { path; arg = ci arg }
  | Exit { status } -> Exit { status = ci status }
  | Waitpid { pid } -> Waitpid { pid = ci pid }
  | Getpid -> Getpid
  | Getppid -> Getppid
  | Kill { pid; signal } ->
    if Osiris_util.Rng.bool rng then Kill { pid = ci pid; signal }
    else Kill { pid; signal = ci signal }
  | Signal_set { signal; ignore } -> Signal_set { signal = ci signal; ignore }
  | Adopt -> Adopt
  | Vm_fork { parent; child } -> Vm_fork { parent = ci parent; child }
  | Vm_exec { proc; size } -> Vm_exec { proc; size = ci size }
  | Vm_exit { proc } -> Vm_exit { proc = ci proc }
  | Vfs_fork { parent; child } -> Vfs_fork { parent; child = ci child }
  | Vfs_exec { proc; path } -> Vfs_exec { proc; path = cs path }
  | Vfs_exit { proc } -> Vfs_exit { proc = ci proc }
  | Open { path; flags } -> Open { path = cs path; flags }
  | Close { fd } -> Close { fd = ci fd }
  | Read { fd; len } ->
    if Osiris_util.Rng.bool rng then Read { fd = ci fd; len }
    else Read { fd; len = ci len }
  | Write { fd; data } ->
    if Osiris_util.Rng.bool rng then Write { fd = ci fd; data }
    else Write { fd; data = cs data }
  | Lseek { fd; off; whence } -> Lseek { fd; off = ci off; whence }
  | Pipe -> Pipe
  | Dup { fd } -> Dup { fd = ci fd }
  | Unlink { path } -> Unlink { path = cs path }
  | Mkdir { path } -> Mkdir { path = cs path }
  | Rmdir { path } -> Rmdir { path = cs path }
  | Stat { path } -> Stat { path = cs path }
  | Fstat { fd } -> Fstat { fd = ci fd }
  | Rename { src; dst } -> Rename { src = cs src; dst }
  | Chdir { path } -> Chdir { path = cs path }
  | Readdir { path } -> Readdir { path = cs path }
  | Dup2 { fd; tofd } ->
    if Osiris_util.Rng.bool rng then Dup2 { fd = ci fd; tofd }
    else Dup2 { fd; tofd = ci tofd }
  | Sync -> Sync
  | Mfs_lookup { path } -> Mfs_lookup { path = cs path }
  | Mfs_create { path } -> Mfs_create { path = cs path }
  | Mfs_read { ino; off; len } -> Mfs_read { ino = ci ino; off; len }
  | Mfs_write { ino; off; data } ->
    if Osiris_util.Rng.bool rng then Mfs_write { ino; off = ci off; data }
    else Mfs_write { ino; off; data = cs data }
  | Mfs_trunc { ino; len } -> Mfs_trunc { ino; len = ci len }
  | Mfs_unlink { path } -> Mfs_unlink { path = cs path }
  | Mfs_mkdir { path } -> Mfs_mkdir { path = cs path }
  | Mfs_rmdir { path } -> Mfs_rmdir { path = cs path }
  | Mfs_stat { ino } -> Mfs_stat { ino = ci ino }
  | Mfs_readdir { ino } -> Mfs_readdir { ino = ci ino }
  | Mfs_rename { src; dst } -> Mfs_rename { src; dst = cs dst }
  | Mfs_sync -> Mfs_sync
  | Bdev_read { block } -> Bdev_read { block = ci block }
  | Bdev_write { block; data } ->
    if Osiris_util.Rng.bool rng then Bdev_write { block = ci block; data }
    else Bdev_write { block; data = cs data }
  | Brk { delta } -> Brk { delta = ci delta }
  | Brk_query -> Brk_query
  | Mmap { len } -> Mmap { len = ci len }
  | Munmap { id } -> Munmap { id = ci id }
  | Vm_info -> Vm_info
  | Ds_publish { key; value } ->
    if Osiris_util.Rng.bool rng then Ds_publish { key = cs key; value }
    else Ds_publish { key; value = ci value }
  | Ds_retrieve { key } -> Ds_retrieve { key = cs key }
  | Ds_delete { key } -> Ds_delete { key = cs key }
  | Ds_subscribe { prefix } -> Ds_subscribe { prefix = cs prefix }
  | Ds_notify { key } -> Ds_notify { key = cs key }
  | Rs_status -> Rs_status
  | Rs_lookup { label } -> Rs_lookup { label = cs label }
  | Ping -> Ping
  | Crash_notify { ep; reason } -> Crash_notify { ep = ci ep; reason }
  | Alarm -> Alarm
  | Diag { line } -> Diag { line = cs line }
  | R_ok v -> R_ok (ci v)
  | R_err e -> R_err e
  | R_fork { child } -> R_fork { child = ci child }
  | R_wait { pid; status } -> R_wait { pid = ci pid; status }
  | R_read { data } -> R_read { data = cs data }
  | R_pipe { rfd; wfd } -> R_pipe { rfd = ci rfd; wfd }
  | R_stat s -> R_stat { s with st_size = ci s.st_size }
  | R_lookup { ino; size; is_dir } -> R_lookup { ino = ci ino; size; is_dir }
  | R_ds_value { value } -> R_ds_value { value = ci value }
  | R_brk { break } -> R_brk { break = ci break }
  | R_mmap { id } -> R_mmap { id = ci id }
  | R_vm_info { pages_used; pages_free } ->
    R_vm_info { pages_used = ci pages_used; pages_free }
  | R_rs_status r -> R_rs_status { r with restarts = ci r.restarts }
  | R_names { names } ->
    R_names { names = (match names with [] -> [ "x" ] | _ :: rest -> rest) }
  | R_pong -> R_pong
