type recovery_action =
  | No_recovery
  | Restart_fresh
  | Restart_keep_state
  | Rollback_or_shutdown
  | Rollback_replay

type t = {
  name : string;
  instrumentation : Window.instrumentation;
  window_on_receive : bool;
  closes_window : Seep.cls -> bool;
  recovery : recovery_action;
  requester_local : Message.Tag.t list;
  dedup_log : bool;
  graduated : int option;
}

let close_never (_ : Seep.cls) = false

let close_any (_ : Seep.cls) = true

let close_state_modifying = function
  | Seep.Read_only -> false
  | Seep.State_modifying | Seep.Reply -> true

let stateless =
  { name = "stateless";
    instrumentation = Window.Never;
    window_on_receive = false;
    closes_window = close_never;
    recovery = Restart_fresh;
    requester_local = [];
    dedup_log = false;
    graduated = None }

let naive =
  { name = "naive";
    instrumentation = Window.Never;
    window_on_receive = false;
    closes_window = close_never;
    recovery = Restart_keep_state;
    requester_local = [];
    dedup_log = false;
    graduated = None }

let pessimistic =
  { name = "pessimistic";
    instrumentation = Window.When_open;
    window_on_receive = true;
    closes_window = close_any;
    recovery = Rollback_or_shutdown;
    requester_local = [];
    dedup_log = false;
    graduated = None }

let enhanced =
  { name = "enhanced";
    instrumentation = Window.When_open;
    window_on_receive = true;
    closes_window = close_state_modifying;
    recovery = Rollback_or_shutdown;
    requester_local = [];
    dedup_log = false;
    graduated = None }

let enhanced_unoptimized =
  { enhanced with name = "enhanced-unopt"; instrumentation = Window.Always }

let none =
  { name = "baseline";
    instrumentation = Window.Never;
    window_on_receive = false;
    closes_window = close_never;
    recovery = No_recovery;
    requester_local = [];
    dedup_log = false;
    graduated = None }

let enhanced_dedup =
  { enhanced with name = "enhanced-dedup"; dedup_log = true }

let enhanced_replay =
  { enhanced with name = "enhanced-replay"; recovery = Rollback_replay }

let enhanced_snapshot =
  { enhanced with
    name = "enhanced-snapshot";
    instrumentation = Window.Snapshot }

let with_requester_local tags =
  { enhanced with name = "enhanced-killreq"; requester_local = tags }

let enhanced_graduated k =
  { enhanced with
    name = Printf.sprintf "enhanced-grad%d" k;
    graduated = Some k }

let all_evaluated = [ stateless; naive; pessimistic; enhanced ]

let all_known =
  [ stateless; naive; pessimistic; enhanced; enhanced_unoptimized; none;
    enhanced_replay; enhanced_snapshot; enhanced_dedup ]

let by_name n = List.find_opt (fun p -> p.name = n) all_known

let recovery_to_string = function
  | No_recovery -> "no-recovery"
  | Restart_fresh -> "restart-fresh"
  | Restart_keep_state -> "restart-keep-state"
  | Rollback_or_shutdown -> "rollback-or-shutdown"
  | Rollback_replay -> "rollback-replay"
