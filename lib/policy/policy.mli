(** Recovery policies (paper Sections IV-B, VI).

    A policy bundles the three decisions that parameterize OSIRIS:
    how stores are instrumented, which SEEP classes close the recovery
    window, and what the Recovery Server does when a component crashes.

    The four evaluation policies:

    - {!stateless} — "microreboot" baseline: replace the crashed
      component with a pristine copy. No checkpointing, no rollback, no
      error virtualization; in-flight requesters are left waiting and
      accumulated state is lost.
    - {!naive} — best-effort baseline: restart the component with its
      crashed state as-is. No consistency reasoning at all.
    - {!pessimistic} — safe recovery where *any* outbound message
      closes the window.
    - {!enhanced} (default) — SEEP-aware: read-only interactions keep
      the window open.

    Two more configurations support the evaluation:
    - {!enhanced_unoptimized} — enhanced semantics with unconditional
      store logging, the "without optimization" column of Table V;
    - {!none} — no recovery at all: the uninstrumented baseline system
      whose Unixbench scores anchor Tables IV and V. *)

type recovery_action =
  | No_recovery
      (** Crashes are fatal: the system panics (baseline). *)
  | Restart_fresh
      (** Stateless restart from the boot-time image; no reply to the
          requester, pending inbox dropped. *)
  | Restart_keep_state
      (** Restart with the crashed memory image unchanged; no
          reconciliation of any kind (in-flight requesters are left
          waiting). *)
  | Rollback_or_shutdown
      (** OSIRIS proper: if the recovery window is open, roll back and
          virtualize the error; otherwise perform a controlled
          shutdown. *)
  | Rollback_replay
      (** Extension (Section IV-C discussion): roll back and re-deliver
          the crashed request instead of replying [E_CRASH]. Fully
          transparent for transient faults, but a persistent fault
          crash-loops — the reason OSIRIS rejects replay. *)

type t = {
  name : string;
  instrumentation : Window.instrumentation;
  window_on_receive : bool;
      (** Take a checkpoint and open a window when a handler starts. *)
  closes_window : Seep.cls -> bool;
      (** Does sending through a SEEP of this class close the window? *)
  recovery : recovery_action;
  requester_local : Message.Tag.t list;
      (** Extension (paper Section VII): SEEPs whose effects are
          confined to state owned by the requester. They do not close
          the window; if one was crossed when the crash hit,
          reconciliation kills the requester instead of replying,
          cleaning those effects up through the normal exit path. *)
  dedup_log : bool;
      (** First-write-wins undo-log deduplication (see
          {!Window.create}). *)
  graduated : int option;
      (** Extension (paper Section VII, composable policies): after
          this many SEEP crossings within one window, the policy
          hardens to pessimistic — any further interaction closes the
          window. [None] keeps a single policy for the whole window. *)
}

val stateless : t
val naive : t
val pessimistic : t
val enhanced : t
val enhanced_unoptimized : t
val none : t

val enhanced_replay : t
(** Enhanced windows with replay reconciliation (extension). *)

val enhanced_snapshot : t
(** Enhanced semantics with full-image snapshot checkpoints instead of
    the undo log — the expensive alternative of the ablation study. *)

val enhanced_dedup : t
(** Enhanced with first-write-wins undo-log deduplication. *)

val with_requester_local : Message.Tag.t list -> t
(** Enhanced policy extended with a set of requester-local SEEP tags
    and the kill-requester reconciliation. *)

val enhanced_graduated : int -> t
(** Enhanced windows that harden to pessimistic after the given number
    of SEEP crossings — a point between {!enhanced} and {!pessimistic}
    on the recovery-surface/performance dial. *)

val all_evaluated : t list
(** The four policies compared in Tables II and III, in paper order:
    stateless, naive, pessimistic, enhanced. *)

val by_name : string -> t option

val all_known : t list
(** Every named configuration {!by_name} resolves (graduated policies
    are constructed on demand and not listed). *)

val recovery_to_string : recovery_action -> string
