let src = Logs.Src.create "osiris.kernel" ~doc:"OSIRIS simulated kernel"

module Log = (val Logs.src_log src : Logs.LOG)

type arch = Microkernel | Monolithic

type op_kind =
  | Op_compute
  | Op_load
  | Op_store
  | Op_send
  | Op_call
  | Op_reply
  | Op_receive
  | Op_kcall
  | Op_spawn
  | Op_yield

let op_kind_index = function
  | Op_compute -> 0
  | Op_load -> 1
  | Op_store -> 2
  | Op_send -> 3
  | Op_call -> 4
  | Op_reply -> 5
  | Op_receive -> 6
  | Op_kcall -> 7
  | Op_spawn -> 8
  | Op_yield -> 9

let n_op_kinds = 10

let op_kind_to_string = function
  | Op_compute -> "compute"
  | Op_load -> "load"
  | Op_store -> "store"
  | Op_send -> "send"
  | Op_call -> "call"
  | Op_reply -> "reply"
  | Op_receive -> "receive"
  | Op_kcall -> "kcall"
  | Op_spawn -> "spawn"
  | Op_yield -> "yield"

let all_op_kinds =
  [ Op_compute; Op_load; Op_store; Op_send; Op_call; Op_reply; Op_receive;
    Op_kcall; Op_spawn; Op_yield ]

(* Cycle-attribution phases: every advance of a process' virtual clock
   is charged to exactly one of these, so a profiler summing hook
   emissions reconstructs each clock exactly (conservation). *)
type phase =
  | Ph_user        (* executing the component's own instructions *)
  | Ph_instr       (* recovery-window instrumentation drag (c_instr_op) *)
  | Ph_log         (* undo-log writes riding on logged stores *)
  | Ph_checkpoint  (* window-open checkpoint / snapshot copy *)
  | Ph_rollback    (* rolling state back after an in-window crash *)
  | Ph_restart     (* restart machinery: clone transfer, clear, go *)
  | Ph_wait        (* blocked on IPC: clock jumps to a peer's time *)

let phase_index = function
  | Ph_user -> 0
  | Ph_instr -> 1
  | Ph_log -> 2
  | Ph_checkpoint -> 3
  | Ph_rollback -> 4
  | Ph_restart -> 5
  | Ph_wait -> 6

let n_phases = 7

let phase_to_string = function
  | Ph_user -> "user"
  | Ph_instr -> "instr"
  | Ph_log -> "undo_log"
  | Ph_checkpoint -> "checkpoint"
  | Ph_rollback -> "rollback"
  | Ph_restart -> "restart"
  | Ph_wait -> "ipc_wait"

let all_phases =
  [ Ph_user; Ph_instr; Ph_log; Ph_checkpoint; Ph_rollback; Ph_restart;
    Ph_wait ]

(* Attribution slots: every static emission point of the cycle hook is
   registered at module init as a (phase, detail) pair and identified
   by a dense integer id. The hook passes the id, not the pair, so a
   profiler can count cycles in flat arrays — no hashing, no string
   comparison on the hot path — which is what keeps the attached-
   profiler overhead inside its gate (bench/profiler_bench.ml). *)
type slot = int

(* The slot table is built by the [mk_slot] calls below, which run
   exactly once, at module initialization — before any domain can be
   spawned. [freeze_slots] (called right after the last registration)
   locks the builder and drops the accumulators, so the only state a
   concurrently running kernel can observe is the immutable arrays
   ([slot_info], [slot_drag]) derived from them. Registering a slot
   after the freeze is a programming error and raises. *)
let slot_defs : (phase * string) list ref = ref []
let n_slot_defs = ref 0
let drag_pairs : (int * int) list ref = ref []
let slots_frozen = ref false

let mk_slot phase detail : slot =
  if !slots_frozen then
    invalid_arg "Kernel.mk_slot: slot table is frozen (module init is over)";
  let id = !n_slot_defs in
  incr n_slot_defs;
  slot_defs := (phase, detail) :: !slot_defs;
  id

(* A slot charged through [charge] gets a [Ph_instr] twin carrying the
   same detail, so recovery-window instrumentation drag is attributed
   per operation. *)
let mk_charged phase detail : slot =
  let m = mk_slot phase detail in
  let d = mk_slot Ph_instr detail in
  drag_pairs := (m, d) :: !drag_pairs;
  m

(* Interpreter operations: busy work, charged with drag. *)
let sl_compute = mk_charged Ph_user "compute"
let sl_load = mk_charged Ph_user "load"
let sl_store = mk_charged Ph_user "store"
let sl_send = mk_charged Ph_user "send"
let sl_call = mk_charged Ph_user "call"
let sl_receive = mk_charged Ph_user "receive"
let sl_reply = mk_charged Ph_user "reply"
let sl_yield = mk_charged Ph_user "yield"
let sl_spawn = mk_charged Ph_user "spawn"
let sl_rand = mk_charged Ph_user "rand"
let sl_now = mk_charged Ph_user "now"

(* Kernel calls, one slot each: recovery-machinery kcalls are
   attributed to the recovery phases even though the Recovery Server
   issues them like any other operation. *)
let sl_kc_fork = mk_charged Ph_user "fork"
let sl_kc_exec = mk_charged Ph_user "exec"
let sl_kc_kill = mk_charged Ph_user "kill"
let sl_kc_crash_context = mk_charged Ph_user "crash_context"
let sl_kc_mk_clone = mk_charged Ph_restart "mk_clone"
let sl_kc_rollback = mk_charged Ph_rollback "rollback"
let sl_kc_clear_state = mk_charged Ph_restart "clear_state"
let sl_kc_go = mk_charged Ph_restart "go"
let sl_kc_reply_error = mk_charged Ph_restart "reply_error"
let sl_kc_shutdown = mk_charged Ph_user "shutdown"
let sl_kc_alarm = mk_charged Ph_user "alarm"
let sl_kc_mmu = mk_charged Ph_user "mmu"
let sl_kc_replay = mk_charged Ph_restart "replay"
let sl_kc_live_update = mk_charged Ph_user "live_update"
let sl_kc_kill_requester = mk_charged Ph_restart "kill_requester"

(* Dragless advances: undo-log rides, checkpoint copies, recovery
   transfers, and IPC-wait clock jumps. The mk_clone / clear_state
   image transfers share the kcall slots of the same name. *)
let sl_log_store = mk_slot Ph_log "store"
let sl_ckpt_snapshot = mk_slot Ph_checkpoint "snapshot"
let sl_ckpt_undo = mk_slot Ph_checkpoint "undo_log"
let sl_restart_downtime = mk_slot Ph_restart "downtime"
let sl_restart_live_update = mk_slot Ph_restart "live_update"
let sl_wait_resume = mk_slot Ph_wait "resume"
let sl_wait_reply = mk_slot Ph_wait "reply"
let sl_wait_spawn = mk_slot Ph_wait "spawn"
let sl_wait_fork = mk_slot Ph_wait "fork"
let sl_wait_exec = mk_slot Ph_wait "exec"
let sl_wait_kill = mk_slot Ph_wait "kill"
let sl_wait_inbox = mk_slot Ph_wait "inbox"

let n_slots = !n_slot_defs

let slot_info : (phase * string) array = Array.of_list (List.rev !slot_defs)

let slot_phase (s : slot) = fst slot_info.(s)
let slot_detail (s : slot) = snd slot_info.(s)

(* Main slot -> its Ph_instr drag twin; -1 for dragless slots. *)
let slot_drag =
  let a = Array.make n_slots (-1) in
  List.iter (fun (m, d) -> a.(m) <- d) !drag_pairs;
  a

(* Freeze: from here on the slot tables are the immutable arrays
   above; the builder refs are emptied so no mutable module state
   survives into the (possibly multi-domain) run. *)
let () =
  slots_frozen := true;
  slot_defs := [];
  n_slot_defs := n_slots;
  drag_pairs := []

let all_slots = List.init n_slots (fun s -> s)

(* slot -> phase index, precomputed so the attribution hot path can
   maintain the kernel-global per-phase cycle totals with two unsafe
   array ops instead of consumers re-scanning every slot row (the
   vtime sampler reads [total_phase_cycles] once per tick). *)
let slot_phase_idx = Array.init n_slots (fun s -> phase_index (slot_phase s))

type site = {
  site_ep : Endpoint.t;
  site_handler : Message.Tag.t option;
  site_kind : op_kind;
  site_occ : int;
}

let site_to_string s =
  Printf.sprintf "%s/%s/%s/%d"
    (Endpoint.server_name s.site_ep)
    (match s.site_handler with
     | None -> "-"
     | Some tag -> Message.Tag.to_string tag)
    (op_kind_to_string s.site_kind)
    s.site_occ

let compare_site a b = compare a b

type fault_action =
  | F_crash of string
  | F_hang
  | F_corrupt_store
  | F_drop_store
  | F_corrupt_msg
  | F_skip_handler
  | F_benign

type server = {
  srv_ep : Endpoint.t;
  srv_name : string;
  srv_image : Memimage.t;
  srv_clone_extra_kb : int;
  srv_init : unit Prog.t;
  srv_loop : unit Prog.t;
  srv_multithreaded : bool;
}

type halt =
  | H_completed of int
  | H_shutdown of string
  | H_panic of string
  | H_hang

let halt_to_string = function
  | H_completed status -> Printf.sprintf "completed(%d)" status
  | H_shutdown reason -> Printf.sprintf "shutdown(%s)" reason
  | H_panic reason -> Printf.sprintf "panic(%s)" reason
  | H_hang -> "hang"

type config = {
  arch : arch;
  policy : Policy.t;
  policies : (Endpoint.t * Policy.t) list;
      (* per-compartment overrides, resolved once per process at
         creation; [policy] covers user processes and unlisted servers *)
  costs : Costs.t;
  seed : int;
  max_ops : int;
  max_vtime : int;
  hang_detect_cycles : int;
  max_crashes : int;
  lookup_program : string -> (int -> unit Prog.t) option;
  log_sink : (string -> unit) option;
  trace : bool;
}

let default_config ?(arch = Microkernel) ?(seed = 42) ?(policies = []) policy
    ~lookup_program () =
  { arch;
    policy;
    policies;
    costs = (match arch with
        | Microkernel -> Costs.microkernel
        | Monolithic -> Costs.monolithic);
    seed;
    max_ops = 400_000_000;
    max_vtime = 2_000_000_000;
    hang_detect_cycles = 2_000_000;
    max_crashes = 64;
    lookup_program;
    log_sink = None;
    trace = false }

(* ------------------------------------------------------------------ *)
(* Processes and threads                                               *)
(* ------------------------------------------------------------------ *)

type req = {
  rq_src : Endpoint.t;
  rq_src_tid : int;
  rq_tag : Message.Tag.t;
  rq_call : bool;
  rq_msg : Message.t;
  rq_rid : int;  (* causal request id; preserved across K_replay *)
}

type tstate =
  | T_ready of unit Prog.t
  | T_call_wait of { callee : Endpoint.t; k : Message.t -> unit Prog.t }
  | T_recv_wait of { k : Endpoint.t * Message.t -> unit Prog.t }

type thread = {
  tid : int;
  mutable tstate : tstate;
  mutable treq : req option;
  mutable started : bool;
  mutable cause : int;    (* rid of the request this thread is handling; 0 = root *)
  mutable root : int;     (* compact root index of [cause]; 0 = system bucket *)
  mutable out_rid : int;  (* rid of this thread's outstanding Call, for reply matching *)
  occ : int array;
}

type inbox_entry = {
  ib_src : Endpoint.t;
  ib_src_tid : int;
  ib_msg : Message.t;
  ib_call : bool;
  ib_time : int;  (* sender's clock at send: receive cannot precede it *)
  ib_rid : int;
}

type crash_ctx = {
  cc_window_open : bool;
  cc_requester : (Endpoint.t * int) option;
  cc_reason : string;
  cc_request : req option;
  cc_rlocal : bool;  (* a requester-local SEEP was crossed in-window *)
}

type kind = Server_proc | User_proc

type proc = {
  ep : Endpoint.t;
  mutable pname : string;
  kind : kind;
  policy : Policy.t;  (* compartment policy, fixed at process creation *)
  image : Memimage.t option;
  window : Window.t option;
  mutable threads : thread list;
  runq : thread Queue.t;
  mutable active : thread option;
  mutable vtime : int;
  inbox : inbox_entry Queue.t;
  mutable alive : bool;
  mutable stalled : bool;
  mutable hung : bool;
  mutable in_heap : bool;
  mutable covering : bool;  (* booted server: coverage/site accounting applies *)
  mutable loop_prog : unit Prog.t option;
  mutable baseline_ready : bool;  (* boot image recorded in the Memimage baseline *)
  mutable restore_saved : int;    (* bytes dirty-region restarts did not blit *)
  clone_extra_kb : int;
  multithreaded : bool;
  mutable crash_ctx : crash_ctx option;
  mutable rlocal_crossed : bool;
  mutable window_seeps : int;
  mutable crashed_at : int;
  handler_tally : (Message.Tag.t, int) Hashtbl.t;
  mutable tid_counter : int;
  mutable ops_total : int;
  mutable ops_in_window : int;
  mutable busy_cycles : int;
  mutable restart_count : int;
  mutable exit_status : int;  (* user procs: status at exit, -1 while alive *)
  mutable exit_vtime : int;   (* user procs: own clock at the exit call *)
  (* Per-slot cycle/event counters, interleaved [2*slot] = cycles and
     [2*slot+1] = events; [||] until [enable_cycle_counts]. Kept on
     the proc so the hot path is a flat array bump with no closure
     call and no lookup — the proc record is already in hand at every
     emission point. *)
  mutable prof : int array;
}

(* Run-queue items are packed ints — [(endpoint lsl 2) lor tag] — so a
   push allocates nothing (see Sched).  Tags: *)
let tag_run = 0
let tag_alarm = 1
let tag_hangcheck = 2

type event =
  | E_msg of { time : int; src : Endpoint.t; dst : Endpoint.t;
               tag : Message.Tag.t; call : bool;
               rid : int; parent : int; cls : Seep.cls }
  | E_reply of { time : int; src : Endpoint.t; dst : Endpoint.t;
                 tag : Message.Tag.t; rid : int }
  | E_window_open of { time : int; ep : Endpoint.t; rid : int }
  | E_window_close of { time : int; ep : Endpoint.t; rid : int; policy : bool }
  | E_checkpoint of { time : int; ep : Endpoint.t; rid : int; cycles : int }
  | E_store_logged of { time : int; ep : Endpoint.t; rid : int; bytes : int }
  | E_kcall of { time : int; ep : Endpoint.t; rid : int; kc : string }
  | E_crash of { time : int; ep : Endpoint.t; reason : string;
                 window_open : bool; rid : int; policy : string }
  | E_hang_detected of { time : int; ep : Endpoint.t }
  | E_rollback_begin of { time : int; ep : Endpoint.t; rid : int }
  | E_rollback_end of { time : int; ep : Endpoint.t; rid : int; bytes : int }
  | E_restart of { time : int; ep : Endpoint.t; rid : int; policy : string }
  | E_halt of { time : int; halt : halt }
  | E_spawn of { time : int; ep : Endpoint.t; parent : int }

(* Raw event capture: the flight recorder's zero-dispatch tap. The
   emission sites append each event's scalar fields straight into the
   owner's buffers — a handful of unboxed int stores, no closure call,
   no event construction — and invoke [cap_drain] only when an append
   would overflow. Entry layout is documented in the .mli; it is the
   contract between these append sites and the journal's batched
   encoder. *)
type capture = {
  mutable cap_buf : int array;
  mutable cap_pos : int;
  mutable cap_strs : string array;
  mutable cap_spos : int;
  mutable cap_drain : unit -> unit;
}

type t = {
  cfg : config;
  rng : Osiris_util.Rng.t;
  procs : (int, proc) Hashtbl.t;
  mutable servers : Endpoint.t list;
  sched : Sched.t;
  mutable run_items : int;
  mutable booted : bool;
  mutable halted : halt option;
  mutable halt_on_exit : Endpoint.t option;
  mutable next_user_ep : int;
  mutable fault_hook : (site -> fault_action option) option;
  mutable site_recorder : (site -> unit) option;
  (* Cached [fault_hook <> None || site_recorder <> None]: [op_site]
     runs per op and must not pay two polymorphic compares there. *)
  mutable siting : bool;
  mutable event_hook : (event -> unit) option;
  mutable capture : capture option;
  (* event_hook <> None || capture <> None, cached: the emission
     sites test observability once per event, and a single flag load
     beats two polymorphic option compares on the hot path. *)
  mutable observing : bool;
  mutable cycle_hook : (Endpoint.t -> slot -> int -> unit) option;
  mutable profiling : bool;  (* procs carry per-slot counter rows *)
  (* Kernel-global cycles per phase, maintained on the attribution
     path while [profiling]; indexed by [phase_index]. Survives proc
     replacement across restarts, unlike summing per-proc rows. *)
  phase_prof : int array;
  mutable n_ops : int;
  mutable n_crashes : int;
  mutable n_restarts : int;
  mutable n_orphans : int;
  mutable n_delivered : int;
  mutable n_users : int;
  mutable live_users : int;
  mutable halt_on_drain : bool;
  mutable global_now : int;
  mutable recovery_latencies : int list;
  (* Crash instants and (ep, crashed_at, recovered_at) recovery spans,
     newest first. Consing here is off the hot path: crashes are rare
     and bounded by [max_crashes]. *)
  mutable crash_log : int list;
  mutable episode_log : (Endpoint.t * int * int) list;
  (* Virtual-time sampler: fires at every multiple of
     [sample_interval] the global clock crosses. [next_sample] is
     [max_int] when no sampler is installed, so the untelemetered
     clock-advance path pays exactly one compare. *)
  mutable sample_interval : int;
  mutable next_sample : int;
  mutable sample_hook : (int -> unit) option;
  mutable next_rid : int;
  (* Per-request cycle charging ([enable_request_counts]): every rid is
     mapped at delivery to the compact index of its causal root (the
     nearest ancestor delivered with parent = 0), and every clock
     advance bumps one row of the flat [req_prof] matrix for the active
     thread's root. Index 0 is the system bucket (boot, idle inbox
     waits, work outside any request). *)
  mutable req_counting : bool;
  mutable rid_slot : int array;    (* rid -> root index; 0 = system *)
  mutable root_rids : int array;   (* root index -> the root's own rid *)
  mutable root_owner : int array;  (* root index -> source endpoint *)
  mutable n_roots : int;
  mutable req_prof : int array;    (* [root * n_phases + phase] cycles *)
  mutable n_shed : int;  (* user exits with EAGAIN shed status 75 *)
}

let create cfg =
  { cfg;
    rng = Osiris_util.Rng.create cfg.seed;
    procs = Hashtbl.create 64;
    servers = [];
    sched = Sched.create ();
    run_items = 0;
    booted = false;
    halted = None;
    halt_on_exit = None;
    next_user_ep = Endpoint.first_user;
    fault_hook = None;
    site_recorder = None;
    siting = false;
    event_hook = None;
    capture = None;
    observing = false;
    cycle_hook = None;
    profiling = false;
    phase_prof = Array.make n_phases 0;
    n_ops = 0;
    n_crashes = 0;
    n_restarts = 0;
    n_orphans = 0;
    n_delivered = 0;
    n_users = 0;
    live_users = 0;
    halt_on_drain = false;
    global_now = 0;
    recovery_latencies = [];
    crash_log = [];
    episode_log = [];
    sample_interval = 0;
    next_sample = max_int;
    sample_hook = None;
    next_rid = 0;
    req_counting = false;
    rid_slot = [||];
    root_rids = [||];
    root_owner = [||];
    n_roots = 1;
    req_prof = [||];
    n_shed = 0 }

let refresh_siting t =
  t.siting <-
    (match t.fault_hook, t.site_recorder with
     | None, None -> false
     | _ -> true)

let set_fault_hook t hook =
  t.fault_hook <- hook;
  refresh_siting t

let set_event_hook t hook =
  t.event_hook <- hook;
  t.observing <- hook <> None || t.capture <> None

let set_capture t c =
  t.capture <- c;
  t.observing <- t.event_hook <> None || c <> None

let set_vtime_sampler t ~interval hook =
  match hook with
  | None ->
    t.sample_hook <- None;
    t.sample_interval <- 0;
    t.next_sample <- max_int
  | Some _ ->
    if interval <= 0 then
      invalid_arg "Kernel.set_vtime_sampler: interval must be positive";
    t.sample_hook <- hook;
    t.sample_interval <- interval;
    (* First boundary strictly ahead of the current clock, so sample
       timestamps are the fixed grid k*interval regardless of when the
       sampler was installed. *)
    t.next_sample <- ((t.global_now / interval) + 1) * interval

(* All global-clock advances funnel through here. The clock only moves
   forward; when it crosses one or more sample boundaries the hook
   fires once per boundary, with the boundary time — so a run's sample
   timestamps are a deterministic grid independent of scheduling
   detail. With no sampler installed [next_sample] is [max_int] and
   the cost is one compare. *)
let[@inline] bump_now t v =
  if v > t.global_now then begin
    t.global_now <- v;
    if v >= t.next_sample then
      match t.sample_hook with
      | None -> t.next_sample <- max_int
      | Some hook ->
        while t.global_now >= t.next_sample do
          let at = t.next_sample in
          t.next_sample <- t.next_sample + t.sample_interval;
          hook at
        done
  end

(* Every emission site must check this first: with no observer
   installed nothing is constructed and the hot path pays a single
   branch. Per-constructor helpers below then append the scalar
   fields to the capture log directly and build the event record only
   when a closure hook is also installed — the capture path allocates
   nothing. *)
let[@inline] observed t = t.observing

(* Reserve room for a whole entry before writing any slot, so the log
   always sits at an entry boundary when [cap_drain] sweeps it. The
   drain contract leaves >= 16 buffer slots and >= 2 string slots
   free — at least one entry of any kind. *)
let[@inline] cap_room c ni =
  if c.cap_pos + ni > Array.length c.cap_buf then c.cap_drain ()

let[@inline] cap_room_s c ni ns =
  if c.cap_pos + ni > Array.length c.cap_buf
     || c.cap_spos + ns > Array.length c.cap_strs
  then c.cap_drain ()

let[@inline] cap_str c s =
  Array.unsafe_set c.cap_strs c.cap_spos s;
  c.cap_spos <- c.cap_spos + 1

let[@inline] cls_code = function
  | Seep.Read_only -> 0
  | Seep.State_modifying -> 1
  | Seep.Reply -> 2

let[@inline] halt_kind = function
  | H_completed _ -> 0
  | H_shutdown _ -> 1
  | H_panic _ -> 2
  | H_hang -> 3

let[@inline never] emit_msg t ~time ~src ~dst ~tag ~call ~rid ~parent ~cls =
  (match t.capture with
   | Some c ->
     cap_room c 9;
     let a = c.cap_buf and p = c.cap_pos in
     Array.unsafe_set a p 0;
     Array.unsafe_set a (p + 1) time;
     Array.unsafe_set a (p + 2) src;
     Array.unsafe_set a (p + 3) dst;
     Array.unsafe_set a (p + 4) (Message.Tag.to_index tag);
     Array.unsafe_set a (p + 5) (if call then 1 else 0);
     Array.unsafe_set a (p + 6) rid;
     Array.unsafe_set a (p + 7) parent;
     Array.unsafe_set a (p + 8) (cls_code cls);
     c.cap_pos <- p + 9
   | None -> ());
  match t.event_hook with
  | Some f -> f (E_msg { time; src; dst; tag; call; rid; parent; cls })
  | None -> ()

let[@inline never] emit_reply t ~time ~src ~dst ~tag ~rid =
  (match t.capture with
   | Some c ->
     cap_room c 6;
     let a = c.cap_buf and p = c.cap_pos in
     Array.unsafe_set a p 1;
     Array.unsafe_set a (p + 1) time;
     Array.unsafe_set a (p + 2) src;
     Array.unsafe_set a (p + 3) dst;
     Array.unsafe_set a (p + 4) (Message.Tag.to_index tag);
     Array.unsafe_set a (p + 5) rid;
     c.cap_pos <- p + 6
   | None -> ());
  match t.event_hook with
  | Some f -> f (E_reply { time; src; dst; tag; rid })
  | None -> ()

(* The 3/4/5-slot entry shapes below share these appenders; [kind] is
   the entry's wire code (see the .mli layout table). *)
let[@inline] cap3 c kind ~time ~ep =
  cap_room c 3;
  let a = c.cap_buf and p = c.cap_pos in
  Array.unsafe_set a p kind;
  Array.unsafe_set a (p + 1) time;
  Array.unsafe_set a (p + 2) ep;
  c.cap_pos <- p + 3

let[@inline] cap4 c kind ~time ~ep ~rid =
  cap_room c 4;
  let a = c.cap_buf and p = c.cap_pos in
  Array.unsafe_set a p kind;
  Array.unsafe_set a (p + 1) time;
  Array.unsafe_set a (p + 2) ep;
  Array.unsafe_set a (p + 3) rid;
  c.cap_pos <- p + 4

let[@inline] cap5 c kind ~time ~ep ~rid ~x =
  cap_room c 5;
  let a = c.cap_buf and p = c.cap_pos in
  Array.unsafe_set a p kind;
  Array.unsafe_set a (p + 1) time;
  Array.unsafe_set a (p + 2) ep;
  Array.unsafe_set a (p + 3) rid;
  Array.unsafe_set a (p + 4) x;
  c.cap_pos <- p + 5

let[@inline] cap_str4 c kind ~time ~ep ~rid ~s =
  cap_room_s c 4 1;
  let a = c.cap_buf and p = c.cap_pos in
  Array.unsafe_set a p kind;
  Array.unsafe_set a (p + 1) time;
  Array.unsafe_set a (p + 2) ep;
  Array.unsafe_set a (p + 3) rid;
  c.cap_pos <- p + 4;
  cap_str c s

let[@inline never] emit_window_open t ~time ~ep ~rid =
  (match t.capture with
   | Some c -> cap4 c 2 ~time ~ep ~rid
   | None -> ());
  match t.event_hook with
  | Some f -> f (E_window_open { time; ep; rid })
  | None -> ()

let[@inline never] emit_window_close t ~time ~ep ~rid ~policy =
  (match t.capture with
   | Some c -> cap5 c 3 ~time ~ep ~rid ~x:(if policy then 1 else 0)
   | None -> ());
  match t.event_hook with
  | Some f -> f (E_window_close { time; ep; rid; policy })
  | None -> ()

let[@inline never] emit_checkpoint t ~time ~ep ~rid ~cycles =
  (match t.capture with
   | Some c -> cap5 c 4 ~time ~ep ~rid ~x:cycles
   | None -> ());
  match t.event_hook with
  | Some f -> f (E_checkpoint { time; ep; rid; cycles })
  | None -> ()

let[@inline never] emit_store_logged t ~time ~ep ~rid ~bytes =
  (match t.capture with
   | Some c -> cap5 c 5 ~time ~ep ~rid ~x:bytes
   | None -> ());
  match t.event_hook with
  | Some f -> f (E_store_logged { time; ep; rid; bytes })
  | None -> ()

let[@inline never] emit_kcall t ~time ~ep ~rid ~kc =
  (match t.capture with
   | Some c -> cap_str4 c 6 ~time ~ep ~rid ~s:kc
   | None -> ());
  match t.event_hook with
  | Some f -> f (E_kcall { time; ep; rid; kc })
  | None -> ()

let[@inline never] emit_crash t ~time ~ep ~reason ~window_open ~rid ~policy =
  (match t.capture with
   | Some c ->
     cap_room_s c 5 2;
     let a = c.cap_buf and p = c.cap_pos in
     Array.unsafe_set a p 7;
     Array.unsafe_set a (p + 1) time;
     Array.unsafe_set a (p + 2) ep;
     Array.unsafe_set a (p + 3) (if window_open then 1 else 0);
     Array.unsafe_set a (p + 4) rid;
     c.cap_pos <- p + 5;
     cap_str c reason;
     cap_str c policy
   | None -> ());
  match t.event_hook with
  | Some f -> f (E_crash { time; ep; reason; window_open; rid; policy })
  | None -> ()

let[@inline never] emit_hang_detected t ~time ~ep =
  (match t.capture with
   | Some c -> cap3 c 8 ~time ~ep
   | None -> ());
  match t.event_hook with
  | Some f -> f (E_hang_detected { time; ep })
  | None -> ()

let[@inline never] emit_rollback_begin t ~time ~ep ~rid =
  (match t.capture with
   | Some c -> cap4 c 9 ~time ~ep ~rid
   | None -> ());
  match t.event_hook with
  | Some f -> f (E_rollback_begin { time; ep; rid })
  | None -> ()

let[@inline never] emit_rollback_end t ~time ~ep ~rid ~bytes =
  (match t.capture with
   | Some c -> cap5 c 10 ~time ~ep ~rid ~x:bytes
   | None -> ());
  match t.event_hook with
  | Some f -> f (E_rollback_end { time; ep; rid; bytes })
  | None -> ()

let[@inline never] emit_restart t ~time ~ep ~rid ~policy =
  (match t.capture with
   | Some c -> cap_str4 c 11 ~time ~ep ~rid ~s:policy
   | None -> ());
  match t.event_hook with
  | Some f -> f (E_restart { time; ep; rid; policy })
  | None -> ()

let[@inline never] emit_halt t ~time ~halt =
  (match t.capture with
   | Some c ->
     (match halt with
      | H_shutdown s | H_panic s ->
        cap_room_s c 4 1;
        cap_str c s
      | H_completed _ | H_hang -> cap_room c 4);
     let a = c.cap_buf and p = c.cap_pos in
     Array.unsafe_set a p 12;
     Array.unsafe_set a (p + 1) time;
     Array.unsafe_set a (p + 2) (halt_kind halt);
     Array.unsafe_set a (p + 3)
       (match halt with H_completed status -> status | _ -> 0);
     c.cap_pos <- p + 4
   | None -> ());
  match t.event_hook with
  | Some f -> f (E_halt { time; halt })
  | None -> ()

let[@inline never] emit_spawn t ~time ~ep ~parent =
  (match t.capture with
   | Some c -> cap4 c 13 ~time ~ep ~rid:parent
   | None -> ());
  match t.event_hook with
  | Some f -> f (E_spawn { time; ep; parent })
  | None -> ()

let set_cycle_hook t hook = t.cycle_hook <- hook

(* Cycle attribution, two consumers:
   - per-process slot counters ([enable_cycle_counts]): a flat array
     bump with no closure call, cheap enough to stay inside the
     attached-profiler overhead gate of bench/profiler_bench.ml;
   - the optional closure hook, for consumers that need the event
     stream itself (e.g. the profiler's counter-track sampler). Its
     arguments are immediate ints, so an invocation allocates nothing.
   With neither enabled an emission point pays two branches. *)
let[@inline] cycles t p slot c =
  if c > 0 then begin
    (let a = p.prof in
     if Array.length a <> 0 then begin
       let i = 2 * slot in
       Array.unsafe_set a i (Array.unsafe_get a i + c);
       Array.unsafe_set a (i + 1) (Array.unsafe_get a (i + 1) + 1);
       let ph = Array.unsafe_get slot_phase_idx slot in
       let g = t.phase_prof in
       Array.unsafe_set g ph (Array.unsafe_get g ph + c)
     end);
    (* Per-request charging rides the same emission: one more flat
       array bump keyed by the active thread's cached root index, so
       the identity "sum over roots of a phase's row = the kernel's
       phase total" holds exactly whenever both counters are on. *)
    if t.req_counting then begin
      let ri = match p.active with Some th -> th.root | None -> 0 in
      let i = (ri * n_phases) + Array.unsafe_get slot_phase_idx slot in
      let rp = t.req_prof in
      Array.unsafe_set rp i (Array.unsafe_get rp i + c)
    end;
    match t.cycle_hook with
    | Some f -> f p.ep slot c
    | None -> ()
  end

let prof_row () = Array.make (2 * n_slots) 0

let enable_cycle_counts t =
  t.profiling <- true;
  Hashtbl.iter
    (fun _ p -> if Array.length p.prof = 0 then p.prof <- prof_row ())
    t.procs

(* vtime-only advance (no busy_cycles): checkpoint costs and recovery
   image transfers model elapsed time during which the component is
   not executing its own instructions. *)
let[@inline] advance t p slot c =
  p.vtime <- p.vtime + c;
  cycles t p slot c

(* Max-jump resynchronisation: the process was blocked until [target]
   (a peer's clock, an inbox timestamp, the global clock). *)
let[@inline] sync_to t p slot target =
  if target > p.vtime then begin
    cycles t p slot (target - p.vtime);
    p.vtime <- target
  end

(* Causal request id allocation: every delivered message gets a fresh
   rid; its parent is the sender thread's current cause (the rid of the
   request that thread is itself handling, 0 at a root). Allocation is
   unconditional — an int increment — so attaching a hook mid-run never
   changes numbering. *)
let[@inline] alloc_rid t =
  t.next_rid <- t.next_rid + 1;
  t.next_rid

(* Root-index lookup for a rid; 0 (system) for anything unmapped. *)
let[@inline] root_of t rid =
  if rid > 0 && rid < Array.length t.rid_slot then
    Array.unsafe_get t.rid_slot rid
  else 0

(* Record a freshly delivered rid's causal root. Delivery with
   parent = 0 opens a new root (a top-level request); anything else
   inherits its parent's root, so a whole sendrec subtree shares one
   row of [req_prof]. Growth is amortized doubling; recording is off
   the per-op hot path (once per delivered message). *)
let record_rid_root t ~rid ~parent ~src =
  (if rid >= Array.length t.rid_slot then begin
     let ncap = max (rid + 1) (max 1024 (2 * Array.length t.rid_slot)) in
     let a = Array.make ncap 0 in
     Array.blit t.rid_slot 0 a 0 (Array.length t.rid_slot);
     t.rid_slot <- a
   end);
  if parent = 0 then begin
    let ri = t.n_roots in
    (if ri >= Array.length t.root_rids then begin
       let ncap = max 256 (2 * Array.length t.root_rids) in
       let rr = Array.make ncap 0 in
       Array.blit t.root_rids 0 rr 0 (Array.length t.root_rids);
       t.root_rids <- rr;
       let ro = Array.make ncap 0 in
       Array.blit t.root_owner 0 ro 0 (Array.length t.root_owner);
       t.root_owner <- ro;
       let pf = Array.make (ncap * n_phases) 0 in
       Array.blit t.req_prof 0 pf 0 (Array.length t.req_prof);
       t.req_prof <- pf
     end);
    t.n_roots <- ri + 1;
    t.root_rids.(ri) <- rid;
    t.root_owner.(ri) <- src;
    t.rid_slot.(rid) <- ri
  end
  else t.rid_slot.(rid) <- root_of t parent

let enable_request_counts t =
  if not t.req_counting then begin
    t.req_counting <- true;
    t.rid_slot <- Array.make (max 1024 (t.next_rid + 1)) 0;
    t.root_rids <- Array.make 256 0;
    t.root_owner <- Array.make 256 0;
    t.req_prof <- Array.make (256 * n_phases) 0;
    t.n_roots <- 1
  end

let request_counts_enabled t = t.req_counting
let request_count t = if t.req_counting then t.n_roots - 1 else 0

let request_rows t =
  if not t.req_counting then []
  else
    List.init (t.n_roots - 1) (fun i ->
        let ri = i + 1 in
        (t.root_rids.(ri), t.root_owner.(ri),
         Array.sub t.req_prof (ri * n_phases) n_phases))

let system_request_row t =
  if t.req_counting then Array.sub t.req_prof 0 n_phases
  else Array.make n_phases 0

let request_root_of t rid =
  let ri = root_of t rid in
  if ri = 0 then 0 else t.root_rids.(ri)

let shed_exits t = t.n_shed

let set_site_recorder t recorder =
  t.site_recorder <- recorder;
  refresh_siting t
let set_halt_on_exit t ep = t.halt_on_exit <- Some ep

let fresh_thread t p ?(started = true) ?req prog =
  let tid = p.tid_counter in
  p.tid_counter <- p.tid_counter + 1;
  let cause = match req with Some r -> r.rq_rid | None -> 0 in
  { tid; tstate = T_ready prog; treq = req; started; cause;
    root = root_of t cause; out_rid = 0;
    occ = Array.make n_op_kinds 0 }

let proc_of t ep = Hashtbl.find_opt t.procs ep

let get_proc t ep =
  match proc_of t ep with
  | Some p -> p
  | None -> failwith (Printf.sprintf "kernel: unknown endpoint %d" ep)

let runnable p =
  p.alive && (not p.stalled) && (not p.hung)
  && (match p.active with
      | Some _ -> true
      | None -> not (Queue.is_empty p.runq))

let push_run t ep ~key =
  t.run_items <- t.run_items + 1;
  Sched.push t.sched ~key ((ep lsl 2) lor tag_run)

let push_alarm t ep ~key = Sched.push t.sched ~key ((ep lsl 2) lor tag_alarm)

let push_hangcheck t ep ~key =
  Sched.push t.sched ~key ((ep lsl 2) lor tag_hangcheck)

let schedule t p =
  if (not p.in_heap) && runnable p then begin
    p.in_heap <- true;
    push_run t p.ep ~key:p.vtime
  end

(* Wake a receive-parked thread if a message is available. *)
let wake_receiver t p =
  if p.alive && not p.stalled && not (Queue.is_empty p.inbox) then begin
    let rec find = function
      | [] -> None
      | th :: rest ->
        (match th.tstate with T_recv_wait { k } -> Some (th, k) | _ -> find rest)
    in
    match find p.threads with
    | None -> ()
    | Some (th, k) ->
      th.tstate <- T_ready (Prog.Receive k);
      Queue.push th p.runq;
      schedule t p
  end

let halt t h =
  if t.halted = None then begin
    t.halted <- Some h;
    if observed t then emit_halt t ~time:t.global_now ~halt:h
  end

let panic t reason =
  Log.err (fun m -> m "PANIC: %s" reason);
  halt t (H_panic reason)

(* ------------------------------------------------------------------ *)
(* Windows and coverage                                                *)
(* ------------------------------------------------------------------ *)

let close_window_if_open ?(policy = false) ?(rid = 0) t p =
  match p.window with
  | Some w when Window.is_open w ->
    if policy then Window.note_policy_close w;
    Window.close_window w;
    if observed t then
      emit_window_close t ~time:p.vtime ~ep:p.ep ~rid ~policy
  | _ -> ()

let policy_close ?tag ?(rid = 0) t p cls =
  (* The sender's recovery window closes when a policy-forbidden SEEP
     is crossed (paper Section IV-B). Requester-local SEEPs (extension,
     Section VII) keep the window open but are remembered: crossing one
     switches the reconciliation to kill-requester. *)
  let requester_local =
    match tag with
    | Some tag -> List.mem tag p.policy.Policy.requester_local
    | None -> false
  in
  match p.window with
  | Some w when Window.is_open w ->
    p.window_seeps <- p.window_seeps + 1;
    (* Graduated policies (extension): past the budget, the window
       hardens to pessimistic and any interaction closes it. *)
    let hardened =
      match p.policy.Policy.graduated with
      | Some k -> p.window_seeps > k
      | None -> false
    in
    if requester_local && not hardened then p.rlocal_crossed <- true
    else if hardened || p.policy.Policy.closes_window cls then
      close_window_if_open ~policy:true ~rid t p
  | _ -> ()

let open_handler_window ?(rid = 0) t p =
  if p.policy.Policy.window_on_receive then
    match p.window with
    | Some w ->
      if Window.is_open w then Window.close_window w;
      p.rlocal_crossed <- false;
      p.window_seeps <- 0;
      Window.open_window w;
      if observed t then
        emit_window_open t ~time:p.vtime ~ep:p.ep ~rid;
      (* Full-copy checkpointing pays for the image copy at every
         window open; the undo log pays per store instead. *)
      let snapshot = Window.instrumentation w = Window.Snapshot in
      let cost =
        if snapshot then
          max t.cfg.costs.Costs.c_checkpoint (Memimage.size (Window.image w) / 8)
        else t.cfg.costs.Costs.c_checkpoint
      in
      advance t p (if snapshot then sl_ckpt_snapshot else sl_ckpt_undo) cost;
      if observed t then
        emit_checkpoint t ~time:p.vtime ~ep:p.ep ~rid ~cycles:cost
    | None -> ()

(* ------------------------------------------------------------------ *)
(* Crash handling                                                      *)
(* ------------------------------------------------------------------ *)

let requester_of p =
  (* The endpoint whose in-flight request was being handled by the
     active thread when the crash hit, if it is still awaiting a
     reply. *)
  match p.active with
  | None -> None
  | Some th ->
    (match th.treq with
     | Some r when r.rq_call -> Some (r.rq_src, r.rq_src_tid)
     | _ -> None)

let deliver_to_inbox t ?at ~src ~src_tid ~call ~rid ~parent dst msg =
  let at = match at with Some a -> a | None -> t.global_now in
  if t.req_counting then record_rid_root t ~rid ~parent ~src;
  match proc_of t dst with
  | None ->
    t.n_orphans <- t.n_orphans + 1;
    Log.debug (fun m -> m "message to unknown endpoint %d dropped" dst)
  | Some p ->
    if not p.alive && not p.stalled then
      (* Retired process: request is lost; a calling sender stays
         blocked forever (visible as a hang). *)
      t.n_orphans <- t.n_orphans + 1
    else begin
      if t.cfg.trace then
        Log.debug (fun m ->
            m "t=%-10d %s -> %s  %s%s" at (Endpoint.server_name src)
              (Endpoint.server_name dst)
              (Message.Tag.to_string (Message.Tag.of_msg msg))
              (if call then " (call)" else ""));
      if observed t then begin
        let tag = Message.Tag.of_msg msg in
        emit_msg t ~time:at ~src ~dst ~tag ~call ~rid ~parent
          ~cls:(Seep.classify ~dst tag)
      end;
      Queue.push
        { ib_src = src; ib_src_tid = src_tid; ib_msg = msg; ib_call = call;
          ib_time = at; ib_rid = rid }
        p.inbox;
      t.n_delivered <- t.n_delivered + 1;
      wake_receiver t p;
      schedule t p
    end

let rec crash_proc t p reason =
  t.n_crashes <- t.n_crashes + 1;
  Log.info (fun m -> m "crash: %s (%s) at t=%d" p.pname reason p.vtime);
  if t.n_crashes > t.cfg.max_crashes then
    panic t (Printf.sprintf "crash storm (> %d crashes)" t.cfg.max_crashes)
  else begin
    let window_open =
      match p.window with Some w -> Window.is_open w | None -> false
    in
    let requester = requester_of p in
    let request = match p.active with Some th -> th.treq | None -> None in
    let cause = match p.active with Some th -> th.cause | None -> 0 in
    p.crash_ctx <-
      Some
        { cc_window_open = window_open;
          cc_requester = requester;
          cc_reason = reason;
          cc_request = request;
          cc_rlocal = p.rlocal_crossed };
    (* Inactive threads are part of the component state and survive
       recovery (paper Section IV-E): call-waiting threads and yielded
       ready threads persist. The crashing active thread dies, and the
       receive-parked main loop is replaced by a fresh one at K_go. *)
    let active_tid = match p.active with Some th -> th.tid | None -> -1 in
    p.threads <-
      List.filter
        (fun th ->
           match th.tstate with
           | T_call_wait _ -> true
           | T_ready _ -> th.tid <> active_tid
           | T_recv_wait _ -> false)
        p.threads;
    (* The run queue already contains exactly the non-active ready
       threads; leave it as the surviving schedule. *)
    p.active <- None;
    p.alive <- false;
    p.stalled <- true;
    p.hung <- false;
    p.crashed_at <- max p.vtime t.global_now;
    t.crash_log <- p.crashed_at :: t.crash_log;
    if observed t then
      emit_crash t ~time:p.crashed_at ~ep:p.ep ~reason ~window_open
        ~rid:cause ~policy:p.policy.Policy.name;
    match p.policy.Policy.recovery with
    | Policy.No_recovery -> panic t (Printf.sprintf "unrecovered crash in %s: %s" p.pname reason)
    | _ ->
      if p.ep = Endpoint.rs then kernel_recover_rs t p
      else
        (* The notification is parented under the crashed request, so
           RS' recovery handling nests causally beneath the user request
           that triggered the crash. *)
        deliver_to_inbox t ~src:Endpoint.kernel ~src_tid:0 ~call:false
          ~rid:(alloc_rid t) ~parent:cause Endpoint.rs
          (Message.Crash_notify { ep = p.ep; reason })
  end

(* Recovery primitives, shared between RS-driven recovery (kcalls) and
   the kernel's self-recovery path for RS itself. *)

and k_mk_clone t p =
  p.restart_count <- p.restart_count + 1;
  t.n_restarts <- t.n_restarts + 1;
  Log.info (fun m -> m "restart: clone of %s takes over endpoint %d" p.pname p.ep)

and k_clear_state t p =
  Queue.clear p.runq;
  (match p.image with
   | Some img when p.baseline_ready ->
     (* Stateless restart: back to the boot image. Only dirty granules
        are blitted — O(touched state), not O(image). *)
     let restored = Memimage.restore_baseline img in
     p.restore_saved <- p.restore_saved + (Memimage.size img - restored);
     (match p.window with
      | Some w -> Window.close_window w; Window.reinstall_hook w
      | None -> ())
   | _ -> ());
  p.threads <- [];
  Queue.clear p.inbox;
  ignore t

and k_rollback t p =
  match p.window, p.crash_ctx with
  | Some w, Some ctx when ctx.cc_window_open ->
    let rid = match ctx.cc_request with Some rq -> rq.rq_rid | None -> 0 in
    let at = max t.global_now p.vtime in
    if observed t then
      emit_rollback_begin t ~time:at ~ep:p.ep ~rid;
    let before = Undo_log.rollback_bytes (Window.log w) in
    Window.rollback w;
    if observed t then begin
      let bytes =
        if Window.instrumentation w = Window.Snapshot then
          Memimage.size (Window.image w)
        else Undo_log.rollback_bytes (Window.log w) - before
      in
      emit_rollback_end t ~time:at ~ep:p.ep ~rid ~bytes
    end;
    true
  | _ -> false

and k_go t p =
  if p.kind = Server_proc && observed t then begin
    let rid =
      match p.crash_ctx with
      | Some { cc_request = Some rq; _ } -> rq.rq_rid
      | _ -> 0
    in
    emit_restart t ~time:(max t.global_now p.vtime) ~ep:p.ep ~rid
      ~policy:p.policy.Policy.name
  end;
  let recovering = p.crashed_at > 0 in
  if p.kind = Server_proc && recovering then begin
    let recovered_at = max (max t.global_now p.vtime) p.crashed_at in
    t.recovery_latencies <-
      (recovered_at - p.crashed_at) :: t.recovery_latencies;
    t.episode_log <- (p.ep, p.crashed_at, recovered_at) :: t.episode_log;
    p.crashed_at <- 0
  end;
  (match p.kind with
   | Server_proc ->
     (match p.loop_prog with
      | Some loop ->
        let th = fresh_thread t p loop in
        p.threads <- p.threads @ [ th ];
        Queue.push th p.runq
      | None -> ())
   | User_proc -> ());
  p.alive <- true;
  p.stalled <- false;
  p.crash_ctx <- None;
  (* Jump to the global clock: crash downtime when recovering, plain
     wait when a freshly forked/stalled process is released. *)
  if recovering then sync_to t p sl_restart_downtime t.global_now
  else sync_to t p sl_wait_resume t.global_now;
  wake_receiver t p;
  schedule t p

and k_reply_error t ~target ~err =
  (* Error virtualization: resume the requester that will never get a
     real reply from the crashed component. *)
  match proc_of t target with
  | None -> false
  | Some rp ->
    let rec find = function
      | [] -> None
      | th :: rest ->
        (match th.tstate with
         | T_call_wait { callee; k } ->
           (match proc_of t callee with
            | Some cp when (not cp.alive) || cp.stalled -> Some (th, k, callee)
            | _ -> find rest)
         | _ -> find rest)
    in
    (match find rp.threads with
     | None -> false
     | Some (th, k, callee) ->
       (* The virtualized error closes the requester's in-flight call:
          report it as a reply so its span completes. *)
       if observed t then
         emit_reply t ~time:t.global_now ~src:callee ~dst:target
           ~tag:(Message.Tag.of_msg (Message.R_err err)) ~rid:th.out_rid;
       th.tstate <- T_ready (k (Message.R_err err));
       sync_to t rp sl_wait_reply t.global_now;
       Queue.push th rp.runq;
       schedule t rp;
       true)

and kernel_recover_rs t p =
  (* RS cannot recover itself through message passing; the kernel holds
     a prepared clone and applies the active policy directly (paper
     Section IV-C: "for core system servers, RS replaces the deceased
     component with a clone prepared ahead of time" — for RS the kernel
     plays that role). *)
  let ctx = match p.crash_ctx with Some c -> c | None -> assert false in
  match p.policy.Policy.recovery with
  | Policy.No_recovery -> ()
  | Policy.Restart_fresh ->
    k_mk_clone t p; k_clear_state t p; k_go t p
  | Policy.Restart_keep_state ->
    k_mk_clone t p;
    k_go t p
  | Policy.Rollback_or_shutdown | Policy.Rollback_replay ->
    (* RS recovers itself with error virtualization even under the
       replay extension: replaying into RS itself risks recursion. *)
    if ctx.cc_window_open then begin
      k_mk_clone t p;
      ignore (k_rollback t p);
      (match ctx.cc_requester with
       | Some (req_ep, _) -> ignore (k_reply_error t ~target:req_ep ~err:Errno.E_CRASH)
       | None -> ());
      k_go t p
    end
    else halt t (H_shutdown (Printf.sprintf "rs crashed outside recovery window (%s)" ctx.cc_reason))

(* ------------------------------------------------------------------ *)
(* Server / user creation                                              *)
(* ------------------------------------------------------------------ *)

let add_server t srv =
  (* Per-compartment resolution happens exactly once, here: everything
     downstream (window machinery, SEEP closing, recovery dispatch)
     reads the policy pinned on the process. *)
  let policy =
    match List.assoc_opt srv.srv_ep t.cfg.policies with
    | Some p -> p
    | None -> t.cfg.policy
  in
  let window =
    if policy.Policy.instrumentation <> Window.Never
       || policy.Policy.window_on_receive
    then
      Some
        (Window.create ~dedup:policy.Policy.dedup_log
           policy.Policy.instrumentation srv.srv_image)
    else None
  in
  let p =
    { ep = srv.srv_ep;
      pname = srv.srv_name;
      kind = Server_proc;
      policy;
      image = Some srv.srv_image;
      window;
      threads = [];
      runq = Queue.create ();
      active = None;
      vtime = 0;
      inbox = Queue.create ();
      alive = true;
      stalled = false;
      hung = false;
      in_heap = false;
      covering = false;
      loop_prog = Some srv.srv_loop;
      baseline_ready = false;
      restore_saved = 0;
      clone_extra_kb = srv.srv_clone_extra_kb;
      multithreaded = srv.srv_multithreaded;
      crash_ctx = None;
      rlocal_crossed = false;
      window_seeps = 0;
      crashed_at = 0;
      handler_tally = Hashtbl.create 32;
      tid_counter = 0;
      ops_total = 0;
      ops_in_window = 0;
      busy_cycles = 0;
      restart_count = 0;
      exit_status = -1;
      exit_vtime = -1;
      prof = (if t.profiling then prof_row () else [||]) }
  in
  let main =
    fresh_thread t p (Prog.bind srv.srv_init (fun () -> srv.srv_loop))
  in
  p.threads <- [ main ];
  Queue.push main p.runq;
  Hashtbl.replace t.procs srv.srv_ep p;
  t.servers <- t.servers @ [ srv.srv_ep ];
  schedule t p

let spawn_user_at t ~at ~name ~prog ~parent =
  let start = if at > t.global_now then at else t.global_now in
  let ep = t.next_user_ep in
  t.next_user_ep <- t.next_user_ep + 1;
  t.n_users <- t.n_users + 1;
  t.live_users <- t.live_users + 1;
  let p =
    { ep;
      pname = name;
      kind = User_proc;
      policy = t.cfg.policy;
      image = None;
      window = None;
      threads = [];
      runq = Queue.create ();
      active = None;
      vtime = start;
      inbox = Queue.create ();
      alive = true;
      stalled = false;
      hung = false;
      in_heap = false;
      covering = false;
      loop_prog = None;
      baseline_ready = false;
      restore_saved = 0;
      clone_extra_kb = 0;
      multithreaded = false;
      crash_ctx = None;
      rlocal_crossed = false;
      window_seeps = 0;
      crashed_at = 0;
      handler_tally = Hashtbl.create 32;
      tid_counter = 0;
      ops_total = 0;
      ops_in_window = 0;
      busy_cycles = 0;
      restart_count = 0;
      exit_status = -1;
      exit_vtime = -1;
      prof = (if t.profiling then prof_row () else [||]) }
  in
  let th = fresh_thread t p prog in
  p.threads <- [ th ];
  Queue.push th p.runq;
  Hashtbl.replace t.procs ep p;
  (* Arrival record for the analysis layer: the process' birth instant
     enters the event stream, so latency attribution can anchor
     arrival -> exit without access to workload metadata. [parent] is
     the spawning endpoint; 0 marks harness-injected load. *)
  if observed t then emit_spawn t ~time:start ~ep ~parent;
  (* The clock starts at the global now (or the future arrival
     instant): attribute the pre-existence span so per-process
     attribution still sums to the final clock. *)
  cycles t p sl_wait_spawn start;
  schedule t p;
  ep

let spawn_user t ~name ~prog ~parent =
  spawn_user_at t ~at:min_int ~name ~prog ~parent

let destroy_user t p =
  if p.alive then t.live_users <- t.live_users - 1;
  p.alive <- false;
  p.stalled <- true;
  p.threads <- [];
  Queue.clear p.runq;
  Queue.clear p.inbox;
  p.active <- None

(* ------------------------------------------------------------------ *)
(* Live update (extension)                                             *)
(* ------------------------------------------------------------------ *)

let live_update_internal t ep loop =
  match proc_of t ep with
  | None -> Error "unknown endpoint"
  | Some p when p.kind <> Server_proc -> Error "not a server"
  | Some p when not p.alive || p.stalled -> Error "component is recovering"
  | Some p ->
    (* Quiescence: every thread parked in Receive, nothing scheduled,
       window closed. The same condition under which a checkpoint is a
       complete description of the component. *)
    let quiescent =
      p.active = None
      && Queue.is_empty p.runq
      && List.for_all
           (fun th -> match th.tstate with T_recv_wait _ -> true | _ -> false)
           p.threads
      && (match p.window with Some w -> not (Window.is_open w) | None -> true)
    in
    if not quiescent then Error "component is mid-request"
    else begin
      p.loop_prog <- Some loop;
      (* Retire the old loop thread(s) and start the new code over the
         preserved state, exactly like a recovered clone. *)
      p.threads <- [];
      let th = fresh_thread t p loop in
      p.threads <- [ th ];
      Queue.push th p.runq;
      sync_to t p sl_wait_resume t.global_now;
      (* A real update would also transfer the image into the new
         version's layout; versions here share the layout, so the
         state carries over as-is. Charge the state-transfer cost. *)
      (match p.image with
       | Some img ->
         advance t p sl_restart_live_update (Memimage.size img / 8)
       | None -> ());
      wake_receiver t p;
      schedule t p;
      Ok ()
    end

(* ------------------------------------------------------------------ *)
(* Kcall execution                                                     *)
(* ------------------------------------------------------------------ *)

let exec_kcall t p kc : Prog.kresult =
  match kc with
  | Prog.K_fork { parent } ->
    (match proc_of t parent with
     | None -> Prog.Kr_err Errno.ESRCH
     | Some pp ->
       let rec find_k = function
         | [] -> None
         | th :: rest ->
           (match th.tstate with
            | T_call_wait { callee; k } when callee = p.ep -> Some k
            | _ -> find_k rest)
       in
       (match find_k pp.threads with
        | None -> Prog.Kr_err Errno.EINVAL
        | Some k ->
          let child_prog = k (Message.R_fork { child = 0 }) in
          let cep =
            spawn_user t ~name:(pp.pname ^ "+") ~prog:child_prog ~parent
          in
          let cp = get_proc t cep in
          (* The child starts running only after PM finishes the fork
             bookkeeping and issues K_go. *)
          cp.stalled <- true;
          sync_to t cp sl_wait_fork p.vtime;
          Prog.Kr_ep cep))
  | Prog.K_exec { proc; path; arg } ->
    (match proc_of t proc with
     | None -> Prog.Kr_err Errno.ESRCH
     | Some pp ->
       (match t.cfg.lookup_program path with
        | None -> Prog.Kr_err Errno.ENOENT
        | Some f ->
          let th = fresh_thread t pp (f arg) in
          pp.threads <- [ th ];
          Queue.clear pp.runq;
          pp.active <- None;
          Queue.push th pp.runq;
          pp.pname <- Filename.basename path;
          sync_to t pp sl_wait_exec p.vtime;
          schedule t pp;
          Prog.Kr_ok))
  | Prog.K_kill { proc; status } ->
    (match proc_of t proc with
     | None -> Prog.Kr_err Errno.ESRCH
     | Some pp ->
       (* Completion record for the load engine: the dying process'
          own clock at its exit call — PM teardown excluded. *)
       pp.exit_status <- status;
       pp.exit_vtime <- pp.vtime;
       (* EAGAIN-shed storm requests exit with status 75; count them
          so saturation sweeps can plot shedding alongside goodput. *)
       if status = 75 then t.n_shed <- t.n_shed + 1;
       destroy_user t pp;
       (match t.halt_on_exit with
        | Some root when root = proc -> halt t (H_completed status)
        | _ -> ());
       if t.halt_on_drain && t.live_users = 0 && t.halted = None then
         halt t (H_completed 0);
       Prog.Kr_ok)
  | Prog.K_crash_context ep ->
    (match proc_of t ep with
     | Some { crash_ctx = Some c; _ } ->
       Prog.Kr_context
         { window_open = c.cc_window_open;
           requester = Option.map fst c.cc_requester;
           reason = c.cc_reason;
           rlocal = c.cc_rlocal }
     | _ -> Prog.Kr_err Errno.ESRCH)
  | Prog.K_mk_clone ep ->
    (match proc_of t ep with
     | Some cp when cp.crash_ctx <> None ->
       k_mk_clone t cp;
       (* The restart phase copies the dead component's data sections
          into the clone; the Recovery Server pays for the transfer
          (~8 bytes/cycle). *)
       (match cp.image with
        | Some img -> advance t p sl_kc_mk_clone (Memimage.size img / 8)
        | None -> ());
       Prog.Kr_ok
     | _ -> Prog.Kr_err Errno.ESRCH)
  | Prog.K_rollback ep ->
    (match proc_of t ep with
     | Some cp when cp.crash_ctx <> None ->
       if k_rollback t cp then Prog.Kr_ok else Prog.Kr_err Errno.EINVAL
     | _ -> Prog.Kr_err Errno.ESRCH)
  | Prog.K_clear_state ep ->
    (match proc_of t ep with
     | Some cp ->
       k_clear_state t cp;
       (match cp.image with
        | Some img ->
          advance t p sl_kc_clear_state (Memimage.size img / 8)
        | None -> ());
       Prog.Kr_ok
     | None -> Prog.Kr_err Errno.ESRCH)
  | Prog.K_go ep ->
    (match proc_of t ep with
     | Some cp -> k_go t cp; Prog.Kr_ok
     | None -> Prog.Kr_err Errno.ESRCH)
  | Prog.K_reply_error { proc; err } ->
    if k_reply_error t ~target:proc ~err then Prog.Kr_ok
    else Prog.Kr_err Errno.ESRCH
  | Prog.K_shutdown reason ->
    halt t (H_shutdown reason);
    Prog.Kr_ok
  | Prog.K_alarm { ticks } ->
    push_alarm t p.ep ~key:(p.vtime + ticks);
    Prog.Kr_ok
  | Prog.K_mmu { proc = _ } ->
    (* Page-table manipulation: observable cost only. *)
    Prog.Kr_ok
  | Prog.K_replay ep ->
    (match proc_of t ep with
     | Some ({ crash_ctx = Some { cc_request = Some rq; _ }; _ } as cp) ->
       (* Re-delivery keeps the original rid: the replayed handling is
          the same causal request, not a new one. *)
       Queue.push
         { ib_src = rq.rq_src; ib_src_tid = rq.rq_src_tid; ib_msg = rq.rq_msg;
           ib_call = rq.rq_call; ib_time = p.vtime; ib_rid = rq.rq_rid }
         cp.inbox;
       Prog.Kr_ok
     | _ -> Prog.Kr_err Errno.ESRCH)
  | Prog.K_live_update { proc; loop } ->
    (match live_update_internal t proc loop with
     | Ok () -> Prog.Kr_ok
     | Error _ -> Prog.Kr_err Errno.EAGAIN)
  | Prog.K_kill_requester { proc } ->
    (match proc_of t proc with
     | Some rp when rp.kind = User_proc && rp.alive ->
       (* Terminate through the normal exit path so PM/VM/VFS clean up
          every trace of the requester. *)
       List.iter
         (fun th ->
            th.tstate <-
              T_ready
                (Prog.Call (Endpoint.pm, Message.Exit { status = 137 },
                            fun _ -> Prog.Done ())))
         rp.threads;
       Queue.clear rp.runq;
       (match rp.threads with
        | th :: _ ->
          Queue.push th rp.runq;
          rp.active <- None;
          sync_to t rp sl_wait_kill p.vtime;
          schedule t rp
        | [] -> ());
       Prog.Kr_ok
     | _ -> Prog.Kr_err Errno.ESRCH)

(* ------------------------------------------------------------------ *)
(* The interpreter                                                     *)
(* ------------------------------------------------------------------ *)

let charge t p slot c =
  (* Instrumentation drag: while stores are being logged, every
     operation of the component carries the undo-log cost of the
     machine-level stores it stands for. The drag is attributed
     separately (the slot's Ph_instr twin) so the profiler can isolate
     window cost from the operation's own phase. *)
  let drag =
    match p.window with
    | Some w when Window.would_log w -> t.cfg.costs.Costs.c_instr_op
    | _ -> 0
  in
  p.vtime <- p.vtime + c + drag;
  p.busy_cycles <- p.busy_cycles + c + drag;
  cycles t p slot c;
  cycles t p (Array.unsafe_get slot_drag slot) drag

(* Like [charge] but without instrumentation drag: the undo-log part
   of a logged store already rides on the same operation, which paid
   the drag once via its base [charge]. *)
let charge_flat t p slot c =
  p.vtime <- p.vtime + c;
  p.busy_cycles <- p.busy_cycles + c;
  cycles t p slot c

let coverage _t p =
  if p.covering then begin
    p.ops_total <- p.ops_total + 1;
    match p.window with
    | Some w when Window.is_open w -> p.ops_in_window <- p.ops_in_window + 1
    | _ -> ()
  end

(* Build the site for this op and consult recorder/fault hook. *)
let op_site t p th kind =
  if p.covering && t.siting then begin
    let idx = op_kind_index kind in
    (* Cap the occurrence index: a fault site models a *static* program
       location, and loop iterations re-execute the same location. The
       cap collapses spins and long scans into one trailing site. *)
    let occ = min th.occ.(idx) 16 in
    th.occ.(idx) <- th.occ.(idx) + 1;
    let site =
      { site_ep = p.ep;
        site_handler = Option.map (fun r -> r.rq_tag) th.treq;
        site_kind = kind;
        site_occ = occ }
    in
    (match t.site_recorder with Some f -> f site | None -> ());
    match t.fault_hook with
    | Some hook -> hook site
    | None -> None
  end
  else None

exception Thread_parked
exception Thread_finished

(* Constant strings: naming a kcall for the event stream allocates
   nothing. *)
let kcall_name : Prog.kcall -> string = function
  | Prog.K_fork _ -> "fork"
  | Prog.K_exec _ -> "exec"
  | Prog.K_kill _ -> "kill"
  | Prog.K_crash_context _ -> "crash_context"
  | Prog.K_mk_clone _ -> "mk_clone"
  | Prog.K_rollback _ -> "rollback"
  | Prog.K_clear_state _ -> "clear_state"
  | Prog.K_go _ -> "go"
  | Prog.K_reply_error _ -> "reply_error"
  | Prog.K_shutdown _ -> "shutdown"
  | Prog.K_alarm _ -> "alarm"
  | Prog.K_mmu _ -> "mmu"
  | Prog.K_replay _ -> "replay"
  | Prog.K_live_update _ -> "live_update"
  | Prog.K_kill_requester _ -> "kill_requester"

(* Attribution slot of a kcall's interpretation cost (see the slot
   registry at the top of this file). *)
let kcall_slot : Prog.kcall -> slot = function
  | Prog.K_fork _ -> sl_kc_fork
  | Prog.K_exec _ -> sl_kc_exec
  | Prog.K_kill _ -> sl_kc_kill
  | Prog.K_crash_context _ -> sl_kc_crash_context
  | Prog.K_mk_clone _ -> sl_kc_mk_clone
  | Prog.K_rollback _ -> sl_kc_rollback
  | Prog.K_clear_state _ -> sl_kc_clear_state
  | Prog.K_go _ -> sl_kc_go
  | Prog.K_reply_error _ -> sl_kc_reply_error
  | Prog.K_shutdown _ -> sl_kc_shutdown
  | Prog.K_alarm _ -> sl_kc_alarm
  | Prog.K_mmu _ -> sl_kc_mmu
  | Prog.K_replay _ -> sl_kc_replay
  | Prog.K_live_update _ -> sl_kc_live_update
  | Prog.K_kill_requester _ -> sl_kc_kill_requester

let deactivate t p =
  (* The active thread stops running: in a multithreaded component the
     next thread's writes would interleave, so the window must close
     (paper Section IV-E). *)
  if p.multithreaded && List.length p.threads > 1 then begin
    let rid = match p.active with Some th -> th.cause | None -> 0 in
    close_window_if_open ~rid t p
  end;
  p.active <- None

let finish_thread t p th =
  (match p.kind with
   | Server_proc ->
     if p.multithreaded then close_window_if_open ~rid:th.cause t p;
     p.threads <- List.filter (fun x -> x.tid <> th.tid) p.threads;
     p.active <- None
   | User_proc ->
     (* A user program that returns without calling exit() is given an
        implicit exit(0) through PM, keeping the process table sound. *)
     th.tstate <-
       T_ready (Prog.Call (Endpoint.pm, Message.Exit { status = 0 },
                           fun _ -> Prog.Done ()));
     ignore t)

(* Execute exactly one operation of the active thread. Raises
   Thread_parked / Thread_finished to signal scheduling changes. *)
let step t p th prog =
  let costs = t.cfg.costs in
  t.n_ops <- t.n_ops + 1;
  if t.n_ops > t.cfg.max_ops then halt t H_hang;
  match prog with
  | Prog.Done () -> finish_thread t p th; raise Thread_finished
  | Prog.Fail reason ->
    (match p.kind with
     | Server_proc -> crash_proc t p reason; raise Thread_finished
     | User_proc ->
       (* Abnormal user termination: routed through PM as exit(255) so
          the process table stays consistent. *)
       Log.debug (fun m -> m "user %s fail-stop: %s" p.pname reason);
       th.tstate <-
         T_ready (Prog.Call (Endpoint.pm, Message.Exit { status = 255 },
                             fun _ -> Prog.Done ())))
  | Prog.Compute (c, k) ->
    coverage t p;
    (match op_site t p th Op_compute with
     | Some (F_crash r) -> crash_proc t p r; raise Thread_finished
     | Some F_hang -> p.hung <- true;
       push_hangcheck t p.ep ~key:(p.vtime + t.cfg.hang_detect_cycles);
       raise Thread_parked
     | Some F_skip_handler -> finish_thread t p th; raise Thread_finished
     | _ -> ());
    charge t p sl_compute (max c 1);
    th.tstate <- T_ready (k ())
  | Prog.Load (off, k) ->
    coverage t p;
    (match p.image with
     | None -> panic t (p.pname ^ ": memory op in user process"); raise Thread_finished
     | Some img ->
       (match op_site t p th Op_load with
        | Some (F_crash r) -> crash_proc t p r; raise Thread_finished
        | Some F_hang -> p.hung <- true;
          push_hangcheck t p.ep ~key:(p.vtime + t.cfg.hang_detect_cycles);
          raise Thread_parked
        | Some F_skip_handler -> finish_thread t p th; raise Thread_finished
        | _ -> ());
       charge t p sl_load costs.Costs.c_load;
       th.tstate <- T_ready (k (Memimage.get_word img off)))
  | Prog.Store (off, v, k) ->
    coverage t p;
    (match p.image with
     | None -> panic t (p.pname ^ ": memory op in user process"); raise Thread_finished
     | Some img ->
       let action = op_site t p th Op_store in
       (match action with
        | Some (F_crash r) -> crash_proc t p r; raise Thread_finished
        | Some F_hang -> p.hung <- true;
          push_hangcheck t p.ep ~key:(p.vtime + t.cfg.hang_detect_cycles);
          raise Thread_parked
        | Some F_skip_handler -> finish_thread t p th; raise Thread_finished
        | _ -> ());
       let logged =
         match p.window with Some w -> Window.would_log w | None -> false
       in
       charge t p sl_store costs.Costs.c_store;
       if logged then charge_flat t p sl_log_store costs.Costs.c_log;
       if logged && observed t then
         emit_store_logged t ~time:p.vtime ~ep:p.ep ~rid:th.cause ~bytes:8;
       (match action with
        | Some F_drop_store -> ()
        | Some F_corrupt_store ->
          Memimage.set_word img off (v lxor (1 lsl Osiris_util.Rng.int t.rng 16))
        | _ -> Memimage.set_word img off v);
       th.tstate <- T_ready (k ()))
  | Prog.Load_str { off; len; k } ->
    coverage t p;
    (match p.image with
     | None -> panic t (p.pname ^ ": memory op in user process"); raise Thread_finished
     | Some img ->
       (match op_site t p th Op_load with
        | Some (F_crash r) -> crash_proc t p r; raise Thread_finished
        | Some F_skip_handler -> finish_thread t p th; raise Thread_finished
        | _ -> ());
       charge t p sl_load (costs.Costs.c_load + (len / 8));
       th.tstate <- T_ready (k (Memimage.get_string img ~off ~len)))
  | Prog.Store_str { off; len; v; k } ->
    coverage t p;
    (match p.image with
     | None -> panic t (p.pname ^ ": memory op in user process"); raise Thread_finished
     | Some img ->
       let action = op_site t p th Op_store in
       (match action with
        | Some (F_crash r) -> crash_proc t p r; raise Thread_finished
        | Some F_skip_handler -> finish_thread t p th; raise Thread_finished
        | _ -> ());
       let logged =
         match p.window with Some w -> Window.would_log w | None -> false
       in
       charge t p sl_store
         (costs.Costs.c_store + (len * costs.Costs.c_store_per_byte));
       if logged then
         charge_flat t p sl_log_store
           (costs.Costs.c_log + (len * costs.Costs.c_log_per_byte));
       if logged && observed t then
         emit_store_logged t ~time:p.vtime ~ep:p.ep ~rid:th.cause ~bytes:len;
       (match action with
        | Some F_drop_store -> ()
        | Some F_corrupt_store ->
          Memimage.set_string img ~off ~len
            (Message.(match corrupt t.rng (Diag { line = v }) with
                 | Diag { line } -> line
                 | _ -> v))
        | _ -> Memimage.set_string img ~off ~len v);
       th.tstate <- T_ready (k ()))
  | Prog.Send (dst, msg, k) ->
    coverage t p;
    let action = op_site t p th Op_send in
    (match action with
     | Some (F_crash r) -> crash_proc t p r; raise Thread_finished
     | Some F_hang ->
       p.hung <- true;
       push_hangcheck t p.ep ~key:(p.vtime + t.cfg.hang_detect_cycles);
       raise Thread_parked
     | Some F_skip_handler -> finish_thread t p th; raise Thread_finished
     | _ -> ());
    let msg =
      match action with
      | Some F_corrupt_msg -> Message.corrupt t.rng msg
      | _ -> msg
    in
    charge t p sl_send costs.Costs.c_send;
    if p.kind = Server_proc then
      policy_close ~tag:(Message.Tag.of_msg msg) ~rid:th.cause t p
        (Seep.classify_msg ~dst msg);
    (if dst = Endpoint.kernel then
       match msg, t.cfg.log_sink with
       | Message.Diag { line }, Some sink -> sink line
       | _ -> ()
     else
       deliver_to_inbox t ~src:p.ep ~src_tid:th.tid ~call:false
         ~rid:(alloc_rid t) ~parent:th.cause dst msg);
    th.tstate <- T_ready (k ())
  | Prog.Call (dst, msg, k) ->
    coverage t p;
    let action = op_site t p th Op_call in
    (match action with
     | Some (F_crash r) -> crash_proc t p r; raise Thread_finished
     | Some F_hang ->
       p.hung <- true;
       push_hangcheck t p.ep ~key:(p.vtime + t.cfg.hang_detect_cycles);
       raise Thread_parked
     | Some F_skip_handler -> finish_thread t p th; raise Thread_finished
     | _ -> ());
    let msg =
      match action with
      | Some F_corrupt_msg -> Message.corrupt t.rng msg
      | _ -> msg
    in
    charge t p sl_call costs.Costs.c_call;
    if p.kind = Server_proc then
      policy_close ~tag:(Message.Tag.of_msg msg) ~rid:th.cause t p
        (Seep.classify_msg ~dst msg);
    if dst = Endpoint.kernel then begin
      (match msg, t.cfg.log_sink with
       | Message.Diag { line }, Some sink -> sink line
       | _ -> ());
      th.tstate <- T_ready (k (Message.R_ok 0))
    end
    else begin
      let rid = alloc_rid t in
      th.out_rid <- rid;
      th.tstate <- T_call_wait { callee = dst; k };
      deliver_to_inbox t ~at:p.vtime ~src:p.ep ~src_tid:th.tid ~call:true
        ~rid ~parent:th.cause dst msg;
      deactivate t p;
      raise Thread_parked
    end
  | Prog.Receive k ->
    coverage t p;
    (* Back at the top of the loop: the previous request is done and its
       effects are committed — even when the handler sent no reply (a
       deferred waitpid, a notification). Rolling back past this point
       would silently undo state other components rely on, so the
       window must close here, not at the next checkpoint. *)
    if p.kind = Server_proc then close_window_if_open ~rid:th.cause t p;
    th.treq <- None;
    th.cause <- 0;
    th.root <- 0;
    (match op_site t p th Op_receive with
     | Some (F_crash r) -> crash_proc t p r; raise Thread_finished
     | Some F_hang ->
       p.hung <- true;
       push_hangcheck t p.ep ~key:(p.vtime + t.cfg.hang_detect_cycles);
       raise Thread_parked
     | _ -> ());
    charge t p sl_receive costs.Costs.c_receive;
    if p.kind = User_proc then begin
      panic t (p.pname ^ ": receive in user process");
      raise Thread_finished
    end;
    if Queue.is_empty p.inbox then begin
      th.tstate <- T_recv_wait { k };
      deactivate t p;
      raise Thread_parked
    end
    else begin
      let entry = Queue.pop p.inbox in
      sync_to t p sl_wait_inbox entry.ib_time;
      th.treq <-
        Some { rq_src = entry.ib_src;
               rq_src_tid = entry.ib_src_tid;
               rq_tag = Message.Tag.of_msg entry.ib_msg;
               rq_call = entry.ib_call;
               rq_msg = entry.ib_msg;
               rq_rid = entry.ib_rid };
      th.cause <- entry.ib_rid;
      th.root <- root_of t entry.ib_rid;
      if t.booted then begin
        let tag = Message.Tag.of_msg entry.ib_msg in
        Hashtbl.replace p.handler_tally tag
          (1 + Option.value ~default:0 (Hashtbl.find_opt p.handler_tally tag))
      end;
      Array.fill th.occ 0 n_op_kinds 0;
      open_handler_window ~rid:entry.ib_rid t p;
      th.tstate <- T_ready (k (entry.ib_src, entry.ib_msg))
    end
  | Prog.Reply (dst, msg, k) ->
    coverage t p;
    let action = op_site t p th Op_reply in
    (match action with
     | Some (F_crash r) -> crash_proc t p r; raise Thread_finished
     | Some F_hang ->
       p.hung <- true;
       push_hangcheck t p.ep ~key:(p.vtime + t.cfg.hang_detect_cycles);
       raise Thread_parked
     | Some F_skip_handler -> finish_thread t p th; raise Thread_finished
     | _ -> ());
    let msg =
      match action with
      | Some F_corrupt_msg -> Message.corrupt t.rng msg
      | _ -> msg
    in
    charge t p sl_reply costs.Costs.c_reply;
    if p.kind = Server_proc then policy_close ~rid:th.cause t p Seep.Reply;
    (match proc_of t dst with
     | None -> t.n_orphans <- t.n_orphans + 1
     | Some rp ->
       let preferred_tid =
         match th.treq with
         | Some r when r.rq_src = dst -> Some r.rq_src_tid
         | _ -> None
       in
       let candidates =
         List.filter
           (fun x -> match x.tstate with
              | T_call_wait { callee; _ } -> callee = p.ep
              | _ -> false)
           rp.threads
       in
       let target =
         match preferred_tid with
         | Some tid ->
           (match List.find_opt (fun x -> x.tid = tid) candidates with
            | Some th' -> Some th'
            | None -> (match candidates with [] -> None | th' :: _ -> Some th'))
         | None -> (match candidates with [] -> None | th' :: _ -> Some th')
       in
       (match target with
        | None -> t.n_orphans <- t.n_orphans + 1
        | Some th' ->
          (match th'.tstate with
           | T_call_wait { k = k'; _ } ->
             if t.cfg.trace then
               Log.debug (fun m ->
                   m "t=%-10d %s => %s  reply %s" p.vtime
                     (Endpoint.server_name p.ep) (Endpoint.server_name dst)
                     (Message.Tag.to_string (Message.Tag.of_msg msg)));
             if observed t then
               emit_reply t ~time:p.vtime ~src:p.ep ~dst
                 ~tag:(Message.Tag.of_msg msg) ~rid:th'.out_rid;
             th'.tstate <- T_ready (k' msg);
             sync_to t rp sl_wait_reply p.vtime;
             Queue.push th' rp.runq;
             schedule t rp
           | _ -> assert false)));
    th.tstate <- T_ready (k ())
  | Prog.Yield k ->
    coverage t p;
    charge t p sl_yield costs.Costs.c_yield;
    th.tstate <- T_ready (k ());
    Queue.push th p.runq;
    deactivate t p;
    raise Thread_parked
  | Prog.Spawn (prog, k) ->
    coverage t p;
    (match op_site t p th Op_spawn with
     | Some (F_crash r) -> crash_proc t p r; raise Thread_finished
     | _ -> ());
    charge t p sl_spawn costs.Costs.c_spawn;
    let nth = fresh_thread t p ~started:false ?req:th.treq prog in
    p.threads <- p.threads @ [ nth ];
    Queue.push nth p.runq;
    th.tstate <- T_ready (k ())
  | Prog.Kcall (kc, k) ->
    coverage t p;
    (match op_site t p th Op_kcall with
     | Some (F_crash r) -> crash_proc t p r; raise Thread_finished
     | Some F_hang ->
       p.hung <- true;
       push_hangcheck t p.ep ~key:(p.vtime + t.cfg.hang_detect_cycles);
       raise Thread_parked
     | Some F_skip_handler -> finish_thread t p th; raise Thread_finished
     | _ -> ());
    charge t p (kcall_slot kc) costs.Costs.c_kcall;
    if observed t then
      emit_kcall t ~time:p.vtime ~ep:p.ep ~rid:th.cause ~kc:(kcall_name kc);
    if p.kind = Server_proc then begin
      let cls =
        match kc with
        | Prog.K_crash_context _ -> Seep.Read_only
        | _ -> Seep.State_modifying
      in
      policy_close ~rid:th.cause t p cls
    end;
    let r = exec_kcall t p kc in
    th.tstate <- T_ready (k r)
  | Prog.Rand (bound, k) ->
    coverage t p;
    charge t p sl_rand 1;
    th.tstate <- T_ready (k (Osiris_util.Rng.int t.rng (max bound 1)))
  | Prog.Now k ->
    coverage t p;
    charge t p sl_now 1;
    th.tstate <- T_ready (k p.vtime)

(* Activate the next ready thread of [p], handling window bookkeeping
   for handler threads that start running for the first time. *)
let activate_next t p =
  match p.active with
  | Some _ -> true
  | None ->
    if Queue.is_empty p.runq then false
    else begin
      let th = Queue.pop p.runq in
      p.active <- Some th;
      if not th.started then begin
        th.started <- true;
        Array.fill th.occ 0 n_op_kinds 0;
        if p.kind = Server_proc then open_handler_window t p
      end;
      true
    end

(* A simulated program tripped a host-level exception: a corrupted
   table row driving an out-of-bounds [Layout] access, offset
   arithmetic walking off an image, division by corrupted data. On
   real hardware this is an MMU fault or machine check delivered to
   the kernel — the offending process dies and the recovery policy
   decides what happens next; it must never take down the simulation
   harness (injected corruption is the only way here on a healthy
   tree). Only the exception constructors corrupted data can provoke
   are absorbed; anything else (Assert_failure, Out_of_memory, ...)
   still propagates as a harness bug. *)
let machine_check t p th exn =
  let reason =
    Printf.sprintf "machine check: %s" (Printexc.to_string exn)
  in
  match p.kind with
  | Server_proc -> crash_proc t p reason
  | User_proc ->
    Log.debug (fun m -> m "user %s %s" p.pname reason);
    th.tstate <-
      T_ready (Prog.Call (Endpoint.pm, Message.Exit { status = 255 },
                          fun _ -> Prog.Done ()))

let exec_proc t p =
  let continue = ref true in
  while !continue && t.halted = None do
    if not (p.alive && (not p.stalled) && not p.hung) then continue := false
    else if not (activate_next t p) then continue := false
    else begin
      match p.active with
      | None -> continue := false
      | Some th ->
        (match th.tstate with
         | T_ready prog ->
           (try step t p th prog with
            | Thread_parked -> ()
            | Thread_finished -> ()
            | (Invalid_argument _ | Failure _ | Not_found
              | Division_by_zero) as exn ->
              machine_check t p th exn)
         | T_call_wait _ | T_recv_wait _ ->
           (* Parked while marked active: clear and pick next. *)
           p.active <- None);
        (* Preemption check: if another item in the queue is due
           before this process' clock, give it the CPU.  [next_key]
           is a cached int read ([max_int] when empty) — no boxing on
           this per-op path. *)
        if Sched.next_key t.sched < p.vtime then begin
          continue := false;
          schedule t p
        end
    end
  done;
  bump_now t p.vtime

(* ------------------------------------------------------------------ *)
(* Main loops                                                          *)
(* ------------------------------------------------------------------ *)

let dispatch t item =
  let ep = item lsr 2 in
  let tag = item land 3 in
  if tag = tag_run then begin
    t.run_items <- t.run_items - 1;
    match proc_of t ep with
    | None -> ()
    | Some p ->
      p.in_heap <- false;
      if runnable p then exec_proc t p
  end
  else if tag = tag_alarm then
    deliver_to_inbox t ~src:Endpoint.kernel ~src_tid:0 ~call:false
      ~rid:(alloc_rid t) ~parent:0 ep Message.Alarm
  else
    match proc_of t ep with
    | Some p when p.hung && p.alive ->
      p.hung <- false;
      if observed t then
        emit_hang_detected t ~time:t.global_now ~ep:p.ep;
      crash_proc t p "hang detected by heartbeat"
    | _ -> ()

let pump t ~until_quiescent =
  let continue = ref true in
  while !continue && t.halted = None do
    if until_quiescent && t.run_items = 0 then continue := false
    else begin
      let item = Sched.pop t.sched in
      if item < 0 then continue := false
      else begin
        let key = Sched.popped_key t.sched in
        bump_now t key;
        (* Virtual-time cutoff: a system that is past the deadline is
           hung (deadlocked processes, spinning readers, or an idle
           timer chain with no forward progress). *)
        if (not until_quiescent) && key > t.cfg.max_vtime then
          halt t H_hang
        else dispatch t item
      end
    end
  done

let boot t =
  pump t ~until_quiescent:true;
  (match t.halted with
   | Some h -> failwith ("kernel: boot failed: " ^ halt_to_string h)
   | None -> ());
  Hashtbl.iter
    (fun _ p ->
       (* Flattened fast-path flag: coverage/site accounting applies
          to servers from boot on (see [coverage] / [op_site]). *)
       if p.kind = Server_proc then p.covering <- true;
       match p.image with
       | Some img when p.kind = Server_proc ->
         (* The booted image is the pristine clone state: record it as
            the dirty-tracking baseline so stateless restarts blit only
            the granules touched since boot. *)
         Memimage.set_baseline img;
         p.baseline_ready <- true
       | _ -> ())
    t.procs;
  t.booted <- true

let run t =
  pump t ~until_quiescent:false;
  match t.halted with
  | Some h -> h
  | None -> H_hang

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let now t = t.global_now

let total_ops t = t.n_ops

type server_stats = {
  ss_name : string;
  ss_policy : string;
  ss_ops_total : int;
  ss_ops_in_window : int;
  ss_busy_cycles : int;
  ss_logged_stores : int;
  ss_skipped_stores : int;
  ss_deduped_stores : int;
  ss_undo_peak_bytes : int;
  ss_undo_entries_lifetime : int;
  ss_rollback_bytes : int;
  ss_restore_bytes_saved : int;
  ss_image_bytes : int;
  ss_image_used_bytes : int;
  ss_clone_extra_kb : int;
  ss_window_opens : int;
  ss_policy_closes : int;
  ss_restarts : int;
}

let server_stats t ep =
  let p = get_proc t ep in
  let logged, skipped, deduped, peak, lifetime, rollback_b, opens, closes =
    match p.window with
    | Some w ->
      ( Window.logged_stores w,
        Window.skipped_stores w,
        Window.deduped_stores w,
        Undo_log.peak_bytes (Window.log w),
        Undo_log.total_records (Window.log w),
        Undo_log.rollback_bytes (Window.log w),
        Window.opens w,
        Window.closes_by_policy w )
    | None -> (0, 0, 0, 0, 0, 0, 0, 0)
  in
  { ss_name = p.pname;
    ss_policy = p.policy.Policy.name;
    ss_ops_total = p.ops_total;
    ss_ops_in_window = p.ops_in_window;
    ss_busy_cycles = p.busy_cycles;
    ss_logged_stores = logged;
    ss_skipped_stores = skipped;
    ss_deduped_stores = deduped;
    ss_undo_peak_bytes = peak;
    ss_undo_entries_lifetime = lifetime;
    ss_rollback_bytes = rollback_b;
    ss_restore_bytes_saved = p.restore_saved;
    ss_image_bytes = (match p.image with Some i -> Memimage.size i | None -> 0);
    ss_image_used_bytes =
      (match p.image with Some i -> Memimage.allocated i | None -> 0);
    ss_clone_extra_kb = p.clone_extra_kb;
    ss_window_opens = opens;
    ss_policy_closes = closes;
    ss_restarts = p.restart_count }

let server_image t ep =
  match proc_of t ep with
  | Some { image = Some img; _ } -> Some (Memimage.snapshot img)
  | _ -> None

let server_endpoints t = t.servers

let handler_counts t ep =
  match proc_of t ep with
  | None -> []
  | Some p -> Hashtbl.fold (fun tag n acc -> (tag, n) :: acc) p.handler_tally []

let recovery_latencies t = t.recovery_latencies
let crash_times t = t.crash_log
let recovery_episodes t = t.episode_log

let crashes t = t.n_crashes
let restarts t = t.n_restarts
let orphaned_replies t = t.n_orphans
let messages_delivered t = t.n_delivered

let run_queue_depth t = t.run_items

(* The per-proc readers below use [Hashtbl.find] + exception instead
   of [proc_of]: [Hashtbl.find_opt] allocates the [Some], and the
   vtime sampler reads dozens of these per tick under a zero-alloc
   gate (bench/timeseries_bench.ml). *)

let proc_alive t ep =
  match Hashtbl.find t.procs ep with
  | p -> p.alive
  | exception Not_found -> false

let proc_policy_name t ep =
  match proc_of t ep with Some p -> Some p.policy.Policy.name | None -> None

let proc_vtime t ep =
  match Hashtbl.find t.procs ep with
  | p -> p.vtime
  | exception Not_found -> 0

let inbox_depth t ep =
  match Hashtbl.find t.procs ep with
  | p -> Queue.length p.inbox
  | exception Not_found -> 0

(* Server proc handles: server records are installed once by
   [add_server] and mutated in place across crash/recovery (only
   [spawn_user] ever replaces a procs entry), so a handle captured at
   telemetry registration stays valid for the kernel's lifetime and
   turns the per-tick inbox/alive reads into direct field loads. *)
type proc_handle = proc

let server_handle t ep =
  match Hashtbl.find t.procs ep with
  | p -> Some p
  | exception Not_found -> None

let handle_alive (p : proc_handle) = p.alive
let handle_inbox_depth (p : proc_handle) = Queue.length p.inbox

let slot_cycles t ep slot =
  match Hashtbl.find t.procs ep with
  | p -> if Array.length p.prof <> 0 then p.prof.(2 * slot) else 0
  | exception Not_found -> 0

let slot_events t ep slot =
  match Hashtbl.find t.procs ep with
  | p -> if Array.length p.prof <> 0 then p.prof.((2 * slot) + 1) else 0
  | exception Not_found -> 0

(* Top-level tail recursion over immediates (like [Histogram.bits]):
   a local [ref] or closure would allocate, and this runs inside the
   zero-alloc vtime sampler. *)
let rec sum_phase_slots prof ph s acc =
  if s >= n_slots then acc
  else
    sum_phase_slots prof ph (s + 1)
      (if slot_phase s = ph then acc + prof.(2 * s) else acc)

let phase_cycles t ep ph =
  match Hashtbl.find t.procs ep with
  | p -> if Array.length p.prof = 0 then 0 else sum_phase_slots p.prof ph 0 0
  | exception Not_found -> 0

let total_phase_cycles t ph = t.phase_prof.(phase_index ph)

let profiled_procs t =
  Hashtbl.fold
    (fun _ p acc -> if Array.length p.prof <> 0 then acc + 1 else acc)
    t.procs 0

let window_is_open t ep =
  match Hashtbl.find t.procs ep with
  | { window = Some w; _ } -> Window.is_open w
  | _ -> false
  | exception Not_found -> false

let user_count t = t.n_users

let set_halt_on_drain t = t.halt_on_drain <- true

let user_exit t ep =
  match proc_of t ep with
  | Some p when p.exit_status >= 0 -> Some (p.exit_status, p.exit_vtime)
  | _ -> None

let live_update = live_update_internal
