(** The discrete-event microkernel.

    The kernel owns the virtual clock, schedules processes by virtual
    time, interprets {!Prog.t} operation trees one step at a time, and
    implements the privileged mechanics of OSIRIS' recovery protocol
    (restart / rollback / reconciliation primitives invoked by the
    Recovery Server through [Kcall]s).

    Simulation structure:
    - every process (OS server or user process) is an event-driven
      entity with one or more cooperative threads;
    - synchronous [Call]s follow MINIX sendrec semantics — the caller
      blocks until the receiver replies;
    - recovery windows open when a handler starts and close according
      to the active {!Policy.t} and the SEEP class of outbound messages
      (multithreaded servers additionally close the window whenever the
      active thread is switched out, per paper Section IV-E);
    - every executed server operation is counted for recovery coverage
      (Table I) and offered to the fault hook (Tables II/III);
    - every operation advances the owning process' virtual time by its
      {!Costs.t} entry.

    Everything is deterministic for a fixed configuration and seed. *)

type arch = Microkernel | Monolithic

(** {1 Fault interface}

    The fault library installs hooks; the kernel only defines the
    vocabulary. A {!site} identifies an executed server operation the
    way EDFI identifies a static program location: by component,
    handler, operation kind, and occurrence index within the handler
    activation. *)

type op_kind =
  | Op_compute
  | Op_load
  | Op_store
  | Op_send
  | Op_call
  | Op_reply
  | Op_receive
  | Op_kcall
  | Op_spawn
  | Op_yield

val op_kind_to_string : op_kind -> string
val all_op_kinds : op_kind list

type site = {
  site_ep : Endpoint.t;
  site_handler : Message.Tag.t option;  (** None in loop/init code. *)
  site_kind : op_kind;
  site_occ : int;  (** nth op of this kind within the handler activation. *)
}

val site_to_string : site -> string
val compare_site : site -> site -> int

type fault_action =
  | F_crash of string      (** Fail-stop: NULL-deref analogue. *)
  | F_hang                 (** Component stops making progress. *)
  | F_corrupt_store        (** Stored value is corrupted (fail-silent). *)
  | F_drop_store           (** Store silently dropped (fail-silent). *)
  | F_corrupt_msg          (** Outbound message corrupted (fail-silent). *)
  | F_skip_handler         (** Handler aborts early without replying. *)
  | F_benign
      (** Triggered but non-manifesting (e.g. a wrong value that is
          overwritten before use) — a large fraction of realistic
          injected faults behave this way. *)

(** {1 Server registration} *)

type server = {
  srv_ep : Endpoint.t;
  srv_name : string;
  srv_image : Memimage.t;
  srv_clone_extra_kb : int;
      (** Memory the Recovery Server pre-allocates for this component's
          clone beyond the image itself (large for VM — Table VI). *)
  srv_init : unit Prog.t;
      (** Instrumented initialization, run once at boot. *)
  srv_loop : unit Prog.t;
      (** The request-processing loop; also used to restart clones. *)
  srv_multithreaded : bool;
}

(** {1 Halting} *)

type halt =
  | H_completed of int
      (** The designated root process exited with this status. *)
  | H_shutdown of string
      (** Controlled shutdown performed by the recovery protocol. *)
  | H_panic of string
      (** Kernel invariant broken or unrecoverable crash. *)
  | H_hang
      (** No runnable work before completion, or op budget exhausted. *)

val halt_to_string : halt -> string

(** {1 Configuration} *)

type config = {
  arch : arch;
  policy : Policy.t;
      (** Default policy: user processes and any server without an
          entry in [policies]. *)
  policies : (Endpoint.t * Policy.t) list;
      (** Per-compartment overrides. Resolution happens once, at
          process creation ({!add_server}/{!spawn_user}): the window
          machinery, store instrumentation, SEEP window-closing, dedup
          and recovery dispatch all read the policy pinned on the
          process, never this list. *)
  costs : Costs.t;
  seed : int;
  max_ops : int;            (** Total op budget; exceeding it means hang. *)
  max_vtime : int;          (** Virtual-time deadline; past it, hang. *)
  hang_detect_cycles : int; (** Heartbeat latency for hung components. *)
  max_crashes : int;        (** Crash-storm cutoff (panic beyond it). *)
  lookup_program : string -> (int -> unit Prog.t) option;
      (** Executable registry used by [K_exec]. *)
  log_sink : (string -> unit) option;
      (** Receives [Diag] lines. *)
  trace : bool;
}

val default_config : ?arch:arch -> ?seed:int ->
  ?policies:(Endpoint.t * Policy.t) list -> Policy.t ->
  lookup_program:(string -> (int -> unit Prog.t) option) -> unit -> config

type t

val create : config -> t

val add_server : t -> server -> unit
(** Register a server before {!boot}. *)

val boot : t -> unit
(** Run all server init programs and their loops until the system is
    quiescent (all servers blocked in Receive), then snapshot each
    server image as its pristine boot state (used by stateless
    restart). Site/coverage accounting starts after boot. *)

val spawn_user : t -> name:string -> prog:unit Prog.t -> parent:Endpoint.t ->
  Endpoint.t
(** Create a user process (the workload root; everything else is
    forked/exec'd through PM). It must be registered in PM separately
    — the core library's boot protocol handles that. *)

val spawn_user_at : t -> at:int -> name:string -> prog:unit Prog.t ->
  parent:Endpoint.t -> Endpoint.t
(** {!spawn_user}, but the process first runs at virtual instant
    [at]: its clock starts there and it enters the scheduler's timer
    wheel at that key.  This is how the open-loop load engine drives
    arrivals — each request is a process whose start rides the wheel
    at its nominal arrival time, independent of system state (past
    instants are clamped to now). *)

val set_halt_on_exit : t -> Endpoint.t -> unit
(** When this process exits, the run completes. *)

val set_halt_on_drain : t -> unit
(** Halt ([H_completed 0]) when the last live user process exits —
    how an open-loop run ends: all requests injected up front, the
    system drains.  No effect on runs that halt earlier. *)

val user_exit : t -> Endpoint.t -> (int * int) option
(** [(status, vtime)] recorded when the user process exited: the
    status it passed to PM and its own virtual clock at the exit
    call (i.e. when its work finished — PM teardown excluded).
    [None] while alive or for unknown endpoints. *)

val run : t -> halt
(** Interpret until a halt condition. *)

(** {1 Event tracing}

    Every delivered message carries a {e causal request id} ([rid],
    positive, unique per run) and the rid of the request its sender was
    handling at the time ([parent], 0 at a root — user programs and
    kernel-originated notifications). Threading the rid through sendrec
    chains links a user syscall to its server fan-out, and a crash to
    the request whose handling triggered it: observers can rebuild the
    whole request/recovery span tree from the flat event stream (see
    [lib/obs]). Rid allocation is an unconditional int increment, so
    attaching a hook mid-run never changes the numbering. *)

type event =
  | E_msg of { time : int; src : Endpoint.t; dst : Endpoint.t;
               tag : Message.Tag.t; call : bool;
               rid : int; parent : int; cls : Seep.cls }
      (** A request or notification was delivered to [dst]'s inbox,
          SEEP-classified from the receiver's point of view. *)
  | E_reply of { time : int; src : Endpoint.t; dst : Endpoint.t;
                 tag : Message.Tag.t; rid : int }
      (** The call [rid] completed — including virtualized
          [E_CRASH] error replies injected by [K_reply_error]. *)
  | E_window_open of { time : int; ep : Endpoint.t; rid : int }
      (** A recovery window opened for handling request [rid]. *)
  | E_window_close of { time : int; ep : Endpoint.t; rid : int; policy : bool }
      (** The window closed; [policy] when a policy-forbidden SEEP (or
          graduated hardening) forced it, false at handler completion
          or thread switch. *)
  | E_checkpoint of { time : int; ep : Endpoint.t; rid : int; cycles : int }
      (** Checkpoint taken at window open ([cycles] charged — large
          for [Snapshot] instrumentation, constant for undo logging). *)
  | E_store_logged of { time : int; ep : Endpoint.t; rid : int; bytes : int }
      (** An in-window store was offered to the undo log. *)
  | E_kcall of { time : int; ep : Endpoint.t; rid : int; kc : string }
      (** A kernel call (recovery protocol steps are the interesting
          ones: mk_clone, rollback, go, ...). *)
  | E_crash of { time : int; ep : Endpoint.t; reason : string;
                 window_open : bool; rid : int; policy : string }
      (** [rid] is the request being handled when the crash hit (0 in
          loop/init code) — recovery spans nest under it. [policy]
          names the crashed compartment's policy, so traces from
          heterogeneous (mixed-policy) runs stay attributable. *)
  | E_hang_detected of { time : int; ep : Endpoint.t }
      (** The heartbeat detected a hung component (precedes the
          corresponding [E_crash]). *)
  | E_rollback_begin of { time : int; ep : Endpoint.t; rid : int }
  | E_rollback_end of { time : int; ep : Endpoint.t; rid : int; bytes : int }
      (** [bytes] actually blitted back: undo-log payload replayed, or
          the image size under [Snapshot] instrumentation. *)
  | E_restart of { time : int; ep : Endpoint.t; rid : int; policy : string }
  | E_halt of { time : int; halt : halt }
  | E_spawn of { time : int; ep : Endpoint.t; parent : int }
      (** A user process was born at virtual instant [time] (its
          arrival, possibly ahead of emission order for open-loop
          loads scheduled in the future). [parent] is the spawning
          endpoint — 0 for harness-injected load requests — so the
          analysis layer can anchor arrival -> exit latency from the
          event stream alone. *)

val set_event_hook : t -> (event -> unit) option -> unit
(** Structured observability: invoked for every IPC delivery, reply,
    window transition, checkpoint, logged store, kcall, crash,
    rollback, restart and halt. When unset the emission sites skip
    event construction entirely — one branch per event, zero
    allocation (a bench gate in [bench/obs_bench.ml]). *)

(** Raw event capture: the flight recorder's zero-dispatch tap, the
    scalar-field twin of {!set_event_hook}.

    A [capture] is a consumer-owned scalar log. The emission sites
    append each event as a few plain [int] stores into [cap_buf]
    (string fields ride as shared pointers in [cap_strs] — the
    kernel's strings are immutable, so no copy) and return: no closure
    call, no event construction, no encoding. Only when an append
    would overflow does the kernel invoke [cap_drain], which must make
    room again — grow the arrays, or consume the log and reset
    [cap_pos]/[cap_spos] — leaving at least 16 free [cap_buf] slots
    and 2 free [cap_strs] slots (one entry of any kind). The journal
    writer's drain batch-encodes the log into its wire format
    ([Journal.capture]); deferring every codec byte off the emission
    path is what holds the <5% attached-recording overhead gate in
    [bench/journal_bench.ml].

    Entry layout — the contract between the kernel's append sites and
    any drain. The first slot is the event's wire code (constructor
    declaration order); booleans are 0/1, [tag] is
    [Message.Tag.to_index], [cls] is 0 = read-only, 1 =
    state-modifying, 2 = reply; trailing strings ride in [cap_strs]
    in append order:

    {v
     0  E_msg            time src dst tag call rid parent cls (9 slots)
     1  E_reply          time src dst tag rid                 (6)
     2  E_window_open    time ep rid                          (4)
     3  E_window_close   time ep rid policy                   (5)
     4  E_checkpoint     time ep rid cycles                   (5)
     5  E_store_logged   time ep rid bytes                    (5)
     6  E_kcall          time ep rid             + 1 string   (4)
     7  E_crash          time ep window_open rid + 2 strings  (5)
     8  E_hang_detected  time ep                              (3)
     9  E_rollback_begin time ep rid                          (4)
    10  E_rollback_end   time ep rid bytes                    (5)
    11  E_restart        time ep rid             + 1 string   (4)
    12  E_halt           time kind status        + 1 string   (4)
          (kind 0 completed / 1 shutdown / 2 panic / 3 hang;
           the string only for kinds 1 and 2)
    13  E_spawn          time ep parent                       (4)
    v}

    A capture and an event hook can be installed together; per event
    the capture append happens first, then the hook fires, with
    identical field values — so a journal recorded through the capture
    is byte-equivalent to encoding the hook's event stream. *)
type capture = {
  mutable cap_buf : int array;
  mutable cap_pos : int;
  mutable cap_strs : string array;
  mutable cap_spos : int;
  mutable cap_drain : unit -> unit;
}

val set_capture : t -> capture option -> unit

val set_vtime_sampler : t -> interval:int -> (int -> unit) option -> unit
(** Virtual-time sampling hook, the telemetry engine's tap
    ([lib/obs/timeseries.ml]). The hook fires whenever the global
    clock crosses a multiple of [interval] virtual cycles, once per
    boundary crossed, receiving the boundary time — so a run's sample
    timestamps are the fixed grid [interval, 2*interval, ...],
    independent of scheduling detail, and two runs of the same seed
    sample at identical instants. The hook runs on the clock-advance
    path and must be cheap and allocation-free (gated by
    [bench/timeseries_bench.ml]); with no sampler installed the
    clock-advance path pays a single compare. [interval] must be
    positive when installing; it is ignored when [hook] is [None]. *)

(** {1 Cycle attribution}

    Every advance of a process' virtual clock is attributed to exactly
    one phase, at one static emission point (a {!slot}). Counters
    enabled before the first advance (i.e. before {!boot}) therefore
    reconstruct each process clock exactly: summing a process' slot
    cycles yields its {!proc_vtime} — the conservation invariant
    [lib/obs/profiler] asserts. *)

type phase =
  | Ph_user        (** Executing the component's own instructions. *)
  | Ph_instr       (** Recovery-window instrumentation drag
                       ([c_instr_op] per op while stores are logged). *)
  | Ph_log         (** Undo-log write cost riding on logged stores. *)
  | Ph_checkpoint  (** Window-open checkpoint (snapshot copy or
                       constant undo-log arming cost). *)
  | Ph_rollback    (** Rolling state back after an in-window crash. *)
  | Ph_restart     (** Restart machinery: clone image transfer, state
                       clearing, crash downtime until [K_go]. *)
  | Ph_wait        (** Blocked on IPC: the clock jumped forward to a
                       peer's clock or an inbox timestamp. *)

val phase_to_string : phase -> string
(** Stable lowercase names: user, instr, undo_log, checkpoint,
    rollback, restart, ipc_wait. *)

val phase_index : phase -> int
val n_phases : int
val all_phases : phase list

type slot = int
(** An attribution slot: a static emission point of the cycle hook,
    i.e. one (phase, detail) pair — an op kind, a kcall, a checkpoint
    copy, a wait cause. Slots are dense ids in \[0, {!n_slots}), fixed
    at module init, so a consumer can count cycles in flat arrays with
    no hashing on the hot path. *)

val n_slots : int
val slot_phase : slot -> phase
val slot_detail : slot -> string
(** Constant lowercase names, e.g. "compute", "store", "snapshot",
    "downtime", "resume". Several slots may share a detail across
    different phases (a logged store charges a [Ph_user] slot and a
    [Ph_log] slot that are both named "store"). *)

val all_slots : slot list

val enable_cycle_counts : t -> unit
(** Give every process (current and future) a per-slot cycle/event
    counter row, bumped inline at each clock advance — no closure
    call, which is what keeps attached-profiler overhead inside its
    bench gate. Enable before {!boot} and the counters reconstruct
    each process clock exactly; counting cannot be disabled again. *)

val slot_cycles : t -> Endpoint.t -> slot -> int
val slot_events : t -> Endpoint.t -> slot -> int
(** Counter-row reads; 0 for unknown processes or before
    {!enable_cycle_counts}. Allocation-free (safe to call from a
    vtime-sampler hook). *)

val phase_cycles : t -> Endpoint.t -> phase -> int
(** Cycles the process has spent in the phase so far — the sum of its
    counter rows over the phase's slots. 0 for unknown processes or
    before {!enable_cycle_counts}. Allocation-free but O(slots): fine
    for end-of-run reports, not for per-tick sampling. *)

val total_phase_cycles : t -> phase -> int
(** Kernel-global cycles attributed to the phase so far, over {e all}
    processes. Maintained incrementally on the attribution path (two
    array ops per emission while profiling), so a read is O(1) and
    allocation-free — this is what the telemetry engine samples per
    phase every tick. 0 before {!enable_cycle_counts}; unlike summing
    {!phase_cycles}, the total survives process replacement across
    restarts. *)

val profiled_procs : t -> int
(** Number of processes carrying counter rows (allocation accounting
    in [bench/profiler_bench.ml]). *)

val set_cycle_hook : t -> (Endpoint.t -> slot -> int -> unit) option -> unit
(** [hook ep slot cycles] fires for every clock advance, with
    [cycles > 0] — the event-stream form of the attribution, for
    consumers that need per-advance granularity (e.g. the profiler's
    counter-track sampler). All arguments are immediate ints: a hook
    invocation allocates nothing, and with no hook installed each
    emission point pays a single branch (gated in
    [bench/profiler_bench.ml]). *)

(** {1 Per-request cycle charging}

    The per-process/per-slot counters above answer {e where} cycles
    went; these answer {e on whose behalf}. Every delivered rid is
    mapped to its causal root — the nearest ancestor delivered with
    [parent = 0], i.e. a top-level request — and each clock advance
    also bumps one per-phase row keyed by the active thread's root.
    Root index 0 is the system bucket: boot, idle inbox waits, and
    work outside any request. Enabled before {!boot}, the counters
    satisfy the exact identity: for every phase, the sum over all
    roots (system included) of that phase's row equals
    {!total_phase_cycles} — gated with zero tolerance in
    [bench/critpath_bench.ml], alongside its <3% attached-overhead
    gate vs per-slot counting alone. *)

val enable_request_counts : t -> unit
(** Switch per-request charging on (idempotent; cannot be disabled).
    Enable before {!boot} for the conservation identity to hold —
    rids allocated earlier fall into the system bucket. *)

val request_counts_enabled : t -> bool

val request_count : t -> int
(** Number of request roots charged so far (system bucket excluded). *)

val request_rows : t -> (int * Endpoint.t * int array) list
(** [(root_rid, src, row)] per root in creation order: the root's own
    rid, the endpoint that sent it, and its per-phase cycle row
    (indexed by {!phase_index}, a fresh copy). *)

val system_request_row : t -> int array
(** The system bucket's per-phase row (a fresh copy; zeros before
    {!enable_request_counts}). *)

val request_root_of : t -> int -> int
(** The root rid a delivered rid was charged under (0 = system /
    unknown). *)

val live_update : t -> Endpoint.t -> unit Prog.t -> (unit, string) result
(** Replace a server's request-processing loop with a new version,
    preserving its state — a live update built from the recovery
    substrate (paper Section VII, "generality of the framework"): the
    component must be quiescent (blocked in Receive with a closed
    window); the update replaces its loop and resumes it like a
    recovered clone. Fails with a reason when the component is mid-
    request, mid-recovery, or unknown. *)

(** {1 Fault hooks} *)

val set_fault_hook : t -> (site -> fault_action option) option -> unit
(** Consulted for every post-boot server operation. *)

val set_site_recorder : t -> (site -> unit) option -> unit
(** Profiling support: called for every post-boot server operation. *)

(** {1 Introspection} *)

val now : t -> int
(** Virtual time in cycles (max over process clocks so far). *)

val total_ops : t -> int

type server_stats = {
  ss_name : string;
  ss_policy : string;          (** The compartment's resolved policy. *)
  ss_ops_total : int;          (** Post-boot ops executed. *)
  ss_ops_in_window : int;      (** Of which inside an open window. *)
  ss_busy_cycles : int;
  ss_logged_stores : int;
  ss_skipped_stores : int;
  ss_deduped_stores : int;
  ss_undo_peak_bytes : int;
  ss_undo_entries_lifetime : int;
  ss_rollback_bytes : int;        (** Lifetime payload bytes blitted back by rollbacks. *)
  ss_restore_bytes_saved : int;   (** Bytes dirty-region stateless restarts did not blit. *)
  ss_image_bytes : int;
  ss_image_used_bytes : int;
  ss_clone_extra_kb : int;
  ss_window_opens : int;
  ss_policy_closes : int;
  ss_restarts : int;
}

val server_stats : t -> Endpoint.t -> server_stats

val server_image : t -> Endpoint.t -> bytes option
(** Snapshot of the server's current memory image ([None] for unknown
    or image-less endpoints). Test support: lets equivalence tests
    compare post-recovery state byte-for-byte across configurations. *)

val handler_counts : t -> Endpoint.t -> (Message.Tag.t * int) list
(** How many times each request type was handled (post-boot), the
    workload-frequency input to the static recovery-window analysis. *)

val recovery_latencies : t -> int list
(** Virtual-cycle durations of completed recoveries (crash to restart),
    newest first. *)

val crash_times : t -> int list
(** Virtual instants of every crash observed (including hangs detected
    and crashes that never recovered), newest first — the raw material
    of a crash-storm timeline. *)

val recovery_episodes : t -> (Endpoint.t * int * int) list
(** Completed recovery spans [(ep, crashed_at, recovered_at)], newest
    first; [recovered_at - crashed_at] is the episode's MTTR and the
    list zips with {!recovery_latencies}. Crashes that ended in a
    panic or shutdown never appear here (compare {!crash_times}). *)

val server_endpoints : t -> Endpoint.t list
(** Registered servers in registration order. *)

val crashes : t -> int
(** Crash events observed (including hangs detected). *)

val restarts : t -> int

val orphaned_replies : t -> int

val messages_delivered : t -> int

val run_queue_depth : t -> int
(** Ready-to-run scheduler items currently in the heap — a load gauge
    the telemetry engine samples. Allocation-free. *)

val inbox_depth : t -> Endpoint.t -> int
(** Pending inbox messages for the endpoint (0 for unknown endpoints).
    Allocation-free. *)

type proc_handle
(** A stable reference to a {e server} process record. Server records
    are installed once and mutated in place across crash/recovery, so
    a handle captured at registration stays valid for the kernel's
    lifetime. User processes are replaced on respawn — do not hold
    handles to them. *)

val server_handle : t -> Endpoint.t -> proc_handle option
(** [None] for unknown endpoints. Capture once (e.g. when registering
    telemetry sources), then read through the handle. *)

val handle_alive : proc_handle -> bool
(** Direct field load — the O(1) form of {!proc_alive} the vtime
    sampler uses per tick. Allocation-free. *)

val handle_inbox_depth : proc_handle -> int
(** Direct field load — the O(1) form of {!inbox_depth} the vtime
    sampler uses per tick. Allocation-free. *)

val proc_alive : t -> Endpoint.t -> bool

val proc_policy_name : t -> Endpoint.t -> string option
(** The policy the process was resolved to at creation ([None] for
    unknown endpoints). *)

val window_is_open : t -> Endpoint.t -> bool
(** Whether the component's recovery window is currently open (false
    for components without instrumentation). Used by the service-
    disruption experiment, which only injects faults inside windows. *)

val proc_vtime : t -> Endpoint.t -> int
(** The process' own clock (0 for unknown endpoints). *)

val user_count : t -> int
(** User processes created over the run's lifetime. *)

val shed_exits : t -> int
(** User processes that exited with the EAGAIN-shed status 75 — storm
    requests the session layer refused at admission. Feeds the
    [kernel.shed] timeseries source and the shed-load metric. *)
