(* Run-queue scheduler: hierarchical bitmap timer wheel + ready ring +
   far chain, with an embedded port of the old Vheap binary heap as a
   trajectory oracle.  See sched.mli for the design overview.

   Invariants (wheel mode):
   - [cursor] only advances, and equals the key of the last wheel pop
     (never moved by ready-ring pops).
   - every wheel entry has [key >= cursor]; every ready-ring entry has
     [key < cursor]; every far entry has [key lxor cursor >= horizon]
     (hence [key > ] every in-wheel key, since [key >= cursor]).
   - level-[l] slots only hold keys whose digits above level [l] agree
     with the cursor's, so a level-0 slot holds exactly one key and
     level order is key order: all keys at level [l] are strictly
     below all keys at level [l+1].
   - [wmin] is the exact minimum key over wheel + far ([max_int] when
     both are empty): pushes lower it directly, pops refresh it by
     re-locating (and cascading) the front.

   Zero allocation on push/pop after warm-up: all state is flat int
   arrays (node pool with an intrusive free list through [n_next]),
   loops are tail recursions over int arguments, and multi-value
   results go through scratch fields instead of tuples. *)

let slot_bits = 5
let slots = 32
let slot_mask = slots - 1
let levels = 7
let horizon_bits = levels * slot_bits
let horizon = 1 lsl horizon_bits

(* Count trailing zeros of a nonzero 32-bit value: de Bruijn multiply.
   OCaml ints are wider than 32 bits, so the multiply never wraps; the
   bits we extract (27..31 of the mod-2^32 product) are unaffected by
   the missing truncation. *)
let debruijn32 =
  [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8;
     31; 27; 13; 23; 21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

let ctz32 x = debruijn32.((((x land (-x)) * 0x077CB531) lsr 27) land 31)

(* ---------------------------------------------------------------- *)
(* Old-heap oracle: faithful port of Osiris_util.Vheap (boxed entry
   records, identical sift order), absorbed here when the wheel
   replaced it as the kernel's run queue.                             *)
(* ---------------------------------------------------------------- *)

type entry = { e_key : int; e_seq : int; e_val : int }

type oracle = { mutable o_data : entry array; mutable o_len : int }

let o_dummy = { e_key = 0; e_seq = 0; e_val = 0 }

let o_less a b = a.e_key < b.e_key || (a.e_key = b.e_key && a.e_seq < b.e_seq)

let o_grow o =
  let cap = Array.length o.o_data in
  if o.o_len = cap then begin
    let data = Array.make (if cap = 0 then 16 else 2 * cap) o_dummy in
    Array.blit o.o_data 0 data 0 o.o_len;
    o.o_data <- data
  end

let rec o_sift_up o i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if o_less o.o_data.(i) o.o_data.(parent) then begin
      let tmp = o.o_data.(i) in
      o.o_data.(i) <- o.o_data.(parent);
      o.o_data.(parent) <- tmp;
      o_sift_up o parent
    end
  end

let rec o_sift_down o i =
  let l = (2 * i) + 1 in
  if l < o.o_len then begin
    let r = l + 1 in
    let m = if r < o.o_len && o_less o.o_data.(r) o.o_data.(l) then r else l in
    if o_less o.o_data.(m) o.o_data.(i) then begin
      let tmp = o.o_data.(i) in
      o.o_data.(i) <- o.o_data.(m);
      o.o_data.(m) <- tmp;
      o_sift_down o m
    end
  end

(* ---------------------------------------------------------------- *)

type t = {
  (* node pool (wheel + far chains), free list through [n_next] *)
  mutable n_key : int array;
  mutable n_seq : int array;
  mutable n_val : int array;
  mutable n_next : int array;
  mutable free_head : int;
  (* wheel *)
  slot_head : int array; (* levels * slots chain heads, -1 = empty *)
  bitmap : int array;    (* per-level slot occupancy *)
  mutable cursor : int;
  mutable wmin : int;    (* exact min over wheel + far; max_int if none *)
  (* far chain *)
  mutable far_head : int;
  mutable far_min : int;
  (* ready ring: (key, seq) binary min-heap in parallel arrays *)
  mutable r_key : int array;
  mutable r_seq : int array;
  mutable r_val : int array;
  mutable r_len : int;
  (* common *)
  mutable seq : int;
  mutable count : int;
  mutable last_key : int;
  (* scratch returns for allocation-free multi-value results *)
  mutable sc_best : int;
  mutable sc_bprev : int;
  oracle : oracle option;
}

let use_oracle = ref false

let create () =
  let pool = 64 in
  let n_next = Array.make pool 0 in
  for i = 0 to pool - 1 do
    n_next.(i) <- (if i = pool - 1 then -1 else i + 1)
  done;
  {
    n_key = Array.make pool 0;
    n_seq = Array.make pool 0;
    n_val = Array.make pool 0;
    n_next;
    free_head = 0;
    slot_head = Array.make (levels * slots) (-1);
    bitmap = Array.make levels 0;
    cursor = 0;
    wmin = max_int;
    far_head = -1;
    far_min = max_int;
    r_key = Array.make 16 0;
    r_seq = Array.make 16 0;
    r_val = Array.make 16 0;
    r_len = 0;
    seq = 0;
    count = 0;
    last_key = 0;
    sc_best = -1;
    sc_bprev = -1;
    oracle = (if !use_oracle then Some { o_data = [||]; o_len = 0 } else None);
  }

let is_oracle t = t.oracle <> None
let length t = t.count
let is_empty t = t.count = 0
let popped_key t = t.last_key

(* -- node pool -------------------------------------------------- *)

let grow_pool t =
  let cap = Array.length t.n_key in
  let cap' = 2 * cap in
  let n_key = Array.make cap' 0
  and n_seq = Array.make cap' 0
  and n_val = Array.make cap' 0
  and n_next = Array.make cap' 0 in
  Array.blit t.n_key 0 n_key 0 cap;
  Array.blit t.n_seq 0 n_seq 0 cap;
  Array.blit t.n_val 0 n_val 0 cap;
  Array.blit t.n_next 0 n_next 0 cap;
  for i = cap to cap' - 1 do
    n_next.(i) <- (if i = cap' - 1 then -1 else i + 1)
  done;
  t.n_key <- n_key;
  t.n_seq <- n_seq;
  t.n_val <- n_val;
  t.n_next <- n_next;
  t.free_head <- cap

let alloc_node t ~key ~seq ~v =
  if t.free_head < 0 then grow_pool t;
  let n = t.free_head in
  t.free_head <- t.n_next.(n);
  t.n_key.(n) <- key;
  t.n_seq.(n) <- seq;
  t.n_val.(n) <- v;
  n

let free_node t n =
  t.n_next.(n) <- t.free_head;
  t.free_head <- n

(* -- ready ring ------------------------------------------------- *)

let r_grow t =
  let cap = Array.length t.r_key in
  if t.r_len = cap then begin
    let cap' = 2 * cap in
    let r_key = Array.make cap' 0
    and r_seq = Array.make cap' 0
    and r_val = Array.make cap' 0 in
    Array.blit t.r_key 0 r_key 0 cap;
    Array.blit t.r_seq 0 r_seq 0 cap;
    Array.blit t.r_val 0 r_val 0 cap;
    t.r_key <- r_key;
    t.r_seq <- r_seq;
    t.r_val <- r_val
  end

let r_less t i j =
  t.r_key.(i) < t.r_key.(j)
  || (t.r_key.(i) = t.r_key.(j) && t.r_seq.(i) < t.r_seq.(j))

let r_swap t i j =
  let k = t.r_key.(i) and s = t.r_seq.(i) and v = t.r_val.(i) in
  t.r_key.(i) <- t.r_key.(j);
  t.r_seq.(i) <- t.r_seq.(j);
  t.r_val.(i) <- t.r_val.(j);
  t.r_key.(j) <- k;
  t.r_seq.(j) <- s;
  t.r_val.(j) <- v

let rec r_sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if r_less t i parent then begin
      r_swap t i parent;
      r_sift_up t parent
    end
  end

let rec r_sift_down t i =
  let l = (2 * i) + 1 in
  if l < t.r_len then begin
    let r = l + 1 in
    let m = if r < t.r_len && r_less t r l then r else l in
    if r_less t m i then begin
      r_swap t m i;
      r_sift_down t m
    end
  end

let ready_push t ~key ~seq v =
  r_grow t;
  let i = t.r_len in
  t.r_key.(i) <- key;
  t.r_seq.(i) <- seq;
  t.r_val.(i) <- v;
  t.r_len <- i + 1;
  r_sift_up t i

(* -- wheel ------------------------------------------------------ *)

(* Insertion level: index of the highest base-32 digit where [key]
   and the cursor differ (0 when equal).  Caller guarantees
   [key lxor cursor < horizon]. *)
let level_of t key =
  let x = key lxor t.cursor in
  let rec go l = if x < 1 lsl (slot_bits * (l + 1)) then l else go (l + 1) in
  go 0

let wheel_place t n key =
  let l = level_of t key in
  let s = (key lsr (slot_bits * l)) land slot_mask in
  let idx = (l * slots) + s in
  t.n_next.(n) <- t.slot_head.(idx);
  t.slot_head.(idx) <- n;
  t.bitmap.(l) <- t.bitmap.(l) lor (1 lsl s)

(* Detach the chain at (l, s) and re-scatter its nodes to finer
   levels relative to the new cursor. *)
let rec rescatter t chain =
  if chain >= 0 then begin
    let next = t.n_next.(chain) in
    wheel_place t chain t.n_key.(chain);
    rescatter t next
  end

(* Pull far-chain nodes that now fit the wheel horizon; rebuild the
   remaining chain and recompute [far_min]. *)
let rec drain_far t chain =
  if chain >= 0 then begin
    let next = t.n_next.(chain) in
    let key = t.n_key.(chain) in
    if key lxor t.cursor < horizon then wheel_place t chain key
    else begin
      t.n_next.(chain) <- t.far_head;
      t.far_head <- chain;
      if key < t.far_min then t.far_min <- key
    end;
    drain_far t next
  end

(* Locate the wheel minimum and cascade it down to level 0; returns
   its level-0 slot.  Precondition: wheel or far chain nonempty. *)
let rec settle t =
  let m0 = t.bitmap.(0) land ((-1) lsl (t.cursor land slot_mask)) in
  if m0 <> 0 then ctz32 m0
  else begin
    let rec first_level l =
      if l >= levels then -1
      else begin
        let d = (t.cursor lsr (slot_bits * l)) land slot_mask in
        let m = t.bitmap.(l) land ((-1) lsl d) in
        if m <> 0 then begin
          (* cascade slot (l, s): advance the cursor to the slot base
             and re-scatter the chain to finer levels *)
          let s = ctz32 m in
          let idx = (l * slots) + s in
          let hb = slot_bits * (l + 1) in
          t.cursor <-
            ((t.cursor lsr hb) lsl hb) lor (s lsl (slot_bits * l));
          let chain = t.slot_head.(idx) in
          t.slot_head.(idx) <- -1;
          t.bitmap.(l) <- t.bitmap.(l) land lnot (1 lsl s);
          rescatter t chain;
          0 (* re-settle from level 0 *)
        end
        else first_level (l + 1)
      end
    in
    if first_level 1 >= 0 then settle t
    else begin
      (* whole wheel empty: jump to the far chain *)
      t.cursor <- t.far_min;
      let chain = t.far_head in
      t.far_head <- -1;
      t.far_min <- max_int;
      drain_far t chain;
      settle t
    end
  end

let wheel_occupied t =
  let rec go l acc = if l >= levels then acc else go (l + 1) (acc lor t.bitmap.(l)) in
  go 0 0 <> 0 || t.far_head >= 0

let refresh_wmin t =
  if wheel_occupied t then begin
    let s = settle t in
    t.wmin <- ((t.cursor lsr slot_bits) lsl slot_bits) lor s
  end
  else t.wmin <- max_int

(* Min-seq scan of a level-0 chain (all nodes share one key): leaves
   the best node in [sc_best] and its predecessor in [sc_bprev]. *)
let rec scan_min t best bprev prev cur =
  if cur < 0 then begin
    t.sc_best <- best;
    t.sc_bprev <- bprev
  end
  else if t.n_seq.(cur) < t.n_seq.(best) then
    scan_min t cur prev cur t.n_next.(cur)
  else scan_min t best bprev cur t.n_next.(cur)

(* -- public operations ------------------------------------------ *)

let push t ~key v =
  t.count <- t.count + 1;
  match t.oracle with
  | Some o ->
    t.seq <- t.seq + 1;
    o_grow o;
    o.o_data.(o.o_len) <- { e_key = key; e_seq = t.seq; e_val = v };
    o.o_len <- o.o_len + 1;
    o_sift_up o (o.o_len - 1)
  | None ->
    t.seq <- t.seq + 1;
    if key < t.cursor then ready_push t ~key ~seq:t.seq v
    else if key lxor t.cursor >= horizon then begin
      let n = alloc_node t ~key ~seq:t.seq ~v in
      t.n_next.(n) <- t.far_head;
      t.far_head <- n;
      if key < t.far_min then t.far_min <- key;
      if key < t.wmin then t.wmin <- key
    end
    else begin
      let n = alloc_node t ~key ~seq:t.seq ~v in
      wheel_place t n key;
      if key < t.wmin then t.wmin <- key
    end

let next_key t =
  match t.oracle with
  | Some o -> if o.o_len = 0 then max_int else o.o_data.(0).e_key
  | None -> if t.r_len > 0 then t.r_key.(0) else t.wmin

let pop t =
  match t.oracle with
  | Some o ->
    if o.o_len = 0 then -1
    else begin
      t.count <- t.count - 1;
      let top = o.o_data.(0) in
      o.o_len <- o.o_len - 1;
      if o.o_len > 0 then begin
        o.o_data.(0) <- o.o_data.(o.o_len);
        o.o_data.(o.o_len) <- o_dummy;
        o_sift_down o 0
      end
      else o.o_data.(0) <- o_dummy;
      t.last_key <- top.e_key;
      top.e_val
    end
  | None ->
    if t.count = 0 then -1
    else begin
      t.count <- t.count - 1;
      if t.r_len > 0 then begin
        (* ready-ring keys are strictly below the cursor, hence below
           every wheel/far key: they always pop first *)
        t.last_key <- t.r_key.(0);
        let v = t.r_val.(0) in
        t.r_len <- t.r_len - 1;
        if t.r_len > 0 then begin
          let n = t.r_len in
          t.r_key.(0) <- t.r_key.(n);
          t.r_seq.(0) <- t.r_seq.(n);
          t.r_val.(0) <- t.r_val.(n);
          r_sift_down t 0
        end;
        v
      end
      else begin
        let s = settle t in
        let key = ((t.cursor lsr slot_bits) lsl slot_bits) lor s in
        let head = t.slot_head.(s) in
        scan_min t head (-1) head t.n_next.(head);
        let n = t.sc_best in
        if t.sc_bprev < 0 then t.slot_head.(s) <- t.n_next.(n)
        else t.n_next.(t.sc_bprev) <- t.n_next.(n);
        if t.slot_head.(s) < 0 then
          t.bitmap.(0) <- t.bitmap.(0) land lnot (1 lsl s);
        let v = t.n_val.(n) in
        free_node t n;
        t.cursor <- key;
        t.last_key <- key;
        refresh_wmin t;
        v
      end
    end

let clear t =
  (match t.oracle with
   | Some o ->
     Array.fill o.o_data 0 o.o_len o_dummy;
     o.o_len <- 0
   | None -> ());
  let cap = Array.length t.n_key in
  for i = 0 to cap - 1 do
    t.n_next.(i) <- (if i = cap - 1 then -1 else i + 1)
  done;
  t.free_head <- 0;
  Array.fill t.slot_head 0 (levels * slots) (-1);
  Array.fill t.bitmap 0 levels 0;
  t.cursor <- 0;
  t.wmin <- max_int;
  t.far_head <- -1;
  t.far_min <- max_int;
  t.r_len <- 0;
  t.seq <- 0;
  t.count <- 0;
  t.last_key <- 0
