(** Kernel run-queue scheduler: hierarchical timer wheel + ready ring.

    The kernel's event loop needs a priority queue over [(virtual
    instant, push sequence)] — pop the earliest instant, FIFO among
    equals.  The original implementation was a binary heap
    ([Osiris_util.Vheap], absorbed here); this module replaces it with
    a structure shaped for the actual key distribution:

    - a {e hierarchical bitmap timer wheel} for keys at or beyond the
      wheel {e cursor} (the last instant popped from the wheel):
      {!levels} levels of {!slots} slots, level [l] spanning
      [slots^l] cycles per slot, with a per-level occupancy bitmap so
      the next occupied slot is a mask-and-count-trailing-zeros away.
      Push and pop are O(1) amortized: an entry is re-scattered
      ("cascaded") to a finer level at most [levels] times over its
      lifetime.
    - a {e ready ring} for past-dated keys (strictly below the
      cursor): wakeups for processes whose virtual clocks lag the
      popped front — common, because a blocked receiver keeps the
      vtime it had when it parked.  These are due immediately; the
      ring is a compact (key, seq) binary min-heap over parallel int
      arrays, typically holding a handful of entries.
    - a {e far chain} for keys beyond the top wheel level's horizon
      ([cursor + horizon]); entries migrate onto the wheel when the
      cursor approaches.

    Keys never tie across structures (ready keys are strictly below
    the cursor, wheel keys at or above it), so the exact
    [(key, seq)] lexicographic pop order of the old heap is preserved
    bit-for-bit — [bench/sched_bench.ml] gates byte-identical run
    trajectories against the embedded old-heap oracle.

    All state lives in flat int arrays with a free-list node pool:
    after warm-up, {!push} and {!pop} allocate nothing (gated in
    [bench/sched_bench.ml]).  Values are ints — the kernel packs
    [(endpoint, item-tag)] into one word.  Sentinel returns
    ([max_int] / [-1]) replace option boxing on the hot path. *)

type t

val levels : int
(** Wheel levels (7). *)

val slots : int
(** Slots per level (32). *)

val horizon : int
(** [slots ^ levels] — keys at [cursor + horizon] or beyond go to the
    far chain until the cursor catches up. *)

val use_oracle : bool ref
(** When true at {!create} time, the instance is backed by a faithful
    port of the old [Vheap] binary heap (boxed entries, same sift
    order) instead of the wheel.  Pop order is identical by
    construction; the bench and the trajectory-identity tests run
    whole-system workloads in both modes and compare [ss_*] counters
    and journal bytes.  Test/bench hook — not consulted after
    [create]. *)

val create : unit -> t

val is_oracle : t -> bool

val length : t -> int

val is_empty : t -> bool

val push : t -> key:int -> int -> unit
(** [push t ~key v] enqueues value [v] at virtual instant [key].
    Entries with equal [key] pop in push order (FIFO).  [key] may lie
    in the past (below the last popped key) — such entries pop before
    everything at or beyond the cursor, in exact [(key, seq)] order.
    Allocation-free after warm-up. *)

val next_key : t -> int
(** Earliest key currently queued, or [max_int] when empty.  O(1):
    the wheel-side minimum is cached exactly across pushes and
    refreshed on pop.  Allocation-free. *)

val pop : t -> int
(** Remove and return the value with the smallest [(key, seq)], or
    [-1] when empty.  The popped key is readable via {!popped_key}
    until the next pop.  Allocation-free after warm-up. *)

val popped_key : t -> int
(** Key of the most recent successful {!pop} (0 before any pop). *)

val clear : t -> unit
(** Empty the queue and reset the cursor and sequence counter; keeps
    the allocated pools. *)
