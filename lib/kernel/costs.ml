type t = {
  c_load : int;
  c_store : int;
  c_store_per_byte : int;
  c_log : int;
  c_log_per_byte : int;
  c_send : int;
  c_call : int;
  c_reply : int;
  c_receive : int;
  c_kcall : int;
  c_spawn : int;
  c_yield : int;
  c_checkpoint : int;
  c_disk_block : int;
  c_instr_op : int;
}

let microkernel =
  { c_load = 4;
    c_store = 6;
    c_store_per_byte = 1;
    c_log = 40;
    c_log_per_byte = 2;
    c_send = 900;
    c_call = 1800;   (* two domain switches + message copy *)
    c_reply = 900;
    c_receive = 300;
    c_kcall = 600;
    c_spawn = 150;
    c_yield = 80;
    c_checkpoint = 40;
    c_disk_block = 1_200;
    c_instr_op = 20 }

let monolithic =
  { c_load = 4;
    c_store = 6;
    c_store_per_byte = 1;
    c_log = 14;
    c_log_per_byte = 1;
    c_send = 60;
    c_call = 120;    (* trap + return *)
    c_reply = 60;
    c_receive = 30;
    c_kcall = 60;
    c_spawn = 80;
    c_yield = 40;
    c_checkpoint = 40;
    c_disk_block = 1_200;
    c_instr_op = 20 }

(* FNV-1a over the field values in declaration order, folded to 62
   bits so the result is a positive OCaml int on 64-bit platforms and
   varint-encodes compactly. Stable across processes and machines —
   unlike [Hashtbl.hash], whose contract allows implementation drift —
   which is what lets a journal recorded on one host be replayed on
   another and still detect cost-table skew. *)
let fingerprint t =
  let prime = 0x100000001b3 in
  let mask = (1 lsl 62) - 1 in
  let h = ref 0xcbf29ce4842223 in  (* FNV offset basis, truncated to fit an OCaml int *)
  let mix v =
    (* Mix each of the int's 8 bytes so nearby values diverge. *)
    for shift = 0 to 7 do
      h := ((!h lxor ((v lsr (8 * shift)) land 0xff)) * prime) land mask
    done
  in
  List.iter mix
    [ t.c_load; t.c_store; t.c_store_per_byte; t.c_log; t.c_log_per_byte;
      t.c_send; t.c_call; t.c_reply; t.c_receive; t.c_kcall; t.c_spawn;
      t.c_yield; t.c_checkpoint; t.c_disk_block; t.c_instr_op ];
  !h

let scaled_ghz = 2.3

let cycles_to_seconds c = float_of_int c /. (scaled_ghz *. 1e9)
