(** Simulated cycle costs of every interpreter operation.

    The cost table is how architectural differences are modelled:
    the microkernel table charges two protection-domain switches per
    synchronous IPC (the price of compartmentalization the paper
    discusses in Section VI-C), while the monolithic table charges a
    trap-like cost, standing in for the "Linux" comparison system of
    Table IV. [c_log] is the per-store undo-logging cost whose
    elimination outside recovery windows is the Table V optimization. *)

type t = {
  c_load : int;
  c_store : int;
  c_store_per_byte : int;  (** Extra cost per byte for string stores. *)
  c_log : int;             (** Undo-log append, charged per logged store. *)
  c_log_per_byte : int;
      (** Per-byte log cost for string stores. The instrumentation logs
          word-sized entries, so a bulk store of N bytes produces N/8
          log appends; this constant carries that per-word entry cost
          spread over the bytes. *)
  c_send : int;
  c_call : int;            (** Full sendrec round-trip entry cost. *)
  c_reply : int;
  c_receive : int;
  c_kcall : int;
  c_spawn : int;
  c_yield : int;
  c_checkpoint : int;      (** Window open: clearing the undo log. *)
  c_disk_block : int;      (** Block-device access latency. *)
  c_instr_op : int;
      (** Per-operation instrumentation drag while store logging is
          active. One interpreted operation stands for a cluster of
          machine-level stores (locals, spills, loop counters) that the
          LLVM pass instruments individually; this constant carries
          their aggregate logging cost, calibrated against the DSN'15
          lightweight-memory-checkpointing measurements. *)
}

val microkernel : t
(** MINIX-like: IPC crosses protection domains. *)

val monolithic : t
(** Single address space: syscalls are traps, internal "IPC" is a
    function call. *)

val fingerprint : t -> int
(** Deterministic 62-bit hash of the cost table (FNV-1a over the
    fields, stable across processes and machines). Recorded in journal
    headers so replay can detect that it is about to re-execute under
    a different cost model — the divergence sanitizer's first line of
    defence. *)

val scaled_ghz : float
(** Simulated clock rate used to convert cycles to seconds when
    reporting benchmark scores (the paper's testbed ran at 2.3 GHz). *)

val cycles_to_seconds : int -> float
