type t = {
  capacity : int;
  ring : Kernel.event option array;
  mutable next : int;
  mutable total : int;
  mutable snapshot_on : (Kernel.event -> bool) option;
  mutable snapshot : Kernel.event list;  (* oldest first; [] = never taken *)
  mutable snapshots : int;
}

let create ?(capacity = 512) () =
  { capacity = max 1 capacity;
    ring = Array.make (max 1 capacity) None;
    next = 0;
    total = 0;
    snapshot_on = None;
    snapshot = [];
    snapshots = 0 }

let events t =
  (* Only [min total capacity] slots hold events; before the ring wraps
     the rest are None and need not be scanned. The occupied window
     ends just before [next], so walking it newest-index-first and
     consing yields oldest-first order. *)
  let n = min t.total t.capacity in
  let out = ref [] in
  for i = n - 1 downto 0 do
    match t.ring.((t.next - n + i + t.capacity) mod t.capacity) with
    | Some ev -> out := ev :: !out
    | None -> ()
  done;
  !out

let record t ev =
  t.ring.(t.next) <- Some ev;
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1;
  (* Snapshot-on-event: freeze the last-N window the moment the
     predicate fires (the trigger is the snapshot's newest event), not
     at end-of-run when the interesting history may already have been
     evicted. With no predicate installed the record path pays one
     branch and allocates nothing. *)
  match t.snapshot_on with
  | Some p when p ev ->
    t.snapshot <- events t;
    t.snapshots <- t.snapshots + 1
  | _ -> ()

let attach t kernel = Kernel.set_event_hook kernel (Some (record t))

let set_snapshot_on t p = t.snapshot_on <- p

let last_snapshot t = t.snapshot

let snapshots_taken t = t.snapshots

let recorded t = t.total

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.total <- 0;
  t.snapshot <- [];
  t.snapshots <- 0

(* Endpoint columns are 8 wide: long server names ("user100" is 7
   chars, bdev/mfs are shorter) keep the arrows aligned. *)
let pp_event = function
  | Kernel.E_msg { time; src; dst; tag; call; rid; parent; cls = _ } ->
    Printf.sprintf "%10d  %-8s -> %-8s %s%s [rid %d%s]" time
      (Endpoint.server_name src) (Endpoint.server_name dst)
      (Message.Tag.to_string tag)
      (if call then " (call)" else "")
      rid
      (if parent = 0 then "" else Printf.sprintf " < %d" parent)
  | Kernel.E_reply { time; src; dst; tag = _; rid } ->
    Printf.sprintf "%10d  %-8s => %-8s reply [rid %d]" time
      (Endpoint.server_name src) (Endpoint.server_name dst) rid
  | Kernel.E_window_open { time; ep; rid } ->
    Printf.sprintf "%10d  %-8s window open [rid %d]" time
      (Endpoint.server_name ep) rid
  | Kernel.E_window_close { time; ep; rid; policy } ->
    Printf.sprintf "%10d  %-8s window close%s [rid %d]" time
      (Endpoint.server_name ep)
      (if policy then " (policy)" else "")
      rid
  | Kernel.E_checkpoint { time; ep; rid; cycles } ->
    Printf.sprintf "%10d  %-8s checkpoint (%d cycles) [rid %d]" time
      (Endpoint.server_name ep) cycles rid
  | Kernel.E_store_logged { time; ep; rid; bytes } ->
    Printf.sprintf "%10d  %-8s store logged (%dB) [rid %d]" time
      (Endpoint.server_name ep) bytes rid
  | Kernel.E_kcall { time; ep; rid; kc } ->
    Printf.sprintf "%10d  %-8s kcall %s [rid %d]" time
      (Endpoint.server_name ep) kc rid
  | Kernel.E_crash { time; ep; reason; window_open; rid; policy } ->
    Printf.sprintf "%10d  CRASH %s (%s) window=%s policy=%s [rid %d]" time
      (Endpoint.server_name ep) reason
      (if window_open then "open" else "closed")
      policy rid
  | Kernel.E_hang_detected { time; ep } ->
    Printf.sprintf "%10d  HANG %s" time (Endpoint.server_name ep)
  | Kernel.E_rollback_begin { time; ep; rid } ->
    Printf.sprintf "%10d  %-8s rollback begin [rid %d]" time
      (Endpoint.server_name ep) rid
  | Kernel.E_rollback_end { time; ep; rid; bytes } ->
    Printf.sprintf "%10d  %-8s rollback end (%dB) [rid %d]" time
      (Endpoint.server_name ep) bytes rid
  | Kernel.E_restart { time; ep; rid; policy } ->
    Printf.sprintf "%10d  RESTART %s policy=%s [rid %d]" time
      (Endpoint.server_name ep) policy rid
  | Kernel.E_halt { time; halt } ->
    Printf.sprintf "%10d  HALT %s" time (Kernel.halt_to_string halt)
  | Kernel.E_spawn { time; ep; parent } ->
    Printf.sprintf "%10d  SPAWN %s parent=%s" time
      (Endpoint.server_name ep) (Endpoint.server_name parent)

let touches ep = function
  | Kernel.E_msg { src; dst; _ } | Kernel.E_reply { src; dst; _ } ->
    src = ep || dst = ep
  | Kernel.E_crash { ep = e; _ }
  | Kernel.E_restart { ep = e; _ }
  | Kernel.E_window_open { ep = e; _ }
  | Kernel.E_window_close { ep = e; _ }
  | Kernel.E_checkpoint { ep = e; _ }
  | Kernel.E_store_logged { ep = e; _ }
  | Kernel.E_kcall { ep = e; _ }
  | Kernel.E_hang_detected { ep = e; _ }
  | Kernel.E_rollback_begin { ep = e; _ }
  | Kernel.E_rollback_end { ep = e; _ }
  | Kernel.E_spawn { ep = e; _ } -> e = ep
  | Kernel.E_halt _ -> true

let timeline ?only t =
  let evs = events t in
  let evs =
    match only with None -> evs | Some ep -> List.filter (touches ep) evs
  in
  List.map pp_event evs
