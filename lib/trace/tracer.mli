(** Ring-buffer event tracer for the simulated kernel.

    Attach a tracer to a kernel (before or during a run) and it records
    the last [capacity] IPC/crash/recovery events; render them as an
    aligned timeline for debugging deadlocks and recovery sequences.

    For structured consumption of the event stream (span trees, metrics,
    Perfetto export) use [lib/obs] instead; the tracer is the low-cost
    flight recorder.

    {[
      let tracer = Tracer.create ~capacity:256 () in
      Tracer.attach tracer (System.kernel sys);
      ...
      List.iter print_endline (Tracer.timeline tracer)
    ]} *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 512 events. *)

val attach : t -> Kernel.t -> unit
(** Install as the kernel's event hook (replaces any previous hook). *)

val record : t -> Kernel.event -> unit
(** The hook body: append one event, evicting the oldest when the ring
    is full. Exposed so tests and composite hooks can feed a tracer
    directly. *)

val events : t -> Kernel.event list
(** Recorded events, oldest first (at most [capacity]). Costs
    O(min recorded capacity) — a partially filled ring does not pay for
    its unused slots. *)

val recorded : t -> int
(** Total events seen, including ones evicted from the ring. *)

val set_snapshot_on : t -> (Kernel.event -> bool) option -> unit
(** Install a snapshot predicate: when {!record} sees an event for
    which it returns true, the ring's current contents (trigger
    included, as the newest event) are frozen as {!last_snapshot}.
    This is how the last-N history {e leading up to} a crash survives
    to end-of-run even though later recovery traffic keeps evicting
    ring slots — the journal's bounded-memory ring mode and
    [osiris record --ring] both arm it with
    [function Kernel.E_crash _ -> true | _ -> false]. A later trigger
    replaces the snapshot (newest crash wins); recording stays
    allocation-free while the predicate does not fire. *)

val last_snapshot : t -> Kernel.event list
(** The ring contents at the most recent snapshot trigger, oldest
    first ([[]] when the predicate never fired or none is installed). *)

val snapshots_taken : t -> int
(** How many times the snapshot predicate has fired. *)

val clear : t -> unit

val timeline : ?only:Endpoint.t -> t -> string list
(** Render, one line per event, optionally filtered to events touching
    the given endpoint. The [only] filter deliberately always lets
    [E_halt] through: a halt is a system-wide event that terminates
    every per-endpoint story, so a filtered timeline still ends with
    the run's outcome. *)

val pp_event : Kernel.event -> string
