(** Open-loop heavy-traffic engine.

    Every other workload in the repo is {e closed-loop}: one program
    issues a call, waits, issues the next, so offered load adapts to
    system speed and saturation is invisible.  This module models the
    way a production OS is judged: an {e open-loop} arrival process —
    request arrival times drawn up front from the arrival model,
    independent of how fast the system serves them — so queueing delay
    appears in the measured latency instead of silently throttling the
    load (no coordinated omission).

    Mechanically, each request is a user process injected with
    {!Kernel.spawn_user_at} at its nominal arrival instant: it enters
    the scheduler's timer wheel at that key and first runs exactly
    then.  Its program connects ({!Syscall.adopt} — PM registration
    with VM/VFS introductions), performs one service-mix action
    against the syscall surface, and exits; the kernel records the
    exit status and the process' clock at the exit call
    ({!Kernel.user_exit}), giving latency = exit − nominal arrival.
    A run ends when the last request drains
    ({!Kernel.set_halt_on_drain}).

    Everything is derived from the spec's seed through
    [Osiris_util.Rng]: arrival times, service mix, and Zipf-skewed
    target popularity are identical across re-runs and across
    [Parfan --jobs] fan-out of a sweep. *)

type arrival =
  | Poisson  (** Memoryless arrivals: exponential inter-arrival gaps. *)
  | Bursty of { on_mean : int; off_mean : int }
      (** On/off modulated Poisson: exponential ON phases (mean
          [on_mean] cycles) during which arrivals run at the
          compensated rate, separated by exponential OFF gaps (mean
          [off_mean] cycles) with no arrivals — same average offered
          load, bursty short-term intensity. *)

type mix = {
  mix_file : int;  (** VFS/MFS/bdev file round trip on a Zipf-hot path. *)
  mix_ds : int;    (** DS publish + retrieve on a Zipf-hot key. *)
  mix_pipe : int;  (** Private pipe round trip through VFS. *)
  mix_mem : int;   (** VM brk query + sbrk grow. *)
  mix_exec : int;  (** fork + exec /bin/true + waitpid through PM/VM/VFS. *)
}
(** Relative service-mix weights (need not sum to anything). *)

val default_mix : mix
(** [{file 4; ds 3; pipe 2; mem 2; exec 1}] — IPC-dense, every core
    server sees traffic. *)

type spec = {
  l_seed : int;
  l_requests : int;  (** Total arrivals to inject. *)
  l_rate : int;      (** Offered load, requests per simulated second
                         (at the 2.3 GHz scaled clock). *)
  l_arrival : arrival;
  l_mix : mix;
  l_keys : int;      (** Popularity universe (distinct files/keys). *)
  l_zipf : float;    (** Zipf skew exponent [s]; 0 = uniform. *)
}

val default_spec : spec
(** Seed 42, 200 requests at 20k req/s, Poisson, {!default_mix},
    64 keys, skew 1.1. *)

(** {1 Distributions} (exposed for tests) *)

val cycles_per_second : int
(** Virtual cycles per simulated second (2.3 GHz scaled clock, as in
    [Costs.scaled_ghz]). *)

val zipf_cdf : n:int -> s:float -> float array
(** Unnormalized cumulative Zipf weights: entry [i] is
    [sum_{r<=i+1} 1/r^s]. *)

val zipf_pick : Osiris_util.Rng.t -> float array -> int
(** Draw a 0-based rank from the cumulative weights. *)

val arrivals : spec -> int array
(** The request arrival instants (virtual cycles, nondecreasing),
    fully determined by the spec. *)

(** {1 Driving a kernel} *)

type request = {
  rq_idx : int;
  rq_arrival : int;     (** Nominal arrival instant. *)
  rq_class : string;    (** ["file"|"ds"|"pipe"|"mem"|"exec"]. *)
  rq_ep : Endpoint.t;   (** Endpoint of the injected process. *)
}

val inject : Kernel.t -> spec -> request array
(** Spawn the placeholder root (PM's pre-registered init slot must be
    occupied before any [Adopt]), then one process per request at its
    arrival instant, and arm drain-halt.  Call on a built (booted)
    kernel before [Kernel.run]. *)

type outcome = {
  o_spec_rate : int;       (** Offered rate echoed from the spec. *)
  o_requests : int;        (** Requests injected. *)
  o_completed : int;       (** Requests with a recorded exit. *)
  o_ok : int;              (** ... that exited 0 (goodput numerator). *)
  o_shed : int;            (** ... shed at connect (PM table full). *)
  o_makespan : int;        (** Last recorded exit instant. *)
  o_latencies : int array; (** Sorted exit−arrival of the ok requests. *)
  o_lat_pairs : (int * int) list;
      (** [(completion, latency)] of ok requests, any order — the
          shape [Timeline.build ~latencies] consumes. *)
}

val collect : Kernel.t -> request array -> outcome
(** Read the exit records after the run has halted. *)

val goodput_rps : outcome -> int
(** Completed-ok requests per simulated second over the makespan
    (integer arithmetic — deterministic artifacts). *)

val percentile : int array -> num:int -> den:int -> int
(** Nearest-rank percentile of a sorted array ([num]/[den] in (0,1]]:
    p99.9 is [~num:999 ~den:1000]); 0 on empty input. *)
