(** Deterministic random-workload generator.

    Generates syscall-level user programs from a seed: file round trips,
    directory churn, key-value traffic, pipes, process trees, execs.
    Used for stress testing (the [osiris_cli stress] command) and for
    the differential properties in the test suite (identical observable
    behaviour across recovery policies and architectures).

    Programs are self-contained: they clean up what they create, never
    block indefinitely, and exit 0 when every operation behaved as
    expected (nonzero otherwise). For a fixed seed the generated
    program — and therefore the whole simulated run — is identical
    across processes and machines. *)

type spec = {
  g_actions : int;       (** Top-level actions (default 12). *)
  g_fork_depth : int;    (** Maximum process-tree nesting (default 2). *)
}

val default_spec : spec

val generate : ?spec:spec -> seed:int -> unit -> unit Prog.t
(** A runnable workload-root program. *)

val describe : ?spec:spec -> seed:int -> unit -> string list
(** Human-readable action list of the same generation (for logs). *)

val quickstart : unit Prog.t
(** The fixed README quickstart workload (file round trip, fork/exec,
    data store; exits 0 when all behaved). [osiris trace] and the
    observability tests run it so traces in the docs are
    reproducible. *)
