open Prog.Syntax
module Rng = Osiris_util.Rng

type arrival = Poisson | Bursty of { on_mean : int; off_mean : int }

type mix = {
  mix_file : int;
  mix_ds : int;
  mix_pipe : int;
  mix_mem : int;
  mix_exec : int;
}

let default_mix =
  { mix_file = 4; mix_ds = 3; mix_pipe = 2; mix_mem = 2; mix_exec = 1 }

type spec = {
  l_seed : int;
  l_requests : int;
  l_rate : int;
  l_arrival : arrival;
  l_mix : mix;
  l_keys : int;
  l_zipf : float;
}

let default_spec =
  { l_seed = 42;
    l_requests = 200;
    l_rate = 20_000;
    l_arrival = Poisson;
    l_mix = default_mix;
    l_keys = 64;
    l_zipf = 1.1 }

(* Same scaled clock as Costs.scaled_ghz (2.3 GHz). *)
let cycles_per_second = 2_300_000_000

(* ---------------- distributions -------------------------------- *)

let zipf_cdf ~n ~s =
  let a = Array.make (max n 1) 0.0 in
  let acc = ref 0.0 in
  for i = 0 to max n 1 - 1 do
    acc := !acc +. (1.0 /. (float_of_int (i + 1) ** s));
    a.(i) <- !acc
  done;
  a

let zipf_pick rng cdf =
  let n = Array.length cdf in
  let u = Rng.float rng cdf.(n - 1) in
  (* first index with cdf.(i) > u *)
  let rec go lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if cdf.(mid) > u then go lo mid else go (mid + 1) hi
    end
  in
  go 0 (n - 1)

(* Exponential draw with the given mean (cycles), >= 1. *)
let exp_draw rng mean =
  let u = Rng.float rng 1.0 in
  1 + int_of_float (-.mean *. log (1.0 -. u))

let arrivals spec =
  let rng = Rng.create spec.l_seed in
  let gap_mean = float_of_int cycles_per_second /. float_of_int spec.l_rate in
  match spec.l_arrival with
  | Poisson ->
    let t = ref 0 in
    Array.init spec.l_requests (fun _ ->
        t := !t + exp_draw rng gap_mean;
        !t)
  | Bursty { on_mean; off_mean } ->
    (* Arrivals only during ON phases, at the duty-compensated rate,
       so the long-run offered load still averages [l_rate]. *)
    let duty =
      float_of_int on_mean /. float_of_int (on_mean + off_mean)
    in
    let intra = gap_mean *. duty in
    let t = ref 0 in
    let on_end = ref (exp_draw rng (float_of_int on_mean)) in
    Array.init spec.l_requests (fun _ ->
        t := !t + exp_draw rng intra;
        while !t > !on_end do
          let off = exp_draw rng (float_of_int off_mean) in
          let next_on = exp_draw rng (float_of_int on_mean) in
          t := !t + off;
          on_end := !on_end + off + next_on
        done;
        !t)

(* ---------------- request programs ----------------------------- *)

(* Exit codes: 0 ok; 75 shed at connect (EX_TEMPFAIL); 1-5 per-class
   service failure. *)
let shed_code = 75

let with_session body =
  let* a = Syscall.adopt in
  if a < 0 then Syscall.exit shed_code
  else
    let* code = body in
    Syscall.exit code

let file_request ~key ~size =
  let path = Printf.sprintf "/tmp/ld%d" key in
  let data = String.make size 'x' in
  let* fd = Syscall.open_ path Message.creat in
  if fd < 0 then Prog.return 1
  else
    let* w = Syscall.write ~fd data in
    let* _ = Syscall.lseek ~fd ~off:0 Message.Seek_set in
    let* r = Syscall.read ~fd ~len:size in
    let* c = Syscall.close fd in
    (* Hot paths are shared: a concurrent request may interleave, so
       success is "every call succeeded", not "read back my bytes". *)
    Prog.return
      (match r with Ok _ when w >= 0 && c >= 0 -> 0 | _ -> 1)

let ds_request ~key ~value =
  let k = Printf.sprintf "ld.%d" key in
  let* p = Syscall.ds_publish ~key:k ~value in
  let* r = Syscall.ds_retrieve ~key:k in
  Prog.return (match r with Ok _ when p >= 0 -> 0 | _ -> 2)

let pipe_request ~size =
  let data = String.make size 'p' in
  let* pr = Syscall.pipe in
  match pr with
  | Error _ -> Prog.return 3
  | Ok (rfd, wfd) ->
    let* w = Syscall.write ~fd:wfd data in
    let* r = Syscall.read ~fd:rfd ~len:size in
    let* _ = Syscall.close rfd in
    let* _ = Syscall.close wfd in
    Prog.return (match r with Ok _ when w >= 0 -> 0 | _ -> 3)

let mem_request ~size =
  let* b0 = Syscall.brk_current in
  let* b1 = Syscall.sbrk size in
  Prog.return (if b1 = b0 + size then 0 else 4)

let exec_request =
  let* pid = Syscall.fork in
  if pid = 0 then
    let* _ = Syscall.exec "/bin/true" 0 in
    Syscall.exit 5
  else if pid < 0 then Prog.return 5
  else
    let* _, status = Syscall.waitpid pid in
    Prog.return (if status = 0 then 0 else 5)

(* ---------------- planning and injection ----------------------- *)

type request = {
  rq_idx : int;
  rq_arrival : int;
  rq_class : string;
  rq_ep : Endpoint.t;
}

let pick_class rng m =
  let total = m.mix_file + m.mix_ds + m.mix_pipe + m.mix_mem + m.mix_exec in
  let total = if total <= 0 then 1 else total in
  let d = Rng.int rng total in
  if d < m.mix_file then `File
  else if d < m.mix_file + m.mix_ds then `Ds
  else if d < m.mix_file + m.mix_ds + m.mix_pipe then `Pipe
  else if d < m.mix_file + m.mix_ds + m.mix_pipe + m.mix_mem then `Mem
  else `Exec

let inject k spec =
  let arr = arrivals spec in
  (* Service-mix/popularity stream: split off the arrival stream so
     adding requests does not shift arrival times. *)
  let rng = Rng.create (spec.l_seed lxor 0x10adc0de) in
  let cdf = zipf_cdf ~n:(max spec.l_keys 1) ~s:spec.l_zipf in
  (* PM pre-registers Endpoint.first_user as init at boot; the first
     spawn takes that endpoint, so occupy it with a trivial root
     before the request processes adopt themselves. *)
  let (_ : Endpoint.t) =
    Kernel.spawn_user k ~name:"init" ~prog:(Syscall.exit 0) ~parent:0
  in
  let reqs =
    Array.init spec.l_requests (fun i ->
        let cls = pick_class rng spec.l_mix in
        let key = zipf_pick rng cdf in
        let size = 8 + Rng.int rng 56 in
        let name, prog =
          match cls with
          | `File -> ("file", with_session (file_request ~key ~size))
          | `Ds -> ("ds", with_session (ds_request ~key ~value:i))
          | `Pipe -> ("pipe", with_session (pipe_request ~size))
          | `Mem -> ("mem", with_session (mem_request ~size:(size * 64)))
          | `Exec -> ("exec", with_session exec_request)
        in
        let ep =
          Kernel.spawn_user_at k ~at:arr.(i)
            ~name:(Printf.sprintf "ld%d" i) ~prog ~parent:0
        in
        { rq_idx = i; rq_arrival = arr.(i); rq_class = name; rq_ep = ep })
  in
  Kernel.set_halt_on_drain k;
  reqs

(* ---------------- collection ----------------------------------- *)

type outcome = {
  o_spec_rate : int;
  o_requests : int;
  o_completed : int;
  o_ok : int;
  o_shed : int;
  o_makespan : int;
  o_latencies : int array;
  o_lat_pairs : (int * int) list;
}

let collect k reqs =
  let completed = ref 0 and ok = ref 0 and shed = ref 0 in
  let makespan = ref 0 in
  let lats = ref [] and pairs = ref [] in
  Array.iter
    (fun rq ->
       match Kernel.user_exit k rq.rq_ep with
       | None -> ()
       | Some (status, at) ->
         incr completed;
         if at > !makespan then makespan := at;
         if status = shed_code then incr shed
         else if status = 0 then begin
           incr ok;
           let lat = at - rq.rq_arrival in
           lats := lat :: !lats;
           pairs := (at, lat) :: !pairs
         end)
    reqs;
  let latencies = Array.of_list !lats in
  Array.sort compare latencies;
  { o_spec_rate = 0;
    o_requests = Array.length reqs;
    o_completed = !completed;
    o_ok = !ok;
    o_shed = !shed;
    o_makespan = !makespan;
    o_latencies = latencies;
    o_lat_pairs = !pairs }

let goodput_rps o =
  if o.o_makespan <= 0 then 0
  else
    (* ok * cps / makespan, reassociated to dodge overflow only when
       safe: ok is small, cps ~2^31, makespan can be ~2^31 — the
       product fits 63-bit ints comfortably. *)
    o.o_ok * cycles_per_second / o.o_makespan

let percentile a ~num ~den =
  let n = Array.length a in
  if n = 0 then 0 else a.(Osiris_util.Stats.rank ~num ~den n - 1)
