(** User-side system call stubs.

    Each stub is a program fragment that sends the request to the
    responsible server and decodes the reply, mirroring a MINIX libc.
    Integer-returning calls follow the C convention: non-negative on
    success, a negative {!Errno.to_code} on failure — including
    [E_CRASH] (-999), the error-virtualization code a caller receives
    when the serving component crashed and was recovered mid-request. *)

(** {2 Process management (PM)} *)

val fork : int Prog.t
(** 0 in the child, the child's pid in the parent, negative on error. *)

val exec : string -> int -> int Prog.t
(** Replace the calling process image; does not return on success. The
    integer argument is passed to the new program (argv analogue). *)

val exit : int -> 'a Prog.t
(** Terminate with the given status; never returns, hence usable in any
    branch position. *)

val waitpid : int -> (int * int) Prog.t
(** [(pid, status)]; pid is negative on error. Pass [-1] for any child. *)

val wait : (int * int) Prog.t

val getpid : int Prog.t
val getppid : int Prog.t
val kill : pid:int -> signal:int -> int Prog.t

val signal_ignore : signal:int -> bool -> int Prog.t
(** Set or clear the caller's ignore disposition for a signal; returns
    the previous disposition (1 = was ignored). SIGKILL (9) is
    rejected with EINVAL. *)

val adopt : int Prog.t
(** Register the caller — a process the load engine spawned directly
    in the kernel — in PM's table, with VM/VFS introductions
    (primordial orphan: parent 0).  Non-negative on success; [EAGAIN]
    when the table is full (the request is shed — open-loop
    saturation), [EEXIST] if already registered. *)

(** {2 Files and pipes (VFS)} *)

val open_ : string -> Message.open_flags -> int Prog.t
val close : int -> int Prog.t
val read : fd:int -> len:int -> (string, Errno.t) result Prog.t
val write : fd:int -> string -> int Prog.t
val lseek : fd:int -> off:int -> Message.whence -> int Prog.t
val pipe : (int * int, Errno.t) result Prog.t
val dup : int -> int Prog.t
val dup2 : fd:int -> tofd:int -> int Prog.t
val readdir : string -> (string list, Errno.t) result Prog.t
val unlink : string -> int Prog.t
val mkdir : string -> int Prog.t
val rmdir : string -> int Prog.t
val rename : src:string -> dst:string -> int Prog.t
val stat : string -> (Message.stat_info, Errno.t) result Prog.t
val fstat : int -> (Message.stat_info, Errno.t) result Prog.t
val chdir : string -> int Prog.t
val sync : int Prog.t

(** {2 Memory (VM)} *)

val sbrk : int -> int Prog.t
(** Grow/shrink the break by the given delta; returns the new break. *)

val brk_current : int Prog.t
val mmap : len:int -> int Prog.t
val munmap : id:int -> int Prog.t
val vm_info : (int * int) Prog.t
(** (pages_used, pages_free). *)

(** {2 Data store (DS)} *)

val ds_publish : key:string -> value:int -> int Prog.t
val ds_retrieve : key:string -> (int, Errno.t) result Prog.t
val ds_delete : key:string -> int Prog.t
val ds_subscribe : prefix:string -> int Prog.t

(** {2 Recovery server (RS)} *)

val rs_status : (int * int * int, Errno.t) result Prog.t
(** (restarts, shutdowns, services). *)

(** {2 Misc} *)

val print : string -> unit Prog.t
(** Emit a line on the kernel log sink (the console of the simulation;
    used by the workload runners to report results). *)
