open Prog.Syntax

(* libc-level error-virtualization awareness: an E_CRASH reply means
   the serving component crashed inside an open recovery window and was
   rolled back; no state changed, so one transparent retry is safe and
   is what a well-written MINIX libc would do (cf. EINTR restart
   semantics). A second E_CRASH is surfaced to the caller. *)
let sys_call dst msg =
  let* r = Prog.call dst msg in
  match r with
  | Message.R_err Errno.E_CRASH -> Prog.call dst msg
  | other -> Prog.return other

let code_of_reply = function
  | Message.R_ok v -> v
  | Message.R_err e -> Errno.to_code e
  | _ -> Errno.to_code Errno.EIO

let fork =
  let* r = sys_call Endpoint.pm Message.Fork in
  match r with
  | Message.R_fork { child } -> Prog.return child
  | other -> Prog.return (code_of_reply other)

let exec path arg =
  let* r = sys_call Endpoint.pm (Message.Exec { path; arg }) in
  (* Only reachable on failure: success replaces this program. *)
  Prog.return (code_of_reply r)

let exit : type a. int -> a Prog.t =
  fun status ->
  (* Normally unreachable beyond the call: the kernel destroys the
     process before a reply could arrive. A reply can only mean PM
     crashed inside its recovery window while handling the exit — the
     rollback guarantees no side effects, so retrying is safe. *)
  let rec go () : a Prog.t =
    Prog.Call (Endpoint.pm, Message.Exit { status }, fun _ -> go ())
  in
  go ()

let waitpid pid =
  let* r = sys_call Endpoint.pm (Message.Waitpid { pid }) in
  match r with
  | Message.R_wait { pid; status } -> Prog.return (pid, status)
  | other -> Prog.return (code_of_reply other, 0)

let wait = waitpid (-1)

let getpid =
  let* r = sys_call Endpoint.pm Message.Getpid in
  Prog.return (code_of_reply r)

let getppid =
  let* r = sys_call Endpoint.pm Message.Getppid in
  Prog.return (code_of_reply r)

let kill ~pid ~signal =
  let* r = sys_call Endpoint.pm (Message.Kill { pid; signal }) in
  Prog.return (code_of_reply r)

let signal_ignore ~signal ignore =
  let* r = sys_call Endpoint.pm (Message.Signal_set { signal; ignore }) in
  Prog.return (code_of_reply r)

let adopt =
  let* r = sys_call Endpoint.pm Message.Adopt in
  Prog.return (code_of_reply r)

let open_ path flags =
  let* r = sys_call Endpoint.vfs (Message.Open { path; flags }) in
  Prog.return (code_of_reply r)

let close fd =
  let* r = sys_call Endpoint.vfs (Message.Close { fd }) in
  Prog.return (code_of_reply r)

let read ~fd ~len =
  let* r = sys_call Endpoint.vfs (Message.Read { fd; len }) in
  match r with
  | Message.R_read { data } -> Prog.return (Ok data)
  | Message.R_err e -> Prog.return (Error e)
  | _ -> Prog.return (Error Errno.EIO)

let write ~fd data =
  let* r = sys_call Endpoint.vfs (Message.Write { fd; data }) in
  Prog.return (code_of_reply r)

let lseek ~fd ~off whence =
  let* r = sys_call Endpoint.vfs (Message.Lseek { fd; off; whence }) in
  Prog.return (code_of_reply r)

let pipe =
  let* r = sys_call Endpoint.vfs Message.Pipe in
  match r with
  | Message.R_pipe { rfd; wfd } -> Prog.return (Ok (rfd, wfd))
  | Message.R_err e -> Prog.return (Error e)
  | _ -> Prog.return (Error Errno.EIO)

let dup fd =
  let* r = sys_call Endpoint.vfs (Message.Dup { fd }) in
  Prog.return (code_of_reply r)

let dup2 ~fd ~tofd =
  let* r = sys_call Endpoint.vfs (Message.Dup2 { fd; tofd }) in
  Prog.return (code_of_reply r)

let readdir path =
  let* r = sys_call Endpoint.vfs (Message.Readdir { path }) in
  match r with
  | Message.R_names { names } -> Prog.return (Ok names)
  | Message.R_err e -> Prog.return (Error e)
  | _ -> Prog.return (Error Errno.EIO)

let unlink path =
  let* r = sys_call Endpoint.vfs (Message.Unlink { path }) in
  Prog.return (code_of_reply r)

let mkdir path =
  let* r = sys_call Endpoint.vfs (Message.Mkdir { path }) in
  Prog.return (code_of_reply r)

let rmdir path =
  let* r = sys_call Endpoint.vfs (Message.Rmdir { path }) in
  Prog.return (code_of_reply r)

let rename ~src ~dst =
  let* r = sys_call Endpoint.vfs (Message.Rename { src; dst }) in
  Prog.return (code_of_reply r)

let stat path =
  let* r = sys_call Endpoint.vfs (Message.Stat { path }) in
  match r with
  | Message.R_stat info -> Prog.return (Ok info)
  | Message.R_err e -> Prog.return (Error e)
  | _ -> Prog.return (Error Errno.EIO)

let fstat fd =
  let* r = sys_call Endpoint.vfs (Message.Fstat { fd }) in
  match r with
  | Message.R_stat info -> Prog.return (Ok info)
  | Message.R_err e -> Prog.return (Error e)
  | _ -> Prog.return (Error Errno.EIO)

let chdir path =
  let* r = sys_call Endpoint.vfs (Message.Chdir { path }) in
  Prog.return (code_of_reply r)

let sync =
  let* r = sys_call Endpoint.vfs Message.Sync in
  Prog.return (code_of_reply r)

let sbrk delta =
  let* r = sys_call Endpoint.vm (Message.Brk { delta }) in
  match r with
  | Message.R_brk { break } -> Prog.return break
  | other -> Prog.return (code_of_reply other)

let brk_current =
  let* r = sys_call Endpoint.vm Message.Brk_query in
  match r with
  | Message.R_brk { break } -> Prog.return break
  | other -> Prog.return (code_of_reply other)

let mmap ~len =
  let* r = sys_call Endpoint.vm (Message.Mmap { len }) in
  match r with
  | Message.R_mmap { id } -> Prog.return id
  | other -> Prog.return (code_of_reply other)

let munmap ~id =
  let* r = sys_call Endpoint.vm (Message.Munmap { id }) in
  Prog.return (code_of_reply r)

let vm_info =
  let* r = sys_call Endpoint.vm Message.Vm_info in
  match r with
  | Message.R_vm_info { pages_used; pages_free } ->
    Prog.return (pages_used, pages_free)
  | other -> Prog.return (code_of_reply other, 0)

let ds_publish ~key ~value =
  let* r = sys_call Endpoint.ds (Message.Ds_publish { key; value }) in
  Prog.return (code_of_reply r)

let ds_retrieve ~key =
  let* r = sys_call Endpoint.ds (Message.Ds_retrieve { key }) in
  match r with
  | Message.R_ds_value { value } -> Prog.return (Ok value)
  | Message.R_err e -> Prog.return (Error e)
  | _ -> Prog.return (Error Errno.EIO)

let ds_delete ~key =
  let* r = sys_call Endpoint.ds (Message.Ds_delete { key }) in
  Prog.return (code_of_reply r)

let ds_subscribe ~prefix =
  let* r = sys_call Endpoint.ds (Message.Ds_subscribe { prefix }) in
  Prog.return (code_of_reply r)

let rs_status =
  let* r = sys_call Endpoint.rs Message.Rs_status in
  match r with
  | Message.R_rs_status { restarts; shutdowns; services } ->
    Prog.return (Ok (restarts, shutdowns, services))
  | Message.R_err e -> Prog.return (Error e)
  | _ -> Prog.return (Error Errno.EIO)

let print line = Prog.send Endpoint.kernel (Message.Diag { line })
