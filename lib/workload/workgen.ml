open Prog.Syntax
module Rng = Osiris_util.Rng

type spec = {
  g_actions : int;
  g_fork_depth : int;
}

let default_spec = { g_actions = 12; g_fork_depth = 2 }

type act =
  | G_file of int * string
  | G_dir of int
  | G_ds of int * int
  | G_pipe of int
  | G_sbrk of int
  | G_exec
  | G_readdir
  | G_fork of act list

let payload rng n =
  String.init n (fun _ -> Char.chr (Char.code 'a' + Rng.int rng 26))

let rec gen_act rng depth =
  match Rng.int rng (if depth > 0 then 8 else 7) with
  | 0 -> G_file (Rng.int rng 8, payload rng (1 + Rng.int rng 48))
  | 1 -> G_dir (Rng.int rng 8)
  | 2 -> G_ds (Rng.int rng 8, Rng.int rng 10_000)
  | 3 -> G_pipe (1 + Rng.int rng 200)
  | 4 -> G_sbrk (Rng.int rng 8 * 1024)
  | 5 -> G_exec
  | 6 -> G_readdir
  | _ ->
    let n = 1 + Rng.int rng 3 in
    G_fork (List.init n (fun _ -> gen_act rng (depth - 1)))

let gen_acts ?(spec = default_spec) ~seed () =
  let rng = Rng.create seed in
  List.init spec.g_actions (fun _ -> gen_act rng spec.g_fork_depth)

let rec describe_act = function
  | G_file (i, p) -> Printf.sprintf "file #%d (%dB)" i (String.length p)
  | G_dir i -> Printf.sprintf "mkdir/rmdir #%d" i
  | G_ds (k, v) -> Printf.sprintf "ds %d:=%d" k v
  | G_pipe n -> Printf.sprintf "pipe roundtrip (%dB)" n
  | G_sbrk n -> Printf.sprintf "sbrk %d" n
  | G_exec -> "fork+exec /bin/true"
  | G_readdir -> "readdir /bin"
  | G_fork acts ->
    Printf.sprintf "fork{%s}" (String.concat "; " (List.map describe_act acts))

(* Compile an action; [bad] collects the first unexpected result code. *)
let rec run_act act =
  match act with
  | G_file (i, data) ->
    let path = Printf.sprintf "/tmp/wg%d" i in
    let* fd = Syscall.open_ path Message.creat in
    if fd < 0 then Prog.return 1
    else
      let* w = Syscall.write ~fd data in
      let* _ = Syscall.lseek ~fd ~off:0 Message.Seek_set in
      let* r = Syscall.read ~fd ~len:(String.length data) in
      let* _ = Syscall.close fd in
      let* _ = Syscall.unlink path in
      Prog.return
        (match r with
         | Ok s when s = data && w = String.length data -> 0
         | _ -> 2)
  | G_dir i ->
    let path = Printf.sprintf "/tmp/wgd%d" i in
    let* a = Syscall.mkdir path in
    let* b = Syscall.rmdir path in
    (* EEXIST is possible when a concurrent child races the same id. *)
    Prog.return
      (if (a >= 0 || a = Errno.to_code Errno.EEXIST) && b <= 0 then 0 else 3)
  | G_ds (k, v) ->
    let key = Printf.sprintf "wg.%d" k in
    let* p = Syscall.ds_publish ~key ~value:v in
    let* r = Syscall.ds_retrieve ~key in
    Prog.return
      (match r with
       | Ok _ when p >= 0 -> 0
       | _ -> 4)
  | G_pipe n ->
    let data = String.make n 'w' in
    let* p = Syscall.pipe in
    (match p with
     | Error _ -> Prog.return 5
     | Ok (rfd, wfd) ->
       let* _ = Syscall.write ~fd:wfd data in
       let rec drain got =
         if got >= n then Prog.return 0
         else
           let* r = Syscall.read ~fd:rfd ~len:(n - got) in
           match r with
           | Ok "" -> Prog.return 6
           | Ok s -> drain (got + String.length s)
           | Error _ -> Prog.return 7
       in
       let* code = drain 0 in
       let* _ = Syscall.close rfd in
       let* _ = Syscall.close wfd in
       Prog.return code)
  | G_sbrk n ->
    let* b0 = Syscall.brk_current in
    let* b1 = Syscall.sbrk n in
    Prog.return (if b1 = b0 + n then 0 else 8)
  | G_exec ->
    let* pid = Syscall.fork in
    if pid = 0 then
      let* _ = Syscall.exec "/bin/true" 0 in
      Syscall.exit 9
    else if pid < 0 then Prog.return 9
    else
      let* _, status = Syscall.waitpid pid in
      Prog.return (if status = 0 then 0 else 10)
  | G_readdir ->
    let* r = Syscall.readdir "/bin" in
    Prog.return (match r with Ok (_ :: _) -> 0 | _ -> 11)
  | G_fork acts ->
    let* pid = Syscall.fork in
    if pid = 0 then
      let* code = run_all acts in
      Syscall.exit code
    else if pid < 0 then Prog.return 12
    else
      let* _, status = Syscall.waitpid pid in
      Prog.return status

and run_all acts =
  let rec go code = function
    | [] -> Prog.return code
    | act :: rest ->
      let* c = run_act act in
      go (if code <> 0 then code else c) rest
  in
  go 0 acts

let generate ?spec ~seed () =
  let acts = gen_acts ?spec ~seed () in
  let* code = run_all acts in
  Syscall.exit code

let describe ?spec ~seed () = List.map describe_act (gen_acts ?spec ~seed ())

(* The README quickstart program as a reusable workload root: a file
   round trip through VFS/MFS/bdev, a fork/exec/wait through PM and VM,
   and a DS publish/retrieve — every core server sees traffic. *)
let quickstart =
  let* fd = Syscall.open_ "/tmp/greeting" Message.creat in
  let* _ = Syscall.write ~fd "hello from userland" in
  let* _ = Syscall.lseek ~fd ~off:0 Message.Seek_set in
  let* contents = Syscall.read ~fd ~len:64 in
  let* _ = Syscall.close fd in
  let* pid = Syscall.fork in
  if pid = 0 then
    let* _ = Syscall.exec "/bin/sh" 0 in
    Syscall.exit 9
  else if pid < 0 then Syscall.exit 1
  else
    let* _, status = Syscall.waitpid pid in
    let* p = Syscall.ds_publish ~key:"example.answer" ~value:42 in
    let* v = Syscall.ds_retrieve ~key:"example.answer" in
    Syscall.exit
      (match contents, v with
       | Ok "hello from userland", Ok 42 when status = 0 && p >= 0 -> 0
       | _ -> 1)
