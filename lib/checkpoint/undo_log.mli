(** Per-component undo log — the paper's incremental in-memory
    checkpoint (Vogt et al., DSN 2015, as used by OSIRIS Section IV-C).

    Entries live in a single growable flat arena (packed payload bytes)
    plus parallel offset/length int arrays: {!record} is a bounds check
    and a blit straight out of the image, with zero per-entry heap
    allocation once the arena has grown to the window's working size.
    Rolling back replays entries newest-first, restoring the image to
    its state at the last {!clear} (the checkpoint taken at the top of
    the request-processing loop).

    With [coalesce] enabled, a small open-addressing offset table elides
    repeated stores to an already-logged range within one window:
    rollback only needs the *oldest* value per location, so first-write
    -wins is correctness-preserving and shrinks write-hot logs.

    This module is part of the Reliable Computing Base: it is trusted,
    never fault-injected, and its writes bypass instrumentation.

    {2 Counter lifetimes}

    Per-window (reset by {!clear}, and therefore by {!rollback}, which
    ends with a clear): {!entries}, {!bytes_used}.

    Lifetime (monotonic; survive {!clear} and {!rollback} alike):
    {!peak_bytes}, {!total_records}, {!coalesced_stores},
    {!rollback_bytes}. In particular [peak_bytes] is the high-water
    mark over the whole run — the Table VI metric — and is deliberately
    *not* reset when a window closes or rolls back. *)

type t

val create : ?coalesce:bool -> unit -> t
(** [coalesce] (default false) enables first-write-wins elision of
    repeated stores to an already-covered offset within one window. *)

val record : t -> image:Memimage.t -> offset:int -> len:int -> bool
(** Log the current contents of [image] at [offset, offset+len) —
    called from the image write hook *before* the store lands, while
    the recovery window is open (or unconditionally in the unoptimized
    instrumentation mode). Returns [false] when the store was elided by
    coalescing (an earlier entry already covers the range), [true] when
    an entry was appended. Steady-state appends perform no heap
    allocation. *)

val entries : t -> int
(** Entries currently in the log (per-window). *)

val bytes_used : t -> int
(** Live log size: sum of entry payloads plus per-entry header, the
    metric reported in Table VI (per-window). *)

val peak_bytes : t -> int
(** High-water mark of {!bytes_used} since creation (lifetime). *)

val total_records : t -> int
(** Lifetime number of appended entries (survives {!clear}). Used to
    measure instrumentation overhead. *)

val coalesced_stores : t -> int
(** Lifetime number of stores elided by write coalescing. *)

val rollback_bytes : t -> int
(** Lifetime payload bytes blitted back into images by {!rollback}. *)

val rollback : t -> Memimage.t -> unit
(** Undo all logged writes, newest first, then clear the log. The undo
    blits bypass the image's write hook, so the rollback itself is
    never re-logged (the hook stays installed throughout). *)

val clear : t -> unit
(** Drop all entries and reset the coalescing table — a new checkpoint
    was taken, or the window closed and the log is discarded. Arena
    capacity is retained, keeping subsequent windows allocation-free.
    Lifetime counters are unaffected. *)
