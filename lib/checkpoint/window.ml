type instrumentation = Always | When_open | Never | Snapshot

type t = {
  mode : instrumentation;
  img : Memimage.t;
  undo : Undo_log.t;
  mutable snap : bytes option;
  mutable window_open : bool;
  mutable opens : int;
  mutable policy_closes : int;
  mutable skipped : int;
  mutable deduped : int;
}

let log_store t ~offset ~len =
  (* First-write-wins coalescing lives inside the log itself (an
     open-addressing offset table): rollback only needs the oldest
     value at each location, so later stores to a logged range are
     elided there and merely counted here. *)
  if not (Undo_log.record t.undo ~image:t.img ~offset ~len) then
    t.deduped <- t.deduped + 1

let hook t ~offset ~len =
  match t.mode with
  | Never | Snapshot -> t.skipped <- t.skipped + 1
  | Always -> log_store t ~offset ~len
  | When_open ->
    if t.window_open then log_store t ~offset ~len
    else t.skipped <- t.skipped + 1

let reinstall_hook t = Memimage.set_write_hook t.img (Some (hook t))

let create ?(dedup = false) mode img =
  let t =
    { mode;
      img;
      undo = Undo_log.create ~coalesce:dedup ();
      snap = None;
      window_open = false;
      opens = 0;
      policy_closes = 0;
      skipped = 0;
      deduped = 0 }
  in
  reinstall_hook t;
  t

let image t = t.img
let log t = t.undo

let is_open t = t.window_open

let would_log t =
  match t.mode with
  | Never | Snapshot -> false
  | Always -> true
  | When_open -> t.window_open

let instrumentation t = t.mode

let open_window t =
  Undo_log.clear t.undo;
  if t.mode = Snapshot then t.snap <- Some (Memimage.snapshot t.img);
  t.window_open <- true;
  t.opens <- t.opens + 1

let close_window t =
  if t.window_open then begin
    t.window_open <- false;
    t.snap <- None;
    Undo_log.clear t.undo
  end

let rollback t =
  if not t.window_open then
    invalid_arg "Window.rollback: window closed — unsafe recovery refused";
  (match t.mode, t.snap with
   | Snapshot, Some snap -> Memimage.restore t.img snap
   | Snapshot, None -> invalid_arg "Window.rollback: snapshot missing"
   | _ ->
     (* Undo_log.rollback bypasses the hook, which stays installed. *)
     Undo_log.rollback t.undo t.img);
  t.snap <- None;
  t.window_open <- false

let opens t = t.opens

let closes_by_policy t = t.policy_closes

let note_policy_close t = t.policy_closes <- t.policy_closes + 1

let logged_stores t = Undo_log.total_records t.undo

let skipped_stores t = t.skipped

let deduped_stores t = t.deduped
