(** Recovery-window management (OSIRIS Sections III-B, IV-B, IV-D).

    A window opens when a server receives a request (a checkpoint is
    taken by clearing the undo log — the image as it stands *is* the
    checkpoint, the log describes how to get back to it). The window
    closes at the first interaction the active recovery policy forbids,
    after which component-local rollback can no longer be proven
    globally consistent.

    Instrumentation modes reproduce the paper's optimization study
    (Table V):
    - [Always]: every store is logged, window open or not — the
      "without optimization" configuration;
    - [When_open]: stores are logged only inside the window — the
      function-cloning optimization;
    - [Never]: no logging (the stateless / naive baseline policies,
      and the uninstrumented baseline system). *)

type instrumentation =
  | Always
  | When_open
  | Never
  | Snapshot
      (** Full-copy checkpointing: no per-store logging at all; opening
          a window copies the whole image, rolling back restores it.
          The alternative design the paper's undo log is traded against
          (Section IV-C: "favoring a simple undo log organization over
          more sophisticated memory shadowing schemes"). *)

type t

val create : ?dedup:bool -> instrumentation -> Memimage.t -> t
(** Attach to [image]: installs the write hook implementing the chosen
    instrumentation mode. The window starts closed.

    [dedup] (default false) enables first-write-wins write coalescing
    inside the undo log (see {!Undo_log.create}): a second store to a
    range already covered in this window is not logged again. Rollback
    needs only the *oldest* value per location, so this is
    correctness-preserving and shrinks logs on write-hot state (one of
    the representation trade-offs of the DSN'15 checkpointing
    study). *)

val image : t -> Memimage.t
val log : t -> Undo_log.t

val is_open : t -> bool

val would_log : t -> bool
(** Whether a store executed now would be appended to the undo log —
    used by the kernel to charge the logging cost exactly when the
    instrumentation pays it. *)

val instrumentation : t -> instrumentation

val open_window : t -> unit
(** Take a checkpoint (clear the log) and open the window. *)

val close_window : t -> unit
(** Close the window and discard the now-useless log, as the system
    will never roll back past a closed window. No-op if closed. *)

val rollback : t -> unit
(** Restore the image to the last checkpoint (undo-log replay, or the
    snapshot in [Snapshot] mode) and close the window. Caller must have
    verified {!is_open}; raises [Invalid_argument] otherwise (rolling
    back a closed window is exactly the unsafe recovery OSIRIS is
    designed to refuse). *)

val reinstall_hook : t -> unit
(** Re-attach the write hook after an operation that suspended it
    (rollback, state transfer to a clone). *)

(** {2 Accounting for Table I and Table V} *)

val opens : t -> int
(** Number of windows opened (= checkpoints taken). *)

val closes_by_policy : t -> int
(** Windows closed early by a policy-forbidden interaction, as opposed
    to closing at the reply. *)

val note_policy_close : t -> unit
(** Record that the imminent {!close_window} is policy-induced. *)

val logged_stores : t -> int
(** Stores that went through the undo log (lifetime). *)

val skipped_stores : t -> int
(** Stores executed with logging suppressed — the savings from the
    [When_open] optimization. *)

val deduped_stores : t -> int
(** Stores elided by first-write-wins write coalescing (lifetime). *)
