(* Per-entry header accounted at 16 bytes: offset word + length word,
   approximating the C implementation's entry layout. *)
let entry_header_bytes = 16

(* Unchecked unaligned 64-bit moves (the primitives behind
   [Bytes.get_int64_ne]); [record]/[rollback] bounds-check the whole
   range once, so the per-word checks would be pure overhead. *)
external unsafe_get_i64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external unsafe_set_i64 : Bytes.t -> int -> int64 -> unit
  = "%caml_bytes_set64u"

(* Entry payloads live packed in one growable arena; entry i's payload
   starts at the prefix sum of lens.(0..i-1). Rollback walks the arrays
   backwards, so the start positions never need to be stored.

   The hot path is deliberately flat: [record] performs its own bounds
   checks once, copies the old value with unsafe word/byte moves (no
   out-of-line blit call, no allocation), and defers the bytes/peak/
   lifetime accounting to [clear] — within a window [bytes_used] grows
   monotonically, so the high-water mark is simply its value when the
   window ends. *)
type t = {
  mutable arena : Bytes.t;
  mutable offsets : int array;
  mutable lens : int array;
  mutable n : int;                (* live entries *)
  mutable used : int;             (* arena bytes used *)
  mutable peak : int;             (* lifetime high-water of bytes_used *)
  mutable lifetime : int;         (* appended entries folded in by clear *)
  mutable coalesced : int;        (* lifetime records elided *)
  mutable rolled_back : int;      (* lifetime payload bytes undone *)
  coalesce : bool;
  (* Open-addressing offset -> entry-index table for write coalescing.
     keys.(s) = -1 marks an empty slot; capacity is a power of two. *)
  mutable keys : int array;
  mutable vals : int array;
  mutable tbl_count : int;
}

let initial_entries = 256
let initial_arena = 4096
let initial_slots = 512

let create ?(coalesce = false) () =
  { arena = Bytes.create initial_arena;
    offsets = Array.make initial_entries 0;
    lens = Array.make initial_entries 0;
    n = 0;
    used = 0;
    peak = 0;
    lifetime = 0;
    coalesced = 0;
    rolled_back = 0;
    coalesce;
    keys = (if coalesce then Array.make initial_slots (-1) else [||]);
    vals = (if coalesce then Array.make initial_slots 0 else [||]);
    tbl_count = 0 }

(* ---------------- coalescing table -------------------------------- *)

let slot_of t key =
  (* Fibonacci-style mix; table capacity is a power of two. *)
  let mask = Array.length t.keys - 1 in
  let h = (key * 0x9E3779B1) land max_int in
  let i = ref (h land mask) in
  while t.keys.(!i) <> -1 && t.keys.(!i) <> key do
    i := (!i + 1) land mask
  done;
  !i

let grow_table t =
  let old_keys = t.keys and old_vals = t.vals in
  t.keys <- Array.make (2 * Array.length old_keys) (-1);
  t.vals <- Array.make (2 * Array.length old_vals) 0;
  Array.iteri
    (fun i key ->
       if key <> -1 then begin
         let s = slot_of t key in
         t.keys.(s) <- key;
         t.vals.(s) <- old_vals.(i)
       end)
    old_keys

(* ---------------- arena ------------------------------------------- *)

let grow_entries t =
  let cap = 2 * Array.length t.offsets in
  let o = Array.make cap 0 and l = Array.make cap 0 in
  Array.blit t.offsets 0 o 0 t.n;
  Array.blit t.lens 0 l 0 t.n;
  t.offsets <- o;
  t.lens <- l

let grow_arena t len =
  let cap = ref (2 * Bytes.length t.arena) in
  while t.used + len > !cap do
    cap := 2 * !cap
  done;
  let a = Bytes.create !cap in
  Bytes.blit t.arena 0 a 0 t.used;
  t.arena <- a

(* Copy the range out of the image into the arena at [t.used] and push
   the (offset, len) entry. Caller has validated offset/len against the
   image; capacity checks and arena bounds are handled here. *)
let append t data ~offset ~len =
  if t.n = Array.length t.offsets then grow_entries t;
  let used = t.used in
  if used + len > Bytes.length t.arena then grow_arena t len;
  if len = 8 then
    (* The dominant case: one word. get/set_int64 compile to a single
       unboxed load/store pair here. *)
    unsafe_set_i64 t.arena used (unsafe_get_i64 data offset)
  else if len <= 16 then
    for k = 0 to len - 1 do
      Bytes.unsafe_set t.arena (used + k) (Bytes.unsafe_get data (offset + k))
    done
  else Bytes.blit data offset t.arena used len;
  Array.unsafe_set t.offsets t.n offset;
  Array.unsafe_set t.lens t.n len;
  t.n <- t.n + 1;
  t.used <- used + len

let record t ~image ~offset ~len =
  if len <= 0 then true
  else begin
    let data = Memimage.raw_bytes image in
    if offset < 0 || offset > Bytes.length data - len then
      invalid_arg "Undo_log.record: range outside image";
    if not t.coalesce then begin
      (* [append], inlined by hand: this branch is the per-store cost of
         the whole instrumentation scheme, and the classic compiler does
         not inline across the call. *)
      if t.n = Array.length t.offsets then grow_entries t;
      let used = t.used in
      if used + len > Bytes.length t.arena then grow_arena t len;
      if len = 8 then
        unsafe_set_i64 t.arena used (unsafe_get_i64 data offset)
      else if len <= 16 then
        for k = 0 to len - 1 do
          Bytes.unsafe_set t.arena (used + k)
            (Bytes.unsafe_get data (offset + k))
        done
      else Bytes.blit data offset t.arena used len;
      Array.unsafe_set t.offsets t.n offset;
      Array.unsafe_set t.lens t.n len;
      t.n <- t.n + 1;
      t.used <- used + len;
      true
    end
    else begin
      let s = slot_of t offset in
      if t.keys.(s) = -1 then begin
        (* First store to this offset in the window: log it. *)
        let idx = t.n in
        append t data ~offset ~len;
        t.keys.(s) <- offset;
        t.vals.(s) <- idx;
        t.tbl_count <- t.tbl_count + 1;
        if 2 * t.tbl_count > Array.length t.keys then grow_table t;
        true
      end
      else begin
        let prev = t.vals.(s) in
        if t.lens.(prev) >= len then begin
          (* Fully covered by an earlier entry: rollback already restores
             the oldest value here, so this store need not be logged. *)
          t.coalesced <- t.coalesced + 1;
          false
        end
        else begin
          (* Wider than what was logged: log the full range. Newest-first
             replay applies this entry before the narrower older one, so
             the tail bytes come from here and the head from the oldest
             entry — exactly the pre-window contents. *)
          let idx = t.n in
          append t data ~offset ~len;
          t.vals.(s) <- idx;
          true
        end
      end
    end
  end

let entries t = t.n

let bytes_used t = t.used + (t.n * entry_header_bytes)

let peak_bytes t =
  let live = bytes_used t in
  if live > t.peak then live else t.peak

let total_records t = t.lifetime + t.n

let coalesced_stores t = t.coalesced

let rollback_bytes t = t.rolled_back

let clear t =
  (* Within a window [bytes_used] only grows, so its value now is the
     window's high-water mark; fold it (and the entry count) into the
     lifetime counters before dropping the entries. *)
  let live = t.used + (t.n * entry_header_bytes) in
  if live > t.peak then t.peak <- live;
  t.lifetime <- t.lifetime + t.n;
  t.n <- 0;
  t.used <- 0;
  if t.coalesce && t.tbl_count > 0 then begin
    Array.fill t.keys 0 (Array.length t.keys) (-1);
    t.tbl_count <- 0
  end

let rollback t image =
  (* Newest-first: walk the entry arrays backwards, blitting payloads
     straight from the arena. The raw writes bypass the write hook, so
     undoing cannot generate fresh undo entries; dirty granules are
     still marked, keeping dirty-region restarts sound. *)
  let data = Memimage.raw_bytes image in
  let size = Bytes.length data in
  let pos = ref t.used in
  for i = t.n - 1 downto 0 do
    let len = Array.unsafe_get t.lens i in
    let off = Array.unsafe_get t.offsets i in
    let p = !pos - len in
    pos := p;
    if off < 0 || off > size - len then
      invalid_arg "Undo_log.rollback: entry outside image";
    Memimage.mark_dirty image ~off ~len;
    if len = 8 then
      unsafe_set_i64 data off (unsafe_get_i64 t.arena p)
    else if len <= 16 then
      for k = 0 to len - 1 do
        Bytes.unsafe_set data (off + k) (Bytes.unsafe_get t.arena (p + k))
      done
    else Bytes.blit t.arena p data off len
  done;
  t.rolled_back <- t.rolled_back + t.used;
  clear t
