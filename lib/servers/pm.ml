open Prog.Syntax

let max_procs = 64
let name_len = 16

let st_free = 0
let st_alive = 1
let st_zombie = 2

(* Table VI: PM base usage 628 kB. *)
let image_kb = 628

(* Size passed to VM on exec; our simulated binaries are small. *)
let exec_image_bytes = 65536

type t = {
  image : Memimage.t;
  procs : Layout.Table.t;
  f_state : Layout.int_field;
  f_ep : Layout.int_field;
  f_parent : Layout.int_field;
  f_status : Layout.int_field;
  f_wait_for : Layout.int_field;  (* 0 none, -1 any child, >0 that pid *)
  f_ignmask : Layout.int_field;   (* bit s set = signal s ignored *)
  f_name : Layout.str_field;
  c_forks : Layout.Cell.t;
  c_execs : Layout.Cell.t;
  c_exits : Layout.Cell.t;
}

let create () =
  let image = Memimage.create ~name:"pm" ~size:(image_kb * 1024) in
  let spec = Layout.spec () in
  let f_state = Layout.int spec "state" in
  let f_ep = Layout.int spec "ep" in
  let f_parent = Layout.int spec "parent" in
  let f_status = Layout.int spec "status" in
  let f_wait_for = Layout.int spec "wait_for" in
  let f_ignmask = Layout.int spec "ignmask" in
  let f_name = Layout.str spec "name" ~len:name_len in
  Layout.seal spec;
  let procs = Layout.Table.alloc image ~spec ~rows:max_procs in
  let c_forks = Layout.Cell.alloc_int image "forks" in
  let c_execs = Layout.Cell.alloc_int image "execs" in
  let c_exits = Layout.Cell.alloc_int image "exits" in
  { image; procs; f_state; f_ep; f_parent; f_status; f_wait_for; f_ignmask;
    f_name; c_forks; c_execs; c_exits }

let find_by_ep t ?(state = st_alive) ep =
  Srvlib.scan ~rows:max_procs (fun row ->
      let* st = Prog.Mem.get_int t.procs ~row t.f_state in
      if st <> state then Prog.return false
      else
        let* e = Prog.Mem.get_int t.procs ~row t.f_ep in
        Prog.return (e = ep))

let find_free t =
  Srvlib.scan ~rows:max_procs (fun row ->
      let* st = Prog.Mem.get_int t.procs ~row t.f_state in
      Prog.return (st = st_free))

let set_row t ~row ~state ~ep ~parent ~name =
  let* () = Prog.Mem.set_int t.procs ~row t.f_state state in
  let* () = Prog.Mem.set_int t.procs ~row t.f_ep ep in
  let* () = Prog.Mem.set_int t.procs ~row t.f_parent parent in
  let* () = Prog.Mem.set_int t.procs ~row t.f_status 0 in
  let* () = Prog.Mem.set_int t.procs ~row t.f_wait_for 0 in
  let* () = Prog.Mem.set_int t.procs ~row t.f_ignmask 0 in
  Prog.Mem.set_str t.procs ~row t.f_name name

(* Deliver the exit status of [child_ep] to its parent: either wake a
   parent blocked in waitpid (deferred reply) or leave a zombie. Orphans
   (parent gone) are reaped immediately. *)
let settle_exit t ~child_row ~child_ep ~status =
  let* parent = Prog.Mem.get_int t.procs ~row:child_row t.f_parent in
  let* prow_opt =
    if parent = 0 then Prog.return None else find_by_ep t parent
  in
  match prow_opt with
  | None ->
    (* No live parent: reap immediately. *)
    Prog.Mem.set_int t.procs ~row:child_row t.f_state st_free
  | Some prow ->
    let* wait_for = Prog.Mem.get_int t.procs ~row:prow t.f_wait_for in
    if wait_for = -1 || wait_for = child_ep then
      let* () = Prog.Mem.set_int t.procs ~row:prow t.f_wait_for 0 in
      let* () = Prog.Mem.set_int t.procs ~row:child_row t.f_state st_free in
      Prog.reply parent (Message.R_wait { pid = child_ep; status })
    else begin
      let* () = Prog.Mem.set_int t.procs ~row:child_row t.f_state st_zombie in
      Prog.Mem.set_int t.procs ~row:child_row t.f_status status
    end

(* Reparent children of a dying process to "nobody" and reap any that
   were already zombies (no one can wait for them anymore). *)
let reparent_children t ~dead_ep =
  Prog.iter_range ~lo:0 ~hi:max_procs (fun row ->
      let* st = Prog.Mem.get_int t.procs ~row t.f_state in
      if st = st_free then Prog.return ()
      else
        let* parent = Prog.Mem.get_int t.procs ~row t.f_parent in
        if parent <> dead_ep then Prog.return ()
        else if st = st_zombie then
          Prog.Mem.set_int t.procs ~row t.f_state st_free
        else Prog.Mem.set_int t.procs ~row t.f_parent 0)

(* Full exit path: VM teardown, VFS teardown, kernel destruction, and
   parent notification. Used by exit(), kill() and abnormal
   termination. *)
let do_exit t ~target_ep ~row ~status =
  (* Local bookkeeping first (recoverable while the window is open),
     then the teardown calls that make the exit visible to VM/VFS. *)
  let* n = Prog.Mem.get_cell t.c_exits in
  let* () = Prog.Mem.set_cell t.c_exits (n + 1) in
  let* () = reparent_children t ~dead_ep:target_ep in
  let* () = Srvlib.diag "pm: exit" in
  (* Teardown must not leak when a peer crashes mid-call: an E_CRASH
     reply means the rolled-back peer did nothing, so retry. *)
  let* _ = Srvlib.call_retry Endpoint.vm (Message.Vm_exit { proc = target_ep }) in
  let* _ = Srvlib.call_retry Endpoint.vfs (Message.Vfs_exit { proc = target_ep }) in
  let* _ = Prog.kcall (Prog.K_kill { proc = target_ep; status }) in
  settle_exit t ~child_row:row ~child_ep:target_ep ~status

let handle t src msg =
  match msg with
  | Message.Fork ->
    let* urow = find_by_ep t src in
    let* () = Srvlib.diag "pm: fork" in
    (match urow with
     | None -> Srvlib.reply_err src Errno.ESRCH
     | Some urow ->
       let* slot = find_free t in
       (match slot with
        | None -> Srvlib.reply_err src Errno.EAGAIN
        | Some row ->
          let* kr = Prog.kcall (Prog.K_fork { parent = src }) in
          (match kr with
           | Prog.Kr_ep child ->
             let* pname = Prog.Mem.get_str t.procs ~row:urow t.f_name in
             let* () = set_row t ~row ~state:st_alive ~ep:child ~parent:src ~name:pname in
             (* POSIX: the child inherits signal dispositions. *)
             let* pmask = Prog.Mem.get_int t.procs ~row:urow t.f_ignmask in
             let* () = Prog.Mem.set_int t.procs ~row t.f_ignmask pmask in
             let* n = Prog.Mem.get_cell t.c_forks in
             let* () = Prog.Mem.set_cell t.c_forks (n + 1) in
             let* vr = Prog.call Endpoint.vm (Message.Vm_fork { parent = src; child }) in
             (match Srvlib.err_of_reply vr with
              | Some e ->
                let* () = Prog.Mem.set_int t.procs ~row t.f_state st_free in
                let* _ = Prog.kcall (Prog.K_kill { proc = child; status = 0 }) in
                Srvlib.reply_err src e
              | None ->
                let* fr = Prog.call Endpoint.vfs (Message.Vfs_fork { parent = src; child }) in
                (match Srvlib.err_of_reply fr with
                 | Some e ->
                   let* _ = Prog.call Endpoint.vm (Message.Vm_exit { proc = child }) in
                   let* () = Prog.Mem.set_int t.procs ~row t.f_state st_free in
                   let* _ = Prog.kcall (Prog.K_kill { proc = child; status = 0 }) in
                   Srvlib.reply_err src e
                 | None ->
                   let* _ = Prog.kcall (Prog.K_go child) in
                   Prog.reply src (Message.R_fork { child })))
           | _ -> Srvlib.reply_err src Errno.EAGAIN)))
  | Message.Adopt ->
    (* Open-loop load engine: a kernel-spawned request process
       introduces itself before issuing syscalls — the session-connect
       step.  Registered as a primordial orphan (parent 0) so its exit
       reaps the row immediately; a full table sheds the request with
       EAGAIN, which is what saturation looks like to an open-loop
       client. *)
    let* urow = find_by_ep t src in
    let* () = Srvlib.diag "pm: adopt" in
    (match urow with
     | Some _ -> Srvlib.reply_err src Errno.EEXIST
     | None ->
       let* slot = find_free t in
       (match slot with
        | None -> Srvlib.reply_err src Errno.EAGAIN
        | Some row ->
          let* () =
            set_row t ~row ~state:st_alive ~ep:src ~parent:0 ~name:"load"
          in
          let* vr =
            Prog.call Endpoint.vm (Message.Vm_fork { parent = 0; child = src })
          in
          (match Srvlib.err_of_reply vr with
           | Some e ->
             let* () = Prog.Mem.set_int t.procs ~row t.f_state st_free in
             Srvlib.reply_err src e
           | None ->
             let* fr =
               Prog.call Endpoint.vfs
                 (Message.Vfs_fork { parent = 0; child = src })
             in
             (match Srvlib.err_of_reply fr with
              | Some e ->
                let* _ =
                  Prog.call Endpoint.vm (Message.Vm_exit { proc = src })
                in
                let* () = Prog.Mem.set_int t.procs ~row t.f_state st_free in
                Srvlib.reply_err src e
              | None -> Srvlib.reply_ok src 0))))
  | Message.Exec { path; arg } ->
    let* urow = find_by_ep t src in
    let* () = Srvlib.diag "pm: exec" in
    (match urow with
     | None -> Srvlib.reply_err src Errno.ESRCH
     | Some row ->
       let* vr = Prog.call Endpoint.vfs (Message.Vfs_exec { proc = src; path }) in
       (match Srvlib.err_of_reply vr with
        | Some e -> Srvlib.reply_err src e
        | None ->
          let* mr =
            Prog.call Endpoint.vm (Message.Vm_exec { proc = src; size = exec_image_bytes })
          in
          (match Srvlib.err_of_reply mr with
           | Some e -> Srvlib.reply_err src e
           | None ->
             let* kr = Prog.kcall (Prog.K_exec { proc = src; path; arg }) in
             (match kr with
              | Prog.Kr_ok ->
                let base = Filename.basename path in
                let base =
                  if String.length base >= name_len then
                    String.sub base 0 (name_len - 1)
                  else base
                in
                let* () = Prog.Mem.set_str t.procs ~row t.f_name base in
                let* n = Prog.Mem.get_cell t.c_execs in
                Prog.Mem.set_cell t.c_execs (n + 1)
                (* No reply: the new program image is now running. *)
              | _ -> Srvlib.reply_err src Errno.ENOENT))))
  | Message.Exit { status } ->
    let* urow = find_by_ep t src in
    (match urow with
     | None ->
       (* Unknown caller (e.g. after stateless PM recovery lost the
          table): destroy it anyway so it does not linger. *)
       let* _ = Prog.kcall (Prog.K_kill { proc = src; status }) in
       Prog.return ()
     | Some row -> do_exit t ~target_ep:src ~row ~status)
  | Message.Waitpid { pid } ->
    let* urow = find_by_ep t src in
    (match urow with
     | None -> Srvlib.reply_err src Errno.ESRCH
     | Some urow ->
       if pid = -1 then
         let* zrow =
           Srvlib.scan ~rows:max_procs (fun row ->
               let* st = Prog.Mem.get_int t.procs ~row t.f_state in
               if st <> st_zombie then Prog.return false
               else
                 let* parent = Prog.Mem.get_int t.procs ~row t.f_parent in
                 Prog.return (parent = src))
         in
         match zrow with
         | Some row ->
           let* child = Prog.Mem.get_int t.procs ~row t.f_ep in
           let* status = Prog.Mem.get_int t.procs ~row t.f_status in
           let* () = Prog.Mem.set_int t.procs ~row t.f_state st_free in
           Prog.reply src (Message.R_wait { pid = child; status })
         | None ->
           let* arow =
             Srvlib.scan ~rows:max_procs (fun row ->
                 let* st = Prog.Mem.get_int t.procs ~row t.f_state in
                 if st <> st_alive then Prog.return false
                 else
                   let* parent = Prog.Mem.get_int t.procs ~row t.f_parent in
                   Prog.return (parent = src))
           in
           (match arow with
            | None -> Srvlib.reply_err src Errno.ECHILD
            | Some _ ->
              (* Block the caller until a child exits. *)
              Prog.Mem.set_int t.procs ~row:urow t.f_wait_for (-1))
       else
         let* crow = find_by_ep t pid in
         let* zrow = find_by_ep t ~state:st_zombie pid in
         (match crow, zrow with
          | None, None -> Srvlib.reply_err src Errno.ECHILD
          | _, Some row ->
            let* parent = Prog.Mem.get_int t.procs ~row t.f_parent in
            if parent <> src then Srvlib.reply_err src Errno.ECHILD
            else
              let* status = Prog.Mem.get_int t.procs ~row t.f_status in
              let* () = Prog.Mem.set_int t.procs ~row t.f_state st_free in
              Prog.reply src (Message.R_wait { pid; status })
          | Some row, None ->
            let* parent = Prog.Mem.get_int t.procs ~row t.f_parent in
            if parent <> src then Srvlib.reply_err src Errno.ECHILD
            else Prog.Mem.set_int t.procs ~row:urow t.f_wait_for pid))
  | Message.Getpid ->
    let* urow = find_by_ep t src in
    (match urow with
     | None -> Srvlib.reply_err src Errno.ESRCH
     | Some _ -> Srvlib.reply_ok src src)
  | Message.Getppid ->
    let* urow = find_by_ep t src in
    (match urow with
     | None -> Srvlib.reply_err src Errno.ESRCH
     | Some row ->
       let* parent = Prog.Mem.get_int t.procs ~row t.f_parent in
       Srvlib.reply_ok src parent)
  | Message.Kill { pid; signal } ->
    let* urow = find_by_ep t src in
    let* () = Srvlib.diag "pm: kill" in
    (match urow with
     | None -> Srvlib.reply_err src Errno.ESRCH
     | Some _ ->
       let* trow = find_by_ep t pid in
       (match trow with
        | None -> Srvlib.reply_err src Errno.ESRCH
        | Some row ->
          let* ignmask = Prog.Mem.get_int t.procs ~row t.f_ignmask in
          if signal <> 9 && signal >= 0 && signal < 62
             && ignmask land (1 lsl signal) <> 0
          then
            (* Target ignores this signal; delivery is a no-op.
               SIGKILL is never ignorable. *)
            Srvlib.reply_ok src 0
          else
            let status = 128 + signal in
            if pid = src then do_exit t ~target_ep:src ~row ~status
            else
              let* _ = Prog.kcall (Prog.K_kill { proc = pid; status }) in
              let* () = do_exit t ~target_ep:pid ~row ~status in
              Srvlib.reply_ok src 0))
  | Message.Signal_set { signal; ignore } ->
    let* urow = find_by_ep t src in
    (match urow with
     | None -> Srvlib.reply_err src Errno.ESRCH
     | Some row ->
       if signal = 9 || signal < 1 || signal >= 62 then
         Srvlib.reply_err src Errno.EINVAL
       else
         let* mask = Prog.Mem.get_int t.procs ~row t.f_ignmask in
         let prev = if mask land (1 lsl signal) <> 0 then 1 else 0 in
         let nmask =
           if ignore then mask lor (1 lsl signal)
           else mask land lnot (1 lsl signal)
         in
         let* () = Prog.Mem.set_int t.procs ~row t.f_ignmask nmask in
         Srvlib.reply_ok src prev)
  | Message.Ping -> Prog.reply src Message.R_pong
  | _ -> Srvlib.reply_err src Errno.ENOSYS

(* Boot: install the primordial workload root in the process table and
   make it known to VM and VFS. *)
let init t =
  let root = Endpoint.first_user in
  let* () = set_row t ~row:0 ~state:st_alive ~ep:root ~parent:0 ~name:"init" in
  let* () = Prog.Mem.set_cell t.c_forks 0 in
  let* () = Prog.Mem.set_cell t.c_execs 0 in
  let* () = Prog.Mem.set_cell t.c_exits 0 in
  let* _ = Prog.call Endpoint.vm (Message.Vm_fork { parent = 0; child = root }) in
  let* _ = Prog.call Endpoint.vfs (Message.Vfs_fork { parent = 0; child = root }) in
  Prog.return ()

let server t =
  { Kernel.srv_ep = Endpoint.pm;
    srv_name = "pm";
    srv_image = t.image;
    srv_clone_extra_kb = 316;
    srv_init = init t;
    srv_loop = Srvlib.simple_loop (handle t);
    srv_multithreaded = false }

let summary =
  let diag_out = (Endpoint.kernel, Message.Tag.T_diag) in
  let vm_fork = (Endpoint.vm, Message.Tag.T_vm_fork) in
  let vm_exec = (Endpoint.vm, Message.Tag.T_vm_exec) in
  let vm_exit = (Endpoint.vm, Message.Tag.T_vm_exit) in
  let vfs_fork = (Endpoint.vfs, Message.Tag.T_vfs_fork) in
  let vfs_exec = (Endpoint.vfs, Message.Tag.T_vfs_exec) in
  let vfs_exit = (Endpoint.vfs, Message.Tag.T_vfs_exit) in
  Summary.make Endpoint.pm
    [ Summary.handler Message.Tag.T_fork
        [ Summary.seg ~out:diag_out 70; Summary.seg 70;
          Summary.seg ~out:vm_fork 20; Summary.seg ~out:vfs_fork 5;
          Summary.seg 10 ];
      Summary.handler Message.Tag.T_exec
        [ Summary.seg ~out:diag_out 70; Summary.seg ~out:vfs_exec 2;
          Summary.seg ~out:vm_exec 5; Summary.seg 10 ];
      Summary.handler ~replies:false Message.Tag.T_exit
        [ Summary.seg ~out:diag_out 205; Summary.seg ~out:vm_exit 2;
          Summary.seg ~out:vfs_exit 5; Summary.seg 90 ];
      Summary.handler Message.Tag.T_adopt
        [ Summary.seg ~out:diag_out 70; Summary.seg 70;
          Summary.seg ~out:vm_fork 20; Summary.seg ~out:vfs_fork 5;
          Summary.seg 10 ];
      Summary.handler Message.Tag.T_waitpid [ Summary.seg 180 ];
      Summary.handler Message.Tag.T_getpid [ Summary.seg 70 ];
      Summary.handler Message.Tag.T_signal_set [ Summary.seg 75 ];
      Summary.handler Message.Tag.T_getppid [ Summary.seg 72 ];
      Summary.handler Message.Tag.T_kill
        [ Summary.seg ~out:diag_out 70; Summary.seg 70;
          Summary.seg ~out:vm_exit 5; Summary.seg ~out:vfs_exit 5;
          Summary.seg 200 ];
      Summary.handler Message.Tag.T_ping [ Summary.seg 1 ] ]
