open Prog.Syntax

let max_services = 8

(* Heartbeat period, simulated cycles. *)
let heartbeat_ticks = 1_000_000

(* Table VI: RS base usage 1,696 kB (it holds prepared clones). *)
let image_kb = 1696

type t = {
  policy_for : Endpoint.t -> Policy.t;
  budget_for : Endpoint.t -> int option;
  image : Memimage.t;
  services : Layout.Table.t;
  s_used : Layout.int_field;
  s_ep : Layout.int_field;
  s_label : Layout.str_field;
  s_restarts : Layout.int_field;
  c_restarts : Layout.Cell.t;
  c_shutdowns : Layout.Cell.t;
  c_notices : Layout.Cell.t;
  c_heartbeats : Layout.Cell.t;
}

let create ?(policies = []) ?(budgets = []) policy =
  let policy_for ep =
    match List.assoc_opt ep policies with Some p -> p | None -> policy
  in
  let budget_for ep = List.assoc_opt ep budgets in
  let image = Memimage.create ~name:"rs" ~size:(image_kb * 1024) in
  let spec = Layout.spec () in
  let s_used = Layout.int spec "used" in
  let s_ep = Layout.int spec "ep" in
  let s_label = Layout.str spec "label" ~len:16 in
  let s_restarts = Layout.int spec "restarts" in
  Layout.seal spec;
  let services = Layout.Table.alloc image ~spec ~rows:max_services in
  let c_restarts = Layout.Cell.alloc_int image "restarts" in
  let c_shutdowns = Layout.Cell.alloc_int image "shutdowns" in
  let c_notices = Layout.Cell.alloc_int image "notices" in
  let c_heartbeats = Layout.Cell.alloc_int image "heartbeats" in
  { policy_for; budget_for; image; services; s_used; s_ep; s_label;
    s_restarts; c_restarts; c_shutdowns; c_notices; c_heartbeats }

let find_service t ep =
  Srvlib.scan ~rows:max_services (fun row ->
      let* used = Prog.Mem.get_int t.services ~row t.s_used in
      if used = 0 then Prog.return false
      else
        let* e = Prog.Mem.get_int t.services ~row t.s_ep in
        Prog.return (e = ep))

let bump_restarts t ep =
  let* row = find_service t ep in
  let* () =
    match row with
    | None -> Prog.return ()
    | Some row ->
      let* n = Prog.Mem.get_int t.services ~row t.s_restarts in
      Prog.Mem.set_int t.services ~row t.s_restarts (n + 1)
  in
  let* total = Prog.Mem.get_cell t.c_restarts in
  Prog.Mem.set_cell t.c_restarts (total + 1)

(* Restart-budget enforcement. Cost discipline: compartments without a
   budget take the [None] branch, whose [Prog.return false] is a [Done]
   — binding it interprets zero operations, so unbudgeted recoveries
   execute the exact instruction stream they always did. Only budgeted
   compartments pay the service-table scan. *)
let budget_exhausted t ep =
  match t.budget_for ep with
  | None -> Prog.return false
  | Some b ->
    let* row = find_service t ep in
    (match row with
     | None -> Prog.return false
     | Some row ->
       let* n = Prog.Mem.get_int t.services ~row t.s_restarts in
       Prog.return (n >= b))

let controlled_shutdown t reason =
  let* n = Prog.Mem.get_cell t.c_shutdowns in
  let* () = Prog.Mem.set_cell t.c_shutdowns (n + 1) in
  let* _ = Prog.kcall (Prog.K_shutdown reason) in
  Prog.return ()

(* The recovery procedure. Phases: restart, rollback, reconciliation.
   Every decision is per compartment: the crashed component's own
   policy picks the recovery action, and a crash-looping compartment
   that exhausts its restart budget is taken down in a controlled
   shutdown instead of being restarted forever. *)
let recover t ep reason =
  let* () = Srvlib.diag (Printf.sprintf "rs: recovering %s (%s)"
                           (Endpoint.server_name ep) reason) in
  let* ctx = Prog.kcall (Prog.K_crash_context ep) in
  match ctx with
  | Prog.Kr_context { window_open; requester; reason = _; rlocal } ->
    let* exhausted = budget_exhausted t ep in
    if exhausted then
      controlled_shutdown t
        (Printf.sprintf "%s exhausted its restart budget"
           (Endpoint.server_name ep))
    else
    (match (t.policy_for ep).Policy.recovery with
     | Policy.No_recovery ->
       (* Unreachable: the kernel panics before notifying RS. *)
       Prog.return ()
     | Policy.Restart_fresh ->
       (* Stateless restart: pristine boot image, accumulated state and
          queued requests are lost; no error virtualization. *)
       let* _ = Prog.kcall (Prog.K_mk_clone ep) in
       let* _ = Prog.kcall (Prog.K_clear_state ep) in
       let* () = bump_restarts t ep in
       let* _ = Prog.kcall (Prog.K_go ep) in
       Prog.return ()
     | Policy.Restart_keep_state ->
       (* Naive restart: resume with the crashed state as-is. No
          consistency reasoning and no error virtualization — an
          in-flight requester is simply left waiting, like the
          best-effort restart systems this baseline stands for. *)
       ignore requester;
       let* _ = Prog.kcall (Prog.K_mk_clone ep) in
       let* () = bump_restarts t ep in
       let* _ = Prog.kcall (Prog.K_go ep) in
       Prog.return ()
     | Policy.Rollback_or_shutdown ->
       if window_open then begin
         let* _ = Prog.kcall (Prog.K_mk_clone ep) in
         let* _ = Prog.kcall (Prog.K_rollback ep) in
         let* () = bump_restarts t ep in
         let* () =
           if rlocal then
             (* A requester-local SEEP was crossed: its effects live in
                state owned by the requester, so terminating the
                requester through the normal exit path reconciles them
                (extension, paper Section VII). *)
             match requester with
             | Some req ->
               let* _ = Prog.kcall (Prog.K_kill_requester { proc = req }) in
               Prog.return ()
             | None -> Prog.return ()
           else
             match requester with
             | Some req ->
               let* _ =
                 Prog.kcall (Prog.K_reply_error { proc = req; err = Errno.E_CRASH })
               in
               Prog.return ()
             | None -> Prog.return ()
         in
         let* _ = Prog.kcall (Prog.K_go ep) in
         Prog.return ()
       end
       else
         (* The crash happened past the recovery window: rolling back
            would orphan state changes other components already saw.
            Controlled shutdown preserves consistency (Section III-C). *)
         controlled_shutdown t
           (Printf.sprintf "%s crashed outside recovery window"
              (Endpoint.server_name ep))
     | Policy.Rollback_replay ->
       if window_open then begin
         let* _ = Prog.kcall (Prog.K_mk_clone ep) in
         let* _ = Prog.kcall (Prog.K_rollback ep) in
         let* () = bump_restarts t ep in
         (* Replay reconciliation: re-deliver the crashed request
            instead of virtualizing the error. Transparent for
            transient faults; loops on persistent ones. *)
         let* _ = Prog.kcall (Prog.K_replay ep) in
         let* _ = Prog.kcall (Prog.K_go ep) in
         Prog.return ()
       end
       else
         controlled_shutdown t
           (Printf.sprintf "%s crashed outside recovery window"
              (Endpoint.server_name ep)))
  | _ ->
    (* Stale notification (component already recovered or gone). *)
    Prog.return ()

let handle t src msg =
  match msg with
  | Message.Crash_notify { ep; reason } when src = Endpoint.kernel ->
    let* n = Prog.Mem.get_cell t.c_notices in
    let* () = Prog.Mem.set_cell t.c_notices (n + 1) in
    recover t ep reason
  | Message.Crash_notify _ -> Srvlib.reply_err src Errno.EPERM
  | Message.Rs_status ->
    let* restarts = Prog.Mem.get_cell t.c_restarts in
    let* shutdowns = Prog.Mem.get_cell t.c_shutdowns in
    let* services =
      Srvlib.scan ~rows:max_services (fun row ->
          let* used = Prog.Mem.get_int t.services ~row t.s_used in
          Prog.return (used = 0))
    in
    let count = match services with Some n -> n | None -> max_services in
    Prog.reply src (Message.R_rs_status { restarts; shutdowns; services = count })
  | Message.Rs_lookup { label } ->
    let* row =
      Srvlib.scan ~rows:max_services (fun row ->
          let* used = Prog.Mem.get_int t.services ~row t.s_used in
          if used = 0 then Prog.return false
          else
            let* l = Prog.Mem.get_str t.services ~row t.s_label in
            Prog.return (String.equal l label))
    in
    (match row with
     | None -> Srvlib.reply_err src Errno.ENOENT
     | Some row ->
       let* ep = Prog.Mem.get_int t.services ~row t.s_ep in
       Srvlib.reply_ok src ep)
  | Message.Alarm ->
    (* Periodic housekeeping: account the beat, audit the service table,
       log, publish liveness to DS (asynchronously — a synchronous call
       could deadlock against a DS recovery in progress), audit again,
       and re-arm the timer. Hang *detection* is the kernel's heartbeat
       machinery; this handler is RS's bookkeeping half. *)
    let* n = Prog.Mem.get_cell t.c_heartbeats in
    let* () = Prog.Mem.set_cell t.c_heartbeats (n + 1) in
    let* live1 =
      Srvlib.scan ~rows:max_services (fun row ->
          let* used = Prog.Mem.get_int t.services ~row t.s_used in
          Prog.return (used = 0))
    in
    let count1 = match live1 with Some k -> k | None -> max_services in
    let* () = Srvlib.diag (Printf.sprintf "rs: heartbeat %d" (n + 1)) in
    let* () =
      Prog.send Endpoint.ds
        (Message.Ds_publish { key = "rs.heartbeat"; value = n + 1 })
    in
    let* live2 =
      Srvlib.scan ~rows:max_services (fun row ->
          let* used = Prog.Mem.get_int t.services ~row t.s_used in
          Prog.return (used = 0))
    in
    let count2 = match live2 with Some k -> k | None -> max_services in
    let* () = Prog.guard (count1 = count2) "rs service table stable" in
    let* _ = Prog.kcall (Prog.K_alarm { ticks = heartbeat_ticks }) in
    Prog.return ()
  | Message.Ping -> Prog.reply src Message.R_pong
  | _ -> Srvlib.reply_err src Errno.ENOSYS

let init t =
  let services =
    [ (Endpoint.pm, "pm"); (Endpoint.vfs, "vfs"); (Endpoint.vm, "vm");
      (Endpoint.ds, "ds"); (Endpoint.rs, "rs"); (Endpoint.mfs, "mfs") ]
  in
  let* () =
    Prog.iter_list
      (fun (row, (ep, label)) ->
         let* () = Prog.Mem.set_int t.services ~row t.s_used 1 in
         let* () = Prog.Mem.set_int t.services ~row t.s_ep ep in
         let* () = Prog.Mem.set_str t.services ~row t.s_label label in
         Prog.Mem.set_int t.services ~row t.s_restarts 0)
      (List.mapi (fun i s -> (i, s)) services)
  in
  let* () = Prog.Mem.set_cell t.c_restarts 0 in
  let* () = Prog.Mem.set_cell t.c_shutdowns 0 in
  let* () = Prog.Mem.set_cell t.c_notices 0 in
  let* () = Prog.Mem.set_cell t.c_heartbeats 0 in
  let* _ = Prog.kcall (Prog.K_alarm { ticks = heartbeat_ticks }) in
  Prog.return ()

let server t =
  { Kernel.srv_ep = Endpoint.rs;
    srv_name = "rs";
    srv_image = t.image;
    srv_clone_extra_kb = 3308;
    srv_init = init t;
    srv_loop = Srvlib.simple_loop (handle t);
    srv_multithreaded = false }

let summary =
  let diag_out = (Endpoint.kernel, Message.Tag.T_diag) in
  Summary.make Endpoint.rs
    [ Summary.handler ~replies:false Message.Tag.T_crash_notify
        [ Summary.seg ~out:diag_out 5;
          Summary.seg 3;  (* K_crash_context is read-only *)
          Summary.seg 60 ];
      Summary.handler Message.Tag.T_rs_status [ Summary.seg 20 ];
      Summary.handler Message.Tag.T_rs_lookup [ Summary.seg 15 ];
      Summary.handler ~replies:false Message.Tag.T_alarm
        [ Summary.seg ~out:diag_out 28;
          Summary.seg ~out:(Endpoint.ds, Message.Tag.T_ds_publish) 2;
          Summary.seg ~out:(Endpoint.kernel, Message.Tag.T_kcall) 28 ];
      Summary.handler Message.Tag.T_ping [ Summary.seg 1 ] ]
