(** RS — the Recovery Server (paper Sections III-C, IV-C).

    RS is notified by the kernel whenever a component crashes (or a hang
    is detected) and drives the three recovery phases:

    + {b restart} — a fresh clone takes over the dead component's
      endpoint with its state transferred ([K_mk_clone]);
    + {b rollback} — the clone's initialization applies the undo log,
      restoring the checkpoint taken at the top of the request loop
      ([K_rollback]) — only if the recovery window was open;
    + {b reconciliation} — per the active policy: error virtualization
      (an [E_CRASH] reply to the requester, [K_reply_error]) when the
      window was open, or a controlled shutdown ([K_shutdown]) when
      consistent recovery cannot be guaranteed.

    The baseline policies reuse the same phases: stateless restart
    resets the clone to its boot image and skips reconciliation; naive
    restart keeps the crashed state and always virtualizes the error.

    RS is itself recoverable; if RS crashes, the kernel applies the same
    protocol using a clone prepared ahead of time. *)

type t

val create :
  ?policies:(Endpoint.t * Policy.t) list ->
  ?budgets:(Endpoint.t * int) list ->
  Policy.t -> t
(** [create policy] recovers every compartment under [policy] (the old
    global behavior). [policies] overrides the recovery decision per
    compartment; [budgets] caps completed restarts per compartment —
    once a crash-looping component has been restarted that many times,
    the next crash triggers a controlled shutdown instead of another
    restart. Unbudgeted compartments execute the exact pre-budget
    instruction stream (the budget check compiles to a free bind). *)

val server : t -> Kernel.server

val summary : Summary.t
