(** Small statistics helpers used by the benchmark harness and the
    evaluation drivers. *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0. on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0. on lists shorter than 2. *)

val median : float list -> float
(** Median (average of middle two for even length); 0. on empty. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0, 100\]], nearest-rank method.
    Sorts per call; for repeated queries over one sample, sort once and
    use {!percentile_sorted}. *)

val sorted_array : float list -> float array
(** The sample as a freshly sorted (ascending) array. *)

val rank : num:int -> den:int -> int -> int
(** [rank ~num ~den n]: 1-based nearest rank of the [num/den] quantile
    ([num/den] in (0, 1]]) in a sorted sample of size [n] —
    [ceil (n * num / den)] clamped to [\[1, n\]], all in integer
    arithmetic. Every percentile surface (this module, the timeline's
    sliding windows, the load generator) indexes through this one
    definition, so the same sample quotes the same quantile
    everywhere. *)

val percentile_sorted : float array -> float -> float
(** [percentile_sorted a p]: nearest-rank percentile over an array that
    is {e already sorted ascending} ([a] as produced by
    {!sorted_array}); O(1). [p] in [\[0, 100\]]; 0. on the empty
    array. Shared by the benchmark harness and the observability
    report so both quote identical quantiles. *)

type summary = { n : int; p50 : float; p95 : float; p99 : float; max : float }

val summarize : float list -> summary
(** One sort, the quantiles every latency report needs. *)

val weighted_mean : (float * float) list -> float
(** [weighted_mean \[(v, w); ...\]] = sum(v*w) / sum(w); 0. if the total
    weight is 0. *)

val ratio : float -> float -> float
(** [ratio a b] = a /. b, 0. when [b = 0.]. *)
