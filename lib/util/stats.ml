let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.
  | xs ->
    let log_sum = List.fold_left (fun acc x -> acc +. log x) 0. xs in
    exp (log_sum /. float_of_int (List.length xs))

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.) xs) in
    sqrt var

let sorted xs = List.sort compare xs

let sorted_array xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a

(* The one nearest-rank definition: rank of the [num/den] quantile in a
   sample of [n], 1-based, all integer. ceil(n*num/den) clamped to
   [1, n]. Timeline's sliding windows and the load generator's summary
   quote quantiles through this same formula so cross-surface numbers
   agree exactly. *)
let rank ~num ~den n = max 1 (min n (((n * num) + den - 1) / den))

let percentile_sorted a p =
  let n = Array.length a in
  if n = 0 then 0.
  else a.(rank ~num:(int_of_float (Float.round (p *. 100.))) ~den:10_000 n - 1)

let median xs =
  match sorted xs with
  | [] -> 0.
  | s ->
    let n = List.length s in
    let a = Array.of_list s in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let percentile p xs = percentile_sorted (sorted_array xs) p

type summary = { n : int; p50 : float; p95 : float; p99 : float; max : float }

let summarize xs =
  let a = sorted_array xs in
  let n = Array.length a in
  { n;
    p50 = percentile_sorted a 50.;
    p95 = percentile_sorted a 95.;
    p99 = percentile_sorted a 99.;
    max = (if n = 0 then 0. else a.(n - 1)) }

let weighted_mean pairs =
  let total_w = List.fold_left (fun acc (_, w) -> acc +. w) 0. pairs in
  if total_w = 0. then 0.
  else List.fold_left (fun acc (v, w) -> acc +. (v *. w)) 0. pairs /. total_w

let ratio a b = if b = 0. then 0. else a /. b
