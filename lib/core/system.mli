(** The assembled OSIRIS system: kernel + the seven system processes +
    executable registry + populated filesystem.

    This is the library's main entry point. Typical use:
    {[
      let sys = System.build (Sysconf.uniform Policy.enhanced) in
      let halt = System.run sys ~root:Testsuite.driver in
      match halt with
      | Kernel.H_completed 0 -> ...  (* inspect System.log_lines *)
      | _ -> ...
    ]}

    [build] consumes a declarative {!Sysconf.t}: a uniform spec
    reproduces the old single-global-policy behavior byte for byte,
    while a mixed spec assigns each compartment its own recovery policy
    and optional restart budget (resolved per process at boot; see
    {!Compartment}).

    Every system is fully deterministic for a given configuration and
    seed. Build one fresh system per experiment run; systems are not
    reusable after {!run} returns. *)

type t

val build :
  ?arch:Kernel.arch ->
  ?seed:int ->
  ?max_ops:int ->
  ?max_crashes:int ->
  ?trace:bool ->
  ?costs:Costs.t ->
  ?event_hook:(Kernel.event -> unit) ->
  ?journal:Journal.writer ->
  ?profiler:Profiler.t ->
  ?telemetry:Timeseries.t ->
  ?extra_register:(Registry.t -> unit) ->
  Sysconf.t ->
  t
(** Create and boot a system: servers installed, filesystem populated
    with /bin (every registered executable), /etc/data and /tmp, boot
    snapshots taken. The prototype test suite and the Unixbench
    programs are always registered; add more via [extra_register].
    [event_hook] is installed {e before} boot, so observers (e.g. an
    [Obs_collector]) capture boot traffic; attaching after [build]
    misses it. [journal] installs a flight-recorder writer the same
    way, as the kernel's raw capture log ([Journal.capture] via
    [Kernel.set_capture] — independent of [event_hook], appending
    first when both are given), so a
    journal is a complete record from the first boot event — which is
    what makes [Replay.run] a byte-exact diff. [costs] overrides the
    architecture-derived cost table (the replay cost-perturbation
    fixture uses this; the header fingerprint then flags the
    mismatch). [profiler] is likewise attached pre-boot as the
    kernel's cycle hook, which is what makes
    [Profiler.check_conservation] hold at any later point.
    [telemetry] attaches a vtime-sampled series set pre-boot: the
    standard kernel sources ([Timeseries.add_kernel_sources]) are
    registered after any caller-added custom sources, cycle counts
    are enabled so the per-phase series carry data, and the sampler
    fires on the kernel's fixed [interval] grid for the whole run.
    @raise Invalid_argument when {!Sysconf.validate} rejects the spec. *)

val kernel : t -> Kernel.t
val registry : t -> Registry.t

val sysconf : t -> Sysconf.t
(** The spec the system was built from. *)

val policy : t -> Policy.t
(** The spec's default policy (what the pre-compartment global policy
    used to be). *)

val policy_of : t -> Endpoint.t -> Policy.t
(** Per-compartment resolution, as the kernel performed it at boot. *)

val bdev : t -> Bdev.t

val mfs : t -> Mfs.t
(** White-box handle for filesystem invariant checks in tests. *)

val vfs : t -> Vfs.t
(** White-box handle for VFS state dumps in tests. *)

val run : t -> root:unit Prog.t -> Kernel.halt
(** Spawn [root] as the primordial user process (endpoint
    [Endpoint.first_user], pre-registered in PM) and interpret until a
    halt condition. The run completes when [root] exits. *)

val log_lines : t -> string list
(** Diagnostic lines received so far, oldest first. *)

val core_servers : Endpoint.t list
(** The five recoverable servers of the evaluation: PM, VFS, VM, DS,
    RS. *)

val summaries : Summary.t list
(** Static interaction summaries of the five core servers. *)
