(** Declarative system specification: which {!Compartment} runs under
    which recovery policy.

    A [Sysconf.t] is what [System.build] consumes. It names a default
    policy (applied to user processes and any server without an
    explicit compartment) plus per-endpoint compartment overrides.
    [System.build (Sysconf.uniform Policy.enhanced)] reproduces the
    old global-policy behavior exactly — the uniform spec resolves
    every process to the same policy the global configuration did. *)

type t = {
  sc_name : string;
  sc_default : Policy.t;
  sc_compartments : Compartment.t list;
}

val uniform : ?name:string -> Policy.t -> t
(** Every compartment runs [policy]; named after the policy. *)

val make : ?name:string -> default:Policy.t -> Compartment.t list -> t
(** Mixed spec: explicit compartments, [default] for everything else.
    The derived name records the overrides
    (["enhanced+ds=stateless+vm=pessimistic/3"]).
    @raise Invalid_argument on two compartments for one endpoint. *)

val override : t -> Compartment.t -> t
(** Replace (or add) the compartment for the given endpoint. *)

val assign : t -> Endpoint.t -> Policy.t -> t
(** [override] with a default compartment wrapping just a policy. *)

val with_budget : t -> Endpoint.t -> int -> t
(** Set the restart budget for an endpoint (keeping its policy). *)

val name : t -> string
val default : t -> Policy.t
val compartments : t -> Compartment.t list

val compartment_for : t -> Endpoint.t -> Compartment.t option
val policy_for : t -> Endpoint.t -> Policy.t
val budget_for : t -> Endpoint.t -> int option

val to_assoc : t -> (Endpoint.t * Policy.t) list
(** The per-endpoint overrides as an assoc list (kernel config form). *)

val validate : t -> (unit, string list) result
(** Static sanity: budgets non-negative, [Critical] compartments have a
    real recovery action. *)

val describe : t -> string list
(** Human-readable rendering, one line per compartment. *)

val server_eps : Endpoint.t list
(** The seven system servers, boot order. *)

val policy_of_string : string -> Policy.t option
(** {!Policy.by_name} extended with on-demand graduated policies
    (["enhanced-grad3"]). *)

val parse : string -> (t, string) result
(** Spec strings for the CLI:
    ["default[,server=policy[/budget]]..."], e.g.
    ["enhanced,ds=stateless,vm=pessimistic/3"]. *)
