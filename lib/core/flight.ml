let workloads =
  [ "quickstart", "short fixed IPC exercise (the obs/trace default)";
    "suite", "the full prototype regression suite driver";
    "workgen", "seed-derived synthetic workload (Workgen.generate)" ]

let workload ~name ~seed =
  match name with
  | "quickstart" -> Ok Workgen.quickstart
  | "suite" -> Ok Testsuite.driver
  | "workgen" -> Ok (Workgen.generate ~seed ())
  | _ ->
    Error
      (Printf.sprintf "unknown workload %S (known: %s)" name
         (String.concat ", " (List.map fst workloads)))

let server_of_name = function
  | "pm" -> Some Endpoint.pm
  | "vfs" -> Some Endpoint.vfs
  | "vm" -> Some Endpoint.vm
  | "ds" -> Some Endpoint.ds
  | "rs" -> Some Endpoint.rs
  | _ -> None

let arm_crash ?(count = 1) kernel = function
  | None -> ()
  | Some ep ->
    let armed = ref count in
    Kernel.set_fault_hook kernel
      (Some
         (fun site ->
            if !armed > 0
               && site.Kernel.site_ep = ep
               && site.Kernel.site_kind = Kernel.Op_reply
               && Kernel.window_is_open kernel ep
            then begin
              decr armed;
              Some (Kernel.F_crash "injected for tracing")
            end
            else None))

let costs_of_arch = function
  | Kernel.Microkernel -> Costs.microkernel
  | Kernel.Monolithic -> Costs.monolithic

(* Everything [exec]/[record] need from a header, validated in one
   place so the two paths cannot drift. *)
let resolve header =
  match Sysconf.parse header.Journal.jh_spec with
  | Error m -> Error (Printf.sprintf "bad spec %S: %s" header.Journal.jh_spec m)
  | Ok conf ->
    (match workload ~name:header.Journal.jh_workload
             ~seed:header.Journal.jh_seed with
     | Error m -> Error m
     | Ok root ->
       if header.Journal.jh_crash = "none" then Ok (conf, root, None)
       else
         (match server_of_name header.Journal.jh_crash with
          | Some ep -> Ok (conf, root, Some ep)
          | None ->
            Error
              (Printf.sprintf "unknown crash server %S"
                 header.Journal.jh_crash)))

let make_header ?(arch = Kernel.Microkernel) ?(seed = 42) ?(spec = "enhanced")
    ?(workload = "quickstart") ?(crash = "none") ?(crash_count = 1) () =
  let header =
    { Journal.jh_version = Journal.version;
      jh_seed = seed;
      jh_arch = arch;
      jh_spec = spec;
      jh_workload = workload;
      jh_crash = crash;
      jh_crash_count = crash_count;
      jh_cost_fingerprint = Costs.fingerprint (costs_of_arch arch) }
  in
  match resolve header with Ok _ -> Ok header | Error m -> Error m

let run_resolved ?costs ?event_hook ?journal ?prepare header (conf, root, crash)
    =
  let sys =
    System.build ~arch:header.Journal.jh_arch ~seed:header.Journal.jh_seed
      ?costs ?event_hook ?journal conf
  in
  arm_crash ~count:header.Journal.jh_crash_count (System.kernel sys) crash;
  (match prepare with Some f -> f sys | None -> ());
  System.run sys ~root

type recording = {
  rec_halt : Kernel.halt;
  rec_records : int;
  rec_bytes : int;
  rec_snapshots : int;
}

(* Sidecar indexing at record time is a post-pass over the encoded
   bytes — the same [Journal.build_index] the [osiris index] rebuild
   runs, so the two paths cannot produce different sidecars. The
   summary scan is a small fraction of the run itself (the <5% gate in
   bench/query_bench.ml). *)
let write_sidecar ~path encoded =
  (* [encoded] was produced by this process moments ago, so the
     per-record CRC re-verification is skipped; [osiris index] rebuilds
     from disk keep it. *)
  match Journal.build_index ~verify_crc:false encoded with
  | Ok ix ->
    Journal.write_index_file ~path:(path ^ Journal.index_suffix) ix;
    Ok ()
  | Error m -> Error m

let record ~path ?ring ?costs ?(index = true) header =
  match resolve header with
  | Error m -> Error m
  | Ok resolved ->
    (match ring with
     | None when index ->
       (* The sidecar builder needs the encoded bytes anyway, so record
          into memory and write the file once rather than streaming to
          disk and reading it straight back. *)
       let w = Journal.to_memory header in
       let halt = run_resolved ?costs ~journal:w header resolved in
       Journal.close w;
       let encoded = Journal.contents w in
       (try
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc encoded);
          match write_sidecar ~path encoded with
          | Error m -> Error ("index: " ^ m)
          | Ok () ->
            Ok
              { rec_halt = halt;
                rec_records = Journal.records_written w;
                rec_bytes = Journal.bytes_written w;
                rec_snapshots = 0 }
        with Sys_error m -> Error m)
     | None ->
       let w = Journal.to_file ~path header in
       let halt = run_resolved ?costs ~journal:w header resolved in
       Journal.close w;
       Ok
         { rec_halt = halt;
           rec_records = Journal.records_written w;
           rec_bytes = Journal.bytes_written w;
           rec_snapshots = 0 }
     | Some capacity ->
       let t = Tracer.create ~capacity () in
       Tracer.set_snapshot_on t
         (Some (function Kernel.E_crash _ -> true | _ -> false));
       let halt =
         run_resolved ?costs ~event_hook:(Tracer.record t) header resolved
       in
       let snapshots = Tracer.snapshots_taken t in
       (* Spill the crash snapshot — or, with no crash, the final ring
          contents, so the run's tail is preserved either way. *)
       let events =
         if snapshots > 0 then Tracer.last_snapshot t else Tracer.events t
       in
       let encoded = Journal.of_events header events in
       (try
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc encoded);
          match (if index then write_sidecar ~path encoded else Ok ()) with
          | Error m -> Error ("index: " ^ m)
          | Ok () ->
            Ok
              { rec_halt = halt;
                rec_records = List.length events;
                rec_bytes = String.length encoded;
                rec_snapshots = snapshots }
        with Sys_error m -> Error m))

let exec ?prepare header ~hook =
  match resolve header with
  | Error m -> invalid_arg ("Flight.exec: " ^ m)
  | Ok resolved -> run_resolved ~event_hook:hook ?prepare header resolved

let replay_exec ?costs header =
  let table =
    match costs with
    | Some c -> c
    | None -> costs_of_arch header.Journal.jh_arch
  in
  let exec header ~hook =
    match resolve header with
    | Error m -> invalid_arg ("Flight.replay: " ^ m)
    | Ok resolved ->
      run_resolved ~costs:table ~event_hook:hook header resolved
  in
  (exec, Costs.fingerprint table)

let replay ?costs header events =
  let exec, fingerprint = replay_exec ?costs header in
  Replay.run ~exec ~cost_fingerprint:fingerprint header events

let replay_stream ?costs header ~next =
  let exec, fingerprint = replay_exec ?costs header in
  Replay.run_stream ~exec ~cost_fingerprint:fingerprint header ~next

let postmortem = Postmortem.analyze
