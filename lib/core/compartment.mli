(** A compartment: one isolated component plus its recovery contract.

    OSIRIS treats the recovery policy as a per-component choice
    (Section VII discusses composing policies per OS component); a
    compartment binds an endpoint to the policy it runs under, an
    optional restart budget RS enforces, and a criticality class used
    for spec validation and reporting. Compartments are pure
    description — {!Sysconf} aggregates them into the spec that
    [System.build] consumes, and the kernel resolves each process to
    its compartment's policy once at boot. *)

type criticality =
  | Critical      (** system is useless without it; must be recoverable *)
  | Important     (** default: recovered on crash, no special claim *)
  | Best_effort   (** losing it degrades but does not doom the system *)

val criticality_to_string : criticality -> string

type t = {
  c_name : string;
  c_ep : Endpoint.t;
  c_policy : Policy.t;
  c_budget : int option;
      (** max completed restarts before RS performs a controlled
          shutdown instead of restarting again; [None] = unlimited *)
  c_criticality : criticality;
}

val make :
  ?budget:int -> ?criticality:criticality -> ?name:string ->
  Endpoint.t -> Policy.t -> t
(** [make ep policy] — the name defaults to the endpoint's server name
    ("pm", "vfs", ...), criticality to [Important], budget to
    unlimited. *)

val name : t -> string
val ep : t -> Endpoint.t
val policy : t -> Policy.t
val budget : t -> int option
val criticality : t -> criticality

val describe : t -> string
(** One line: ["ds(ep=4): policy=stateless budget=3 criticality=best-effort"]. *)
