type t = {
  sc_name : string;
  sc_default : Policy.t;
  sc_compartments : Compartment.t list;  (* at most one per endpoint *)
}

let server_eps =
  [ Endpoint.pm; Endpoint.vfs; Endpoint.vm; Endpoint.ds; Endpoint.rs;
    Endpoint.mfs; Endpoint.bdev ]

let derive_name default compartments =
  let overrides =
    List.filter_map
      (fun c ->
         let p = Compartment.policy c and b = Compartment.budget c in
         if p.Policy.name = default.Policy.name && b = None then None
         else
           Some
             (Printf.sprintf "%s=%s%s" (Compartment.name c) p.Policy.name
                (match b with None -> "" | Some n -> "/" ^ string_of_int n)))
      compartments
  in
  match overrides with
  | [] -> default.Policy.name
  | ov -> default.Policy.name ^ "+" ^ String.concat "+" ov

let make ?name ~default compartments =
  List.iter
    (fun c ->
       let n =
         List.length
           (List.filter (fun c' -> Compartment.ep c' = Compartment.ep c)
              compartments)
       in
       if n > 1 then
         invalid_arg
           (Printf.sprintf "Sysconf.make: duplicate compartment for ep %d"
              (Compartment.ep c)))
    compartments;
  let sc_name =
    match name with Some n -> n | None -> derive_name default compartments
  in
  { sc_name; sc_default = default; sc_compartments = compartments }

let uniform ?name policy = make ?name ~default:policy []

let name t = t.sc_name
let default t = t.sc_default
let compartments t = t.sc_compartments

let compartment_for t ep =
  List.find_opt (fun c -> Compartment.ep c = ep) t.sc_compartments

let policy_for t ep =
  match compartment_for t ep with
  | Some c -> Compartment.policy c
  | None -> t.sc_default

let budget_for t ep =
  match compartment_for t ep with
  | Some c -> Compartment.budget c
  | None -> None

let override t c =
  let rest =
    List.filter (fun c' -> Compartment.ep c' <> Compartment.ep c)
      t.sc_compartments
  in
  let compartments = rest @ [ c ] in
  { t with
    sc_compartments = compartments;
    sc_name = derive_name t.sc_default compartments }

let assign t ep policy = override t (Compartment.make ep policy)

let with_budget t ep budget =
  let c =
    match compartment_for t ep with
    | Some c -> { c with Compartment.c_budget = Some budget }
    | None -> Compartment.make ~budget ep t.sc_default
  in
  override t c

let to_assoc t =
  List.map (fun c -> (Compartment.ep c, Compartment.policy c))
    t.sc_compartments

let validate t =
  let problems = ref [] in
  List.iter
    (fun c ->
       (match Compartment.budget c with
        | Some b when b < 0 ->
          problems :=
            Printf.sprintf "%s: negative restart budget %d"
              (Compartment.name c) b
            :: !problems
        | _ -> ());
       if
         Compartment.criticality c = Compartment.Critical
         && (Compartment.policy c).Policy.recovery = Policy.No_recovery
       then
         problems :=
           Printf.sprintf "%s: critical compartment with no recovery"
             (Compartment.name c)
           :: !problems)
    t.sc_compartments;
  match !problems with [] -> Ok () | ps -> Error (List.rev ps)

let describe t =
  Printf.sprintf "%s: default=%s" t.sc_name t.sc_default.Policy.name
  :: List.map (fun c -> "  " ^ Compartment.describe c) t.sc_compartments

(* Spec strings, the CLI surface: "default[,server=policy[/budget]]...",
   e.g. "enhanced,ds=stateless,vm=pessimistic/3". *)

let ep_of_server_name n =
  List.find_opt (fun ep -> Endpoint.server_name ep = n) server_eps

let policy_of_string n =
  match Policy.by_name n with
  | Some p -> Some p
  | None ->
    (* graduated policies are parameterized, constructed on demand *)
    let prefix = "enhanced-grad" in
    let pl = String.length prefix in
    if String.length n > pl && String.sub n 0 pl = prefix then
      match int_of_string_opt (String.sub n pl (String.length n - pl)) with
      | Some k when k >= 0 -> Some (Policy.enhanced_graduated k)
      | _ -> None
    else None

let parse spec =
  match String.split_on_char ',' (String.trim spec) with
  | [] | [ "" ] -> Error "empty spec"
  | first :: rest ->
    (match policy_of_string (String.trim first) with
     | None -> Error (Printf.sprintf "unknown default policy %S" first)
     | Some default ->
       let rec go acc = function
         | [] -> Ok (make ~default (List.rev acc))
         | item :: rest -> (
           let item = String.trim item in
           match String.index_opt item '=' with
           | None ->
             Error
               (Printf.sprintf "expected server=policy[/budget], got %S" item)
           | Some i ->
             let server = String.sub item 0 i in
             let rhs =
               String.sub item (i + 1) (String.length item - i - 1)
             in
             let pol, budget =
               match String.index_opt rhs '/' with
               | None -> (rhs, Ok None)
               | Some j ->
                 let b =
                   String.sub rhs (j + 1) (String.length rhs - j - 1)
                 in
                 ( String.sub rhs 0 j,
                   match int_of_string_opt b with
                   | Some n when n >= 0 -> Ok (Some n)
                   | _ ->
                     Error (Printf.sprintf "bad restart budget %S" b) )
             in
             match (ep_of_server_name server, policy_of_string pol, budget)
             with
             | None, _, _ ->
               Error (Printf.sprintf "unknown server %S" server)
             | _, None, _ ->
               Error (Printf.sprintf "unknown policy %S" pol)
             | _, _, Error e -> Error e
             | Some ep, Some p, Ok budget ->
               go (Compartment.make ?budget ep p :: acc) rest)
       in
       go [] rest)
