type t = {
  sys_kernel : Kernel.t;
  sys_registry : Registry.t;
  sys_conf : Sysconf.t;
  sys_bdev : Bdev.t;
  sys_mfs : Mfs.t;
  sys_vfs : Vfs.t;
  sys_log : string list ref;  (* newest first *)
}

let core_servers = [ Endpoint.pm; Endpoint.vfs; Endpoint.vm; Endpoint.ds; Endpoint.rs ]

let summaries = [ Pm.summary; Vfs.summary; Vm.summary; Ds.summary; Rs.summary ]

(* /etc/data: a deterministic 1 KiB text file the shell utilities chew
   on. *)
let etc_data =
  let b = Buffer.create 1024 in
  let rec fill i =
    if Buffer.length b < 1024 then begin
      Buffer.add_string b (Printf.sprintf "line %04d of the osiris corpus\n" i);
      fill (i + 1)
    end
  in
  fill 0;
  Buffer.sub b 0 1024

let build ?(arch = Kernel.Microkernel) ?(seed = 42) ?max_ops ?max_crashes
    ?(trace = false) ?costs ?event_hook ?journal ?profiler ?telemetry
    ?extra_register conf =
  (match Sysconf.validate conf with
   | Ok () -> ()
   | Error problems ->
     invalid_arg
       ("System.build: invalid sysconf: " ^ String.concat "; " problems));
  let policy = Sysconf.default conf in
  let overrides = Sysconf.to_assoc conf in
  let budgets =
    List.filter_map
      (fun c ->
         match Compartment.budget c with
         | Some b -> Some (Compartment.ep c, b)
         | None -> None)
      (Sysconf.compartments conf)
  in
  let registry = Registry.create () in
  Testsuite.register registry;
  Unixbench.register registry;
  (match extra_register with Some f -> f registry | None -> ());
  let pm = Pm.create () in
  let vfs = Vfs.create () in
  let vm = Vm.create () in
  let ds = Ds.create () in
  let rs = Rs.create ~policies:overrides ~budgets policy in
  let mfs = Mfs.create () in
  let bdev = Bdev.create () in
  (* mkfs: /tmp, /etc/data, and one file per registered executable so
     exec-time path validation works. *)
  Mfs.add_dir mfs "/tmp";
  Mfs.add_dir mfs "/etc";
  Mfs.add_file mfs ~bdev ~path:"/etc/data" ~content:etc_data;
  Mfs.add_dir mfs "/bin";
  List.iter
    (fun path -> Mfs.add_file mfs ~bdev ~path ~content:"#!osiris\n")
    (Registry.paths registry);
  let log = ref [] in
  let cfg =
    let base =
      Kernel.default_config ~arch ~seed ~policies:overrides policy
        ~lookup_program:(Registry.lookup registry) ()
    in
    { base with
      Kernel.log_sink = Some (fun line -> log := line :: !log);
      trace;
      costs = (match costs with Some c -> c | None -> base.Kernel.costs);
      max_ops = (match max_ops with Some m -> m | None -> base.Kernel.max_ops);
      max_crashes =
        (match max_crashes with Some m -> m | None -> base.Kernel.max_crashes) }
  in
  let kernel = Kernel.create cfg in
  (* Installed before boot so observers see boot traffic too; a hook
     attached after build (e.g. Tracer.attach) only sees the run. The
     journal rides the kernel's raw capture log, not the event hook:
     the emission sites append each event's scalar fields as a few
     int stores and all encoding happens in batched sweeps off the
     hot path (the <5% recording-overhead gate). The capture append
     happens before the hook fires with identical values, so a
     recording is byte-identical whether or not another observer
     rides along. *)
  (match journal with
   | Some w -> Kernel.set_capture kernel (Some (Journal.capture w))
   | None -> ());
  (match event_hook with
   | Some f -> Kernel.set_event_hook kernel (Some f)
   | None -> ());
  (* Likewise pre-boot: the profiler must see every cycle from the
     first boot instruction, or conservation against the process
     clocks cannot hold. *)
  (match profiler with
   | Some prof -> Profiler.attach prof kernel
   | None -> ());
  List.iter (Kernel.add_server kernel)
    [ Pm.server pm; Vfs.server vfs; Vm.server vm; Ds.server ds;
      Rs.server rs; Mfs.server mfs; Bdev.server bdev ];
  (* Telemetry hooks in after the servers exist (its standard source
     set enumerates them) and before boot, so the sample grid covers
     the whole run. Cycle counts are enabled so the per-phase series
     carry data; callers may add custom sources before build. *)
  (match telemetry with
   | Some ts ->
     Kernel.enable_cycle_counts kernel;
     Timeseries.add_kernel_sources ts kernel;
     Timeseries.attach ts kernel
   | None -> ());
  Kernel.boot kernel;
  { sys_kernel = kernel;
    sys_registry = registry;
    sys_conf = conf;
    sys_bdev = bdev;
    sys_mfs = mfs;
    sys_vfs = vfs;
    sys_log = log }

let kernel t = t.sys_kernel
let registry t = t.sys_registry
let sysconf t = t.sys_conf
let policy t = Sysconf.default t.sys_conf
let policy_of t ep = Sysconf.policy_for t.sys_conf ep
let bdev t = t.sys_bdev
let mfs t = t.sys_mfs
let vfs t = t.sys_vfs

let run t ~root =
  let ep =
    Kernel.spawn_user t.sys_kernel ~name:"init" ~prog:root ~parent:0
  in
  assert (ep = Endpoint.first_user);
  Kernel.set_halt_on_exit t.sys_kernel ep;
  Kernel.run t.sys_kernel

let log_lines t = List.rev !(t.sys_log)
