type coverage_row = {
  cov_server : string;
  cov_fraction : float;
  cov_weight : float;
}

let coverage_row kernel ep =
  let s = Kernel.server_stats kernel ep in
  { cov_server = s.Kernel.ss_name;
    cov_fraction =
      (if s.Kernel.ss_ops_total = 0 then 0.
       else
         float_of_int s.Kernel.ss_ops_in_window
         /. float_of_int s.Kernel.ss_ops_total);
    cov_weight = float_of_int s.Kernel.ss_busy_cycles }

let coverage_run ?(seed = 42) policy =
  let sys = System.build ~seed (Sysconf.uniform policy) in
  let halt = System.run sys ~root:Testsuite.driver in
  let rows =
    List.map (coverage_row (System.kernel sys)) System.core_servers
  in
  (rows, halt)

let weighted_mean_coverage rows =
  Osiris_util.Stats.weighted_mean
    (List.map (fun r -> (r.cov_fraction, r.cov_weight)) rows)

let measured_frequencies kernel ep =
  let counts = Kernel.handler_counts kernel ep in
  fun tag ->
    match List.assoc_opt tag counts with
    | Some n -> float_of_int n
    | None -> 0.

type bench_result = {
  br_name : string;
  br_iters : int;
  br_cycles : int;
  br_score : float;
  br_halt : Kernel.halt;
}

let run_bench ?(arch = Kernel.Microkernel) ?(seed = 42) policy bench =
  let sys = System.build ~arch ~seed (Sysconf.uniform policy) in
  let t0 = Kernel.now (System.kernel sys) in
  let halt = System.run sys ~root:bench.Unixbench.b_driver in
  let t1 = Kernel.now (System.kernel sys) in
  let cycles = max 1 (t1 - t0) in
  let seconds = Costs.cycles_to_seconds cycles in
  { br_name = bench.Unixbench.b_name;
    br_iters = bench.Unixbench.b_iters;
    br_cycles = cycles;
    br_score = float_of_int bench.Unixbench.b_iters /. seconds;
    br_halt = halt }

(* Each benchmark boots its own system, so the suite fans out across
   the Parfan domain pool; scores come from simulated cycles, so the
   rows (Tables IV/V inputs) are identical whatever the worker
   count. *)
let bench_suite ?(arch = Kernel.Microkernel) ?(seed = 42) ?jobs ?stats policy =
  Parfan.map ?jobs ?stats (run_bench ~arch ~seed policy) Unixbench.all

let slowdown ~baseline r = Osiris_util.Stats.ratio baseline.br_score r.br_score

type memory_row = {
  mem_server : string;
  mem_base_kb : int;
  mem_clone_kb : int;
  mem_undo_kb : int;
  mem_total_overhead_kb : int;
}

(* The Table VI workload: every Unixbench program run once, in one
   booted system, so per-server peak undo-log sizes reflect the whole
   suite. *)
let memory_root =
  let open Prog.Syntax in
  let rec run = function
    | [] -> Syscall.exit 0
    | bench :: rest ->
      let* pid = Syscall.fork in
      if pid = 0 then
        let* _ = Syscall.exec ("/bin/ub_" ^ bench.Unixbench.b_name) 0 in
        Syscall.exit 9
      else if pid < 0 then Syscall.exit 1
      else
        let* _, _ = Syscall.waitpid pid in
        run rest
  in
  run Unixbench.all

let memory_overhead ?(seed = 42) () =
  let sys = System.build ~seed (Sysconf.uniform Policy.enhanced) in
  let (_ : Kernel.halt) = System.run sys ~root:memory_root in
  let kernel = System.kernel sys in
  List.map
    (fun ep ->
       let s = Kernel.server_stats kernel ep in
       let base_kb = s.Kernel.ss_image_bytes / 1024 in
       let clone_kb = base_kb + s.Kernel.ss_clone_extra_kb in
       let undo_kb = (s.Kernel.ss_undo_peak_bytes + 1023) / 1024 in
       { mem_server = s.Kernel.ss_name;
         mem_base_kb = base_kb;
         mem_clone_kb = clone_kb;
         mem_undo_kb = undo_kb;
         mem_total_overhead_kb = clone_kb + undo_kb })
    System.core_servers

type recovery_bytes_row = {
  rb_server : string;
  rb_image_bytes : int;
  rb_rollback_bytes : int;
  rb_restore_bytes_saved : int;
  rb_restarts : int;
}

let recovery_bytes ?(seed = 42) ?(period = 400) policy =
  let sys = System.build ~seed ~max_crashes:10_000 (Sysconf.uniform policy) in
  let kernel = System.kernel sys in
  (* A periodic crash probe across all servers: every [period]-th
     eligible fault site fires, so the run exercises both the rollback
     path (in-window crashes) and the restart path. *)
  let tick = ref 0 in
  Kernel.set_fault_hook kernel
    (Some
       (fun (_ : Kernel.site) ->
          incr tick;
          if !tick mod period = 0 then Some (Kernel.F_crash "byte probe")
          else None));
  let halt = System.run sys ~root:Testsuite.driver in
  let rows =
    List.map
      (fun ep ->
         let s = Kernel.server_stats kernel ep in
         { rb_server = s.Kernel.ss_name;
           rb_image_bytes = s.Kernel.ss_image_bytes;
           rb_rollback_bytes = s.Kernel.ss_rollback_bytes;
           rb_restore_bytes_saved = s.Kernel.ss_restore_bytes_saved;
           rb_restarts = s.Kernel.ss_restarts })
      System.core_servers
  in
  (rows, halt)
