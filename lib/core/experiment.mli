(** Drivers for the paper's performance-side experiments: recovery
    coverage (Table I), Unixbench scores (Table IV), instrumentation
    slowdown (Table V) and memory overhead (Table VI). The fault-
    injection experiments (Tables II/III, Figure 3) live in
    [osiris_fault], which builds on these. *)

(** {1 Recovery coverage — Table I} *)

type coverage_row = {
  cov_server : string;
  cov_fraction : float;  (** ops executed inside windows / total ops. *)
  cov_weight : float;    (** busy cycles, the weighting of the mean. *)
}

val coverage_run : ?seed:int -> Policy.t -> coverage_row list * Kernel.halt
(** Run the prototype test suite under the given policy and measure,
    per core server, the fraction of executed operations that fell
    inside an open recovery window. *)

val weighted_mean_coverage : coverage_row list -> float

val measured_frequencies :
  Kernel.t -> Endpoint.t -> Message.Tag.t -> float
(** Handler activation frequencies measured by the kernel, as the
    workload-weighting input to {!Static_window.server_coverage}. *)

(** {1 Unixbench — Tables IV and V} *)

type bench_result = {
  br_name : string;
  br_iters : int;
  br_cycles : int;       (** Virtual cycles consumed by the run. *)
  br_score : float;      (** Iterations per simulated second. *)
  br_halt : Kernel.halt;
}

val run_bench :
  ?arch:Kernel.arch -> ?seed:int -> Policy.t -> Unixbench.bench -> bench_result

val bench_suite :
  ?arch:Kernel.arch -> ?seed:int -> ?jobs:int ->
  ?stats:(Parfan.stats -> unit) -> Policy.t -> bench_result list
(** One freshly booted system per benchmark, fanned out across the
    {!Parfan} domain pool ([jobs] defaults to {!Parfan.default_jobs};
    [jobs:1] runs sequentially in the calling domain). Scores are
    simulated-cycle ratios, so the result rows do not depend on the
    worker count. *)

val slowdown : baseline:bench_result -> bench_result -> float
(** baseline_score / score: > 1 means slower than baseline. *)

(** {1 Memory overhead — Table VI} *)

type memory_row = {
  mem_server : string;
  mem_base_kb : int;       (** Image (data sections) size. *)
  mem_clone_kb : int;      (** Clone image + pre-allocation. *)
  mem_undo_kb : int;       (** Peak undo log during the workload. *)
  mem_total_overhead_kb : int;
}

val memory_overhead : ?seed:int -> unit -> memory_row list
(** Run the Unixbench workloads under the enhanced policy and report
    per-component memory overheads. *)

(** {1 Recovery data movement} *)

type recovery_bytes_row = {
  rb_server : string;
  rb_image_bytes : int;          (** Full image size, the O(image) bound. *)
  rb_rollback_bytes : int;       (** Payload bytes blitted back by undo-log rollbacks. *)
  rb_restore_bytes_saved : int;  (** Bytes dirty-region restarts did not copy. *)
  rb_restarts : int;
}

val recovery_bytes :
  ?seed:int -> ?period:int -> Policy.t -> recovery_bytes_row list * Kernel.halt
(** Run the prototype suite under a periodic crash probe (every
    [period]-th eligible fault site fires) and report how many bytes
    recovery actually moved per server — the full-system evidence that
    rollback scales with logged stores and stateless restarts with
    dirty granules, not with image size. *)
