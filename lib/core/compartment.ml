type criticality = Critical | Important | Best_effort

let criticality_to_string = function
  | Critical -> "critical"
  | Important -> "important"
  | Best_effort -> "best-effort"

type t = {
  c_name : string;
  c_ep : Endpoint.t;
  c_policy : Policy.t;
  c_budget : int option;
  c_criticality : criticality;
}

let make ?budget ?(criticality = Important) ?name ep policy =
  let c_name =
    match name with
    | Some n -> n
    | None -> if Endpoint.is_server ep then Endpoint.server_name ep
              else Printf.sprintf "user%d" ep
  in
  { c_name; c_ep = ep; c_policy = policy; c_budget = budget;
    c_criticality = criticality }

let name t = t.c_name
let ep t = t.c_ep
let policy t = t.c_policy
let budget t = t.c_budget
let criticality t = t.c_criticality

let describe t =
  Printf.sprintf "%s(ep=%d): policy=%s budget=%s criticality=%s" t.c_name
    t.c_ep t.c_policy.Policy.name
    (match t.c_budget with None -> "unlimited" | Some b -> string_of_int b)
    (criticality_to_string t.c_criticality)
