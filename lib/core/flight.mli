(** Flight-recorder orchestration: record, replay, postmortem.

    [Journal]/[Replay]/[Postmortem] (in [lib/obs]) are pure codec and
    analysis modules with no knowledge of the assembled system — this
    module supplies the missing half: a registry of named workloads, a
    crash-injection armer, and the [exec] function that rebuilds a
    system from a journal header and runs it to halt. The [osiris
    record]/[replay]/[postmortem] subcommands are thin wrappers over
    these entry points, so tests exercise exactly what the CLI ships.

    A run is re-executable iff everything that determines it is in the
    header: seed, arch, system spec, workload {e name} (resolved here,
    so the name must stay stable), crash-injection spec, and the cost
    table fingerprint. *)

val workloads : (string * string) list
(** Available workload names with one-line descriptions:
    ["quickstart"], ["suite"], ["workgen"]. *)

val workload : name:string -> seed:int -> (unit Prog.t, string) result
(** Resolve a header's workload name (["workgen"] is seed-derived). *)

val server_of_name : string -> Endpoint.t option
(** ["pm"|"vfs"|"vm"|"ds"|"rs"] -> endpoint; anything else [None]. *)

val arm_crash : ?count:int -> Kernel.t -> Endpoint.t option -> unit
(** Install a fault hook that fail-stop crashes the given server at
    its first [count] in-window reply sites — the deterministic crash
    injection used by the tracing/obs commands and recorded in the
    journal header as [jh_crash]/[jh_crash_count]. *)

val make_header :
  ?arch:Kernel.arch ->
  ?seed:int ->
  ?spec:string ->
  ?workload:string ->
  ?crash:string ->
  ?crash_count:int ->
  unit ->
  (Journal.header, string) result
(** Validate and assemble a journal header (defaults: seed 42,
    microkernel, ["enhanced"] spec, ["quickstart"] workload, no crash).
    The cost fingerprint is derived from [arch]'s table. [Error] names
    the offending field (unknown workload, unparsable spec, unknown
    crash server). *)

type recording = {
  rec_halt : Kernel.halt;
  rec_records : int;   (** Events journaled (header excluded). *)
  rec_bytes : int;     (** Journal size on disk, framing included. *)
  rec_snapshots : int; (** Ring mode: crash snapshots taken. *)
}

val record :
  path:string ->
  ?ring:int ->
  ?costs:Costs.t ->
  ?index:bool ->
  Journal.header ->
  (recording, string) result
(** Execute the run the header describes, journaling to [path]. Full
    fidelity by default: every event streams to disk as it happens.
    [ring] bounds memory instead: the last-N events ride a tracer ring
    whose contents are frozen at each crash ({!Tracer.set_snapshot_on})
    and spilled to [path] at halt — newest crash wins, and with no
    crash the final ring contents are spilled, so the tail of the run
    is always preserved.

    [index] (default true) writes the seekable sidecar block index to
    [path ^ Journal.index_suffix] after the journal closes — identical
    bytes to a post-hoc [osiris index] rebuild. [costs] overrides the
    execution cost table {e without} changing the header's fingerprint:
    the perturbed-cost fixture, producing a journal whose events
    diverge from what its header re-executes to. *)

val exec :
  ?prepare:(System.t -> unit) ->
  Journal.header -> hook:(Kernel.event -> unit) -> Kernel.halt
(** Rebuild the system a header describes — spec parsed, [hook]
    installed from boot, crash injection re-armed — and run its
    workload to halt. This is the [exec] argument {!Replay.run} wants.
    [prepare] runs on the built system just before the workload starts
    — [osiris why] uses it to switch on the kernel's per-request cycle
    charging, which observes but never perturbs the run.
    @raise Invalid_argument on a header that fails {!make_header}'s
    validation (CLI paths validate first). *)

val replay :
  ?costs:Costs.t ->
  Journal.header ->
  Kernel.event array ->
  Replay.outcome
(** {!Replay.run} over {!exec}, with the replay-side cost table
    ([costs] overrides the header arch's — the perturbation fixture)
    threaded both into the rebuilt system and into the outcome's
    fingerprint check. *)

val replay_stream :
  ?costs:Costs.t ->
  Journal.header ->
  next:(unit -> Kernel.event option) ->
  Replay.outcome
(** {!Replay.run_stream} over {!exec} — the streaming CLI path: feed
    it a {!Journal.stream_next} cursor and the journal is never
    materialized as an array. *)

val postmortem : Journal.header -> Kernel.event array -> Postmortem.report
(** {!Postmortem.analyze} (re-exported so CLI and tests need only
    [Flight]). *)
