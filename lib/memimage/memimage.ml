type write_hook = offset:int -> len:int -> unit

(* Dirty-region granularity: 256-byte granules, tracked one byte per
   granule so marking is a single unsafe store on the hot path. *)
let granule_shift = 8
let granule = 1 lsl granule_shift

type t = {
  img_name : string;
  data : Bytes.t;
  mutable cursor : int;
  mutable hook : write_hook option;
  mutable writes : int;
  mutable bytes_written : int;
  dirty : Bytes.t;                 (* '\001' = granule written since last clean point *)
  mutable n_dirty : int;
  mutable baseline : Bytes.t option;
  mutable restore_ops : int;
  mutable restore_bytes : int;
  mutable restore_bytes_saved : int;
}

let n_granules size = (size + granule - 1) lsr granule_shift

let create ~name ~size =
  { img_name = name;
    data = Bytes.make size '\000';
    cursor = 0;
    hook = None;
    writes = 0;
    bytes_written = 0;
    dirty = Bytes.make (n_granules size) '\000';
    n_dirty = 0;
    baseline = None;
    restore_ops = 0;
    restore_bytes = 0;
    restore_bytes_saved = 0 }

let name t = t.img_name

let size t = Bytes.length t.data

let alloc t ?(align = 8) n =
  let base = (t.cursor + align - 1) / align * align in
  if base + n > Bytes.length t.data then
    failwith (Printf.sprintf "Memimage.alloc: %s exhausted (%d + %d > %d)"
                t.img_name base n (Bytes.length t.data));
  t.cursor <- base + n;
  base

let allocated t = t.cursor

let set_write_hook t hook = t.hook <- hook

let mark_dirty t ~off ~len =
  let g1 = (off + len - 1) lsr granule_shift in
  let g = ref (off lsr granule_shift) in
  while !g <= g1 do
    if Bytes.unsafe_get t.dirty !g <> '\001' then begin
      Bytes.unsafe_set t.dirty !g '\001';
      t.n_dirty <- t.n_dirty + 1
    end;
    incr g
  done

let mark_all_dirty t =
  let n = Bytes.length t.dirty in
  Bytes.fill t.dirty 0 n '\001';
  t.n_dirty <- n

let pre_write t ~off ~len =
  t.writes <- t.writes + 1;
  t.bytes_written <- t.bytes_written + len;
  mark_dirty t ~off ~len;
  (* The hook runs *before* the overwrite: the image still holds the
     previous contents, which the undo log blits out directly. *)
  match t.hook with
  | None -> ()
  | Some hook -> hook ~offset:off ~len

let get_word t off = Int64.to_int (Bytes.get_int64_le t.data off)

let set_word t off v =
  pre_write t ~off ~len:8;
  Bytes.set_int64_le t.data off (Int64.of_int v)

let get_bytes t ~off ~len = Bytes.sub t.data off len

let set_bytes t ~off b =
  pre_write t ~off ~len:(Bytes.length b);
  Bytes.blit b 0 t.data off (Bytes.length b)

let get_string t ~off ~len =
  let raw = Bytes.sub_string t.data off len in
  match String.index_opt raw '\000' with
  | None -> raw
  | Some i -> String.sub raw 0 i

let set_string t ~off ~len s =
  if String.length s > len then
    invalid_arg
      (Printf.sprintf "Memimage.set_string: %S exceeds field of %d bytes" s len);
  pre_write t ~off ~len;
  Bytes.fill t.data off len '\000';
  Bytes.blit_string s 0 t.data off (String.length s)

(* ---------------- RCB raw access (checkpoint library) -------------- *)

let raw_bytes t = t.data

(* Stores are overwhelmingly word-sized: for small ranges a hand-rolled
   copy (one bounds check, then unsafe byte moves) beats the out-of-line
   [Bytes.blit] C call that dominates the checkpoint hot path. *)
let small_copy_max = 16

let blit_out t ~off ~len dst dst_off =
  if len <= small_copy_max then begin
    if off < 0 || len < 0
       || off > Bytes.length t.data - len
       || dst_off < 0
       || dst_off > Bytes.length dst - len
    then invalid_arg "Memimage.blit_out";
    for k = 0 to len - 1 do
      Bytes.unsafe_set dst (dst_off + k) (Bytes.unsafe_get t.data (off + k))
    done
  end
  else Bytes.blit t.data off dst dst_off len

let write_raw t ~off src ~src_off ~len =
  mark_dirty t ~off ~len;
  if len <= small_copy_max then begin
    if off < 0 || len < 0
       || off > Bytes.length t.data - len
       || src_off < 0
       || src_off > Bytes.length src - len
    then invalid_arg "Memimage.write_raw";
    for k = 0 to len - 1 do
      Bytes.unsafe_set t.data (off + k) (Bytes.unsafe_get src (src_off + k))
    done
  end
  else Bytes.blit src src_off t.data off len

(* ---------------- whole-image operations --------------------------- *)

let snapshot t = Bytes.copy t.data

let restore t snap =
  if Bytes.length snap <> Bytes.length t.data then
    invalid_arg "Memimage.restore: size mismatch";
  Bytes.blit snap 0 t.data 0 (Bytes.length snap);
  (* An arbitrary snapshot has no known relation to the baseline:
     conservatively consider everything modified. *)
  mark_all_dirty t;
  t.restore_ops <- t.restore_ops + 1;
  t.restore_bytes <- t.restore_bytes + Bytes.length snap

let set_baseline t =
  t.baseline <- Some (Bytes.copy t.data);
  Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\000';
  t.n_dirty <- 0

let has_baseline t = t.baseline <> None

let restore_baseline t =
  let base =
    match t.baseline with
    | Some b -> b
    | None -> invalid_arg "Memimage.restore_baseline: no baseline set"
  in
  let len = Bytes.length t.data in
  let restored = ref 0 in
  if t.n_dirty > 0 then begin
    let ng = Bytes.length t.dirty in
    for g = 0 to ng - 1 do
      if Bytes.unsafe_get t.dirty g = '\001' then begin
        let off = g lsl granule_shift in
        let glen = min granule (len - off) in
        Bytes.blit base off t.data off glen;
        Bytes.unsafe_set t.dirty g '\000';
        restored := !restored + glen
      end
    done;
    t.n_dirty <- 0
  end;
  t.restore_ops <- t.restore_ops + 1;
  t.restore_bytes <- t.restore_bytes + !restored;
  t.restore_bytes_saved <- t.restore_bytes_saved + (len - !restored);
  !restored

let dirty_granules t = t.n_dirty

let dirty_bytes t =
  (* Upper bound: the last granule may be partial. *)
  let len = Bytes.length t.data in
  let full = t.n_dirty * granule in
  if full > len then len else full

let clone t ~name =
  { img_name = name;
    data = Bytes.copy t.data;
    cursor = t.cursor;
    hook = None;
    writes = 0;
    bytes_written = 0;
    (* The clone's contents bear no relation to a zero/baseline state:
       start conservatively all-dirty until a baseline is set. *)
    dirty = Bytes.make (n_granules (Bytes.length t.data)) '\001';
    n_dirty = n_granules (Bytes.length t.data);
    baseline = None;
    restore_ops = 0;
    restore_bytes = 0;
    restore_bytes_saved = 0 }

let clear t =
  Bytes.fill t.data 0 (Bytes.length t.data) '\000';
  mark_all_dirty t

let writes t = t.writes

let bytes_written t = t.bytes_written

let restore_bytes t = t.restore_bytes

let restore_bytes_saved t = t.restore_bytes_saved
