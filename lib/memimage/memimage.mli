(** Component memory image.

    Every OSIRIS server keeps its recoverable state in a [Memimage.t] — a
    flat, bytes-backed memory area standing in for the data sections of
    the original MINIX C servers. All mutations go through accessors that
    invoke a write hook *before* overwriting, which is where the
    checkpointing library's undo log attaches (the simulation analogue of
    the paper's LLVM store instrumentation).

    The image additionally tracks *dirty regions* at a coarse
    {!granule} granularity (the simulated analogue of the paper's
    copy-on-write clone pages): every hook-visible or raw write marks
    the granules it covers, so restoring a component to its pristine
    {!set_baseline} state blits O(dirty) bytes instead of O(image).

    Direct accessors here are reserved for the Reliable Computing Base
    (kernel, recovery server, checkpoint library); instrumented server
    code reaches memory through the program DSL, which adds simulated
    cost and fault-injection points on top of these primitives. *)

type t

type write_hook = offset:int -> len:int -> unit
(** Called before a write with the location and length of the range
    about to be overwritten. The image still holds the *previous*
    contents when the hook runs: a hook that needs the old value reads
    it straight out of the image (e.g. {!blit_out} into an undo-log
    arena), with no intermediate copy materialized. *)

val granule : int
(** Dirty-tracking granularity in bytes (256). *)

val create : name:string -> size:int -> t
(** Zero-filled image of [size] bytes, no granule dirty. *)

val name : t -> string

val size : t -> int

val alloc : t -> ?align:int -> int -> int
(** Bump-allocate [n] bytes of layout space; returns the base offset.
    Used once at server-definition time to place tables and cells.
    @raise Failure if the image is exhausted. *)

val allocated : t -> int
(** Bytes handed out by {!alloc} so far. *)

val set_write_hook : t -> write_hook option -> unit

(** {2 Word access} — words are 8 bytes, little-endian. *)

val get_word : t -> int -> int
val set_word : t -> int -> int -> unit

(** {2 Raw byte-range access} *)

val get_bytes : t -> off:int -> len:int -> bytes
val set_bytes : t -> off:int -> bytes -> unit

(** {2 Fixed-size string fields} — NUL-padded, like C char arrays. *)

val get_string : t -> off:int -> len:int -> string
val set_string : t -> off:int -> len:int -> string -> unit
(** @raise Invalid_argument if the string exceeds the field length. *)

(** {2 RCB raw access} — allocation-free, hook-bypassing primitives for
    the checkpoint library. Not for instrumented server code. *)

val raw_bytes : t -> bytes
(** The live backing store itself, not a copy. Strictly for the
    checkpoint hot path (undo-log record/rollback), which performs its
    own bounds checks; writes made through it MUST be paired with
    {!mark_dirty} or dirty-region restarts become unsound. *)

val mark_dirty : t -> off:int -> len:int -> unit
(** Mark the granules covering a range as written, for callers that
    mutate via {!raw_bytes}. *)

val blit_out : t -> off:int -> len:int -> bytes -> int -> unit
(** [blit_out t ~off ~len dst dst_off] copies [len] image bytes at
    [off] into [dst] at [dst_off] without allocating. *)

val write_raw : t -> off:int -> bytes -> src_off:int -> len:int -> unit
(** Overwrite a range from [src], bypassing the write hook and the
    write accounting (rollback must not re-log itself). Dirty granules
    are still marked: raw writes move the image away from its
    baseline. *)

(** {2 Whole-image operations (RCB only)} *)

val snapshot : t -> bytes
(** Copy of the full contents (used to seed clones). *)

val restore : t -> bytes -> unit
(** Overwrite contents from a snapshot of equal size, bypassing the
    write hook. The snapshot has no known relation to the baseline, so
    every granule is conservatively marked dirty. *)

val set_baseline : t -> unit
(** Record the current contents as the pristine baseline (the paper's
    prepared-clone image) and mark every granule clean. Restart paths
    use {!restore_baseline} to return to this state in O(dirty). *)

val has_baseline : t -> bool

val restore_baseline : t -> int
(** Blit only the dirty granules back from the baseline and mark them
    clean; returns the number of bytes actually restored (O(dirty
    granules), not O(image)).
    @raise Invalid_argument if {!set_baseline} was never called. *)

val dirty_granules : t -> int
(** Granules written since the last clean point ({!create} or
    {!set_baseline}). *)

val dirty_bytes : t -> int
(** Upper bound on the bytes covered by dirty granules. *)

val clone : t -> name:string -> t
(** Fresh image with identical contents and layout cursor, no hook, no
    baseline, conservatively all-dirty. *)

val clear : t -> unit
(** Zero the contents, bypassing the hook; marks everything dirty. *)

(** {2 Accounting} *)

val writes : t -> int
(** Number of hook-visible write operations since creation. *)

val bytes_written : t -> int
(** Total bytes covered by hook-visible writes. *)

val restore_bytes : t -> int
(** Total bytes blitted by {!restore} and {!restore_baseline} since
    creation. *)

val restore_bytes_saved : t -> int
(** Bytes {!restore_baseline} did *not* have to blit because their
    granules were clean — the measured savings of dirty-region
    restarts over full-image restores. *)
