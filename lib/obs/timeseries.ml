type kind = Gauge | Delta

type t = {
  ts_interval : int;
  cap : int;
  mask : int;   (* cap - 1; cap is a power of two *)
  (* Registration accumulators, reversed; frozen into the flat arrays
     below at attach / first sample. *)
  mutable reg : (string * kind * (unit -> int)) list;
  mutable n_reg : int;
  mutable frozen : bool;
  mutable attached : bool;
  mutable names : string array;
  mutable kinds : kind array;
  mutable reads : (unit -> int) array;
  mutable is_delta : bool array;
  mutable lasts : int array;  (* previous raw read, per source *)
  (* One flat backing array for every ring — source [i]'s slot for
     ring position [p] is [i * cap + p]. A single allocation at freeze
     (series setup is part of the attach-overhead gate) and one fewer
     indirection per store on the sampling hot path. *)
  mutable data : int array;
  mutable time_ring : int array;
  mutable total : int;              (* samples taken, monotonic *)
}

let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (acc * 2)

let create ?(interval = 4096) ?(capacity = 4096) () =
  if interval <= 0 then invalid_arg "Timeseries.create: interval must be positive";
  if capacity <= 0 then invalid_arg "Timeseries.create: capacity must be positive";
  let cap = pow2_at_least capacity 1 in
  { ts_interval = interval;
    cap;
    mask = cap - 1;
    reg = [];
    n_reg = 0;
    frozen = false;
    attached = false;
    names = [||];
    kinds = [||];
    reads = [||];
    is_delta = [||];
    lasts = [||];
    data = [||];
    time_ring = [||];
    total = 0 }

let interval t = t.ts_interval
let capacity t = t.cap

let add_source t ~name ~kind read =
  if t.frozen then
    invalid_arg "Timeseries.add_source: source set is frozen (already sampling)";
  if List.exists (fun (n, _, _) -> n = name) t.reg then
    invalid_arg ("Timeseries.add_source: duplicate source " ^ name);
  t.reg <- (name, kind, read) :: t.reg;
  t.n_reg <- t.n_reg + 1

let add_counter t name c =
  add_source t ~name ~kind:Delta (fun () -> Metrics.counter_value c)

let add_gauge t name g =
  add_source t ~name ~kind:Gauge (fun () -> Metrics.gauge_value g)

let add_kernel_sources t k =
  add_source t ~name:"kernel.ops" ~kind:Delta (fun () -> Kernel.total_ops k);
  add_source t ~name:"kernel.delivered" ~kind:Delta
    (fun () -> Kernel.messages_delivered k);
  add_source t ~name:"kernel.crashes" ~kind:Delta (fun () -> Kernel.crashes k);
  add_source t ~name:"kernel.restarts" ~kind:Delta (fun () -> Kernel.restarts k);
  add_source t ~name:"kernel.shed" ~kind:Delta (fun () -> Kernel.shed_exits k);
  add_source t ~name:"kernel.runq" ~kind:Gauge
    (fun () -> Kernel.run_queue_depth k);
  List.iter
    (fun ep ->
       let name = Endpoint.server_name ep in
       (* Handle captured once: server records are stable for the
          kernel's lifetime, so the per-tick reads are field loads
          with no hashing. *)
       match Kernel.server_handle k ep with
       | Some h ->
         add_source t ~name:("srv." ^ name ^ ".inbox") ~kind:Gauge
           (fun () -> Kernel.handle_inbox_depth h);
         add_source t ~name:("srv." ^ name ^ ".alive") ~kind:Gauge
           (fun () -> if Kernel.handle_alive h then 1 else 0)
       | None -> ())
    (Kernel.server_endpoints k);
  List.iter
    (fun ph ->
       add_source t
         ~name:("phase." ^ Kernel.phase_to_string ph ^ ".cycles")
         ~kind:Delta
         (fun () -> Kernel.total_phase_cycles k ph))
    Kernel.all_phases

let freeze t =
  if not t.frozen then begin
    t.frozen <- true;
    let srcs = Array.of_list (List.rev t.reg) in
    t.reg <- [];
    let n = Array.length srcs in
    t.names <- Array.map (fun (nm, _, _) -> nm) srcs;
    t.kinds <- Array.map (fun (_, k, _) -> k) srcs;
    t.reads <- Array.map (fun (_, _, r) -> r) srcs;
    t.is_delta <- Array.map (fun (_, k, _) -> k = Delta) srcs;
    t.lasts <- Array.make (max n 1) 0;
    t.data <- Array.make (max 1 (n * t.cap)) 0;
    t.time_ring <- Array.make t.cap 0
  end

let sample t at =
  if not t.frozen then freeze t;
  let pos = t.total land t.mask in
  Array.unsafe_set t.time_ring pos at;
  let reads = t.reads in
  let data = t.data in
  let cap = t.cap in
  for i = 0 to Array.length reads - 1 do
    let v = (Array.unsafe_get reads i) () in
    let out =
      if Array.unsafe_get t.is_delta i then begin
        let d = v - Array.unsafe_get t.lasts i in
        Array.unsafe_set t.lasts i v;
        d
      end
      else v
    in
    Array.unsafe_set data ((i * cap) + pos) out
  done;
  t.total <- t.total + 1

let attach t k =
  if t.attached then invalid_arg "Timeseries.attach: already attached";
  if t.n_reg = 0 && not t.frozen then
    invalid_arg "Timeseries.attach: no sources registered";
  freeze t;
  t.attached <- true;
  Kernel.set_vtime_sampler k ~interval:t.ts_interval (Some (fun at -> sample t at))

let detach t k =
  if t.attached then begin
    t.attached <- false;
    Kernel.set_vtime_sampler k ~interval:0 None
  end

let n_sources t = if t.frozen then Array.length t.names else t.n_reg

let source_names t =
  if t.frozen then Array.to_list t.names
  else List.rev_map (fun (n, _, _) -> n) t.reg

let source_kind t i =
  if not t.frozen then
    invalid_arg "Timeseries.source_kind: not frozen yet"
  else t.kinds.(i)

let index_of t name =
  let names = if t.frozen then t.names else Array.of_list (source_names t) in
  let rec go i =
    if i >= Array.length names then None
    else if names.(i) = name then Some i
    else go (i + 1)
  in
  go 0

let samples_taken t = t.total
let retained t = min t.total t.cap
let dropped t = t.total - retained t

(* Retained index [i] (oldest first) -> ring position. *)
let[@inline] ring_pos t i = (t.total - retained t + i) land t.mask

let time_at t i =
  if i < 0 || i >= retained t then invalid_arg "Timeseries.time_at";
  t.time_ring.(ring_pos t i)

let value_at t ~source i =
  if i < 0 || i >= retained t then invalid_arg "Timeseries.value_at";
  if source < 0 || source >= Array.length t.reads then
    invalid_arg "Timeseries.value_at: unknown source";
  t.data.((source * t.cap) + ring_pos t i)

let values t ~source =
  let n = retained t in
  if source < 0 || source >= Array.length t.reads then
    invalid_arg "Timeseries.values: unknown source";
  Array.init n (fun i -> t.data.((source * t.cap) + ring_pos t i))

let times t =
  let n = retained t in
  Array.init n (fun i -> t.time_ring.(ring_pos t i))

let kind_to_string = function Gauge -> "gauge" | Delta -> "delta"

let to_csv t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "vtime";
  Array.iter
    (fun nm ->
       Buffer.add_char b ',';
       Buffer.add_string b nm)
    (if t.frozen then t.names else Array.of_list (source_names t));
  Buffer.add_char b '\n';
  let n = retained t in
  for i = 0 to n - 1 do
    Buffer.add_string b (string_of_int (time_at t i));
    for s = 0 to n_sources t - 1 do
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int (value_at t ~source:s i))
    done;
    Buffer.add_char b '\n'
  done;
  Buffer.contents b

let add_int_array b vals =
  Buffer.add_char b '[';
  Array.iteri
    (fun i v ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b (string_of_int v))
    vals;
  Buffer.add_char b ']'

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"interval\":";
  Buffer.add_string b (string_of_int t.ts_interval);
  Buffer.add_string b ",\"samples\":";
  Buffer.add_string b (string_of_int t.total);
  Buffer.add_string b ",\"retained\":";
  Buffer.add_string b (string_of_int (retained t));
  Buffer.add_string b ",\"dropped\":";
  Buffer.add_string b (string_of_int (dropped t));
  Buffer.add_string b ",\"times\":";
  add_int_array b (times t);
  Buffer.add_string b ",\"series\":[";
  let names = if t.frozen then t.names else Array.of_list (source_names t) in
  Array.iteri
    (fun s nm ->
       if s > 0 then Buffer.add_char b ',';
       Buffer.add_string b "{\"name\":";
       Buffer.add_string b (Chrome_trace.escaped nm);
       Buffer.add_string b ",\"kind\":\"";
       Buffer.add_string b
         (kind_to_string (if t.frozen then t.kinds.(s) else Gauge));
       Buffer.add_string b "\",\"values\":";
       add_int_array b (if t.frozen then values t ~source:s else [||]);
       Buffer.add_char b '}')
    names;
  Buffer.add_string b "]}";
  Buffer.contents b

let publish t m =
  let g name v = Metrics.set (Metrics.gauge m name) v in
  g "osiris.timeline.interval" t.ts_interval;
  g "osiris.timeline.sources" (n_sources t);
  g "osiris.timeline.samples" t.total;
  g "osiris.timeline.retained" (retained t);
  g "osiris.timeline.dropped" (dropped t)
