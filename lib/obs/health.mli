(** Recovery-health watchdog.

    Consumes the kernel event stream (crash / restart events) and
    reports per-compartment recovery health: MTTR (mean virtual
    cycles from crash to the matching restart), recovery-success
    ratio, and crash-loop detection over a sliding window of virtual
    time. With a profiler attached it also reports overhead
    percentages — the live analogue of the paper's Table IV. *)

type config = {
  hc_crash_loop_n : int;
      (** Crashes within the window that flag a loop when the
          compartment has no restart budget (default 3). *)
  hc_crash_loop_window : int;
      (** Sliding-window width in virtual cycles (default 2M — the
          kernel's hang-detection horizon). *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t

val observe : t -> Kernel.event -> unit
(** Feed every kernel event; only crash/restart events are consumed,
    so composing with other consumers in one hook is cheap. *)

type status =
  | Healthy        (** Alive, every crash recovered, no loop. *)
  | Degraded       (** Alive but with unrecovered crashes. *)
  | Crash_looping  (** Threshold crashes within the sliding window. *)
  | Failed         (** Not alive at snapshot time. *)

val status_to_string : status -> string

type comp = {
  co_ep : Endpoint.t;
  co_name : string;
  co_policy : string;
  co_alive : bool;
  co_crashes : int;
  co_restarts : int;
  co_recent_crashes : int;       (** Crashes inside the sliding window. *)
  co_crash_loop_threshold : int; (** Restart budget when given, else default. *)
  co_mttr : float;               (** Mean cycles crash -> restart. *)
  co_success_ratio : float;      (** Recovered / crashed, 1.0 when no crashes. *)
  co_overhead_pct : float option;
      (** (instr + undo_log + checkpoint) / user * 100 — window
          instrumentation overhead, Table IV's quantity. Requires a
          profiler. *)
  co_recovery_pct : float option;
      (** (rollback + restart) / user * 100 — cycles spent actually
          recovering. *)
  co_status : status;
}

val snapshot :
  ?profiler:Profiler.t -> ?budget_for:(Endpoint.t -> int option) ->
  t -> Kernel.t -> comp list
(** One row per registered server, in registration order.
    [budget_for] (e.g. [Sysconf.budget_for conf]) supplies per-
    compartment restart budgets reused as crash-loop thresholds: a
    compartment that has burned its whole budget inside one window is
    looping. *)

val render : comp list -> string
(** Health table. *)

val to_json : comp list -> string
(** Deterministic JSON artifact. *)
