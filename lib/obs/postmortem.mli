(** Causal postmortem: root-cause analysis from a journal, without
    re-executing anything.

    For every crash in the recorded stream, walk {e backwards} through
    the rid/parent causal chain to the root request whose handling led
    to the injected fault, and {e forwards} to how recovery resolved it
    (rollback bytes, restart, latency). The report answers the
    questions a kernel developer asks at a crash site: which
    compartment, under which policy, was the recovery window open, how
    much undo-log state was at risk, which request chain got us here,
    and did recovery actually restore service. *)

type crash_report = {
  cr_index : int;           (** Record index of the [E_crash]. *)
  cr_time : int;
  cr_ep : Endpoint.t;
  cr_server : string;       (** Compartment name. *)
  cr_reason : string;
  cr_policy : string;       (** The compartment's recovery policy. *)
  cr_window_open : bool;    (** Recovery window state at the crash. *)
  cr_rid : int;             (** Request being handled (0 = loop/init). *)
  cr_chain : int list;
      (** Causal rid chain from [cr_rid] to the root request,
          innermost first ({!Replay.rid_chain}). *)
  cr_chain_msgs : Kernel.event list;
      (** The [E_msg] delivery for each chain rid that has one, in
          chain order — the request path that reached the fault. *)
  cr_undo_bytes : int;
      (** Undo-log bytes accumulated in the compartment's current
          window at the moment of the crash (0 when the window was
          closed — exactly the state the rollback must restore). *)
  cr_rollback_bytes : int option;
      (** Bytes restored by the recovery rollback, when one ran. *)
  cr_restart : (int * string) option;
      (** Time and policy of the compartment's post-crash [E_restart]. *)
  cr_recovery_latency : int option;
      (** Virtual time from the crash to service restoration (restart
          if one happened, else rollback completion). *)
}

type report = {
  pm_header : Journal.header;
  pm_records : int;
  pm_halt : Kernel.halt option;  (** [None]: journal ends before halt
                                     (e.g. a ring spill). *)
  pm_crashes : crash_report list;  (** In record order. *)
}

val analyze : Journal.header -> Kernel.event array -> report
(** Pure analysis over the decoded journal. *)

val analyze_journal : string -> (report, string) result
(** The same analysis, streamed over encoded journal bytes
    ({!Journal.fold}) without materializing the event array: two
    forward passes, keeping only per-compartment window/recovery state
    plus the rid -> parent map. Byte-identical reports to
    [analyze (read_string ...)] — the e2e tests assert it. *)

val attribution : Journal.header -> crash_report -> string
(** One-sentence root cause: ties the crash to the armed fault
    injection when the crashed compartment matches the header's
    [jh_crash] target, otherwise reports the causal root request. *)

val render : Journal.header -> report -> string
(** Multi-line human-readable postmortem. *)

val to_json : report -> string
(** Deterministic JSON artifact (same journal -> same bytes). *)
