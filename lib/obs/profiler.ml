module Tablefmt = Osiris_util.Tablefmt

type sample = {
  sa_ep : Endpoint.t;
  sa_ts : int;           (* process-local clock when the sample fired *)
  sa_phase : int array;  (* cumulative cycles per phase, Kernel.phase_index order *)
}

(* The counting itself lives in the kernel (per-process slot rows, see
   [Kernel.enable_cycle_counts]); this module is the view over those
   counters plus the optional counter-track sampler, which is the only
   consumer that needs the per-advance event stream. *)
type t = {
  mutable kernel : Kernel.t option;  (* set by [attach]; queries read it *)
  sample_every : int;  (* 0 = sampling off *)
  mutable samples : sample list;  (* newest first *)
  (* Sampler state, indexed by endpoint (grown on demand). *)
  mutable s_tot : int array;
  mutable s_next : int array;
}

let create ?(sample_every = 0) () =
  { kernel = None;
    sample_every;
    samples = [];
    s_tot = [||];
    s_next = [||] }

(* Slots grouped by phase, in registration (= detail-stable) order. *)
let phase_slots =
  let a = Array.make Kernel.n_phases [] in
  List.iter
    (fun s ->
       let pi = Kernel.phase_index (Kernel.slot_phase s) in
       a.(pi) <- s :: a.(pi))
    (List.rev Kernel.all_slots);
  a

let sum_slots f slots = List.fold_left (fun acc s -> acc + f s) 0 slots

let phase_cycles t ep phase =
  match t.kernel with
  | None -> 0
  | Some k ->
    sum_slots (Kernel.slot_cycles k ep) phase_slots.(Kernel.phase_index phase)

let phase_events t ep phase =
  match t.kernel with
  | None -> 0
  | Some k ->
    sum_slots (Kernel.slot_events k ep) phase_slots.(Kernel.phase_index phase)

let proc_cycles t ep =
  match t.kernel with
  | None -> 0
  | Some k -> sum_slots (Kernel.slot_cycles k ep) Kernel.all_slots

let proc_events t ep =
  match t.kernel with
  | None -> 0
  | Some k -> sum_slots (Kernel.slot_events k ep) Kernel.all_slots

(* Every process the kernel knows: servers, then spawned users. *)
let known_endpoints kernel =
  let servers = Kernel.server_endpoints kernel in
  let users = ref [] in
  for i = Kernel.user_count kernel - 1 downto 0 do
    users := (Endpoint.first_user + i) :: !users
  done;
  servers @ !users

let endpoints t =
  match t.kernel with
  | None -> []
  | Some k ->
    List.sort compare
      (List.filter (fun ep -> proc_cycles t ep > 0) (known_endpoints k))

let total_cycles t =
  List.fold_left (fun acc ep -> acc + proc_cycles t ep) 0 (endpoints t)

let total_phase t phase =
  List.fold_left (fun acc ep -> acc + phase_cycles t ep phase) 0 (endpoints t)

let n_records t =
  List.fold_left (fun acc ep -> acc + proc_events t ep) 0 (endpoints t)

let samples t = List.rev t.samples

(* ------------------------------------------------------------------ *)
(* Sampler (cycle-hook consumer; only installed when sampling is on)   *)
(* ------------------------------------------------------------------ *)

let phase_totals t ep =
  Array.init Kernel.n_phases
    (fun pi ->
       match t.kernel with
       | None -> 0
       | Some k -> sum_slots (Kernel.slot_cycles k ep) phase_slots.(pi))

let ensure_sampler t ep =
  if ep >= Array.length t.s_tot then begin
    let n = max (ep + 1) (max 128 (2 * Array.length t.s_tot)) in
    let tot = Array.make n 0 and next = Array.make n t.sample_every in
    Array.blit t.s_tot 0 tot 0 (Array.length t.s_tot);
    Array.blit t.s_next 0 next 0 (Array.length t.s_next);
    t.s_tot <- tot;
    t.s_next <- next
  end

let sample_hook t ep _slot c =
  ensure_sampler t ep;
  let tot = t.s_tot.(ep) + c in
  t.s_tot.(ep) <- tot;
  if tot >= t.s_next.(ep) then begin
    t.s_next.(ep) <- tot + t.sample_every;
    t.samples <-
      { sa_ep = ep; sa_ts = tot; sa_phase = phase_totals t ep } :: t.samples
  end

let attach t kernel =
  t.kernel <- Some kernel;
  Kernel.enable_cycle_counts kernel;
  if t.sample_every > 0 then
    Kernel.set_cycle_hook kernel (Some (sample_hook t))

(* ------------------------------------------------------------------ *)
(* Conservation                                                        *)
(* ------------------------------------------------------------------ *)

let check_conservation _t kernel =
  let errs = ref [] in
  List.iter
    (fun ep ->
       let want = Kernel.proc_vtime kernel ep in
       let got = sum_slots (Kernel.slot_cycles kernel ep) Kernel.all_slots in
       if want <> got then
         errs :=
           Printf.sprintf "%s: clock=%d attributed=%d (drift %+d)"
             (Endpoint.server_name ep) want got (got - want)
           :: !errs)
    (known_endpoints kernel);
  match List.rev !errs with
  | [] -> Ok ()
  | l -> Error (String.concat "; " l)

(* ------------------------------------------------------------------ *)
(* Rows and rendering                                                  *)
(* ------------------------------------------------------------------ *)

(* Non-zero (detail, cycles) pairs of [ep] in phase [pi], sorted by
   detail; slots sharing a (phase, detail) pair are merged. *)
let details_of t ep pi =
  match t.kernel with
  | None -> []
  | Some k ->
    let cells =
      List.filter_map
        (fun s ->
           let c = Kernel.slot_cycles k ep s in
           if c > 0 then Some (Kernel.slot_detail s, c) else None)
        phase_slots.(pi)
    in
    let sorted = List.sort compare cells in
    let rec merge = function
      | (d1, c1) :: (d2, c2) :: rest when String.equal d1 d2 ->
        merge ((d1, c1 + c2) :: rest)
      | x :: rest -> x :: merge rest
      | [] -> []
    in
    merge sorted

(* (endpoint, phase, detail, cycles) rows, deterministically sorted by
   endpoint, then phase index, then detail. *)
let rows t =
  let out = ref [] in
  List.iter
    (fun ep ->
       List.iter
         (fun ph ->
            List.iter
              (fun (d, c) -> out := (ep, ph, d, c) :: !out)
              (details_of t ep (Kernel.phase_index ph)))
         Kernel.all_phases)
    (endpoints t);
  List.rev !out

let report t =
  let eps = endpoints t in
  if eps = [] then ""
  else
    let rows_ =
      List.map
        (fun ep ->
           Endpoint.server_name ep
           :: List.map
                (fun ph -> string_of_int (phase_cycles t ep ph))
                Kernel.all_phases
           @ [ string_of_int (proc_cycles t ep) ])
        eps
    in
    let totals =
      "total"
      :: List.map (fun ph -> string_of_int (total_phase t ph))
           Kernel.all_phases
      @ [ string_of_int (total_cycles t) ]
    in
    Tablefmt.render ~title:"cycle attribution (virtual cycles)"
      ~header:
        ("compartment"
         :: List.map Kernel.phase_to_string Kernel.all_phases
         @ [ "total" ])
      ~align:
        (Tablefmt.Left
         :: List.map (fun _ -> Tablefmt.Right) Kernel.all_phases
         @ [ Tablefmt.Right ])
      (rows_ @ [ totals ])

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"total_cycles\": ";
  Buffer.add_string buf (string_of_int (total_cycles t));
  Buffer.add_string buf ",\n  \"records\": ";
  Buffer.add_string buf (string_of_int (n_records t));
  Buffer.add_string buf ",\n  \"compartments\": [";
  let first_ep = ref true in
  List.iter
    (fun ep ->
       if !first_ep then first_ep := false else Buffer.add_char buf ',';
       Buffer.add_string buf "\n    {\"name\": ";
       Buffer.add_string buf (Chrome_trace.escaped (Endpoint.server_name ep));
       Buffer.add_string buf
         (Printf.sprintf ", \"ep\": %d, \"total\": %d" ep (proc_cycles t ep));
       Buffer.add_string buf ", \"phases\": {";
       let first_ph = ref true in
       List.iter
         (fun ph ->
            if !first_ph then first_ph := false else Buffer.add_string buf ", ";
            Buffer.add_string buf
              (Printf.sprintf "\"%s\": %d" (Kernel.phase_to_string ph)
                 (phase_cycles t ep ph)))
         Kernel.all_phases;
       Buffer.add_string buf "}, \"details\": {";
       let first_det = ref true in
       List.iter
         (fun ph ->
            List.iter
              (fun (d, c) ->
                 if !first_det then first_det := false
                 else Buffer.add_string buf ", ";
                 Buffer.add_string buf
                   (Chrome_trace.escaped
                      (Kernel.phase_to_string ph ^ ";" ^ d));
                 Buffer.add_string buf (Printf.sprintf ": %d" c))
              (details_of t ep (Kernel.phase_index ph)))
         Kernel.all_phases;
       Buffer.add_string buf "}}")
    (endpoints t);
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
