(* Binary journal codec: varint payloads, per-record CRC framing.
   See the .mli for the wire layout. *)

type header = {
  jh_version : int;
  jh_seed : int;
  jh_arch : Kernel.arch;
  jh_spec : string;
  jh_workload : string;
  jh_crash : string;
  jh_crash_count : int;
  jh_cost_fingerprint : int;
}

let version = 1

let magic = "OSIRJNL1"

let header_to_string h =
  Printf.sprintf
    "v%d seed=%d arch=%s spec=%s workload=%s crash=%s/%d costs=%x"
    h.jh_version h.jh_seed
    (match h.jh_arch with Kernel.Microkernel -> "microkernel" | Kernel.Monolithic -> "monolithic")
    h.jh_spec h.jh_workload h.jh_crash h.jh_crash_count h.jh_cost_fingerprint

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320)                     *)
(* ------------------------------------------------------------------ *)

let crc_table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

(* Slicing-by-4 companion tables: t.(k).(i) advances the CRC of byte
   [i] through [k] further zero bytes, letting 4 input bytes fold in
   with 4 independent table loads instead of a 4-long serial chain. *)
let crc_tables =
  let t = Array.make_matrix 4 256 0 in
  t.(0) <- crc_table;
  for k = 1 to 3 do
    for i = 0 to 255 do
      let p = t.(k - 1).(i) in
      t.(k).(i) <- crc_table.(p land 0xff) lxor (p lsr 8)
    done
  done;
  t

let crc32 b ~off ~len =
  let t0 = crc_tables.(0) and t1 = crc_tables.(1)
  and t2 = crc_tables.(2) and t3 = crc_tables.(3) in
  let c = ref 0xFFFFFFFF in
  let i = ref off in
  let stop4 = off + (len land lnot 3) in
  while !i < stop4 do
    let w =
      Char.code (Bytes.unsafe_get b !i)
      lor (Char.code (Bytes.unsafe_get b (!i + 1)) lsl 8)
      lor (Char.code (Bytes.unsafe_get b (!i + 2)) lsl 16)
      lor (Char.code (Bytes.unsafe_get b (!i + 3)) lsl 24)
    in
    let x = !c lxor w in
    c :=
      Array.unsafe_get t3 (x land 0xff)
      lxor Array.unsafe_get t2 ((x lsr 8) land 0xff)
      lxor Array.unsafe_get t1 ((x lsr 16) land 0xff)
      lxor Array.unsafe_get t0 ((x lsr 24) land 0xff);
    i := !i + 4
  done;
  for j = !i to off + len - 1 do
    c :=
      Array.unsafe_get crc_table
        ((!c lxor Char.code (Bytes.unsafe_get b j)) land 0xff)
      lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let crc32_string s ~off ~len = crc32 (Bytes.unsafe_of_string s) ~off ~len

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type sink = S_mem of Buffer.t | S_file of out_channel

type writer = {
  w_header : header;
  sink : sink;
  mutable scratch : Bytes.t;  (* current record's payload *)
  mutable pos : int;
  out : Bytes.t;              (* staging buffer for framed records *)
  mutable opos : int;
  frame : Bytes.t;            (* varint(len) spill for oversized records *)
  mutable n_records : int;
  mutable n_bytes : int;
  mutable closed : bool;
  (* Delta-coding state: [time] is monotone and [rid] highly repetitive
     across consecutive events, so both are encoded as zigzag deltas
     against the previous record — usually one byte each. The reader
     mirrors this state while iterating. *)
  mutable last_time : int;
  mutable last_rid : int;
  (* Raw capture log ([Kernel.capture]): the per-event hot path — the
     kernel's emission sites, or [write] below — appends plain scalars
     here (and string pointers to [cap_strs] — no copy, the kernel's
     strings are immutable) and returns. Varint encoding, framing and
     CRCs all happen in [transcode], which sweeps the log in one batch
     at a drain boundary: when the log reaches its cap (amortized, for
     long runs), at [close], or when an accessor needs exact counts.
     Deferring the codec off the emission path is what holds the
     attached-recording overhead gate: per event the run pays a
     handful of int stores, not a wire encoder. *)
  w_cap : Kernel.capture;
}

(* Deferred per-record CRCs: the direct encode path leaves each
   record's 4 CRC bytes unfilled and this pass patches them just
   before the staging buffer is emitted. Touching ~4600 staged records
   in one sequential sweep keeps the 8 KiB slicing tables L1-hot for
   the whole batch. The sweep re-parses the staging buffer, which only
   ever holds whole records: every drain happens at a record boundary.
   Recomputing a CRC a slow path already stored (header, oversized
   records) is idempotent. Tail-recursive on int arguments — the
   encode path must stay allocation-free. *)
let[@inline] patch_crc w p len =
  let crc = crc32 w.out ~off:p ~len in
  let q = p + len in
  Bytes.unsafe_set w.out q (Char.unsafe_chr (crc land 0xff));
  Bytes.unsafe_set w.out (q + 1) (Char.unsafe_chr ((crc lsr 8) land 0xff));
  Bytes.unsafe_set w.out (q + 2) (Char.unsafe_chr ((crc lsr 16) land 0xff));
  Bytes.unsafe_set w.out (q + 3) (Char.unsafe_chr ((crc lsr 24) land 0xff));
  q + 4

let rec fill_crcs w p =
  if p < w.opos then begin
    (* Staged frame lengths fit 3 varint bytes (records are smaller
       than the staging buffer, < 2^21). *)
    let b0 = Char.code (Bytes.unsafe_get w.out p) in
    if b0 < 0x80 then fill_crcs w (patch_crc w (p + 1) b0)
    else begin
      let b1 = Char.code (Bytes.unsafe_get w.out (p + 1)) in
      let acc = (b0 land 0x7f) lor ((b1 land 0x7f) lsl 7) in
      if b1 < 0x80 then fill_crcs w (patch_crc w (p + 2) acc)
      else
        let b2 = Char.code (Bytes.unsafe_get w.out (p + 2)) in
        fill_crcs w (patch_crc w (p + 3) (acc lor ((b2 land 0x7f) lsl 14)))
    end
  end

(* Emit the staged framed records in one channel/buffer operation.
   Channel writes take a per-channel lock in OCaml 5; pay it once per
   ~64 KiB instead of several times per record. *)
let drain w =
  if w.opos > 0 then begin
    fill_crcs w 0;
    (match w.sink with
     | S_mem buf -> Buffer.add_subbytes buf w.out 0 w.opos
     | S_file oc -> output oc w.out 0 w.opos);
    w.opos <- 0
  end

let ensure w need =
  let cap = Bytes.length w.scratch in
  if w.pos + need > cap then begin
    let cap' = max (2 * cap) (w.pos + need) in
    let b = Bytes.create cap' in
    Bytes.blit w.scratch 0 b 0 w.pos;
    w.scratch <- b
  end

(* Zigzag varint: small magnitudes of either sign stay short; fields
   are almost always non-negative, where zigzag costs one bit. *)
let[@inline] zigzag v = (v lsl 1) lxor (v asr 62)

let[@inline] unzigzag v = (v lsr 1) lxor (- (v land 1))

let put_int w v =
  ensure w 10;
  let z = zigzag v in
  (* Single-byte fast path: endpoints, tags, booleans, SEEP classes
     and most rids fit in 7 bits — the overwhelming majority of fields
     on the hot path. *)
  if z land (lnot 0x7f) = 0 then begin
    Bytes.unsafe_set w.scratch w.pos (Char.unsafe_chr z);
    w.pos <- w.pos + 1
  end
  else begin
    let v = ref z in
    let continue = ref true in
    while !continue do
      let b = !v land 0x7f in
      v := !v lsr 7;
      if !v = 0 then begin
        Bytes.unsafe_set w.scratch w.pos (Char.unsafe_chr b);
        w.pos <- w.pos + 1;
        continue := false
      end
      else begin
        Bytes.unsafe_set w.scratch w.pos (Char.unsafe_chr (b lor 0x80));
        w.pos <- w.pos + 1
      end
    done
  end

let put_str w s =
  let len = String.length s in
  put_int w len;
  ensure w len;
  Bytes.blit_string s 0 w.scratch w.pos len;
  w.pos <- w.pos + len

(* Stage varint(len) + payload + CRC32(payload, 4 bytes LE) into the
   output buffer and reset the scratch. Everything happens in reused
   fixed buffers, so a flush allocates nothing. *)
let flush_record w =
  let len = w.pos in
  let need = len + 14 (* worst-case frame varint (10) + CRC (4) *) in
  if w.opos + need > Bytes.length w.out then drain w;
  let crc = crc32 w.scratch ~off:0 ~len in
  if need <= Bytes.length w.out then begin
    let p = ref w.opos in
    (* frame head: raw varint of the payload length *)
    let v = ref len in
    let continue = ref true in
    while !continue do
      let b = !v land 0x7f in
      v := !v lsr 7;
      if !v = 0 then begin
        Bytes.unsafe_set w.out !p (Char.unsafe_chr b);
        incr p;
        continue := false
      end
      else begin
        Bytes.unsafe_set w.out !p (Char.unsafe_chr (b lor 0x80));
        incr p
      end
    done;
    (* Manual copy for typical (tiny) records: Bytes.blit is a C call
       whose fixed cost dwarfs moving a dozen bytes. *)
    if len <= 32 then
      for i = 0 to len - 1 do
        Bytes.unsafe_set w.out (!p + i) (Bytes.unsafe_get w.scratch i)
      done
    else Bytes.blit w.scratch 0 w.out !p len;
    p := !p + len;
    Bytes.unsafe_set w.out !p (Char.unsafe_chr (crc land 0xff));
    Bytes.unsafe_set w.out (!p + 1) (Char.unsafe_chr ((crc lsr 8) land 0xff));
    Bytes.unsafe_set w.out (!p + 2) (Char.unsafe_chr ((crc lsr 16) land 0xff));
    Bytes.unsafe_set w.out (!p + 3) (Char.unsafe_chr ((crc lsr 24) land 0xff));
    w.n_bytes <- w.n_bytes + (!p + 4 - w.opos);
    w.opos <- !p + 4
  end
  else begin
    (* Record bigger than the staging buffer (giant string payload):
       emit it directly — rare enough that per-call channel cost is
       irrelevant. [drain] above already emptied the staging buffer,
       so ordering is preserved. *)
    let fp = ref 0 in
    let v = ref len in
    let continue = ref true in
    while !continue do
      let b = !v land 0x7f in
      v := !v lsr 7;
      if !v = 0 then begin
        Bytes.unsafe_set w.frame !fp (Char.unsafe_chr b);
        incr fp;
        continue := false
      end
      else begin
        Bytes.unsafe_set w.frame !fp (Char.unsafe_chr (b lor 0x80));
        incr fp
      end
    done;
    Bytes.set w.frame (!fp) (Char.unsafe_chr (crc land 0xff));
    Bytes.set w.frame (!fp + 1) (Char.unsafe_chr ((crc lsr 8) land 0xff));
    Bytes.set w.frame (!fp + 2) (Char.unsafe_chr ((crc lsr 16) land 0xff));
    Bytes.set w.frame (!fp + 3) (Char.unsafe_chr ((crc lsr 24) land 0xff));
    (match w.sink with
     | S_mem buf ->
       Buffer.add_subbytes buf w.frame 0 !fp;
       Buffer.add_subbytes buf w.scratch 0 len;
       Buffer.add_subbytes buf w.frame !fp 4
     | S_file oc ->
       output oc w.frame 0 !fp;
       output oc w.scratch 0 len;
       output oc w.frame !fp 4);
    w.n_bytes <- w.n_bytes + !fp + len + 4
  end;
  w.n_records <- w.n_records + 1;
  w.pos <- 0

let put_header w h =
  put_int w h.jh_version;
  put_int w h.jh_seed;
  put_int w (match h.jh_arch with Kernel.Microkernel -> 0 | Kernel.Monolithic -> 1);
  put_int w h.jh_crash_count;
  put_int w h.jh_cost_fingerprint;
  put_str w h.jh_spec;
  put_str w h.jh_workload;
  put_str w h.jh_crash;
  flush_record w;
  (* The header frame is not an event record. *)
  w.n_records <- w.n_records - 1

(* Wire tags: event-constructor declaration order. *)

(* Direct-encode fast path: the payload is framed straight into the
   staging buffer, so each byte is written exactly once and the CRC
   runs over cache-hot memory with no scratch->staging copy. Two bytes
   are reserved up front for the record length and patched afterwards
   as a *padded* LEB128 varint (a redundant continuation byte is still
   a valid varint; decoders do not require canonical form). *)

let dput_slow w z =
  let v = ref z in
  let continue = ref true in
  while !continue do
    let b = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Bytes.unsafe_set w.out w.opos (Char.unsafe_chr b);
      w.opos <- w.opos + 1;
      continue := false
    end
    else begin
      Bytes.unsafe_set w.out w.opos (Char.unsafe_chr (b lor 0x80));
      w.opos <- w.opos + 1
    end
  done

let[@inline] dput w v =
  let z = zigzag v in
  if z land (lnot 0x7f) = 0 then begin
    Bytes.unsafe_set w.out w.opos (Char.unsafe_chr z);
    w.opos <- w.opos + 1
  end
  else dput_slow w z

(* Packed lead byte: wire tag in the low 4 bits, constructor-specific
   flag bits above, always < 0x80 so it doubles as a 1-byte varint. *)
let[@inline] dbyte w b =
  Bytes.unsafe_set w.out w.opos (Char.unsafe_chr b);
  w.opos <- w.opos + 1

let put_byte w b =
  ensure w 1;
  Bytes.unsafe_set w.scratch w.pos (Char.unsafe_chr b);
  w.pos <- w.pos + 1

let dstr w s =
  let len = String.length s in
  dput w len;
  Bytes.blit_string s 0 w.out w.opos len;
  w.opos <- w.opos + len

(* Payload headroom the fixed fields of any event can need (13 varints
   at 10 bytes each, rounded up), beyond its strings' bytes. *)
let direct_slack = 140

let[@inline] begin_direct w extra =
  (* payloads stay under 2^14, so two length bytes always suffice *)
  if w.opos + extra + direct_slack > Bytes.length w.out then drain w;
  let start = w.opos in
  w.opos <- start + 2;
  start

let[@inline] finish_direct w start =
  let len = w.opos - start - 2 in
  Bytes.unsafe_set w.out start (Char.unsafe_chr (0x80 lor (len land 0x7f)));
  Bytes.unsafe_set w.out (start + 1) (Char.unsafe_chr (len lsr 7));
  (* the 4 CRC bytes stay unfilled until [drain]'s batched sweep *)
  w.opos <- w.opos + 4;
  w.n_bytes <- w.n_bytes + len + 6;
  w.n_records <- w.n_records + 1

let[@inline] dtime w time =
  dput w (time - w.last_time);
  w.last_time <- time

let[@inline] drid w rid =
  dput w (rid - w.last_rid);
  w.last_rid <- rid

let[@inline] cls_code = function
  | Seep.Read_only -> 0
  | Seep.State_modifying -> 1
  | Seep.Reply -> 2

(* One encoder per constructor, the targets of [transcode]'s batched
   sweep over the raw capture log. Tags and SEEP classes arrive as the
   integer codes the log stores ([Message.Tag.to_index], [cls_code]).
   Only [transcode] (and [put_header]'s scratch path) reaches these. *)

let enc_msg w ~time ~src ~dst ~tagi ~call ~rid ~parent ~clsc =
  let start = begin_direct w 0 in
  dbyte w (0 lor (if call then 0x10 else 0) lor (clsc lsl 5));
  dtime w time;
  dput w src;
  dput w dst;
  dput w tagi;
  drid w rid;
  (* parents are causally near their rid (0 only at roots) *)
  dput w (rid - parent);
  finish_direct w start

let enc_reply w ~time ~src ~dst ~tagi ~rid =
  let start = begin_direct w 0 in
  dbyte w 1;
  dtime w time;
  dput w src;
  dput w dst;
  dput w tagi;
  drid w rid;
  finish_direct w start

let enc_window_open w ~time ~ep ~rid =
  let start = begin_direct w 0 in
  dbyte w 2; dtime w time; dput w ep; drid w rid;
  finish_direct w start

let enc_window_close w ~time ~ep ~rid ~policy =
  let start = begin_direct w 0 in
  dbyte w (3 lor (if policy then 0x10 else 0));
  dtime w time; dput w ep; drid w rid;
  finish_direct w start

let enc_checkpoint w ~time ~ep ~rid ~cycles =
  let start = begin_direct w 0 in
  dbyte w 4; dtime w time; dput w ep; drid w rid; dput w cycles;
  finish_direct w start

let enc_store_logged w ~time ~ep ~rid ~bytes =
  let start = begin_direct w 0 in
  dbyte w 5; dtime w time; dput w ep; drid w rid; dput w bytes;
  finish_direct w start

let enc_kcall w ~time ~ep ~rid ~kc =
  let extra = String.length kc in
  if extra <= 16_000 then begin
    let start = begin_direct w extra in
    dbyte w 6; dtime w time; dput w ep; drid w rid; dstr w kc;
    finish_direct w start
  end
  else begin
    (* Giant string payload: take the scratch-buffered slow path,
       whose oversized-record branch can bypass the staging buffer
       entirely. Same for the other string-bearing encoders below. *)
    put_byte w 6;
    put_int w (time - w.last_time); w.last_time <- time;
    put_int w ep;
    put_int w (rid - w.last_rid); w.last_rid <- rid;
    put_str w kc;
    flush_record w
  end

let enc_crash w ~time ~ep ~reason ~window_open ~rid ~policy =
  let extra = String.length reason + String.length policy in
  if extra <= 16_000 then begin
    let start = begin_direct w extra in
    dbyte w (7 lor (if window_open then 0x10 else 0));
    dtime w time; dput w ep; drid w rid;
    dstr w reason; dstr w policy;
    finish_direct w start
  end
  else begin
    put_byte w (7 lor (if window_open then 0x10 else 0));
    put_int w (time - w.last_time); w.last_time <- time;
    put_int w ep;
    put_int w (rid - w.last_rid); w.last_rid <- rid;
    put_str w reason; put_str w policy;
    flush_record w
  end

let enc_hang_detected w ~time ~ep =
  let start = begin_direct w 0 in
  dbyte w 8; dtime w time; dput w ep;
  finish_direct w start

let enc_rollback_begin w ~time ~ep ~rid =
  let start = begin_direct w 0 in
  dbyte w 9; dtime w time; dput w ep; drid w rid;
  finish_direct w start

let enc_rollback_end w ~time ~ep ~rid ~bytes =
  let start = begin_direct w 0 in
  dbyte w 10; dtime w time; dput w ep; drid w rid; dput w bytes;
  finish_direct w start

let enc_restart w ~time ~ep ~rid ~policy =
  let extra = String.length policy in
  if extra <= 16_000 then begin
    let start = begin_direct w extra in
    dbyte w 11; dtime w time; dput w ep; drid w rid; dstr w policy;
    finish_direct w start
  end
  else begin
    put_byte w 11;
    put_int w (time - w.last_time); w.last_time <- time;
    put_int w ep;
    put_int w (rid - w.last_rid); w.last_rid <- rid;
    put_str w policy;
    flush_record w
  end

(* [time] joins the shared delta chain even though spawn arrivals can
   sit ahead of emission order (open-loop futures): the zigzag coding
   absorbs the negative deltas the next record then pays back. *)
let enc_spawn w ~time ~ep ~parent =
  let start = begin_direct w 0 in
  dbyte w 13; dtime w time; dput w ep; dput w parent;
  finish_direct w start

let[@inline] halt_kind = function
  | Kernel.H_completed _ -> 0
  | Kernel.H_shutdown _ -> 1
  | Kernel.H_panic _ -> 2
  | Kernel.H_hang -> 3

(* Halt arrives pre-decomposed (kind code, exit status, reason) so the
   transcode loop never reconstructs a [Kernel.halt] value — the
   encode sweep must allocate nothing. [reason] is "" except for
   shutdown/panic (kinds 1 and 2), the only kinds that encode it. *)
let enc_halt w ~time ~hkind ~status ~reason =
  let extra = String.length reason in
  if extra <= 16_000 then begin
    let start = begin_direct w extra in
    dbyte w (12 lor (hkind lsl 4));
    dtime w time;
    (match hkind with
     | 0 -> dput w status
     | 1 | 2 -> dstr w reason
     | _ -> ());
    finish_direct w start
  end
  else begin
    put_byte w (12 lor (hkind lsl 4));
    put_int w (time - w.last_time); w.last_time <- time;
    (match hkind with
     | 0 -> put_int w status
     | 1 | 2 -> put_str w reason
     | _ -> ());
    flush_record w
  end

(* ---- raw capture log -> wire format --------------------------------

   The entry layout lives in [w.w_cap], a [Kernel.capture]: the
   kernel's own emission sites append entries with no closure call
   (see the layout table in kernel.mli), and [write] below appends
   the identical entries from event values — so a journal recorded
   through the kernel capture is byte-identical to one written from
   the equivalent event stream. *)

(* Sweep the raw log through the encoders in one batch. Strings are
   cleared afterwards so the log never pins kernel strings past their
   encode. Everything here runs over warm fixed buffers and allocates
   nothing — it is safe (and cheap) to call at any entry boundary. *)
let transcode w =
  let c = w.w_cap in
  if not w.closed && c.Kernel.cap_pos > 0 then begin
    let a = c.Kernel.cap_buf and n = c.Kernel.cap_pos in
    let strs = c.Kernel.cap_strs in
    let i = ref 0 and si = ref 0 in
    while !i < n do
      let p = !i in
      (match Array.unsafe_get a p with
       | 0 ->
         enc_msg w ~time:(Array.unsafe_get a (p + 1))
           ~src:(Array.unsafe_get a (p + 2))
           ~dst:(Array.unsafe_get a (p + 3))
           ~tagi:(Array.unsafe_get a (p + 4))
           ~call:(Array.unsafe_get a (p + 5) <> 0)
           ~rid:(Array.unsafe_get a (p + 6))
           ~parent:(Array.unsafe_get a (p + 7))
           ~clsc:(Array.unsafe_get a (p + 8));
         i := p + 9
       | 1 ->
         enc_reply w ~time:(Array.unsafe_get a (p + 1))
           ~src:(Array.unsafe_get a (p + 2))
           ~dst:(Array.unsafe_get a (p + 3))
           ~tagi:(Array.unsafe_get a (p + 4))
           ~rid:(Array.unsafe_get a (p + 5));
         i := p + 6
       | 2 ->
         enc_window_open w ~time:(Array.unsafe_get a (p + 1))
           ~ep:(Array.unsafe_get a (p + 2)) ~rid:(Array.unsafe_get a (p + 3));
         i := p + 4
       | 3 ->
         enc_window_close w ~time:(Array.unsafe_get a (p + 1))
           ~ep:(Array.unsafe_get a (p + 2)) ~rid:(Array.unsafe_get a (p + 3))
           ~policy:(Array.unsafe_get a (p + 4) <> 0);
         i := p + 5
       | 4 ->
         enc_checkpoint w ~time:(Array.unsafe_get a (p + 1))
           ~ep:(Array.unsafe_get a (p + 2)) ~rid:(Array.unsafe_get a (p + 3))
           ~cycles:(Array.unsafe_get a (p + 4));
         i := p + 5
       | 5 ->
         enc_store_logged w ~time:(Array.unsafe_get a (p + 1))
           ~ep:(Array.unsafe_get a (p + 2)) ~rid:(Array.unsafe_get a (p + 3))
           ~bytes:(Array.unsafe_get a (p + 4));
         i := p + 5
       | 6 ->
         let kc = Array.unsafe_get strs !si in
         incr si;
         enc_kcall w ~time:(Array.unsafe_get a (p + 1))
           ~ep:(Array.unsafe_get a (p + 2)) ~rid:(Array.unsafe_get a (p + 3))
           ~kc;
         i := p + 4
       | 7 ->
         let reason = Array.unsafe_get strs !si in
         let policy = Array.unsafe_get strs (!si + 1) in
         si := !si + 2;
         enc_crash w ~time:(Array.unsafe_get a (p + 1))
           ~ep:(Array.unsafe_get a (p + 2))
           ~window_open:(Array.unsafe_get a (p + 3) <> 0)
           ~rid:(Array.unsafe_get a (p + 4)) ~reason ~policy;
         i := p + 5
       | 8 ->
         enc_hang_detected w ~time:(Array.unsafe_get a (p + 1))
           ~ep:(Array.unsafe_get a (p + 2));
         i := p + 3
       | 9 ->
         enc_rollback_begin w ~time:(Array.unsafe_get a (p + 1))
           ~ep:(Array.unsafe_get a (p + 2)) ~rid:(Array.unsafe_get a (p + 3));
         i := p + 4
       | 10 ->
         enc_rollback_end w ~time:(Array.unsafe_get a (p + 1))
           ~ep:(Array.unsafe_get a (p + 2)) ~rid:(Array.unsafe_get a (p + 3))
           ~bytes:(Array.unsafe_get a (p + 4));
         i := p + 5
       | 11 ->
         let policy = Array.unsafe_get strs !si in
         incr si;
         enc_restart w ~time:(Array.unsafe_get a (p + 1))
           ~ep:(Array.unsafe_get a (p + 2)) ~rid:(Array.unsafe_get a (p + 3))
           ~policy;
         i := p + 4
       | 12 ->
         let hkind = Array.unsafe_get a (p + 2) in
         let reason =
           if hkind = 1 || hkind = 2 then begin
             let s = Array.unsafe_get strs !si in
             incr si;
             s
           end
           else ""
         in
         enc_halt w ~time:(Array.unsafe_get a (p + 1)) ~hkind
           ~status:(Array.unsafe_get a (p + 3)) ~reason;
         i := p + 4
       | 13 ->
         enc_spawn w ~time:(Array.unsafe_get a (p + 1))
           ~ep:(Array.unsafe_get a (p + 2))
           ~parent:(Array.unsafe_get a (p + 3));
         i := p + 4
       | k -> invalid_arg (Printf.sprintf "Journal: corrupt raw log kind %d" k))
    done;
    for k = 0 to c.Kernel.cap_spos - 1 do
      Array.unsafe_set strs k ""
    done;
    c.Kernel.cap_pos <- 0;
    c.Kernel.cap_spos <- 0
  end

(* Growth policy: double up to a cap, then transcode in place — the
   raw log is a fixed memory budget, not an unbounded spool. A run
   longer than the cap pays the encode sweep incrementally (amortized
   over ~58k events per sweep); shorter runs defer every encode byte
   to [close]. *)
let raw_cap_ints = 1 lsl 19 (* 4 MiB *)

(* Pointer stash, not a copy: entries are the kernel's interned kcall /
   policy / reason constants, so a deep stash costs one word each. It
   is sized to run out no earlier than the int log (strings appear at
   most once per ~4-slot entry). *)
let str_cap = 1 lsl 17

(* The capture's drain: restore the room contract (>= 16 buffer slots,
   >= 2 string slots free) by growing up to the caps, then by encoding
   the log away. The kernel invokes this from its append sites; the
   [write] path below funnels through it too. *)
let cap_ensure w =
  let c = w.w_cap in
  if c.Kernel.cap_pos + 16 > Array.length c.Kernel.cap_buf then begin
    if Array.length c.Kernel.cap_buf >= raw_cap_ints then transcode w
    else begin
      let a = Array.make (2 * Array.length c.Kernel.cap_buf) 0 in
      Array.blit c.Kernel.cap_buf 0 a 0 c.Kernel.cap_pos;
      c.Kernel.cap_buf <- a
    end
  end;
  if c.Kernel.cap_spos + 2 > Array.length c.Kernel.cap_strs then begin
    if Array.length c.Kernel.cap_strs >= str_cap then transcode w
    else begin
      let a = Array.make (2 * Array.length c.Kernel.cap_strs) "" in
      Array.blit c.Kernel.cap_strs 0 a 0 c.Kernel.cap_spos;
      c.Kernel.cap_strs <- a
    end
  end

let make_writer sink header =
  let w =
    { w_header = header;
      sink;
      scratch = Bytes.create 256;
      pos = 0;
      out = Bytes.create 65536;
      opos = 0;
      frame = Bytes.create 14;
      n_records = 0;
      n_bytes = 0;
      closed = false;
      last_time = 0;
      last_rid = 0;
      w_cap =
        { Kernel.cap_buf = Array.make 8192 0;
          cap_pos = 0;
          cap_strs = Array.make 64 "";
          cap_spos = 0;
          cap_drain = (fun () -> ()) } }
  in
  w.w_cap.Kernel.cap_drain <- (fun () -> cap_ensure w);
  (match sink with
   | S_mem buf -> Buffer.add_string buf magic
   | S_file oc -> output_string oc magic);
  w.n_bytes <- String.length magic;
  put_header w header;
  w

let to_file ~path header = make_writer (S_file (open_out_bin path)) header

let to_memory header = make_writer (S_mem (Buffer.create 4096)) header

(* Per-event appends for the event-value path ([write]): the same
   entries the kernel's capture sites lay down, so both paths produce
   byte-identical journals for the same logical event stream. *)

let[@inline] room w ni ns =
  let c = w.w_cap in
  if c.Kernel.cap_pos + ni > Array.length c.Kernel.cap_buf
     || (ns > 0 && c.Kernel.cap_spos + ns > Array.length c.Kernel.cap_strs)
  then cap_ensure w

let[@inline] push_str w s =
  let c = w.w_cap in
  Array.unsafe_set c.Kernel.cap_strs c.Kernel.cap_spos s;
  c.Kernel.cap_spos <- c.Kernel.cap_spos + 1

let[@inline] app_msg w ~time ~src ~dst ~tagi ~call ~rid ~parent ~clsc =
  room w 9 0;
  let c = w.w_cap in
  let a = c.Kernel.cap_buf and p = c.Kernel.cap_pos in
  Array.unsafe_set a p 0;
  Array.unsafe_set a (p + 1) time;
  Array.unsafe_set a (p + 2) src;
  Array.unsafe_set a (p + 3) dst;
  Array.unsafe_set a (p + 4) tagi;
  Array.unsafe_set a (p + 5) (if call then 1 else 0);
  Array.unsafe_set a (p + 6) rid;
  Array.unsafe_set a (p + 7) parent;
  Array.unsafe_set a (p + 8) clsc;
  c.Kernel.cap_pos <- p + 9

let[@inline] app_reply w ~time ~src ~dst ~tagi ~rid =
  room w 6 0;
  let c = w.w_cap in
  let a = c.Kernel.cap_buf and p = c.Kernel.cap_pos in
  Array.unsafe_set a p 1;
  Array.unsafe_set a (p + 1) time;
  Array.unsafe_set a (p + 2) src;
  Array.unsafe_set a (p + 3) dst;
  Array.unsafe_set a (p + 4) tagi;
  Array.unsafe_set a (p + 5) rid;
  c.Kernel.cap_pos <- p + 6

let[@inline] app3 w kind ~time ~ep =
  room w 3 0;
  let c = w.w_cap in
  let a = c.Kernel.cap_buf and p = c.Kernel.cap_pos in
  Array.unsafe_set a p kind;
  Array.unsafe_set a (p + 1) time;
  Array.unsafe_set a (p + 2) ep;
  c.Kernel.cap_pos <- p + 3

let[@inline] app4 w kind ~time ~ep ~rid =
  room w 4 0;
  let c = w.w_cap in
  let a = c.Kernel.cap_buf and p = c.Kernel.cap_pos in
  Array.unsafe_set a p kind;
  Array.unsafe_set a (p + 1) time;
  Array.unsafe_set a (p + 2) ep;
  Array.unsafe_set a (p + 3) rid;
  c.Kernel.cap_pos <- p + 4

let[@inline] app5 w kind ~time ~ep ~rid ~x =
  room w 5 0;
  let c = w.w_cap in
  let a = c.Kernel.cap_buf and p = c.Kernel.cap_pos in
  Array.unsafe_set a p kind;
  Array.unsafe_set a (p + 1) time;
  Array.unsafe_set a (p + 2) ep;
  Array.unsafe_set a (p + 3) rid;
  Array.unsafe_set a (p + 4) x;
  c.Kernel.cap_pos <- p + 5

let[@inline] app_str4 w kind ~time ~ep ~rid ~s =
  room w 4 1;
  let c = w.w_cap in
  let a = c.Kernel.cap_buf and p = c.Kernel.cap_pos in
  Array.unsafe_set a p kind;
  Array.unsafe_set a (p + 1) time;
  Array.unsafe_set a (p + 2) ep;
  Array.unsafe_set a (p + 3) rid;
  c.Kernel.cap_pos <- p + 4;
  push_str w s

let[@inline] app_crash w ~time ~ep ~reason ~window_open ~rid ~policy =
  room w 5 2;
  let c = w.w_cap in
  let a = c.Kernel.cap_buf and p = c.Kernel.cap_pos in
  Array.unsafe_set a p 7;
  Array.unsafe_set a (p + 1) time;
  Array.unsafe_set a (p + 2) ep;
  Array.unsafe_set a (p + 3) (if window_open then 1 else 0);
  Array.unsafe_set a (p + 4) rid;
  c.Kernel.cap_pos <- p + 5;
  push_str w reason;
  push_str w policy

let[@inline] app_halt w ~time ~halt =
  let hkind = halt_kind halt in
  (match halt with
   | Kernel.H_shutdown s | Kernel.H_panic s ->
     room w 4 1;
     push_str w s
   | Kernel.H_completed _ | Kernel.H_hang -> room w 4 0);
  let c = w.w_cap in
  let a = c.Kernel.cap_buf and p = c.Kernel.cap_pos in
  Array.unsafe_set a p 12;
  Array.unsafe_set a (p + 1) time;
  Array.unsafe_set a (p + 2) hkind;
  Array.unsafe_set a (p + 3)
    (match halt with Kernel.H_completed status -> status | _ -> 0);
  c.Kernel.cap_pos <- p + 4

let write w ev =
  if not w.closed then
    match ev with
    | Kernel.E_msg { time; src; dst; tag; call; rid; parent; cls } ->
      app_msg w ~time ~src ~dst ~tagi:(Message.Tag.to_index tag) ~call ~rid
        ~parent ~clsc:(cls_code cls)
    | Kernel.E_reply { time; src; dst; tag; rid } ->
      app_reply w ~time ~src ~dst ~tagi:(Message.Tag.to_index tag) ~rid
    | Kernel.E_window_open { time; ep; rid } -> app4 w 2 ~time ~ep ~rid
    | Kernel.E_window_close { time; ep; rid; policy } ->
      app5 w 3 ~time ~ep ~rid ~x:(if policy then 1 else 0)
    | Kernel.E_checkpoint { time; ep; rid; cycles } ->
      app5 w 4 ~time ~ep ~rid ~x:cycles
    | Kernel.E_store_logged { time; ep; rid; bytes } ->
      app5 w 5 ~time ~ep ~rid ~x:bytes
    | Kernel.E_kcall { time; ep; rid; kc } -> app_str4 w 6 ~time ~ep ~rid ~s:kc
    | Kernel.E_crash { time; ep; reason; window_open; rid; policy } ->
      app_crash w ~time ~ep ~reason ~window_open ~rid ~policy
    | Kernel.E_hang_detected { time; ep } -> app3 w 8 ~time ~ep
    | Kernel.E_rollback_begin { time; ep; rid } -> app4 w 9 ~time ~ep ~rid
    | Kernel.E_rollback_end { time; ep; rid; bytes } ->
      app5 w 10 ~time ~ep ~rid ~x:bytes
    | Kernel.E_restart { time; ep; rid; policy } ->
      app_str4 w 11 ~time ~ep ~rid ~s:policy
    | Kernel.E_halt { time; halt } -> app_halt w ~time ~halt
    | Kernel.E_spawn { time; ep; parent } -> app4 w 13 ~time ~ep ~rid:parent

(* The kernel-side tap: hand the run's [Kernel.capture] to
   [Kernel.set_capture] and the emission sites append the same entries
   [write] lays down, with no closure call per event — [write w ev]
   and the capture path produce byte-identical journals for the same
   logical event stream. *)
let capture w = w.w_cap

let close w =
  if not w.closed then begin
    transcode w;
    drain w;
    w.closed <- true;
    (* A capture left installed on a live kernel after close appends
       into a log nothing will ever encode; keep it from growing
       unboundedly by draining it to the floor. *)
    let c = w.w_cap in
    c.Kernel.cap_drain <-
      (fun () ->
         c.Kernel.cap_pos <- 0;
         c.Kernel.cap_spos <- 0);
    match w.sink with S_file oc -> close_out oc | S_mem _ -> ()
  end

let contents w =
  transcode w;
  drain w;
  match w.sink with
  | S_mem buf -> Buffer.contents buf
  | S_file _ -> invalid_arg "Journal.contents: file writer"

(* Both counters force the pending encode sweep so they are exact at
   any point, not just after [close]. *)
let records_written w = transcode w; w.n_records
let bytes_written w = transcode w; w.n_bytes

let of_events header events =
  let w = to_memory header in
  List.iter (write w) events;
  close w;
  contents w

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

type cursor = { src : string; mutable rpos : int; mutable limit : int }

let get_byte c =
  if c.rpos >= c.limit then bad "truncated varint";
  let b = Char.code c.src.[c.rpos] in
  c.rpos <- c.rpos + 1;
  b

(* Continuation bytes past the first; tail-recursive so decode
   allocates nothing (a [ref]-based loop would box three cells per
   varint without flambda — measurable on the index-build hot path). *)
let rec varint_rest c v shift =
  if shift > 63 then bad "varint too long";
  let b = get_byte c in
  let v = v lor ((b land 0x7f) lsl shift) in
  if b land 0x80 = 0 then v else varint_rest c v (shift + 7)

(* Single-byte fast path first: endpoints, tags, flags and most deltas
   fit in 7 bits — the same asymmetry [put_int]'s encoder fast path
   exploits. *)
let[@inline] get_int c =
  let b = get_byte c in
  if b land 0x80 = 0 then unzigzag b
  else unzigzag (varint_rest c (b land 0x7f) 7)

(* Record lengths are framed as raw (non-zigzag) varints — they are
   never negative, and the frame writer in [flush_record] emits them
   raw. *)
let[@inline] get_uint c =
  let b = get_byte c in
  if b land 0x80 = 0 then b else varint_rest c (b land 0x7f) 7

let get_str c =
  let len = get_int c in
  if len < 0 || c.rpos + len > c.limit then bad "truncated string";
  let s = String.sub c.src c.rpos len in
  c.rpos <- c.rpos + len;
  s

let get_tag c =
  let i = get_int c in
  match Message.Tag.of_index i with
  | Some tag -> tag
  | None -> bad "unknown message tag %d" i

let cls_of_code = function
  | 0 -> Seep.Read_only
  | 1 -> Seep.State_modifying
  | 2 -> Seep.Reply
  | n -> bad "unknown SEEP class %d" n

(* Mirror of the writer's delta-coding state: [time] and [rid] are
   stored as zigzag deltas against the previous record, [parent] as an
   offset below the record's own rid. *)
type delta = { mutable d_time : int; mutable d_rid : int }

let[@inline] get_time st c =
  let time = st.d_time + get_int c in
  st.d_time <- time;
  time

let[@inline] get_rid st c =
  let rid = st.d_rid + get_int c in
  st.d_rid <- rid;
  rid

let get_ev st c : Kernel.event =
  let b0 = get_byte c in
  if b0 land 0x80 <> 0 then bad "bad lead byte %#x" b0;
  match b0 land 0xf with
  | 0 ->
    let call = b0 land 0x10 <> 0 in
    let cls = cls_of_code (b0 lsr 5) in
    let time = get_time st c in
    let src = get_int c in
    let dst = get_int c in
    let tag = get_tag c in
    let rid = get_rid st c in
    let parent = rid - get_int c in
    Kernel.E_msg { time; src; dst; tag; call; rid; parent; cls }
  | 1 ->
    let time = get_time st c in
    let src = get_int c in
    let dst = get_int c in
    let tag = get_tag c in
    let rid = get_rid st c in
    Kernel.E_reply { time; src; dst; tag; rid }
  | 2 ->
    let time = get_time st c in
    let ep = get_int c in
    let rid = get_rid st c in
    Kernel.E_window_open { time; ep; rid }
  | 3 ->
    let policy = b0 land 0x10 <> 0 in
    let time = get_time st c in
    let ep = get_int c in
    let rid = get_rid st c in
    Kernel.E_window_close { time; ep; rid; policy }
  | 4 ->
    let time = get_time st c in
    let ep = get_int c in
    let rid = get_rid st c in
    let cycles = get_int c in
    Kernel.E_checkpoint { time; ep; rid; cycles }
  | 5 ->
    let time = get_time st c in
    let ep = get_int c in
    let rid = get_rid st c in
    let bytes = get_int c in
    Kernel.E_store_logged { time; ep; rid; bytes }
  | 6 ->
    let time = get_time st c in
    let ep = get_int c in
    let rid = get_rid st c in
    let kc = get_str c in
    Kernel.E_kcall { time; ep; rid; kc }
  | 7 ->
    let window_open = b0 land 0x10 <> 0 in
    let time = get_time st c in
    let ep = get_int c in
    let rid = get_rid st c in
    let reason = get_str c in
    let policy = get_str c in
    Kernel.E_crash { time; ep; reason; window_open; rid; policy }
  | 8 ->
    let time = get_time st c in
    let ep = get_int c in
    Kernel.E_hang_detected { time; ep }
  | 9 ->
    let time = get_time st c in
    let ep = get_int c in
    let rid = get_rid st c in
    Kernel.E_rollback_begin { time; ep; rid }
  | 10 ->
    let time = get_time st c in
    let ep = get_int c in
    let rid = get_rid st c in
    let bytes = get_int c in
    Kernel.E_rollback_end { time; ep; rid; bytes }
  | 11 ->
    let time = get_time st c in
    let ep = get_int c in
    let rid = get_rid st c in
    let policy = get_str c in
    Kernel.E_restart { time; ep; rid; policy }
  | 12 ->
    let time = get_time st c in
    let halt =
      match b0 lsr 4 with
      | 0 -> Kernel.H_completed (get_int c)
      | 1 -> Kernel.H_shutdown (get_str c)
      | 2 -> Kernel.H_panic (get_str c)
      | 3 -> Kernel.H_hang
      | n -> bad "unknown halt kind %d" n
    in
    Kernel.E_halt { time; halt }
  | 13 ->
    let time = get_time st c in
    let ep = get_int c in
    let parent = get_int c in
    Kernel.E_spawn { time; ep; parent }
  | n -> bad "unknown event tag %d" n

(* Unframe one record: varint(len) + payload + CRC. Returns a cursor
   scoped to the payload; [which] names the record in errors.
   [check_crc:false] skips the payload checksum (framing and bounds
   are still enforced) — only for callers that just produced the
   bytes in-process and cannot have picked up storage corruption. *)
let next_record ?(check_crc = true) src pos ~which =
  let c = { src; rpos = pos; limit = String.length src } in
  let len =
    try get_uint c with Bad _ -> bad "%s: truncated length" which
  in
  let payload_off = c.rpos in
  if payload_off + len + 4 > String.length src then
    bad "%s: truncated record (need %d bytes past offset %d)" which len
      payload_off;
  if check_crc then begin
    let stored_crc =
      Char.code src.[payload_off + len]
      lor (Char.code src.[payload_off + len + 1] lsl 8)
      lor (Char.code src.[payload_off + len + 2] lsl 16)
      lor (Char.code src.[payload_off + len + 3] lsl 24)
    in
    let actual = crc32_string src ~off:payload_off ~len in
    if actual <> stored_crc then
      bad "%s: CRC mismatch (stored %08x, computed %08x)" which stored_crc
        actual
  end;
  ({ src; rpos = payload_off; limit = payload_off + len },
   payload_off + len + 4)

let get_header c =
  let jh_version = get_int c in
  if jh_version <> version then
    bad "unsupported journal version %d (expected %d)" jh_version version;
  let jh_seed = get_int c in
  let jh_arch =
    match get_int c with
    | 0 -> Kernel.Microkernel
    | 1 -> Kernel.Monolithic
    | n -> bad "unknown arch %d" n
  in
  let jh_crash_count = get_int c in
  let jh_cost_fingerprint = get_int c in
  let jh_spec = get_str c in
  let jh_workload = get_str c in
  let jh_crash = get_str c in
  { jh_version; jh_seed; jh_arch; jh_spec; jh_workload; jh_crash;
    jh_crash_count; jh_cost_fingerprint }

let read_string s =
  try
    if String.length s < String.length magic
       || String.sub s 0 (String.length magic) <> magic
    then bad "bad magic (not an OSIRIS journal)";
    let hc, pos = next_record s (String.length magic) ~which:"header" in
    let header = get_header hc in
    if hc.rpos <> hc.limit then bad "header: trailing bytes";
    let events = ref [] in
    let n = ref 0 in
    let pos = ref pos in
    let st = { d_time = 0; d_rid = 0 } in
    while !pos < String.length s do
      let which = Printf.sprintf "record %d" !n in
      let rc, pos' = next_record s !pos ~which in
      let ev = try get_ev st rc with Bad m -> bad "%s: %s" which m in
      if rc.rpos <> rc.limit then bad "%s: trailing bytes in record" which;
      events := ev :: !events;
      incr n;
      pos := pos'
    done;
    Ok (header, Array.of_list (List.rev !events))
  with Bad m -> Error ("journal: " ^ m)

let read_file path =
  match
    In_channel.with_open_bin path In_channel.input_all
  with
  | s -> read_string s
  | exception Sys_error m -> Error ("journal: " ^ m)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let event_rid = function
  | Kernel.E_msg { rid; _ } | Kernel.E_reply { rid; _ }
  | Kernel.E_window_open { rid; _ } | Kernel.E_window_close { rid; _ }
  | Kernel.E_checkpoint { rid; _ } | Kernel.E_store_logged { rid; _ }
  | Kernel.E_kcall { rid; _ } | Kernel.E_crash { rid; _ }
  | Kernel.E_rollback_begin { rid; _ } | Kernel.E_rollback_end { rid; _ }
  | Kernel.E_restart { rid; _ } -> rid
  | Kernel.E_hang_detected _ | Kernel.E_halt _ | Kernel.E_spawn _ -> 0

let event_time = function
  | Kernel.E_msg { time; _ } | Kernel.E_reply { time; _ }
  | Kernel.E_window_open { time; _ } | Kernel.E_window_close { time; _ }
  | Kernel.E_checkpoint { time; _ } | Kernel.E_store_logged { time; _ }
  | Kernel.E_kcall { time; _ } | Kernel.E_crash { time; _ }
  | Kernel.E_hang_detected { time; _ } | Kernel.E_rollback_begin { time; _ }
  | Kernel.E_rollback_end { time; _ } | Kernel.E_restart { time; _ }
  | Kernel.E_halt { time; _ } | Kernel.E_spawn { time; _ } -> time

let event_ep = function
  | Kernel.E_msg { dst; _ } -> Some dst
  | Kernel.E_reply { src; _ } -> Some src
  | Kernel.E_window_open { ep; _ } | Kernel.E_window_close { ep; _ }
  | Kernel.E_checkpoint { ep; _ } | Kernel.E_store_logged { ep; _ }
  | Kernel.E_kcall { ep; _ } | Kernel.E_crash { ep; _ }
  | Kernel.E_hang_detected { ep; _ } | Kernel.E_rollback_begin { ep; _ }
  | Kernel.E_rollback_end { ep; _ } | Kernel.E_restart { ep; _ }
  | Kernel.E_spawn { ep; _ } -> Some ep
  | Kernel.E_halt _ -> None

(* Wire tag, declaration order — the same code the encoders pack into
   the lead byte, re-exposed so block summaries and queries can talk
   about event kinds without a constructor match each. *)
let event_kind = function
  | Kernel.E_msg _ -> 0
  | Kernel.E_reply _ -> 1
  | Kernel.E_window_open _ -> 2
  | Kernel.E_window_close _ -> 3
  | Kernel.E_checkpoint _ -> 4
  | Kernel.E_store_logged _ -> 5
  | Kernel.E_kcall _ -> 6
  | Kernel.E_crash _ -> 7
  | Kernel.E_hang_detected _ -> 8
  | Kernel.E_rollback_begin _ -> 9
  | Kernel.E_rollback_end _ -> 10
  | Kernel.E_restart _ -> 11
  | Kernel.E_halt _ -> 12
  | Kernel.E_spawn _ -> 13

let n_kinds = 14

let kind_names =
  [| "msg"; "reply"; "window_open"; "window_close"; "checkpoint"; "store";
     "kcall"; "crash"; "hang"; "rollback_begin"; "rollback_end"; "restart";
     "halt"; "spawn" |]

let kind_name k =
  if k >= 0 && k < n_kinds then kind_names.(k)
  else invalid_arg "Journal.kind_name"

let kind_of_name s =
  let rec find i =
    if i >= n_kinds then None
    else if kind_names.(i) = s then Some i
    else find (i + 1)
  in
  find 0

(* ------------------------------------------------------------------ *)
(* Streaming decode                                                    *)
(* ------------------------------------------------------------------ *)

let header_of_string s =
  try
    if String.length s < String.length magic
       || String.sub s 0 (String.length magic) <> magic
    then bad "bad magic (not an OSIRIS journal)";
    let hc, pos = next_record s (String.length magic) ~which:"header" in
    let header = get_header hc in
    if hc.rpos <> hc.limit then bad "header: trailing bytes";
    Ok (header, pos)
  with Bad m -> Error ("journal: " ^ m)

type stream = {
  st_src : string;
  mutable st_pos : int;
  mutable st_n : int;
  st_delta : delta;
}

let stream_of_string s =
  match header_of_string s with
  | Error m -> Error m
  | Ok (header, pos) ->
    Ok (header,
        { st_src = s; st_pos = pos; st_n = 0;
          st_delta = { d_time = 0; d_rid = 0 } })

let stream_next st =
  if st.st_pos >= String.length st.st_src then Ok None
  else
    let which = Printf.sprintf "record %d" st.st_n in
    try
      let rc, pos' = next_record st.st_src st.st_pos ~which in
      let ev = try get_ev st.st_delta rc with Bad m -> bad "%s: %s" which m in
      if rc.rpos <> rc.limit then bad "%s: trailing bytes in record" which;
      st.st_pos <- pos';
      st.st_n <- st.st_n + 1;
      Ok (Some ev)
    with Bad m -> Error ("journal: " ^ m)

(* ------------------------------------------------------------------ *)
(* Sidecar block index                                                 *)
(* ------------------------------------------------------------------ *)

let index_magic = "OSIRIDX1"

let index_suffix = ".idx"

let default_block_records = 512

type block = {
  blk_off : int;
  blk_count : int;
  blk_base_time : int;
  blk_base_rid : int;
  blk_time_min : int;
  blk_time_max : int;
  blk_rid_min : int;
  blk_rid_max : int;
  blk_ep_mask : int;
  blk_kind_mask : int;
  blk_tag_mask : int;
}

type index = {
  ix_journal_len : int;
  ix_head_crc : int;
  ix_tail_crc : int;
  ix_records : int;
  ix_blocks : block array;
}

(* Presence bitmaps saturate at bit 62 (OCaml ints are 63-bit): values
   below 62 get an exact bit, everything else shares the top bit. The
   test is therefore conservative — exact below the clamp, "any
   clamped value present" above it — which is precisely what predicate
   pushdown needs: it may only claim a block *cannot* match. *)
let[@inline] mask_bit i = 1 lsl (if i >= 0 && i < 62 then i else 62)

let mask_mem m i = m land mask_bit i <> 0

(* Journal identity fingerprint: cheap (O(8 KiB)) staleness detection
   for a sidecar that outlived a re-record. Every realistic rewrite
   changes the length or one of the edge CRCs; the per-record CRCs in
   the journal itself still guard the decode. *)
let fingerprint_span = 4096

let head_crc s =
  crc32_string s ~off:0 ~len:(min fingerprint_span (String.length s))

let tail_crc s =
  let len = min fingerprint_span (String.length s) in
  crc32_string s ~off:(String.length s - len) ~len

(* Index building runs on the record path (the <5% gate in
   bench/query_bench.ml), so it cannot afford full decode: this
   scanner mirrors [get_ev]'s layouts field-for-field but extracts
   only what block summaries need — time, rid, acting endpoint, tag
   index — skipping string payloads by length and allocating nothing
   per record. The per-record CRC in [next_record] still guards
   integrity; the value validation [get_ev] adds (tag range, SEEP
   class) is re-applied whenever a block is decoded for real, and the
   summary masks are conservative regardless. *)
type summary = {
  mutable su_time : int;
  mutable su_rid : int;   (* 0 where [event_rid] reports 0 *)
  mutable su_ep : int;    (* -1 where [event_ep] reports None *)
  mutable su_tag : int;   (* -1 for kinds without a message tag *)
}

let[@inline] skip_int c = ignore (get_int c : int)

let skip_str c =
  let len = get_int c in
  if len < 0 || c.rpos + len > c.limit then bad "truncated string";
  c.rpos <- c.rpos + len

(* Returns the record's wire kind; fills [su] in place. Must call
   [get_rid] exactly where [get_ev] does so the delta state evolves
   identically. *)
let scan_summary st c su =
  let b0 = get_byte c in
  if b0 land 0x80 <> 0 then bad "bad lead byte %#x" b0;
  let kind = b0 land 0xf in
  su.su_time <- get_time st c;
  su.su_rid <- 0;
  su.su_ep <- -1;
  su.su_tag <- -1;
  (match kind with
   | 0 ->
     skip_int c; (* src *)
     su.su_ep <- get_int c; (* dst, as in [event_ep] *)
     su.su_tag <- get_int c;
     su.su_rid <- get_rid st c;
     skip_int c (* parent offset *)
   | 1 ->
     su.su_ep <- get_int c; (* src, as in [event_ep] *)
     skip_int c; (* dst *)
     su.su_tag <- get_int c;
     su.su_rid <- get_rid st c
   | 2 | 3 | 9 ->
     su.su_ep <- get_int c;
     su.su_rid <- get_rid st c
   | 4 | 5 | 10 ->
     su.su_ep <- get_int c;
     su.su_rid <- get_rid st c;
     skip_int c
   | 6 | 11 ->
     su.su_ep <- get_int c;
     su.su_rid <- get_rid st c;
     skip_str c
   | 7 ->
     su.su_ep <- get_int c;
     su.su_rid <- get_rid st c;
     skip_str c;
     skip_str c
   | 8 -> su.su_ep <- get_int c
   | 12 ->
     (match b0 lsr 4 with
      | 0 -> skip_int c
      | 1 | 2 -> skip_str c
      | 3 -> ()
      | n -> bad "unknown halt kind %d" n)
   | 13 ->
     su.su_ep <- get_int c;
     skip_int c (* parent: raw int, not rid-delta coded *)
   | n -> bad "unknown event tag %d" n);
  kind

let build_index ?(block_records = default_block_records) ?(verify_crc = true)
    s =
  if block_records < 1 then invalid_arg "Journal.build_index";
  try
    if String.length s < String.length magic
       || String.sub s 0 (String.length magic) <> magic
    then bad "bad magic (not an OSIRIS journal)";
    let hc, pos = next_record s (String.length magic) ~which:"header" in
    ignore (get_header hc : header);
    if hc.rpos <> hc.limit then bad "header: trailing bytes";
    let blocks = ref [] in
    let n = ref 0 in
    let pos = ref pos in
    let st = { d_time = 0; d_rid = 0 } in
    let su = { su_time = 0; su_rid = 0; su_ep = -1; su_tag = -1 } in
    let slen = String.length s in
    (* One cursor reused for every record: with [scan_summary] the hot
       loop allocates nothing, so indexing at record time does not
       perturb the GC state the run just left behind. *)
    let c = { src = s; rpos = 0; limit = slen } in
    while !pos < slen do
      (* Restart bases: the decoder's delta state *entering* the
         block, captured so a seek to [blk_off] decodes exactly. *)
      let off = !pos in
      let base_time = st.d_time and base_rid = st.d_rid in
      let count = ref 0 in
      let time_min = ref max_int and time_max = ref min_int in
      let rid_min = ref max_int and rid_max = ref min_int in
      let ep_mask = ref 0 and kind_mask = ref 0 and tag_mask = ref 0 in
      while !count < block_records && !pos < slen do
        (try
           (* Inline unframe ([next_record] allocates a cursor and a
              tuple per call — this loop must not). *)
           c.rpos <- !pos;
           c.limit <- slen;
           let len = try get_uint c with Bad _ -> bad "truncated length" in
           let payload_off = c.rpos in
           if payload_off + len + 4 > slen then
             bad "truncated record (need %d bytes past offset %d)" len
               payload_off;
           if verify_crc then begin
             let stored_crc =
               Char.code s.[payload_off + len]
               lor (Char.code s.[payload_off + len + 1] lsl 8)
               lor (Char.code s.[payload_off + len + 2] lsl 16)
               lor (Char.code s.[payload_off + len + 3] lsl 24)
             in
             let actual = crc32_string s ~off:payload_off ~len in
             if actual <> stored_crc then
               bad "CRC mismatch (stored %08x, computed %08x)" stored_crc
                 actual
           end;
           c.limit <- payload_off + len;
           let kind = scan_summary st c su in
           if c.rpos <> c.limit then bad "trailing bytes in record";
           if su.su_time < !time_min then time_min := su.su_time;
           if su.su_time > !time_max then time_max := su.su_time;
           if su.su_rid < !rid_min then rid_min := su.su_rid;
           if su.su_rid > !rid_max then rid_max := su.su_rid;
           if su.su_ep >= 0 then ep_mask := !ep_mask lor mask_bit su.su_ep;
           kind_mask := !kind_mask lor (1 lsl kind);
           if su.su_tag >= 0 then tag_mask := !tag_mask lor mask_bit su.su_tag;
           pos := payload_off + len + 4
         with Bad m -> bad "record %d: %s" !n m);
        incr count;
        incr n
      done;
      blocks :=
        { blk_off = off;
          blk_count = !count;
          blk_base_time = base_time;
          blk_base_rid = base_rid;
          blk_time_min = !time_min;
          blk_time_max = !time_max;
          blk_rid_min = !rid_min;
          blk_rid_max = !rid_max;
          blk_ep_mask = !ep_mask;
          blk_kind_mask = !kind_mask;
          blk_tag_mask = !tag_mask }
        :: !blocks
    done;
    Ok
      { ix_journal_len = String.length s;
        ix_head_crc = head_crc s;
        ix_tail_crc = tail_crc s;
        ix_records = !n;
        ix_blocks = Array.of_list (List.rev !blocks) }
  with Bad m -> Error ("journal: " ^ m)

(* Sidecar wire format: magic, then framed records in the journal's
   own framing (varint len + payload + CRC32) — one header record
   (version, journal fingerprint, record/block counts), one record per
   block summary. Damage anywhere fails a CRC or the framing, which
   readers turn into the silent full-scan fallback. *)

let buf_varint b v =
  let v = ref (zigzag v) in
  let continue = ref true in
  while !continue do
    let x = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char b (Char.unsafe_chr x);
      continue := false
    end
    else Buffer.add_char b (Char.unsafe_chr (x lor 0x80))
  done

let buf_frame out payload =
  (* raw (non-zigzag) varint length, as in [flush_record] *)
  let len = Buffer.length payload in
  let v = ref len in
  let continue = ref true in
  while !continue do
    let x = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char out (Char.unsafe_chr x);
      continue := false
    end
    else Buffer.add_char out (Char.unsafe_chr (x lor 0x80))
  done;
  let s = Buffer.contents payload in
  Buffer.add_string out s;
  let crc = crc32_string s ~off:0 ~len in
  Buffer.add_char out (Char.unsafe_chr (crc land 0xff));
  Buffer.add_char out (Char.unsafe_chr ((crc lsr 8) land 0xff));
  Buffer.add_char out (Char.unsafe_chr ((crc lsr 16) land 0xff));
  Buffer.add_char out (Char.unsafe_chr ((crc lsr 24) land 0xff))

let index_to_string ix =
  let out = Buffer.create (64 + (Array.length ix.ix_blocks * 32)) in
  Buffer.add_string out index_magic;
  let p = Buffer.create 64 in
  buf_varint p version;
  buf_varint p ix.ix_journal_len;
  buf_varint p ix.ix_head_crc;
  buf_varint p ix.ix_tail_crc;
  buf_varint p ix.ix_records;
  buf_varint p (Array.length ix.ix_blocks);
  buf_frame out p;
  Array.iter
    (fun b ->
       Buffer.clear p;
       buf_varint p b.blk_off;
       buf_varint p b.blk_count;
       buf_varint p b.blk_base_time;
       buf_varint p b.blk_base_rid;
       buf_varint p b.blk_time_min;
       buf_varint p b.blk_time_max;
       buf_varint p b.blk_rid_min;
       buf_varint p b.blk_rid_max;
       buf_varint p b.blk_ep_mask;
       buf_varint p b.blk_kind_mask;
       buf_varint p b.blk_tag_mask;
       buf_frame out p)
    ix.ix_blocks;
  Buffer.contents out

let index_of_string ~journal s =
  try
    if String.length s < String.length index_magic
       || String.sub s 0 (String.length index_magic) <> index_magic
    then bad "bad magic (not an OSIRIS journal index)";
    let hc, pos = next_record s (String.length index_magic) ~which:"index header" in
    let v = get_int hc in
    if v <> version then bad "unsupported index version %d" v;
    let ix_journal_len = get_int hc in
    let ix_head_crc = get_int hc in
    let ix_tail_crc = get_int hc in
    let ix_records = get_int hc in
    let n_blocks = get_int hc in
    if hc.rpos <> hc.limit then bad "index header: trailing bytes";
    if n_blocks < 0 then bad "index header: negative block count";
    if ix_journal_len <> String.length journal
       || ix_head_crc <> head_crc journal
       || ix_tail_crc <> tail_crc journal
    then bad "stale index (journal fingerprint mismatch)";
    let blocks = Array.make n_blocks
        { blk_off = 0; blk_count = 0; blk_base_time = 0; blk_base_rid = 0;
          blk_time_min = 0; blk_time_max = 0; blk_rid_min = 0;
          blk_rid_max = 0; blk_ep_mask = 0; blk_kind_mask = 0;
          blk_tag_mask = 0 }
    in
    let pos = ref pos in
    for i = 0 to n_blocks - 1 do
      let which = Printf.sprintf "index block %d" i in
      let rc, pos' = next_record s !pos ~which in
      let blk_off = get_int rc in
      let blk_count = get_int rc in
      let blk_base_time = get_int rc in
      let blk_base_rid = get_int rc in
      let blk_time_min = get_int rc in
      let blk_time_max = get_int rc in
      let blk_rid_min = get_int rc in
      let blk_rid_max = get_int rc in
      let blk_ep_mask = get_int rc in
      let blk_kind_mask = get_int rc in
      let blk_tag_mask = get_int rc in
      if rc.rpos <> rc.limit then bad "%s: trailing bytes" which;
      if blk_off < 0 || blk_off >= String.length journal || blk_count < 1
      then bad "%s: offset/count out of range" which;
      blocks.(i) <-
        { blk_off; blk_count; blk_base_time; blk_base_rid; blk_time_min;
          blk_time_max; blk_rid_min; blk_rid_max; blk_ep_mask;
          blk_kind_mask; blk_tag_mask };
      pos := pos'
    done;
    if !pos <> String.length s then bad "index: trailing bytes";
    if Array.fold_left (fun acc b -> acc + b.blk_count) 0 blocks
       <> ix_records
    then bad "index: block counts disagree with record count";
    Ok { ix_journal_len; ix_head_crc; ix_tail_crc; ix_records;
         ix_blocks = blocks }
  with Bad m -> Error ("index: " ^ m)

let write_index_file ~path ix =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (index_to_string ix))

let read_index_file ~journal path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> index_of_string ~journal s
  | exception Sys_error m -> Error ("index: " ^ m)

(* ------------------------------------------------------------------ *)
(* Selective fold                                                      *)
(* ------------------------------------------------------------------ *)

type scan_stats = {
  mutable sc_blocks_total : int;
  mutable sc_blocks_scanned : int;
  mutable sc_blocks_skipped : int;
  mutable sc_records_decoded : int;
}

let scan_stats () =
  { sc_blocks_total = 0; sc_blocks_scanned = 0; sc_blocks_skipped = 0;
    sc_records_decoded = 0 }

let fold_full s pos stats ~init ~f =
  let acc = ref init in
  let n = ref 0 in
  let pos = ref pos in
  let st = { d_time = 0; d_rid = 0 } in
  while !pos < String.length s do
    let which = Printf.sprintf "record %d" !n in
    let rc, pos' = next_record s !pos ~which in
    let ev = try get_ev st rc with Bad m -> bad "%s: %s" which m in
    if rc.rpos <> rc.limit then bad "%s: trailing bytes in record" which;
    (match stats with
     | Some sc -> sc.sc_records_decoded <- sc.sc_records_decoded + 1
     | None -> ());
    acc := f !acc ev;
    incr n;
    pos := pos'
  done;
  !acc

(* Decode one indexed block: seek to its offset, seed the delta state
   from the stored restart bases, decode exactly [blk_count] records. *)
let fold_block s blk base ~init ~f =
  let acc = ref init in
  let pos = ref blk.blk_off in
  let st = { d_time = blk.blk_base_time; d_rid = blk.blk_base_rid } in
  for i = 0 to blk.blk_count - 1 do
    let which = Printf.sprintf "record %d" (base + i) in
    let rc, pos' = next_record s !pos ~which in
    let ev = try get_ev st rc with Bad m -> bad "%s: %s" which m in
    if rc.rpos <> rc.limit then bad "%s: trailing bytes in record" which;
    acc := f !acc ev;
    pos := pos'
  done;
  !acc

let iter_blocks ?select ?stats ix s ~f =
  try
    (match header_of_string s with
     | Error m -> raise (Bad m)
     | Ok _ -> ());
    let want = match select with Some p -> p | None -> fun _ -> true in
    let base = ref 0 in
    Array.iter
      (fun blk ->
         (match stats with
          | Some sc -> sc.sc_blocks_total <- sc.sc_blocks_total + 1
          | None -> ());
         (if want blk then begin
            (match stats with
             | Some sc ->
               sc.sc_blocks_scanned <- sc.sc_blocks_scanned + 1;
               sc.sc_records_decoded <- sc.sc_records_decoded + blk.blk_count
             | None -> ());
            fold_block s blk !base ~init:() ~f:(fun () ev -> f blk ev)
          end
          else
            match stats with
            | Some sc -> sc.sc_blocks_skipped <- sc.sc_blocks_skipped + 1
            | None -> ());
         base := !base + blk.blk_count)
      ix.ix_blocks;
    Ok ()
  with Bad m -> Error ("journal: " ^ m)

let fold ?index ?select ?stats s ~init ~f =
  match header_of_string s with
  | Error m -> Error m
  | Ok (_, pos) ->
    (try
       match index with
       | Some ix ->
         let want = match select with Some p -> p | None -> fun _ -> true in
         let acc = ref init in
         let base = ref 0 in
         Array.iter
           (fun blk ->
              (match stats with
               | Some sc -> sc.sc_blocks_total <- sc.sc_blocks_total + 1
               | None -> ());
              if want blk then begin
                (match stats with
                 | Some sc ->
                   sc.sc_blocks_scanned <- sc.sc_blocks_scanned + 1;
                   sc.sc_records_decoded <-
                     sc.sc_records_decoded + blk.blk_count
                 | None -> ());
                acc := fold_block s blk !base ~init:!acc ~f
              end
              else
                (match stats with
                 | Some sc -> sc.sc_blocks_skipped <- sc.sc_blocks_skipped + 1
                 | None -> ());
              base := !base + blk.blk_count)
           ix.ix_blocks;
         Ok !acc
       | None -> Ok (fold_full s pos stats ~init ~f)
     with Bad m -> Error ("journal: " ^ m))
