module Tablefmt = Osiris_util.Tablefmt
module Stats = Osiris_util.Stats

let handler_table spans =
  (* Bucket completed request-span latencies per (server, handler). *)
  let tbl : (int * string, Histogram.t) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun (s : Span.t) ->
       if s.Span.sp_kind = Span.Request && s.Span.sp_complete then begin
         let key = (s.Span.sp_ep, s.Span.sp_name) in
         let h =
           match Hashtbl.find_opt tbl key with
           | Some h -> h
           | None ->
             let h = Histogram.create () in
             Hashtbl.replace tbl key h;
             order := key :: !order;
             h
         in
         Histogram.observe h (s.Span.sp_end - s.Span.sp_start)
       end)
    (Span.flatten spans);
  let keys = List.sort compare (List.rev !order) in
  if keys = [] then ""
  else
    let rows =
      List.map
        (fun ((ep, name) as key) ->
           let h = Hashtbl.find tbl key in
           [ Endpoint.server_name ep;
             name;
             string_of_int (Histogram.count h);
             Tablefmt.fixed 0 (Histogram.p50 h);
             Tablefmt.fixed 0 (Histogram.p95 h);
             Tablefmt.fixed 0 (Histogram.p99 h);
             string_of_int (Histogram.max_value h) ])
        keys
    in
    Tablefmt.render ~title:"per-handler latency (virtual cycles)"
      ~header:[ "server"; "handler"; "count"; "p50"; "p95"; "p99"; "max" ]
      ~align:[ Tablefmt.Left; Tablefmt.Left; Tablefmt.Right; Tablefmt.Right;
               Tablefmt.Right; Tablefmt.Right; Tablefmt.Right ]
      rows

let recovery_table kernel =
  (* Kernel.recovery_latencies is newest-first; summarize sorts, so the
     ordering is irrelevant here — it only matters to consumers that
     index the list directly. *)
  let lats = List.map float_of_int (Kernel.recovery_latencies kernel) in
  if lats = [] then ""
  else
    let s = Stats.summarize lats in
    Tablefmt.render ~title:"recovery latency (crash -> restart, virtual cycles)"
      ~header:[ "count"; "p50"; "p95"; "p99"; "max" ]
      ~align:[ Tablefmt.Right; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right;
               Tablefmt.Right ]
      [ [ string_of_int s.Stats.n;
          Tablefmt.fixed 0 s.Stats.p50;
          Tablefmt.fixed 0 s.Stats.p95;
          Tablefmt.fixed 0 s.Stats.p99;
          Tablefmt.fixed 0 s.Stats.max ] ]

let metrics_table m =
  let rows =
    List.map
      (fun (name, v) ->
         match v with
         | Metrics.V_counter c -> [ name; "counter"; string_of_int c ]
         | Metrics.V_gauge g -> [ name; "gauge"; string_of_int g ]
         | Metrics.V_hist h ->
           [ name; "histogram";
             Printf.sprintf "n=%d p50=%.0f p95=%.0f p99=%.0f max=%d"
               (Histogram.count h) (Histogram.p50 h) (Histogram.p95 h)
               (Histogram.p99 h) (Histogram.max_value h) ])
      (Metrics.dump m)
  in
  if rows = [] then ""
  else
    Tablefmt.render ~title:"metrics" ~header:[ "series"; "kind"; "value" ]
      ~align:[ Tablefmt.Left; Tablefmt.Left; Tablefmt.Right ]
      rows

let render ?metrics ~kernel spans =
  let sections =
    [ handler_table spans;
      recovery_table kernel;
      (match metrics with Some m -> metrics_table m | None -> "") ]
  in
  String.concat "\n" (List.filter (fun s -> s <> "") sections)
