type crash_report = {
  cr_index : int;
  cr_time : int;
  cr_ep : Endpoint.t;
  cr_server : string;
  cr_reason : string;
  cr_policy : string;
  cr_window_open : bool;
  cr_rid : int;
  cr_chain : int list;
  cr_chain_msgs : Kernel.event list;
  cr_undo_bytes : int;
  cr_rollback_bytes : int option;
  cr_restart : (int * string) option;
  cr_recovery_latency : int option;
}

type report = {
  pm_header : Journal.header;
  pm_records : int;
  pm_halt : Kernel.halt option;
  pm_crashes : crash_report list;
}

(* Undo-log bytes live in the crashed compartment's *current* window:
   sum E_store_logged since its last E_window_open, zeroed by
   E_window_close, scanning backwards from the crash. *)
let undo_bytes_at events ep crash_idx =
  let rec scan i acc =
    if i < 0 then acc
    else
      match events.(i) with
      | Kernel.E_window_open { ep = e; _ } when e = ep -> acc
      | Kernel.E_window_close { ep = e; _ } when e = ep -> 0
      | Kernel.E_store_logged { ep = e; bytes; _ } when e = ep ->
        scan (i - 1) (acc + bytes)
      | _ -> scan (i - 1) acc
  in
  scan (crash_idx - 1) 0

(* Recovery resolution: first rollback/restart of this compartment
   after the crash, stopping at its next crash (each crash owns its own
   recovery episode). *)
let recovery_after events ep crash_idx =
  let n = Array.length events in
  let rollback = ref None and restart = ref None in
  let rec scan i =
    if i >= n then ()
    else
      match events.(i) with
      | Kernel.E_crash { ep = e; _ } when e = ep -> ()
      | Kernel.E_rollback_end { ep = e; bytes; time; _ }
        when e = ep && !rollback = None ->
        rollback := Some (time, bytes);
        scan (i + 1)
      | Kernel.E_restart { ep = e; time; policy; _ }
        when e = ep && !restart = None ->
        restart := Some (time, policy)
      | _ -> scan (i + 1)
  in
  scan (crash_idx + 1);
  (!rollback, !restart)

let chain_msgs events chain =
  let find rid =
    Array.fold_left
      (fun acc ev ->
        match acc, ev with
        | None, Kernel.E_msg { rid = r; _ } when r = rid -> Some ev
        | _ -> acc)
      None events
  in
  List.filter_map find chain

let crash_report events idx =
  match events.(idx) with
  | Kernel.E_crash { time; ep; reason; window_open; rid; policy } ->
    let chain = Replay.rid_chain events rid in
    let rollback, restart = recovery_after events ep idx in
    let latency =
      match restart, rollback with
      | Some (t, _), _ -> Some (t - time)
      | None, Some (t, _) -> Some (t - time)
      | None, None -> None
    in
    Some
      { cr_index = idx;
        cr_time = time;
        cr_ep = ep;
        cr_server = Endpoint.server_name ep;
        cr_reason = reason;
        cr_policy = policy;
        cr_window_open = window_open;
        cr_rid = rid;
        cr_chain = chain;
        cr_chain_msgs = chain_msgs events chain;
        cr_undo_bytes = undo_bytes_at events ep idx;
        cr_rollback_bytes = Option.map snd rollback;
        cr_restart = restart;
        cr_recovery_latency = latency }
  | _ -> None

let analyze header events =
  let crashes = ref [] in
  Array.iteri
    (fun i ev ->
      match ev with
      | Kernel.E_crash _ ->
        (match crash_report events i with
         | Some c -> crashes := c :: !crashes
         | None -> ())
      | _ -> ())
    events;
  let halt =
    let n = Array.length events in
    if n > 0 then
      match events.(n - 1) with
      | Kernel.E_halt { halt; _ } -> Some halt
      | _ -> None
    else None
  in
  { pm_header = header;
    pm_records = Array.length events;
    pm_halt = halt;
    pm_crashes = List.rev !crashes }

let attribution header c =
  let root =
    match List.rev c.cr_chain with r :: _ -> r | [] -> c.cr_rid
  in
  if header.Journal.jh_crash <> "none"
     && header.Journal.jh_crash = c.cr_server then
    Printf.sprintf
      "crash of %s attributed to the armed fault injection at %s \
       (count=%d), reached while handling rid %d (root request rid %d)"
      c.cr_server header.Journal.jh_crash header.Journal.jh_crash_count
      c.cr_rid root
  else if c.cr_rid = 0 then
    Printf.sprintf "crash of %s in loop/init code (%s), no request context"
      c.cr_server c.cr_reason
  else
    Printf.sprintf
      "crash of %s (%s) while handling rid %d, rooted at request rid %d"
      c.cr_server c.cr_reason c.cr_rid root

let render header r =
  let b = Buffer.create 1024 in
  Printf.bprintf b "postmortem: %s\n" (Journal.header_to_string header);
  Printf.bprintf b "records: %d, crashes: %d, halt: %s\n" r.pm_records
    (List.length r.pm_crashes)
    (match r.pm_halt with
     | Some h -> Kernel.halt_to_string h
     | None -> "<journal ends before halt>");
  List.iter
    (fun c ->
      Printf.bprintf b "\ncrash #%d at t=%d (record %d)\n" c.cr_index
        c.cr_time c.cr_index;
      Printf.bprintf b "  compartment: %s  policy: %s\n" c.cr_server
        c.cr_policy;
      Printf.bprintf b "  reason: %s\n" c.cr_reason;
      Printf.bprintf b "  window: %s, undo log at crash: %d bytes\n"
        (if c.cr_window_open then "open" else "closed")
        c.cr_undo_bytes;
      Printf.bprintf b "  causal chain: %s\n"
        (if c.cr_chain = [] then "(root context)"
         else String.concat " < " (List.map string_of_int c.cr_chain));
      List.iter
        (fun ev -> Printf.bprintf b "    %s\n" (Replay.pp_event ev))
        c.cr_chain_msgs;
      (match c.cr_rollback_bytes with
       | Some bytes -> Printf.bprintf b "  rollback: %d bytes restored\n" bytes
       | None -> Buffer.add_string b "  rollback: none recorded\n");
      (match c.cr_restart with
       | Some (t, policy) ->
         Printf.bprintf b "  restart: t=%d under policy %s\n" t policy
       | None -> Buffer.add_string b "  restart: none recorded\n");
      (match c.cr_recovery_latency with
       | Some l -> Printf.bprintf b "  recovery latency: %d cycles\n" l
       | None -> Buffer.add_string b "  recovery latency: unresolved\n");
      Printf.bprintf b "  root cause: %s\n" (attribution header c))
    r.pm_crashes;
  Buffer.contents b

let to_json r =
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\n  \"journal\": %s,\n"
    (Chrome_trace.escaped (Journal.header_to_string r.pm_header));
  Printf.bprintf b "  \"seed\": %d,\n" r.pm_header.Journal.jh_seed;
  Printf.bprintf b "  \"records\": %d,\n" r.pm_records;
  Printf.bprintf b "  \"halt\": %s,\n"
    (match r.pm_halt with
     | Some h -> Chrome_trace.escaped (Kernel.halt_to_string h)
     | None -> "null");
  Printf.bprintf b "  \"crashes\": [";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "\n    {\n      \"index\": %d,\n      \"time\": %d,\n\
        \      \"compartment\": %s,\n      \"policy\": %s,\n\
        \      \"reason\": %s,\n      \"window_open\": %b,\n\
        \      \"rid\": %d,\n      \"chain\": [%s],\n\
        \      \"undo_bytes\": %d,\n      \"rollback_bytes\": %s,\n\
        \      \"restart_time\": %s,\n      \"restart_policy\": %s,\n\
        \      \"recovery_latency\": %s,\n      \"root_cause\": %s\n    }"
        c.cr_index c.cr_time
        (Chrome_trace.escaped c.cr_server)
        (Chrome_trace.escaped c.cr_policy)
        (Chrome_trace.escaped c.cr_reason)
        c.cr_window_open c.cr_rid
        (String.concat ", " (List.map string_of_int c.cr_chain))
        c.cr_undo_bytes
        (match c.cr_rollback_bytes with
         | Some n -> string_of_int n
         | None -> "null")
        (match c.cr_restart with
         | Some (t, _) -> string_of_int t
         | None -> "null")
        (match c.cr_restart with
         | Some (_, p) -> Chrome_trace.escaped p
         | None -> "null")
        (match c.cr_recovery_latency with
         | Some l -> string_of_int l
         | None -> "null")
        (Chrome_trace.escaped (attribution r.pm_header c)))
    r.pm_crashes;
  Buffer.add_string b (if r.pm_crashes = [] then "],\n" else "\n  ],\n");
  Printf.bprintf b "  \"crash_count\": %d\n}\n" (List.length r.pm_crashes);
  Buffer.contents b
