type crash_report = {
  cr_index : int;
  cr_time : int;
  cr_ep : Endpoint.t;
  cr_server : string;
  cr_reason : string;
  cr_policy : string;
  cr_window_open : bool;
  cr_rid : int;
  cr_chain : int list;
  cr_chain_msgs : Kernel.event list;
  cr_undo_bytes : int;
  cr_rollback_bytes : int option;
  cr_restart : (int * string) option;
  cr_recovery_latency : int option;
}

type report = {
  pm_header : Journal.header;
  pm_records : int;
  pm_halt : Kernel.halt option;
  pm_crashes : crash_report list;
}

(* Streaming analysis core. The original implementation scanned the
   decoded array backwards from each crash (undo-log window state) and
   forwards to its recovery; this core computes the identical report in
   two forward passes over any event source, so journals stream through
   it without materializing the array:

   - Undo-log bytes live in the crashed compartment's *current* window.
     The backward scan ("sum E_store_logged since the last
     E_window_open, zeroed by E_window_close") is equivalent to a
     forward per-compartment accumulator: reset to 0 at both window
     boundaries, add store bytes unless the last boundary was a close
     (stores before any boundary count — the backward scan runs off the
     start of the journal and returns its sum).

   - Recovery resolution ("first rollback/restart after the crash,
     stopping at the compartment's next crash") becomes a pending
     episode per compartment: the first E_rollback_end fills the
     rollback slot, the first E_restart fills the restart slot and
     closes the episode, a new crash finalizes whatever was pending.

   - Causal chains need the rid -> parent map of the *whole* journal
     (Replay.rid_chain's contract), so chains and their delivery events
     resolve after the pass: pass one accrues parents (two ints per
     E_msg — the only per-record state kept), pass two picks up the
     first E_msg delivery for exactly the rids on some crash's chain. *)

type pending = {
  p_index : int;
  p_time : int;
  p_ep : Endpoint.t;
  p_reason : string;
  p_policy : string;
  p_window_open : bool;
  p_rid : int;
  p_undo : int;
  mutable p_rollback : (int * int) option;  (* time, bytes *)
  mutable p_restart : (int * string) option;
  mutable p_done : bool;
}

let analyze_iter header ~iter =
  let parents = Hashtbl.create 256 in
  let wclosed = Hashtbl.create 8 in  (* ep -> last boundary was a close *)
  let wacc = Hashtbl.create 8 in     (* ep -> undo bytes in current window *)
  let pending = Hashtbl.create 8 in  (* ep -> open recovery episode *)
  let finished = ref [] in
  let n = ref 0 in
  let last = ref None in
  let finalize ep =
    match Hashtbl.find_opt pending ep with
    | Some p ->
      Hashtbl.remove pending ep;
      finished := p :: !finished
    | None -> ()
  in
  iter (fun ev ->
      (match ev with
       | Kernel.E_msg { rid; parent; _ } -> Hashtbl.replace parents rid parent
       | Kernel.E_window_open { ep; _ } ->
         Hashtbl.replace wclosed ep false;
         Hashtbl.replace wacc ep 0
       | Kernel.E_window_close { ep; _ } ->
         Hashtbl.replace wclosed ep true;
         Hashtbl.replace wacc ep 0
       | Kernel.E_store_logged { ep; bytes; _ } ->
         if not (Option.value ~default:false (Hashtbl.find_opt wclosed ep))
         then
           Hashtbl.replace wacc ep
             (Option.value ~default:0 (Hashtbl.find_opt wacc ep) + bytes)
       | Kernel.E_crash { time; ep; reason; window_open; rid; policy } ->
         finalize ep;
         Hashtbl.replace pending ep
           { p_index = !n;
             p_time = time;
             p_ep = ep;
             p_reason = reason;
             p_policy = policy;
             p_window_open = window_open;
             p_rid = rid;
             p_undo = Option.value ~default:0 (Hashtbl.find_opt wacc ep);
             p_rollback = None;
             p_restart = None;
             p_done = false }
       | Kernel.E_rollback_end { time; ep; bytes; _ } ->
         (match Hashtbl.find_opt pending ep with
          | Some p when (not p.p_done) && p.p_rollback = None ->
            p.p_rollback <- Some (time, bytes)
          | _ -> ())
       | Kernel.E_restart { time; ep; policy; _ } ->
         (match Hashtbl.find_opt pending ep with
          | Some p when (not p.p_done) && p.p_restart = None ->
            p.p_restart <- Some (time, policy);
            p.p_done <- true
          | _ -> ())
       | _ -> ());
      last := Some ev;
      incr n);
  Hashtbl.iter (fun _ p -> finished := p :: !finished) pending;
  Hashtbl.reset pending;
  let crashes =
    List.sort (fun a b -> compare a.p_index b.p_index) !finished
  in
  let chains =
    List.map (fun p -> Replay.chain_of_parents parents p.p_rid) crashes
  in
  (* Second pass only when some chain needs its deliveries resolved:
     first E_msg per needed rid, nothing else retained. *)
  let needed = Hashtbl.create 64 in
  List.iter
    (fun chain ->
       List.iter
         (fun rid ->
            if not (Hashtbl.mem needed rid) then Hashtbl.add needed rid None)
         chain)
    chains;
  if Hashtbl.length needed > 0 then
    iter (fun ev ->
        match ev with
        | Kernel.E_msg { rid; _ } ->
          (match Hashtbl.find_opt needed rid with
           | Some None -> Hashtbl.replace needed rid (Some ev)
           | _ -> ())
        | _ -> ());
  let reports =
    List.map2
      (fun p chain ->
         let latency =
           match p.p_restart, p.p_rollback with
           | Some (t, _), _ -> Some (t - p.p_time)
           | None, Some (t, _) -> Some (t - p.p_time)
           | None, None -> None
         in
         { cr_index = p.p_index;
           cr_time = p.p_time;
           cr_ep = p.p_ep;
           cr_server = Endpoint.server_name p.p_ep;
           cr_reason = p.p_reason;
           cr_policy = p.p_policy;
           cr_window_open = p.p_window_open;
           cr_rid = p.p_rid;
           cr_chain = chain;
           cr_chain_msgs =
             List.filter_map
               (fun rid -> Option.join (Hashtbl.find_opt needed rid))
               chain;
           cr_undo_bytes = p.p_undo;
           cr_rollback_bytes = Option.map snd p.p_rollback;
           cr_restart = p.p_restart;
           cr_recovery_latency = latency })
      crashes chains
  in
  let halt =
    match !last with
    | Some (Kernel.E_halt { halt; _ }) -> Some halt
    | _ -> None
  in
  { pm_header = header;
    pm_records = !n;
    pm_halt = halt;
    pm_crashes = reports }

let analyze header events =
  analyze_iter header ~iter:(fun f -> Array.iter f events)

let analyze_journal s =
  match Journal.header_of_string s with
  | Error m -> Error m
  | Ok (header, _) ->
    let exception Err of string in
    (try
       let iter f =
         match Journal.fold s ~init:() ~f:(fun () ev -> f ev) with
         | Ok () -> ()
         | Error m -> raise (Err m)
       in
       Ok (analyze_iter header ~iter)
     with Err m -> Error m)

let attribution header c =
  let root =
    match List.rev c.cr_chain with r :: _ -> r | [] -> c.cr_rid
  in
  if header.Journal.jh_crash <> "none"
     && header.Journal.jh_crash = c.cr_server then
    Printf.sprintf
      "crash of %s attributed to the armed fault injection at %s \
       (count=%d), reached while handling rid %d (root request rid %d)"
      c.cr_server header.Journal.jh_crash header.Journal.jh_crash_count
      c.cr_rid root
  else if c.cr_rid = 0 then
    Printf.sprintf "crash of %s in loop/init code (%s), no request context"
      c.cr_server c.cr_reason
  else
    Printf.sprintf
      "crash of %s (%s) while handling rid %d, rooted at request rid %d"
      c.cr_server c.cr_reason c.cr_rid root

let render header r =
  let b = Buffer.create 1024 in
  Printf.bprintf b "postmortem: %s\n" (Journal.header_to_string header);
  Printf.bprintf b "records: %d, crashes: %d, halt: %s\n" r.pm_records
    (List.length r.pm_crashes)
    (match r.pm_halt with
     | Some h -> Kernel.halt_to_string h
     | None -> "<journal ends before halt>");
  List.iter
    (fun c ->
      Printf.bprintf b "\ncrash #%d at t=%d (record %d)\n" c.cr_index
        c.cr_time c.cr_index;
      Printf.bprintf b "  compartment: %s  policy: %s\n" c.cr_server
        c.cr_policy;
      Printf.bprintf b "  reason: %s\n" c.cr_reason;
      Printf.bprintf b "  window: %s, undo log at crash: %d bytes\n"
        (if c.cr_window_open then "open" else "closed")
        c.cr_undo_bytes;
      Printf.bprintf b "  causal chain: %s\n"
        (if c.cr_chain = [] then "(root context)"
         else String.concat " < " (List.map string_of_int c.cr_chain));
      List.iter
        (fun ev -> Printf.bprintf b "    %s\n" (Replay.pp_event ev))
        c.cr_chain_msgs;
      (match c.cr_rollback_bytes with
       | Some bytes -> Printf.bprintf b "  rollback: %d bytes restored\n" bytes
       | None -> Buffer.add_string b "  rollback: none recorded\n");
      (match c.cr_restart with
       | Some (t, policy) ->
         Printf.bprintf b "  restart: t=%d under policy %s\n" t policy
       | None -> Buffer.add_string b "  restart: none recorded\n");
      (match c.cr_recovery_latency with
       | Some l -> Printf.bprintf b "  recovery latency: %d cycles\n" l
       | None -> Buffer.add_string b "  recovery latency: unresolved\n");
      Printf.bprintf b "  root cause: %s\n" (attribution header c))
    r.pm_crashes;
  Buffer.contents b

let to_json r =
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\n  \"journal\": %s,\n"
    (Chrome_trace.escaped (Journal.header_to_string r.pm_header));
  Printf.bprintf b "  \"seed\": %d,\n" r.pm_header.Journal.jh_seed;
  Printf.bprintf b "  \"records\": %d,\n" r.pm_records;
  Printf.bprintf b "  \"halt\": %s,\n"
    (match r.pm_halt with
     | Some h -> Chrome_trace.escaped (Kernel.halt_to_string h)
     | None -> "null");
  Printf.bprintf b "  \"crashes\": [";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "\n    {\n      \"index\": %d,\n      \"time\": %d,\n\
        \      \"compartment\": %s,\n      \"policy\": %s,\n\
        \      \"reason\": %s,\n      \"window_open\": %b,\n\
        \      \"rid\": %d,\n      \"chain\": [%s],\n\
        \      \"undo_bytes\": %d,\n      \"rollback_bytes\": %s,\n\
        \      \"restart_time\": %s,\n      \"restart_policy\": %s,\n\
        \      \"recovery_latency\": %s,\n      \"root_cause\": %s\n    }"
        c.cr_index c.cr_time
        (Chrome_trace.escaped c.cr_server)
        (Chrome_trace.escaped c.cr_policy)
        (Chrome_trace.escaped c.cr_reason)
        c.cr_window_open c.cr_rid
        (String.concat ", " (List.map string_of_int c.cr_chain))
        c.cr_undo_bytes
        (match c.cr_rollback_bytes with
         | Some n -> string_of_int n
         | None -> "null")
        (match c.cr_restart with
         | Some (t, _) -> string_of_int t
         | None -> "null")
        (match c.cr_restart with
         | Some (_, p) -> Chrome_trace.escaped p
         | None -> "null")
        (match c.cr_recovery_latency with
         | Some l -> string_of_int l
         | None -> "null")
        (Chrome_trace.escaped (attribution r.pm_header c)))
    r.pm_crashes;
  Buffer.add_string b (if r.pm_crashes = [] then "],\n" else "\n  ],\n");
  Printf.bprintf b "  \"crash_count\": %d\n}\n" (List.length r.pm_crashes);
  Buffer.contents b
