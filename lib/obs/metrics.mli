(** Named metrics registry: counters, gauges and log-bucketed
    histograms.

    Registration ({!counter} / {!gauge} / {!histogram}) is
    get-or-create by name and is meant to run once at setup — it
    allocates and consults a hash table. The handles it returns are
    bare mutable cells: {!incr} / {!add} / {!set} /
    {!Histogram.observe} are single integer mutations, O(1) and
    allocation-free, so a series can sit on the kernel's hot path.
    With no registry in the picture nothing is ever allocated — there
    is no global state, no implicit sink.

    This replaces ad-hoc counter plumbing: consumers that used to grow
    a field in [Kernel.t] per quantity can register a series instead,
    and [Obs_collector.snapshot_server_stats] republishes the kernel's
    per-server lifetime counters (checkpoint work, rollback bytes,
    dedup hits, ...) as first-class gauges. *)

type t

type counter
type gauge

type value =
  | V_counter of int
  | V_gauge of int
  | V_hist of Histogram.t

val create : unit -> t

val counter : t -> string -> counter
(** Get or create. Raises [Invalid_argument] if [name] is already
    registered as a different kind. *)

val gauge : t -> string -> gauge
val histogram : t -> string -> Histogram.t

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set : gauge -> int -> unit
val gauge_value : gauge -> int

val dump : t -> (string * value) list
(** All series, deterministically sorted by name — registration order
    is a runtime accident (hook installation order), and sorted output
    keeps reports and JSON artifacts diff-stable across runs. *)

val find : t -> string -> value option
