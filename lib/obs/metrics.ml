type counter = { mutable c : int }
type gauge = { mutable g : int }

type value =
  | V_counter of int
  | V_gauge of int
  | V_hist of Histogram.t

type series =
  | S_counter of counter
  | S_gauge of gauge
  | S_hist of Histogram.t

type t = {
  tbl : (string, series) Hashtbl.t;
  mutable names : string list;  (* reverse registration order *)
}

let create () = { tbl = Hashtbl.create 64; names = [] }

let register t name mk =
  match Hashtbl.find_opt t.tbl name with
  | Some s -> s
  | None ->
    let s = mk () in
    Hashtbl.replace t.tbl name s;
    t.names <- name :: t.names;
    s

let kind_error name =
  invalid_arg
    (Printf.sprintf "Metrics: %S already registered as a different kind" name)

let counter t name =
  match register t name (fun () -> S_counter { c = 0 }) with
  | S_counter c -> c
  | _ -> kind_error name

let gauge t name =
  match register t name (fun () -> S_gauge { g = 0 }) with
  | S_gauge g -> g
  | _ -> kind_error name

let histogram t name =
  match register t name (fun () -> S_hist (Histogram.create ())) with
  | S_hist h -> h
  | _ -> kind_error name

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let counter_value c = c.c

let set g v = g.g <- v
let gauge_value g = g.g

let value_of = function
  | S_counter c -> V_counter c.c
  | S_gauge g -> V_gauge g.g
  | S_hist h -> V_hist h

let dump t =
  (* Sorted by name, not registration order: reports and JSON
     artifacts stay diff-stable no matter which code path registered
     its series first. *)
  List.map
    (fun name -> (name, value_of (Hashtbl.find t.tbl name)))
    (List.sort compare t.names)

let find t name = Option.map value_of (Hashtbl.find_opt t.tbl name)
