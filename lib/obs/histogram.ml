type t = {
  counts : int array;
  mutable n : int;
  mutable total : int;
  mutable max_v : int;
  mutable min_v : int;
}

let n_buckets = 64

let create () =
  { counts = Array.make n_buckets 0;
    n = 0;
    total = 0;
    max_v = 0;
    min_v = max_int }

(* Bit length of v = bucket index; tail-recursive over immediate ints,
   so it never allocates. *)
let rec bits v acc =
  if v = 0 then acc
  else if v land lnot 0xFFFF <> 0 then bits (v lsr 16) (acc + 16)
  else if v land 0xFF00 <> 0 then bits (v lsr 8) (acc + 8)
  else bits (v lsr 1) (acc + 1)

let[@inline] bucket_of v = if v <= 0 then 0 else bits v 0

let observe t v =
  let b = bucket_of v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.n <- t.n + 1;
  t.total <- t.total + v;
  if v > t.max_v then t.max_v <- v;
  if v < t.min_v then t.min_v <- v

let count t = t.n
let sum t = t.total
let mean t = if t.n = 0 then 0. else float_of_int t.total /. float_of_int t.n
let max_value t = t.max_v
let min_value t = if t.n = 0 then 0 else t.min_v

let upper_bound b = if b = 0 then 0 else (1 lsl b) - 1

let percentile t p =
  if t.n = 0 then 0.
  else begin
    let rank =
      max 1 (int_of_float (ceil (p /. 100. *. float_of_int t.n)))
    in
    let rec go b cum =
      if b >= n_buckets then float_of_int t.max_v
      else
        let cum = cum + t.counts.(b) in
        if cum >= rank then float_of_int (min (upper_bound b) t.max_v)
        else go (b + 1) cum
    in
    go 0 0
  end

let p50 t = percentile t 50.
let p95 t = percentile t 95.
let p99 t = percentile t 99.

let buckets t =
  let out = ref [] in
  for b = n_buckets - 1 downto 0 do
    if t.counts.(b) > 0 then out := (upper_bound b, t.counts.(b)) :: !out
  done;
  !out

let clear t =
  Array.fill t.counts 0 n_buckets 0;
  t.n <- 0;
  t.total <- 0;
  t.max_v <- 0;
  t.min_v <- max_int
