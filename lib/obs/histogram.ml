type t = {
  counts : int array;
  mutable n : int;
  mutable total : int;
  mutable max_v : int;
  mutable min_v : int;
}

let n_buckets = 64

let create () =
  { counts = Array.make n_buckets 0;
    n = 0;
    total = 0;
    max_v = 0;
    min_v = max_int }

(* Bit length of v = bucket index; tail-recursive over immediate ints,
   so it never allocates. *)
let rec bits v acc =
  if v = 0 then acc
  else if v land lnot 0xFFFF <> 0 then bits (v lsr 16) (acc + 16)
  else if v land 0xFF00 <> 0 then bits (v lsr 8) (acc + 8)
  else bits (v lsr 1) (acc + 1)

let[@inline] bucket_of v = if v <= 0 then 0 else bits v 0

let observe t v =
  let b = bucket_of v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.n <- t.n + 1;
  t.total <- t.total + v;
  if v > t.max_v then t.max_v <- v;
  if v < t.min_v then t.min_v <- v

let count t = t.n
let sum t = t.total
let mean t = if t.n = 0 then 0. else float_of_int t.total /. float_of_int t.n
let max_value t = t.max_v
let min_value t = if t.n = 0 then 0 else t.min_v

let upper_bound b = if b = 0 then 0 else (1 lsl b) - 1

let percentile t p =
  if t.n = 0 then 0.
  else begin
    let rank =
      max 1 (int_of_float (ceil (p /. 100. *. float_of_int t.n)))
    in
    let rec go b cum =
      if b >= n_buckets then float_of_int t.max_v
      else
        let cum = cum + t.counts.(b) in
        if cum >= rank then float_of_int (min (upper_bound b) t.max_v)
        else go (b + 1) cum
    in
    go 0 0
  end

let p50 t = percentile t 50.
let p95 t = percentile t 95.
let p99 t = percentile t 99.

let buckets t =
  let out = ref [] in
  for b = n_buckets - 1 downto 0 do
    if t.counts.(b) > 0 then out := (upper_bound b, t.counts.(b)) :: !out
  done;
  !out

let merge_into ~into src =
  for b = 0 to n_buckets - 1 do
    into.counts.(b) <- into.counts.(b) + src.counts.(b)
  done;
  into.n <- into.n + src.n;
  into.total <- into.total + src.total;
  if src.max_v > into.max_v then into.max_v <- src.max_v;
  if src.min_v < into.min_v then into.min_v <- src.min_v

let merge a b =
  let t = create () in
  merge_into ~into:t a;
  merge_into ~into:t b;
  t

let of_buckets ?sum:total_opt ?min_value:min_opt ?max_value:max_opt bs =
  let t = create () in
  List.iter
    (fun (ub, c) ->
       if c < 0 then invalid_arg "Histogram.of_buckets: negative count";
       if c > 0 then begin
         let b = bucket_of ub in
         t.counts.(b) <- t.counts.(b) + c;
         t.n <- t.n + c;
         t.total <- t.total + (c * upper_bound b)
       end)
    bs;
  if t.n > 0 then begin
    (match total_opt with Some s -> t.total <- s | None -> ());
    let lo = ref 0 and hi = ref 0 in
    for b = n_buckets - 1 downto 0 do
      if t.counts.(b) > 0 then lo := b
    done;
    for b = 0 to n_buckets - 1 do
      if t.counts.(b) > 0 then hi := b
    done;
    t.max_v <- (match max_opt with Some v -> v | None -> upper_bound !hi);
    t.min_v <-
      (match min_opt with
       | Some v -> v
       | None -> if !lo = 0 then 0 else upper_bound (!lo - 1) + 1)
  end;
  t

let clear t =
  Array.fill t.counts 0 n_buckets 0;
  t.n <- 0;
  t.total <- 0;
  t.max_v <- 0;
  t.min_v <- max_int
