(** The flight recorder's persistent event journal.

    A journal is the full-fidelity, byte-exact record of one run's
    {!Kernel.event} stream plus the header needed to re-execute it:
    seed, system spec, workload name, crash-injection spec, and a
    fingerprint of the cost table. Because the whole simulation is
    deterministic for a fixed header, a journal is a complete causal
    history — [lib/obs/replay] re-runs it and diffs record by record,
    and [lib/obs/postmortem] walks it backwards from a crash without
    re-running anything.

    Wire format (version 1):
    - 8-byte magic ["OSIRJNL1"];
    - one framed {e header record}, then one framed record per event;
    - each record is [varint payload_len ∥ payload ∥ crc32(payload)]
      (CRC-32/IEEE, little-endian), so truncation and bit flips are
      detected per record with the index of the damaged record;
    - payload fields are zigzag varints; strings are length-prefixed
      raw bytes; each event payload opens with a packed lead byte:
      the constructor's wire tag (declaration order, 0–12) in the low
      4 bits, constructor flags above — [call] and the SEEP class for
      [E_msg], [policy] for [E_window_close], [window_open] for
      [E_crash], the halt kind for [E_halt];
    - [time] and [rid] are delta-coded against the previous record
      (time is monotone, rids repeat across consecutive events — both
      usually land in one byte), and [E_msg.parent] is stored as
      [rid - parent]; the reader mirrors the two-counter state.

    Recording is two-stage. While the run is live, each event costs a
    few plain int stores: the writer owns a {!Kernel.capture} raw log
    and the kernel's emission sites append scalar entries to it with
    no closure call and no encoding (install it with
    [Kernel.set_capture]; [System.build ?journal] does). The codec —
    zigzag varints, framing, batched CRC sweeps, channel writes — runs
    in {!close} (or amortized, when a long run fills the log's fixed
    memory budget) over warm buffers, allocation-free. That split is
    what holds [bench/journal_bench.ml]'s <5% attached-recording
    overhead gate, alongside its encode zero-allocation and
    bytes-per-event gates. {!records_written} and {!bytes_written}
    force the pending encode sweep, so they are exact at any point.

    Two writer modes cover the recording spectrum:
    - {!to_file} streams every record (full fidelity, unbounded);
    - bounded-memory ring recording reuses {!Tracer}'s last-N ring
      with {!Tracer.set_snapshot_on} and serializes the snapshot via
      {!of_events} — the mid-run crash-history spill. *)

type header = {
  jh_version : int;           (** {!version} at write time. *)
  jh_seed : int;
  jh_arch : Kernel.arch;
  jh_spec : string;           (** [Sysconf.parse]-able system spec. *)
  jh_workload : string;       (** Workload name ([Flight.workloads]). *)
  jh_crash : string;          (** Crash-injection target server, or ["none"]. *)
  jh_crash_count : int;       (** Injected crashes armed at [jh_crash]. *)
  jh_cost_fingerprint : int;  (** {!Costs.fingerprint} of the run's table. *)
}

val version : int

val header_to_string : header -> string
(** One human-readable line (for reports and logs). *)

(** {1 Writing} *)

type writer

val to_file : path:string -> header -> writer
(** Stream records to [path] (buffered; {!close} flushes). *)

val to_memory : header -> writer
(** Accumulate the encoded journal in memory; read it back with
    {!contents}. Used by tests and the replay property. *)

val write : writer -> Kernel.event -> unit
(** Append one framed event record from a constructed event — the
    event-hook form of the encoder, used by {!of_events} and anywhere
    an event value already exists. No-op after {!close}. *)

val capture : writer -> Kernel.capture
(** The writer's raw capture log, for [Kernel.set_capture] (this is
    what [System.build ?journal] installs): the kernel appends each
    event's scalar fields directly, and the writer's drain encodes
    them in batches off the hot path. For the same logical event
    stream, the capture path and {!write} produce byte-identical
    journals. Events captured after {!close} are discarded. *)

val close : writer -> unit
(** Flush and (for file writers) close the channel. Idempotent. *)

val contents : writer -> string
(** The encoded journal of a {!to_memory} writer.
    @raise Invalid_argument on a file writer. *)

val records_written : writer -> int
val bytes_written : writer -> int
(** Framing included; [bytes_written / records_written] is the
    bytes-per-event figure the bench gates. *)

val of_events : header -> Kernel.event list -> string
(** Encode a complete journal from an in-memory event list — the ring
    spill: feed it {!Tracer.last_snapshot} to persist the last-N
    history captured at a crash. *)

(** {1 Reading}

    Reading is total: damaged input — truncation, bit flips, unknown
    tags, trailing bytes — comes back as [Error] naming the damaged
    record, never as an escaped exception.

    One deliberate exception, WAL-style: truncation {e exactly at a
    record boundary} reads as a valid shorter journal. That is what a
    crash-interrupted recorder leaves after its last completed flush —
    precisely the journal one most needs to read — and ring-mode
    journals legitimately end before the halt ([Postmortem] reports
    [pm_halt = None]). Truncation anywhere inside a record is an
    [Error]. *)

val read_string : string -> (header * Kernel.event array, string) result

val read_file : string -> (header * Kernel.event array, string) result
(** [read_string] over the file's bytes; I/O errors become [Error]. *)

(** {1 Event accessors}

    Uniform projections over the 13 constructors, shared by replay and
    postmortem. *)

val event_rid : Kernel.event -> int
(** The causal request id the event is tagged with (0 for [E_halt],
    [E_hang_detected], and root-context events). *)

val event_time : Kernel.event -> int

val event_ep : Kernel.event -> Endpoint.t option
(** The component the event belongs to: [dst] for deliveries, [src]
    for replies, the component itself elsewhere, [None] for halts. *)

val event_kind : Kernel.event -> int
(** The constructor's wire tag (declaration order, 0–13) — the stable
    "event kind" code block summaries and queries share. *)

val n_kinds : int

val kind_name : int -> string
(** ["msg"], ["reply"], ["window_open"], ... ["spawn"].
    @raise Invalid_argument out of range. *)

val kind_of_name : string -> int option

(** {1 Streaming decode}

    A pull cursor over the framed records: each {!stream_next}
    unframes, CRC-checks and decodes exactly one record, so consumers
    that fold over the stream (replay, postmortem, queries) never
    materialize the event array. Damage surfaces as [Error] at the
    damaged record, exactly like {!read_string}. *)

val header_of_string : string -> (header * int, string) result
(** Decode just the header record; also returns the byte offset of the
    first event record. *)

type stream

val stream_of_string : string -> (header * stream, string) result

val stream_next : stream -> (Kernel.event option, string) result
(** [Ok None] at end of journal (boundary truncation included,
    WAL-style); [Error] on in-record damage. *)

(** {1 Sidecar block index}

    The journal stays append-only and delta-coded; seekability comes
    from a {e sidecar} index ([journal.idx]) that segments the record
    stream into fixed-count blocks and stores, per block: the byte
    offset of its first frame, the decoder's delta-state {e restart
    bases} (time, rid) on entry — what makes a mid-file decode exact —
    the block's vtime and rid ranges, and presence bitmaps over
    endpoints, event kinds (wire tags) and message tags. Summaries are
    CRC-framed like journal records, and the index binds to its
    journal through a length + head/tail CRC fingerprint, so a
    truncated, bit-flipped or stale sidecar reads as [Error] — which
    consumers treat as "no index": silent degradation to a full scan,
    never a wrong answer. *)

type block = {
  blk_off : int;        (** Byte offset of the block's first frame. *)
  blk_count : int;      (** Records in the block (>= 1). *)
  blk_base_time : int;  (** Delta restart base entering the block. *)
  blk_base_rid : int;
  blk_time_min : int;
  blk_time_max : int;
  blk_rid_min : int;
  blk_rid_max : int;
  blk_ep_mask : int;    (** Presence bitmap over {!event_ep} ({!mask_mem}). *)
  blk_kind_mask : int;  (** Presence bitmap over {!event_kind} (exact). *)
  blk_tag_mask : int;   (** Presence bitmap over [Message.Tag.to_index]. *)
}

type index = {
  ix_journal_len : int;
  ix_head_crc : int;
  ix_tail_crc : int;
  ix_records : int;
  ix_blocks : block array;
}

val index_suffix : string
(** [".idx"] — the conventional sidecar path is [journal ^ ".idx"]. *)

val default_block_records : int

val mask_mem : int -> int -> bool
(** [mask_mem mask i]: may a value [i] be present? Exact for [i < 62];
    values at or above the clamp share a saturating bit, so the answer
    is conservative (true = maybe) — sound for pushdown either way. *)

val build_index :
  ?block_records:int -> ?verify_crc:bool -> string -> (index, string) result
(** One summary-scan pass over the journal bytes (no event
    materialization). The same function serves record-time indexing
    ([Flight.record] runs it over the bytes it just encoded) and
    post-hoc rebuilds ([osiris index]) — both produce identical
    sidecars. [verify_crc:false] (default [true]) skips the per-record
    payload checksums; it is only for bytes produced in-process that
    cannot have picked up storage corruption — rebuilds from disk must
    keep the default. *)

val index_to_string : index -> string

val index_of_string : journal:string -> string -> (index, string) result
(** Decode and validate a sidecar against the journal bytes it claims
    to describe. [Error] on damage of any kind {e or} on a fingerprint
    mismatch (stale index) — callers fall back to a full scan. *)

val write_index_file : path:string -> index -> unit

val read_index_file : journal:string -> string -> (index, string) result

(** {1 Selective fold} *)

type scan_stats = {
  mutable sc_blocks_total : int;
  mutable sc_blocks_scanned : int;
  mutable sc_blocks_skipped : int;
  mutable sc_records_decoded : int;  (** Also counted on full scans. *)
}

val scan_stats : unit -> scan_stats
(** Fresh zeroed counters. *)

val fold :
  ?index:index ->
  ?select:(block -> bool) ->
  ?stats:scan_stats ->
  string ->
  init:'a ->
  f:('a -> Kernel.event -> 'a) ->
  ('a, string) result
(** Stream every event through [f] in record order. With [index], only
    blocks for which [select] returns true are decoded (default: all);
    [select] must be conservative — return true whenever the block
    {e could} contain a matching event — and then the fold over
    matching events is identical to a full scan's. Without [index] the
    whole journal is decoded ([select] is not consulted). *)

val iter_blocks :
  ?select:(block -> bool) ->
  ?stats:scan_stats ->
  index ->
  string ->
  f:(block -> Kernel.event -> unit) ->
  (unit, string) result
(** Block-at-a-time iteration (each event is passed with its block
    summary) — the lower-level sibling of {!fold}. *)
