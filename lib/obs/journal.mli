(** The flight recorder's persistent event journal.

    A journal is the full-fidelity, byte-exact record of one run's
    {!Kernel.event} stream plus the header needed to re-execute it:
    seed, system spec, workload name, crash-injection spec, and a
    fingerprint of the cost table. Because the whole simulation is
    deterministic for a fixed header, a journal is a complete causal
    history — [lib/obs/replay] re-runs it and diffs record by record,
    and [lib/obs/postmortem] walks it backwards from a crash without
    re-running anything.

    Wire format (version 1):
    - 8-byte magic ["OSIRJNL1"];
    - one framed {e header record}, then one framed record per event;
    - each record is [varint payload_len ∥ payload ∥ crc32(payload)]
      (CRC-32/IEEE, little-endian), so truncation and bit flips are
      detected per record with the index of the damaged record;
    - payload fields are zigzag varints; strings are length-prefixed
      raw bytes; each event payload opens with a packed lead byte:
      the constructor's wire tag (declaration order, 0–12) in the low
      4 bits, constructor flags above — [call] and the SEEP class for
      [E_msg], [policy] for [E_window_close], [window_open] for
      [E_crash], the halt kind for [E_halt];
    - [time] and [rid] are delta-coded against the previous record
      (time is monotone, rids repeat across consecutive events — both
      usually land in one byte), and [E_msg.parent] is stored as
      [rid - parent]; the reader mirrors the two-counter state.

    Recording is two-stage. While the run is live, each event costs a
    few plain int stores: the writer owns a {!Kernel.capture} raw log
    and the kernel's emission sites append scalar entries to it with
    no closure call and no encoding (install it with
    [Kernel.set_capture]; [System.build ?journal] does). The codec —
    zigzag varints, framing, batched CRC sweeps, channel writes — runs
    in {!close} (or amortized, when a long run fills the log's fixed
    memory budget) over warm buffers, allocation-free. That split is
    what holds [bench/journal_bench.ml]'s <5% attached-recording
    overhead gate, alongside its encode zero-allocation and
    bytes-per-event gates. {!records_written} and {!bytes_written}
    force the pending encode sweep, so they are exact at any point.

    Two writer modes cover the recording spectrum:
    - {!to_file} streams every record (full fidelity, unbounded);
    - bounded-memory ring recording reuses {!Tracer}'s last-N ring
      with {!Tracer.set_snapshot_on} and serializes the snapshot via
      {!of_events} — the mid-run crash-history spill. *)

type header = {
  jh_version : int;           (** {!version} at write time. *)
  jh_seed : int;
  jh_arch : Kernel.arch;
  jh_spec : string;           (** [Sysconf.parse]-able system spec. *)
  jh_workload : string;       (** Workload name ([Flight.workloads]). *)
  jh_crash : string;          (** Crash-injection target server, or ["none"]. *)
  jh_crash_count : int;       (** Injected crashes armed at [jh_crash]. *)
  jh_cost_fingerprint : int;  (** {!Costs.fingerprint} of the run's table. *)
}

val version : int

val header_to_string : header -> string
(** One human-readable line (for reports and logs). *)

(** {1 Writing} *)

type writer

val to_file : path:string -> header -> writer
(** Stream records to [path] (buffered; {!close} flushes). *)

val to_memory : header -> writer
(** Accumulate the encoded journal in memory; read it back with
    {!contents}. Used by tests and the replay property. *)

val write : writer -> Kernel.event -> unit
(** Append one framed event record from a constructed event — the
    event-hook form of the encoder, used by {!of_events} and anywhere
    an event value already exists. No-op after {!close}. *)

val capture : writer -> Kernel.capture
(** The writer's raw capture log, for [Kernel.set_capture] (this is
    what [System.build ?journal] installs): the kernel appends each
    event's scalar fields directly, and the writer's drain encodes
    them in batches off the hot path. For the same logical event
    stream, the capture path and {!write} produce byte-identical
    journals. Events captured after {!close} are discarded. *)

val close : writer -> unit
(** Flush and (for file writers) close the channel. Idempotent. *)

val contents : writer -> string
(** The encoded journal of a {!to_memory} writer.
    @raise Invalid_argument on a file writer. *)

val records_written : writer -> int
val bytes_written : writer -> int
(** Framing included; [bytes_written / records_written] is the
    bytes-per-event figure the bench gates. *)

val of_events : header -> Kernel.event list -> string
(** Encode a complete journal from an in-memory event list — the ring
    spill: feed it {!Tracer.last_snapshot} to persist the last-N
    history captured at a crash. *)

(** {1 Reading}

    Reading is total: damaged input — truncation, bit flips, unknown
    tags, trailing bytes — comes back as [Error] naming the damaged
    record, never as an escaped exception.

    One deliberate exception, WAL-style: truncation {e exactly at a
    record boundary} reads as a valid shorter journal. That is what a
    crash-interrupted recorder leaves after its last completed flush —
    precisely the journal one most needs to read — and ring-mode
    journals legitimately end before the halt ([Postmortem] reports
    [pm_halt = None]). Truncation anywhere inside a record is an
    [Error]. *)

val read_string : string -> (header * Kernel.event array, string) result

val read_file : string -> (header * Kernel.event array, string) result
(** [read_string] over the file's bytes; I/O errors become [Error]. *)

(** {1 Event accessors}

    Uniform projections over the 13 constructors, shared by replay and
    postmortem. *)

val event_rid : Kernel.event -> int
(** The causal request id the event is tagged with (0 for [E_halt],
    [E_hang_detected], and root-context events). *)

val event_time : Kernel.event -> int

val event_ep : Kernel.event -> Endpoint.t option
(** The component the event belongs to: [dst] for deliveries, [src]
    for replies, the component itself elsewhere, [None] for halts. *)
