(** Virtual-clock telemetry engine: vtime-sampled ring-buffered series.

    The paper's evaluation — and the obs stack so far — is end-of-run
    aggregates: total overhead, survivability counts, final latency
    histograms. This module is the time axis: a set of registered
    integer {e sources} is sampled every [interval] virtual cycles
    into preallocated ring buffers (flat [int array]s), so a run
    yields per-quantity series over virtual time instead of one
    number. The load engine's latency-under-load curves and the
    explorer's MTTR-over-time objective (ROADMAP items 3 and 5) both
    read from here.

    {2 Sampling contract}

    {!attach} installs a {!Kernel.set_vtime_sampler} hook; the kernel
    fires it at every multiple of [interval] the global clock crosses,
    with the boundary time. Sample timestamps are therefore the fixed
    grid [interval, 2*interval, ...] — deterministic per seed and
    independent of scheduling detail, which is what makes telemetry
    artifacts byte-identical across runs and across [--jobs] in a
    campaign.

    The hot path ({!sample}) is {e zero allocation} (a gate in
    [bench/timeseries_bench.ml], same discipline as [Undo_log] and
    [Kernel.capture]): one int-array store per source per tick, no
    closure construction, no boxing. Source read functions are bound
    once at registration and must themselves be allocation-free — the
    kernel accessors documented as such ([run_queue_depth],
    [inbox_depth], [phase_cycles], ...) and [Metrics] handle reads
    qualify.

    {2 Ring sizing}

    [capacity] is rounded up to a power of two; when a run outlives
    the ring the oldest samples are overwritten ({!dropped} counts
    them) and every series keeps its most recent [capacity] samples.
    Memory is fixed at attach time: [(n_sources + 1) * capacity]
    words, regardless of run length. *)

type kind =
  | Gauge  (** Instantaneous level: the raw read at each tick. *)
  | Delta
      (** Interval rate: the read's increase since the previous tick
          (first tick: since registration). Monotonic counters sampled
          as [Delta] yield per-interval event rates. *)

type t

val create : ?interval:int -> ?capacity:int -> unit -> t
(** [interval] (default 4096) is the sampling period in virtual
    cycles; [capacity] (default 4096) the per-series ring size in
    samples, rounded up to a power of two. Raises [Invalid_argument]
    if either is not positive. *)

val interval : t -> int
val capacity : t -> int

(** {1 Source registration}

    Sources are sampled — and serialized — in registration order,
    which must therefore be deterministic (build it from configuration,
    not from hash-table iteration). Registration is refused after
    {!attach} / the first sample ([Invalid_argument]), as the flat
    sampling arrays are frozen then; duplicate names are refused
    too. *)

val add_source : t -> name:string -> kind:kind -> (unit -> int) -> unit
(** Register an arbitrary integer source. The read function runs on
    the kernel's clock-advance path: it must be cheap and
    allocation-free. *)

val add_counter : t -> string -> Metrics.counter -> unit
(** Register a [Metrics] counter as a [Delta] source (per-interval
    rate). *)

val add_gauge : t -> string -> Metrics.gauge -> unit
(** Register a [Metrics] gauge as a [Gauge] source (level). *)

val add_kernel_sources : t -> Kernel.t -> unit
(** Register the standard kernel source set, in this fixed order:
    - [kernel.ops], [kernel.delivered], [kernel.crashes],
      [kernel.restarts] — [Delta] rates of the lifetime counters;
    - [kernel.runq] — [Gauge] scheduler run-queue depth;
    - per registered server [srv.<name>.inbox] ([Gauge] queue depth)
      and [srv.<name>.alive] ([Gauge] 0/1) — recovery state over time;
    - per phase [phase.<phase>.cycles] — [Delta] cycles per interval
      over all processes, from the kernel-global per-phase totals
      ([Kernel.total_phase_cycles], an O(1) read maintained on the
      attribution path; all zero unless [Kernel.enable_cycle_counts]
      ran before boot — [System.build ~telemetry] enables it).
    Call after the servers are registered (post-[System.build] /
    pre-boot is the wiring point). *)

val attach : t -> Kernel.t -> unit
(** Freeze the source set and install the vtime sampler on the
    kernel. Raises [Invalid_argument] when no sources are registered
    or the series is already attached. *)

val detach : t -> Kernel.t -> unit
(** Remove the sampler; the recorded samples stay readable. *)

val sample : t -> int -> unit
(** Take one sample stamped [at] — what the kernel hook calls; exposed
    for tests and manual drivers. Freezes the source set on first
    use. *)

(** {1 Reading}

    Readers index retained samples oldest-first: index [0] is the
    oldest sample still in the ring, [retained - 1] the newest. *)

val n_sources : t -> int
val source_names : t -> string list
(** Registration order (= serialization order). *)

val source_kind : t -> int -> kind
val index_of : t -> string -> int option

val samples_taken : t -> int
(** Total ticks sampled over the run, including overwritten ones. *)

val retained : t -> int
(** [min (samples_taken t) (capacity t)]. *)

val dropped : t -> int
(** Samples overwritten by ring wraparound:
    [samples_taken - retained]. *)

val time_at : t -> int -> int
(** Virtual instant of retained sample [i]. *)

val value_at : t -> source:int -> int -> int
(** Value of source [source] at retained sample [i]. *)

val values : t -> source:int -> int array
(** Copy of a source's retained series, oldest first. *)

val times : t -> int array
(** Copy of the retained timestamps, oldest first. *)

(** {1 Serialization}

    Both forms are deterministic: fixed field order, sources in
    registration order, no floats. *)

val to_csv : t -> string
(** Header [vtime,<name>,...] then one row per retained sample. *)

val to_json : t -> string
(** [{"interval":..,"samples":..,"retained":..,"dropped":..,
     "times":[..],"series":[{"name":..,"kind":..,"values":[..]},..]}]
    with names escaped via [Chrome_trace.escaped]. *)

val publish : t -> Metrics.t -> unit
(** Set the [osiris.timeline.*] summary gauges ([interval], [sources],
    [samples], [retained], [dropped]) — pre-registered by
    [Obs_collector] so [Metrics.dump] stays deterministically sorted
    whether or not telemetry ran. *)
