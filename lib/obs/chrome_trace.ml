(* Strings can carry arbitrary bytes (policy names, span names, crash
   reasons from workload code). Emit pure ASCII: C0 controls get the
   usual short escapes or \u00XX, and DEL plus every byte >= 0x80 is
   escaped as its Latin-1 code point — invalid UTF-8 input can never
   produce invalid JSON output. *)
let escape buf s =
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | c when Char.code c < 0x20 || Char.code c >= 0x7f ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s

let add_str buf s =
  Buffer.add_char buf '"';
  escape buf s;
  Buffer.add_char buf '"'

let escaped s =
  let buf = Buffer.create (String.length s + 2) in
  add_str buf s;
  Buffer.contents buf

type sep = { mutable first : bool }

let next sep buf = if sep.first then sep.first <- false else Buffer.add_string buf ",\n"

let add_meta buf sep ~tid ~name ~value =
  next sep buf;
  Buffer.add_string buf
    (Printf.sprintf "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":" tid);
  add_str buf name;
  Buffer.add_string buf ",\"args\":{\"name\":";
  add_str buf value;
  Buffer.add_string buf "}}"

let add_span buf sep (s : Span.t) =
  next sep buf;
  Buffer.add_string buf "{\"ph\":\"X\",\"pid\":1,\"tid\":";
  Buffer.add_string buf (string_of_int s.Span.sp_ep);
  Buffer.add_string buf ",\"ts\":";
  Buffer.add_string buf (string_of_int s.Span.sp_start);
  Buffer.add_string buf ",\"dur\":";
  Buffer.add_string buf (string_of_int (s.Span.sp_end - s.Span.sp_start));
  Buffer.add_string buf ",\"name\":";
  add_str buf s.Span.sp_name;
  Buffer.add_string buf ",\"cat\":";
  add_str buf (Span.kind_to_string s.Span.sp_kind);
  Buffer.add_string buf
    (Printf.sprintf
       ",\"args\":{\"rid\":%d,\"parent\":%d,\"src\":" s.Span.sp_id
       s.Span.sp_parent);
  add_str buf (Endpoint.server_name s.Span.sp_src);
  Buffer.add_string buf
    (Printf.sprintf ",\"complete\":%b}}" s.Span.sp_complete)

let add_instant buf sep ~tid ~ts ~name ~scope =
  next sep buf;
  Buffer.add_string buf
    (Printf.sprintf "{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"ts\":%d,\"s\":\"%s\",\"name\":"
       tid ts scope);
  add_str buf name;
  Buffer.add_string buf "}"

type counter_sample = {
  cs_track : string;
  cs_ts : int;
  cs_values : (string * int) list;
}

let add_counter buf sep (c : counter_sample) =
  next sep buf;
  Buffer.add_string buf "{\"ph\":\"C\",\"pid\":1,\"ts\":";
  Buffer.add_string buf (string_of_int c.cs_ts);
  Buffer.add_string buf ",\"name\":";
  add_str buf c.cs_track;
  Buffer.add_string buf ",\"args\":{";
  List.iteri
    (fun i (k, v) ->
       if i > 0 then Buffer.add_char buf ',';
       add_str buf k;
       Buffer.add_char buf ':';
       Buffer.add_string buf (string_of_int v))
    c.cs_values;
  Buffer.add_string buf "}}"

type flow_anchor = { fa_tid : int; fa_ts : int }

(* Flow arrows ("s" start / "t" step / "f" finish sharing one id) let
   Perfetto draw a request's critical path across server tracks.
   Anchors must land inside a slice on their track to attach; callers
   anchor them at span starts. Fewer than two anchors draws nothing —
   skip. *)
let add_flow buf sep ~id anchors =
  let n = List.length anchors in
  if n >= 2 then
    List.iteri
      (fun i a ->
         next sep buf;
         let ph = if i = 0 then "s" else if i = n - 1 then "f" else "t" in
         Buffer.add_string buf
           (Printf.sprintf
              "{\"ph\":\"%s\",\"pid\":1,\"tid\":%d,\"ts\":%d,\"id\":%d,\
               \"name\":\"critpath\",\"cat\":\"critpath\"%s}"
              ph a.fa_tid a.fa_ts id
              (if ph = "f" then ",\"bp\":\"e\"" else "")))
      anchors

let of_spans ?(events = []) ?(counters = []) ?(flows = []) spans =
  let buf = Buffer.create 4096 in
  let sep = { first = true } in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  add_meta buf sep ~tid:0 ~name:"process_name" ~value:"osiris";
  (* One named track per endpoint that hosts a span or instant. *)
  let eps = Hashtbl.create 16 in
  List.iter
    (fun (s : Span.t) -> Hashtbl.replace eps s.Span.sp_ep ())
    (Span.flatten spans);
  List.iter
    (function
      | Kernel.E_crash { ep; _ } | Kernel.E_hang_detected { ep; _ } ->
        Hashtbl.replace eps ep ()
      | _ -> ())
    events;
  let ep_list = List.sort compare (Hashtbl.fold (fun ep () l -> ep :: l) eps []) in
  List.iter
    (fun ep ->
       add_meta buf sep ~tid:ep ~name:"thread_name"
         ~value:(Endpoint.server_name ep))
    ep_list;
  List.iter (add_span buf sep) (Span.flatten spans);
  List.iter
    (function
      | Kernel.E_crash { time; ep; reason; policy; _ } ->
        add_instant buf sep ~tid:ep ~ts:time
          ~name:(Printf.sprintf "crash: %s [%s]" reason policy) ~scope:"t"
      | Kernel.E_hang_detected { time; ep } ->
        add_instant buf sep ~tid:ep ~ts:time ~name:"hang detected" ~scope:"t"
      | Kernel.E_halt { time; halt } ->
        add_instant buf sep ~tid:0 ~ts:time
          ~name:("halt: " ^ Kernel.halt_to_string halt) ~scope:"g"
      | _ -> ())
    events;
  List.iter (add_counter buf sep) counters;
  List.iter (fun (id, anchors) -> add_flow buf sep ~id anchors) flows;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf
