(** Flamegraph and counter-track export for the cycle profiler. *)

val folded : Profiler.t -> string
(** Folded-stack format: one [comp;phase;detail cycles] line per
    non-zero leaf, sorted — feed directly to flamegraph.pl, inferno
    or speedscope. *)

val counter_samples : Profiler.t -> Chrome_trace.counter_sample list
(** Per-phase cycle deltas between successive profiler samples of the
    same compartment (requires [Profiler.create ~sample_every]).
    Pass to [Chrome_trace.of_spans ?counters] for stacked per-phase
    rate tracks in Perfetto. *)
