(** Chrome trace-event JSON export (Perfetto / chrome://tracing).

    Emits the JSON-object form [{"traceEvents": [...]}] with:
    - one ["M"] (metadata) event naming the process and one per
      endpoint track, so Perfetto shows a labelled track per server;
    - one ["X"] (complete) event per span, [pid = 1],
      [tid = the endpoint], [ts]/[dur] in virtual cycles interpreted
      as microseconds, with the causal ids in [args];
    - one ["i"] (instant) event per crash / hang / halt when the raw
      event stream is supplied.

    The JSON is hand-rolled into a [Buffer] — the repo deliberately
    carries no JSON dependency. *)

val of_spans : ?events:Kernel.event list -> Span.t list -> string
(** Serialize a span forest (plus optional instants from the raw
    stream) to a Chrome trace-event JSON string. *)
