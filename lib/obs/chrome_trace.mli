(** Chrome trace-event JSON export (Perfetto / chrome://tracing).

    Emits the JSON-object form [{"traceEvents": [...]}] with:
    - one ["M"] (metadata) event naming the process and one per
      endpoint track, so Perfetto shows a labelled track per server;
    - one ["X"] (complete) event per span, [pid = 1],
      [tid = the endpoint], [ts]/[dur] in virtual cycles interpreted
      as microseconds, with the causal ids in [args];
    - one ["i"] (instant) event per crash / hang / halt when the raw
      event stream is supplied;
    - one ["C"] (counter) event per {!counter_sample}, rendered by
      Perfetto as stacked per-track area charts (per-phase cycle
      rates from the profiler — see [Flame.counter_samples]).

    The JSON is hand-rolled into a [Buffer] — the repo deliberately
    carries no JSON dependency. String emission is hostile-input
    safe: control characters, DEL and all non-ASCII bytes are escaped
    (each byte as its Latin-1 code point), so arbitrary policy/span
    names and crash reasons always yield valid JSON. *)

type counter_sample = {
  cs_track : string;            (** Track name, e.g. ["vfs cycles"]. *)
  cs_ts : int;                  (** Timestamp in virtual cycles. *)
  cs_values : (string * int) list;  (** Series name -> value. *)
}

type flow_anchor = {
  fa_tid : int;  (** Track (endpoint) the anchor attaches to. *)
  fa_ts : int;   (** Timestamp inside a slice on that track. *)
}

val of_spans :
  ?events:Kernel.event list -> ?counters:counter_sample list ->
  ?flows:(int * flow_anchor list) list ->
  Span.t list -> string
(** Serialize a span forest (plus optional instants from the raw
    stream and counter tracks) to a Chrome trace-event JSON string.
    Each [flows] entry [(id, anchors)] draws one flow arrow chain
    ("s"/"t"/"f" events sharing [id], category ["critpath"]) through
    its anchors in order — how [osiris why --perfetto] overlays a tail
    request's critical path across the server tracks. Chains with
    fewer than two anchors are skipped. *)

val escaped : string -> string
(** [escaped s] is [s] as a quoted JSON string literal with the
    escaping described above. Shared by every JSON artifact writer in
    the tree so hostile names stay parseable everywhere. *)
