(** Derived timelines over {!Timeseries} samples.

    Where [Timeseries] records raw per-tick values, this module turns
    them into the time-resolved quantities the evaluation needs:
    windowed rates, sliding request-latency percentiles, and recovery
    {e episodes} — crash → rollback → restart spans with a per-episode
    MTTR — and renders the result three ways: an ANSI sparkline
    dashboard, deterministic CSV/JSON artifacts, and Perfetto counter
    tracks ([Chrome_trace.counter_sample]).

    Everything here is computed once, off the sampling hot path, from
    a finished (or paused) run. All artifact numbers are integers
    computed by nearest-rank on exact samples — no float formatting —
    so artifacts are byte-stable across platforms. *)

type episode = {
  epi_server : string;      (** Crashed compartment. *)
  epi_crashed_at : int;     (** Virtual instant of the crash. *)
  epi_recovered_at : int;   (** Virtual instant of the restart. *)
  epi_mttr : int;           (** [recovered_at - crashed_at]. *)
}

type t

val build :
  ?latencies:(int * int) list ->
  ?window:int ->
  ?episodes:(string * int * int) list ->
  ?crash_times:int list ->
  Timeseries.t -> t
(** [latencies] are [(completion vtime, duration)] pairs of finished
    requests (e.g. from [Span.build] roots), in any order; the sliding
    p50/p95/p99 series at sample [i] summarize requests completing in
    the last [window] sample intervals (default 8) ending at sample
    [i]'s instant. [episodes] are [(server, crashed_at, recovered_at)]
    spans and [crash_times] raw crash instants, both in any order —
    normally from {!of_kernel}. *)

val of_kernel :
  ?latencies:(int * int) list -> ?window:int ->
  Timeseries.t -> Kernel.t -> t
(** {!build} with episodes and crash instants read from the kernel
    ([Kernel.recovery_episodes] / [Kernel.crash_times]). *)

(** {1 Reading} *)

val episodes : t -> episode list
(** Oldest first. *)

val crash_times : t -> int list
(** Oldest first — includes crashes that never recovered. *)

val mttr_mean : t -> float
(** Mean episode MTTR in virtual cycles; 0. with no episodes. *)

val windowed_rate : t -> source:int -> window:int -> int array
(** Moving sum of a series over [window] samples, one value per
    retained sample (partial windows at the start sum what exists).
    For a [Delta] series this is the event count per
    [window * interval] virtual cycles — the windowed rate. *)

val latency_counts : t -> int array
(** Requests completing within each sample's sliding window. *)

val latency_p50 : t -> int array
val latency_p95 : t -> int array
val latency_p99 : t -> int array
(** Nearest-rank percentiles of the sliding window's latencies, 0
    where the window is empty. *)

(** {1 Rendering} *)

val dashboard : ?color:bool -> t -> string
(** ANSI sparkline dashboard: one row per series (min/max/last and a
    sparkline of the retained samples), the sliding latency
    percentiles, and the recovery episodes with their MTTRs. [color]
    (default true) adds ANSI SGR codes; pass false for logs. *)

val to_csv : t -> string
(** The raw series plus the latency columns, one row per sample. *)

val to_json : t -> string
(** Deterministic artifact: raw series, latency series, episodes and
    crash instants in one object (fixed field order, ints only). *)

val counter_samples : t -> Chrome_trace.counter_sample list
(** One Perfetto counter track per series (track = series name) plus a
    ["latency"] track carrying p50/p95/p99 — feed to
    [Chrome_trace.of_spans ~counters]. *)
