(* Folded-stack flamegraph export: one line per (compartment, phase,
   detail) leaf, `comp;phase;detail cycles`, the format consumed by
   flamegraph.pl / inferno / speedscope. Profiler.rows is already
   sorted and zero-free, so the output is deterministic. *)
let folded prof =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (ep, phase, detail, c) ->
       Buffer.add_string buf (Endpoint.server_name ep);
       Buffer.add_char buf ';';
       Buffer.add_string buf (Kernel.phase_to_string phase);
       Buffer.add_char buf ';';
       Buffer.add_string buf detail;
       Buffer.add_char buf ' ';
       Buffer.add_string buf (string_of_int c);
       Buffer.add_char buf '\n')
    (Profiler.rows prof);
  Buffer.contents buf

(* Per-phase cycle deltas between successive samples of the same
   compartment: a Perfetto counter track per compartment, stacked by
   phase, showing where each interval of virtual time went. *)
let counter_samples prof =
  let last : (int, int array) Hashtbl.t = Hashtbl.create 8 in
  List.map
    (fun (s : Profiler.sample) ->
       let prev =
         match Hashtbl.find_opt last s.Profiler.sa_ep with
         | Some a -> a
         | None -> Array.make Kernel.n_phases 0
       in
       Hashtbl.replace last s.Profiler.sa_ep s.Profiler.sa_phase;
       { Chrome_trace.cs_track =
           Endpoint.server_name s.Profiler.sa_ep ^ " cycles";
         cs_ts = s.Profiler.sa_ts;
         cs_values =
           List.map
             (fun ph ->
                let pi = Kernel.phase_index ph in
                ( Kernel.phase_to_string ph,
                  s.Profiler.sa_phase.(pi) - prev.(pi) ))
             Kernel.all_phases })
    (Profiler.samples prof)
