(** Cycle-accounting profiler over the kernel's per-process slot
    counters.

    The kernel attributes every virtual-clock advance to a static
    attribution slot — a ({!Kernel.phase}, detail) pair — and, once
    {!attach} has called [Kernel.enable_cycle_counts], bumps a flat
    per-process counter row inline at each advance (no closure call,
    no allocation; gated in [bench/profiler_bench.ml]). This module is
    the read side: it groups the kernel's slot counters into
    per-(compartment, phase, detail) sums. Because the kernel counts
    {e every} advance, the counters reconstruct each process clock
    exactly — {!check_conservation} asserts that the attributed total
    for every process equals [Kernel.proc_vtime], turning "overhead is
    low" claims (paper Tables IV/V) into checked arithmetic rather
    than sampling estimates. *)

type t

type sample = {
  sa_ep : Endpoint.t;
  sa_ts : int;  (** Process-local clock when the sample fired. *)
  sa_phase : int array;
      (** Cumulative cycles per phase, indexed by [Kernel.phase_index]. *)
}

val create : ?sample_every:int -> unit -> t
(** [sample_every] > 0 snapshots a compartment's cumulative per-phase
    counters every time its clock advances by that many cycles —
    the input for Perfetto counter tracks ({!Flame.counter_samples}).
    0 (default) disables sampling, so attaching installs no cycle
    hook at all — only the kernel's inline counters run. *)

val attach : t -> Kernel.t -> unit
(** Enable the kernel's per-process cycle counters and point this
    profiler's queries at them (plus a sampling cycle hook when
    [sample_every] > 0). Attach before [Kernel.boot] for conservation
    to hold: a later attach misses the cycles already spent. *)

(** {1 Queries} *)

val endpoints : t -> Endpoint.t list
(** Compartments with attributed cycles, sorted. *)

val proc_cycles : t -> Endpoint.t -> int
val phase_cycles : t -> Endpoint.t -> Kernel.phase -> int
val phase_events : t -> Endpoint.t -> Kernel.phase -> int
val total_cycles : t -> int
val total_phase : t -> Kernel.phase -> int
val n_records : t -> int

val rows : t -> (Endpoint.t * Kernel.phase * string * int) list
(** Non-zero (compartment, phase, detail, cycles) rows, sorted by
    endpoint, phase index, then detail — the flamegraph input. *)

val samples : t -> sample list
(** Chronological per-compartment samples (empty unless
    [sample_every] was set). *)

val check_conservation : t -> Kernel.t -> (unit, string) result
(** For every process the kernel knows (servers and spawned users),
    attributed cycles must equal its clock — exact conservation, no
    drift tolerated. *)

(** {1 Rendering} *)

val report : t -> string
(** Compartment x phase cycle matrix with a totals row. *)

val to_json : t -> string
(** Deterministic JSON artifact: totals, per-compartment phase sums,
    and per-(phase;detail) breakdowns, all sorted. *)
