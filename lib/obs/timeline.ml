type episode = {
  epi_server : string;
  epi_crashed_at : int;
  epi_recovered_at : int;
  epi_mttr : int;
}

type t = {
  tl_interval : int;
  tl_window : int;
  tl_times : int array;               (* oldest first *)
  tl_names : string array;
  tl_kinds : Timeseries.kind array;
  tl_values : int array array;        (* per source, oldest first *)
  tl_dropped : int;
  tl_episodes : episode list;         (* oldest first *)
  tl_crashes : int list;              (* oldest first *)
  tl_lat_count : int array;
  tl_lat_p50 : int array;
  tl_lat_p95 : int array;
  tl_lat_p99 : int array;
}

(* Nearest-rank percentile over a sorted int slice — all integer, so
   artifacts carry no platform-dependent float formatting. *)
let rank_of p n = Osiris_util.Stats.rank ~num:p ~den:100 n

let pct_sorted a lo len p =
  if len = 0 then 0 else a.(lo + rank_of p len - 1)

let build ?(latencies = []) ?(window = 8) ?(episodes = []) ?(crash_times = [])
    series =
  if window <= 0 then invalid_arg "Timeline.build: window must be positive";
  let times = Timeseries.times series in
  let n = Array.length times in
  let n_src = Timeseries.n_sources series in
  let names = Array.of_list (Timeseries.source_names series) in
  let kinds = Array.init n_src (Timeseries.source_kind series) in
  let values = Array.init n_src (fun s -> Timeseries.values series ~source:s) in
  (* Latency pairs sorted by completion time; per sample a two-pointer
     sliding span, then a sorted copy of the span's durations. *)
  let lat = Array.of_list latencies in
  Array.sort compare lat;
  let lat_t = Array.map fst lat and lat_d = Array.map snd lat in
  let nl = Array.length lat in
  let iv = Timeseries.interval series in
  let count = Array.make n 0
  and p50 = Array.make n 0
  and p95 = Array.make n 0
  and p99 = Array.make n 0 in
  let lo = ref 0 and hi = ref 0 in
  for i = 0 to n - 1 do
    let upper = times.(i) in
    let lower = upper - (window * iv) in
    while !hi < nl && lat_t.(!hi) <= upper do incr hi done;
    while !lo < !hi && lat_t.(!lo) <= lower do incr lo done;
    let len = !hi - !lo in
    count.(i) <- len;
    if len > 0 then begin
      let slice = Array.sub lat_d !lo len in
      Array.sort compare slice;
      p50.(i) <- pct_sorted slice 0 len 50;
      p95.(i) <- pct_sorted slice 0 len 95;
      p99.(i) <- pct_sorted slice 0 len 99
    end
  done;
  let episodes =
    List.sort
      (fun (_, a, _) (_, b, _) -> compare a b)
      episodes
    |> List.map (fun (srv, c, r) ->
           { epi_server = srv;
             epi_crashed_at = c;
             epi_recovered_at = r;
             epi_mttr = r - c })
  in
  { tl_interval = iv;
    tl_window = window;
    tl_times = times;
    tl_names = names;
    tl_kinds = kinds;
    tl_values = values;
    tl_dropped = Timeseries.dropped series;
    tl_episodes = episodes;
    tl_crashes = List.sort compare crash_times;
    tl_lat_count = count;
    tl_lat_p50 = p50;
    tl_lat_p95 = p95;
    tl_lat_p99 = p99 }

let of_kernel ?latencies ?window series k =
  let episodes =
    List.rev_map
      (fun (ep, c, r) -> (Endpoint.server_name ep, c, r))
      (Kernel.recovery_episodes k)
  in
  build ?latencies ?window ~episodes ~crash_times:(Kernel.crash_times k) series

let episodes t = t.tl_episodes
let crash_times t = t.tl_crashes

let mttr_mean t =
  match t.tl_episodes with
  | [] -> 0.
  | es ->
    let sum = List.fold_left (fun acc e -> acc + e.epi_mttr) 0 es in
    float_of_int sum /. float_of_int (List.length es)

let windowed_rate t ~source ~window =
  if window <= 0 then invalid_arg "Timeline.windowed_rate";
  let v = t.tl_values.(source) in
  let n = Array.length v in
  let out = Array.make n 0 in
  let sum = ref 0 in
  for i = 0 to n - 1 do
    sum := !sum + v.(i);
    if i >= window then sum := !sum - v.(i - window);
    out.(i) <- !sum
  done;
  out

let latency_counts t = Array.copy t.tl_lat_count
let latency_p50 t = Array.copy t.tl_lat_p50
let latency_p95 t = Array.copy t.tl_lat_p95
let latency_p99 t = Array.copy t.tl_lat_p99

(* ------------------------------------------------------------------ *)
(* Dashboard                                                           *)
(* ------------------------------------------------------------------ *)

let spark_chars = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                     "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                     "\xe2\x96\x87"; "\xe2\x96\x88" |]

(* Downsample to at most [width] points (max over each cell — spikes
   must survive compression on a dashboard) and min-max normalize into
   the eight block glyphs. *)
let sparkline ?(width = 60) v =
  let n = Array.length v in
  if n = 0 then ""
  else begin
    let pts = min n width in
    let cell i =
      let lo = i * n / pts and hi = max (((i + 1) * n / pts) - 1) (i * n / pts) in
      let m = ref v.(lo) in
      for j = lo + 1 to hi do
        if v.(j) > !m then m := v.(j)
      done;
      !m
    in
    let cells = Array.init pts cell in
    let mn = Array.fold_left min cells.(0) cells in
    let mx = Array.fold_left max cells.(0) cells in
    let b = Buffer.create (pts * 3) in
    Array.iter
      (fun x ->
         let level =
           if mx = mn then 0
           else (x - mn) * (Array.length spark_chars - 1) / (mx - mn)
         in
         Buffer.add_string b spark_chars.(level))
      cells;
    Buffer.contents b
  end

let arr_min v = Array.fold_left min max_int v
let arr_max v = Array.fold_left max min_int v

let dashboard ?(color = true) t =
  let b = Buffer.create 4096 in
  let dim s = if color then "\x1b[2m" ^ s ^ "\x1b[0m" else s in
  let bold s = if color then "\x1b[1m" ^ s ^ "\x1b[0m" else s in
  let n = Array.length t.tl_times in
  Buffer.add_string b
    (bold (Printf.sprintf "telemetry: %d samples every %d vcycles%s\n" n
             t.tl_interval
             (if t.tl_dropped > 0 then
                Printf.sprintf " (%d dropped by ring wrap)" t.tl_dropped
              else "")));
  let row name v =
    if n = 0 then ()
    else
      Buffer.add_string b
        (Printf.sprintf "  %-24s %s %s\n" name (sparkline v)
           (dim
              (Printf.sprintf "min %d  max %d  last %d" (arr_min v) (arr_max v)
                 v.(n - 1))))
  in
  Array.iteri (fun s nm -> row nm t.tl_values.(s)) t.tl_names;
  if n > 0 then begin
    Buffer.add_string b
      (bold
         (Printf.sprintf "request latency (sliding %d-sample window)\n"
            t.tl_window));
    row "p50" t.tl_lat_p50;
    row "p95" t.tl_lat_p95;
    row "p99" t.tl_lat_p99;
    row "completions" t.tl_lat_count
  end;
  Buffer.add_string b
    (bold
       (Printf.sprintf "recovery: %d crash(es), %d episode(s)%s\n"
          (List.length t.tl_crashes)
          (List.length t.tl_episodes)
          (if t.tl_episodes = [] then ""
           else Printf.sprintf ", mean MTTR %.0f vcycles" (mttr_mean t))));
  List.iter
    (fun e ->
       Buffer.add_string b
         (Printf.sprintf "  %-8s crash @%-10d restart @%-10d mttr %d\n"
            e.epi_server e.epi_crashed_at e.epi_recovered_at e.epi_mttr))
    t.tl_episodes;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Artifacts                                                           *)
(* ------------------------------------------------------------------ *)

let to_csv t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "vtime";
  Array.iter
    (fun nm ->
       Buffer.add_char b ',';
       Buffer.add_string b nm)
    t.tl_names;
  Buffer.add_string b ",lat_count,lat_p50,lat_p95,lat_p99\n";
  Array.iteri
    (fun i at ->
       Buffer.add_string b (string_of_int at);
       Array.iter
         (fun v ->
            Buffer.add_char b ',';
            Buffer.add_string b (string_of_int v.(i)))
         t.tl_values;
       Buffer.add_string b
         (Printf.sprintf ",%d,%d,%d,%d\n" t.tl_lat_count.(i) t.tl_lat_p50.(i)
            t.tl_lat_p95.(i) t.tl_lat_p99.(i)))
    t.tl_times;
  Buffer.contents b

let add_int_array b vals =
  Buffer.add_char b '[';
  Array.iteri
    (fun i v ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b (string_of_int v))
    vals;
  Buffer.add_char b ']'

let kind_to_string = function
  | Timeseries.Gauge -> "gauge"
  | Timeseries.Delta -> "delta"

let to_json t =
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\"interval\":";
  Buffer.add_string b (string_of_int t.tl_interval);
  Buffer.add_string b ",\"window\":";
  Buffer.add_string b (string_of_int t.tl_window);
  Buffer.add_string b ",\"dropped\":";
  Buffer.add_string b (string_of_int t.tl_dropped);
  Buffer.add_string b ",\"times\":";
  add_int_array b t.tl_times;
  Buffer.add_string b ",\"series\":[";
  Array.iteri
    (fun s nm ->
       if s > 0 then Buffer.add_char b ',';
       Buffer.add_string b "{\"name\":";
       Buffer.add_string b (Chrome_trace.escaped nm);
       Buffer.add_string b ",\"kind\":\"";
       Buffer.add_string b (kind_to_string t.tl_kinds.(s));
       Buffer.add_string b "\",\"values\":";
       add_int_array b t.tl_values.(s);
       Buffer.add_char b '}')
    t.tl_names;
  Buffer.add_string b "],\"latency\":{\"count\":";
  add_int_array b t.tl_lat_count;
  Buffer.add_string b ",\"p50\":";
  add_int_array b t.tl_lat_p50;
  Buffer.add_string b ",\"p95\":";
  add_int_array b t.tl_lat_p95;
  Buffer.add_string b ",\"p99\":";
  add_int_array b t.tl_lat_p99;
  Buffer.add_string b "},\"episodes\":[";
  List.iteri
    (fun i e ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b "{\"server\":";
       Buffer.add_string b (Chrome_trace.escaped e.epi_server);
       Buffer.add_string b
         (Printf.sprintf ",\"crashed_at\":%d,\"recovered_at\":%d,\"mttr\":%d}"
            e.epi_crashed_at e.epi_recovered_at e.epi_mttr))
    t.tl_episodes;
  Buffer.add_string b "],\"crash_times\":";
  add_int_array b (Array.of_list t.tl_crashes);
  Buffer.add_char b '}';
  Buffer.contents b

let counter_samples t =
  let out = ref [] in
  let n = Array.length t.tl_times in
  for i = n - 1 downto 0 do
    let ts = t.tl_times.(i) in
    out :=
      { Chrome_trace.cs_track = "latency";
        cs_ts = ts;
        cs_values =
          [ ("p50", t.tl_lat_p50.(i)); ("p95", t.tl_lat_p95.(i));
            ("p99", t.tl_lat_p99.(i)) ] }
      :: !out;
    for s = Array.length t.tl_names - 1 downto 0 do
      out :=
        { Chrome_trace.cs_track = t.tl_names.(s);
          cs_ts = ts;
          cs_values = [ ("value", t.tl_values.(s).(i)) ] }
        :: !out
    done
  done;
  !out
