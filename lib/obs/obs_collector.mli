(** Event collector: the bridge between the kernel's event hook and the
    span builder / metrics registry.

    Unlike {!Tracer}, which keeps the last N events, the collector
    keeps the whole stream (in a growable array) so span trees are
    complete, and optionally folds every event into a {!Metrics.t} as
    it arrives. The record path is array-append plus counter bumps —
    no per-event allocation beyond amortized array growth. *)

type t

val create : ?metrics:Metrics.t -> unit -> t
(** With [metrics], pre-registers the ["osiris.*"] event series
    (deliveries, replies, window opens/closes, checkpoint cycles,
    logged stores and bytes, kcalls, crashes, hangs, rollbacks and
    bytes rolled back, restarts) and updates them on every event. The
    ["osiris.timeline.*"] summary gauges ([Timeseries.publish]) are
    pre-registered too, so [Metrics.dump]'s sorted name set does not
    depend on whether a vtime sampler ran. *)

val record : t -> Kernel.event -> unit
(** The hook body. *)

val attach : t -> Kernel.t -> unit
(** Install as the kernel's event hook (replaces any previous hook).
    Attach before boot — via [System.build ?event_hook] — to capture
    boot traffic too. *)

val events : t -> Kernel.event list
(** Everything recorded, oldest first. *)

val count : t -> int

val clear : t -> unit

val metrics : t -> Metrics.t option

val snapshot_server_stats : Metrics.t -> Kernel.t -> unit
(** Republish {!Kernel.server_stats} for every registered server as
    gauges named ["<server>.<field>"] (e.g. ["pm.rollback_bytes"],
    ["vfs.restore_bytes_saved"], ["ds.deduped_stores"]), making the
    checkpoint-substrate counters first-class series next to the
    event-derived ones. Call after (or during) a run. *)
