module Tablefmt = Osiris_util.Tablefmt

type config = {
  hc_crash_loop_n : int;
  hc_crash_loop_window : int;
}

let default_config = { hc_crash_loop_n = 3; hc_crash_loop_window = 2_000_000 }

type comp_state = {
  mutable hs_crashes : int;
  mutable hs_restarts : int;
  mutable hs_crash_times : int list;  (* newest first *)
  mutable hs_pending_crash : int;     (* crash time awaiting restart; -1 = none *)
  mutable hs_mttr_total : int;
  mutable hs_mttr_n : int;
}

type t = {
  cfg : config;
  comps : (int, comp_state) Hashtbl.t;
}

let create ?(config = default_config) () =
  { cfg = config; comps = Hashtbl.create 16 }

let state_of t ep =
  match Hashtbl.find_opt t.comps ep with
  | Some s -> s
  | None ->
    let s =
      { hs_crashes = 0;
        hs_restarts = 0;
        hs_crash_times = [];
        hs_pending_crash = -1;
        hs_mttr_total = 0;
        hs_mttr_n = 0 }
    in
    Hashtbl.replace t.comps ep s;
    s

(* Feed from the kernel event stream: compose with any other consumer
   (collector, tracer) in the same event hook. *)
let observe t = function
  | Kernel.E_crash { time; ep; _ } ->
    let s = state_of t ep in
    s.hs_crashes <- s.hs_crashes + 1;
    s.hs_crash_times <- time :: s.hs_crash_times;
    s.hs_pending_crash <- time
  | Kernel.E_restart { time; ep; _ } ->
    let s = state_of t ep in
    s.hs_restarts <- s.hs_restarts + 1;
    if s.hs_pending_crash >= 0 then begin
      s.hs_mttr_total <- s.hs_mttr_total + (max 0 (time - s.hs_pending_crash));
      s.hs_mttr_n <- s.hs_mttr_n + 1;
      s.hs_pending_crash <- -1
    end
  | _ -> ()

type status = Healthy | Degraded | Crash_looping | Failed

let status_to_string = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Crash_looping -> "crash-looping"
  | Failed -> "failed"

type comp = {
  co_ep : Endpoint.t;
  co_name : string;
  co_policy : string;
  co_alive : bool;
  co_crashes : int;
  co_restarts : int;
  co_recent_crashes : int;  (* within the sliding window *)
  co_crash_loop_threshold : int;
  co_mttr : float;
  co_success_ratio : float;
  co_overhead_pct : float option;
  co_recovery_pct : float option;
  co_status : status;
}

let empty_state =
  { hs_crashes = 0; hs_restarts = 0; hs_crash_times = [];
    hs_pending_crash = -1; hs_mttr_total = 0; hs_mttr_n = 0 }

let snapshot ?profiler ?budget_for t kernel =
  let now = Kernel.now kernel in
  List.map
    (fun ep ->
       let s =
         match Hashtbl.find_opt t.comps ep with
         | Some s -> s
         | None -> empty_state
       in
       let threshold =
         match budget_for with
         | Some f ->
           (* A compartment with a restart budget of b is looping once
              it has burned the whole budget inside one window; an
              unbudgeted compartment uses the global default. *)
           (match f ep with
            | Some b -> max 2 b
            | None -> t.cfg.hc_crash_loop_n)
         | None -> t.cfg.hc_crash_loop_n
       in
       let horizon = now - t.cfg.hc_crash_loop_window in
       let recent =
         List.length (List.filter (fun ts -> ts >= horizon) s.hs_crash_times)
       in
       let alive = Kernel.proc_alive kernel ep in
       let mttr =
         if s.hs_mttr_n = 0 then 0.
         else float_of_int s.hs_mttr_total /. float_of_int s.hs_mttr_n
       in
       let success_ratio =
         if s.hs_crashes = 0 then 1.
         else
           min 1. (float_of_int s.hs_restarts /. float_of_int s.hs_crashes)
       in
       let overhead_pct, recovery_pct =
         match profiler with
         | None -> (None, None)
         | Some prof ->
           let user = Profiler.phase_cycles prof ep Kernel.Ph_user in
           if user = 0 then (None, None)
           else
             let pct phases =
               Some
                 (100.
                  *. float_of_int
                       (List.fold_left
                          (fun acc ph -> acc + Profiler.phase_cycles prof ep ph)
                          0 phases)
                  /. float_of_int user)
             in
             ( pct [ Kernel.Ph_instr; Kernel.Ph_log; Kernel.Ph_checkpoint ],
               pct [ Kernel.Ph_rollback; Kernel.Ph_restart ] )
       in
       let status =
         if not alive then Failed
         else if recent >= threshold then Crash_looping
         else if s.hs_crashes > s.hs_restarts then Degraded
         else Healthy
       in
       { co_ep = ep;
         co_name = Endpoint.server_name ep;
         co_policy =
           (match Kernel.proc_policy_name kernel ep with
            | Some n -> n
            | None -> "-");
         co_alive = alive;
         co_crashes = s.hs_crashes;
         co_restarts = s.hs_restarts;
         co_recent_crashes = recent;
         co_crash_loop_threshold = threshold;
         co_mttr = mttr;
         co_success_ratio = success_ratio;
         co_overhead_pct = overhead_pct;
         co_recovery_pct = recovery_pct;
         co_status = status })
    (Kernel.server_endpoints kernel)

let render comps =
  if comps = [] then ""
  else
    let rows =
      List.map
        (fun c ->
           [ c.co_name;
             c.co_policy;
             status_to_string c.co_status;
             string_of_int c.co_crashes;
             string_of_int c.co_restarts;
             Printf.sprintf "%d/%d" c.co_recent_crashes c.co_crash_loop_threshold;
             Tablefmt.fixed 0 c.co_mttr;
             Tablefmt.pct c.co_success_ratio;
             (match c.co_overhead_pct with
              | Some p -> Tablefmt.pct (p /. 100.)
              | None -> "-");
             (match c.co_recovery_pct with
              | Some p -> Tablefmt.pct (p /. 100.)
              | None -> "-") ])
        comps
    in
    Tablefmt.render ~title:"recovery health (per compartment)"
      ~header:
        [ "compartment"; "policy"; "status"; "crashes"; "restarts"; "loop";
          "mttr"; "success"; "overhead"; "recovery" ]
      ~align:
        [ Tablefmt.Left; Tablefmt.Left; Tablefmt.Left; Tablefmt.Right;
          Tablefmt.Right; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right;
          Tablefmt.Right; Tablefmt.Right ]
      rows

let to_json comps =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"compartments\": [";
  List.iteri
    (fun i c ->
       if i > 0 then Buffer.add_char buf ',';
       Buffer.add_string buf "\n    {\"name\": ";
       Buffer.add_string buf (Chrome_trace.escaped c.co_name);
       Buffer.add_string buf ", \"policy\": ";
       Buffer.add_string buf (Chrome_trace.escaped c.co_policy);
       Buffer.add_string buf
         (Printf.sprintf
            ", \"status\": \"%s\", \"alive\": %b, \"crashes\": %d, \
             \"restarts\": %d, \"recent_crashes\": %d, \
             \"crash_loop_threshold\": %d, \"mttr_cycles\": %.1f, \
             \"success_ratio\": %.3f"
            (status_to_string c.co_status) c.co_alive c.co_crashes
            c.co_restarts c.co_recent_crashes c.co_crash_loop_threshold
            c.co_mttr c.co_success_ratio);
       (match c.co_overhead_pct with
        | Some p -> Buffer.add_string buf (Printf.sprintf ", \"overhead_pct\": %.3f" p)
        | None -> ());
       (match c.co_recovery_pct with
        | Some p -> Buffer.add_string buf (Printf.sprintf ", \"recovery_pct\": %.3f" p)
        | None -> ());
       Buffer.add_string buf "}")
    comps;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
