(** Span trees folded from the kernel's causal event stream.

    Two families of spans:
    - {e request spans}: an [E_msg] with [call = true] opens a span
      named after the message tag, running on the destination server;
      the matching-rid [E_reply] (including virtualized [E_CRASH]
      error replies) closes it. Notifications become zero-length
      [Notify] spans. Parentage follows the causal rid chain, so a
      user syscall's fan-out across PM/VFS/VM nests under it.
    - {e recovery spans}: an [E_crash] opens a [Recovery] span on the
      crashed server, parented under the request whose handling
      crashed; the server's [E_restart] closes it. Rollback begin/end
      events nest a [Rollback] child (labelled with the bytes blitted
      back) inside the current recovery span.

    Spans still open when the stream ends are closed at the last event
    time with [sp_complete = false]. A parent id that never appears in
    the stream (e.g. evicted from a ring buffer) makes the span a
    root.

    A third family, {e session spans}: an [E_spawn] opens a [Session]
    root for the new user process, anchored at its {e arrival} vtime
    (which, for open-loop load, precedes its first instruction). The
    process' top-level messages — including requests that
    session-connect via [Message.Adopt] — nest under it, and the exit
    call through PM closes it, so a storm request's whole life is one
    subtree carrying its arrival. *)

type span_kind = Request | Notify | Recovery | Rollback | Session

val kind_to_string : span_kind -> string

type t = {
  sp_id : int;
      (** The request rid, or a negative synthetic id for
          recovery/rollback spans. *)
  sp_parent : int;  (** 0 = root. *)
  sp_kind : span_kind;
  sp_name : string;
  sp_src : Endpoint.t;  (** Requester (= [sp_ep] for recovery spans). *)
  sp_ep : Endpoint.t;   (** The server the span runs on. *)
  sp_start : int;
  sp_end : int;         (** >= [sp_start]. *)
  sp_complete : bool;
  sp_children : t list; (** Ordered by start time. *)
}

val build : Kernel.event list -> t list
(** Fold an oldest-first event stream into root spans ordered by start
    time. *)

val top_requests : t list -> t list
(** Top-level request spans: [Request] roots plus [Request] children
    of [Session] roots — the spans whose durations are end-to-end
    request latencies (what the timeline's sliding percentile windows
    consume). *)

val flatten : t list -> t list
(** Pre-order traversal of the forest. *)

val count : t list -> int

val find : (t -> bool) -> t list -> t option
(** First match in pre-order. *)

val render_tree : t list -> string list
(** Indented text rendering, one line per span, for CLI output. *)
