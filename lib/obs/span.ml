type span_kind = Request | Notify | Recovery | Rollback | Session

let kind_to_string = function
  | Request -> "request"
  | Notify -> "notify"
  | Recovery -> "recovery"
  | Rollback -> "rollback"
  | Session -> "session"

type t = {
  sp_id : int;
  sp_parent : int;
  sp_kind : span_kind;
  sp_name : string;
  sp_src : Endpoint.t;
  sp_ep : Endpoint.t;
  sp_start : int;
  sp_end : int;
  sp_complete : bool;
  sp_children : t list;
}

(* Mutable accumulator while folding the stream. *)
type acc = {
  a_id : int;
  a_parent : int;
  a_kind : span_kind;
  mutable a_name : string;
  a_src : Endpoint.t;
  a_ep : Endpoint.t;
  a_start : int;
  mutable a_stop : int;
  mutable a_complete : bool;
}

let build events =
  let spans : (int, acc) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in  (* creation order, reversed *)
  let recovery_of : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let rollback_of : (int, int) Hashtbl.t = Hashtbl.create 8 in
  (* Live user endpoint -> its session span. User endpoints are never
     reused, so an entry stays valid for the whole stream; exit retries
     after a PM crash just re-close the same span at a later time. *)
  let session_of : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let synth = ref 0 in
  let last_time = ref 0 in
  let fresh_synth () = decr synth; !synth in
  let open_span ~id ~parent ~kind ~name ~src ~ep ~start =
    if not (Hashtbl.mem spans id) then begin
      Hashtbl.replace spans id
        { a_id = id; a_parent = parent; a_kind = kind; a_name = name;
          a_src = src; a_ep = ep; a_start = start; a_stop = start;
          a_complete = (kind = Notify) };
      order := id :: !order
    end
  in
  let close_span id time =
    match Hashtbl.find_opt spans id with
    | None -> ()
    | Some a ->
      a.a_stop <- max a.a_start time;
      a.a_complete <- true
  in
  List.iter
    (fun ev ->
       (match ev with
        | Kernel.E_msg { time; _ } | Kernel.E_reply { time; _ }
        | Kernel.E_window_open { time; _ } | Kernel.E_window_close { time; _ }
        | Kernel.E_checkpoint { time; _ } | Kernel.E_store_logged { time; _ }
        | Kernel.E_kcall { time; _ } | Kernel.E_crash { time; _ }
        | Kernel.E_hang_detected { time; _ }
        | Kernel.E_rollback_begin { time; _ }
        | Kernel.E_rollback_end { time; _ } | Kernel.E_restart { time; _ }
        | Kernel.E_halt { time; _ } -> last_time := max !last_time time
        (* Spawn arrivals can sit ahead of emission order (open-loop
           futures); they must not drag the truncation cap forward. *)
        | Kernel.E_spawn _ -> ());
       match ev with
       | Kernel.E_msg { time; src; dst; tag; call; rid; parent; cls = _ } ->
         (* A top-level message from a session-tracked user process
            nests under its session root instead of floating free, so
            storm requests keep their arrival context. *)
         let parent =
           if parent = 0 then
             Option.value ~default:0 (Hashtbl.find_opt session_of src)
           else parent
         in
         open_span ~id:rid ~parent
           ~kind:(if call then Request else Notify)
           ~name:(Message.Tag.to_string tag) ~src ~ep:dst ~start:time;
         if tag = Message.Tag.T_exit then
           (match Hashtbl.find_opt session_of src with
            | Some sid -> close_span sid time
            | None -> ())
       | Kernel.E_spawn { time; ep; parent } ->
         let id = fresh_synth () in
         open_span ~id ~parent:0 ~kind:Session
           ~name:(if parent = 0 then "session" else "session (forked)")
           ~src:(if parent = 0 then ep else parent) ~ep ~start:time;
         Hashtbl.replace session_of ep id
       | Kernel.E_reply { rid; time; _ } -> close_span rid time
       | Kernel.E_crash { time; ep; rid; policy; _ } ->
         let id = fresh_synth () in
         (* The compartment's policy in the name keeps mixed-policy
            traces attributable span by span. *)
         open_span ~id ~parent:rid ~kind:Recovery
           ~name:(Printf.sprintf "recovery [%s]" policy) ~src:ep ~ep
           ~start:time;
         Hashtbl.replace recovery_of ep id
       | Kernel.E_rollback_begin { time; ep; rid = _ } ->
         let parent =
           Option.value ~default:0 (Hashtbl.find_opt recovery_of ep)
         in
         let id = fresh_synth () in
         open_span ~id ~parent ~kind:Rollback ~name:"rollback" ~src:ep ~ep
           ~start:time;
         Hashtbl.replace rollback_of ep id
       | Kernel.E_rollback_end { time; ep; bytes; rid = _ } ->
         (match Hashtbl.find_opt rollback_of ep with
          | None -> ()
          | Some id ->
            (match Hashtbl.find_opt spans id with
             | Some a -> a.a_name <- Printf.sprintf "rollback %dB" bytes
             | None -> ());
            close_span id time;
            Hashtbl.remove rollback_of ep)
       | Kernel.E_restart { time; ep; _ } ->
         (match Hashtbl.find_opt recovery_of ep with
          | None -> ()
          | Some id ->
            close_span id time;
            Hashtbl.remove recovery_of ep)
       | Kernel.E_window_open _ | Kernel.E_window_close _
       | Kernel.E_checkpoint _ | Kernel.E_store_logged _ | Kernel.E_kcall _
       | Kernel.E_hang_detected _ | Kernel.E_halt _ -> ())
    events;
  (* Truncated stream: cap still-open spans at the last event time. *)
  List.iter
    (fun id ->
       let a = Hashtbl.find spans id in
       if not a.a_complete then a.a_stop <- max a.a_start !last_time)
    !order;
  (* Assemble the forest. An unknown parent (before the capture window,
     or 0) makes a root. *)
  let children : (int, int list) Hashtbl.t = Hashtbl.create 256 in
  let roots = ref [] in
  List.iter
    (fun id ->
       let a = Hashtbl.find spans id in
       if a.a_parent <> 0 && Hashtbl.mem spans a.a_parent then
         Hashtbl.replace children a.a_parent
           (id :: Option.value ~default:[] (Hashtbl.find_opt children a.a_parent))
       else roots := id :: !roots)
    (List.rev !order);
  let by_start ids =
    List.sort
      (fun i j ->
         let a = Hashtbl.find spans i and b = Hashtbl.find spans j in
         compare (a.a_start, a.a_id) (b.a_start, b.a_id))
      ids
  in
  let rec freeze id =
    let a = Hashtbl.find spans id in
    let kids =
      by_start (List.rev (Option.value ~default:[] (Hashtbl.find_opt children id)))
    in
    { sp_id = a.a_id; sp_parent = a.a_parent; sp_kind = a.a_kind;
      sp_name = a.a_name; sp_src = a.a_src; sp_ep = a.a_ep;
      sp_start = a.a_start; sp_end = a.a_stop; sp_complete = a.a_complete;
      sp_children = List.map freeze kids }
  in
  List.map freeze (by_start !roots)

let top_requests spans =
  List.concat_map
    (fun s ->
       match s.sp_kind with
       | Request -> [ s ]
       | Session -> List.filter (fun c -> c.sp_kind = Request) s.sp_children
       | _ -> [])
    spans

let rec flatten spans =
  List.concat_map (fun s -> s :: flatten s.sp_children) spans

let count spans = List.length (flatten spans)

let find f spans = List.find_opt f (flatten spans)

let render_tree spans =
  let buf = ref [] in
  let rec go depth s =
    let line =
      Printf.sprintf "%10d %s%s %s -> %s  %s (%d cycles)%s [id %d]"
        s.sp_start
        (String.concat "" (List.init depth (fun _ -> "  ")))
        (kind_to_string s.sp_kind)
        (Endpoint.server_name s.sp_src)
        (Endpoint.server_name s.sp_ep)
        s.sp_name
        (s.sp_end - s.sp_start)
        (if s.sp_complete then "" else " [open]")
        s.sp_id
    in
    buf := line :: !buf;
    List.iter (go (depth + 1)) s.sp_children
  in
  List.iter (go 0) spans;
  List.rev !buf
