(* Pre-bound handles: the record path must not touch the registry's
   hash table. *)
type meters = {
  m_msgs : Metrics.counter;
  m_calls : Metrics.counter;
  m_replies : Metrics.counter;
  m_window_opens : Metrics.counter;
  m_window_closes : Metrics.counter;
  m_policy_closes : Metrics.counter;
  m_checkpoints : Metrics.counter;
  m_checkpoint_cycles : Metrics.counter;
  m_stores_logged : Metrics.counter;
  m_store_bytes : Metrics.counter;
  m_kcalls : Metrics.counter;
  m_crashes : Metrics.counter;
  m_hangs : Metrics.counter;
  m_rollbacks : Metrics.counter;
  m_rollback_bytes : Metrics.counter;
  m_restarts : Metrics.counter;
}

type t = {
  mutable evs : Kernel.event array;
  mutable n : int;
  registry : Metrics.t option;
  meters : meters option;
}

let dummy_event = Kernel.E_halt { time = 0; halt = Kernel.H_hang }

let make_meters m =
  { m_msgs = Metrics.counter m "osiris.msgs_delivered";
    m_calls = Metrics.counter m "osiris.calls";
    m_replies = Metrics.counter m "osiris.replies";
    m_window_opens = Metrics.counter m "osiris.window_opens";
    m_window_closes = Metrics.counter m "osiris.window_closes";
    m_policy_closes = Metrics.counter m "osiris.policy_closes";
    m_checkpoints = Metrics.counter m "osiris.checkpoints";
    m_checkpoint_cycles = Metrics.counter m "osiris.checkpoint_cycles";
    m_stores_logged = Metrics.counter m "osiris.stores_logged";
    m_store_bytes = Metrics.counter m "osiris.store_bytes_logged";
    m_kcalls = Metrics.counter m "osiris.kcalls";
    m_crashes = Metrics.counter m "osiris.crashes";
    m_hangs = Metrics.counter m "osiris.hangs_detected";
    m_rollbacks = Metrics.counter m "osiris.rollbacks";
    m_rollback_bytes = Metrics.counter m "osiris.rollback_bytes";
    m_restarts = Metrics.counter m "osiris.restarts" }

(* The telemetry engine's summary gauges ([Timeseries.publish]) are
   pre-registered at collector creation so [Metrics.dump] lists the
   same deterministically sorted name set whether or not a sampler
   ran — runs without telemetry report the series as 0. *)
let preregister_timeline m =
  List.iter
    (fun name -> ignore (Metrics.gauge m ("osiris.timeline." ^ name)))
    [ "interval"; "sources"; "samples"; "retained"; "dropped" ]

(* Same treatment for the trace-query scan gauges (Query.publish):
   dumps enumerate them at 0 even when no query ran this session. *)
let preregister_query m =
  List.iter
    (fun name -> ignore (Metrics.gauge m ("osiris.query." ^ name)))
    [ "blocks_scanned"; "blocks_skipped"; "records_decoded" ]

let create ?metrics () =
  (match metrics with
   | None -> ()
   | Some m ->
     preregister_timeline m;
     preregister_query m);
  { evs = Array.make 1024 dummy_event;
    n = 0;
    registry = metrics;
    meters = Option.map make_meters metrics }

let update m = function
  | Kernel.E_msg { call; _ } ->
    Metrics.incr m.m_msgs;
    if call then Metrics.incr m.m_calls
  | Kernel.E_reply _ -> Metrics.incr m.m_replies
  | Kernel.E_window_open _ -> Metrics.incr m.m_window_opens
  | Kernel.E_window_close { policy; _ } ->
    Metrics.incr m.m_window_closes;
    if policy then Metrics.incr m.m_policy_closes
  | Kernel.E_checkpoint { cycles; _ } ->
    Metrics.incr m.m_checkpoints;
    Metrics.add m.m_checkpoint_cycles cycles
  | Kernel.E_store_logged { bytes; _ } ->
    Metrics.incr m.m_stores_logged;
    Metrics.add m.m_store_bytes bytes
  | Kernel.E_kcall _ -> Metrics.incr m.m_kcalls
  | Kernel.E_crash _ -> Metrics.incr m.m_crashes
  | Kernel.E_hang_detected _ -> Metrics.incr m.m_hangs
  | Kernel.E_rollback_begin _ -> Metrics.incr m.m_rollbacks
  | Kernel.E_rollback_end { bytes; _ } -> Metrics.add m.m_rollback_bytes bytes
  | Kernel.E_restart _ -> Metrics.incr m.m_restarts
  | Kernel.E_halt _ | Kernel.E_spawn _ -> ()

let record t ev =
  if t.n = Array.length t.evs then begin
    let bigger = Array.make (2 * t.n) dummy_event in
    Array.blit t.evs 0 bigger 0 t.n;
    t.evs <- bigger
  end;
  t.evs.(t.n) <- ev;
  t.n <- t.n + 1;
  match t.meters with None -> () | Some m -> update m ev

let attach t kernel = Kernel.set_event_hook kernel (Some (record t))

let events t = Array.to_list (Array.sub t.evs 0 t.n)

let count t = t.n

let clear t = t.n <- 0

let metrics t = t.registry

let snapshot_server_stats m kernel =
  (* Kernel-wide load-shedding tally. Shed exits (status 75) are not in
     the event stream — the exit status rides the PM call payload — so
     the meter path can't count them; snapshot from the kernel's own
     counter instead. *)
  Metrics.set (Metrics.gauge m "osiris.shed_exits") (Kernel.shed_exits kernel);
  List.iter
    (fun ep ->
       let ss = Kernel.server_stats kernel ep in
       let g field v = Metrics.set (Metrics.gauge m (ss.Kernel.ss_name ^ "." ^ field)) v in
       g "ops_total" ss.Kernel.ss_ops_total;
       g "ops_in_window" ss.Kernel.ss_ops_in_window;
       g "busy_cycles" ss.Kernel.ss_busy_cycles;
       g "logged_stores" ss.Kernel.ss_logged_stores;
       g "skipped_stores" ss.Kernel.ss_skipped_stores;
       g "deduped_stores" ss.Kernel.ss_deduped_stores;
       g "undo_peak_bytes" ss.Kernel.ss_undo_peak_bytes;
       g "rollback_bytes" ss.Kernel.ss_rollback_bytes;
       g "restore_bytes_saved" ss.Kernel.ss_restore_bytes_saved;
       g "window_opens" ss.Kernel.ss_window_opens;
       g "policy_closes" ss.Kernel.ss_policy_closes;
       g "restarts" ss.Kernel.ss_restarts)
    (Kernel.server_endpoints kernel)
