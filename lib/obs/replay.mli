(** Deterministic replay with divergence detection.

    The kernel is deterministic for a fixed header (seed + spec +
    workload + cost table), so re-executing a journaled run must
    reproduce the recorded event stream {e byte for byte}. [run]
    re-executes via a caller-provided [exec] (supplied by
    [Flight.exec], keeping this module free of a dependency on the
    assembled system) and diffs the live stream against the journal,
    record by record, as it is produced.

    A divergence — the first index at which the replayed event differs
    from the recorded one, or either stream ending early — is reported
    with both events and the causal rid chain of the recorded history
    at that point, which is what makes this a determinism sanitizer:
    any nondeterminism introduced into the kernel or servers (an
    unseeded RNG, wall-clock leakage, hash-order iteration) fails
    loudly here, with a pointer at the first request it skewed, instead
    of silently shifting benchmark numbers. *)

type divergence = {
  div_index : int;
      (** 0-based record index of the first mismatch. *)
  div_recorded : Kernel.event option;
      (** [None]: the replay produced more events than were recorded. *)
  div_replayed : Kernel.event option;
      (** [None]: the replay ended before the journal did. *)
  div_rid : int;
      (** Causal rid at the divergence (recorded side if present). *)
  div_chain : int list;
      (** [div_rid]'s causal chain, innermost first, ending at a root
          request (parent 0), resolved from the recorded stream. *)
}

type outcome = {
  rp_header : Journal.header;
  rp_recorded : int;     (** Journal records. *)
  rp_replayed : int;     (** Events the re-execution produced. *)
  rp_halt : Kernel.halt; (** How the re-execution halted. *)
  rp_cost_mismatch : bool;
      (** The cost table used for re-execution does not fingerprint to
          the header's — divergence is expected, and the report says
          why. *)
  rp_divergence : divergence option;
}

val rid_chain : Kernel.event array -> int -> int list
(** Walk rid -> parent through the stream's [E_msg] records: the chain
    from [rid] (inclusive, innermost first) to its root request.
    Cycles and unknown rids terminate the walk. *)

val chain_of_parents : (int, int) Hashtbl.t -> int -> int list
(** The same walk over a prebuilt rid -> parent map — the shared diff
    core for streaming consumers ([Postmortem], [Rundiff]) that accrue
    parents in one pass instead of rescanning an array per chain. *)

val run_stream :
  exec:(Journal.header -> hook:(Kernel.event -> unit) -> Kernel.halt) ->
  ?cost_fingerprint:int ->
  Journal.header ->
  next:(unit -> Kernel.event option) ->
  outcome
(** {!run} over a pull cursor instead of a decoded array: [next] is
    called at most once per recorded record, in order, and the whole
    journal is consumed by the time the outcome returns (the leftover
    records past a divergence are drained so [rp_recorded] and the
    causal chain still describe the full journal). [run] is this with
    an array cursor; the streaming CLI path feeds
    [Journal.stream_next]. *)

val run :
  exec:(Journal.header -> hook:(Kernel.event -> unit) -> Kernel.halt) ->
  ?cost_fingerprint:int ->
  Journal.header ->
  Kernel.event array ->
  outcome
(** Re-execute and diff. [exec] must build the system described by the
    header with [hook] installed from boot (exactly how the recording
    hook was installed) and run it to halt. [cost_fingerprint] is the
    fingerprint of the table [exec] will actually run under (defaults
    to the header's, i.e. no mismatch). *)

val pp_event : Kernel.event -> string
(** Compact one-line event rendering, shared with [Postmortem]
    ([Tracer.pp_event] lives above this library in the dependency
    order). *)

val exit_code : outcome -> int
(** 0 for a byte-identical replay, 2 on divergence — the
    [osiris replay] convention (1 is reserved for I/O and decode
    errors). *)

val render : outcome -> string
(** Multi-line human-readable report. *)

val to_json : outcome -> string
(** Deterministic JSON artifact (same journal -> same bytes). *)
