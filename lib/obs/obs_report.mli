(** Aligned-text report over spans, metrics and kernel introspection:
    per-handler latency quantiles, recovery latency quantiles, and the
    registry dump. The CLI's [osiris report] and
    [examples/observability.ml] render through this. *)

val handler_table : Span.t list -> string
(** Per (server, handler) virtual-cycle latency of completed request
    spans: count, p50/p95/p99 (log-bucketed estimates) and exact max. *)

val recovery_table : Kernel.t -> string
(** Quantiles over {!Kernel.recovery_latencies}. Empty string when no
    recovery completed. *)

val metrics_table : Metrics.t -> string
(** Registry dump in registration order. *)

val render : ?metrics:Metrics.t -> kernel:Kernel.t -> Span.t list -> string
(** All applicable sections, separated by blank lines. *)
