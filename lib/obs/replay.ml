type divergence = {
  div_index : int;
  div_recorded : Kernel.event option;
  div_replayed : Kernel.event option;
  div_rid : int;
  div_chain : int list;
}

type outcome = {
  rp_header : Journal.header;
  rp_recorded : int;
  rp_replayed : int;
  rp_halt : Kernel.halt;
  rp_cost_mismatch : bool;
  rp_divergence : divergence option;
}

(* rid -> parent, from the recorded deliveries. Replayed events are
   never consulted: past the divergence the replay's causality is
   suspect, the journal's is ground truth. *)
let chain_of_parents parents rid =
  let rec walk acc rid =
    if rid = 0 || List.mem rid acc then List.rev acc
    else
      match Hashtbl.find_opt parents rid with
      | None -> List.rev (rid :: acc)
      | Some parent -> walk (rid :: acc) parent
  in
  walk [] rid

let parents_of_events recorded =
  let parents = Hashtbl.create 256 in
  Array.iter
    (function
      | Kernel.E_msg { rid; parent; _ } -> Hashtbl.replace parents rid parent
      | _ -> ())
    recorded;
  parents

let rid_chain recorded rid = chain_of_parents (parents_of_events recorded) rid

(* The streaming core: the recorded side is a pull cursor, consumed
   exactly once and in order, so the journal never materializes. The
   parents map accrues from every record pulled; after the run the
   remaining records are drained so the map (and the record count)
   cover the whole journal — [Hashtbl.replace] order matches the
   array-based walk, keeping divergence chains byte-identical. *)
let run_stream ~exec ?cost_fingerprint header ~next =
  let parents = Hashtbl.create 256 in
  let pulled = ref 0 in
  let ended = ref false in
  let pull () =
    if !ended then None
    else
      match next () with
      | None ->
        ended := true;
        None
      | Some ev ->
        (match ev with
         | Kernel.E_msg { rid; parent; _ } ->
           Hashtbl.replace parents rid parent
         | _ -> ());
        incr pulled;
        Some ev
  in
  let i = ref 0 in
  let first_mismatch = ref None in
  let hook ev =
    (if !first_mismatch = None then
       match pull () with
       | None -> first_mismatch := Some (!i, None, Some ev)
       | Some want ->
         if ev <> want then first_mismatch := Some (!i, Some want, Some ev));
    incr i
  in
  let halt = exec header ~hook in
  (* Replay ended with journal records left over: the journal's next
     record is the divergence (its rid names the request the replay
     never reached). *)
  (if !first_mismatch = None then
     match pull () with
     | Some want -> first_mismatch := Some (!i, Some want, None)
     | None -> ());
  while pull () <> None do () done;
  let divergence =
    match !first_mismatch with
    | None -> None
    | Some (idx, rec_ev, rep_ev) ->
      let rid =
        match rec_ev, rep_ev with
        | Some e, _ -> Journal.event_rid e
        | None, Some e -> Journal.event_rid e
        | None, None -> 0
      in
      Some
        { div_index = idx;
          div_recorded = rec_ev;
          div_replayed = rep_ev;
          div_rid = rid;
          div_chain = chain_of_parents parents rid }
  in
  { rp_header = header;
    rp_recorded = !pulled;
    rp_replayed = !i;
    rp_halt = halt;
    rp_cost_mismatch =
      (match cost_fingerprint with
       | Some fp -> fp <> header.Journal.jh_cost_fingerprint
       | None -> false);
    rp_divergence = divergence }

let run ~exec ?cost_fingerprint header recorded =
  let i = ref 0 in
  let next () =
    if !i < Array.length recorded then begin
      let ev = recorded.(!i) in
      incr i;
      Some ev
    end
    else None
  in
  run_stream ~exec ?cost_fingerprint header ~next

let exit_code o = match o.rp_divergence with None -> 0 | Some _ -> 2

(* Compact one-line event rendering for divergence reports. (Tracer has
   a richer pretty-printer, but lib/trace sits above lib/obs.) *)
let pp_event = function
  | Kernel.E_msg { time; src; dst; tag; call; rid; parent; _ } ->
    Printf.sprintf "msg t=%d %s->%s %s%s rid=%d parent=%d" time
      (Endpoint.server_name src) (Endpoint.server_name dst)
      (Message.Tag.to_string tag) (if call then "(call)" else "") rid parent
  | Kernel.E_reply { time; src; dst; rid; _ } ->
    Printf.sprintf "reply t=%d %s=>%s rid=%d" time
      (Endpoint.server_name src) (Endpoint.server_name dst) rid
  | Kernel.E_window_open { time; ep; rid } ->
    Printf.sprintf "window_open t=%d %s rid=%d" time
      (Endpoint.server_name ep) rid
  | Kernel.E_window_close { time; ep; rid; policy } ->
    Printf.sprintf "window_close t=%d %s rid=%d policy=%b" time
      (Endpoint.server_name ep) rid policy
  | Kernel.E_checkpoint { time; ep; rid; cycles } ->
    Printf.sprintf "checkpoint t=%d %s rid=%d cycles=%d" time
      (Endpoint.server_name ep) rid cycles
  | Kernel.E_store_logged { time; ep; rid; bytes } ->
    Printf.sprintf "store_logged t=%d %s rid=%d bytes=%d" time
      (Endpoint.server_name ep) rid bytes
  | Kernel.E_kcall { time; ep; rid; kc } ->
    Printf.sprintf "kcall t=%d %s %s rid=%d" time (Endpoint.server_name ep)
      kc rid
  | Kernel.E_crash { time; ep; reason; window_open; rid; policy } ->
    Printf.sprintf "crash t=%d %s (%s) window=%b policy=%s rid=%d" time
      (Endpoint.server_name ep) reason window_open policy rid
  | Kernel.E_hang_detected { time; ep } ->
    Printf.sprintf "hang_detected t=%d %s" time (Endpoint.server_name ep)
  | Kernel.E_rollback_begin { time; ep; rid } ->
    Printf.sprintf "rollback_begin t=%d %s rid=%d" time
      (Endpoint.server_name ep) rid
  | Kernel.E_rollback_end { time; ep; rid; bytes } ->
    Printf.sprintf "rollback_end t=%d %s rid=%d bytes=%d" time
      (Endpoint.server_name ep) rid bytes
  | Kernel.E_restart { time; ep; rid; policy } ->
    Printf.sprintf "restart t=%d %s policy=%s rid=%d" time
      (Endpoint.server_name ep) policy rid
  | Kernel.E_halt { time; halt } ->
    Printf.sprintf "halt t=%d %s" time (Kernel.halt_to_string halt)
  | Kernel.E_spawn { time; ep; parent } ->
    Printf.sprintf "spawn t=%d %s parent=%s" time
      (Endpoint.server_name ep) (Endpoint.server_name parent)

let render o =
  let b = Buffer.create 512 in
  Printf.bprintf b "replay: %s\n" (Journal.header_to_string o.rp_header);
  Printf.bprintf b "recorded %d records, replayed %d events, halted: %s\n"
    o.rp_recorded o.rp_replayed (Kernel.halt_to_string o.rp_halt);
  if o.rp_cost_mismatch then
    Buffer.add_string b
      "WARNING: replay cost table differs from the recorded run's \
       (fingerprint mismatch) — divergence is expected\n";
  (match o.rp_divergence with
   | None -> Buffer.add_string b "verdict: IDENTICAL (zero divergences)\n"
   | Some d ->
     Printf.bprintf b "verdict: DIVERGED at record %d\n" d.div_index;
     Printf.bprintf b "  recorded: %s\n"
       (match d.div_recorded with
        | Some e -> pp_event e
        | None -> "<end of journal>");
     Printf.bprintf b "  replayed: %s\n"
       (match d.div_replayed with
        | Some e -> pp_event e
        | None -> "<replay ended>");
     Printf.bprintf b "  causal rid chain: %s\n"
       (if d.div_chain = [] then "(root context)"
        else
          String.concat " < " (List.map string_of_int d.div_chain)));
  Buffer.contents b

let json_event = function
  | None -> "null"
  | Some e -> Chrome_trace.escaped (pp_event e)

let to_json o =
  let b = Buffer.create 512 in
  Printf.bprintf b "{\n  \"journal\": %s,\n"
    (Chrome_trace.escaped (Journal.header_to_string o.rp_header));
  Printf.bprintf b "  \"seed\": %d,\n" o.rp_header.Journal.jh_seed;
  Printf.bprintf b "  \"spec\": %s,\n"
    (Chrome_trace.escaped o.rp_header.Journal.jh_spec);
  Printf.bprintf b "  \"workload\": %s,\n"
    (Chrome_trace.escaped o.rp_header.Journal.jh_workload);
  Printf.bprintf b "  \"recorded\": %d,\n  \"replayed\": %d,\n" o.rp_recorded
    o.rp_replayed;
  Printf.bprintf b "  \"halt\": %s,\n"
    (Chrome_trace.escaped (Kernel.halt_to_string o.rp_halt));
  Printf.bprintf b "  \"cost_mismatch\": %b,\n" o.rp_cost_mismatch;
  (match o.rp_divergence with
   | None -> Buffer.add_string b "  \"divergence\": null\n"
   | Some d ->
     Printf.bprintf b
       "  \"divergence\": {\n    \"index\": %d,\n    \"rid\": %d,\n\
       \    \"chain\": [%s],\n    \"recorded\": %s,\n    \"replayed\": %s\n  }\n"
       d.div_index d.div_rid
       (String.concat ", " (List.map string_of_int d.div_chain))
       (json_event d.div_recorded) (json_event d.div_replayed));
  Buffer.add_string b "}\n";
  Buffer.contents b
