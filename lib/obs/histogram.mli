(** Log-bucketed integer histogram for virtual-cycle latencies.

    Values are binned by bit length (bucket [i] holds values in
    [[2{^i-1}, 2{^i})]), giving a fixed 64-slot footprint over the full
    int range with ~2x relative quantile error — the right trade for
    always-on latency recording. {!observe} is a handful of integer
    mutations: O(1) and {e zero allocation} (a bench gate in
    [bench/obs_bench.ml]). *)

type t

val create : unit -> t

val observe : t -> int -> unit
(** Record one value (negative values count into the 0 bucket). *)

val count : t -> int

val sum : t -> int
(** Exact sum of observed values — including negative ones, which are
    binned into bucket 0 but summed as given, so [sum]/[mean] can be
    below every bucket bound when negatives were recorded. *)

val mean : t -> float
(** [sum / count], 0. when empty. *)

val max_value : t -> int
(** Largest observed value, exact — but never negative: 0 when empty
    {e or} when only negative values were observed. *)

val min_value : t -> int
(** Smallest observed value, exact (negatives included); 0 when
    empty. *)

val percentile : t -> float -> float
(** [percentile t p], [p] in [\[0,100\]], nearest-rank over the
    buckets: the estimate is the upper bound of the bucket containing
    the rank, clamped to the exact observed max.

    Edge cases (unit-tested in [test/test_obs.ml]):
    - empty histogram: 0. for every [p];
    - single sample [v]: exactly [v] for every [p] (the clamp makes
      the sole bucket's upper bound exact);
    - all-equal samples: exactly that value for every [p];
    - [p <= 0.] behaves like the minimum rank (first non-empty
      bucket); [p > 100.] saturates to the exact maximum;
    - negative samples land in bucket 0, so their percentile estimate
      is 0 (the bucket bound), not the negative value. *)

val p50 : t -> float
val p95 : t -> float
val p99 : t -> float

val buckets : t -> (int * int) list
(** Non-empty buckets as [(upper_bound, count)], ascending. *)

val merge_into : into:t -> t -> unit
(** Add [src]'s buckets into [into] elementwise (plus count, sum, and
    exact min/max combination). Because binning is deterministic per
    value, the result is {e exactly} the histogram that observing the
    union stream would have produced — percentiles lose no fidelity to
    aggregation (QCheck-tested in [test/test_obs.ml]). [src] is not
    modified; merging a histogram into itself doubles it. *)

val merge : t -> t -> t
(** Fresh histogram equal to observing both input streams. *)

val of_buckets :
  ?sum:int -> ?min_value:int -> ?max_value:int -> (int * int) list -> t
(** Bucket-level constructor, the inverse of {!buckets}:
    [of_buckets (buckets t)] has identical counts and percentiles to
    [t]. Each pair is [(bound, count)] where [bound] is any value that
    bins into the intended bucket ({!buckets} emits the upper bound,
    which round-trips). Counts must be non-negative; an empty or
    all-zero list yields an empty histogram (optional fields are then
    ignored). Without the optional exact [sum]/[min_value]/[max_value]
    (lost by bucket serialization) they default to per-bucket
    upper-bound estimates, which bound the true values from above. *)

val clear : t -> unit
