(** Log-bucketed integer histogram for virtual-cycle latencies.

    Values are binned by bit length (bucket [i] holds values in
    [[2{^i-1}, 2{^i})]), giving a fixed 64-slot footprint over the full
    int range with ~2x relative quantile error — the right trade for
    always-on latency recording. {!observe} is a handful of integer
    mutations: O(1) and {e zero allocation} (a bench gate in
    [bench/obs_bench.ml]). *)

type t

val create : unit -> t

val observe : t -> int -> unit
(** Record one value (negative values count into the 0 bucket). *)

val count : t -> int
val sum : t -> int
val mean : t -> float

val max_value : t -> int
(** Largest observed value, exact (0 when empty). *)

val min_value : t -> int
(** Smallest observed value, exact (0 when empty). *)

val percentile : t -> float -> float
(** [percentile t p], [p] in [\[0,100\]], nearest-rank over the
    buckets: the estimate is the upper bound of the bucket containing
    the rank, clamped to the exact observed max. 0. when empty. *)

val p50 : t -> float
val p95 : t -> float
val p99 : t -> float

val buckets : t -> (int * int) list
(** Non-empty buckets as [(upper_bound, count)], ascending. *)

val clear : t -> unit
