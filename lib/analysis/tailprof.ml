type bucket =
  | B_own
  | B_queue
  | B_service
  | B_checkpoint
  | B_rollback
  | B_restart
  | B_collateral

let n_buckets = 7

let bucket_name = function
  | B_own -> "own"
  | B_queue -> "queue"
  | B_service -> "service"
  | B_checkpoint -> "checkpoint"
  | B_rollback -> "rollback"
  | B_restart -> "restart"
  | B_collateral -> "collateral"

let bucket_index = function
  | B_own -> 0
  | B_queue -> 1
  | B_service -> 2
  | B_checkpoint -> 3
  | B_rollback -> 4
  | B_restart -> 5
  | B_collateral -> 6

let bucket_of_index = function
  | 0 -> B_own
  | 1 -> B_queue
  | 2 -> B_service
  | 3 -> B_checkpoint
  | 4 -> B_rollback
  | 5 -> B_restart
  | 6 -> B_collateral
  | i -> invalid_arg (Printf.sprintf "Tailprof.bucket_of_index %d" i)

let bucket_totals b =
  [| b.Critpath.cp_own;
     b.Critpath.cp_queue;
     Critpath.service_total b;
     b.Critpath.cp_checkpoint;
     b.Critpath.cp_rollback;
     b.Critpath.cp_restart;
     b.Critpath.cp_collateral |]

type cohort = {
  co_n : int;
  co_cut : int;
  co_mean10 : int array;
}

type profile = {
  tp_n : int;
  tp_p50 : int;
  tp_p99 : int;
  tp_low : cohort;
  tp_high : cohort;
  tp_blame : (bucket * int) list;
}

let cohort_of ~cut members =
  let n = List.length members in
  let sums = Array.make n_buckets 0 in
  List.iter
    (fun b ->
       Array.iteri (fun i v -> sums.(i) <- sums.(i) + v) (bucket_totals b))
    members;
  { co_n = n; co_cut = cut; co_mean10 = Array.map (fun s -> s * 10 / n) sums }

let profile = function
  | [] -> None
  | reqs ->
    let lats =
      let a = Array.of_list (List.map Critpath.total reqs) in
      Array.sort compare a;
      a
    in
    let n = Array.length lats in
    let p50 = lats.(Osiris_util.Stats.rank ~num:1 ~den:2 n - 1) in
    let p99 = lats.(Osiris_util.Stats.rank ~num:99 ~den:100 n - 1) in
    let low =
      cohort_of ~cut:p50
        (List.filter (fun b -> Critpath.total b <= p50) reqs)
    in
    let high =
      cohort_of ~cut:p99
        (List.filter (fun b -> Critpath.total b >= p99) reqs)
    in
    let blame =
      List.sort
        (fun (a, da) (b, db) ->
           if da <> db then compare db da else compare a b)
        (List.init n_buckets (fun i ->
             (bucket_of_index i, high.co_mean10.(i) - low.co_mean10.(i))))
    in
    Some
      { tp_n = n; tp_p50 = p50; tp_p99 = p99; tp_low = low; tp_high = high;
        tp_blame = blame }

let knee p99s =
  let n = Array.length p99s in
  if n = 0 then -1
  else begin
    let m = Array.fold_left min p99s.(0) p99s in
    if m <= 0 then -1
    else begin
      let k = ref (-1) in
      (try
         for i = 0 to n - 1 do
           if p99s.(i) >= 2 * m then begin
             k := i;
             raise Exit
           end
         done
       with Exit -> ());
      !k
    end
  end
