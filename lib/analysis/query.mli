(** Typed trace queries over encoded journal bytes.

    One streaming pass over the journal ({!Journal.fold}), with
    predicate pushdown into the sidecar block index when one is
    available: a block is only decoded when its summary (vtime range,
    rid range, endpoint/kind/tag presence bitmaps) says the filter
    {e could} match inside it. Pushdown is conservative — it may decode
    a block that yields no matches, never the reverse — so indexed and
    full-scan evaluation produce byte-identical artifacts (a bench
    gate in [bench/query_bench.ml]).

    The [osiris query] subcommand is a thin wrapper: it parses the
    compact expression grammar with {!parse_filter}, loads the sidecar
    if present, and prints {!render}/{!to_json}/{!to_csv}. *)

type field = F_bytes | F_cycles | F_latency
(** Value extracted per matched event for {!Percentiles}:
    - [F_bytes]: undo-log bytes ([E_store_logged]/[E_rollback_end]);
    - [F_cycles]: checkpoint cost ([E_checkpoint]);
    - [F_latency]: call->reply turnaround, paired by rid {e among the
      matched events} — filter by server to get that compartment's
      service-time distribution. *)

type dim = D_server | D_kind | D_tag | D_policy

type agg =
  | Count                 (** Just the matched-record count. *)
  | Rate of int           (** Matches per vtime bucket of given width. *)
  | Percentiles of field  (** Log-bucketed {!Histogram} percentiles. *)
  | Group_by of dim       (** Match counts keyed by dimension value. *)

type pred =
  | True
  | All of pred list
  | Any of pred list
  | Not of pred
  | Server of Endpoint.t list  (** {!Journal.event_ep} is one of. *)
  | Kind of int list           (** {!Journal.event_kind} is one of. *)
  | Tag of Message.Tag.t list  (** Msg/reply tag is one of. *)
  | Rid of int list
  | Chain of int
      (** Event's causal rid chain passes through the given rid — the
          event is the request itself or a descendant of it. *)
  | Policy of string list      (** Crash/restart policy is one of. *)
  | Time_ge of int
  | Time_lt of int

val pred_to_string : pred -> string
(** Canonical rendering, parseable back by {!parse_filter} for every
    predicate the parser can produce. *)

val parse_filter : string -> (pred, string) result
(** Compact expression grammar: whitespace-separated terms are AND-ed;
    each term is [key=v1,v2,...] (values OR-ed) over keys [server]
    (names or numeric endpoints), [kind], [tag], [rid], [chain]
    (single rid), [policy], or a vtime bound [time>=N], [time<N],
    [time<=N], [time>N], [time=N]. A leading [!] negates a term.
    Empty input means [True]. Example:
    ["server=vfs kind=reply time>=5000 time<9000"]. *)

val eval : (int, int) Hashtbl.t -> pred -> Kernel.event -> bool
(** [eval parents p ev]: does [ev] satisfy [p]? [parents] is the
    rid -> parent map accrued so far (only consulted by [Chain]). *)

val can_match : pred -> Journal.block -> bool
(** May any record in the block satisfy the predicate? Conservative:
    [true] on uncertainty (negation, policies, saturated bitmap bits). *)

val block_filter : pred -> Journal.block -> bool
(** The pushdown actually used by {!run}: {!can_match}, except that
    blocks whose rid range reaches a [Chain] target are always decoded
    — their [E_msg] records feed the rid -> parent map that chain
    walks read, even when the block itself can contain no match. *)

val agg_to_string : agg -> string
val field_of_name : string -> field option
val dim_of_name : string -> dim option

type pstats = {
  ps_count : int;
  ps_sum : int;
  ps_p50 : int;
  ps_p95 : int;
  ps_p99 : int;
  ps_max : int;
}

type agg_result =
  | R_count
  | R_rate of (int * int) list        (** (bucket start, count), sorted. *)
  | R_percentiles of pstats
  | R_groups of (string * int) list   (** Sorted by key. *)

type outcome = {
  q_header : Journal.header;
  q_filter : pred;
  q_agg : agg;
  q_matched : int;
  q_result : agg_result;
}

val run :
  ?index:Journal.index ->
  ?stats:Journal.scan_stats ->
  filter:pred ->
  agg:agg ->
  string ->
  (outcome, string) result
(** Evaluate over encoded journal bytes in one streaming pass.
    Without [index], every block is decoded (full scan); with it,
    {!block_filter} prunes. [stats] accrues blocks scanned/skipped and
    records decoded ({!publish}able as gauges). [Error] on undecodable
    bytes. *)

val render : outcome -> Journal.scan_stats option -> string
(** Human-readable result; scan statistics appended when given. *)

val to_json : outcome -> string
val to_csv : outcome -> string
(** Deterministic artifacts. Scan statistics are deliberately {e not}
    included: indexed and full-scan runs of the same query must be
    byte-identical. *)

val publish : Journal.scan_stats -> Metrics.t -> unit
(** Set the [osiris.query.blocks_scanned] / [.blocks_skipped] /
    [.records_decoded] gauges from a scan. *)
