(** Differential tail profiles over critical-path breakdowns.

    Where {!Critpath} explains {e one} request's latency, this module
    explains a {e tail}: it splits a run's completed requests into a
    p50 cohort (latency at or below the nearest-rank median) and a p99
    cohort (latency at or above the nearest-rank p99), averages each
    cohort's bucket decomposition, and ranks the buckets by how much
    more they cost the tail than the median — the {e blame} table.
    A bucket whose blame dominates names the mechanism (queueing,
    one server's service, checkpoint overhead, recovery collateral...)
    that separates the run's worst requests from its typical ones.

    Everything is integer arithmetic over {!Critpath} cycle counts —
    means are kept in tenths of a cycle — so profiles are exactly
    reproducible and byte-identical across hosts, re-runs, and any
    parallel-merge order. Quantile cuts index through
    {!Osiris_util.Stats.rank}, the repo-wide nearest-rank
    definition. *)

type bucket =
  | B_own
  | B_queue
  | B_service     (** All servers' service, collapsed. *)
  | B_checkpoint
  | B_rollback
  | B_restart
  | B_collateral

val n_buckets : int

val bucket_name : bucket -> string

val bucket_index : bucket -> int
(** Declaration-order index, inverse of {!bucket_of_index}. *)

val bucket_of_index : int -> bucket

val bucket_totals : Critpath.breakdown -> int array
(** Length {!n_buckets}, indexed in declaration order; sums to
    [Critpath.total] (conservation carries over). *)

type cohort = {
  co_n : int;           (** Requests in the cohort (>= 1). *)
  co_cut : int;         (** The latency cut that selected them. *)
  co_mean10 : int array;  (** Per-bucket mean, tenths of a cycle. *)
}

type profile = {
  tp_n : int;    (** Completed requests profiled. *)
  tp_p50 : int;  (** Nearest-rank median latency. *)
  tp_p99 : int;  (** Nearest-rank p99 latency. *)
  tp_low : cohort;   (** Latency <= [tp_p50]. *)
  tp_high : cohort;  (** Latency >= [tp_p99]. *)
  tp_blame : (bucket * int) list;
      (** [tp_high] minus [tp_low] mean (tenths), every bucket, sorted
          descending (declaration order on ties) — the tail's blame
          ranking. *)
}

val profile : Critpath.breakdown list -> profile option
(** [None] on an empty list. *)

val knee : int array -> int
(** Knee of a load sweep: index of the first step whose p99 latency is
    at least twice the sweep's minimum p99, or [-1] when the sweep
    never degrades that far (or the minimum is 0). Flags where a
    stepped [osiris load] run tips from flat latency into the
    hockey-stick. *)
